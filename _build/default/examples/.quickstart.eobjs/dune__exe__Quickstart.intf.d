examples/quickstart.mli:
