examples/attribution_scenarios.mli:
