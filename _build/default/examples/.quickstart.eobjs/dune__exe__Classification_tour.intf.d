examples/classification_tour.mli:
