examples/quickstart.ml: Aggshap_agg Aggshap_arith Aggshap_core Aggshap_cq Aggshap_relational List Printf
