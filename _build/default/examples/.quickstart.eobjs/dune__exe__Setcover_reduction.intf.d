examples/setcover_reduction.mli:
