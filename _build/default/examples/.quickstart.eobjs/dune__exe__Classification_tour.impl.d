examples/classification_tour.ml: Aggshap_agg Aggshap_core Aggshap_cq Aggshap_workload List Printf String
