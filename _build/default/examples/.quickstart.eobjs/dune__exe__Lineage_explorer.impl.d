examples/lineage_explorer.ml: Aggshap_arith Aggshap_core Aggshap_cq Aggshap_relational Array Format List Printf
