(* The hardness machinery, end to end: solve #Set-Cover and the matrix
   permanent through a Shapley-value oracle (Lemmas D.3 and E.2).

   The gadget builds databases D_{q,r} for Avg ∘ τ_ReLU ∘ Q_xyy, asks a
   Shapley oracle for the value of the fact S(0) in each, and inverts
   the Hilbert ⊗ factorial-Hankel linear system to recover the cover
   counts Z_{i,j} — demonstrating that a polynomial Shapley algorithm
   for this AggCQ would count set covers. *)

module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module Matrix = Aggshap_linalg.Matrix
module Setcover = Aggshap_reductions.Setcover
module Avg_red = Aggshap_reductions.Avg_reduction
module Qnt_red = Aggshap_reductions.Quantile_reduction
module Perm_red = Aggshap_reductions.Permanent_reduction
module Database = Aggshap_relational.Database

let () =
  let sc = Setcover.make ~universe:4 [ [ 1; 2 ]; [ 3; 4 ]; [ 2; 3 ]; [ 4 ] ] in
  Printf.printf "#Set-Cover instance: X = {1..%d}, sets =" sc.Setcover.universe;
  Array.iter
    (fun s ->
      Printf.printf " {%s}" (String.concat "," (List.map string_of_int s)))
    sc.Setcover.sets;
  print_newline ();

  (* The gadget databases. *)
  let db00 = Avg_red.database sc ~q:0 ~r:0 in
  Printf.printf "gadget D_{0,0}: %d facts (%d endogenous players)\n"
    (Database.size db00) (Database.endo_size db00);
  Printf.printf "AggCQ: Avg ∘ relu ∘ %s, target fact S(0)\n\n"
    (Aggshap_cq.Cq.to_string Avg_red.agg_query.Aggshap_agg.Agg_query.query);

  (* The linear system: a Kronecker product of two classical matrices. *)
  let n_factor, m_factor = Avg_red.kronecker_factors sc in
  Printf.printf "system matrix: %d×%d = (shifted Hilbert %d×%d) ⊗ (Hankel-type %d×%d)\n"
    (Matrix.rows (Avg_red.system_matrix sc))
    (Matrix.cols (Avg_red.system_matrix sc))
    (Matrix.rows n_factor) (Matrix.cols n_factor) (Matrix.rows m_factor)
    (Matrix.cols m_factor);
  Printf.printf "det(N) = %s, det(M) = %s — both nonzero, so the system is solvable\n\n"
    (Q.to_string (Matrix.determinant n_factor))
    (Q.to_string (Matrix.determinant m_factor));

  let via_shapley = Avg_red.count_covers_via_shapley sc in
  let brute = Setcover.count_covers sc in
  Printf.printf "covers via Shapley oracle + exact linear solve: %s\n"
    (B.to_string via_shapley);
  Printf.printf "covers via brute-force enumeration:            %s\n\n" (B.to_string brute);
  assert (B.equal via_shapley brute);

  (* The quantile gadget simulates the set-cover game exactly. *)
  let quantile = Q.of_ints 1 2 in
  let db = Qnt_red.database sc quantile in
  Printf.printf "median gadget (Lemma D.4): %d facts; A(C ∪ Dx) = 1 iff C covers X\n"
    (Database.size db);
  let shap1 = Qnt_red.shapley_via_gadget sc quantile 1 in
  let direct = Aggshap_core.Game.shapley (Qnt_red.cover_game sc) 0 in
  Printf.printf "Shapley of S(1) via gadget: %s; via the set-cover game: %s\n\n"
    (Q.to_string shap1) (Q.to_string direct);
  assert (Q.equal shap1 direct);

  (* The permanent via Dup-Shapley (Lemma E.2). *)
  let c6 =
    (* The 6-cycle: its permanent (perfect matchings) is 2. *)
    Setcover.make ~universe:6
      [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 4; 5 ]; [ 5; 6 ]; [ 6; 1 ] ]
  in
  Printf.printf "perfect matchings of the 6-cycle via Dup-Shapley: %s (expected 2)\n"
    (B.to_string (Perm_red.permanent_via_shapley c6));
  print_endline "all reductions verified against brute force"
