(* Lineage explorer: knowledge compilation for membership games
   (Remark 4.5).

   The Boolean lineage of a hierarchical CQ factorizes into a read-once
   tree of independent ⊗ (and) and ⊕ (or) nodes. This example compiles
   the lineage of the minimal interesting query on a small database,
   prints it, and shows that Shapley values fall out of a linear pass
   over the compiled tree. *)

module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Parser = Aggshap_cq.Parser
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Dtree = Aggshap_core.Dtree

let query = Parser.parse_query_exn "Q() <- R(x, y), S(y)"

let database =
  Database.of_list
    [ (Fact.of_ints "R" [ 1; 10 ], Database.Endogenous);
      (Fact.of_ints "R" [ 2; 10 ], Database.Endogenous);
      (Fact.of_ints "R" [ 3; 20 ], Database.Endogenous);
      (Fact.of_ints "R" [ 4; 99 ], Database.Endogenous) (* joins with nothing *);
      (Fact.of_ints "S" [ 10 ], Database.Endogenous);
      (Fact.of_ints "S" [ 20 ], Database.Exogenous);
    ]

let () =
  Printf.printf "Query (as Boolean): %s\n" (Cq.to_string query);
  Printf.printf "Database: %d facts (%d endogenous)\n\n" (Database.size database)
    (Database.endo_size database);

  let tree = Dtree.compile query database in
  Format.printf "Compiled read-once lineage:@.  %a@.@." Dtree.pp tree;
  Printf.printf "tree size: %d nodes; read-once: %b; literals: %d\n\n" (Dtree.size tree)
    (Dtree.is_read_once tree)
    (List.length (Dtree.facts tree));

  (* The fact R(4,99) joins with nothing: it does not even appear in the
     lineage, and its Shapley value is 0 (null player). *)
  Printf.printf "Shapley values of the membership game, from the compiled tree:\n";
  List.iter
    (fun f ->
      let v = Dtree.shapley tree database f in
      let cross = Aggshap_core.Boolean_dp.shapley query database f in
      assert (Q.equal v cross);
      Printf.printf "  %-12s %8s (~ %.4f)\n" (Fact.to_string f) (Q.to_string v)
        (Q.to_float v))
    (Database.endogenous database);

  (* Satisfying-subset counts by coalition size — the sum_k view. *)
  let counts = Dtree.satisfying_counts tree database in
  Printf.printf "\nsatisfying k-subsets: ";
  Array.iteri
    (fun k c -> Printf.printf "%s%d:%s" (if k > 0 then ", " else "") k
        (Aggshap_arith.Bigint.to_string c))
    counts;
  print_newline ()
