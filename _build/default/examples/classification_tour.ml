(* A tour of Figure 1: classify the paper's example CQs and print, for
   every (query, aggregate) pair, which side of the tractability
   frontier it falls on. *)

module Cq = Aggshap_cq.Cq
module Hierarchy = Aggshap_cq.Hierarchy
module Aggregate = Aggshap_agg.Aggregate
module Solver = Aggshap_core.Solver
module Catalog = Aggshap_workload.Catalog

let () =
  print_endline "Containment chain (Figure 1):";
  print_endline
    "  sq-hierarchical ⊂ q-hierarchical ⊂ all-hierarchical ⊂ ∃-hierarchical ⊂ general";
  print_endline "";
  print_endline "Tractability frontiers:";
  List.iter
    (fun alpha ->
      Printf.printf "  %-16s %s\n" (Aggregate.to_string alpha)
        (Hierarchy.cls_to_string (Solver.frontier alpha)))
    Aggregate.all;
  print_endline "";

  Printf.printf "%-36s %-22s" "query" "class";
  List.iter (fun alpha ->
      let s = Aggregate.to_string alpha in
      let s = if String.length s > 6 then String.sub s 0 6 else s in
      Printf.printf " %-6s" s)
    Aggregate.all;
  print_newline ();
  List.iter
    (fun (name, q, _) ->
      Printf.printf "%-36s %-22s" name (Hierarchy.cls_to_string (Hierarchy.classify q));
      List.iter
        (fun alpha ->
          Printf.printf " %-6s" (if Solver.within_frontier alpha q then "poly" else "#P"))
        Aggregate.all;
      print_newline ())
    Catalog.figure1;
  print_endline "";
  print_endline
    "(\"poly\": polynomial for every localized value function; \"#P\": some";
  print_endline
    " localized value function makes the Shapley value FP^#P-complete.)"
