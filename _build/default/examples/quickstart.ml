(* Quickstart: the paper's running example (Examples 2.2 and 2.3).

   An educational institute stores salaries, enrolments and courses:

     Earns(person, salary)   Took(person, course)   Course(name, number)

   The AggCQ "average salary of people who took a course" is
   Avg ∘ salary ∘ (Q(p,s) ← Earns(p,s), Took(p,c), Course(n,c)). We make
   the Course facts endogenous and ask: how much does each course
   contribute to the average salary? *)

module Q = Aggshap_arith.Rational
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Parser = Aggshap_cq.Parser
module Hierarchy = Aggshap_cq.Hierarchy
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query
module Solver = Aggshap_core.Solver

let query = Parser.parse_query_exn "Q(p, s) <- Earns(p, s), Took(p, c), Course(n, c)"

let database =
  let exo = Database.Exogenous in
  Database.of_list
    [ (* People and salaries (context: taken for granted). *)
      (Fact.of_ints "Earns" [ 1; 90 ], exo);
      (Fact.of_ints "Earns" [ 2; 120 ], exo);
      (Fact.of_ints "Earns" [ 3; 50 ], exo);
      (Fact.of_ints "Earns" [ 4; 200 ], exo);
      (* Enrolments. *)
      (Fact.of_ints "Took" [ 1; 101 ], exo);
      (Fact.of_ints "Took" [ 2; 101 ], exo);
      (Fact.of_ints "Took" [ 2; 102 ], exo);
      (Fact.of_ints "Took" [ 3; 102 ], exo);
      (Fact.of_ints "Took" [ 4; 103 ], exo);
      (* Courses: the players whose contribution we measure. *)
      (Fact.of_ints "Course" [ 9101; 101 ], Database.Endogenous);
      (Fact.of_ints "Course" [ 9102; 102 ], Database.Endogenous);
      (Fact.of_ints "Course" [ 9103; 103 ], Database.Endogenous);
    ]

let salary = Value_fn.id ~rel:"Earns" ~pos:1

let () =
  let avg_salary = Agg_query.make Aggregate.Avg salary query in
  Printf.printf "Query: %s\n" (Aggshap_cq.Cq.to_string query);
  Printf.printf "Class: %s\n"
    (Hierarchy.cls_to_string (Hierarchy.classify query));
  Printf.printf "A(D) = average salary of course takers = %s\n\n"
    (Q.to_string (Agg_query.eval avg_salary database));

  (* This CQ is only ∃-hierarchical (the paper's own running example sits
     beyond the Avg frontier), so the solver falls back to exact
     enumeration — fine at this size, and the report says so. *)
  let results, report = Solver.shapley_all avg_salary database in
  Printf.printf "Shapley contribution of each course to the average salary\n";
  Printf.printf "(algorithm: %s)\n" report.Solver.algorithm;
  let total = ref Q.zero in
  List.iter
    (fun (f, outcome) ->
      match outcome with
      | Solver.Exact v ->
        total := Q.add !total v;
        Printf.printf "  %-22s %8s (~ %+.3f)\n" (Fact.to_string f) (Q.to_string v)
          (Q.to_float v)
      | Solver.Estimate _ -> assert false)
    results;
  (* Efficiency axiom: contributions add up to A(D) − A(Dˣ). *)
  Printf.printf "  %-22s %8s\n\n" "total (= A(D) - A(Dx))" (Q.to_string !total);

  (* For Count the same query is inside the frontier and the polynomial
     algorithm runs. *)
  let count_takers = Agg_query.make Aggregate.Count salary query in
  let results, report = Solver.shapley_all ~fallback:`Fail count_takers database in
  Printf.printf "Shapley contribution of each course to the NUMBER of takers\n";
  Printf.printf "(algorithm: %s)\n" report.Solver.algorithm;
  List.iter
    (fun (f, outcome) ->
      match outcome with
      | Solver.Exact v ->
        Printf.printf "  %-22s %8s\n" (Fact.to_string f) (Q.to_string v)
      | Solver.Estimate _ -> assert false)
    results;

  (* A q-hierarchical variant — drop the course-name attribute and join
     directly on the course number — brings Avg inside the frontier. *)
  let query_q = Parser.parse_query_exn "Q(p, s) <- Earns(p, s), Took(p, c)" in
  let avg_q = Agg_query.make Aggregate.Avg salary query_q in
  (* Same data, but now the enrolments are the players. *)
  let db_q =
    Database.fold
      (fun (f : Fact.t) p acc ->
        match f.Fact.rel with
        | "Course" -> acc
        | "Took" -> Database.add ~provenance:Database.Endogenous f acc
        | _ -> Database.add ~provenance:p f acc)
      database Database.empty
  in
  let results, report = Solver.shapley_all ~fallback:`Fail avg_q db_q in
  Printf.printf "\nVariant without the Course relation: %s\n"
    (Aggshap_cq.Cq.to_string query_q);
  Printf.printf "Class: %s; algorithm: %s\n"
    (Hierarchy.cls_to_string (Hierarchy.classify query_q))
    report.Solver.algorithm;
  Printf.printf "Shapley contribution of each enrolment to the average salary\n";
  List.iter
    (fun (f, outcome) ->
      match outcome with
      | Solver.Exact v ->
        Printf.printf "  %-22s %8s (~ %+.3f)\n" (Fact.to_string f) (Q.to_string v)
          (Q.to_float v)
      | Solver.Estimate _ -> assert false)
    results
