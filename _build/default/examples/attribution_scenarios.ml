(* Realistic attribution scenarios on a retail schema.

     Store(store, city)            — endogenous: the stores are the players
     Sale(store, product, amount)  — exogenous transaction log

   The q-hierarchical AggCQ
     α ∘ amount ∘ (Q(st, p, amt) ← Sale(st, p, amt), Store(st, c))
   asks, for several aggregates α: how much does each store contribute
   to α over all sale amounts? Exact polynomial algorithms apply
   (Theorems 4.1 and 5.1), and the Monte-Carlo estimator is compared
   against the exact values. *)

module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Parser = Aggshap_cq.Parser
module Hierarchy = Aggshap_cq.Hierarchy
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query
module Solver = Aggshap_core.Solver
module Monte_carlo = Aggshap_core.Monte_carlo

let query = Parser.parse_query_exn "Q(st, p, amt) <- Sale(st, p, amt), Store(st, c)"

let database =
  let exo = Database.Exogenous in
  let stores = [ (1, 10); (2, 10); (3, 20); (4, 20); (5, 30) ] in
  let sales =
    [ (1, 501, 120); (1, 502, 80); (1, 503, 80);
      (2, 501, 200); (2, 504, 40);
      (3, 502, 300); (3, 505, 300); (3, 506, 15);
      (4, 507, 60); (4, 508, 60); (4, 509, 90);
      (5, 510, 500);
    ]
  in
  let db =
    List.fold_left
      (fun db (s, c) -> Database.add (Fact.of_ints "Store" [ s; c ]) db)
      Database.empty stores
  in
  List.fold_left
    (fun db (s, p, a) -> Database.add ~provenance:exo (Fact.of_ints "Sale" [ s; p; a ]) db)
    db sales

let amount = Value_fn.id ~rel:"Sale" ~pos:2

let run_aggregate alpha =
  let a = Agg_query.make alpha amount query in
  let results, report = Solver.shapley_all ~fallback:`Fail a database in
  Printf.printf "α = %-16s  A(D) = %-8s  (%s)\n"
    (Aggregate.to_string alpha)
    (Q.to_string (Agg_query.eval a database))
    report.Solver.algorithm;
  List.iter
    (fun (f, outcome) ->
      match outcome with
      | Solver.Exact v ->
        Printf.printf "    %-16s %12s  (~ %+.4f)\n" (Fact.to_string f) (Q.to_string v)
          (Q.to_float v)
      | Solver.Estimate _ -> assert false)
    results;
  print_newline ()

let () =
  Printf.printf "Query: %s\n" (Cq.to_string query);
  Printf.printf "Class: %s — Min/Max/CDist/Avg/Median run in polynomial time here.\n\n"
    (Hierarchy.cls_to_string (Hierarchy.classify query));
  List.iter run_aggregate
    [ Aggregate.Max; Aggregate.Min; Aggregate.Count_distinct; Aggregate.Avg;
      Aggregate.Median; Aggregate.Sum ];

  (* Monte-Carlo vs exact, for the store with the largest Max share. *)
  let a = Agg_query.make Aggregate.Avg amount query in
  let store5 = Fact.of_ints "Store" [ 5; 30 ] in
  let exact = Solver.shapley_exact a database store5 in
  Printf.printf "Monte-Carlo convergence on Shapley(%s) for Avg (exact = %s ~ %.5f)\n"
    (Fact.to_string store5) (Q.to_string exact) (Q.to_float exact);
  Printf.printf "  %10s %12s %12s %12s\n" "samples" "estimate" "std error" "true error";
  List.iter
    (fun samples ->
      let est = Monte_carlo.shapley ~seed:7 ~samples a database store5 in
      Printf.printf "  %10d %12.5f %12.5f %12.5f\n" samples est.Monte_carlo.mean
        est.Monte_carlo.std_error
        (abs_float (est.Monte_carlo.mean -. Q.to_float exact)))
    [ 100; 1000; 10000 ]
