(* Tests for the workload generators and qcheck properties of the
   database structure itself. *)

module Cq = Aggshap_cq.Cq
module Hierarchy = Aggshap_cq.Hierarchy
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Value = Aggshap_relational.Value
module Catalog = Aggshap_workload.Catalog
module Generate = Aggshap_workload.Generate
module Random_cq = Aggshap_workload.Random_cq

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let test_catalog_wellformed () =
  List.iter
    (fun (name, q, _) ->
      match Cq.validate q with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" name msg)
    Catalog.figure1;
  Alcotest.(check int) "catalog covers all five classes" 5
    (List.length
       (List.sort_uniq Stdlib.compare (List.map (fun (_, _, c) -> c) Catalog.figure1)))

let test_random_database_shape () =
  let q = Catalog.q_xyy in
  let db = Generate.random_database ~seed:3 q in
  (* Only relations of the query, with matching arities. *)
  List.iter
    (fun (f : Fact.t) ->
      match f.rel with
      | "R" -> Alcotest.(check int) "R arity" 2 (Fact.arity f)
      | "S" -> Alcotest.(check int) "S arity" 1 (Fact.arity f)
      | other -> Alcotest.failf "unexpected relation %s" other)
    (Database.facts db);
  (* Deterministic under a fixed seed. *)
  let db' = Generate.random_database ~seed:3 q in
  Alcotest.(check bool) "seeded determinism" true (Database.equal db db')

let test_random_database_sized () =
  let q = Catalog.q_xyy_full in
  List.iter
    (fun endo ->
      let db = Generate.random_database_sized ~seed:1 q ~endo in
      Alcotest.(check int) (Printf.sprintf "exactly %d endogenous" endo) endo
        (Database.endo_size db))
    [ 1; 4; 9; 16 ]

let test_chain_database () =
  let db = Generate.chain_database ~rows:16 in
  Alcotest.(check int) "R facts" 16 (List.length (Database.relation db "R"));
  Alcotest.(check int) "S facts" 4 (List.length (Database.relation db "S"));
  Alcotest.(check int) "all endogenous" (Database.size db) (Database.endo_size db);
  (* Every R fact joins: its group is an S value. *)
  let answers = Aggshap_cq.Eval.answers Catalog.q_xyy db in
  Alcotest.(check int) "all rows are answers" 16 (List.length answers)

let test_random_cq_validity () =
  for seed = 0 to 300 do
    let q = Random_cq.generate ~seed () in
    match Cq.validate q with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "seed %d: %s (%s)" seed msg (Cq.to_string q)
  done

let test_random_cq_free_position () =
  for seed = 0 to 100 do
    let q = Random_cq.generate ~seed () in
    match Random_cq.free_position q with
    | Some (rel, pos) -> begin
      match Cq.find_atom q rel with
      | None -> Alcotest.failf "seed %d: relation %s not in query" seed rel
      | Some atom -> begin
        match atom.Cq.terms.(pos) with
        | Cq.Var v ->
          if not (Cq.is_free q v) then Alcotest.failf "seed %d: %s not free" seed v
        | Cq.Const _ -> Alcotest.failf "seed %d: constant position" seed
      end
    end
    | None ->
      if Cq.free_vars q <> [] then
        Alcotest.failf "seed %d: free vars exist but no position found" seed
  done

(* qcheck: database algebra. *)

let arb_db =
  let gen =
    QCheck.Gen.(
      let* n = int_range 0 12 in
      let* entries =
        list_size (return n)
          (let* rel = oneofl [ "R"; "S"; "T" ] in
           let* a = int_range 0 3 in
           let* b = int_range 0 3 in
           let* exo = bool in
           return
             ( { Fact.rel; args = [| Value.Int a; Value.Int b |] },
               if exo then Database.Exogenous else Database.Endogenous ))
      in
      return (Database.of_list entries))
  in
  QCheck.make gen ~print:(fun db -> Format.asprintf "%a" Database.pp db)

let db_props =
  [ prop "size = endo + exo" 300 arb_db (fun db ->
        Database.size db
        = List.length (Database.endogenous db) + List.length (Database.exogenous db));
    prop "restrict_relations partitions" 300 arb_db (fun db ->
        let rs, rest = Database.restrict_relations [ "R" ] db in
        Database.size rs + Database.size rest = Database.size db
        && Database.equal (Database.union rs rest) db);
    prop "remove then add is identity on members" 300 arb_db (fun db ->
        match Database.facts db with
        | [] -> true
        | f :: _ ->
          let p = Option.get (Database.provenance db f) in
          Database.equal db (Database.add ~provenance:p f (Database.remove f db)));
    prop "filter endo + filter exo = whole" 300 arb_db (fun db ->
        let endo = Database.filter (fun _ p -> p = Database.Endogenous) db in
        let exo = Database.filter (fun _ p -> p = Database.Exogenous) db in
        Database.equal (Database.union endo exo) db);
    prop "relations sorted and complete" 300 arb_db (fun db ->
        let rels = Database.relations db in
        List.sort String.compare rels = rels
        && List.for_all (fun (f : Fact.t) -> List.mem f.rel rels) (Database.facts db));
  ]

let () =
  Alcotest.run "workload"
    [ ( "generators",
        [ Alcotest.test_case "catalog well-formed" `Quick test_catalog_wellformed;
          Alcotest.test_case "random database shape" `Quick test_random_database_shape;
          Alcotest.test_case "sized generation" `Quick test_random_database_sized;
          Alcotest.test_case "chain database" `Quick test_chain_database;
          Alcotest.test_case "random CQ validity" `Quick test_random_cq_validity;
          Alcotest.test_case "free positions" `Quick test_random_cq_free_position;
        ] );
      ("database properties", db_props);
    ]
