  $ shapctl classify -q "Q(x) <- R(x,y), S(y)"
  $ shapctl eval -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t id:R:0
  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t id:R:0
  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a avg -t id:R:0 -f "R(3, 20)"
  $ shapctl solve -q "Q(x) <- R(x,y), R(y,x)" -d db.facts -a max
  $ shapctl classify -q "Q(x) <-"
  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t id:R:0 --score banzhaf
  $ cat > bad.facts <<'DB'
  > R(1, 10)
  > R(7)
  > S(10)
  > DB
  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d bad.facts -a max -t id:R:0 -f "R(1, 10)"
