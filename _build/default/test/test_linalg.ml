(* Tests for exact rational linear algebra. *)

module Q = Aggshap_arith.Rational
module B = Aggshap_arith.Bigint
module M = Aggshap_linalg.Matrix

let qi = Q.of_int

let m_of_ints rows = M.of_lists (List.map (List.map qi) rows)

let check_mat msg expected actual =
  if not (M.equal expected actual) then
    Alcotest.failf "%s:@.expected @[%a@]@.got @[%a@]" msg M.pp expected M.pp actual

let test_basic_ops () =
  let a = m_of_ints [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = m_of_ints [ [ 5; 6 ]; [ 7; 8 ] ] in
  check_mat "add" (m_of_ints [ [ 6; 8 ]; [ 10; 12 ] ]) (M.add a b);
  check_mat "sub" (m_of_ints [ [ -4; -4 ]; [ -4; -4 ] ]) (M.sub a b);
  check_mat "mul" (m_of_ints [ [ 19; 22 ]; [ 43; 50 ] ]) (M.mul a b);
  check_mat "transpose" (m_of_ints [ [ 1; 3 ]; [ 2; 4 ] ]) (M.transpose a);
  check_mat "scale" (m_of_ints [ [ 2; 4 ]; [ 6; 8 ] ]) (M.scale (qi 2) a);
  check_mat "identity mul" a (M.mul a (M.identity 2));
  Alcotest.(check string) "determinant" "-2" (Q.to_string (M.determinant a));
  Alcotest.(check int) "rank" 2 (M.rank a);
  Alcotest.(check int) "rank singular" 1 (M.rank (m_of_ints [ [ 1; 2 ]; [ 2; 4 ] ]))

let test_inverse_solve () =
  let a = m_of_ints [ [ 2; 1 ]; [ 7; 4 ] ] in
  (match M.inverse a with
   | None -> Alcotest.fail "invertible matrix reported singular"
   | Some inv -> check_mat "a * a^-1 = I" (M.identity 2) (M.mul a inv));
  Alcotest.(check bool) "singular has no inverse" true
    (M.inverse (m_of_ints [ [ 1; 2 ]; [ 2; 4 ] ]) = None);
  let b = [| qi 3; qi 10 |] in
  (match M.solve a b with
   | None -> Alcotest.fail "solve failed"
   | Some x ->
     let back = M.mul_vec a x in
     Array.iteri
       (fun i v ->
         if not (Q.equal v b.(i)) then Alcotest.fail "solve does not satisfy the system")
       back)

let test_random_inverse_roundtrip () =
  let rng = Random.State.make [| 23 |] in
  for _ = 1 to 10 do
    let n = 1 + Random.State.int rng 5 in
    let a = M.make n n (fun _ _ -> qi (Random.State.int rng 11 - 5)) in
    match M.inverse a with
    | None -> Alcotest.(check string) "det zero" "0" (Q.to_string (M.determinant a))
    | Some inv ->
      check_mat "inverse roundtrip" (M.identity n) (M.mul a inv);
      check_mat "inverse roundtrip (left)" (M.identity n) (M.mul inv a)
  done

let test_kronecker () =
  let a = m_of_ints [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = m_of_ints [ [ 0; 5 ]; [ 6; 7 ] ] in
  let k = M.kronecker a b in
  Alcotest.(check int) "dims" 4 (M.rows k);
  Alcotest.(check string) "entry (0,1)" "5" (Q.to_string (M.get k 0 1));
  Alcotest.(check string) "entry (2,0)" "0" (Q.to_string (M.get k 2 0));
  Alcotest.(check string) "entry (3,3)" "28" (Q.to_string (M.get k 3 3));
  (* det(A ⊗ B) = det(A)^n det(B)^m. *)
  let det_k = M.determinant k in
  let expected = Q.mul (Q.pow (M.determinant a) 2) (Q.pow (M.determinant b) 2) in
  Alcotest.(check string) "kronecker determinant" (Q.to_string expected) (Q.to_string det_k)

let test_hilbert_hankel () =
  (* Both are invertible for every size (Choi 1983; Bacher 2002) — the
     fact the hardness proof of Lemma D.3 rests on. *)
  for n = 1 to 6 do
    Alcotest.(check bool)
      (Printf.sprintf "hilbert %d invertible" n)
      true
      (not (Q.is_zero (M.determinant (M.hilbert n))));
    Alcotest.(check bool)
      (Printf.sprintf "hankel %d invertible" n)
      true
      (not (Q.is_zero (M.determinant (M.hankel_factorial n))))
  done;
  (* Spot check: the 3×3 Hilbert determinant is 1/2160. *)
  Alcotest.(check string) "hilbert 3 det" "1/2160" (Q.to_string (M.determinant (M.hilbert 3)));
  (* Kronecker product of invertibles is invertible. *)
  let k = M.kronecker (M.hilbert 3) (M.hankel_factorial 2) in
  Alcotest.(check bool) "hilbert ⊗ hankel invertible" true
    (not (Q.is_zero (M.determinant k)))

let test_dimension_guards () =
  let a = m_of_ints [ [ 1; 2 ] ] in
  Alcotest.(check bool) "mul mismatch" true
    (try ignore (M.mul a a); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "determinant non-square" true
    (try ignore (M.determinant a); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "ragged input" true
    (try ignore (M.of_lists [ [ Q.one ]; [ Q.one; Q.one ] ]); false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "linalg"
    [ ( "matrix",
        [ Alcotest.test_case "basic operations" `Quick test_basic_ops;
          Alcotest.test_case "inverse and solve" `Quick test_inverse_solve;
          Alcotest.test_case "random inverse roundtrip" `Quick test_random_inverse_roundtrip;
          Alcotest.test_case "kronecker" `Quick test_kronecker;
          Alcotest.test_case "hilbert and hankel" `Quick test_hilbert_hankel;
          Alcotest.test_case "guards" `Quick test_dimension_guards;
        ] );
    ]
