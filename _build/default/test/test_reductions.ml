(* Tests for the executable hardness reductions: each gadget's predicted
   Shapley value must match the naive solver on the gadget database, and
   each end-to-end pipeline must recover the brute-force counts. *)

module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module Database = Aggshap_relational.Database
module Setcover = Aggshap_reductions.Setcover
module Avg_red = Aggshap_reductions.Avg_reduction
module Qnt_red = Aggshap_reductions.Quantile_reduction
module Perm_red = Aggshap_reductions.Permanent_reduction
module Game = Aggshap_core.Game

let check_b msg expected actual =
  Alcotest.(check string) msg (B.to_string expected) (B.to_string actual)

(* ------------------------------------------------------------------ *)
(* Set-cover instances and brute force                                 *)
(* ------------------------------------------------------------------ *)

let sc_small = Setcover.make ~universe:3 [ [ 1; 2 ]; [ 2; 3 ]; [ 3 ] ]

let test_setcover_brute_force () =
  (* Covers of {1,2,3} from {12, 23, 3}: {12,23}, {12,3}, {12,23,3}. *)
  check_b "count_covers" (B.of_int 3) (Setcover.count_covers sc_small);
  Alcotest.(check int) "union_size" 3 (Setcover.union_size sc_small [ 0; 1 ]);
  Alcotest.(check bool) "disjoint" true (Setcover.is_pairwise_disjoint sc_small [ 0 ]);
  Alcotest.(check bool) "not disjoint" false
    (Setcover.is_pairwise_disjoint sc_small [ 0; 1 ]);
  let z = Setcover.z_table sc_small in
  (* Z_{i,j} sums to 2^m over all cells. *)
  let total = Array.fold_left (Array.fold_left B.add) B.zero z in
  check_b "z table total" (B.of_int 8) total;
  check_b "Z_{0,0}" B.one z.(0).(0);
  check_b "Z_{3,2}" (B.of_int 2) z.(3).(2)

let test_exact_covers () =
  (* Perfect matchings of the 4-cycle 1-2-3-4: two. *)
  let c4 = Setcover.make ~universe:4 [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 4; 1 ] ] in
  check_b "perfect matchings of C4" (B.of_int 2) (Setcover.count_exact_covers c4);
  let z = Setcover.z_disjoint c4 in
  check_b "Z_0" B.one z.(0);
  check_b "Z_1" (B.of_int 4) z.(1);
  check_b "Z_2" (B.of_int 2) z.(2)

(* ------------------------------------------------------------------ *)
(* Avg reduction (Lemma D.3)                                           *)
(* ------------------------------------------------------------------ *)

let test_avg_gadget_equation () =
  (* The derived Shapley equation must match the naive solver on every
     D_{q,r} of a small instance. *)
  let sc = Setcover.make ~universe:2 [ [ 1 ]; [ 1; 2 ] ] in
  for q = 0 to sc.Setcover.universe do
    for r = 0 to Setcover.num_sets sc do
      let db = Avg_red.database sc ~q ~r in
      let actual = Avg_red.naive_oracle db Avg_red.target_fact in
      let predicted = Avg_red.shapley_predicted sc ~q ~r in
      if not (Q.equal predicted actual) then
        Alcotest.failf "avg gadget (q=%d, r=%d): predicted=%s naive=%s" q r
          (Q.to_string predicted) (Q.to_string actual)
    done
  done

let test_avg_system_is_kronecker () =
  let sc = sc_small in
  let l = Avg_red.system_matrix sc in
  let n_factor, m_factor = Avg_red.kronecker_factors sc in
  Alcotest.(check bool) "L = N ⊗ M" true
    (Aggshap_linalg.Matrix.equal l (Aggshap_linalg.Matrix.kronecker n_factor m_factor));
  Alcotest.(check bool) "L invertible" true
    (not (Q.is_zero (Aggshap_linalg.Matrix.determinant l)))

let test_avg_pipeline () =
  let instances =
    [ Setcover.make ~universe:2 [ [ 1 ]; [ 1; 2 ] ];
      sc_small;
      Setcover.random ~seed:5 ~universe:3 ~sets:3 ~max_set_size:2 ();
    ]
  in
  List.iter
    (fun sc ->
      check_b "covers via shapley" (Setcover.count_covers sc)
        (Avg_red.count_covers_via_shapley sc))
    instances

(* ------------------------------------------------------------------ *)
(* Quantile reduction (Lemma D.4)                                      *)
(* ------------------------------------------------------------------ *)

let test_quantile_gadget_simulates_game () =
  (* A(C ∪ Dˣ) must equal v_sc(C) for every coalition. *)
  let sc = sc_small in
  List.iter
    (fun quantile ->
      let a = Qnt_red.agg_query quantile in
      let db = Qnt_red.database sc quantile in
      let m = Setcover.num_sets sc in
      let exo = Database.filter (fun _ p -> p = Database.Exogenous) db in
      for mask = 0 to (1 lsl m) - 1 do
        let indices =
          List.filteri (fun j _ -> mask land (1 lsl j) <> 0) (List.init m Fun.id)
        in
        let coalition =
          List.fold_left
            (fun acc i -> Database.add (Qnt_red.set_fact (i + 1)) acc)
            exo indices
        in
        let value = Aggshap_agg.Agg_query.eval a coalition in
        let expected =
          if Setcover.union_size sc indices = sc.Setcover.universe then Q.one else Q.zero
        in
        if not (Q.equal value expected) then
          Alcotest.failf "quantile %s gadget: coalition %d gives %s, expected %s"
            (Q.to_string quantile) mask (Q.to_string value) (Q.to_string expected)
      done)
    [ Q.half; Q.of_ints 1 3; Q.of_ints 3 4 ]

let test_quantile_shapley_matches_game () =
  let sc = Setcover.make ~universe:2 [ [ 1 ]; [ 2 ]; [ 1; 2 ] ] in
  let game = Qnt_red.cover_game sc in
  for i = 1 to Setcover.num_sets sc do
    let via_gadget = Qnt_red.shapley_via_gadget sc Q.half i in
    let direct = Game.shapley game (i - 1) in
    if not (Q.equal via_gadget direct) then
      Alcotest.failf "quantile shapley for set %d: gadget=%s game=%s" i
        (Q.to_string via_gadget) (Q.to_string direct)
  done

(* ------------------------------------------------------------------ *)
(* Permanent reduction (Lemma E.2)                                     *)
(* ------------------------------------------------------------------ *)

let c4 = Setcover.make ~universe:4 [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ]; [ 4; 1 ] ]

let test_permanent_gadget_equation () =
  let sc = Setcover.make ~universe:3 [ [ 1; 2 ]; [ 2; 3 ]; [ 1; 3 ] ] in
  for r = 0 to Setcover.num_sets sc do
    let db = Perm_red.database sc ~r in
    let actual = Perm_red.naive_oracle db Perm_red.target_fact in
    let predicted = Perm_red.shapley_predicted sc ~r in
    if not (Q.equal predicted actual) then
      Alcotest.failf "permanent gadget (r=%d): predicted=%s naive=%s" r
        (Q.to_string predicted) (Q.to_string actual)
  done

let test_permanent_pipeline () =
  let z = Perm_red.disjoint_counts_via_shapley c4 in
  let expected = Setcover.z_disjoint c4 in
  Array.iteri (fun j v -> check_b (Printf.sprintf "Z_%d" j) expected.(j) v) z;
  check_b "permanent of C4" (B.of_int 2) (Perm_red.permanent_via_shapley c4);
  (* K_{2,2} as pairs {row i, col j}: elements 1,2 rows; 3,4 cols. *)
  let k22 = Setcover.make ~universe:4 [ [ 1; 3 ]; [ 1; 4 ]; [ 2; 3 ]; [ 2; 4 ] ] in
  check_b "permanent of all-ones 2x2" (B.of_int 2) (Perm_red.permanent_via_shapley k22);
  check_b "brute force agrees" (Setcover.count_exact_covers k22)
    (Perm_red.permanent_via_shapley k22)

(* ------------------------------------------------------------------ *)
(* Lifting reduction (Lemma 5.3 / D.1)                                 *)
(* ------------------------------------------------------------------ *)

module Lifting = Aggshap_reductions.Lifting
module Aggregate = Aggshap_agg.Aggregate
module Agg_query = Aggshap_agg.Agg_query
module Generate = Aggshap_workload.Generate
module Naive = Aggshap_core.Naive
module Value = Aggshap_relational.Value
module Fact = Aggshap_relational.Fact

let lift_targets =
  [ "Qxyy itself", "Q0(x) <- R0(x, y), S0(y)";
    "chain of three", "Q0(x) <- R0(x, y), S0(y), T0(y)";
    "wider heads", "Q0(x, w) <- R0(x, y, w), S0(y, w)";
  ]

let relu_map v =
  match Value.as_int v with
  | Some n when n > 0 -> Q.of_int n
  | Some _ -> Q.zero
  | None -> Q.zero

let mod2_map v =
  match Value.as_int v with
  | Some n -> Q.of_int (((n mod 2) + 2) mod 2)
  | None -> Q.zero

let test_lifting_analyze () =
  List.iter
    (fun (name, qs) ->
      match Lifting.analyze (Aggshap_cq.Parser.parse_query_exn qs) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: %s" name msg)
    lift_targets;
  (* q-hierarchical targets are rejected. *)
  (match Lifting.analyze (Aggshap_cq.Parser.parse_query_exn "Q(x,y) <- R(x,y), S(y)") with
   | Ok _ -> Alcotest.fail "q-hierarchical target accepted"
   | Error _ -> ());
  (* The equality corner is reported, not mis-handled. *)
  (match Lifting.analyze (Aggshap_cq.Parser.parse_query_exn "Q(x) <- R(x,y)") with
   | Ok _ -> Alcotest.fail "equality-corner target accepted"
   | Error _ -> ())

let test_lifting_preserves_shapley () =
  let config = { Generate.tuples_per_relation = 3; domain = 3; exo_fraction = 0.25 } in
  List.iter
    (fun (name, qs) ->
      let w =
        match Lifting.analyze (Aggshap_cq.Parser.parse_query_exn qs) with
        | Ok w -> w
        | Error msg -> Alcotest.failf "%s: %s" name msg
      in
      let combos =
        [ (Aggregate.Avg, relu_map, "relu");
          (Aggregate.Max, relu_map, "relu");
          (Aggregate.Has_duplicates, mod2_map, "mod2");
        ]
      in
      for seed = 0 to 3 do
        let d = Generate.random_database ~seed ~config Lifting.source_query in
        if Database.endo_size d >= 1 && Database.endo_size d <= 8 then begin
          let d0, h = Lifting.lift_database w d in
          Alcotest.(check int)
            (name ^ ": endo preserved")
            (Database.endo_size d) (Database.endo_size d0);
          List.iter
            (fun (alpha, map, descr) ->
              let a_src = Agg_query.make alpha (Lifting.source_tau ~descr map) Lifting.source_query in
              let a_tgt = Agg_query.make alpha (Lifting.lifted_tau w ~descr map) w.Lifting.target in
              List.iter
                (fun f ->
                  let src = Naive.shapley a_src d f in
                  let tgt = Naive.shapley a_tgt d0 (h f) in
                  if not (Q.equal src tgt) then
                    Alcotest.failf "%s (%s, seed %d): %s src=%s lifted=%s" name descr seed
                      (Fact.to_string f) (Q.to_string src) (Q.to_string tgt))
                (Database.endogenous d))
            combos
        end
      done)
    lift_targets

(* ------------------------------------------------------------------ *)
(* τ-robustness (Theorem 7.1 / Observation F.3)                        *)
(* ------------------------------------------------------------------ *)

module Tau_transform = Aggshap_reductions.Tau_transform
module Value_fn = Aggshap_agg.Value_fn
module Catalog = Aggshap_workload.Catalog

let gamma n = (3 * n) + ((n * n * n) / 4)
(* Monotonically increasing (and injective) on the small non-negative
   integers the generator produces. *)

let test_obs_f3 () =
  (* Shapley(f, α∘(γ∘τ_id)∘Q)[D] = Shapley(π f, α∘τ_id∘Q)[π D]. *)
  let q = Catalog.q_xyy_full in
  let tau_gamma =
    Value_fn.custom ~rel:"R" ~descr:"gamma∘id" (fun args ->
        match Value.as_int args.(0) with
        | Some n -> Q.of_int (gamma n)
        | None -> Q.zero)
  in
  let tau_id = Value_fn.id ~rel:"R" ~pos:0 in
  let config = { Generate.tuples_per_relation = 3; domain = 3; exo_fraction = 0.25 } in
  List.iter
    (fun alpha ->
      let a_gamma = Agg_query.make alpha tau_gamma q in
      let a_id = Agg_query.make alpha tau_id q in
      for seed = 0 to 3 do
        let d = Generate.random_database ~seed ~config q in
        if Database.endo_size d >= 1 && Database.endo_size d <= 9 then begin
          let d', pi = Tau_transform.transform q ~var:"x" gamma d in
          List.iter
            (fun f ->
              let direct = Naive.shapley a_gamma d f in
              let via_pi = Naive.shapley a_id d' (pi f) in
              if not (Q.equal direct via_pi) then
                Alcotest.failf "obs F.3 (%s, seed %d): %s direct=%s via π=%s"
                  (Aggregate.to_string alpha) seed (Fact.to_string f) (Q.to_string direct)
                  (Q.to_string via_pi))
            (Database.endogenous d)
        end
      done)
    [ Aggregate.Max; Aggregate.Avg; Aggregate.Median ]

let test_theorem_7_1 () =
  let q = Catalog.q_xyy_full in
  let tau_gamma =
    Value_fn.custom ~rel:"R" ~descr:"gamma∘id" (fun args ->
        match Value.as_int args.(0) with
        | Some n -> Q.of_int (gamma n)
        | None -> Q.zero)
  in
  let config = { Generate.tuples_per_relation = 3; domain = 3; exo_fraction = 0.25 } in
  List.iter
    (fun alpha ->
      let a_gamma = Agg_query.make alpha tau_gamma q in
      for seed = 0 to 3 do
        let d = Generate.random_database ~seed ~config q in
        if Database.endo_size d >= 1 && Database.endo_size d <= 9 then
          List.iter
            (fun f ->
              let direct = Naive.shapley a_gamma d f in
              let via_identity = Tau_transform.theorem_7_1_lhs alpha q ~var:"x" gamma d f in
              if not (Q.equal direct via_identity) then
                Alcotest.failf "thm 7.1 (%s, seed %d): %s direct=%s identity=%s"
                  (Aggregate.to_string alpha) seed (Fact.to_string f) (Q.to_string direct)
                  (Q.to_string via_identity))
            (Database.endogenous d)
      done)
    [ Aggregate.Max; Aggregate.Avg; Aggregate.Median ]

let () =
  Alcotest.run "reductions"
    [ ( "set cover",
        [ Alcotest.test_case "brute force" `Quick test_setcover_brute_force;
          Alcotest.test_case "exact covers" `Quick test_exact_covers;
        ] );
      ( "avg (Lemma D.3)",
        [ Alcotest.test_case "gadget equation" `Quick test_avg_gadget_equation;
          Alcotest.test_case "system is Hilbert ⊗ Hankel" `Quick test_avg_system_is_kronecker;
          Alcotest.test_case "end-to-end pipeline" `Slow test_avg_pipeline;
        ] );
      ( "quantile (Lemma D.4)",
        [ Alcotest.test_case "gadget simulates the game" `Quick
            test_quantile_gadget_simulates_game;
          Alcotest.test_case "shapley matches the game" `Quick
            test_quantile_shapley_matches_game;
        ] );
      ( "permanent (Lemma E.2)",
        [ Alcotest.test_case "gadget equation" `Quick test_permanent_gadget_equation;
          Alcotest.test_case "end-to-end pipeline" `Slow test_permanent_pipeline;
        ] );
      ( "lifting (Lemma 5.3/D.1)",
        [ Alcotest.test_case "witness analysis" `Quick test_lifting_analyze;
          Alcotest.test_case "Shapley values preserved" `Slow test_lifting_preserves_shapley;
        ] );
      ( "tau robustness (Thm 7.1)",
        [ Alcotest.test_case "Observation F.3: π relocates γ into the data" `Quick
            test_obs_f3;
          Alcotest.test_case "Theorem 7.1 identity" `Quick test_theorem_7_1;
        ] );
    ]
