(* Tests for bags, aggregate functions, value functions, and AggCQ
   evaluation. *)

module Q = Aggshap_arith.Rational
module Bag = Aggshap_agg.Bag
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Catalog = Aggshap_workload.Catalog

let bag_of_ints ns = Bag.of_list (List.map Q.of_int ns)

let check_q msg expected actual = Alcotest.(check string) msg expected (Q.to_string actual)

let test_bag () =
  let b = bag_of_ints [ 3; 1; 3; 2 ] in
  Alcotest.(check int) "size" 4 (Bag.size b);
  Alcotest.(check int) "distinct" 3 (Bag.distinct b);
  Alcotest.(check int) "multiplicity" 2 (Bag.multiplicity (Q.of_int 3) b);
  Alcotest.(check bool) "has duplicates" true (Bag.has_duplicates b);
  Alcotest.(check bool) "no duplicates" false (Bag.has_duplicates (bag_of_ints [ 1; 2 ]));
  Alcotest.(check (list string)) "elements sorted" [ "1"; "2"; "3"; "3" ]
    (List.map Q.to_string (Bag.elements b));
  let u = Bag.union b (bag_of_ints [ 3; 5 ]) in
  Alcotest.(check int) "union size" 6 (Bag.size u);
  Alcotest.(check int) "union multiplicity" 3 (Bag.multiplicity (Q.of_int 3) u);
  Alcotest.check_raises "negative multiplicity"
    (Invalid_argument "Bag.add: negative multiplicity") (fun () ->
      ignore (Bag.add ~mult:(-1) Q.one Bag.empty))

let test_aggregates_on_empty () =
  List.iter
    (fun alpha ->
      check_q (Aggregate.to_string alpha ^ " on empty") "0"
        (Aggregate.apply alpha Bag.empty))
    Aggregate.all

let test_aggregates () =
  let b = bag_of_ints [ 3; 1; 3; 2 ] in
  check_q "sum" "9" (Aggregate.apply Aggregate.Sum b);
  check_q "count" "4" (Aggregate.apply Aggregate.Count b);
  check_q "count-distinct" "3" (Aggregate.apply Aggregate.Count_distinct b);
  check_q "min" "1" (Aggregate.apply Aggregate.Min b);
  check_q "max" "3" (Aggregate.apply Aggregate.Max b);
  check_q "avg" "9/4" (Aggregate.apply Aggregate.Avg b);
  check_q "median even" "5/2" (Aggregate.apply Aggregate.Median b);
  check_q "median odd" "2" (Aggregate.apply Aggregate.Median (bag_of_ints [ 1; 2; 3 ]));
  check_q "dup" "1" (Aggregate.apply Aggregate.Has_duplicates b);
  check_q "no dup" "0" (Aggregate.apply Aggregate.Has_duplicates (bag_of_ints [ 1; 2 ]))

let test_quantiles () =
  let b = bag_of_ints [ 10; 20; 30; 40 ] in
  check_q "q=1/4" "15" (Aggregate.apply (Aggregate.Quantile (Q.of_ints 1 4)) b);
  check_q "q=1/2" "25" (Aggregate.apply (Aggregate.Quantile Q.half) b);
  check_q "q=3/4" "35" (Aggregate.apply (Aggregate.Quantile (Q.of_ints 3 4)) b);
  (* Median of a single element. *)
  check_q "singleton" "7" (Aggregate.apply Aggregate.Median (bag_of_ints [ 7 ]))

let test_constant_per_singleton () =
  let expected =
    [ (Aggregate.Sum, false); (Aggregate.Count, false);
      (Aggregate.Count_distinct, true); (Aggregate.Min, true);
      (Aggregate.Max, true); (Aggregate.Avg, true); (Aggregate.Median, true);
      (Aggregate.Has_duplicates, false) ]
  in
  List.iter
    (fun (alpha, want) ->
      Alcotest.(check bool) (Aggregate.to_string alpha) want
        (Aggregate.is_constant_per_singleton alpha))
    expected

let test_aggregate_strings () =
  List.iter
    (fun alpha ->
      match Aggregate.of_string (Aggregate.to_string alpha) with
      | Ok alpha' ->
        Alcotest.(check string) "roundtrip" (Aggregate.to_string alpha)
          (Aggregate.to_string alpha')
      | Error msg -> Alcotest.fail msg)
    (Aggregate.Quantile (Q.of_ints 1 3) :: Aggregate.all);
  (match Aggregate.of_string "quantile:7/2" with
   | Ok _ -> Alcotest.fail "quantile out of range accepted"
   | Error _ -> ())

let test_value_fns () =
  let args = [| Aggshap_relational.Value.Int (-5); Aggshap_relational.Value.Int 3 |] in
  check_q "id" "-5" (Value_fn.apply (Value_fn.id ~rel:"R" ~pos:0) args);
  check_q "gt true" "1" (Value_fn.apply (Value_fn.gt ~rel:"R" ~pos:1 Q.zero) args);
  check_q "gt false" "0" (Value_fn.apply (Value_fn.gt ~rel:"R" ~pos:0 Q.zero) args);
  check_q "relu clamps" "0" (Value_fn.apply (Value_fn.relu ~rel:"R" ~pos:0) args);
  check_q "relu passes" "3" (Value_fn.apply (Value_fn.relu ~rel:"R" ~pos:1) args);
  check_q "const" "9" (Value_fn.apply (Value_fn.const ~rel:"R" (Q.of_int 9)) args)

(* AggCQ evaluation on the running example: average over a query with a
   projection (a person taking two courses counts once). *)
let course_db =
  Database.of_facts ~provenance:Database.Exogenous
    [ Fact.of_ints "Earns" [ 1; 100 ];
      Fact.of_ints "Earns" [ 2; 200 ];
      Fact.of_ints "Took" [ 1; 7 ];
      Fact.of_ints "Took" [ 1; 8 ];
      Fact.of_ints "Took" [ 2; 7 ];
      Fact.of_ints "Course" [ 70; 7 ];
      Fact.of_ints "Course" [ 80; 8 ];
    ]

let avg_salary =
  Agg_query.make Aggregate.Avg (Value_fn.id ~rel:"Earns" ~pos:1) Catalog.q_course

let test_agg_query_eval () =
  check_q "average salary" "150" (Agg_query.eval avg_salary course_db);
  let bag = Agg_query.answer_bag avg_salary course_db in
  Alcotest.(check int) "one value per person" 2 (Bag.size bag);
  (* Empty database evaluates to α(∅) = 0. *)
  check_q "empty" "0" (Agg_query.eval avg_salary Database.empty)

let test_agg_query_validation () =
  Alcotest.check_raises "τ must be localized on an atom of Q"
    (Invalid_argument
       "Agg_query.make: τ is localized on Nope, not an atom of Q(p, s) <- Earns(p, s), \
        Took(p, c), Course(n, c)") (fun () ->
      ignore (Agg_query.make Aggregate.Avg (Value_fn.id ~rel:"Nope" ~pos:0) Catalog.q_course))

let test_localization_violation () =
  (* Q(x) <- R(x,y), S(y) with τ = id on R's second column: the answer
     x=1 is produced by two homomorphisms with different τ-values. *)
  let q = Catalog.q_xyy in
  let a = Agg_query.make Aggregate.Max (Value_fn.id ~rel:"R" ~pos:1) q in
  let db =
    Database.of_facts
      [ Fact.of_ints "R" [ 1; 10 ]; Fact.of_ints "R" [ 1; 20 ];
        Fact.of_ints "S" [ 10 ]; Fact.of_ints "S" [ 20 ] ]
  in
  (try
     ignore (Agg_query.answer_bag a db);
     Alcotest.fail "expected a localization error"
   with Invalid_argument _ -> ());
  (* With τ on S instead, the same database is fine. *)
  let a2 = Agg_query.make Aggregate.Max (Value_fn.id ~rel:"S" ~pos:0) q in
  (* Hmm: S-localized τ on q_xyy is still answer-ambiguous for x=1. *)
  (try ignore (Agg_query.answer_bag a2 db); Alcotest.fail "expected a localization error"
   with Invalid_argument _ -> ());
  (* A genuinely localized τ: constant. *)
  let a3 = Agg_query.make Aggregate.Max (Value_fn.const ~rel:"R" Q.one) q in
  check_q "constant τ" "1" (Agg_query.eval a3 db)

let () =
  Alcotest.run "agg"
    [ ( "bags",
        [ Alcotest.test_case "bag operations" `Quick test_bag ] );
      ( "aggregates",
        [ Alcotest.test_case "empty bag" `Quick test_aggregates_on_empty;
          Alcotest.test_case "values" `Quick test_aggregates;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "constant per singleton" `Quick test_constant_per_singleton;
          Alcotest.test_case "string roundtrip" `Quick test_aggregate_strings;
        ] );
      ( "value functions",
        [ Alcotest.test_case "builtins" `Quick test_value_fns ] );
      ( "agg queries",
        [ Alcotest.test_case "evaluation" `Quick test_agg_query_eval;
          Alcotest.test_case "validation" `Quick test_agg_query_validation;
          Alcotest.test_case "localization check" `Quick test_localization_violation;
        ] );
    ]
