test/test_core.ml: Aggshap_agg Aggshap_arith Aggshap_core Aggshap_cq Aggshap_relational Aggshap_workload Alcotest Array Hashtbl List Option Printf Random
