test/test_cq.ml: Aggshap_cq Aggshap_relational Aggshap_workload Alcotest Array List String
