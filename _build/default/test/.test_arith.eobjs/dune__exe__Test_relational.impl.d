test/test_relational.ml: Aggshap_cq Aggshap_relational Alcotest List
