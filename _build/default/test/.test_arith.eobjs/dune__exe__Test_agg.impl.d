test/test_agg.ml: Aggshap_agg Aggshap_arith Aggshap_relational Aggshap_workload Alcotest List
