test/test_agg.mli:
