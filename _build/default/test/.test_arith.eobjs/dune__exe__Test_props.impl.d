test/test_props.ml: Aggshap_agg Aggshap_arith Aggshap_core Aggshap_cq Aggshap_relational Aggshap_workload Alcotest Array Gen Int List QCheck QCheck_alcotest Stdlib String
