test/test_workload.ml: Aggshap_cq Aggshap_relational Aggshap_workload Alcotest Array Format List Option Printf QCheck QCheck_alcotest Stdlib String
