test/test_arith.ml: Aggshap_arith Alcotest List QCheck QCheck_alcotest String
