test/test_linalg.ml: Aggshap_arith Aggshap_linalg Alcotest Array List Printf Random
