lib/agg/agg_query.mli: Aggregate Aggshap_arith Aggshap_cq Aggshap_relational Bag Format Value_fn
