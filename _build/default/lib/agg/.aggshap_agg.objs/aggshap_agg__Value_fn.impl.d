lib/agg/value_fn.ml: Aggshap_arith Aggshap_relational Array Format Printf
