lib/agg/aggregate.mli: Aggshap_arith Bag Format
