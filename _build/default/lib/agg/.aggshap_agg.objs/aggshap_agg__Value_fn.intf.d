lib/agg/value_fn.mli: Aggshap_arith Aggshap_relational Format
