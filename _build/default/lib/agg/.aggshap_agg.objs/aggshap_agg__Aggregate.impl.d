lib/agg/aggregate.ml: Aggshap_arith Bag Format Option String
