lib/agg/bag.ml: Aggshap_arith Format List Map Option
