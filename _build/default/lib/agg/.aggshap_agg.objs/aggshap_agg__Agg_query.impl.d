lib/agg/agg_query.ml: Aggregate Aggshap_arith Aggshap_cq Aggshap_relational Array Bag Format List Map Printf Stdlib String Value_fn
