lib/agg/bag.mli: Aggshap_arith Format
