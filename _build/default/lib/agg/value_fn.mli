(** Localized value functions τ (Section 2).

    A value function assigns a number to each query answer. A {e localized}
    τ is determined by the atom [R(z̄)] of one relation: whenever two
    homomorphisms agree on [z̄], they get the same value. We therefore
    represent τ as a function of the {e R-fact argument tuple} — the form
    in which every algorithm of the paper consumes it — together with the
    name of the relation it is localized on. *)

type t = {
  rel : string;  (** the relation the function is localized on *)
  apply : Aggshap_relational.Value.t array -> Aggshap_arith.Rational.t;
      (** value of an answer, as a function of the R-fact arguments *)
  descr : string;
}

val apply : t -> Aggshap_relational.Value.t array -> Aggshap_arith.Rational.t

(** {1 The paper's standard value functions (Equations 2–4)} *)

val id : rel:string -> pos:int -> t
(** [τ_id^pos]: the [pos]-th argument (0-based), which must be an integer
    constant. *)

val gt : rel:string -> pos:int -> Aggshap_arith.Rational.t -> t
(** [τ_{>b}^pos]: 1 if the argument exceeds [b], else 0. *)

val relu : rel:string -> pos:int -> t
(** [τ_ReLU^pos]: the argument if positive, else 0. *)

val const : rel:string -> Aggshap_arith.Rational.t -> t
(** The constant function [τ ≡ c] (localized on every atom; [rel] fixes
    the bookkeeping choice). *)

val custom :
  rel:string ->
  descr:string ->
  (Aggshap_relational.Value.t array -> Aggshap_arith.Rational.t) ->
  t

val numeric : Aggshap_relational.Value.t -> Aggshap_arith.Rational.t
(** Interprets a constant as a rational.
    @raise Invalid_argument on non-numeric constants. *)

val pp : Format.formatter -> t -> unit
