module Q = Aggshap_arith.Rational
module QMap = Map.Make (Q)

type t = int QMap.t
(* Invariant: all multiplicities are >= 1. *)

let empty = QMap.empty
let is_empty = QMap.is_empty

let add ?(mult = 1) v bag =
  if mult < 0 then invalid_arg "Bag.add: negative multiplicity";
  if mult = 0 then bag
  else
    QMap.update v (function None -> Some mult | Some m -> Some (m + mult)) bag

let of_list vs = List.fold_left (fun b v -> add v b) empty vs
let singleton v = add v empty
let size bag = QMap.fold (fun _ m acc -> m + acc) bag 0
let distinct bag = QMap.cardinal bag
let multiplicity v bag = match QMap.find_opt v bag with None -> 0 | Some m -> m
let mem v bag = QMap.mem v bag
let union a b = QMap.union (fun _ m1 m2 -> Some (m1 + m2)) a b
let to_sorted_list bag = QMap.bindings bag

let elements bag =
  List.concat_map (fun (v, m) -> List.init m (fun _ -> v)) (to_sorted_list bag)

let has_duplicates bag = QMap.exists (fun _ m -> m >= 2) bag
let min_elt bag = Option.map fst (QMap.min_binding_opt bag)
let max_elt bag = Option.map fst (QMap.max_binding_opt bag)

let sum bag = QMap.fold (fun v m acc -> Q.add acc (Q.mul_int v m)) bag Q.zero

let equal = QMap.equal ( = )

let pp fmt bag =
  Format.fprintf fmt "{{";
  List.iteri
    (fun i (v, m) ->
      if i > 0 then Format.fprintf fmt ", ";
      if m = 1 then Q.pp fmt v else Format.fprintf fmt "%a^%d" Q.pp v m)
    (to_sorted_list bag);
  Format.fprintf fmt "}}"
