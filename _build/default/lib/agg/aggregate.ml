module Q = Aggshap_arith.Rational

type t =
  | Sum
  | Count
  | Count_distinct
  | Min
  | Max
  | Avg
  | Median
  | Quantile of Q.t
  | Has_duplicates

let quantile_of = function
  | Median -> Some Q.half
  | Quantile q -> Some q
  | Sum | Count | Count_distinct | Min | Max | Avg | Has_duplicates -> None

let check_quantile q =
  if Q.compare q Q.zero <= 0 || Q.compare q Q.one >= 0 then
    invalid_arg "Aggregate: quantile parameter must lie in (0,1)"

(* Qnt_q(B) = (x_⌈q|B|⌉ + x_⌊q|B|+1⌋) / 2 where x_i is the i-th smallest
   element (1-based). The "smallest" reading is the one consistent with
   the paper's own use in Lemma D.4. *)
let quantile q bag =
  check_quantile q;
  let n = Bag.size bag in
  if n = 0 then Q.zero
  else begin
    let qn = Q.mul_int q n in
    let i1 = Aggshap_arith.Bigint.to_int_exn (Q.ceil qn) in
    let i2 = Aggshap_arith.Bigint.to_int_exn (Q.floor (Q.add qn Q.one)) in
    let nth_smallest i =
      (* 1-based rank in the multiset. *)
      let rec go remaining = function
        | [] -> invalid_arg "Aggregate.quantile: rank out of range"
        | (v, m) :: rest -> if remaining <= m then v else go (remaining - m) rest
      in
      go i (Bag.to_sorted_list bag)
    in
    Q.div_int (Q.add (nth_smallest i1) (nth_smallest i2)) 2
  end

let apply t bag =
  if Bag.is_empty bag then Q.zero
  else
    match t with
    | Sum -> Bag.sum bag
    | Count -> Q.of_int (Bag.size bag)
    | Count_distinct -> Q.of_int (Bag.distinct bag)
    | Min -> Option.get (Bag.min_elt bag)
    | Max -> Option.get (Bag.max_elt bag)
    | Avg -> Q.div_int (Bag.sum bag) (Bag.size bag)
    | Median -> quantile Q.half bag
    | Quantile q -> quantile q bag
    | Has_duplicates -> if Bag.has_duplicates bag then Q.one else Q.zero

let is_constant_per_singleton = function
  | Min | Max | Count_distinct | Avg | Median | Quantile _ -> true
  | Sum | Count | Has_duplicates -> false

let all = [ Sum; Count; Count_distinct; Min; Max; Avg; Median; Has_duplicates ]

let to_string = function
  | Sum -> "sum"
  | Count -> "count"
  | Count_distinct -> "count-distinct"
  | Min -> "min"
  | Max -> "max"
  | Avg -> "avg"
  | Median -> "median"
  | Quantile q -> "quantile:" ^ Q.to_string q
  | Has_duplicates -> "has-duplicates"

let of_string s =
  match s with
  | "sum" -> Ok Sum
  | "count" -> Ok Count
  | "count-distinct" | "cdist" -> Ok Count_distinct
  | "min" -> Ok Min
  | "max" -> Ok Max
  | "avg" | "average" -> Ok Avg
  | "median" | "med" -> Ok Median
  | "has-duplicates" | "dup" -> Ok Has_duplicates
  | _ ->
    if String.length s > 9 && String.sub s 0 9 = "quantile:" then begin
      match Q.of_string (String.sub s 9 (String.length s - 9)) with
      | q ->
        if Q.compare q Q.zero > 0 && Q.compare q Q.one < 0 then Ok (Quantile q)
        else Error "quantile parameter must lie in (0,1)"
      | exception _ -> Error ("malformed quantile parameter in " ^ s)
    end
    else Error ("unknown aggregate function: " ^ s)

let pp fmt t = Format.pp_print_string fmt (to_string t)
