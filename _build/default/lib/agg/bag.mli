(** Finite bags (multisets) of rational numbers.

    Aggregate functions in the paper are functions
    [α : B_fin(ℝ) → ℝ]; this module is that domain. *)

type t

val empty : t
val is_empty : t -> bool

val add : ?mult:int -> Aggshap_arith.Rational.t -> t -> t
(** Adds [mult] (default 1) copies. @raise Invalid_argument if [mult < 0]. *)

val of_list : Aggshap_arith.Rational.t list -> t
val singleton : Aggshap_arith.Rational.t -> t
val size : t -> int
(** Total number of elements, counting multiplicity. *)

val distinct : t -> int
(** Number of distinct elements. *)

val multiplicity : Aggshap_arith.Rational.t -> t -> int
val mem : Aggshap_arith.Rational.t -> t -> bool
val union : t -> t -> t
(** Additive union: multiplicities add up. *)

val to_sorted_list : t -> (Aggshap_arith.Rational.t * int) list
(** (value, multiplicity) pairs, values ascending. *)

val elements : t -> Aggshap_arith.Rational.t list
(** All elements with repetition, ascending. *)

val has_duplicates : t -> bool
val min_elt : t -> Aggshap_arith.Rational.t option
val max_elt : t -> Aggshap_arith.Rational.t option
val sum : t -> Aggshap_arith.Rational.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
