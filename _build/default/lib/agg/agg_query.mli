(** Aggregate conjunctive queries [A = α ∘ τ ∘ Q] (Section 2). *)

type t = {
  alpha : Aggregate.t;
  tau : Value_fn.t;
  query : Aggshap_cq.Cq.t;
}

val make : Aggregate.t -> Value_fn.t -> Aggshap_cq.Cq.t -> t
(** @raise Invalid_argument if τ is localized on a relation that is not an
    atom of the query, or the query is invalid. *)

val answer_values :
  t ->
  Aggshap_relational.Database.t ->
  (Aggshap_relational.Value.t array * Aggshap_arith.Rational.t) list
(** The answers of [Q(D)] paired with their τ-values, in deterministic
    (tuple) order.
    @raise Invalid_argument if τ is not actually localized on [D] — i.e.
    two homomorphisms yield the same answer but different τ-values. *)

val answer_bag : t -> Aggshap_relational.Database.t -> Bag.t
(** The bag [{{τ(t) | t ∈ Q(D)}}]: one τ-value per {e answer} (answers
    form a set; multiplicity in the bag arises from distinct answers
    sharing a τ-value).
    @raise Invalid_argument if τ is not actually localized on [D] — i.e.
    two homomorphisms yield the same answer but different τ-values. *)

val eval : t -> Aggshap_relational.Database.t -> Aggshap_arith.Rational.t
(** [A(D) = α(answer_bag)]; 0 when there are no answers. *)

val tau_of_fact : t -> Aggshap_relational.Fact.t -> Aggshap_arith.Rational.t
(** τ applied to a fact of the localization relation.
    @raise Invalid_argument for facts of other relations. *)

val pp : Format.formatter -> t -> unit
