module Q = Aggshap_arith.Rational
module Value = Aggshap_relational.Value

type t = {
  rel : string;
  apply : Value.t array -> Q.t;
  descr : string;
}

let apply t args = t.apply args

let numeric v =
  match Value.as_int v with
  | Some n -> Q.of_int n
  | None -> invalid_arg ("Value_fn: non-numeric constant " ^ Value.to_string v)

let nth args pos =
  if pos < 0 || pos >= Array.length args then
    invalid_arg "Value_fn: position out of range"
  else numeric args.(pos)

let id ~rel ~pos =
  { rel; apply = (fun args -> nth args pos); descr = Printf.sprintf "id[%d]" pos }

let gt ~rel ~pos b =
  { rel;
    apply = (fun args -> if Q.compare (nth args pos) b > 0 then Q.one else Q.zero);
    descr = Printf.sprintf ">%s[%d]" (Q.to_string b) pos }

let relu ~rel ~pos =
  { rel;
    apply =
      (fun args ->
        let v = nth args pos in
        if Q.sign v > 0 then v else Q.zero);
    descr = Printf.sprintf "relu[%d]" pos }

let const ~rel c =
  { rel; apply = (fun _ -> c); descr = Printf.sprintf "const %s" (Q.to_string c) }

let custom ~rel ~descr apply = { rel; apply; descr }

let pp fmt t = Format.fprintf fmt "%s@%s" t.descr t.rel
