(** Aggregate functions α : B_fin(ℝ) → ℝ, with α(∅) = 0 (Section 2). *)

type t =
  | Sum
  | Count
  | Count_distinct
  | Min
  | Max
  | Avg
  | Median  (** [Quantile 1/2] *)
  | Quantile of Aggshap_arith.Rational.t
      (** [Qnt_q]; the parameter must lie in (0,1). *)
  | Has_duplicates  (** [Dup]: 1 iff some element has multiplicity ≥ 2 *)

val apply : t -> Bag.t -> Aggshap_arith.Rational.t
(** Evaluates the aggregate; 0 on the empty bag.
    @raise Invalid_argument for [Quantile q] with [q] outside (0,1). *)

val quantile_of : t -> Aggshap_arith.Rational.t option
(** [Some q] for [Median]/[Quantile q], [None] otherwise. *)

val is_constant_per_singleton : t -> bool
(** Proposition 3.2's premise: α gives the same value to all nonempty bags
    over a single element. Holds for Min, Max, CDist, Avg and quantiles;
    fails for Sum, Count and Dup. *)

val all : t list
(** The aggregate functions studied in the paper (with [Median] standing
    for the quantile family). *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Accepts [sum], [count], [count-distinct], [min], [max], [avg],
    [median], [quantile:<p>/<q>], [has-duplicates]. *)

val pp : Format.formatter -> t -> unit
