module Value = Aggshap_relational.Value
module Fact = Aggshap_relational.Fact
module Database = Aggshap_relational.Database

type token =
  | Ident of string
  | Int_lit of int
  | Str_lit of string
  | Lparen
  | Rparen
  | Comma
  | Arrow
  | Period
  | At_word of string

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '\''

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let push t = tokens := t :: !tokens in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then incr i
    else if c = '#' then i := n
    else if c = '(' then (push Lparen; incr i)
    else if c = ')' then (push Rparen; incr i)
    else if c = ',' then (push Comma; incr i)
    else if c = '.' then (push Period; incr i)
    else if c = '@' then begin
      incr i;
      let start = !i in
      while !i < n && is_ident_char s.[!i] do incr i done;
      if !i = start then fail "expected word after '@'";
      push (At_word (String.sub s start (!i - start)))
    end
    else if c = '<' && !i + 1 < n && s.[!i + 1] = '-' then (push Arrow; i := !i + 2)
    else if c = ':' && !i + 1 < n && s.[!i + 1] = '-' then (push Arrow; i := !i + 2)
    else if c = '\'' || c = '"' then begin
      let quote = c in
      incr i;
      let start = !i in
      while !i < n && s.[!i] <> quote do incr i done;
      if !i >= n then fail "unterminated string literal";
      push (Str_lit (String.sub s start (!i - start)));
      incr i
    end
    else if c = '-' || (c >= '0' && c <= '9') then begin
      let start = !i in
      incr i;
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do incr i done;
      let text = String.sub s start (!i - start) in
      match int_of_string_opt text with
      | Some v -> push (Int_lit v)
      | None -> fail "malformed number %S" text
    end
    else if is_ident_char c && c <> '\'' then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do incr i done;
      push (Ident (String.sub s start (!i - start)))
    end
    else fail "unexpected character %C" c
  done;
  List.rev !tokens

(* Parser state: a mutable token list plus a counter for fresh [_] vars. *)
type state = { mutable toks : token list; mutable fresh : int }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let next st =
  match st.toks with
  | [] -> fail "unexpected end of input"
  | t :: rest ->
    st.toks <- rest;
    t

let expect st tok what =
  let t = next st in
  if t <> tok then fail "expected %s" what

let parse_term st =
  match next st with
  | Int_lit v -> Cq.Const (Value.Int v)
  | Str_lit v -> Cq.Const (Value.Str v)
  | Ident "_" ->
    st.fresh <- st.fresh + 1;
    Cq.Var (Printf.sprintf "_anon%d" st.fresh)
  | Ident x -> Cq.Var x
  | _ -> fail "expected a term"

let parse_term_list st =
  expect st Lparen "'('";
  match peek st with
  | Some Rparen ->
    ignore (next st);
    []
  | _ ->
    let rec go acc =
      let t = parse_term st in
      match next st with
      | Comma -> go (t :: acc)
      | Rparen -> List.rev (t :: acc)
      | _ -> fail "expected ',' or ')'"
    in
    go []

let parse_atom st =
  match next st with
  | Ident rel -> { Cq.rel; terms = Array.of_list (parse_term_list st) }
  | _ -> fail "expected a relation name"

let parse_query_tokens st =
  let name, head_terms =
    match next st with
    | Ident name -> (name, parse_term_list st)
    | _ -> fail "expected a head predicate"
  in
  let head =
    List.map
      (function
        | Cq.Var x -> x
        | Cq.Const _ -> fail "constants are not allowed in the head")
      head_terms
  in
  expect st Arrow "'<-'";
  let rec atoms acc =
    let a = parse_atom st in
    match peek st with
    | Some Comma ->
      ignore (next st);
      atoms (a :: acc)
    | Some Period ->
      ignore (next st);
      List.rev (a :: acc)
    | None -> List.rev (a :: acc)
    | Some _ -> fail "expected ',' or end of query"
  in
  let body = atoms [] in
  if st.toks <> [] then fail "trailing tokens after query";
  (name, head, body)

let parse_query s =
  match tokenize s with
  | exception Parse_error msg -> Error msg
  | toks -> begin
    let st = { toks; fresh = 0 } in
    match parse_query_tokens st with
    | name, head, body -> begin
      let q = { Cq.name; head; body } in
      match Cq.validate q with
      | Ok () -> Ok q
      | Error msg -> Error msg
    end
    | exception Parse_error msg -> Error msg
  end

let parse_query_exn s =
  match parse_query s with
  | Ok q -> q
  | Error msg -> invalid_arg ("Parser.parse_query: " ^ msg ^ " in " ^ s)

let parse_fact s =
  match tokenize s with
  | exception Parse_error msg -> Error msg
  | [] -> Error "empty fact"
  | toks -> begin
    let st = { toks; fresh = 0 } in
    match
      let a = parse_atom st in
      let args =
        Array.map
          (function
            | Cq.Const v -> v
            | Cq.Var x -> fail "variable %s not allowed in a fact" x)
          a.terms
      in
      let provenance =
        match st.toks with
        | [] -> Database.Endogenous
        | [ At_word "endo" ] -> Database.Endogenous
        | [ At_word "exo" ] -> Database.Exogenous
        | [ At_word w ] -> fail "unknown annotation @%s" w
        | _ -> fail "trailing tokens after fact"
      in
      ({ Fact.rel = a.rel; args }, provenance)
    with
    | result -> Ok result
    | exception Parse_error msg -> Error msg
  end

let parse_database s =
  let lines = String.split_on_char '\n' s in
  let rec go db lineno = function
    | [] -> Ok db
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go db (lineno + 1) rest
      else begin
        match parse_fact trimmed with
        | Ok (f, p) -> go (Database.add ~provenance:p f db) (lineno + 1) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
      end
  in
  go Database.empty 1 lines
