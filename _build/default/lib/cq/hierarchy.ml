type cls =
  | General
  | Exists_hierarchical
  | All_hierarchical
  | Q_hierarchical
  | Sq_hierarchical

module StringSet = Set.Make (String)

let atom_set q x = StringSet.of_list (Cq.atoms_of q x)

let pairs xs =
  let rec go acc = function
    | [] -> acc
    | x :: rest -> go (List.rev_append (List.map (fun y -> (x, y)) rest) acc) rest
  in
  go [] xs

let hierarchical_wrt q vs =
  let sets = List.map (fun x -> (x, atom_set q x)) vs in
  List.for_all
    (fun ((_, sx), (_, sy)) ->
      StringSet.subset sx sy || StringSet.subset sy sx
      || StringSet.is_empty (StringSet.inter sx sy))
    (pairs sets)

let is_exists_hierarchical q = hierarchical_wrt q (Cq.exist_vars q)
let is_all_hierarchical q = hierarchical_wrt q (Cq.vars q)

let is_q_hierarchical q =
  is_all_hierarchical q
  && begin
    let vs = Cq.vars q in
    List.for_all
      (fun y ->
        (not (Cq.is_free q y))
        || List.for_all
             (fun x ->
               (not (StringSet.subset (atom_set q y) (atom_set q x))) || Cq.is_free q x)
             vs)
      vs
  end

let is_sq_hierarchical q =
  is_q_hierarchical q
  && begin
    let vs = Cq.vars q in
    (* No free variable's atom set is strictly contained in another
       variable's atom set. *)
    List.for_all
      (fun x ->
        (not (Cq.is_free q x))
        || List.for_all
             (fun y ->
               let sx = atom_set q x and sy = atom_set q y in
               not (StringSet.subset sx sy && not (StringSet.equal sx sy)))
             vs)
      vs
  end

let classify q =
  if is_sq_hierarchical q then Sq_hierarchical
  else if is_q_hierarchical q then Q_hierarchical
  else if is_all_hierarchical q then All_hierarchical
  else if is_exists_hierarchical q then Exists_hierarchical
  else General

let cls_to_string = function
  | General -> "general"
  | Exists_hierarchical -> "exists-hierarchical"
  | All_hierarchical -> "all-hierarchical"
  | Q_hierarchical -> "q-hierarchical"
  | Sq_hierarchical -> "sq-hierarchical"

let rank = function
  | General -> 0
  | Exists_hierarchical -> 1
  | All_hierarchical -> 2
  | Q_hierarchical -> 3
  | Sq_hierarchical -> 4

let cls_leq a b = rank a >= rank b

let pp_cls fmt c = Format.pp_print_string fmt (cls_to_string c)
