lib/cq/parser.ml: Aggshap_relational Array Cq List Printf String
