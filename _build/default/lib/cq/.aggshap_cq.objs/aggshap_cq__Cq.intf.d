lib/cq/cq.mli: Aggshap_relational Format
