lib/cq/decompose.ml: Aggshap_relational Array Cq List Set Stdlib String
