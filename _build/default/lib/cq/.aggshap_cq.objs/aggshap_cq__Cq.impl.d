lib/cq/cq.ml: Aggshap_relational Array Format List Printf String
