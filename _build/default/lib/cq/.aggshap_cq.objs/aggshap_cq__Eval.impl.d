lib/cq/eval.ml: Aggshap_relational Array Cq List Map Set Stdlib String
