lib/cq/hierarchy.mli: Cq Format
