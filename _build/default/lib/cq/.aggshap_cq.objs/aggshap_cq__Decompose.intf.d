lib/cq/decompose.mli: Aggshap_relational Cq
