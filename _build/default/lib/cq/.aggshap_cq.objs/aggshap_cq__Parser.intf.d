lib/cq/parser.mli: Aggshap_relational Cq
