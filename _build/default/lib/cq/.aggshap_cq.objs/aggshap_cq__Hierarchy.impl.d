lib/cq/hierarchy.ml: Cq Format List Set String
