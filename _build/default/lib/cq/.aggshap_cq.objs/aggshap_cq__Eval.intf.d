lib/cq/eval.mli: Aggshap_relational Cq Map
