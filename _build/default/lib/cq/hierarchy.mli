(** Hierarchy classification of CQs (Section 2 and Section 6 of the paper).

    The chain of classes, from most general to most restrictive:

    {v general ⊃ ∃-hierarchical ⊃ all-hierarchical ⊃ q-hierarchical ⊃ sq-hierarchical v}

    Each class is the tractability frontier for a set of aggregate
    functions (Figure 1): ∃-hierarchical for Sum/Count and membership,
    all-hierarchical for Min/Max/CDist, q-hierarchical for Avg/Qnt_q,
    sq-hierarchical for Dup. *)

type cls =
  | General        (** not even ∃-hierarchical *)
  | Exists_hierarchical
  | All_hierarchical
  | Q_hierarchical
  | Sq_hierarchical

val hierarchical_wrt : Cq.t -> string list -> bool
(** [hierarchical_wrt q vs]: for every pair of variables in [vs], their
    atom sets are comparable by inclusion or disjoint. *)

val is_exists_hierarchical : Cq.t -> bool
(** Hierarchical w.r.t. the existential variables. *)

val is_all_hierarchical : Cq.t -> bool
(** Hierarchical w.r.t. all variables. *)

val is_q_hierarchical : Cq.t -> bool
(** All-hierarchical, and whenever [atoms(y) ⊆ atoms(x)] with [y] free,
    [x] is free too (Berkholz, Keppeler, Schweikardt 2017). *)

val is_sq_hierarchical : Cq.t -> bool
(** Q-hierarchical, and no free variable has an atom set strictly
    contained in that of another variable (Section 6). *)

val classify : Cq.t -> cls
(** The most restrictive class the CQ belongs to. *)

val cls_to_string : cls -> string
val cls_leq : cls -> cls -> bool
(** [cls_leq a b]: membership in [a] implies membership in [b]
    ([a] is at least as restrictive). *)

val pp_cls : Format.formatter -> cls -> unit
