(** Textual front-end for queries and facts.

    Query syntax (datalog-like):
    {v Q(x, z) <- R(x, y), S(y), T(z) v}
    Bare identifiers are variables; integer literals and quoted strings
    (['...'] or ["..."]) are constants; [_] is an anonymous (fresh)
    existential variable; [:-] is accepted for [<-]; a trailing period is
    optional.

    Fact syntax (one per line):
    {v R(1, 'alice')          -- endogenous (default)
       S(2) @exo              -- exogenous v}
    [#] starts a comment. *)

val parse_query : string -> (Cq.t, string) result

val parse_query_exn : string -> Cq.t
(** @raise Invalid_argument on parse errors. *)

val parse_fact :
  string ->
  (Aggshap_relational.Fact.t * Aggshap_relational.Database.provenance, string) result

val parse_database : string -> (Aggshap_relational.Database.t, string) result
(** Parses a multi-line fact listing; blank lines and comments allowed. *)
