type t = { num : Bigint.t; den : Bigint.t }
(* Invariants: [den > 0]; [gcd num den = 1]; zero is [0/1]. *)

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den = if Bigint.is_negative den then (Bigint.neg num, Bigint.neg den) else (num, den) in
    let g = Bigint.gcd num den in
    if Bigint.is_one g then { num; den }
    else { num = Bigint.div num g; den = Bigint.div den g }
  end

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)

let zero = of_int 0
let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)
let half = of_ints 1 2

let num t = t.num
let den t = t.den

let sign t = Bigint.sign t.num
let is_zero t = Bigint.is_zero t.num
let is_integer t = Bigint.is_one t.den

let neg t = { t with num = Bigint.neg t.num }
let abs t = { t with num = Bigint.abs t.num }

let inv t =
  if is_zero t then raise Division_by_zero
  else if Bigint.is_negative t.num then { num = Bigint.neg t.den; den = Bigint.neg t.num }
  else { num = t.den; den = t.num }

let add a b =
  make
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)
let div a b = mul a (inv b)
let mul_int a n = make (Bigint.mul_int a.num n) a.den
let div_int a n = make a.num (Bigint.mul_int a.den n)

let pow x e =
  if e >= 0 then { num = Bigint.pow x.num e; den = Bigint.pow x.den e }
  else inv { num = Bigint.pow x.num (-e); den = Bigint.pow x.den (-e) }

let sum = List.fold_left add zero

let compare a b = Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)
let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let hash t = (Bigint.hash t.num * 65599 + Bigint.hash t.den) land max_int
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor t =
  let q, r = Bigint.divmod t.num t.den in
  if Bigint.is_negative r then Bigint.pred q else q

let ceil t = Bigint.neg (floor (neg t))

let to_float t = Bigint.to_float t.num /. Bigint.to_float t.den

let to_string t =
  if is_integer t then Bigint.to_string t.num
  else Bigint.to_string t.num ^ "/" ^ Bigint.to_string t.den

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (Bigint.of_string s)
  | Some i ->
    let p = String.sub s 0 i in
    let q = String.sub s (i + 1) (String.length s - i - 1) in
    make (Bigint.of_string p) (Bigint.of_string q)

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
