lib/arith/combinat.mli: Bigint Rational
