lib/arith/rational.ml: Bigint Format List String
