lib/arith/bigint.ml: Array Buffer Format List Printf Stdlib String
