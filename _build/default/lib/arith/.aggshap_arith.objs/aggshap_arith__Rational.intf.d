lib/arith/rational.mli: Bigint Format
