lib/arith/combinat.ml: Array Bigint List Rational Stdlib
