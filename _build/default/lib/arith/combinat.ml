(* Memoized combinatorics. The memo tables grow geometrically and are
   shared across the whole process; all entries are immutable bignums. *)

let factorial_table = ref [| Bigint.one |]
let factorial_filled = ref 1

let factorial n =
  if n < 0 then invalid_arg "Combinat.factorial: negative argument";
  if n >= Array.length !factorial_table then begin
    let cap = max (n + 1) (2 * Array.length !factorial_table) in
    let table = Array.make cap Bigint.one in
    Array.blit !factorial_table 0 table 0 !factorial_filled;
    factorial_table := table
  end;
  if n >= !factorial_filled then begin
    for i = !factorial_filled to n do
      !factorial_table.(i) <- Bigint.mul_int !factorial_table.(i - 1) i
    done;
    factorial_filled := n + 1
  end;
  !factorial_table.(n)

let binomial n k =
  if n < 0 then invalid_arg "Combinat.binomial: negative n";
  if k < 0 || k > n then Bigint.zero
  else
    let k = min k (n - k) in
    Bigint.div (factorial n) (Bigint.mul (factorial k) (factorial (n - k)))

let shapley_coefficient ~players ~before =
  if before < 0 || before >= players then
    invalid_arg "Combinat.shapley_coefficient: need 0 <= before < players";
  Rational.make
    (Bigint.mul (factorial before) (factorial (players - before - 1)))
    (factorial players)

let harmonic_table : Rational.t array ref = ref [| Rational.zero |]
let harmonic_filled = ref 1

let harmonic n =
  if n < 0 then invalid_arg "Combinat.harmonic: negative argument";
  if n >= Array.length !harmonic_table then begin
    let cap = max (n + 1) (2 * Array.length !harmonic_table) in
    let table = Array.make cap Rational.zero in
    Array.blit !harmonic_table 0 table 0 !harmonic_filled;
    harmonic_table := table
  end;
  if n >= !harmonic_filled then begin
    for i = !harmonic_filled to n do
      !harmonic_table.(i) <- Rational.add !harmonic_table.(i - 1) (Rational.of_ints 1 i)
    done;
    harmonic_filled := n + 1
  end;
  !harmonic_table.(n)

let falling_factorial n k =
  let rec go acc i = if i >= k then acc else go (Bigint.mul_int acc (n - i)) (i + 1) in
  if k <= 0 then Bigint.one else go Bigint.one 0

let divisors n =
  if n <= 0 then invalid_arg "Combinat.divisors: nonpositive argument";
  let rec go d acc =
    if d * d > n then acc
    else if n mod d = 0 then
      let acc = d :: acc in
      let acc = if d <> n / d then (n / d) :: acc else acc in
      go (d + 1) acc
    else go (d + 1) acc
  in
  List.sort Stdlib.compare (go 1 [])

let compositions2 k = List.init (k + 1) (fun k1 -> (k1, k - k1))
