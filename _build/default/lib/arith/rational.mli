(** Exact rational numbers over {!Bigint}.

    Values are kept in canonical form: the denominator is positive and
    coprime with the numerator; zero is [0/1]. Exactness is essential:
    Shapley values are alternating sums of ratios of factorials, and the
    hardness-reduction linear systems (Hilbert and Hankel matrices) are
    catastrophically ill-conditioned in floating point. *)

type t

val zero : t
val one : t
val two : t
val half : t
val minus_one : t

(** {1 Construction} *)

val of_int : int -> t
val of_bigint : Bigint.t -> t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] normalizes the fraction. @raise Division_by_zero. *)

val of_ints : int -> int -> t
(** [of_ints num den]. @raise Division_by_zero. *)

val num : t -> Bigint.t
val den : t -> Bigint.t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val mul_int : t -> int -> t
val div_int : t -> int -> t
val pow : t -> int -> t
(** [pow x e] for any [e]; negative exponents invert. *)

val sum : t list -> t

(** {1 Comparison} *)

val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Rounding and conversion} *)

val floor : t -> Bigint.t
val ceil : t -> Bigint.t
val to_float : t -> float
val to_string : t -> string
(** ["p/q"], or ["p"] when the value is an integer. *)

val of_string : string -> t
(** Accepts ["p"], ["p/q"]. @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> t -> unit

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
