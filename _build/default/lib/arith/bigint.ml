(* Sign-magnitude bignums, little-endian limbs in base 2^30.

   Base 2^30 keeps every intermediate product of two limbs below 2^60 and
   every product-plus-carry below 2^62, which fits comfortably in OCaml's
   63-bit native integers. Division is Knuth's Algorithm D (TAOCP vol. 2,
   4.3.1); the classic qhat estimation and add-back correction are kept
   exactly as in the reference formulation. *)

let limb_bits = 30
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = { sign : int; mag : int array }
(* Invariants: [sign] is -1, 0 or 1; [mag] has no trailing (most
   significant) zero limb; [sign = 0] iff [mag] is empty. *)

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = Array.length mag in
  let rec top i = if i > 0 && mag.(i - 1) = 0 then top (i - 1) else i in
  let len = top n in
  if len = 0 then zero
  else if len = n then { sign; mag }
  else { sign; mag = Array.sub mag 0 len }

let of_small n =
  (* [n] must satisfy [0 <= n]. *)
  if n = 0 then zero
  else if n < base then { sign = 1; mag = [| n |] }
  else if n < base * base then { sign = 1; mag = [| n land limb_mask; n lsr limb_bits |] }
  else
    { sign = 1;
      mag =
        [| n land limb_mask;
           (n lsr limb_bits) land limb_mask;
           n lsr (2 * limb_bits) |] }

let of_int n =
  if n = 0 then zero
  else if n > 0 then of_small n
  else if n = min_int then
    (* [-n] overflows; build from [max_int] instead. *)
    let m = of_small max_int in
    let m1 = { m with mag = Array.copy m.mag } in
    let mag = m1.mag in
    (* max_int + 1: increment with carry. *)
    let rec inc i carry mag =
      if carry = 0 then mag
      else if i < Array.length mag then begin
        let s = mag.(i) + carry in
        mag.(i) <- s land limb_mask;
        inc (i + 1) (s lsr limb_bits) mag
      end
      else begin
        let mag' = Array.make (Array.length mag + 1) 0 in
        Array.blit mag 0 mag' 0 (Array.length mag);
        mag'.(Array.length mag) <- carry;
        mag'
      end
    in
    { sign = -1; mag = inc 0 1 mag }
  else { (of_small (-n)) with sign = -1 }

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign t = t.sign
let is_zero t = t.sign = 0
let is_negative t = t.sign < 0
let is_one t = t.sign = 1 && Array.length t.mag = 1 && t.mag.(0) = 1
let is_even t = t.sign = 0 || t.mag.(0) land 1 = 0

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let equal a b = compare a b = 0

let hash t =
  Array.fold_left (fun acc limb -> (acc * 31 + limb) land max_int) t.sign t.mag

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then { t with sign = 1 } else t

(* Magnitude addition: no sign involved. *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lmax = Stdlib.max la lb in
  let out = Array.make (lmax + 1) 0 in
  let carry = ref 0 in
  for i = 0 to lmax - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  out.(lmax) <- !carry;
  out

(* Magnitude subtraction: requires [a >= b]. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then begin
      out.(i) <- s + base;
      borrow := 1
    end
    else begin
      out.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  out

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else
    match compare_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sign (sub_mag a.mag b.mag)
    | _ -> normalize b.sign (sub_mag b.mag a.mag)

let sub a b = add a (neg b)

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- cur land limb_mask;
        carry := cur lsr limb_bits
      done;
      out.(i + lb) <- out.(i + lb) + !carry
    done;
    out
  end

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else normalize (a.sign * b.sign) (mul_mag a.mag b.mag)

let mul_int a n = mul a (of_int n)
let add_int a n = add a (of_int n)
let succ a = add a one
let pred a = sub a one

(* Division of a magnitude by a single limb [d] (0 < d < base). *)
let divmod_small_mag u d =
  let n = Array.length u in
  let q = Array.make n 0 in
  let rem = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!rem lsl limb_bits) lor u.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (q, !rem)

(* Left-shift a magnitude by [s] bits, 0 <= s < limb_bits. *)
let shift_left_bits u s =
  if s = 0 then Array.copy u
  else begin
    let n = Array.length u in
    let out = Array.make (n + 1) 0 in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let v = (u.(i) lsl s) lor !carry in
      out.(i) <- v land limb_mask;
      carry := v lsr limb_bits
    done;
    out.(n) <- !carry;
    out
  end

(* Right-shift a magnitude by [s] bits, 0 <= s < limb_bits. *)
let shift_right_bits u s =
  if s = 0 then Array.copy u
  else begin
    let n = Array.length u in
    let out = Array.make n 0 in
    for i = 0 to n - 1 do
      let low = u.(i) lsr s in
      let high = if i + 1 < n then (u.(i + 1) lsl (limb_bits - s)) land limb_mask else 0 in
      out.(i) <- low lor high
    done;
    out
  end

(* Knuth Algorithm D on magnitudes; returns (quotient, remainder).
   Precondition: [Array.length v >= 2], [v] has no leading zero limb. *)
let divmod_knuth u v =
  let n = Array.length v in
  (* Normalize so that the top limb of v has its high bit set. *)
  let rec leading_shift x s = if x land (base lsr 1) <> 0 then s else leading_shift (x lsl 1) (s + 1) in
  let s = leading_shift v.(n - 1) 0 in
  let vn = Array.sub (shift_left_bits v s) 0 n in
  (* The dividend must carry one extra (possibly zero) top limb. *)
  let un =
    let shifted = shift_left_bits u s in
    if Array.length shifted = Array.length u + 1 then shifted
    else Array.append shifted [| 0 |]
  in
  let m = Array.length un - n - 1 in
  let q = Array.make (Stdlib.max (m + 1) 1) 0 in
  for j = m downto 0 do
    let num = (un.(j + n) lsl limb_bits) lor un.(j + n - 1) in
    let qhat = ref (num / vn.(n - 1)) in
    let rhat = ref (num mod vn.(n - 1)) in
    let continue_ = ref true in
    while
      !continue_
      && (!qhat >= base
          || !qhat * vn.(n - 2) > (!rhat lsl limb_bits) lor un.(j + n - 2))
    do
      decr qhat;
      rhat := !rhat + vn.(n - 1);
      if !rhat >= base then continue_ := false
    done;
    (* Multiply and subtract. *)
    let k = ref 0 in
    for i = 0 to n - 1 do
      let p = !qhat * vn.(i) in
      let t = un.(i + j) - !k - (p land limb_mask) in
      un.(i + j) <- t land limb_mask;
      k := (p lsr limb_bits) - (t asr limb_bits)
    done;
    let t = un.(j + n) - !k in
    un.(j + n) <- t;
    if t < 0 then begin
      (* qhat was one too large: add back. *)
      decr qhat;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let t = un.(i + j) + vn.(i) + !carry in
        un.(i + j) <- t land limb_mask;
        carry := t lsr limb_bits
      done;
      un.(j + n) <- un.(j + n) + !carry
    end;
    q.(j) <- !qhat
  done;
  let r = shift_right_bits (Array.sub un 0 n) s in
  (q, r)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else if compare_mag a.mag b.mag < 0 then (zero, a)
  else begin
    let qmag, rmag =
      if Array.length b.mag = 1 then begin
        let q, r = divmod_small_mag a.mag b.mag.(0) in
        (q, if r = 0 then [||] else [| r |])
      end
      else divmod_knuth a.mag b.mag
    in
    let q = normalize (a.sign * b.sign) qmag in
    let r = normalize a.sign rmag in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e lsr 1)
    else go acc (mul b b) (e lsr 1)
  in
  go one b e

let gcd a b =
  let rec go a b = if is_zero b then a else go b (rem a b) in
  go (abs a) (abs b)

let to_int_opt t =
  (* A native int holds at most 63 bits: up to 3 limbs with constraints. *)
  match Array.length t.mag with
  | 0 -> Some 0
  | 1 -> Some (t.sign * t.mag.(0))
  | 2 -> Some (t.sign * ((t.mag.(1) lsl limb_bits) lor t.mag.(0)))
  | 3 ->
    let high = t.mag.(2) in
    let v () = (high lsl (2 * limb_bits)) lor (t.mag.(1) lsl limb_bits) lor t.mag.(0) in
    if high < 1 lsl (62 - 2 * limb_bits) then Some (t.sign * v ())
    else if t.sign < 0 && high = 1 lsl (62 - 2 * limb_bits) && t.mag.(1) = 0 && t.mag.(0) = 0
    then Some min_int
    else None
  | _ -> None

let to_int_exn t =
  match to_int_opt t with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: out of native int range"

let to_float t =
  let basef = float_of_int base in
  let m = Array.fold_right (fun limb acc -> (acc *. basef) +. float_of_int limb) t.mag 0.0 in
  float_of_int t.sign *. m

let chunk_base = 1_000_000_000
let chunk_digits = 9

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks mag acc =
      if Array.length mag = 0 then acc
      else
        let q, r = divmod_small_mag mag chunk_base in
        let q = (normalize 1 q).mag in
        chunks q (r :: acc)
    in
    match chunks t.mag [] with
    | [] -> "0"
    | first :: rest ->
      if t.sign < 0 then Buffer.add_char buf '-';
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%0*d" chunk_digits c)) rest;
      Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  for i = start to len - 1 do
    if not (s.[i] >= '0' && s.[i] <= '9') then
      invalid_arg "Bigint.of_string: invalid character"
  done;
  let int_pow10 e =
    let rec go acc e = if e = 0 then acc else go (acc * 10) (e - 1) in
    go 1 e
  in
  let acc = ref zero in
  let i = ref start in
  while !i < len do
    let take = Stdlib.min chunk_digits (len - !i) in
    let part = String.sub s !i take in
    let part_val = int_of_string part in
    acc := add (mul !acc (of_int (int_pow10 take))) (of_int part_val);
    i := !i + take
  done;
  if sign < 0 then neg !acc else !acc

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
