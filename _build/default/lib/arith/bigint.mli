(** Arbitrary-precision signed integers.

    Sign-magnitude representation with little-endian limbs in base [2^30].
    All operations are purely functional. This module exists because the
    Shapley coefficients [k!(n-k-1)!/n!] and the subset counts manipulated
    by the dynamic programs exceed 63-bit integers for any interesting
    database size, and no bignum package is available in this environment. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

val of_int : int -> t

val to_int_opt : t -> int option
(** [None] if the value does not fit in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure if the value does not fit in a native [int]. *)

val to_float : t -> float
(** Approximate conversion; may overflow to [infinity]. *)

val of_string : string -> t
(** Parses an optionally-signed decimal numeral.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Predicates and comparison} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_one : t -> bool
val is_negative : t -> bool
val is_even : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], truncated towards zero
    (so [r] has the sign of [a] and [|r| < |b|]).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val mul_int : t -> int -> t
val add_int : t -> int -> t

val pow : t -> int -> t
(** [pow b e] for [e >= 0]. @raise Invalid_argument on negative exponent. *)

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative; [gcd 0 0 = 0]. *)

(** {1 Infix operators}

    Grouped in a submodule so callers can [open Bigint.Infix] locally. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
