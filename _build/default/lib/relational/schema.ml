module StringMap = Map.Make (String)

type t = int StringMap.t

let empty = StringMap.empty

let declare name arity schema =
  if arity < 0 then invalid_arg "Schema.declare: negative arity";
  match StringMap.find_opt name schema with
  | Some a when a <> arity ->
    invalid_arg
      (Printf.sprintf "Schema.declare: %s already declared with arity %d (got %d)" name a
         arity)
  | _ -> StringMap.add name arity schema

let of_list entries =
  List.fold_left (fun s (name, arity) -> declare name arity s) empty entries

let arity schema name = StringMap.find_opt name schema
let mem schema name = StringMap.mem name schema
let relations schema = StringMap.bindings schema

let merge a b = StringMap.fold declare b a

let check_fact schema (f : Fact.t) =
  match StringMap.find_opt f.rel schema with
  | None -> Error (Printf.sprintf "%s: relation %s is not in the schema" (Fact.to_string f) f.rel)
  | Some a when a <> Fact.arity f ->
    Error
      (Printf.sprintf "%s: arity %d does not match %s/%d" (Fact.to_string f) (Fact.arity f)
         f.rel a)
  | Some _ -> Ok ()

let check_database schema db =
  let errors =
    Database.fold
      (fun f _ acc -> match check_fact schema f with Ok () -> acc | Error e -> e :: acc)
      db []
  in
  match errors with
  | [] -> Ok ()
  | errs -> Error (List.rev errs)

let pp fmt schema =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (name, a) -> Format.fprintf fmt "%s/%d@," name a) (relations schema);
  Format.fprintf fmt "@]"
