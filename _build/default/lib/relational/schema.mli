(** Database schemas: relation names with arities (Section 2).

    A schema is a finite set of relation schemas [R/k] with distinct
    names. Queries induce schemas (each atom declares its relation's
    arity), and databases can be validated against them — catching the
    classic silent mistake of a fact whose arity matches no atom and is
    therefore treated as a null player. *)

type t

val empty : t

val declare : string -> int -> t -> t
(** @raise Invalid_argument if the name is already declared with a
    different arity. *)

val of_list : (string * int) list -> t

val arity : t -> string -> int option
val mem : t -> string -> bool
val relations : t -> (string * int) list
(** Sorted by name. *)

val merge : t -> t -> t
(** @raise Invalid_argument on conflicting arities. *)

val check_fact : t -> Fact.t -> (unit, string) result
(** The relation must be declared with the fact's arity. *)

val check_database : t -> Database.t -> (unit, string list) result
(** All violations, one message per offending fact. *)

val pp : Format.formatter -> t -> unit
