type t =
  | Int of int
  | Str of string

let int n = Int n
let str s = Str s

let as_int = function
  | Int n -> Some n
  | Str _ -> None

let equal a b =
  match a, b with
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Int _, Str _ | Str _, Int _ -> false

let compare a b =
  match a, b with
  | Int x, Int y -> Stdlib.compare x y
  | Str x, Str y -> String.compare x y
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1

let hash = function
  | Int n -> n land max_int
  | Str s -> Hashtbl.hash s

let to_string = function
  | Int n -> string_of_int n
  | Str s -> s

let pp fmt v = Format.pp_print_string fmt (to_string v)

let of_string s =
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> Str s
