(** Databases with endogenous/exogenous provenance.

    Following the paper (Section 2), a database is a finite set of facts,
    each tagged endogenous (a player in the Shapley game) or exogenous
    (taken for granted). The structure is persistent; all updates return
    new databases. *)

type provenance =
  | Endogenous
  | Exogenous

type t

val empty : t
val is_empty : t -> bool

val add : ?provenance:provenance -> Fact.t -> t -> t
(** Default provenance is [Endogenous]. Re-adding an existing fact
    overwrites its provenance. *)

val of_list : (Fact.t * provenance) list -> t

val of_facts : ?provenance:provenance -> Fact.t list -> t
(** All facts get the same provenance (default [Endogenous]). *)

val remove : Fact.t -> t -> t

val set_provenance : provenance -> Fact.t -> t -> t
(** @raise Not_found if the fact is absent. *)

val mem : Fact.t -> t -> bool

val provenance : t -> Fact.t -> provenance option

val union : t -> t -> t
(** Right-biased on provenance for facts present in both. *)

val filter : (Fact.t -> provenance -> bool) -> t -> t

(** {1 Views} *)

val facts : t -> Fact.t list
(** All facts, in [Fact.compare] order. *)

val endogenous : t -> Fact.t list
val exogenous : t -> Fact.t list
val size : t -> int
val endo_size : t -> int

val relation : t -> string -> Fact.t list
(** Facts of one relation, both provenances. *)

val relations : t -> string list
(** Names of relations with at least one fact. *)

val restrict_relations : string list -> t -> t * t
(** [restrict_relations names db] splits [db] into (facts of the named
    relations, the rest). *)

val fold : (Fact.t -> provenance -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Fact.t -> provenance -> unit) -> t -> unit
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
