(** Constants that may occur in database facts.

    The paper's domain [Const] is abstract; we support integers and
    strings, which cover every construction in the paper (the hardness
    gadgets use integer constants, the examples use strings). *)

type t =
  | Int of int
  | Str of string

val int : int -> t
val str : string -> t

val as_int : t -> int option
(** [Some n] when the value is an integer constant. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_string : string -> t
(** Integer-looking tokens parse as [Int]; everything else as [Str]. *)
