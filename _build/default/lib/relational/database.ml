type provenance =
  | Endogenous
  | Exogenous

module FactMap = Map.Make (Fact)

type t = provenance FactMap.t

let empty = FactMap.empty
let is_empty = FactMap.is_empty
let add ?(provenance = Endogenous) fact db = FactMap.add fact provenance db
let of_list entries = List.fold_left (fun db (f, p) -> add ~provenance:p f db) empty entries

let of_facts ?(provenance = Endogenous) facts =
  List.fold_left (fun db f -> add ~provenance f db) empty facts

let remove = FactMap.remove

let set_provenance p fact db =
  if FactMap.mem fact db then FactMap.add fact p db else raise Not_found

let mem = FactMap.mem
let provenance db fact = FactMap.find_opt fact db
let union a b = FactMap.union (fun _ _ pb -> Some pb) a b
let filter = FactMap.filter

let facts db = List.map fst (FactMap.bindings db)

let endogenous db =
  FactMap.bindings db
  |> List.filter_map (fun (f, p) -> if p = Endogenous then Some f else None)

let exogenous db =
  FactMap.bindings db
  |> List.filter_map (fun (f, p) -> if p = Exogenous then Some f else None)

let size = FactMap.cardinal
let endo_size db = FactMap.fold (fun _ p n -> if p = Endogenous then n + 1 else n) db 0

let relation db name =
  FactMap.bindings db
  |> List.filter_map (fun ((f : Fact.t), _) ->
      if String.equal f.rel name then Some f else None)

let relations db =
  FactMap.fold (fun (f : Fact.t) _ acc ->
      if List.mem f.rel acc then acc else f.rel :: acc)
    db []
  |> List.sort String.compare

let restrict_relations names db =
  FactMap.partition (fun (f : Fact.t) _ -> List.mem f.rel names) db

let fold f db init = FactMap.fold f db init
let iter f db = FactMap.iter f db
let equal a b = FactMap.equal ( = ) a b

let pp fmt db =
  Format.fprintf fmt "@[<v>";
  FactMap.iter
    (fun f p ->
      Format.fprintf fmt "%a%s@," Fact.pp f
        (match p with Endogenous -> " [endo]" | Exogenous -> " [exo]"))
    db;
  Format.fprintf fmt "@]"
