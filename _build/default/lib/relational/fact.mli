(** Database facts: a relation name applied to a tuple of constants. *)

type t = { rel : string; args : Value.t array }

val make : string -> Value.t list -> t

val of_ints : string -> int list -> t
(** Convenience for the integer-valued gadget databases. *)

val arity : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
