type t = { rel : string; args : Value.t array }

let make rel args = { rel; args = Array.of_list args }
let of_ints rel ns = make rel (List.map Value.int ns)

let arity f = Array.length f.args

let compare a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c
  else begin
    let la = Array.length a.args and lb = Array.length b.args in
    if la <> lb then Stdlib.compare la lb
    else begin
      let rec go i =
        if i >= la then 0
        else
          let c = Value.compare a.args.(i) b.args.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
    end
  end

let equal a b = compare a b = 0

let hash f =
  Array.fold_left (fun acc v -> (acc * 31 + Value.hash v) land max_int)
    (Hashtbl.hash f.rel) f.args

let to_string f =
  Printf.sprintf "%s(%s)" f.rel
    (String.concat ", " (Array.to_list (Array.map Value.to_string f.args)))

let pp fmt f = Format.pp_print_string fmt (to_string f)
