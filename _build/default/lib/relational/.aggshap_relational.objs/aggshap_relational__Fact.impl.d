lib/relational/fact.ml: Array Format Hashtbl List Printf Stdlib String Value
