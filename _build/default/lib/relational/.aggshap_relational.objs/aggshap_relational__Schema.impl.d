lib/relational/schema.ml: Database Fact Format List Map Printf String
