lib/relational/database.ml: Fact Format List Map String
