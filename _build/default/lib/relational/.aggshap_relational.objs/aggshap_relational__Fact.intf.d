lib/relational/fact.mli: Format Value
