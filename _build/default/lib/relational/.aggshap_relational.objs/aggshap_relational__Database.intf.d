lib/relational/database.mli: Fact Format
