lib/relational/schema.mli: Database Fact Format
