module Cq = Aggshap_cq.Cq

type config = {
  max_atoms : int;
  max_arity : int;
  num_vars : int;
  head_probability : float;
}

let default = { max_atoms = 3; max_arity = 3; num_vars = 4; head_probability = 0.4 }

let generate ?(config = default) ~seed () =
  let rng = Random.State.make [| seed |] in
  let num_atoms = 1 + Random.State.int rng config.max_atoms in
  let var i = Printf.sprintf "v%d" i in
  let body =
    List.init num_atoms (fun j ->
        let arity = 1 + Random.State.int rng config.max_arity in
        let terms =
          List.init arity (fun _ -> Cq.var (var (Random.State.int rng config.num_vars)))
        in
        Cq.atom (Printf.sprintf "Rel%d" j) terms)
  in
  let body_vars =
    List.sort_uniq String.compare (List.concat_map Cq.atom_vars body)
  in
  let head =
    List.filter (fun _ -> Random.State.float rng 1.0 < config.head_probability) body_vars
  in
  Cq.make ~name:"Q" ~head body

let free_position q =
  let rec scan = function
    | [] -> None
    | (a : Cq.atom) :: rest ->
      let found = ref None in
      Array.iteri
        (fun i t ->
          match t with
          | Cq.Var v when Cq.is_free q v && !found = None -> found := Some (a.Cq.rel, i)
          | _ -> ())
        a.Cq.terms;
      (match !found with Some _ as r -> r | None -> scan rest)
  in
  scan q.Cq.body
