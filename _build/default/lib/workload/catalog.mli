(** The example CQs of Figure 1 and friends — one representative per
    class, used across tests, examples and benchmarks. *)

val q_single : Aggshap_cq.Cq.t
(** [Q(x) ← R(x)] — single atom (sq-hierarchical). *)

val q_single_pair : Aggshap_cq.Cq.t
(** [Q(x, y) ← R(x, y)] — single binary atom (sq-hierarchical). *)

val q1_sq : Aggshap_cq.Cq.t
(** [Q1(x) ← R(x,y), S(x)] — sq-hierarchical (Section 6). *)

val q2_sq : Aggshap_cq.Cq.t
(** [Q2(x,y) ← R(x,y), S(x,y,z)] — sq-hierarchical (Section 6). *)

val q3_sq : Aggshap_cq.Cq.t
(** [Q3(x,z) ← R(x,y), S(x), T(z)] — sq-hierarchical, disconnected
    (Section 6). *)

val q4_q : Aggshap_cq.Cq.t
(** [Q4(x,y) ← R(x,y), S(x)] — q-hierarchical but not sq-hierarchical
    (Section 6). *)

val q_xyy : Aggshap_cq.Cq.t
(** [Q(x) ← R(x,y), S(y)] — all-hierarchical but not q-hierarchical; the
    minimal hard query of Section 5.2. *)

val q_xyy_full : Aggshap_cq.Cq.t
(** [Q(x,y) ← R(x,y), S(y)] — q-hierarchical but not sq-hierarchical;
    hard for Dup (Theorem 6.1). *)

val q_exists : Aggshap_cq.Cq.t
(** [Q(x) ← R(x), S(x,y), T(y)] — ∃-hierarchical but not
    all-hierarchical. *)

val q_nonhier : Aggshap_cq.Cq.t
(** [Q() ← R(x), S(x,y), T(y)] — not ∃-hierarchical (the RST query). *)

val q_course : Aggshap_cq.Cq.t
(** Example 2.2: [Q(p,s) ← Earns(p,s), Took(p,c), Course(n,c)]. *)

val figure1 : (string * Aggshap_cq.Cq.t * Aggshap_cq.Hierarchy.cls) list
(** Name, query and expected class for each catalog entry. *)
