(** Random conjunctive queries (without self-joins).

    Used by property tests to exercise classification and the solvers on
    query shapes beyond the fixed catalog. *)

type config = {
  max_atoms : int;
  max_arity : int;
  num_vars : int;  (** size of the variable pool *)
  head_probability : float;  (** chance that a body variable is free *)
}

val default : config

val generate : ?config:config -> seed:int -> unit -> Aggshap_cq.Cq.t
(** A valid CQ: fresh relation names (no self-joins), head variables
    occurring in the body. *)

val free_position : Aggshap_cq.Cq.t -> (string * int) option
(** Some atom (relation name) and argument position holding a free
    variable — a spot where [τ_id] is well-defined on answers. *)
