lib/workload/random_cq.mli: Aggshap_cq
