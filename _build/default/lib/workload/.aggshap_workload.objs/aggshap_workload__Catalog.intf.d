lib/workload/catalog.mli: Aggshap_cq
