lib/workload/catalog.ml: Aggshap_cq
