lib/workload/generate.mli: Aggshap_cq Aggshap_relational
