lib/workload/generate.ml: Aggshap_cq Aggshap_relational Array List Random
