lib/workload/random_cq.ml: Aggshap_cq Array List Printf Random String
