(** Synthetic database generators.

    The paper's results are data-complexity statements, so any data
    exercises the same code paths; these generators produce joinable
    databases for a given CQ shape (small shared domains make joins
    likely) with controllable size and endogenous/exogenous mix. *)

type config = {
  tuples_per_relation : int;
  domain : int;  (** constants are drawn from [0 .. domain-1] *)
  exo_fraction : float;  (** probability that a fact is exogenous *)
}

val default : config

val random_database :
  ?seed:int -> ?config:config -> Aggshap_cq.Cq.t -> Aggshap_relational.Database.t
(** Random facts for every relation of the query. Duplicates collapse,
    so relations may end up smaller than [tuples_per_relation]. *)

val random_database_sized :
  ?seed:int ->
  ?config:config ->
  Aggshap_cq.Cq.t ->
  endo:int ->
  Aggshap_relational.Database.t
(** Like {!random_database}, but retries/trims to get exactly [endo]
    endogenous facts (exogenous facts stay random). Used by scaling
    benchmarks where [endo] is the x-axis. *)

val chain_database :
  rows:int -> Aggshap_relational.Database.t
(** The deterministic scaling family for [Q(x) ← R(x,y), S(y)] and
    [Q(x,y) ← R(x,y), S(y)]: facts [R(i, i mod √rows)] and [S(j)], all
    endogenous. *)
