module Parser = Aggshap_cq.Parser
module Hierarchy = Aggshap_cq.Hierarchy

let q_single = Parser.parse_query_exn "Q(x) <- R(x)"
let q_single_pair = Parser.parse_query_exn "Q(x, y) <- R(x, y)"
let q1_sq = Parser.parse_query_exn "Q1(x) <- R(x, y), S(x)"
let q2_sq = Parser.parse_query_exn "Q2(x, y) <- R(x, y), S(x, y, z)"
let q3_sq = Parser.parse_query_exn "Q3(x, z) <- R(x, y), S(x), T(z)"
let q4_q = Parser.parse_query_exn "Q4(x, y) <- R(x, y), S(x)"
let q_xyy = Parser.parse_query_exn "Qxyy(x) <- R(x, y), S(y)"
let q_xyy_full = Parser.parse_query_exn "Qfull(x, y) <- R(x, y), S(y)"
let q_exists = Parser.parse_query_exn "Qe(x) <- R(x), S(x, y), T(y)"
let q_nonhier = Parser.parse_query_exn "Qb() <- R(x), S(x, y), T(y)"
let q_course = Parser.parse_query_exn "Q(p, s) <- Earns(p, s), Took(p, c), Course(n, c)"

let figure1 =
  [ ("Q(x) <- R(x)", q_single, Hierarchy.Sq_hierarchical);
    ("Q1(x) <- R(x,y), S(x)", q1_sq, Hierarchy.Sq_hierarchical);
    ("Q2(x,y) <- R(x,y), S(x,y,z)", q2_sq, Hierarchy.Sq_hierarchical);
    ("Q3(x,z) <- R(x,y), S(x), T(z)", q3_sq, Hierarchy.Sq_hierarchical);
    ("Q4(x,y) <- R(x,y), S(x)", q4_q, Hierarchy.Q_hierarchical);
    ("Qfull(x,y) <- R(x,y), S(y)", q_xyy_full, Hierarchy.Q_hierarchical);
    ("Qxyy(x) <- R(x,y), S(y)", q_xyy, Hierarchy.All_hierarchical);
    ("Qe(x) <- R(x), S(x,y), T(y)", q_exists, Hierarchy.Exists_hierarchical);
    ("Qb() <- R(x), S(x,y), T(y)", q_nonhier, Hierarchy.General);
  ]
