module Cq = Aggshap_cq.Cq
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Value = Aggshap_relational.Value

type config = {
  tuples_per_relation : int;
  domain : int;
  exo_fraction : float;
}

let default = { tuples_per_relation = 4; domain = 3; exo_fraction = 0.25 }

let arities q =
  List.map (fun (a : Cq.atom) -> (a.Cq.rel, Array.length a.Cq.terms)) q.Cq.body

let random_fact rng domain rel arity =
  { Fact.rel; args = Array.init arity (fun _ -> Value.Int (Random.State.int rng domain)) }

let random_database ?seed ?(config = default) q =
  let rng =
    match seed with Some s -> Random.State.make [| s |] | None -> Random.State.make_self_init ()
  in
  List.fold_left
    (fun db (rel, arity) ->
      let rec add db = function
        | 0 -> db
        | k ->
          let f = random_fact rng config.domain rel arity in
          let provenance =
            if Random.State.float rng 1.0 < config.exo_fraction then Database.Exogenous
            else Database.Endogenous
          in
          add (Database.add ~provenance f db) (k - 1)
      in
      add db config.tuples_per_relation)
    Database.empty (arities q)

let random_database_sized ?(seed = 0) ?(config = default) q ~endo =
  (* Grow the per-relation tuple count until enough endogenous facts
     exist, then demote the surplus to exogenous (a deterministic trim). *)
  let rec attempt tuples round =
    (* Grow the domain along with the tuple count: a small constant pool
       caps the number of distinct facts and could make the target
       unreachable. *)
    let cfg = { config with tuples_per_relation = tuples; domain = max config.domain tuples } in
    let db = random_database ~seed:(seed + (1000 * round)) ~config:cfg q in
    if Database.endo_size db >= endo then db
    else if round > 20 then
      invalid_arg "Generate.random_database_sized: cannot reach requested size"
    else attempt (tuples + 1 + (tuples / 2)) (round + 1)
  in
  let db = attempt (max 1 (endo / List.length q.Cq.body)) 0 in
  let surplus = ref (Database.endo_size db - endo) in
  Database.fold
    (fun f p acc ->
      if p = Database.Endogenous && !surplus > 0 then begin
        decr surplus;
        Database.set_provenance Database.Exogenous f acc
      end
      else acc)
    db db

let chain_database ~rows =
  let groups = max 1 (int_of_float (sqrt (float_of_int rows))) in
  let db = ref Database.empty in
  for i = 0 to rows - 1 do
    db := Database.add (Fact.of_ints "R" [ i; i mod groups ]) !db
  done;
  for j = 0 to groups - 1 do
    db := Database.add (Fact.of_ints "S" [ j ]) !db
  done;
  !db
