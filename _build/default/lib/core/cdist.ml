module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Hierarchy = Aggshap_cq.Hierarchy
module Agg_query = Aggshap_agg.Agg_query
module Aggregate = Aggshap_agg.Aggregate
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact

let check (a : Agg_query.t) =
  (match a.alpha with
   | Aggregate.Count_distinct -> ()
   | other ->
     invalid_arg ("Cdist: aggregate " ^ Aggregate.to_string other ^ " is not count-distinct"));
  if not (Hierarchy.is_all_hierarchical a.query) then
    invalid_arg ("Cdist: query is not all-hierarchical: " ^ Cq.to_string a.query)

(* [D_a]: drop the τ-relation facts whose τ-value differs from [a]. *)
let restrict_to_value (a : Agg_query.t) db v =
  let rel = a.tau.Aggshap_agg.Value_fn.rel in
  Database.filter
    (fun (f : Fact.t) _ ->
      (not (String.equal f.rel rel)) || Q.equal (Agg_query.tau_of_fact a f) v)
    db

let distinct_values (a : Agg_query.t) db =
  List.sort_uniq Q.compare (List.map snd (Agg_query.answer_values a db))

(* Null players may be dropped for both the Shapley and the Banzhaf
   coefficients, so the per-value decomposition supports both. *)
let score ?coefficients a db f =
  check a;
  (match Database.provenance db f with
   | Some Database.Endogenous -> ()
   | _ -> invalid_arg "Cdist.shapley: fact must be endogenous");
  List.fold_left
    (fun acc v ->
      let db_v = restrict_to_value a db v in
      if Database.mem f db_v then
        Q.add acc (Boolean_dp.score ?coefficients a.query db_v f)
      else acc)
    Q.zero (distinct_values a db)

let shapley a db f = score a db f

let shapley_all a db =
  List.map (fun f -> (f, shapley a db f)) (Database.endogenous db)
