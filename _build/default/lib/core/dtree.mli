(** Read-once lineage compilation for Boolean hierarchical CQs
    (the d-trees of Remark 4.5; cf. Olteanu & Huang 2008, Fink et al.
    2012).

    The Boolean lineage of a hierarchical CQ over a database factorizes
    into a {e read-once} formula: each fact appears in at most one leaf,
    conjunctions join independent (fact-disjoint) subtrees and
    disjunctions join mutually fact-disjoint blocks. Counting
    satisfying [k]-subsets — and hence Shapley values — is a linear-time
    DP over the compiled tree. This module is an alternative,
    compilation-based backend for {!Boolean_dp} and the basis Abramovich
    et al. (2025) use for Min/Max aggregation. *)

type t =
  | True  (** constant true (e.g. an exogenous ground atom) *)
  | False  (** constant false (e.g. a missing ground atom) *)
  | Lit of Aggshap_relational.Fact.t  (** an endogenous fact literal *)
  | And of t list  (** conjunction of fact-disjoint subtrees *)
  | Or of t list  (** disjunction of fact-disjoint subtrees *)

val compile : Aggshap_cq.Cq.t -> Aggshap_relational.Database.t -> t
(** Lineage of the query taken as Boolean. Only facts that can
    participate in answers appear in the tree.
    @raise Invalid_argument if the Boolean query is not hierarchical. *)

val facts : t -> Aggshap_relational.Fact.t list
(** The distinct facts appearing as literals. *)

val is_read_once : t -> bool
(** Whether no fact occurs in two different leaves (always true for
    {!compile}d trees; exposed for testing). *)

val eval : t -> (Aggshap_relational.Fact.t -> bool) -> bool
(** Truth value under an assignment of the literals. *)

val size : t -> int
(** Number of nodes. *)

val satisfying_counts : t -> Aggshap_relational.Database.t -> Tables.counts
(** [satisfying_counts tree db] equals [Boolean_dp.counts q db] when
    [tree = compile q db]: the number of [k]-subsets of the endogenous
    facts of [db] making the lineage true. Endogenous facts of [db]
    absent from the tree are counted as free choices. *)

val shapley :
  t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** Membership Shapley value through the compiled lineage. *)

val pp : Format.formatter -> t -> unit
