module Q = Aggshap_arith.Rational
module Agg_query = Aggshap_agg.Agg_query
module Database = Aggshap_relational.Database

let coalition_db players exo mask =
  let db = ref exo in
  Array.iteri
    (fun i f -> if mask land (1 lsl i) <> 0 then db := Database.add ~provenance:Database.Endogenous f !db)
    players;
  !db

let game a db =
  let players = Array.of_list (Database.endogenous db) in
  let exo = Database.filter (fun _ p -> p = Database.Exogenous) db in
  let base = Agg_query.eval a exo in
  let utility mask = Q.sub (Agg_query.eval a (coalition_db players exo mask)) base in
  (players, Game.make ~n:(Array.length players) utility)

let index_of players f =
  let found = ref (-1) in
  Array.iteri (fun i g -> if Aggshap_relational.Fact.equal f g then found := i) players;
  if !found < 0 then invalid_arg "Naive: fact is not endogenous in the database";
  !found

let shapley a db f =
  let players, g = game a db in
  Game.shapley g (index_of players f)

let shapley_all a db =
  let players, g = game a db in
  let values = Game.shapley_all g in
  Array.to_list (Array.mapi (fun i f -> (f, values.(i))) players)

let sum_k a db =
  let players = Array.of_list (Database.endogenous db) in
  let exo = Database.filter (fun _ p -> p = Database.Exogenous) db in
  let n = Array.length players in
  if n > Game.max_players then
    invalid_arg "Naive.sum_k: too many endogenous facts for enumeration";
  let out = Array.make (n + 1) Q.zero in
  for mask = 0 to (1 lsl n) - 1 do
    let k =
      let rec pop m acc = if m = 0 then acc else pop (m lsr 1) (acc + (m land 1)) in
      pop mask 0
    in
    out.(k) <- Q.add out.(k) (Agg_query.eval a (coalition_db players exo mask))
  done;
  out
