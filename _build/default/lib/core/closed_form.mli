(** Closed formulas for single-atom queries (Propositions 4.2, 4.4, 5.2).

    All three apply to [Q(x̄) ← R(x̄)] — the head repeats the atom's
    (distinct) variables — with {e every} fact endogenous. They are used
    as fast paths and as cross-checks of the generic dynamic programs.

    Note: the body of Proposition 5.2 states the second term with a [+];
    the derivation in Appendix D (and the efficiency axiom) show the sign
    is [−], which is what we implement. *)

val cdist_single_atom :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** Proposition 4.2: [1 / #{facts with the same τ-value}].
    @raise Invalid_argument if the query shape or database does not match
    the proposition's premises. *)

val max_single_atom :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** Proposition 4.4. *)

val min_single_atom :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** Proposition 4.4 under τ ↦ −τ. *)

val avg_single_atom :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** Proposition 5.2 (sign-corrected, see above):
    [H(n)/n · τ(t) − (H(n)−1)/(n(n−1)) · Σ_{t'≠t} τ(t')]. *)
