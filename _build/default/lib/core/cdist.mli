(** Shapley values for count-distinct over all-hierarchical CQs
    (Theorem 4.1 via Lemma 4.3).

    CDist is the sum of the per-value indicator games: writing [D_a] for
    the database where the τ-relation keeps only its facts of τ-value
    [a],

    {v Shapley(f, CDist∘τ∘Q)[D] = Σ_{a ∈ (τ∘Q)(D)} Shapley(f, Q_bool)[D_a] v}

    with the convention that the summand is 0 when [f ∉ D_a]. Each
    summand is a Boolean hierarchical membership game. *)

val shapley :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** @raise Invalid_argument if the aggregate is not [Count_distinct], the
    CQ is not all-hierarchical, or the fact is not endogenous. *)

val score :
  ?coefficients:Sumk.coefficients ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** Shapley-like scores; sound for coefficient families invariant under
    null-player removal (Shapley and Banzhaf are). *)

val shapley_all :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  (Aggshap_relational.Fact.t * Aggshap_arith.Rational.t) list
