module Agg_query = Aggshap_agg.Agg_query
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact

type estimate = {
  mean : float;
  std_error : float;
  samples : int;
}

let shapley ?seed ~samples a db f =
  if samples <= 0 then invalid_arg "Monte_carlo.shapley: samples must be positive";
  (match Database.provenance db f with
   | Some Database.Endogenous -> ()
   | _ -> invalid_arg "Monte_carlo.shapley: fact must be endogenous");
  let rng = match seed with Some s -> Random.State.make [| s |] | None -> Random.State.make_self_init () in
  let others =
    Array.of_list (List.filter (fun g -> not (Fact.equal f g)) (Database.endogenous db))
  in
  let exo = Database.filter (fun _ p -> p = Database.Exogenous) db in
  let n_others = Array.length others in
  let shuffle () =
    for i = n_others - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = others.(i) in
      others.(i) <- others.(j);
      others.(j) <- tmp
    done
  in
  let eval db = Aggshap_arith.Rational.to_float (Agg_query.eval a db) in
  let total = ref 0.0 and total_sq = ref 0.0 in
  for _ = 1 to samples do
    shuffle ();
    (* f's position among the n players, uniform. *)
    let pos = Random.State.int rng (n_others + 1) in
    let prefix = ref exo in
    for i = 0 to pos - 1 do
      prefix := Database.add ~provenance:Database.Endogenous others.(i) !prefix
    done;
    let before = eval !prefix in
    let after = eval (Database.add ~provenance:Database.Endogenous f !prefix) in
    let marginal = after -. before in
    total := !total +. marginal;
    total_sq := !total_sq +. (marginal *. marginal)
  done;
  let mean = !total /. float_of_int samples in
  let variance =
    if samples = 1 then 0.0
    else
      let s = float_of_int samples in
      ((!total_sq /. s) -. (mean *. mean)) *. (s /. (s -. 1.0))
  in
  { mean; std_error = sqrt (Float.max variance 0.0 /. float_of_int samples); samples }
