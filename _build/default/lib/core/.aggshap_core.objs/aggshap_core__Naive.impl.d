lib/core/naive.ml: Aggshap_agg Aggshap_arith Aggshap_relational Array Game
