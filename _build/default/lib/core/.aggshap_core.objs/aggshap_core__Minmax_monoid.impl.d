lib/core/minmax_monoid.ml: Aggshap_arith Aggshap_cq Aggshap_relational Array List Map Option String Sumk Tables
