lib/core/cdist.mli: Aggshap_agg Aggshap_arith Aggshap_relational Sumk
