lib/core/solver.ml: Aggshap_agg Aggshap_arith Aggshap_cq Aggshap_relational Array Avg_quantile Cdist Dup Game List Minmax Monte_carlo Naive Printf Sum_count Sumk
