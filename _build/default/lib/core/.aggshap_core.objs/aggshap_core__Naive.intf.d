lib/core/naive.mli: Aggshap_agg Aggshap_arith Aggshap_relational Game
