lib/core/avg_quantile.mli: Aggshap_agg Aggshap_arith Aggshap_relational
