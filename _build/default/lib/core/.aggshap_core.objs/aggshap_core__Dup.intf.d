lib/core/dup.mli: Aggshap_agg Aggshap_arith Aggshap_relational
