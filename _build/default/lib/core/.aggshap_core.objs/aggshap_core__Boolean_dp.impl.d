lib/core/boolean_dp.ml: Aggshap_arith Aggshap_cq Aggshap_relational Array List Sumk Tables
