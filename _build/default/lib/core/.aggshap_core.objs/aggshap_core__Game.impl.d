lib/core/game.ml: Aggshap_arith Array Hashtbl Printf
