lib/core/minmax.mli: Aggshap_agg Aggshap_arith Aggshap_relational
