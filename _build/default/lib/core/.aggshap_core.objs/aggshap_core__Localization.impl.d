lib/core/localization.ml: Aggshap_agg Aggshap_arith Aggshap_cq Aggshap_relational Array Avg_quantile Boolean_dp Map Option String Sumk Tables
