lib/core/sumk.mli: Aggshap_agg Aggshap_arith Aggshap_relational
