lib/core/game.mli: Aggshap_arith
