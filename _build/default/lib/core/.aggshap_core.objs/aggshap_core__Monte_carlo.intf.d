lib/core/monte_carlo.mli: Aggshap_agg Aggshap_relational
