lib/core/tables.mli: Aggshap_arith
