lib/core/closed_form.mli: Aggshap_agg Aggshap_arith Aggshap_relational
