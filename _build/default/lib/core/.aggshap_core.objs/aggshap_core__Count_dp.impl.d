lib/core/count_dp.ml: Aggshap_arith Aggshap_cq Aggshap_relational Boolean_dp Int List Map Tables
