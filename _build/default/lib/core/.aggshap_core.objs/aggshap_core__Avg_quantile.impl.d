lib/core/avg_quantile.ml: Aggshap_agg Aggshap_arith Aggshap_cq Aggshap_relational Boolean_dp Count_dp List Map Stdlib String Sumk Tables
