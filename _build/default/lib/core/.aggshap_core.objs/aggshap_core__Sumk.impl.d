lib/core/sumk.ml: Aggshap_agg Aggshap_arith Aggshap_relational Array List
