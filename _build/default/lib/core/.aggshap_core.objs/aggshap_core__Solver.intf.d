lib/core/solver.mli: Aggshap_agg Aggshap_arith Aggshap_cq Aggshap_relational Monte_carlo
