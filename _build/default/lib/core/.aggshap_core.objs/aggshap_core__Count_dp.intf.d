lib/core/count_dp.mli: Aggshap_cq Aggshap_relational Map Tables
