lib/core/sum_count.mli: Aggshap_agg Aggshap_arith Aggshap_relational Sumk
