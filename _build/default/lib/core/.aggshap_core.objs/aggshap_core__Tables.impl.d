lib/core/tables.ml: Aggshap_arith Array
