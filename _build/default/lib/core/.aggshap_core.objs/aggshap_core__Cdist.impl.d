lib/core/cdist.ml: Aggshap_agg Aggshap_arith Aggshap_cq Aggshap_relational Boolean_dp List String
