lib/core/sum_count.ml: Aggshap_agg Aggshap_arith Aggshap_cq Aggshap_relational Array Boolean_dp List
