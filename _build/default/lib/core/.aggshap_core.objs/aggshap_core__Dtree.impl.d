lib/core/dtree.ml: Aggshap_arith Aggshap_cq Aggshap_relational Array Format List Set Tables
