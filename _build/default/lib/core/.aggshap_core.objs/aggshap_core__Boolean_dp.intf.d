lib/core/boolean_dp.mli: Aggshap_arith Aggshap_cq Aggshap_relational Sumk Tables
