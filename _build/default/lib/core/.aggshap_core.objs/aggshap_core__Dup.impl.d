lib/core/dup.ml: Aggshap_agg Aggshap_arith Aggshap_cq Aggshap_relational Array Count_dp List Map Option Printf Stdlib String Sumk Tables
