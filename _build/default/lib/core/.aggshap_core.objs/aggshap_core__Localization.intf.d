lib/core/localization.mli: Aggshap_agg Aggshap_arith Aggshap_cq Aggshap_relational
