lib/core/dtree.mli: Aggshap_arith Aggshap_cq Aggshap_relational Format Tables
