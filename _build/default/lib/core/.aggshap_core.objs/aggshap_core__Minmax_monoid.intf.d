lib/core/minmax_monoid.mli: Aggshap_arith Aggshap_cq Aggshap_relational
