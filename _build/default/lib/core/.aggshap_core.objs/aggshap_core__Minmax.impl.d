lib/core/minmax.ml: Aggshap_agg Aggshap_arith Aggshap_cq Aggshap_relational Array Boolean_dp List Map Option Sumk Tables
