lib/core/monte_carlo.ml: Aggshap_agg Aggshap_arith Aggshap_relational Array Float List Random
