(** Max aggregation with a {e non-localized} value function given by a
    monotonic commutative monoid over head variables (Section 7.3).

    The paper's classification assumes τ localized on one atom, but
    Section 7.3 observes that the all-hierarchical Min/Max algorithm
    extends to τ of the form [x₁ ⊗ ⋯ ⊗ x_ℓ] where ⊗ is a commutative,
    {e non-decreasing} monoid applied to numeric head variables (e.g.
    [Max (x₁ + x₂)], [Max (max(x₁, x₂))]): the dynamic program tracks,
    per sub-query, the attainable maxima of ⊗ restricted to the
    sub-query's tracked variables, and monotonicity lets maxima compose
    across blocks and components.

    It also shows restriction is {e necessary}: for arbitrary poly-time
    non-localized τ, even [Max] over a Cartesian product is #P-hard. *)

type monoid = {
  op : Aggshap_arith.Rational.t -> Aggshap_arith.Rational.t -> Aggshap_arith.Rational.t;
      (** must be commutative, associative and non-decreasing in each
          argument on the values that occur *)
  unit_ : Aggshap_arith.Rational.t;
  descr : string;
}

val plus : monoid
(** Addition (unit 0) — [Max(x₁ + x₂ + …)]. *)

val max_monoid : monoid
(** Maximum, with unit −∞ approximated by a very negative rational —
    [Max(max(x₁, x₂, …))]. *)

val tau : monoid -> vars:string list -> Aggshap_relational.Value.t array -> string list -> Aggshap_arith.Rational.t
(** [tau m ~vars answer head]: ⊗ over the (integer) values of the tracked
    [vars] inside the [answer] tuple with head layout [head]. Used by
    tests to evaluate the non-localized τ directly. *)

val sum_k :
  monoid ->
  vars:string list ->
  Aggshap_cq.Cq.t ->
  Aggshap_relational.Database.t ->
  Aggshap_arith.Rational.t array
(** [sum_k] of [Max ∘ (⊗ vars) ∘ q] for an all-hierarchical [q]; the
    tracked [vars] must be free variables of [q].
    @raise Invalid_argument otherwise. *)

val shapley :
  monoid ->
  vars:string list ->
  Aggshap_cq.Cq.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
