(** Permutation-sampling approximation of the Shapley value.

    The paper leaves approximation as future work (Section 8); this
    module provides the standard unbiased estimator — sample random
    permutations of the endogenous facts and average the marginal
    contribution of the target fact — so that the benchmarks can compare
    approximation error against the exact dynamic programs. *)

type estimate = {
  mean : float;  (** the Shapley estimate *)
  std_error : float;  (** sample standard error of the mean *)
  samples : int;
}

val shapley :
  ?seed:int ->
  samples:int ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  estimate
(** @raise Invalid_argument if the fact is not endogenous or
    [samples <= 0]. *)
