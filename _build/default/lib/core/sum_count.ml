module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Hierarchy = Aggshap_cq.Hierarchy
module Agg_query = Aggshap_agg.Agg_query
module Aggregate = Aggshap_agg.Aggregate
module Database = Aggshap_relational.Database

let check (a : Agg_query.t) =
  (match a.alpha with
   | Aggregate.Sum | Aggregate.Count -> ()
   | other ->
     invalid_arg
       ("Sum_count: aggregate " ^ Aggregate.to_string other ^ " is not sum/count"));
  if not (Hierarchy.is_exists_hierarchical a.query) then
    invalid_arg
      ("Sum_count: query is not exists-hierarchical: " ^ Cq.to_string a.query)

(* Ground the head variables of [q] to the answer tuple [t]. *)
let membership_query q t =
  List.fold_left2
    (fun acc x v -> Cq.substitute acc x v)
    q q.Cq.head (Array.to_list t)

let weighted_answers (a : Agg_query.t) db =
  let answers = Agg_query.answer_values a db in
  match a.alpha with
  | Aggregate.Count -> List.map (fun (t, _) -> (t, Q.one)) answers
  | _ -> answers

let score ?coefficients a db f =
  check a;
  List.fold_left
    (fun acc (t, weight) ->
      if Q.is_zero weight then acc
      else
        Q.add acc
          (Q.mul weight (Boolean_dp.score ?coefficients (membership_query a.query t) db f)))
    Q.zero (weighted_answers a db)

let shapley a db f = score a db f

let shapley_all a db =
  check a;
  let answers = weighted_answers a db in
  List.map
    (fun f ->
      ( f,
        List.fold_left
          (fun acc (t, weight) ->
            if Q.is_zero weight then acc
            else
              Q.add acc
                (Q.mul weight (Boolean_dp.shapley (membership_query a.query t) db f)))
          Q.zero answers ))
    (Database.endogenous db)
