module Q = Aggshap_arith.Rational
module C = Aggshap_arith.Combinat

type t = {
  n : int;
  utility : int -> Q.t;
}

let max_players = 24

let make ~n utility =
  if n < 0 || n > max_players then
    invalid_arg
      (Printf.sprintf "Game.make: %d players (the exact game solver handles at most %d)" n
         max_players);
  let cache = Hashtbl.create 1024 in
  let memo mask =
    match Hashtbl.find_opt cache mask with
    | Some v -> v
    | None ->
      let v = utility mask in
      Hashtbl.add cache mask v;
      v
  in
  { n; utility = memo }

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

let shapley g p =
  if p < 0 || p >= g.n then invalid_arg "Game.shapley: no such player";
  let bit = 1 lsl p in
  let acc = ref Q.zero in
  for mask = 0 to (1 lsl g.n) - 1 do
    if mask land bit = 0 then begin
      let k = popcount mask in
      let marginal = Q.sub (g.utility (mask lor bit)) (g.utility mask) in
      if not (Q.is_zero marginal) then
        acc := Q.add !acc (Q.mul (C.shapley_coefficient ~players:g.n ~before:k) marginal)
    end
  done;
  !acc

let shapley_all g = Array.init g.n (shapley g)

let banzhaf g p =
  if p < 0 || p >= g.n then invalid_arg "Game.banzhaf: no such player";
  let bit = 1 lsl p in
  let acc = ref Q.zero in
  for mask = 0 to (1 lsl g.n) - 1 do
    if mask land bit = 0 then
      acc := Q.add !acc (Q.sub (g.utility (mask lor bit)) (g.utility mask))
  done;
  Q.div (!acc) (Q.of_bigint (Aggshap_arith.Bigint.pow Aggshap_arith.Bigint.two (g.n - 1)))

let efficiency_gap g =
  let grand = g.utility ((1 lsl g.n) - 1) in
  let empty = g.utility 0 in
  let sum = Array.fold_left Q.add Q.zero (shapley_all g) in
  Q.sub (Q.sub grand empty) sum
