(** Localization matters: the polynomial algorithms of Proposition 7.3.

    Each of the following AggCQs is FP^#P-complete when τ is localized on
    the {e first} atom, yet polynomial when localized on the {e last} one
    (Section 7.2):

    + [Avg ∘ τ² ∘ Q_xyyz] with [Q_xyyz(x,z) ← R(x,y), S(y), T(z)]:
      the T-component's average is replicated by the (x,y)-component's
      answer count, which leaves the average unchanged, so
      [sum_k] is a convolution of the single-relation Avg [sum_k] and the
      Boolean counts of [∃x,y R(x,y),S(y)].
    + [Med ∘ τ² ∘ Q_xyyz]: the same argument — the median is invariant
      under uniform multiplicity scaling (unlike other quantiles).
    + [Dup ∘ τ_id² ∘ Q_full] with [Q_full(x,y) ← R(x,y), S(y)]: grouping
      by the y-value gives a closed count per class.

    These functions check their premises and raise [Invalid_argument]
    otherwise. *)

val q_xyyz : Aggshap_cq.Cq.t
(** [Q(x, z) ← R(x, y), S(y), T(z)]. *)

val q_full : Aggshap_cq.Cq.t
(** [Q(x, y) ← R(x, y), S(y)]. *)

val avg_on_t_sum_k :
  Aggshap_agg.Value_fn.t ->
  Aggshap_relational.Database.t ->
  Aggshap_arith.Rational.t array
(** [sum_k] for [Avg ∘ τ ∘ Q_xyyz] with τ localized on [T]. *)

val median_on_t_sum_k :
  Aggshap_agg.Value_fn.t ->
  Aggshap_relational.Database.t ->
  Aggshap_arith.Rational.t array
(** [sum_k] for [Med ∘ τ ∘ Q_xyyz] with τ localized on [T]. *)

val dup_on_y_sum_k :
  Aggshap_relational.Database.t -> Aggshap_arith.Rational.t array
(** [sum_k] for [Dup ∘ τ_id² ∘ Q_full] (τ is the y-value itself). *)

val avg_on_t_shapley :
  Aggshap_agg.Value_fn.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t

val median_on_t_shapley :
  Aggshap_agg.Value_fn.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t

val dup_on_y_shapley :
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
