(** Generic cooperative games with exact Shapley and Banzhaf values.

    Players are integers [0 .. n-1]; coalitions are bitmasks. This module
    is the ground truth for everything else: the naive solver evaluates
    an AggCQ on every coalition and hands the resulting game here, and the
    property tests check the dynamic programs against it. *)

type t = {
  n : int;  (** number of players; at most 24 (the cost is [O(2ⁿ)]) *)
  utility : int -> Aggshap_arith.Rational.t;
      (** utility of a coalition given as a bitmask; [utility 0] need not
          be zero — values are used only through differences, as in the
          paper's game where [v(C) = A(C ∪ Dˣ) − A(Dˣ)] *)
}

val max_players : int
(** Hard cap on [n] (24). *)

val make : n:int -> (int -> Aggshap_arith.Rational.t) -> t
(** Memoizes the utility. @raise Invalid_argument if [n > max_players]. *)

val shapley : t -> int -> Aggshap_arith.Rational.t
(** Exact Shapley value of one player, by subset enumeration. *)

val shapley_all : t -> Aggshap_arith.Rational.t array

val banzhaf : t -> int -> Aggshap_arith.Rational.t
(** The Banzhaf score [2^{-(n-1)} Σ_C (v(C∪p) − v(C))] — a Shapley-like
    score (Section 3.2 of the paper notes that all [sum_k]-based
    algorithms extend to such scores). *)

val efficiency_gap : t -> Aggshap_arith.Rational.t
(** [v(P) - v(∅) - Σ_p Shapley(p)]; zero for every game (used by tests). *)
