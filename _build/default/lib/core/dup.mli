(** Shapley values for has-duplicates (Dup) over sq-hierarchical CQs
    (Theorem 6.1 and Appendix E.2).

    The computation works with NoDup = 1 − Dup. For a {e connected}
    sq-hierarchical CQ every free variable occurs in every atom, so each
    fact determines the (unique) answer it can contribute to, and hence a
    τ-value class; the answer bag is duplicate-free iff every class
    produces at most one answer, counted with the [P⁰]/[P¹] tables of
    {!Count_dp} and combined by the dynamic program of Figure 5. A
    disconnected CQ [Q₁ × Q₂] (τ in [Q₁]) has duplicates iff [Q₁] is
    nonempty and [Q₂] has ≥ 2 answers, or [Q₁] has duplicates and [Q₂]
    exactly one (Appendix E.2.3). *)

val sum_k :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_arith.Rational.t array
(** @raise Invalid_argument if the aggregate is not [Has_duplicates] or
    the CQ is not sq-hierarchical. *)

val shapley :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t

val shapley_all :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  (Aggshap_relational.Fact.t * Aggshap_arith.Rational.t) list
