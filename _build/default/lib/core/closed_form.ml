module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module C = Aggshap_arith.Combinat
module Cq = Aggshap_cq.Cq
module Agg_query = Aggshap_agg.Agg_query
module Value_fn = Aggshap_agg.Value_fn
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact

(* Check the single-atom premises and return the endogenous facts of the
   (unique) relation together with the τ-value of the target fact. *)
let prepare (a : Agg_query.t) db (f : Fact.t) =
  let atom =
    match a.query.Cq.body with
    | [ atom ] -> atom
    | _ -> invalid_arg "Closed_form: the query must have a single atom"
  in
  let atom_vars = Cq.atom_vars atom in
  if List.length atom_vars <> Array.length atom.Cq.terms then
    invalid_arg "Closed_form: the atom must apply distinct variables";
  if a.query.Cq.head <> atom_vars then
    invalid_arg "Closed_form: the head must repeat the atom variables";
  if Database.exogenous db <> [] then
    invalid_arg "Closed_form: all facts must be endogenous";
  if not (Database.mem f db) then invalid_arg "Closed_form: fact not in the database";
  let facts =
    List.filter (fun (g : Fact.t) -> String.equal g.rel atom.Cq.rel) (Database.facts db)
  in
  if List.length facts <> Database.size db then
    invalid_arg "Closed_form: the database must contain only facts of the query atom";
  (facts, Value_fn.apply a.tau f.args)

let cdist_single_atom a db f =
  let facts, v = prepare a db f in
  let same =
    List.length (List.filter (fun (g : Fact.t) -> Q.equal (Value_fn.apply a.tau g.args) v) facts)
  in
  Q.of_ints 1 same

let max_single_atom_with tau_of a db f =
  let facts, _ = prepare a db f in
  let v = tau_of f in
  let n = List.length facts in
  let values = List.sort_uniq Q.compare (List.map tau_of facts) in
  let count pred = List.length (List.filter (fun g -> pred (tau_of g)) facts) in
  let tail =
    List.fold_left
      (fun acc a_val ->
        if Q.compare a_val v >= 0 then acc
        else begin
          let m_le = count (fun w -> Q.compare w a_val <= 0) in
          let m_lt = count (fun w -> Q.compare w a_val < 0) in
          let inner = ref Q.zero in
          for k = 1 to n - 1 do
            let diff = B.sub (C.binomial m_le k) (C.binomial m_lt k) in
            if not (B.is_zero diff) then
              inner :=
                Q.add !inner
                  (Q.mul (C.shapley_coefficient ~players:n ~before:k) (Q.of_bigint diff))
          done;
          Q.add acc (Q.mul (Q.sub v a_val) !inner)
        end)
      Q.zero values
  in
  Q.add (Q.div_int v n) tail

let max_single_atom (a : Agg_query.t) db f =
  max_single_atom_with (fun (g : Fact.t) -> Value_fn.apply a.tau g.args) a db f

let min_single_atom (a : Agg_query.t) db f =
  Q.neg (max_single_atom_with (fun (g : Fact.t) -> Q.neg (Value_fn.apply a.tau g.args)) a db f)

let avg_single_atom a db f =
  let facts, v = prepare a db f in
  let n = List.length facts in
  let h = C.harmonic n in
  let first = Q.mul (Q.div_int h n) v in
  if n = 1 then first
  else begin
    let others =
      List.fold_left
        (fun acc (g : Fact.t) ->
          if Fact.equal g f then acc else Q.add acc (Value_fn.apply a.tau g.args))
        Q.zero facts
    in
    let coeff = Q.div_int (Q.div_int (Q.sub h Q.one) n) (n - 1) in
    Q.sub first (Q.mul coeff others)
  end
