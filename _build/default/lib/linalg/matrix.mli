(** Dense matrices over exact rationals.

    Exact linear algebra is required by the paper's hardness machinery:
    the #Set-Cover reduction for [Avg] (Lemma D.3) recovers the counts
    [Z_{i,j}] by inverting the Kronecker product of a Hilbert matrix and a
    factorial Hankel matrix — both notoriously ill-conditioned, so floating
    point is useless. Matrices are immutable from the caller's viewpoint. *)

type t

val make : int -> int -> (int -> int -> Aggshap_arith.Rational.t) -> t
(** [make rows cols f] builds the matrix with entry [f i j] at (i, j),
    0-indexed. *)

val of_lists : Aggshap_arith.Rational.t list list -> t
(** @raise Invalid_argument on ragged or empty input. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Aggshap_arith.Rational.t
val identity : int -> t
val transpose : t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : Aggshap_arith.Rational.t -> t -> t

val mul_vec : t -> Aggshap_arith.Rational.t array -> Aggshap_arith.Rational.t array
(** Matrix-vector product. *)

val kronecker : t -> t -> t
(** [kronecker a b] is the Kronecker product [a ⊗ b]. *)

(** {1 Solving} *)

val determinant : t -> Aggshap_arith.Rational.t
(** Fraction-free-ish Gaussian elimination; square matrices only. *)

val inverse : t -> t option
(** [None] for singular matrices. *)

val solve : t -> Aggshap_arith.Rational.t array -> Aggshap_arith.Rational.t array option
(** [solve a b] finds [x] with [a x = b]; [None] when [a] is singular.
    @raise Invalid_argument on dimension mismatch. *)

val rank : t -> int

(** {1 Named constructions from the paper} *)

val hilbert : int -> t
(** [hilbert n] has entries [1/(i + j - 1)] for 1-based [i, j]
    (Appendix D.3.1, matrix [N]). *)

val hankel_factorial : int -> t
(** [hankel_factorial n] has entries [(i + j)!] for 1-based [i, j]
    (Appendix D.3.1, matrix [M']; invertible by Bacher 2002). *)
