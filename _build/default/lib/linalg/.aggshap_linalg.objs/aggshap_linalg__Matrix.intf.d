lib/linalg/matrix.mli: Aggshap_arith Format
