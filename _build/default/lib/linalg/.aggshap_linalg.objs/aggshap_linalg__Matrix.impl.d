lib/linalg/matrix.ml: Aggshap_arith Array Format List
