module Q = Aggshap_arith.Rational
module Combinat = Aggshap_arith.Combinat

type t = { rows : int; cols : int; data : Q.t array array }

let make rows cols f =
  if rows < 0 || cols < 0 then invalid_arg "Matrix.make: negative dimension";
  { rows; cols; data = Array.init rows (fun i -> Array.init cols (fun j -> f i j)) }

let of_lists rows =
  match rows with
  | [] -> invalid_arg "Matrix.of_lists: empty"
  | first :: _ ->
    let cols = List.length first in
    if cols = 0 then invalid_arg "Matrix.of_lists: empty row";
    if not (List.for_all (fun r -> List.length r = cols) rows) then
      invalid_arg "Matrix.of_lists: ragged rows";
    let data = Array.of_list (List.map Array.of_list rows) in
    { rows = Array.length data; cols; data }

let rows m = m.rows
let cols m = m.cols
let get m i j = m.data.(i).(j)

let identity n = make n n (fun i j -> if i = j then Q.one else Q.zero)
let transpose m = make m.cols m.rows (fun i j -> m.data.(j).(i))

let equal a b =
  a.rows = b.rows && a.cols = b.cols
  && begin
    let ok = ref true in
    for i = 0 to a.rows - 1 do
      for j = 0 to a.cols - 1 do
        if not (Q.equal a.data.(i).(j) b.data.(i).(j)) then ok := false
      done
    done;
    !ok
  end

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf fmt ", ";
      Q.pp fmt m.data.(i).(j)
    done;
    Format.fprintf fmt "]";
    if i < m.rows - 1 then Format.fprintf fmt "@,"
  done;
  Format.fprintf fmt "@]"

let map2 op a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Matrix: dimension mismatch";
  make a.rows a.cols (fun i j -> op a.data.(i).(j) b.data.(i).(j))

let add = map2 Q.add
let sub = map2 Q.sub
let scale c m = make m.rows m.cols (fun i j -> Q.mul c m.data.(i).(j))

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
  make a.rows b.cols (fun i j ->
      let acc = ref Q.zero in
      for k = 0 to a.cols - 1 do
        acc := Q.add !acc (Q.mul a.data.(i).(k) b.data.(k).(j))
      done;
      !acc)

let mul_vec a v =
  if a.cols <> Array.length v then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let acc = ref Q.zero in
      for k = 0 to a.cols - 1 do
        acc := Q.add !acc (Q.mul a.data.(i).(k) v.(k))
      done;
      !acc)

let kronecker a b =
  make (a.rows * b.rows) (a.cols * b.cols) (fun i j ->
      Q.mul a.data.(i / b.rows).(j / b.cols) b.data.(i mod b.rows).(j mod b.cols))

(* Gauss-Jordan elimination on [a | extra], with partial "pivot by first
   nonzero" (numerical stability is irrelevant over exact rationals).
   Returns (rank, determinant of the leading square part if square). *)
let eliminate a extra =
  let rows = Array.length a in
  let cols = if rows = 0 then 0 else Array.length a.(0) in
  let det = ref Q.one in
  let pivot_row = ref 0 in
  let col = ref 0 in
  while !pivot_row < rows && !col < cols do
    (* Find a pivot in this column. *)
    let found = ref (-1) in
    let r = ref !pivot_row in
    while !found < 0 && !r < rows do
      if not (Q.is_zero a.(!r).(!col)) then found := !r;
      incr r
    done;
    if !found < 0 then begin
      det := Q.zero;
      incr col
    end
    else begin
      if !found <> !pivot_row then begin
        let swap arr =
          let tmp = arr.(!found) in
          arr.(!found) <- arr.(!pivot_row);
          arr.(!pivot_row) <- tmp
        in
        swap a;
        (match extra with Some e -> (let tmp = e.(!found) in e.(!found) <- e.(!pivot_row); e.(!pivot_row) <- tmp) | None -> ());
        det := Q.neg !det
      end;
      let p = a.(!pivot_row).(!col) in
      det := Q.mul !det p;
      let inv_p = Q.inv p in
      for j = 0 to cols - 1 do
        a.(!pivot_row).(j) <- Q.mul inv_p a.(!pivot_row).(j)
      done;
      (match extra with
       | Some e ->
         let ecols = Array.length e.(0) in
         for j = 0 to ecols - 1 do
           e.(!pivot_row).(j) <- Q.mul inv_p e.(!pivot_row).(j)
         done
       | None -> ());
      for r = 0 to rows - 1 do
        if r <> !pivot_row && not (Q.is_zero a.(r).(!col)) then begin
          let factor = a.(r).(!col) in
          for j = 0 to cols - 1 do
            a.(r).(j) <- Q.sub a.(r).(j) (Q.mul factor a.(!pivot_row).(j))
          done;
          match extra with
          | Some e ->
            let ecols = Array.length e.(0) in
            for j = 0 to ecols - 1 do
              e.(r).(j) <- Q.sub e.(r).(j) (Q.mul factor e.(!pivot_row).(j))
            done
          | None -> ()
        end
      done;
      incr pivot_row;
      incr col
    end
  done;
  (!pivot_row, !det)

let copy_data m = Array.map Array.copy m.data

let determinant m =
  if m.rows <> m.cols then invalid_arg "Matrix.determinant: not square";
  if m.rows = 0 then Q.one
  else
    let a = copy_data m in
    let rank, det = eliminate a None in
    if rank < m.rows then Q.zero else det

let rank m =
  if m.rows = 0 then 0
  else
    let a = copy_data m in
    fst (eliminate a None)

let inverse m =
  if m.rows <> m.cols then invalid_arg "Matrix.inverse: not square";
  if m.rows = 0 then Some m
  else begin
    let a = copy_data m in
    let e = (identity m.rows).data in
    let rank, _ = eliminate a (Some e) in
    if rank < m.rows then None else Some { rows = m.rows; cols = m.cols; data = e }
  end

let solve m b =
  if m.rows <> m.cols then invalid_arg "Matrix.solve: not square";
  if m.rows <> Array.length b then invalid_arg "Matrix.solve: dimension mismatch";
  if m.rows = 0 then Some [||]
  else begin
    let a = copy_data m in
    let e = Array.map (fun x -> [| x |]) b in
    let rank, _ = eliminate a (Some e) in
    if rank < m.rows then None else Some (Array.map (fun row -> row.(0)) e)
  end

let hilbert n = make n n (fun i j -> Q.of_ints 1 (i + j + 1))

let hankel_factorial n =
  make n n (fun i j -> Q.of_bigint (Combinat.factorial (i + j + 2)))
