(** The general lifting reduction of Lemma 5.3 / Lemma D.1, executable.

    Let [Q₀] be a CQ without self-joins that is all-hierarchical but not
    q-hierarchical, witnessed by a free [x₀] and an existential [y₀] with
    [atoms(x₀) ⊆ atoms(y₀)] and some atom containing [y₀] but not [x₀].
    Any database [D] for [Q_xyy(x) ← R(x,y), S(y)] lifts to a database
    [D₀] for [Q₀] together with a provenance-preserving bijection [h]
    between endogenous facts such that, for {e every} aggregate function
    α and every value function τ on the (unary) answers of [Q_xyy],

    {v Shapley(f, α ∘ τ ∘ Q_xyy)[D] = Shapley(h f, α ∘ τ₀ ∘ Q₀)[D₀] v}

    where [τ₀ = τ ∘ τ_id^{pos of x₀}]. This is the bridge that turns the
    hardness of the minimal query [Q_xyy] (Lemmas 5.4 and E.2) into
    hardness for the whole class.

    Note: when every atom of [y₀] also contains [x₀] (the equality corner
    [atoms(x₀) = atoms(y₀)] for all witnesses), the construction — as in
    the paper — does not apply and {!analyze} reports an error. *)

type t = {
  target : Aggshap_cq.Cq.t;
  x0 : string;
  y0 : string;
  phi_r : Aggshap_cq.Cq.atom;  (** an atom containing both [x₀] and [y₀] *)
  phi_s : Aggshap_cq.Cq.atom;  (** an atom containing [y₀] but not [x₀] *)
}

val analyze : Aggshap_cq.Cq.t -> (t, string) result
(** Finds a witness pair; fails if the CQ is not (all-hierarchical and
    not q-hierarchical) with a usable witness. *)

val lift_database :
  t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Database.t
  * (Aggshap_relational.Fact.t -> Aggshap_relational.Fact.t)
(** [lift_database w d] builds [D₀] and the fact map [h]. [d] must
    contain only facts [R(a,b)] and [S(b)].
    @raise Invalid_argument otherwise. *)

val source_query : Aggshap_cq.Cq.t
(** [Q_xyy(x) ← R(x,y), S(y)]. *)

val source_tau :
  descr:string ->
  (Aggshap_relational.Value.t -> Aggshap_arith.Rational.t) ->
  Aggshap_agg.Value_fn.t
(** τ as a function of the answer value [x], packaged for [Q_xyy]. *)

val lifted_tau :
  t ->
  descr:string ->
  (Aggshap_relational.Value.t -> Aggshap_arith.Rational.t) ->
  Aggshap_agg.Value_fn.t
(** The corresponding [τ₀] for the target query, localized on [φ_R]. *)
