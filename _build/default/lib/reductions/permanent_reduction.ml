module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module C = Aggshap_arith.Combinat
module Matrix = Aggshap_linalg.Matrix
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Parser = Aggshap_cq.Parser
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query

(* Lemma E.2 lists two hard AggCQs; we implement the reduction through
   the second one, Dup ∘ τ_id¹ ∘ Q_full with Q_full(x,y) ← R(x,y), S(y).
   With the full head, two selected pairs sharing an element i produce
   two distinct answers (i, j₁), (i, j₂) with the same τ-value i — a
   duplicate — which is exactly the mechanism the proof's case analysis
   relies on (under the projected Q_xyy the shared answer would collapse
   and no duplicate would arise). *)
let q_full = Parser.parse_query_exn "Q(x, y) <- R(x, y), S(y)"

let agg_query =
  Agg_query.make Aggregate.Has_duplicates (Value_fn.id ~rel:"R" ~pos:0) q_full

let target_fact = Fact.of_ints "S" [ 0 ]

let database (sc : Setcover.t) ~r =
  let m = Setcover.num_sets sc in
  let exo = Database.Exogenous in
  let db = ref Database.empty in
  let add ?(provenance = Database.Endogenous) f = db := Database.add ~provenance f !db in
  (* Selecting S(j) brings in the answers (i, j) for i ∈ Y_j, valued i;
     overlapping selections duplicate the shared element's value. *)
  Array.iteri
    (fun j0 elements ->
      List.iter (fun i -> add ~provenance:exo (Fact.of_ints "R" [ i; j0 + 1 ])) elements)
    sc.Setcover.sets;
  (* The always-present zero-valued answer (0, -1), and S(0)'s own
     zero-valued answer (0, 0): adding S(0) creates the duplicate
     {0, 0} — unless a duplicate already exists. *)
  add ~provenance:exo (Fact.of_ints "R" [ 0; 0 ]);
  add ~provenance:exo (Fact.of_ints "R" [ 0; -1 ]);
  add ~provenance:exo (Fact.of_ints "S" [ -1 ]);
  (* r alternative zero-valued switches. *)
  for r' = 1 to r do
    add ~provenance:exo (Fact.of_ints "R" [ 0; m + r' ]);
    add (Fact.of_ints "S" [ m + r' ])
  done;
  for j = 1 to m do
    add (Fact.of_ints "S" [ j ])
  done;
  add target_fact;
  !db

let coefficient ~m ~r ~j =
  Q.make (B.mul (C.factorial j) (C.factorial (m + r - j))) (C.factorial (m + r + 1))

let shapley_predicted sc ~r =
  let m = Setcover.num_sets sc in
  let z = Setcover.z_disjoint sc in
  let acc = ref Q.zero in
  for j = 0 to m do
    if not (B.is_zero z.(j)) then
      acc := Q.add !acc (Q.mul (coefficient ~m ~r ~j) (Q.of_bigint z.(j)))
  done;
  !acc

let system_matrix sc =
  let m = Setcover.num_sets sc in
  Matrix.make (m + 1) (m + 1) (fun r j -> coefficient ~m ~r ~j)

type oracle = Database.t -> Fact.t -> Q.t

let naive_oracle db f = Aggshap_core.Naive.shapley agg_query db f

let disjoint_counts_via_shapley ?(oracle = naive_oracle) sc =
  let m = Setcover.num_sets sc in
  let rhs = Array.init (m + 1) (fun r -> oracle (database sc ~r) target_fact) in
  match Matrix.solve (system_matrix sc) rhs with
  | None -> failwith "Permanent_reduction: the system matrix is singular"
  | Some z ->
    Array.map
      (fun v ->
        if not (Q.is_integer v) then
          failwith "Permanent_reduction: recovered a non-integral count (broken oracle?)";
        Q.num v)
      z

let permanent_via_shapley ?oracle sc =
  if sc.Setcover.universe mod 2 <> 0 then
    invalid_arg "Permanent_reduction: universe size must be even";
  let z = disjoint_counts_via_shapley ?oracle sc in
  let half = sc.Setcover.universe / 2 in
  if half < Array.length z then
    (* A pairwise-disjoint (n/2)-subset of pairs covers all n elements,
       so Z_{n/2} is exactly the number of perfect matchings. *)
    z.(half)
  else B.zero
