lib/reductions/avg_reduction.ml: Aggshap_agg Aggshap_arith Aggshap_core Aggshap_cq Aggshap_linalg Aggshap_relational Array List Setcover
