lib/reductions/tau_transform.ml: Aggshap_agg Aggshap_arith Aggshap_core Aggshap_cq Aggshap_relational Array List String
