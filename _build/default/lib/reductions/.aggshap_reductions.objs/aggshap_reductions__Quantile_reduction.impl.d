lib/reductions/quantile_reduction.ml: Aggshap_agg Aggshap_arith Aggshap_core Aggshap_cq Aggshap_relational Array Fun List Setcover
