lib/reductions/lifting.mli: Aggshap_agg Aggshap_arith Aggshap_cq Aggshap_relational
