lib/reductions/setcover.ml: Aggshap_arith Array List Random Stdlib
