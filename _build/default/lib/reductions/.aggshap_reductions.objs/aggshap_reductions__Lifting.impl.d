lib/reductions/lifting.ml: Aggshap_agg Aggshap_arith Aggshap_cq Aggshap_relational Array List String
