lib/reductions/setcover.mli: Aggshap_arith
