module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Value = Aggshap_relational.Value
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query

(* Positions of [var] in the atom of relation [rel], per Observation F.3. *)
let positions q ~var =
  List.map
    (fun (a : Cq.atom) ->
      let ps = ref [] in
      Array.iteri
        (fun i t -> match t with Cq.Var v when String.equal v var -> ps := i :: !ps | _ -> ())
        a.Cq.terms;
      (a.Cq.rel, !ps))
    q.Cq.body

let transform q ~var gamma d =
  let pos_table = positions q ~var in
  let map_fact (f : Fact.t) =
    match List.assoc_opt f.rel pos_table with
    | None | Some [] -> f
    | Some ps ->
      let args = Array.copy f.args in
      List.iter
        (fun i ->
          if i < Array.length args then begin
            match Value.as_int args.(i) with
            | Some n -> args.(i) <- Value.Int (gamma n)
            | None ->
              invalid_arg "Tau_transform: non-integer value at a transformed position"
          end)
        ps;
      { f with args }
  in
  let d' = Database.fold (fun f p acc -> Database.add ~provenance:p (map_fact f) acc) d Database.empty in
  (d', map_fact)

(* First position of [var] in the atom containing it, for τ_id. *)
let tau_id q ~var =
  let atom =
    match List.find_opt (fun a -> List.mem var (Cq.atom_vars a)) q.Cq.body with
    | Some a -> a
    | None -> invalid_arg ("Tau_transform: variable " ^ var ^ " not in the query")
  in
  let pos =
    let found = ref (-1) in
    Array.iteri
      (fun i t ->
        match t with
        | Cq.Var v when String.equal v var && !found < 0 -> found := i
        | _ -> ())
      atom.Cq.terms;
    !found
  in
  Value_fn.id ~rel:atom.Cq.rel ~pos

let theorem_7_1_lhs alpha q ~var gamma d f =
  let tau = tau_id q ~var in
  let a_id = Agg_query.make alpha tau q in
  (* π for γ_mon + id: strictly increasing whenever γ is monotone. *)
  let d_plus, pi = transform q ~var (fun n -> gamma n + n) d in
  Q.sub
    (Aggshap_core.Naive.shapley a_id d_plus (pi f))
    (Aggshap_core.Naive.shapley a_id d f)
