module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module C = Aggshap_arith.Combinat
module Matrix = Aggshap_linalg.Matrix
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Parser = Aggshap_cq.Parser
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query

let q_xyy = Parser.parse_query_exn "Q(x) <- R(x, y), S(y)"

let agg_query = Agg_query.make Aggregate.Avg (Value_fn.relu ~rel:"R" ~pos:0) q_xyy

let target_fact = Fact.of_ints "S" [ 0 ]

let database (sc : Setcover.t) ~q ~r =
  let n = sc.Setcover.universe and m = Setcover.num_sets sc in
  let exo = Database.Exogenous in
  let db = ref Database.empty in
  let add ?(provenance = Database.Endogenous) f = db := Database.add ~provenance f !db in
  (* Element i of set Y_j: an always-zero answer -i once j is selected. *)
  Array.iteri
    (fun j0 elements ->
      List.iter (fun i -> add ~provenance:exo (Fact.of_ints "R" [ -i; j0 + 1 ])) elements)
    sc.Setcover.sets;
  (* q+1 permanently-present zero answers. *)
  for i = 1 to q + 1 do
    add ~provenance:exo (Fact.of_ints "R" [ -n - i; m + 1 ])
  done;
  add ~provenance:exo (Fact.of_ints "S" [ m + 1 ]);
  (* r alternative ways to switch on the positive answer x = 1. *)
  for j = 1 to r do
    add ~provenance:exo (Fact.of_ints "R" [ 1; m + 1 + j ]);
    add (Fact.of_ints "S" [ m + 1 + j ])
  done;
  add ~provenance:exo (Fact.of_ints "R" [ 1; 0 ]);
  (* The players: one S-fact per set, plus the target S(0). *)
  for j = 1 to m do
    add (Fact.of_ints "S" [ j ])
  done;
  add target_fact;
  !db

(* Coefficient of Z_{i,j} in the Shapley value of S(0) over D_{q,r}: the
   probability that exactly a fixed j-subset of {S(1)..S(m)} precedes
   S(0) (and none of the r extras), times the marginal 1/(i+q+2). *)
let coefficient ~m ~q ~r ~i ~j =
  let perm =
    Q.make (B.mul (C.factorial j) (C.factorial (m + r - j))) (C.factorial (m + r + 1))
  in
  Q.mul perm (Q.of_ints 1 (i + q + 2))

let shapley_predicted sc ~q ~r =
  let n = sc.Setcover.universe and m = Setcover.num_sets sc in
  let z = Setcover.z_table sc in
  let acc = ref Q.zero in
  for i = 0 to n do
    for j = 0 to m do
      if not (B.is_zero z.(i).(j)) then
        acc := Q.add !acc (Q.mul (coefficient ~m ~q ~r ~i ~j) (Q.of_bigint z.(i).(j)))
    done
  done;
  !acc

let system_matrix sc =
  let n = sc.Setcover.universe and m = Setcover.num_sets sc in
  let dim = (n + 1) * (m + 1) in
  Matrix.make dim dim (fun row col ->
      let q = row / (m + 1) and r = row mod (m + 1) in
      let i = col / (m + 1) and j = col mod (m + 1) in
      coefficient ~m ~q ~r ~i ~j)

let kronecker_factors sc =
  let n = sc.Setcover.universe and m = Setcover.num_sets sc in
  let hilbert_shifted = Matrix.make (n + 1) (n + 1) (fun q i -> Q.of_ints 1 (q + i + 2)) in
  let hankel_like =
    Matrix.make (m + 1) (m + 1) (fun r j ->
        Q.make (B.mul (C.factorial j) (C.factorial (m + r - j))) (C.factorial (m + r + 1)))
  in
  (hilbert_shifted, hankel_like)

type oracle = Database.t -> Fact.t -> Q.t

let naive_oracle db f = Aggshap_core.Naive.shapley agg_query db f

let count_covers_via_shapley ?(oracle = naive_oracle) sc =
  let n = sc.Setcover.universe and m = Setcover.num_sets sc in
  let rhs =
    Array.init
      ((n + 1) * (m + 1))
      (fun row ->
        let q = row / (m + 1) and r = row mod (m + 1) in
        oracle (database sc ~q ~r) target_fact)
  in
  match Matrix.solve (system_matrix sc) rhs with
  | None -> failwith "Avg_reduction: the system matrix is singular"
  | Some z ->
    let cover_count = ref B.zero in
    Array.iteri
      (fun col v ->
        let i = col / (m + 1) in
        if i = n then begin
          if not (Q.is_integer v) then
            failwith "Avg_reduction: recovered a non-integral count (broken oracle?)";
          cover_count := B.add !cover_count (Q.num v)
        end)
      z;
    !cover_count
