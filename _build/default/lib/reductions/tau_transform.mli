(** The τ-robustness transformation (Theorem 7.1 / Observation F.3).

    For a CQ without self-joins, a head variable [x] and an injective
    [γ : ℤ → ℤ], rewriting every fact value at the positions where [x]
    occurs by [γ] turns the AggCQ [α ∘ (γ ∘ τ_id^x) ∘ Q] over [D] into
    [α ∘ τ_id^x ∘ Q] over [π(D)] — answer bags coincide, hence all
    Shapley values coincide. Theorem 7.1 combines this with linearity
    (via [γ + id], monotone) to conclude that hardness with any monotone
    [γ ∘ τ_id] implies hardness with the plain copying function [τ_id]:

    {v Shapley(f, α∘(γ∘τ_id)∘Q)[D]
         = Shapley(π f, α∘τ_id∘Q)[π_{γ+id} D] − Shapley(f, α∘τ_id∘Q)[D] v}

    for α ∈ {Min, Max, Avg, Qnt_q} and monotonically increasing γ. *)

val transform :
  Aggshap_cq.Cq.t ->
  var:string ->
  (int -> int) ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Database.t
  * (Aggshap_relational.Fact.t -> Aggshap_relational.Fact.t)
(** [transform q ~var gamma d] is [(π(D), π)]. [gamma] must be injective
    on the values occurring at [var]'s positions; provenance is
    preserved.
    @raise Invalid_argument if a transformed position holds a
    non-integer constant. *)

val theorem_7_1_lhs :
  Aggshap_agg.Aggregate.t ->
  Aggshap_cq.Cq.t ->
  var:string ->
  (int -> int) ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** [Shapley(f, α∘(γ∘τ_id^var)∘Q)[D]] computed through the right-hand
    side of Theorem 7.1 — i.e. with two calls to a τ_id-only solver (the
    exact naive one). Tests compare it against direct computation. *)
