(** #Set-Cover instances and brute-force ground truth.

    The hardness proofs of the paper (Lemmas D.3, D.4, E.2) reduce
    counting problems over a set system [(X, 𝒴)] to Shapley computation.
    This module provides the instances and the exponential counting
    baselines that the executable reductions are checked against. *)

type t = {
  universe : int;  (** X = {1, ..., universe} *)
  sets : int list array;  (** 𝒴 = sets.(0) .. sets.(m-1), subsets of X *)
}

val make : universe:int -> int list list -> t
(** @raise Invalid_argument if a set mentions an element outside X or is
    empty. *)

val random : ?seed:int -> universe:int -> sets:int -> max_set_size:int -> unit -> t

val random_pairs : ?seed:int -> universe:int -> sets:int -> unit -> t
(** Random instance whose sets are pairs (for the permanent reduction);
    the universe size must be even for exact covers to exist. *)

val num_sets : t -> int

val union_size : t -> int list -> int
(** Number of elements covered by the sets with the given indices
    (0-based). *)

val is_pairwise_disjoint : t -> int list -> bool

val count_covers : t -> Aggshap_arith.Bigint.t
(** Number of sub-collections covering all of X ([O(2^m)]). *)

val z_table : t -> Aggshap_arith.Bigint.t array array
(** [Z.(i).(j)]: number of [j]-subsets of 𝒴 covering exactly [i]
    elements, [0 ≤ i ≤ universe], [0 ≤ j ≤ m] (Equation 8). *)

val z_disjoint : t -> Aggshap_arith.Bigint.t array
(** [Z.(j)]: number of [j]-subsets of 𝒴 that are pairwise disjoint
    (Appendix E.1). *)

val count_exact_covers : t -> Aggshap_arith.Bigint.t
(** Pairwise-disjoint sub-collections covering all of X; for a pair
    instance encoding a bipartite graph this is the permanent. *)
