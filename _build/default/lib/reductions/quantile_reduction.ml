module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Parser = Aggshap_cq.Parser
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query

let q_xyy = Parser.parse_query_exn "Q(x) <- R(x, y), S(y)"

let agg_query quantile =
  Agg_query.make (Aggregate.Quantile quantile) (Value_fn.gt ~rel:"R" ~pos:0 Q.zero) q_xyy

let set_fact i = Fact.of_ints "S" [ i ]

let fraction quantile =
  let a = B.to_int_exn (Q.num quantile) and b = B.to_int_exn (Q.den quantile) in
  if a <= 0 || a >= b then invalid_arg "Quantile_reduction: quantile must be in (0,1)";
  (a, b)

let database (sc : Setcover.t) quantile =
  let a, b = fraction quantile in
  let n = sc.Setcover.universe and m = Setcover.num_sets sc in
  let block = b * (b - a) in
  let exo = Database.Exogenous in
  let db = ref Database.empty in
  let add ?(provenance = Database.Endogenous) f = db := Database.add ~provenance f !db in
  (* Element j covered by set Y_i contributes the block of positives
     (j-1)·block+1 .. j·block once S(i) is selected. *)
  Array.iteri
    (fun i0 elements ->
      List.iter
        (fun j ->
          for l = 0 to block - 1 do
            add ~provenance:exo (Fact.of_ints "R" [ (j * block) - l; i0 + 1 ])
          done)
        elements)
    sc.Setcover.sets;
  (* b·a·n always-present zeros and one always-present positive. *)
  for l = 1 to b * a * n do
    add ~provenance:exo (Fact.of_ints "R" [ -l; 0 ])
  done;
  add ~provenance:exo (Fact.of_ints "R" [ (n * block) + 1; 0 ]);
  add ~provenance:exo (Fact.of_ints "S" [ 0 ]);
  for i = 1 to m do
    add (set_fact i)
  done;
  !db

let cover_game (sc : Setcover.t) =
  let m = Setcover.num_sets sc in
  Aggshap_core.Game.make ~n:m (fun mask ->
      let indices =
        List.filteri (fun j _ -> mask land (1 lsl j) <> 0) (List.init m Fun.id)
      in
      if Setcover.union_size sc indices = sc.Setcover.universe then Q.one else Q.zero)

let shapley_via_gadget sc quantile i =
  let db = database sc quantile in
  Aggshap_core.Naive.shapley (agg_query quantile) db (set_fact i)
