module B = Aggshap_arith.Bigint

type t = {
  universe : int;
  sets : int list array;
}

let make ~universe sets =
  List.iter
    (fun s ->
      if s = [] then invalid_arg "Setcover.make: empty set";
      List.iter
        (fun x ->
          if x < 1 || x > universe then invalid_arg "Setcover.make: element outside X")
        s)
    sets;
  { universe; sets = Array.of_list (List.map (List.sort_uniq Stdlib.compare) sets) }

let random ?(seed = 0) ~universe ~sets ~max_set_size () =
  let rng = Random.State.make [| seed |] in
  let one_set () =
    let size = 1 + Random.State.int rng max_set_size in
    List.init size (fun _ -> 1 + Random.State.int rng universe)
    |> List.sort_uniq Stdlib.compare
  in
  make ~universe (List.init sets (fun _ -> one_set ()))

let random_pairs ?(seed = 0) ~universe ~sets () =
  if universe < 2 then invalid_arg "Setcover.random_pairs: universe too small";
  let rng = Random.State.make [| seed |] in
  let one_pair () =
    let x = 1 + Random.State.int rng universe in
    let rec other () =
      let y = 1 + Random.State.int rng universe in
      if y = x then other () else y
    in
    [ x; other () ]
  in
  make ~universe (List.init sets (fun _ -> one_pair ()))

let num_sets t = Array.length t.sets

let union_size t indices =
  let seen = Array.make (t.universe + 1) false in
  List.iter (fun j -> List.iter (fun x -> seen.(x) <- true) t.sets.(j)) indices;
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen

let is_pairwise_disjoint t indices =
  let seen = Array.make (t.universe + 1) false in
  let ok = ref true in
  List.iter
    (fun j ->
      List.iter
        (fun x ->
          if seen.(x) then ok := false;
          seen.(x) <- true)
        t.sets.(j))
    indices;
  !ok

let indices_of_mask m mask =
  let rec go j acc = if j >= m then List.rev acc else go (j + 1) (if mask land (1 lsl j) <> 0 then j :: acc else acc) in
  go 0 []

let fold_subsets t f init =
  let m = num_sets t in
  let acc = ref init in
  for mask = 0 to (1 lsl m) - 1 do
    acc := f !acc (indices_of_mask m mask)
  done;
  !acc

let count_covers t =
  fold_subsets t
    (fun acc indices ->
      if union_size t indices = t.universe then B.succ acc else acc)
    B.zero

let z_table t =
  let m = num_sets t in
  let z = Array.make_matrix (t.universe + 1) (m + 1) B.zero in
  ignore
    (fold_subsets t
       (fun () indices ->
         let i = union_size t indices and j = List.length indices in
         z.(i).(j) <- B.succ z.(i).(j))
       ());
  z

let z_disjoint t =
  let m = num_sets t in
  let z = Array.make (m + 1) B.zero in
  ignore
    (fold_subsets t
       (fun () indices ->
         if is_pairwise_disjoint t indices then begin
           let j = List.length indices in
           z.(j) <- B.succ z.(j)
         end)
       ());
  z

let count_exact_covers t =
  fold_subsets t
    (fun acc indices ->
      if is_pairwise_disjoint t indices && union_size t indices = t.universe then
        B.succ acc
      else acc)
    B.zero
