(** The permanent ⇒ Dup-Shapley reduction, executable (Lemma E.2).

    For a pair instance [(X, 𝒴)] (each [Y_j] a 2-element subset — the
    edges of a graph on X), the gadget databases [D_r] ([r ∈ 0..m]) for
    [Dup ∘ τ_id¹ ∘ Q_full] with [Q_full(x,y) ← R(x,y), S(y)] (the second
    hard query of Lemma E.2 — under the projected [Q_xyy] a shared
    element would collapse to one answer and produce no duplicate) give
    Shapley values of the fact [S(0)] satisfying

    {v Shapley_r = Σ_j (j!·(m+r−j)!/(m+r+1)!) · Z_j v}

    where [Z_j] counts the pairwise-disjoint [j]-subsets of 𝒴. Solving
    the (factorial-Hankel-equivalent) system recovers the [Z_j]; for a
    bipartite pair instance, [Z_{n/2}] is the permanent of the
    biadjacency matrix. *)

val agg_query : Aggshap_agg.Agg_query.t
(** [Dup ∘ τ_ReLU ∘ Q_xyy]. *)

val database : Setcover.t -> r:int -> Aggshap_relational.Database.t

val target_fact : Aggshap_relational.Fact.t

val shapley_predicted : Setcover.t -> r:int -> Aggshap_arith.Rational.t
(** Right-hand side with brute-forced [Z_j], for gadget validation. *)

val system_matrix : Setcover.t -> Aggshap_linalg.Matrix.t

type oracle =
  Aggshap_relational.Database.t -> Aggshap_relational.Fact.t -> Aggshap_arith.Rational.t

val naive_oracle : oracle

val disjoint_counts_via_shapley :
  ?oracle:oracle -> Setcover.t -> Aggshap_arith.Bigint.t array
(** The recovered [Z_0 .. Z_m]. @raise Failure on non-integral output. *)

val permanent_via_shapley : ?oracle:oracle -> Setcover.t -> Aggshap_arith.Bigint.t
(** [Z_{universe/2}] — the number of perfect matchings of the pair
    instance. @raise Invalid_argument if the universe size is odd. *)
