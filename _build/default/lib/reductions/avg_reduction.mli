(** The #Set-Cover ⇒ Avg-Shapley reduction, executable (Lemma D.3).

    For an instance [(X, 𝒴)] with [n = |X|], [m = |𝒴|], the reduction
    builds databases [D_{q,r}] ([q ∈ 0..n], [r ∈ 0..m]) for the AggCQ
    [Avg ∘ τ_ReLU ∘ Q_xyy] with [Q_xyy(x) ← R(x,y), S(y)], asks a Shapley
    oracle for the value of the fact [S(0)] in each, and recovers the
    cover counts [Z_{i,j}] by solving the linear system

    {v Shapley_{q,r} = Σ_{i,j} (j!·(m+r−j)!/(m+r+1)!) · Z_{i,j}/(i+q+2) v}

    whose matrix is the Kronecker product of a shifted Hilbert matrix and
    a matrix column/row-equivalent to the factorial Hankel matrix — hence
    invertible. (The denominator is [i+q+2]: the gadget keeps [q+1]
    always-present zero answers plus the covered elements and the single
    positive answer; the paper's prose says [i+q+1], an off-by-one that
    does not affect the argument.)

    Running this end-to-end both {e demonstrates} the hardness proof and
    {e validates} it numerically: the recovered counts must match brute
    force. *)

val agg_query : Aggshap_agg.Agg_query.t
(** [Avg ∘ τ_ReLU ∘ Q_xyy]. *)

val database : Setcover.t -> q:int -> r:int -> Aggshap_relational.Database.t
(** The gadget database [D_{q,r}]. *)

val target_fact : Aggshap_relational.Fact.t
(** The fact [S(0)] whose Shapley value the oracle reports. *)

val shapley_predicted :
  Setcover.t -> q:int -> r:int -> Aggshap_arith.Rational.t
(** The right-hand side of the equation above, evaluated with
    brute-forced [Z_{i,j}] — used to validate the gadget analysis. *)

val system_matrix : Setcover.t -> Aggshap_linalg.Matrix.t
(** The [(n+1)(m+1) × (n+1)(m+1)] coefficient matrix [L]; row index
    [q·(m+1)+r], column index [i·(m+1)+j]. *)

val kronecker_factors : Setcover.t -> Aggshap_linalg.Matrix.t * Aggshap_linalg.Matrix.t
(** [(N, M)] with [L = N ⊗ M]: [N_{q,i} = 1/(q+i+2)] (shifted Hilbert)
    and [M_{r,j} = j!(m+r−j)!/(m+r+1)!]. *)

type oracle =
  Aggshap_relational.Database.t -> Aggshap_relational.Fact.t -> Aggshap_arith.Rational.t
(** An exact Shapley oracle for {!agg_query}. *)

val naive_oracle : oracle

val count_covers_via_shapley : ?oracle:oracle -> Setcover.t -> Aggshap_arith.Bigint.t
(** The full pipeline: oracle calls → linear solve → [Σ_j Z_{n,j}].
    @raise Failure if the recovered solution is not integral (which
    would indicate a broken oracle). *)
