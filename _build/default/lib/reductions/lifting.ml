module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Hierarchy = Aggshap_cq.Hierarchy
module Parser = Aggshap_cq.Parser
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Value = Aggshap_relational.Value
module Value_fn = Aggshap_agg.Value_fn

type t = {
  target : Cq.t;
  x0 : string;
  y0 : string;
  phi_r : Cq.atom;
  phi_s : Cq.atom;
}

let source_query = Parser.parse_query_exn "Qxyy(x) <- R(x, y), S(y)"

let subset a b = List.for_all (fun x -> List.mem x b) a

let analyze q =
  if not (Hierarchy.is_all_hierarchical q) then
    Error "the target query is not all-hierarchical"
  else if Hierarchy.is_q_hierarchical q then
    Error "the target query is q-hierarchical (nothing to lift to)"
  else begin
    (* A q-hierarchy violation: free x0, existential y0 with
       atoms(x0) ⊆ atoms(y0); usable when some atom has y0 without x0. *)
    let candidates =
      List.concat_map
        (fun x0 ->
          if not (Cq.is_free q x0) then []
          else
            List.filter_map
              (fun y0 ->
                if Cq.is_free q y0 then None
                else if not (subset (Cq.atoms_of q x0) (Cq.atoms_of q y0)) then None
                else begin
                  let phi_r =
                    List.find_opt
                      (fun a ->
                        let vs = Cq.atom_vars a in
                        List.mem x0 vs && List.mem y0 vs)
                      q.Cq.body
                  in
                  let phi_s =
                    List.find_opt
                      (fun a ->
                        let vs = Cq.atom_vars a in
                        List.mem y0 vs && not (List.mem x0 vs))
                      q.Cq.body
                  in
                  match phi_r, phi_s with
                  | Some phi_r, Some phi_s -> Some { target = q; x0; y0; phi_r; phi_s }
                  | _ -> None
                end)
              (Cq.vars q))
        (Cq.vars q)
    in
    match candidates with
    | w :: _ -> Ok w
    | [] ->
      Error
        "no usable witness: every q-hierarchy violation has atoms(x0) = atoms(y0) \
         (the construction of Lemma D.1 needs an atom with y0 but not x0)"
  end

let filler = Value.Str "~c"

(* Instantiate an atom under x0 ↦ a, y0 ↦ b, every other variable ↦ c. *)
let instantiate w (atom : Cq.atom) a b =
  { Fact.rel = atom.Cq.rel;
    args =
      Array.map
        (function
          | Cq.Const v -> v
          | Cq.Var v ->
            if String.equal v w.x0 then a
            else if String.equal v w.y0 then b
            else filler)
        atom.Cq.terms }

let lift_database w d =
  let r_facts, s_facts =
    Database.fold
      (fun (f : Fact.t) p (rs, ss) ->
        match f.rel, Array.length f.args with
        | "R", 2 -> ((f.args.(0), f.args.(1), p) :: rs, ss)
        | "S", 1 -> (rs, (f.args.(0), p) :: ss)
        | _ ->
          invalid_arg
            ("Lifting.lift_database: unexpected fact " ^ Fact.to_string f))
      d ([], [])
  in
  (* Supporting exogenous facts for every (R,S) join pair of the full
     database: within any sub-database, an answer exists iff its R- and
     S-images do. *)
  let db = ref Database.empty in
  List.iter
    (fun (a, b, _) ->
      if List.exists (fun (b', _) -> Value.equal b b') s_facts then
        List.iter
          (fun atom ->
            if atom != w.phi_r && atom != w.phi_s then
              db := Database.add ~provenance:Database.Exogenous (instantiate w atom a b) !db)
          w.target.Cq.body)
    r_facts;
  List.iter
    (fun (a, b, p) -> db := Database.add ~provenance:p (instantiate w w.phi_r a b) !db)
    r_facts;
  List.iter
    (fun (b, p) -> db := Database.add ~provenance:p (instantiate w w.phi_s filler b) !db)
    s_facts;
  let h (f : Fact.t) =
    match f.rel, Array.length f.args with
    | "R", 2 -> instantiate w w.phi_r f.args.(0) f.args.(1)
    | "S", 1 -> instantiate w w.phi_s filler f.args.(0)
    | _ -> invalid_arg ("Lifting: cannot map fact " ^ Fact.to_string f)
  in
  (!db, h)

let source_tau ~descr map =
  Value_fn.custom ~rel:"R" ~descr (fun args -> map args.(0))

let lifted_tau w ~descr map =
  let pos =
    let found = ref (-1) in
    Array.iteri
      (fun i term ->
        match term with
        | Cq.Var v when String.equal v w.x0 && !found < 0 -> found := i
        | _ -> ())
      w.phi_r.Cq.terms;
    !found
  in
  Value_fn.custom ~rel:w.phi_r.Cq.rel ~descr (fun args -> map args.(pos))
