(** The Set-Cover-game ⇒ Quantile-Shapley reduction, executable
    (Lemma D.4).

    For [q = a/b ∈ (0,1)] the gadget database makes the AggCQ
    [Qnt_q ∘ τ_{>0} ∘ Q_xyy] simulate the set-cover game: for every
    coalition [C] of the endogenous facts [S(1..m)],
    [A(C ∪ Dˣ) = 1] iff the corresponding sets cover all of X, else 0.
    Hence each [S(i)] has exactly the Shapley value of player [i] in the
    set-cover game — whose computation is FP^#P-complete. *)

val agg_query : Aggshap_arith.Rational.t -> Aggshap_agg.Agg_query.t
(** [Qnt_q ∘ τ_{>0} ∘ Q_xyy]; the parameter must be in (0,1). *)

val database :
  Setcover.t -> Aggshap_arith.Rational.t -> Aggshap_relational.Database.t

val set_fact : int -> Aggshap_relational.Fact.t
(** [set_fact i] is the endogenous fact [S(i)] standing for set [Y_i]
    (1-based). *)

val cover_game : Setcover.t -> Aggshap_core.Game.t
(** The set-cover game [v_sc] itself, for cross-checking. *)

val shapley_via_gadget :
  Setcover.t -> Aggshap_arith.Rational.t -> int -> Aggshap_arith.Rational.t
(** Shapley value of set [i] obtained by running the naive solver on the
    gadget database; must equal [Game.shapley (cover_game sc) (i-1)]. *)
