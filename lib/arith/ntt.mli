(** Exact integer convolution by residue number system + NTT.

    Convolves two arrays of exact integers in O(m log m) modular word
    operations instead of O(la*lb) bignum multiplications: reduce both
    tables modulo enough NTT-friendly 31-bit primes [c * 2^s + 1] to
    cover a magnitude bound on the output coefficients, transform and
    pointwise-multiply each residue image, then reconstruct each entry
    exactly with Garner's mixed-radix CRT and a balanced lift. The
    result is bit-identical to the schoolbook convolution by
    construction (the prime product strictly dominates twice the
    coefficient bound), never by floating-point luck.

    This is the third convolution tier behind [Tables.convolve]; see
    DESIGN.md §8 for the dispatch policy and the exactness argument. *)

val convolve : Bigint.t array -> Bigint.t array -> Bigint.t array option
(** [convolve a b] is the linear convolution [c] with
    [c.(k) = sum_i a.(i) * b.(k - i)] and
    [length c = length a + length b - 1], or [None] when the tier does
    not apply: an empty operand, an output of length < 2, or a
    transform length whose NTT prime supply is exhausted (callers then
    fall back to the classic scatter / multiply-accumulate paths).
    Signed entries are fine; an all-zero operand short-circuits to an
    all-zero result. *)

(** {1 Fault injection}

    Differential-testing hook (see [Tables.set_fault]): under
    [`Prime_drop] the first CRT digit is zeroed before the remaining
    mixed-radix digits are chained from it — the footprint of losing
    one residue channel's buffer. Every output entry whose true value
    is not divisible by the first basis prime reconstructs wrong. The
    basis is forced to hold at least two primes under the fault, so
    the corruption garbles values instead of zeroing the whole table. *)

type fault = [ `None | `Prime_drop ]

val fault : fault ref

(**/**)

(* Exposed for the property tests and the dispatch cost model. *)

val is_prime : int -> bool
val primes_for : order:int -> min_bits:int -> (int * int) array option
val max_bits : Bigint.t array -> int
val ceil_log2 : int -> int

(**/**)
