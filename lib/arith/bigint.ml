(* Sign-magnitude bignums, little-endian limbs in base 2^30.

   Base 2^30 keeps every intermediate product of two limbs below 2^60 and
   every product-plus-carry below 2^62, which fits comfortably in OCaml's
   63-bit native integers. Division is Knuth's Algorithm D (TAOCP vol. 2,
   4.3.1); the classic qhat estimation and add-back correction are kept
   exactly as in the reference formulation. Multiplication switches from
   schoolbook to Karatsuba above [karatsuba_threshold] limbs, string
   conversion is divide-and-conquer above [string_threshold] limbs, and
   gcd is a hybrid of Euclid division steps and a word-sized binary
   (Stein) finish. *)

let limb_bits = 30
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = { sign : int; mag : int array }
(* Invariants: [sign] is -1, 0 or 1; [mag] has no trailing (most
   significant) zero limb; [sign = 0] iff [mag] is empty. *)

type stats = {
  mul_schoolbook : int;
  mul_karatsuba : int;
  mul_small : int;
  sqr : int;
  divmod : int;
  gcd : int;
  acc_mul : int;
}

(* Plain mutable counters: increments from concurrent domains may be
   lost, which is acceptable for instrumentation that only feeds
   [--stats] and bench reports. *)
let c_mul_schoolbook = ref 0
let c_mul_karatsuba = ref 0
let c_mul_small = ref 0
let c_sqr = ref 0
let c_divmod = ref 0
let c_gcd = ref 0
let c_acc_mul = ref 0

let stats () =
  { mul_schoolbook = !c_mul_schoolbook;
    mul_karatsuba = !c_mul_karatsuba;
    mul_small = !c_mul_small;
    sqr = !c_sqr;
    divmod = !c_divmod;
    gcd = !c_gcd;
    acc_mul = !c_acc_mul }

let reset_stats () =
  c_mul_schoolbook := 0;
  c_mul_karatsuba := 0;
  c_mul_small := 0;
  c_sqr := 0;
  c_divmod := 0;
  c_gcd := 0;
  c_acc_mul := 0

type fault = [ `None | `Karatsuba_split ]

let fault : fault ref = ref `None

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = Array.length mag in
  let rec top i = if i > 0 && mag.(i - 1) = 0 then top (i - 1) else i in
  let len = top n in
  if len = 0 then zero
  else if len = n then { sign; mag }
  else { sign; mag = Array.sub mag 0 len }

(* Effective length of a working magnitude: index past the most
   significant non-zero limb. Internal kernels tolerate (and produce)
   leading zero limbs; [trim_len] is how they agree on the real size. *)
let trim_len mag =
  let rec top i = if i > 0 && mag.(i - 1) = 0 then top (i - 1) else i in
  top (Array.length mag)

let trim mag =
  let len = trim_len mag in
  if len = Array.length mag then mag else Array.sub mag 0 len

let of_small n =
  (* [n] must satisfy [0 <= n]. *)
  if n = 0 then zero
  else if n < base then { sign = 1; mag = [| n |] }
  else if n < base * base then { sign = 1; mag = [| n land limb_mask; n lsr limb_bits |] }
  else
    { sign = 1;
      mag =
        [| n land limb_mask;
           (n lsr limb_bits) land limb_mask;
           n lsr (2 * limb_bits) |] }

let of_int n =
  if n = 0 then zero
  else if n > 0 then of_small n
  else if n = min_int then
    (* [-n] overflows; build from [max_int] instead. *)
    let m = of_small max_int in
    let m1 = { m with mag = Array.copy m.mag } in
    let mag = m1.mag in
    (* max_int + 1: increment with carry. *)
    let rec inc i carry mag =
      if carry = 0 then mag
      else if i < Array.length mag then begin
        let s = mag.(i) + carry in
        mag.(i) <- s land limb_mask;
        inc (i + 1) (s lsr limb_bits) mag
      end
      else begin
        let mag' = Array.make (Array.length mag + 1) 0 in
        Array.blit mag 0 mag' 0 (Array.length mag);
        mag'.(Array.length mag) <- carry;
        mag'
      end
    in
    { sign = -1; mag = inc 0 1 mag }
  else { (of_small (-n)) with sign = -1 }

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign t = t.sign
let is_zero t = t.sign = 0
let is_negative t = t.sign < 0
let is_one t = t.sign = 1 && Array.length t.mag = 1 && t.mag.(0) = 1
let is_even t = t.sign = 0 || t.mag.(0) land 1 = 0

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let equal a b = compare a b = 0

let hash t =
  Array.fold_left (fun acc limb -> (acc * 31 + limb) land max_int) t.sign t.mag

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then { t with sign = 1 } else t

(* Magnitude addition: no sign involved. *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lmax = Stdlib.max la lb in
  let out = Array.make (lmax + 1) 0 in
  let carry = ref 0 in
  for i = 0 to lmax - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  out.(lmax) <- !carry;
  out

(* Magnitude subtraction: requires [a >= b] as values (leading zero
   limbs on either side are fine). *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lb = Stdlib.min lb la in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then begin
      out.(i) <- s + base;
      borrow := 1
    end
    else begin
      out.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  out

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else
    match compare_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sign (sub_mag a.mag b.mag)
    | _ -> normalize b.sign (sub_mag b.mag a.mag)

let sub a b = add a (neg b)

let mul_mag_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    incr c_mul_schoolbook;
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- cur land limb_mask;
        carry := cur lsr limb_bits
      done;
      out.(i + lb) <- out.(i + lb) + !carry
    done;
    out
  end

(* [add_into out off src] accumulates [src] (a working magnitude,
   leading zeros allowed) into [out] starting at limb [off]. The caller
   guarantees the mathematical result fits in [out]. *)
let add_into out off src =
  let el = trim_len src in
  let carry = ref 0 in
  for i = 0 to el - 1 do
    let s = out.(off + i) + src.(i) + !carry in
    out.(off + i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  let j = ref (off + el) in
  while !carry <> 0 do
    let s = out.(!j) + !carry in
    out.(!j) <- s land limb_mask;
    carry := s lsr limb_bits;
    incr j
  done

(* Below this many limbs (on the shorter operand) Karatsuba's extra
   additions and allocations cost more than the saved limb products;
   tuned with a 150..10000-digit sweep on the bench machine. Exposed
   for tests. *)
let karatsuba_threshold = ref 48

(* Karatsuba recursion, splitting both operands at half the shorter
   length. Splitting at the shorter operand keeps [z1 = a0*b1 + a1*b0]
   within [la + lb - m] limbs, so the final accumulation never outgrows
   the [la + lb] result buffer. *)
let rec mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else
    let lmin = Stdlib.min la lb in
    if lmin < Stdlib.max 4 !karatsuba_threshold then mul_mag_school a b
    else begin
      incr c_mul_karatsuba;
      let m = (lmin + 1) / 2 in
      let lo x = Array.sub x 0 m in
      let hi x = Array.sub x m (Array.length x - m) in
      let a0 = lo a and a1 = hi a in
      let b0 = lo b and b1 = hi b in
      let z0 = mul_mag a0 b0 in
      let z2 = mul_mag a1 b1 in
      let z1 =
        sub_mag
          (sub_mag (mul_mag (add_mag a0 a1) (add_mag b0 b1)) z0)
          z2
      in
      let out = Array.make (la + lb) 0 in
      add_into out 0 z0;
      add_into out m z1;
      add_into out (2 * m) z2;
      out
    end

(* Schoolbook squaring with the symmetric-term trick: accumulate the
   strictly-upper cross products, double, then add the diagonal. *)
let sqr_mag_school a =
  let la = Array.length a in
  if la = 0 then [||]
  else begin
    let out = Array.make (2 * la) 0 in
    for i = 0 to la - 2 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = i + 1 to la - 1 do
        let cur = out.(i + j) + (ai * a.(j)) + !carry in
        out.(i + j) <- cur land limb_mask;
        carry := cur lsr limb_bits
      done;
      out.(i + la) <- out.(i + la) + !carry
    done;
    let carry = ref 0 in
    for k = 0 to (2 * la) - 1 do
      let v = (out.(k) lsl 1) lor !carry in
      out.(k) <- v land limb_mask;
      carry := v lsr limb_bits
    done;
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let p = a.(i) * a.(i) in
      let s0 = out.(2 * i) + (p land limb_mask) + !carry in
      out.(2 * i) <- s0 land limb_mask;
      let s1 = out.((2 * i) + 1) + (p lsr limb_bits) + (s0 lsr limb_bits) in
      out.((2 * i) + 1) <- s1 land limb_mask;
      carry := s1 lsr limb_bits
    done;
    out
  end

let rec sqr_mag a =
  let la = Array.length a in
  if la = 0 then [||]
  else if la < Stdlib.max 4 !karatsuba_threshold then sqr_mag_school a
  else begin
    let m = (la + 1) / 2 in
    let a0 = Array.sub a 0 m in
    let a1 = Array.sub a m (la - m) in
    let z0 = sqr_mag a0 in
    let z2 = sqr_mag a1 in
    let z1 = sub_mag (sub_mag (sqr_mag (add_mag a0 a1)) z0) z2 in
    let out = Array.make (2 * la) 0 in
    add_into out 0 z0;
    add_into out m z1;
    add_into out (2 * m) z2;
    out
  end

(* Left-shift a magnitude by [s] bits, 0 <= s < limb_bits. *)
let shift_left_bits u s =
  if s = 0 then Array.copy u
  else begin
    let n = Array.length u in
    let out = Array.make (n + 1) 0 in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let v = (u.(i) lsl s) lor !carry in
      out.(i) <- v land limb_mask;
      carry := v lsr limb_bits
    done;
    out.(n) <- !carry;
    out
  end

(* Right-shift a magnitude by [s] bits, 0 <= s < limb_bits. *)
let shift_right_bits u s =
  if s = 0 then Array.copy u
  else begin
    let n = Array.length u in
    let out = Array.make n 0 in
    for i = 0 to n - 1 do
      let low = u.(i) lsr s in
      let high = if i + 1 < n then (u.(i + 1) lsl (limb_bits - s)) land limb_mask else 0 in
      out.(i) <- low lor high
    done;
    out
  end

(* The injected Karatsuba fault: pretend the implementation forgot the
   [- z2] term in [z1] for a 2-bit split, i.e. return
   [a*b + (|a|/4)*(|b|/4)*4]. The 2-bit split (rather than the
   real limb threshold) makes the bug observable on the small operands
   fuzz trials produce, while still requiring both operands >= 4 --
   exactly the shape of a split-point bug that only fires on "large
   enough" inputs. *)
let karatsuba_split_corrupt a b r =
  let a1 = trim (shift_right_bits a.mag 2) in
  let b1 = trim (shift_right_bits b.mag 2) in
  if Array.length a1 = 0 || Array.length b1 = 0 then r
  else
    let bump = shift_left_bits (mul_mag_school a1 b1) 2 in
    normalize r.sign (add_mag r.mag bump)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else begin
    let r =
      if Array.length a.mag = 1 && Array.length b.mag = 1 then begin
        (* Single-limb operands: the product fits in 60 bits, so build
           the exact-size result directly — no kernel dispatch, no
           oversized buffer, no trim copy. The DP convolutions hit this
           case overwhelmingly often. *)
        incr c_mul_small;
        let p = a.mag.(0) * b.mag.(0) in
        let sign = a.sign * b.sign in
        if p < base then { sign; mag = [| p |] }
        else { sign; mag = [| p land limb_mask; p lsr limb_bits |] }
      end
      else normalize (a.sign * b.sign) (mul_mag a.mag b.mag)
    in
    match !fault with
    | `None -> r
    | `Karatsuba_split -> karatsuba_split_corrupt a b r
  end

let mul_schoolbook a b =
  if a.sign = 0 || b.sign = 0 then zero
  else normalize (a.sign * b.sign) (mul_mag_school a.mag b.mag)

let sqr a =
  if a.sign = 0 then zero
  else begin
    incr c_sqr;
    let r = normalize 1 (sqr_mag a.mag) in
    match !fault with
    | `None -> r
    | `Karatsuba_split -> karatsuba_split_corrupt a a r
  end

let mul_int a n =
  if a.sign = 0 || n = 0 then zero
  else begin
    let m = if n < 0 then -n else n in
    if m > 0 && m < base then begin
      (* Dedicated small-scalar limb loop: one pass, no intermediate
         bignum for the scalar. *)
      incr c_mul_small;
      let la = Array.length a.mag in
      let out = Array.make (la + 1) 0 in
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let cur = (a.mag.(i) * m) + !carry in
        out.(i) <- cur land limb_mask;
        carry := cur lsr limb_bits
      done;
      out.(la) <- !carry;
      normalize (if n < 0 then -a.sign else a.sign) out
    end
    else mul a (of_int n)
  end

let add_int a n = add a (of_int n)
let succ a = add a one
let pred a = sub a one

(* Division of a magnitude by a single limb [d] (0 < d < base). *)
let divmod_small_mag u d =
  let n = Array.length u in
  let q = Array.make n 0 in
  let rem = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!rem lsl limb_bits) lor u.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (q, !rem)

(* Knuth Algorithm D on magnitudes; returns (quotient, remainder).
   Precondition: [Array.length v >= 2], [v] has no leading zero limb. *)
let divmod_knuth u v =
  let n = Array.length v in
  (* Normalize so that the top limb of v has its high bit set. *)
  let rec leading_shift x s = if x land (base lsr 1) <> 0 then s else leading_shift (x lsl 1) (s + 1) in
  let s = leading_shift v.(n - 1) 0 in
  let vn = Array.sub (shift_left_bits v s) 0 n in
  (* The dividend must carry one extra (possibly zero) top limb. *)
  let un =
    let shifted = shift_left_bits u s in
    if Array.length shifted = Array.length u + 1 then shifted
    else Array.append shifted [| 0 |]
  in
  let m = Array.length un - n - 1 in
  let q = Array.make (Stdlib.max (m + 1) 1) 0 in
  for j = m downto 0 do
    let num = (un.(j + n) lsl limb_bits) lor un.(j + n - 1) in
    let qhat = ref (num / vn.(n - 1)) in
    let rhat = ref (num mod vn.(n - 1)) in
    let continue_ = ref true in
    while
      !continue_
      && (!qhat >= base
          || !qhat * vn.(n - 2) > (!rhat lsl limb_bits) lor un.(j + n - 2))
    do
      decr qhat;
      rhat := !rhat + vn.(n - 1);
      if !rhat >= base then continue_ := false
    done;
    (* Multiply and subtract. *)
    let k = ref 0 in
    for i = 0 to n - 1 do
      let p = !qhat * vn.(i) in
      let t = un.(i + j) - !k - (p land limb_mask) in
      un.(i + j) <- t land limb_mask;
      k := (p lsr limb_bits) - (t asr limb_bits)
    done;
    let t = un.(j + n) - !k in
    un.(j + n) <- t;
    if t < 0 then begin
      (* qhat was one too large: add back. *)
      decr qhat;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let t = un.(i + j) + vn.(i) + !carry in
        un.(i + j) <- t land limb_mask;
        carry := t lsr limb_bits
      done;
      un.(j + n) <- un.(j + n) + !carry
    end;
    q.(j) <- !qhat
  done;
  let r = shift_right_bits (Array.sub un 0 n) s in
  (q, r)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else if compare_mag a.mag b.mag < 0 then (zero, a)
  else begin
    incr c_divmod;
    let qmag, rmag =
      if Array.length b.mag = 1 then begin
        let q, r = divmod_small_mag a.mag b.mag.(0) in
        (q, if r = 0 then [||] else [| r |])
      end
      else divmod_knuth a.mag b.mag
    in
    let q = normalize (a.sign * b.sign) qmag in
    let r = normalize a.sign rmag in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e = 1 then mul acc b
    else if e land 1 = 1 then go (mul acc b) (sqr b) (e lsr 1)
    else go acc (sqr b) (e lsr 1)
  in
  go one b e

(* {2 Gcd} *)

let gcd_euclid a b =
  let rec go a b = if is_zero b then a else go b (rem a b) in
  go (abs a) (abs b)

(* Binary (Stein) gcd on non-negative native ints: shift/subtract only,
   no division, no allocation. *)
let gcd_word x y =
  if x = 0 then y
  else if y = 0 then x
  else begin
    let tz n =
      let rec go n s = if n land 1 = 1 then s else go (n lsr 1) (s + 1) in
      go n 0
    in
    let zx = tz x and zy = tz y in
    let shift = Stdlib.min zx zy in
    let x = ref (x lsr zx) and y = ref (y lsr zy) in
    while !x <> !y do
      if !x > !y then begin
        let d = !x - !y in
        x := d lsr tz d
      end
      else begin
        let d = !y - !x in
        y := d lsr tz d
      end
    done;
    !x lsl shift
  end

(* At most 2 limbs always fits 62 bits, hence a non-negative native
   int; 3-limb values may not. *)
let fits_word t = Array.length t.mag <= 2

let word_of t =
  match Array.length t.mag with
  | 0 -> 0
  | 1 -> t.mag.(0)
  | _ -> (t.mag.(1) lsl limb_bits) lor t.mag.(0)

(* Hybrid gcd: Euclid division steps shrink multi-limb operands fast
   (a subtraction-only multi-limb Stein loop measured slower at every
   size), then the word-sized binary gcd finishes allocation-free --
   and handles the overwhelmingly common small case of
   [Rational.make] normalization directly. *)
let gcd a b =
  if a.sign = 0 then abs b
  else if b.sign = 0 then abs a
  else if fits_word a && fits_word b then of_small (gcd_word (word_of a) (word_of b))
  else begin
    incr c_gcd;
    let rec go a b =
      if is_zero b then a
      else if fits_word a && fits_word b then
        of_small (gcd_word (word_of a) (word_of b))
      else go b (rem a b)
    in
    go (abs a) (abs b)
  end

let lcm a b =
  if a.sign = 0 || b.sign = 0 then zero
  else abs (mul (div a (gcd a b)) b)

let to_int_opt t =
  (* A native int holds at most 63 bits: up to 3 limbs with constraints. *)
  match Array.length t.mag with
  | 0 -> Some 0
  | 1 -> Some (t.sign * t.mag.(0))
  | 2 -> Some (t.sign * ((t.mag.(1) lsl limb_bits) lor t.mag.(0)))
  | 3 ->
    let high = t.mag.(2) in
    let v () = (high lsl (2 * limb_bits)) lor (t.mag.(1) lsl limb_bits) lor t.mag.(0) in
    if high < 1 lsl (62 - 2 * limb_bits) then Some (t.sign * v ())
    else if t.sign < 0 && high = 1 lsl (62 - 2 * limb_bits) && t.mag.(1) = 0 && t.mag.(0) = 0
    then Some min_int
    else None
  | _ -> None

let to_int_exn t =
  match to_int_opt t with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: out of native int range"

let to_float t =
  let basef = float_of_int base in
  let m = Array.fold_right (fun limb acc -> (acc *. basef) +. float_of_int limb) t.mag 0.0 in
  float_of_int t.sign *. m

let chunk_base = 1_000_000_000
let chunk_digits = 9

(* Above this many limbs, string conversion splits around a power of
   10^9 instead of peeling one 9-digit chunk per division. *)
let string_threshold = 30

(* Decimal digits of a small trimmed magnitude via the chunk loop. *)
let small_mag_to_string mag =
  let buf = Buffer.create 32 in
  let rec chunks mag acc =
    if Array.length mag = 0 then acc
    else
      let q, r = divmod_small_mag mag chunk_base in
      chunks (trim q) (r :: acc)
  in
  (match chunks mag [] with
   | [] -> Buffer.add_char buf '0'
   | first :: rest ->
     Buffer.add_string buf (string_of_int first);
     List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%0*d" chunk_digits c)) rest);
  Buffer.contents buf

let add_zeros buf k =
  for _ = 1 to k do
    Buffer.add_char buf '0'
  done

(* Append the decimal digits of [mag], left-padded with zeros to [pad]
   digits when [pad > 0]. Divide-and-conquer: split around the largest
   (10^9)^(2^j) whose limb count is at most half of [mag]'s; the
   remainder then has exactly 9*2^j digit positions. *)
let rec mag_to_digits buf mag pad =
  let mag = trim mag in
  let len = Array.length mag in
  if len = 0 then
    if pad > 0 then add_zeros buf pad else Buffer.add_char buf '0'
  else if len <= string_threshold then begin
    let s = small_mag_to_string mag in
    let sl = String.length s in
    if pad > sl then add_zeros buf (pad - sl);
    Buffer.add_string buf s
  end
  else begin
    let p = ref [| chunk_base |] and pd = ref chunk_digits in
    let prev = ref !p and prevd = ref !pd in
    while 2 * Array.length !p <= len do
      prev := !p;
      prevd := !pd;
      p := trim (sqr_mag !p);
      pd := !pd * 2
    done;
    (* The climb can overshoot [mag] when the top limbs are small; the
       previous power has at most [len/2] limbs so it is always below
       [mag], guaranteeing a non-zero quotient (hence progress). *)
    let p, pd = if compare_mag !p mag <= 0 then (!p, !pd) else (!prev, !prevd) in
    let q, r = divmod_knuth mag p in
    mag_to_digits buf (trim q) (pad - pd);
    mag_to_digits buf r pd
  end

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create (Array.length t.mag * 10) in
    if t.sign < 0 then Buffer.add_char buf '-';
    mag_to_digits buf t.mag 0;
    Buffer.contents buf
  end

(* Above this many digits, parsing splits the digit string in half and
   recombines with one multiplication by a power of ten. *)
let of_string_threshold = 256

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  for i = start to len - 1 do
    if not (s.[i] >= '0' && s.[i] <= '9') then
      invalid_arg "Bigint.of_string: invalid character"
  done;
  let int_pow10 e =
    let rec go acc e = if e = 0 then acc else go (acc * 10) (e - 1) in
    go 1 e
  in
  let ten = of_small 10 in
  let rec parse off len =
    if len <= of_string_threshold then begin
      let acc = ref zero in
      let i = ref off in
      let stop = off + len in
      while !i < stop do
        let take = Stdlib.min chunk_digits (stop - !i) in
        let part_val = int_of_string (String.sub s !i take) in
        acc := add (mul_int !acc (int_pow10 take)) (of_small part_val);
        i := !i + take
      done;
      !acc
    end
    else begin
      let low_len = len / 2 in
      let high = parse off (len - low_len) in
      let low = parse (off + len - low_len) low_len in
      add (mul high (pow ten low_len)) low
    end
  in
  let v = parse start (len - start) in
  if sign < 0 then neg v else v

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* {2 Multiply-accumulate}

   The convolution inner loop [acc += a*b] is the single hottest
   operation of every DP in this project. Going through [mul] + [add]
   allocates a product magnitude and a fresh sum per term; [Acc]
   instead accumulates limb products into a growable mutable buffer
   (one per sign) and materialises a bigint only once at the end. *)
module Acc = struct
  type buf = { mutable limbs : int array; mutable len : int }

  type acc = { pos : buf; neg : buf }

  let mk_buf hint = { limbs = Array.make (Stdlib.max 4 hint) 0; len = 0 }

  let create ?(hint = 8) () = { pos = mk_buf hint; neg = mk_buf hint }

  let clear_buf buf =
    Array.fill buf.limbs 0 buf.len 0;
    buf.len <- 0

  let clear acc =
    clear_buf acc.pos;
    clear_buf acc.neg

  let ensure buf cap =
    let n = Array.length buf.limbs in
    if cap > n then begin
      let n' = ref (Stdlib.max 4 n) in
      while !n' < cap do
        n' := !n' * 2
      done;
      let limbs = Array.make !n' 0 in
      Array.blit buf.limbs 0 limbs 0 buf.len;
      buf.limbs <- limbs
    end

  (* buf += src, where [src] is a working magnitude. *)
  let add_mag_into buf src =
    let el = trim_len src in
    if el > 0 then begin
      ensure buf (Stdlib.max buf.len el + 1);
      let limbs = buf.limbs in
      let carry = ref 0 in
      for i = 0 to el - 1 do
        let s = limbs.(i) + src.(i) + !carry in
        limbs.(i) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      let j = ref el in
      while !carry <> 0 do
        let s = limbs.(!j) + !carry in
        limbs.(!j) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr j
      done;
      buf.len <- Stdlib.max buf.len (Stdlib.max !j el)
    end

  (* buf += a*b, schoolbook, directly into the buffer. *)
  let madd buf a b =
    let la = Array.length a and lb = Array.length b in
    ensure buf (Stdlib.max buf.len (la + lb) + 1);
    let limbs = buf.limbs in
    let top = ref 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      if ai <> 0 then begin
        for j = 0 to lb - 1 do
          let cur = limbs.(i + j) + (ai * b.(j)) + !carry in
          limbs.(i + j) <- cur land limb_mask;
          carry := cur lsr limb_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let cur = limbs.(!k) + !carry in
          limbs.(!k) <- cur land limb_mask;
          carry := cur lsr limb_bits;
          incr k
        done;
        if !k > !top then top := !k
      end
    done;
    buf.len <- Stdlib.max buf.len (Stdlib.max !top (la + lb))

  let add_mul acc a b =
    if a.sign <> 0 && b.sign <> 0 then begin
      incr c_acc_mul;
      let buf = if a.sign * b.sign > 0 then acc.pos else acc.neg in
      let la = Array.length a.mag and lb = Array.length b.mag in
      if Stdlib.min la lb >= Stdlib.max 4 !karatsuba_threshold then
        (* Large operands: compute the product with Karatsuba, then
           fold it into the buffer. *)
        add_mag_into buf (mul_mag a.mag b.mag)
      else madd buf a.mag b.mag
    end

  let add acc a =
    if a.sign <> 0 then
      add_mag_into (if a.sign > 0 then acc.pos else acc.neg) a.mag

  let buf_mag buf = trim (Array.sub buf.limbs 0 buf.len)

  let value acc =
    let p = buf_mag acc.pos and n = buf_mag acc.neg in
    if Array.length n = 0 then normalize 1 p
    else if Array.length p = 0 then normalize (-1) n
    else
      match compare_mag p n with
      | 0 -> zero
      | c when c > 0 -> normalize 1 (sub_mag p n)
      | _ -> normalize (-1) (sub_mag n p)
end

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
