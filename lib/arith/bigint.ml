(* Sign-magnitude bignums with a tagged small-integer fast path.

   A value is either [Small n] — a native 63-bit OCaml integer — or
   [Big], a sign-magnitude little-endian limb array in base 2^30. The
   representation is canonical: every integer that fits a native [int]
   (except [min_int], whose negation overflows, so it always lives on
   the [Big] side) is [Small], and every operation demotes a limb-array
   result back to [Small] the moment it fits. Canonical forms make
   structural equality coincide with numeric equality and keep the many
   tiny DP-table entries produced early in the recursions off the heap
   entirely: a [Small] is an immediate, unboxed value.

   Small/small operations run in native arithmetic guarded by exact
   overflow checks (promote only on demand); everything else promotes to
   limbs. Base 2^30 keeps every intermediate product of two limbs below
   2^60 and every product-plus-carry below 2^62, which fits comfortably
   in OCaml's 63-bit native integers. Division is Knuth's Algorithm D
   (TAOCP vol. 2, 4.3.1); the classic qhat estimation and add-back
   correction are kept exactly as in the reference formulation.
   Multiplication switches from schoolbook to Karatsuba above
   [karatsuba_threshold] limbs, string conversion is divide-and-conquer
   above [string_threshold] limbs, and gcd is a hybrid of Euclid
   division steps and a word-sized binary (Stein) finish. *)

let limb_bits = 30
let base = 1 lsl limb_bits
let limb_mask = base - 1

type big = { sign : int; mag : int array }
(* Invariants: [sign] is -1, 0 or 1; [mag] has no trailing (most
   significant) zero limb; [sign = 0] iff [mag] is empty. *)

type t = Small of int | Big of big
(* Canonical forms: [Small n] for every native [n] except [min_int];
   [Big] only for values outside [[-max_int, max_int]] (which includes
   [min_int] itself). Internal kernels work on [big] records and may
   produce small magnitudes; [demote] restores canonicity at the public
   boundary. *)

type stats = {
  mul_schoolbook : int;
  mul_karatsuba : int;
  mul_small : int;
  sqr : int;
  divmod : int;
  gcd : int;
  acc_mul : int;
  promotions : int;
  demotions : int;
}

(* Atomic counters: increments from concurrent domains are never lost,
   so [--stats] and BENCH_v1 kernel counts are exact under --jobs N. *)
let c_mul_schoolbook = Atomic.make 0
let c_mul_karatsuba = Atomic.make 0
let c_mul_small = Atomic.make 0
let c_sqr = Atomic.make 0
let c_divmod = Atomic.make 0
let c_gcd = Atomic.make 0
let c_acc_mul = Atomic.make 0
let c_promotions = Atomic.make 0
let c_demotions = Atomic.make 0

let stats () =
  { mul_schoolbook = Atomic.get c_mul_schoolbook;
    mul_karatsuba = Atomic.get c_mul_karatsuba;
    mul_small = Atomic.get c_mul_small;
    sqr = Atomic.get c_sqr;
    divmod = Atomic.get c_divmod;
    gcd = Atomic.get c_gcd;
    acc_mul = Atomic.get c_acc_mul;
    promotions = Atomic.get c_promotions;
    demotions = Atomic.get c_demotions }

let reset_stats () =
  Atomic.set c_mul_schoolbook 0;
  Atomic.set c_mul_karatsuba 0;
  Atomic.set c_mul_small 0;
  Atomic.set c_sqr 0;
  Atomic.set c_divmod 0;
  Atomic.set c_gcd 0;
  Atomic.set c_acc_mul 0;
  Atomic.set c_promotions 0;
  Atomic.set c_demotions 0

type fault = [ `None | `Karatsuba_split ]

let fault : fault ref = ref `None

let big_zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = Array.length mag in
  let rec top i = if i > 0 && mag.(i - 1) = 0 then top (i - 1) else i in
  let len = top n in
  if len = 0 then big_zero
  else if len = n then { sign; mag }
  else { sign; mag = Array.sub mag 0 len }

(* Effective length of a working magnitude: index past the most
   significant non-zero limb. Internal kernels tolerate (and produce)
   leading zero limbs; [trim_len] is how they agree on the real size. *)
let trim_len mag =
  let rec top i = if i > 0 && mag.(i - 1) = 0 then top (i - 1) else i in
  top (Array.length mag)

let trim mag =
  let len = trim_len mag in
  if len = Array.length mag then mag else Array.sub mag 0 len

let big_of_small n =
  (* [n] must satisfy [0 <= n]. *)
  if n = 0 then big_zero
  else if n < base then { sign = 1; mag = [| n |] }
  else if n < base * base then { sign = 1; mag = [| n land limb_mask; n lsr limb_bits |] }
  else
    { sign = 1;
      mag =
        [| n land limb_mask;
           (n lsr limb_bits) land limb_mask;
           n lsr (2 * limb_bits) |] }

let big_of_int n =
  if n = 0 then big_zero
  else if n > 0 then big_of_small n
  else if n = min_int then
    (* [-n] overflows; build from [max_int] instead. *)
    let m = big_of_small max_int in
    let m1 = { m with mag = Array.copy m.mag } in
    let mag = m1.mag in
    (* max_int + 1: increment with carry. *)
    let rec inc i carry mag =
      if carry = 0 then mag
      else if i < Array.length mag then begin
        let s = mag.(i) + carry in
        mag.(i) <- s land limb_mask;
        inc (i + 1) (s lsr limb_bits) mag
      end
      else begin
        let mag' = Array.make (Array.length mag + 1) 0 in
        Array.blit mag 0 mag' 0 (Array.length mag);
        mag'.(Array.length mag) <- carry;
        mag'
      end
    in
    { sign = -1; mag = inc 0 1 mag }
  else { (big_of_small (-n)) with sign = -1 }

(* Demote a limb-array result to [Small] when the value fits a native
   int other than [min_int]; restores the canonical-form invariant. *)
let demote b =
  let small =
    match Array.length b.mag with
    | 0 -> Some 0
    | 1 -> Some (b.sign * b.mag.(0))
    | 2 -> Some (b.sign * ((b.mag.(1) lsl limb_bits) lor b.mag.(0)))
    | 3 ->
      let high = b.mag.(2) in
      if high < 1 lsl (62 - (2 * limb_bits)) then
        Some (b.sign * ((high lsl (2 * limb_bits)) lor (b.mag.(1) lsl limb_bits) lor b.mag.(0)))
      else None
    | _ -> None
  in
  match small with
  | Some n ->
    Atomic.incr c_demotions;
    Small n
  | None -> Big b

(* Promote to the limb representation on demand. *)
let big_of = function
  | Big b -> b
  | Small n ->
    Atomic.incr c_promotions;
    big_of_int n

let zero = Small 0
let one = Small 1
let two = Small 2
let minus_one = Small (-1)

let of_int n = if n = min_int then Big (big_of_int min_int) else Small n

let is_small = function Small _ -> true | Big _ -> false

let small_value = function
  | Small n -> n
  | Big _ -> invalid_arg "Bigint.small_value: promoted value"

let sign = function
  | Small n -> Stdlib.compare n 0
  | Big b -> b.sign

let is_zero = function Small 0 -> true | _ -> false
let is_one = function Small 1 -> true | _ -> false

let is_negative = function
  | Small n -> n < 0
  | Big b -> b.sign < 0

let is_even = function
  | Small n -> n land 1 = 0
  | Big b -> b.mag.(0) land 1 = 0

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let big_compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let compare a b =
  match (a, b) with
  | Small x, Small y -> Stdlib.compare x y
  | Big x, Big y -> big_compare x y
  (* A canonical [Big] is larger in magnitude than any [Small]. *)
  | Small _, Big y -> if y.sign > 0 then -1 else 1
  | Big x, Small _ -> if x.sign > 0 then 1 else -1

let equal a b = compare a b = 0

let hash = function
  | Small n -> n land max_int
  | Big b ->
    Array.fold_left (fun acc limb -> ((acc * 31) + limb) land max_int) b.sign b.mag

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg = function
  | Small n -> Small (-n) (* [n <> min_int] by the canonical-form invariant *)
  | Big b -> Big { b with sign = -b.sign }

let abs t =
  match t with
  | Small n -> if n < 0 then Small (-n) else t
  | Big b -> if b.sign < 0 then Big { b with sign = 1 } else t

(* Magnitude addition: no sign involved. *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lmax = Stdlib.max la lb in
  let out = Array.make (lmax + 1) 0 in
  let carry = ref 0 in
  for i = 0 to lmax - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    out.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  out.(lmax) <- !carry;
  out

(* Magnitude subtraction: requires [a >= b] as values (leading zero
   limbs on either side are fine). *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lb = Stdlib.min lb la in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then begin
      out.(i) <- s + base;
      borrow := 1
    end
    else begin
      out.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  out

let big_add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else
    match compare_mag a.mag b.mag with
    | 0 -> big_zero
    | c when c > 0 -> normalize a.sign (sub_mag a.mag b.mag)
    | _ -> normalize b.sign (sub_mag b.mag a.mag)

let add a b =
  match (a, b) with
  | Small 0, _ -> b
  | _, Small 0 -> a
  | Small x, Small y ->
    let s = x + y in
    if (x >= 0) = (y >= 0) && (s >= 0) <> (x >= 0) then
      (* Native overflow: the true sum exceeds [max_int] in magnitude,
         so the limb-path result stays [Big] with no demotion check. *)
      Big (big_add (big_of_int x) (big_of_int y))
    else if s = min_int then Big (big_of_int min_int)
    else Small s
  | _ -> demote (big_add (big_of a) (big_of b))

let sub a b = add a (neg b)

let mul_mag_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    Atomic.incr c_mul_schoolbook;
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- cur land limb_mask;
        carry := cur lsr limb_bits
      done;
      out.(i + lb) <- out.(i + lb) + !carry
    done;
    out
  end

(* [add_into out off src] accumulates [src] (a working magnitude,
   leading zeros allowed) into [out] starting at limb [off]. The caller
   guarantees the mathematical result fits in [out]. *)
let add_into out off src =
  let el = trim_len src in
  let carry = ref 0 in
  for i = 0 to el - 1 do
    let s = out.(off + i) + src.(i) + !carry in
    out.(off + i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  let j = ref (off + el) in
  while !carry <> 0 do
    let s = out.(!j) + !carry in
    out.(!j) <- s land limb_mask;
    carry := s lsr limb_bits;
    incr j
  done

(* Below this many limbs (on the shorter operand) Karatsuba's extra
   additions and allocations cost more than the saved limb products;
   tuned with a 150..10000-digit sweep on the bench machine. Exposed
   for tests. *)
let karatsuba_threshold = ref 48

(* Karatsuba recursion, splitting both operands at half the shorter
   length. Splitting at the shorter operand keeps [z1 = a0*b1 + a1*b0]
   within [la + lb - m] limbs, so the final accumulation never outgrows
   the [la + lb] result buffer. *)
let rec mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else
    let lmin = Stdlib.min la lb in
    if lmin < Stdlib.max 4 !karatsuba_threshold then mul_mag_school a b
    else begin
      Atomic.incr c_mul_karatsuba;
      let m = (lmin + 1) / 2 in
      let lo x = Array.sub x 0 m in
      let hi x = Array.sub x m (Array.length x - m) in
      let a0 = lo a and a1 = hi a in
      let b0 = lo b and b1 = hi b in
      let z0 = mul_mag a0 b0 in
      let z2 = mul_mag a1 b1 in
      let z1 =
        sub_mag
          (sub_mag (mul_mag (add_mag a0 a1) (add_mag b0 b1)) z0)
          z2
      in
      let out = Array.make (la + lb) 0 in
      add_into out 0 z0;
      add_into out m z1;
      add_into out (2 * m) z2;
      out
    end

(* Schoolbook squaring with the symmetric-term trick: accumulate the
   strictly-upper cross products, double, then add the diagonal. *)
let sqr_mag_school a =
  let la = Array.length a in
  if la = 0 then [||]
  else begin
    let out = Array.make (2 * la) 0 in
    for i = 0 to la - 2 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = i + 1 to la - 1 do
        let cur = out.(i + j) + (ai * a.(j)) + !carry in
        out.(i + j) <- cur land limb_mask;
        carry := cur lsr limb_bits
      done;
      out.(i + la) <- out.(i + la) + !carry
    done;
    let carry = ref 0 in
    for k = 0 to (2 * la) - 1 do
      let v = (out.(k) lsl 1) lor !carry in
      out.(k) <- v land limb_mask;
      carry := v lsr limb_bits
    done;
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let p = a.(i) * a.(i) in
      let s0 = out.(2 * i) + (p land limb_mask) + !carry in
      out.(2 * i) <- s0 land limb_mask;
      let s1 = out.((2 * i) + 1) + (p lsr limb_bits) + (s0 lsr limb_bits) in
      out.((2 * i) + 1) <- s1 land limb_mask;
      carry := s1 lsr limb_bits
    done;
    out
  end

let rec sqr_mag a =
  let la = Array.length a in
  if la = 0 then [||]
  else if la < Stdlib.max 4 !karatsuba_threshold then sqr_mag_school a
  else begin
    let m = (la + 1) / 2 in
    let a0 = Array.sub a 0 m in
    let a1 = Array.sub a m (la - m) in
    let z0 = sqr_mag a0 in
    let z2 = sqr_mag a1 in
    let z1 = sub_mag (sub_mag (sqr_mag (add_mag a0 a1)) z0) z2 in
    let out = Array.make (2 * la) 0 in
    add_into out 0 z0;
    add_into out m z1;
    add_into out (2 * m) z2;
    out
  end

(* Left-shift a magnitude by [s] bits, 0 <= s < limb_bits. *)
let shift_left_bits u s =
  if s = 0 then Array.copy u
  else begin
    let n = Array.length u in
    let out = Array.make (n + 1) 0 in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let v = (u.(i) lsl s) lor !carry in
      out.(i) <- v land limb_mask;
      carry := v lsr limb_bits
    done;
    out.(n) <- !carry;
    out
  end

(* Right-shift a magnitude by [s] bits, 0 <= s < limb_bits. *)
let shift_right_bits u s =
  if s = 0 then Array.copy u
  else begin
    let n = Array.length u in
    let out = Array.make n 0 in
    for i = 0 to n - 1 do
      let low = u.(i) lsr s in
      let high = if i + 1 < n then (u.(i + 1) lsl (limb_bits - s)) land limb_mask else 0 in
      out.(i) <- low lor high
    done;
    out
  end

(* The injected Karatsuba fault: pretend the implementation forgot the
   [- z2] term in [z1] for a 2-bit split, i.e. return
   [a*b + (|a|/4)*(|b|/4)*4]. The 2-bit split (rather than the
   real limb threshold) makes the bug observable on the small operands
   fuzz trials produce, while still requiring both operands >= 4 --
   exactly the shape of a split-point bug that only fires on "large
   enough" inputs. *)
let karatsuba_split_corrupt a b r =
  let a1 = trim (shift_right_bits a.mag 2) in
  let b1 = trim (shift_right_bits b.mag 2) in
  if Array.length a1 = 0 || Array.length b1 = 0 then r
  else
    let bump = shift_left_bits (mul_mag_school a1 b1) 2 in
    normalize r.sign (add_mag r.mag bump)

let big_mul a b =
  if a.sign = 0 || b.sign = 0 then big_zero
  else normalize (a.sign * b.sign) (mul_mag a.mag b.mag)

(* The fault applies to every multiplication — including the native
   small/small fast path — so randomized trials on tiny operands can
   still observe it. *)
let apply_mul_fault a b r =
  demote (karatsuba_split_corrupt (big_of a) (big_of b) (big_of r))

(* Both factors strictly below 2^31 in magnitude multiply without
   overflow (product < 2^62 <= max_int); the quick-accept test keeps
   the dominant tiny-operand case free of the division-based check. *)
let small_prod_bound = 1 lsl 31

let mul a b =
  match (a, b) with
  | Small 0, _ | _, Small 0 -> Small 0
  | Small x, Small y ->
    let r =
      let ax = if x < 0 then -x else x in
      let ay = if y < 0 then -y else y in
      if ax < small_prod_bound && ay < small_prod_bound then begin
        Atomic.incr c_mul_small;
        Small (x * y)
      end
      else
        let p = x * y in
        (* [p = min_int] is either a wrap or the one in-range product
           [Small] cannot hold; [p / y = x] certifies no overflow
           (a wrapped product differs from the true one by a multiple
           of 2^63, farther than any |y| < 2^62 rounding slack). *)
        if p <> min_int && p / y = x then begin
          Atomic.incr c_mul_small;
          Small p
        end
        else demote (big_mul (big_of_int x) (big_of_int y))
    in
    (match !fault with
     | `None -> r
     | `Karatsuba_split -> apply_mul_fault a b r)
  | _ ->
    let r = demote (big_mul (big_of a) (big_of b)) in
    (match !fault with
     | `None -> r
     | `Karatsuba_split -> apply_mul_fault a b r)

let mul_schoolbook a b =
  match (a, b) with
  | Small 0, _ | _, Small 0 -> Small 0
  | _ ->
    let a = big_of a and b = big_of b in
    demote (normalize (a.sign * b.sign) (mul_mag_school a.mag b.mag))

let sqr a =
  match a with
  | Small 0 -> Small 0
  | Small x ->
    Atomic.incr c_sqr;
    let r =
      let ax = if x < 0 then -x else x in
      if ax < small_prod_bound then Small (x * x)
      else
        let p = x * x in
        if p <> min_int && p / x = x then Small p
        else demote (normalize 1 (sqr_mag (big_of_int x).mag))
    in
    (match !fault with
     | `None -> r
     | `Karatsuba_split -> apply_mul_fault a a r)
  | Big b ->
    Atomic.incr c_sqr;
    let r = demote (normalize 1 (sqr_mag b.mag)) in
    (match !fault with
     | `None -> r
     | `Karatsuba_split -> apply_mul_fault a a r)

(* The dedicated scalar loop admits any |n| < 2^32: limb*scalar plus
   carry stays below 2^62. *)
let mul_int_bound = 1 lsl 32

let mul_int a n =
  match a with
  | Small _ -> mul a (of_int n)
  | Big b ->
    if n = 0 then Small 0
    else
      let m = if n < 0 then -n else n in
      if m > 0 && m < mul_int_bound then begin
        (* Dedicated small-scalar limb loop: one pass, no intermediate
           bignum for the scalar. *)
        Atomic.incr c_mul_small;
        let la = Array.length b.mag in
        let out = Array.make (la + 2) 0 in
        let carry = ref 0 in
        for i = 0 to la - 1 do
          let cur = (b.mag.(i) * m) + !carry in
          out.(i) <- cur land limb_mask;
          carry := cur lsr limb_bits
        done;
        out.(la) <- !carry land limb_mask;
        out.(la + 1) <- !carry lsr limb_bits;
        demote (normalize (if n < 0 then -b.sign else b.sign) out)
      end
      else mul a (of_int n)

let add_int a n = add a (of_int n)
let succ a = add a one
let pred a = sub a one

(* Division of a magnitude by a single limb [d] (0 < d < base). *)
let divmod_small_mag u d =
  let n = Array.length u in
  let q = Array.make n 0 in
  let rem = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!rem lsl limb_bits) lor u.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (q, !rem)

(* Knuth Algorithm D on magnitudes; returns (quotient, remainder).
   Precondition: [Array.length v >= 2], [v] has no leading zero limb. *)
let divmod_knuth u v =
  let n = Array.length v in
  (* Normalize so that the top limb of v has its high bit set. *)
  let rec leading_shift x s = if x land (base lsr 1) <> 0 then s else leading_shift (x lsl 1) (s + 1) in
  let s = leading_shift v.(n - 1) 0 in
  let vn = Array.sub (shift_left_bits v s) 0 n in
  (* The dividend must carry one extra (possibly zero) top limb. *)
  let un =
    let shifted = shift_left_bits u s in
    if Array.length shifted = Array.length u + 1 then shifted
    else Array.append shifted [| 0 |]
  in
  let m = Array.length un - n - 1 in
  let q = Array.make (Stdlib.max (m + 1) 1) 0 in
  for j = m downto 0 do
    let num = (un.(j + n) lsl limb_bits) lor un.(j + n - 1) in
    let qhat = ref (num / vn.(n - 1)) in
    let rhat = ref (num mod vn.(n - 1)) in
    let continue_ = ref true in
    while
      !continue_
      && (!qhat >= base
          || !qhat * vn.(n - 2) > (!rhat lsl limb_bits) lor un.(j + n - 2))
    do
      decr qhat;
      rhat := !rhat + vn.(n - 1);
      if !rhat >= base then continue_ := false
    done;
    (* Multiply and subtract. *)
    let k = ref 0 in
    for i = 0 to n - 1 do
      let p = !qhat * vn.(i) in
      let t = un.(i + j) - !k - (p land limb_mask) in
      un.(i + j) <- t land limb_mask;
      k := (p lsr limb_bits) - (t asr limb_bits)
    done;
    let t = un.(j + n) - !k in
    un.(j + n) <- t;
    if t < 0 then begin
      (* qhat was one too large: add back. *)
      decr qhat;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let t = un.(i + j) + vn.(i) + !carry in
        un.(i + j) <- t land limb_mask;
        carry := t lsr limb_bits
      done;
      un.(j + n) <- un.(j + n) + !carry
    end;
    q.(j) <- !qhat
  done;
  let r = shift_right_bits (Array.sub un 0 n) s in
  (q, r)

let big_divmod a b =
  if a.sign = 0 then (big_zero, big_zero)
  else if compare_mag a.mag b.mag < 0 then (big_zero, a)
  else begin
    Atomic.incr c_divmod;
    let qmag, rmag =
      if Array.length b.mag = 1 then begin
        let q, r = divmod_small_mag a.mag b.mag.(0) in
        (q, if r = 0 then [||] else [| r |])
      end
      else divmod_knuth a.mag b.mag
    in
    let q = normalize (a.sign * b.sign) qmag in
    let r = normalize a.sign rmag in
    (q, r)
  end

let divmod a b =
  match (a, b) with
  | _, Small 0 -> raise Division_by_zero
  | Small x, Small y ->
    (* Native truncated division; [min_int / -1], the only overflowing
       case, cannot arise because [Small] never holds [min_int]. *)
    (Small (x / y), Small (x mod y))
  | Small x, Big _ ->
    (* A canonical [Big] divisor exceeds any [Small] in magnitude. *)
    (Small 0, Small x)
  | Big _, _ ->
    let q, r = big_divmod (big_of a) (big_of b) in
    (demote q, demote r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e = 1 then mul acc b
    else if e land 1 = 1 then go (mul acc b) (sqr b) (e lsr 1)
    else go acc (sqr b) (e lsr 1)
  in
  go one b e

(* {2 Gcd} *)

let gcd_euclid a b =
  let rec go a b = if is_zero b then a else go b (rem a b) in
  go (abs a) (abs b)

(* Binary (Stein) gcd on non-negative native ints: shift/subtract only,
   no division, no allocation. *)
let gcd_word x y =
  if x = 0 then y
  else if y = 0 then x
  else begin
    let tz n =
      let rec go n s = if n land 1 = 1 then s else go (n lsr 1) (s + 1) in
      go n 0
    in
    let zx = tz x and zy = tz y in
    let shift = Stdlib.min zx zy in
    let x = ref (x lsr zx) and y = ref (y lsr zy) in
    while !x <> !y do
      if !x > !y then begin
        let d = !x - !y in
        x := d lsr tz d
      end
      else begin
        let d = !y - !x in
        y := d lsr tz d
      end
    done;
    !x lsl shift
  end

(* Hybrid gcd: Euclid division steps shrink multi-limb operands fast
   (a subtraction-only multi-limb Stein loop measured slower at every
   size), then the word-sized binary gcd finishes allocation-free --
   and handles the overwhelmingly common case of [Rational.make]
   normalization directly, since both operands of a reduced rational
   are usually [Small]. *)
let gcd a b =
  match (a, b) with
  | Small 0, _ -> abs b
  | _, Small 0 -> abs a
  | Small x, Small y ->
    Small (gcd_word (if x < 0 then -x else x) (if y < 0 then -y else y))
  | _ ->
    Atomic.incr c_gcd;
    let rec go a b =
      match (a, b) with
      | _, Small 0 -> a
      | Small x, Small y ->
        Small (gcd_word (if x < 0 then -x else x) (if y < 0 then -y else y))
      | _ -> go b (rem a b)
    in
    go (abs a) (abs b)

let lcm a b =
  if is_zero a || is_zero b then zero
  else abs (mul (div a (gcd a b)) b)

let to_int_opt = function
  | Small n -> Some n
  | Big b ->
    (* Canonical [Big]: only [min_int] still fits a native int. *)
    if b.sign < 0
       && Array.length b.mag = 3
       && b.mag.(2) = 1 lsl (62 - (2 * limb_bits))
       && b.mag.(1) = 0
       && b.mag.(0) = 0
    then Some min_int
    else None

let to_int_exn t =
  match to_int_opt t with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: out of native int range"

let to_float = function
  | Small n -> float_of_int n
  | Big b ->
    let basef = float_of_int base in
    let m = Array.fold_right (fun limb acc -> (acc *. basef) +. float_of_int limb) b.mag 0.0 in
    float_of_int b.sign *. m

(* Number of bits in |t|: 0 for zero, otherwise the position of the
   highest set bit plus one. O(1): limb count plus the top limb's
   width. *)
let word_bits n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let bit_length = function
  | Small 0 -> 0
  | Small n -> word_bits (if n < 0 then -n else n)
  | Big b ->
    let l = Array.length b.mag in
    ((l - 1) * limb_bits) + word_bits (b.mag.(l - 1))

(* Remainder modulo a native [m], allocation-free: a Horner fold over
   the limbs. Each step keeps [r < m < 2^32], so [r lsl 30 lor limb]
   stays below 2^62. Result has the sign of [t] (truncated division),
   matching [rem t (of_int m)]. *)
let rem_int t m =
  if m <= 0 || m >= mul_int_bound then
    invalid_arg "Bigint.rem_int: modulus must be in [1, 2^32)";
  match t with
  | Small x -> x mod m
  | Big b ->
    let r = ref 0 in
    for i = Array.length b.mag - 1 downto 0 do
      r := ((!r lsl limb_bits) lor b.mag.(i)) mod m
    done;
    b.sign * !r

let chunk_base = 1_000_000_000
let chunk_digits = 9

(* Above this many limbs, string conversion splits around a power of
   10^9 instead of peeling one 9-digit chunk per division. *)
let string_threshold = 30

(* Decimal digits of a small trimmed magnitude via the chunk loop. *)
let small_mag_to_string mag =
  let buf = Buffer.create 32 in
  let rec chunks mag acc =
    if Array.length mag = 0 then acc
    else
      let q, r = divmod_small_mag mag chunk_base in
      chunks (trim q) (r :: acc)
  in
  (match chunks mag [] with
   | [] -> Buffer.add_char buf '0'
   | first :: rest ->
     Buffer.add_string buf (string_of_int first);
     List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%0*d" chunk_digits c)) rest);
  Buffer.contents buf

let add_zeros buf k =
  for _ = 1 to k do
    Buffer.add_char buf '0'
  done

(* Append the decimal digits of [mag], left-padded with zeros to [pad]
   digits when [pad > 0]. Divide-and-conquer: split around the largest
   (10^9)^(2^j) whose limb count is at most half of [mag]'s; the
   remainder then has exactly 9*2^j digit positions. *)
let rec mag_to_digits buf mag pad =
  let mag = trim mag in
  let len = Array.length mag in
  if len = 0 then
    if pad > 0 then add_zeros buf pad else Buffer.add_char buf '0'
  else if len <= string_threshold then begin
    let s = small_mag_to_string mag in
    let sl = String.length s in
    if pad > sl then add_zeros buf (pad - sl);
    Buffer.add_string buf s
  end
  else begin
    let p = ref [| chunk_base |] and pd = ref chunk_digits in
    let prev = ref !p and prevd = ref !pd in
    while 2 * Array.length !p <= len do
      prev := !p;
      prevd := !pd;
      p := trim (sqr_mag !p);
      pd := !pd * 2
    done;
    (* The climb can overshoot [mag] when the top limbs are small; the
       previous power has at most [len/2] limbs so it is always below
       [mag], guaranteeing a non-zero quotient (hence progress). *)
    let p, pd = if compare_mag !p mag <= 0 then (!p, !pd) else (!prev, !prevd) in
    let q, r = divmod_knuth mag p in
    mag_to_digits buf (trim q) (pad - pd);
    mag_to_digits buf r pd
  end

let to_string = function
  | Small n -> string_of_int n
  | Big b ->
    let buf = Buffer.create (Array.length b.mag * 10) in
    if b.sign < 0 then Buffer.add_char buf '-';
    mag_to_digits buf b.mag 0;
    Buffer.contents buf

(* Above this many digits, parsing splits the digit string in half and
   recombines with one multiplication by a power of ten. *)
let of_string_threshold = 256

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  for i = start to len - 1 do
    if not (s.[i] >= '0' && s.[i] <= '9') then
      invalid_arg "Bigint.of_string: invalid character"
  done;
  let int_pow10 e =
    let rec go acc e = if e = 0 then acc else go (acc * 10) (e - 1) in
    go 1 e
  in
  let ten = Small 10 in
  let rec parse off len =
    if len <= of_string_threshold then begin
      let acc = ref zero in
      let i = ref off in
      let stop = off + len in
      while !i < stop do
        let take = Stdlib.min chunk_digits (stop - !i) in
        (* Accumulate the chunk digit by digit: strictly decimal by
           construction on every path, where delegating to
           [int_of_string] would also admit OCaml integer-literal
           syntax (hex/octal/binary prefixes, '_' separators, nested
           signs) if it ever saw unvalidated input. *)
        let part_val = ref 0 in
        for k = !i to !i + take - 1 do
          part_val := (!part_val * 10) + (Char.code s.[k] - Char.code '0')
        done;
        acc := add (mul_int !acc (int_pow10 take)) (Small !part_val);
        i := !i + take
      done;
      !acc
    end
    else begin
      let low_len = len / 2 in
      let high = parse off (len - low_len) in
      let low = parse (off + len - low_len) low_len in
      add (mul high (pow ten low_len)) low
    end
  in
  let v = parse start (len - start) in
  if sign < 0 then neg v else v

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* {2 Multiply-accumulate}

   The convolution inner loop [acc += a*b] is the single hottest
   operation of every DP in this project. Going through [mul] + [add]
   allocates a product magnitude and a fresh sum per term; [Acc]
   instead accumulates limb products into a growable mutable buffer
   (one per sign) and materialises a bigint only once at the end.
   Small/small terms never touch a limb array at all: the native
   product is folded in as a three-limb carry ripple. *)
module Acc = struct
  type buf = { mutable limbs : int array; mutable len : int }

  type acc = { pos : buf; neg : buf }

  let mk_buf hint = { limbs = Array.make (Stdlib.max 4 hint) 0; len = 0 }

  let create ?(hint = 8) () = { pos = mk_buf hint; neg = mk_buf hint }

  let clear_buf buf =
    Array.fill buf.limbs 0 buf.len 0;
    buf.len <- 0

  let clear acc =
    clear_buf acc.pos;
    clear_buf acc.neg

  let ensure buf cap =
    let n = Array.length buf.limbs in
    if cap > n then begin
      let n' = ref (Stdlib.max 4 n) in
      while !n' < cap do
        n' := !n' * 2
      done;
      let limbs = Array.make !n' 0 in
      Array.blit buf.limbs 0 limbs 0 buf.len;
      buf.limbs <- limbs
    end

  (* buf += w, for a native word 0 <= w < 2^62: spread over limbs with
     the carry rippling in place (slots past [len] are zero). *)
  let add_word buf w =
    if w > 0 then begin
      ensure buf (buf.len + 4);
      let limbs = buf.limbs in
      let carry = ref w in
      let i = ref 0 in
      while !carry <> 0 do
        let s = limbs.(!i) + (!carry land limb_mask) in
        limbs.(!i) <- s land limb_mask;
        carry := (!carry lsr limb_bits) + (s lsr limb_bits);
        incr i
      done;
      buf.len <- Stdlib.max buf.len !i
    end

  (* buf += src, where [src] is a working magnitude. *)
  let add_mag_into buf src =
    let el = trim_len src in
    if el > 0 then begin
      ensure buf (Stdlib.max buf.len el + 1);
      let limbs = buf.limbs in
      let carry = ref 0 in
      for i = 0 to el - 1 do
        let s = limbs.(i) + src.(i) + !carry in
        limbs.(i) <- s land limb_mask;
        carry := s lsr limb_bits
      done;
      let j = ref el in
      while !carry <> 0 do
        let s = limbs.(!j) + !carry in
        limbs.(!j) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr j
      done;
      buf.len <- Stdlib.max buf.len (Stdlib.max !j el)
    end

  (* buf += a*b, schoolbook, directly into the buffer. *)
  let madd buf a b =
    let la = Array.length a and lb = Array.length b in
    ensure buf (Stdlib.max buf.len (la + lb) + 1);
    let limbs = buf.limbs in
    let top = ref 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      if ai <> 0 then begin
        for j = 0 to lb - 1 do
          let cur = limbs.(i + j) + (ai * b.(j)) + !carry in
          limbs.(i + j) <- cur land limb_mask;
          carry := cur lsr limb_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let cur = limbs.(!k) + !carry in
          limbs.(!k) <- cur land limb_mask;
          carry := cur lsr limb_bits;
          incr k
        done;
        if !k > !top then top := !k
      end
    done;
    buf.len <- Stdlib.max buf.len (Stdlib.max !top (la + lb))

  (* buf += w * src, for a single-limb scalar 0 < w < 2^30: one fused
     pass, no promotion of the small operand and no product bignum. *)
  let madd_word buf w src =
    let ls = Array.length src in
    ensure buf (Stdlib.max buf.len (ls + 1) + 1);
    let limbs = buf.limbs in
    let carry = ref 0 in
    for j = 0 to ls - 1 do
      let cur = limbs.(j) + (w * src.(j)) + !carry in
      limbs.(j) <- cur land limb_mask;
      carry := cur lsr limb_bits
    done;
    let k = ref ls in
    while !carry <> 0 do
      let cur = limbs.(!k) + !carry in
      limbs.(!k) <- cur land limb_mask;
      carry := cur lsr limb_bits;
      incr k
    done;
    buf.len <- Stdlib.max buf.len (Stdlib.max !k ls)

  let add_mul_big acc a b =
    let a = big_of a and b = big_of b in
    let buf = if a.sign * b.sign > 0 then acc.pos else acc.neg in
    let la = Array.length a.mag and lb = Array.length b.mag in
    if Stdlib.min la lb >= Stdlib.max 4 !karatsuba_threshold then
      (* Large operands: compute the product with Karatsuba, then
         fold it into the buffer. *)
      add_mag_into buf (mul_mag a.mag b.mag)
    else madd buf a.mag b.mag

  let add_mul acc a b =
    match (a, b) with
    | Small 0, _ | _, Small 0 -> ()
    | Small x, Small y ->
      Atomic.incr c_acc_mul;
      let ax = if x < 0 then -x else x in
      let ay = if y < 0 then -y else y in
      if ax < small_prod_bound && ay < small_prod_bound then
        add_word (if (x >= 0) = (y >= 0) then acc.pos else acc.neg) (ax * ay)
      else begin
        let p = x * y in
        if p <> min_int && p / y = x then
          add_word
            (if p > 0 then acc.pos else acc.neg)
            (if p < 0 then -p else p)
        else add_mul_big acc a b
      end
    | (Small x, Big b | Big b, Small x) when Stdlib.abs x < 1 lsl limb_bits ->
      (* Mixed small/limb product with a single-limb scalar — the bulk
         shape of dense convolutions over tables holding both small
         edge entries and factorial-scale middles. [x <> 0]: zeros were
         matched above, and [Small] never holds [min_int] so [abs] is
         exact. *)
      Atomic.incr c_acc_mul;
      madd_word
        (if (x >= 0) = (b.sign > 0) then acc.pos else acc.neg)
        (Stdlib.abs x) b.mag
    | _ ->
      if not (is_zero a || is_zero b) then begin
        Atomic.incr c_acc_mul;
        add_mul_big acc a b
      end

  let add acc a =
    match a with
    | Small 0 -> ()
    | Small n ->
      add_word (if n > 0 then acc.pos else acc.neg) (if n < 0 then -n else n)
    | Big b -> add_mag_into (if b.sign > 0 then acc.pos else acc.neg) b.mag

  let buf_mag buf = trim (Array.sub buf.limbs 0 buf.len)

  let value acc =
    let p = buf_mag acc.pos and n = buf_mag acc.neg in
    if Array.length n = 0 then demote (normalize 1 p)
    else if Array.length p = 0 then demote (normalize (-1) n)
    else
      match compare_mag p n with
      | 0 -> zero
      | c when c > 0 -> demote (normalize 1 (sub_mag p n))
      | _ -> demote (normalize (-1) (sub_mag n p))
end

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
