(** Combinatorial quantities used throughout the Shapley computations.

    All functions memoize internally (growable tables), so repeated calls
    with arguments up to the same bound are amortized O(1). The memo
    tables are domain-safe: lookups and growth may happen concurrently
    from several domains. *)

val factorial : int -> Bigint.t
(** [factorial n] is [n!]. @raise Invalid_argument on negative [n]. *)

val binomial : int -> int -> Bigint.t
(** [binomial n k] is [C(n, k)]; [0] when [k < 0] or [k > n].
    @raise Invalid_argument on negative [n]. *)

val binomial_row : int -> Bigint.t array
(** [binomial_row n] is the shared Pascal row [|C(n,0); ...; C(n,n)|].
    The array is the memo table's own storage: callers must treat it as
    read-only (copy before mutating).
    @raise Invalid_argument on negative [n]. *)

val shapley_weights : int -> Bigint.t array
(** [shapley_weights n] is the shared row [|w_0; ...; w_{n-1}|] with
    [w_k = k! (n-k-1)!], the Shapley numerators over the common
    denominator [n!]. Read-only, like {!binomial_row}.
    @raise Invalid_argument on negative [n]. *)

val shapley_coefficient : players:int -> before:int -> Rational.t
(** [shapley_coefficient ~players:n ~before:k] is
    [q_k = k! (n-k-1)! / n!] — the probability that, drawing players
    uniformly without replacement, a fixed player arrives exactly after
    [k] others (Equation 1 of the paper).
    @raise Invalid_argument unless [0 <= k < n]. *)

val harmonic : int -> Rational.t
(** [harmonic n] is [H(n) = 1 + 1/2 + ... + 1/n]; [H(0) = 0]. *)

val falling_factorial : int -> int -> Bigint.t
(** [falling_factorial n k] is [n (n-1) ... (n-k+1)]. *)

val divisors : int -> int list
(** Positive divisors of [n > 0], ascending. *)

val compositions2 : int -> (int * int) list
(** [compositions2 k] lists all [(k1, k2)] with [k1 + k2 = k], [k1, k2 >= 0]. *)
