(** Arbitrary-precision signed integers.

    Tagged representation: every value that fits a native 63-bit [int]
    (except [min_int], whose negation overflows) is an immediate,
    unboxed small integer; everything else is a sign-magnitude record
    with little-endian limbs in base [2^30]. Small/small operations run
    in native arithmetic behind exact overflow checks and promote to
    limb arrays only on demand; limb results demote back the moment
    they fit, so the representation is canonical and the many tiny
    DP-table entries early in the recursions never touch the heap.
    All operations are purely functional. This module exists because
    the Shapley coefficients [k!(n-k-1)!/n!] and the subset counts
    manipulated by the dynamic programs exceed 63-bit integers for any
    interesting database size, and no bignum package is available in
    this environment. *)

type t

(** {1 Instrumentation}

    Per-process call counters for the arithmetic kernels, read by
    [shapctl solve --stats] and the bench JSON reports. The counters
    are [Atomic.t]s: increments from concurrent domains are never
    lost, so the numbers are exact under [--jobs > 1]. *)

type stats = {
  mul_schoolbook : int;  (** schoolbook magnitude multiplications *)
  mul_karatsuba : int;  (** Karatsuba recursion steps *)
  mul_small : int;  (** native small products and small-scalar [mul_int] loops *)
  sqr : int;  (** squarings (the [pow] fast path) *)
  divmod : int;  (** non-trivial divisions *)
  gcd : int;  (** multi-limb gcd runs *)
  acc_mul : int;  (** {!Acc.add_mul} multiply-accumulate calls *)
  promotions : int;  (** small values promoted to limb arrays *)
  demotions : int;  (** limb results demoted back to small ints *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

(** {1 Fault injection}

    Differential-testing hook (see [Tables.set_fault]): when set to
    [`Karatsuba_split], every multiplication of two operands both at
    least [4] gains a spurious [+ (|a|/4)*(|b|/4)*4] term — the
    classic "forgot [- z2] in the middle Karatsuba term" bug scaled
    down to a 2-bit split so randomized trials can observe it. *)

type fault = [ `None | `Karatsuba_split ]

val fault : fault ref

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

val of_int : int -> t

val to_int_opt : t -> int option
(** [None] if the value does not fit in a native [int]. *)

val is_small : t -> bool
(** [true] iff the value is held in the unboxed small-integer
    representation — every native [int] except [min_int]. Exposed for
    the promotion/demotion property tests. *)

val small_value : t -> int
(** The native value of a small-representation number, without
    allocating (unlike {!to_int_opt}). Pair with {!is_small}: this is
    the extraction primitive for kernels that batch-convert whole
    tables into the int domain (see {!Aggshap_core.Tables.convolve}).
    @raise Invalid_argument on a promoted (limb-array) value. *)

val to_int_exn : t -> int
(** @raise Failure if the value does not fit in a native [int]. *)

val to_float : t -> float
(** Approximate conversion; may overflow to [infinity]. *)

val of_string : string -> t
(** Parses an optionally-signed decimal numeral.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** {1 Predicates and comparison} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_one : t -> bool
val is_negative : t -> bool
val is_even : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t

val mul : t -> t -> t
(** Schoolbook below {!karatsuba_threshold} limbs (on the shorter
    operand), Karatsuba above it. *)

val mul_schoolbook : t -> t -> t
(** Always-schoolbook reference multiplication, exposed so property
    tests can check the Karatsuba path differentially. Ignores the
    fault hook. *)

val karatsuba_threshold : int ref
(** Limb count (of the shorter operand) at which {!mul} switches to
    Karatsuba. Tuned default; tests may lower it (values below 4 are
    clamped to keep the recursion well-founded). *)

val sqr : t -> t
(** [sqr a = mul a a] with the symmetric-term squaring kernel
    (about half the limb products of a general multiplication). *)

val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], truncated towards zero
    (so [r] has the sign of [a] and [|r| < |b|]).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val mul_int : t -> int -> t
(** Dedicated single-pass limb loop when [|n| < 2^32]; falls back to a
    full multiplication otherwise. *)

val add_int : t -> int -> t

val rem_int : t -> int -> int
(** [rem_int t m] for [1 <= m < 2^32] is [to_int_exn (rem t (of_int m))]
    computed allocation-free by a Horner fold over the limbs (truncated
    semantics: the result carries the sign of [t]). This is the residue
    extraction primitive of the RNS/NTT convolution tier.
    @raise Invalid_argument if [m] is outside [1, 2^32). *)

val pow : t -> int -> t
(** [pow b e] for [e >= 0], squaring via {!sqr}.
    @raise Invalid_argument on negative exponent. *)

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative; [gcd 0 0 = 0].
    Hybrid kernel: Euclid division steps while multi-limb, then an
    allocation-free word-sized binary (Stein) gcd — which is also the
    direct path for the small operands [Rational.make] normalizes. *)

val gcd_euclid : t -> t -> t
(** Reference Euclid/division gcd, exposed so property tests can check
    the binary gcd differentially. *)

val lcm : t -> t -> t
(** Least common multiple; always non-negative; zero if either argument
    is zero. *)

val bit_length : t -> int
(** Number of bits in [|t|]: [0] for zero, otherwise the index of the
    highest set bit plus one ([bit_length t = ceil (log2 (|t| + 1))]).
    O(1). Used for the RNS magnitude bound. *)

(** {1 Multiply-accumulate}

    Mutable accumulator for convolution inner loops: [acc += a*b]
    without allocating an intermediate product or a fresh sum per term.
    Not thread-safe; use one accumulator per domain. *)
module Acc : sig
  type acc

  val create : ?hint:int -> unit -> acc
  (** [hint] is the expected result size in limbs. *)

  val add_mul : acc -> t -> t -> unit
  (** [add_mul acc a b]: [acc += a*b]. *)

  val add : acc -> t -> unit
  (** [add acc a]: [acc += a]. *)

  val value : acc -> t
  (** Current accumulated value (the accumulator stays usable). *)

  val clear : acc -> unit
  (** Reset to zero, keeping the buffers for reuse. *)
end

(** {1 Infix operators}

    Grouped in a submodule so callers can [open Bigint.Infix] locally. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end
