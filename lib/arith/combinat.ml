(* Memoized combinatorics. The memo tables grow geometrically and are
   shared across the whole process; all entries are immutable bignums.

   The tables must be safe to consult from several domains at once (the
   batch engine fans Shapley computations across cores): each table is a
   published snapshot read atomically, and growth happens under a mutex
   by building a fresh array and publishing it whole. Filled prefixes of
   published snapshots are never mutated afterwards. *)

type 'a snapshot = { data : 'a array; filled : int }

type 'a table = {
  lock : Mutex.t;
  state : 'a snapshot Atomic.t;
}

let make_table seed =
  { lock = Mutex.create (); state = Atomic.make { data = [| seed |]; filled = 1 } }

(* [extend data i] computes entry [i]; entries [< i] are already valid. *)
let lookup t ~extend n =
  let snap = Atomic.get t.state in
  if n < snap.filled then snap.data.(n)
  else begin
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        let snap = Atomic.get t.state in
        if n < snap.filled then snap.data.(n)
        else begin
          (* Reallocate only when capacity is exhausted — single-step
             growth (n = filled, the ascending-query pattern of the row
             caches) must not double the backing array each call. Slots
             in [filled .. cap) were never readable in any published
             snapshot, so filling them in place keeps the contract that
             published filled prefixes are immutable. *)
          let data =
            if n < Array.length snap.data then snap.data
            else begin
              let cap = max (n + 1) (2 * Array.length snap.data) in
              let data = Array.make cap snap.data.(0) in
              Array.blit snap.data 0 data 0 snap.filled;
              data
            end
          in
          for i = snap.filled to n do
            data.(i) <- extend data i
          done;
          Atomic.set t.state { data; filled = n + 1 };
          data.(n)
        end)
  end

let factorial_table = make_table Bigint.one

let factorial n =
  if n < 0 then invalid_arg "Combinat.factorial: negative argument";
  lookup factorial_table n ~extend:(fun data i -> Bigint.mul_int data.(i - 1) i)

(* Pascal rows: row [n] is [|C(n,0); ...; C(n,n)|]. Each new row costs
   [n] bignum additions off the previous one — no factorial-scale
   multiply/divide per entry — and is then shared: the DP tables
   request whole rows ({!Tables.full}, binomial padding) at every
   decomposition node, so [binomial] must be a plain array read. *)
let binomial_row_table = make_table [| Bigint.one |]

let binomial_row n =
  if n < 0 then invalid_arg "Combinat.binomial_row: negative n";
  lookup binomial_row_table n ~extend:(fun data i ->
      let prev = data.(i - 1) in
      Array.init (i + 1) (fun k ->
          if k = 0 || k = i then Bigint.one else Bigint.add prev.(k - 1) prev.(k)))

let binomial n k =
  if n < 0 then invalid_arg "Combinat.binomial: negative n";
  if k < 0 || k > n then Bigint.zero else (binomial_row n).(k)

(* Row [n] is [|w_0; ...; w_{n-1}|] with [w_k = k! (n-k-1)!] — the
   Shapley numerators over the shared denominator [n!]. One row serves
   every fact of an [n]-player game, so the per-fact dot products
   ({!Sumk}) never rebuild the factorial products. *)
let shapley_weight_table = make_table [||]

let shapley_weights players =
  if players < 0 then invalid_arg "Combinat.shapley_weights: negative players";
  lookup shapley_weight_table players ~extend:(fun _ i ->
      Array.init i (fun k -> Bigint.mul (factorial k) (factorial (i - k - 1))))

let shapley_coefficient ~players ~before =
  if before < 0 || before >= players then
    invalid_arg "Combinat.shapley_coefficient: need 0 <= before < players";
  Rational.make (shapley_weights players).(before) (factorial players)

let harmonic_table = make_table Rational.zero

let harmonic n =
  if n < 0 then invalid_arg "Combinat.harmonic: negative argument";
  lookup harmonic_table n ~extend:(fun data i ->
      Rational.add data.(i - 1) (Rational.of_ints 1 i))

let falling_factorial n k =
  let rec go acc i = if i >= k then acc else go (Bigint.mul_int acc (n - i)) (i + 1) in
  if k <= 0 then Bigint.one else go Bigint.one 0

let divisors n =
  if n <= 0 then invalid_arg "Combinat.divisors: nonpositive argument";
  let rec go d acc =
    if d * d > n then acc
    else if n mod d = 0 then
      let acc = d :: acc in
      let acc = if d <> n / d then (n / d) :: acc else acc in
      go (d + 1) acc
    else go (d + 1) acc
  in
  List.sort Stdlib.compare (go 1 [])

let compositions2 k = List.init (k + 1) (fun k1 -> (k1, k - k1))
