(* Exact integer convolution by residue number system + NTT.

   The dynamic programs convolve count tables whose entries are exact
   bignums; the schoolbook forms in [Tables] cost O(la*lb) bignum
   multiplications. This module instead:

   1. bounds the magnitude of every output coefficient:
      |c_k| <= min(la,lb) * max|a| * max|b| < 2^B with
      B = bits(max|a|) + bits(max|b|) + ceil(log2 (min la lb));
   2. picks NTT-friendly primes p_i = c * 2^s + 1 (all below 2^31, so
      a product of two residues fits OCaml's native 63-bit ints) until
      their product P >= 2^(B+1) > 2 * 2^B;
   3. reduces both tables mod each p_i ([Bigint.rem_int], one
      allocation-free Horner fold per entry), convolves each residue
      image in O(m log m) with an iterative radix-2 NTT, and
   4. reconstructs each output entry exactly with Garner's mixed-radix
      CRT, lifting to the balanced range (-P/2, P/2] — which contains
      [-2^B, 2^B] by step 2, so the reconstruction equals the true
      integer coefficient. The result is bit-identical to the
      schoolbook convolution by construction, not by rounding luck.

   Deviation from the sketch in ISSUE 7: the issue suggests "2-3
   62-bit primes", but two 62-bit residues cannot be multiplied
   without 124-bit intermediates, which native OCaml ints do not have.
   We use 31-bit primes (residue products < 2^62) and proportionally
   more of them; the prime pool grows on demand per 2-adic order and
   the whole tier reports [None] (callers fall back to the classic
   paths) if a transform length ever exhausts the supply. *)

type fault = [ `None | `Prime_drop ]

(* [`Prime_drop]: simulate losing the first CRT digit — the
   mixed-radix digit for p_0 is zeroed before the remaining digits are
   chained from it, as if one residue channel's buffer were dropped.
   Every output entry not divisible by p_0 reconstructs wrong. Synced
   from [Tables.set_fault]; see the fault-injection oracle in
   [lib/check]. *)
let fault : fault ref = ref `None

(* ------------------------------------------------------------------ *)
(* Modular arithmetic on native ints, moduli < 2^31                    *)
(* ------------------------------------------------------------------ *)

let mulmod p a b = a * b mod p

let powmod p b e =
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (mulmod p acc b) (mulmod p b b) (e lsr 1)
    else go acc (mulmod p b b) (e lsr 1)
  in
  go 1 (b mod p) e

(* Modular inverse via Fermat: [p] prime, [a] not divisible by [p]. *)
let invmod p a = powmod p a (p - 2)

(* Deterministic Miller-Rabin: the witness set {2, 3, 5, 7} is exact
   for every n < 3,215,031,751, which covers all candidates < 2^31. *)
let is_prime n =
  if n < 2 then false
  else if n land 1 = 0 then n = 2
  else begin
    let d = ref (n - 1) and s = ref 0 in
    while !d land 1 = 0 do
      d := !d lsr 1;
      incr s
    done;
    let strong_witness a =
      (* true if [a] proves n composite *)
      let a = a mod n in
      if a = 0 then false
      else begin
        let x = ref (powmod n a !d) in
        if !x = 1 || !x = n - 1 then false
        else begin
          let composite = ref true in
          (try
             for _ = 2 to !s do
               x := mulmod n !x !x;
               if !x = n - 1 then begin
                 composite := false;
                 raise Exit
               end
             done
           with Exit -> ());
          !composite
        end
      end
    in
    not (List.exists strong_witness [ 2; 3; 5; 7 ])
  end

(* A root of multiplicative order exactly [2^order] mod [p], for
   [p = c * 2^order + 1]: [x^((p-1)/2^order)] has order dividing
   [2^order], and order exactly [2^order] iff its [2^(order-1)]-th
   power is not 1. Non-residues are dense, so the scan is short. *)
let root_of_order p order =
  let q = (p - 1) lsr order in
  let rec try_x x =
    let w = powmod p x q in
    if w <> 0 && powmod p w (1 lsl (order - 1)) <> 1 then w else try_x (x + 1)
  in
  try_x 2

(* ------------------------------------------------------------------ *)
(* Prime pools, one per 2-adic order                                   *)
(* ------------------------------------------------------------------ *)

type pool = {
  mutable entries : (int * int) array;
      (* (p, root of order exactly [2^order]), found in descending c *)
  mutable next_c : int;  (* next multiplier to probe; 0 = exhausted *)
}

let pools : (int, pool) Hashtbl.t = Hashtbl.create 8
let pools_mutex = Mutex.create ()

let pool_for order =
  match Hashtbl.find_opt pools order with
  | Some p -> p
  | None ->
    let pool = { entries = [||]; next_c = ((1 lsl 31) - 2) lsr order } in
    Hashtbl.add pools order pool;
    pool

(* Probe downward from the pool cursor for the next prime of the form
   [c * 2^order + 1]; false when the order's supply is exhausted. *)
let grow pool order =
  let rec go c =
    if c < 1 then begin
      pool.next_c <- 0;
      false
    end
    else
      let p = (c lsl order) + 1 in
      if is_prime p then begin
        pool.next_c <- c - 1;
        pool.entries <- Array.append pool.entries [| (p, root_of_order p order) |];
        true
      end
      else go (c - 1)
  in
  go pool.next_c

let floor_log2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

(* Shortest pool prefix whose prime product exceeds [2^(min_bits+1)]
   (hence [> 2 * 2^min_bits], enough to separate balanced residues of
   magnitude [<= 2^min_bits - 1]); grows the pool on demand. [None] if
   no such prefix exists for this transform order. The pools are
   shared across domains; the mutex covers lookup and growth, and the
   returned array is a fresh copy. *)
let primes_for ~order ~min_bits =
  Mutex.protect pools_mutex (fun () ->
    let pool = pool_for order in
    let target = min_bits + 1 in
    let rec collect i acc_bits =
      if acc_bits >= target then Some (Array.sub pool.entries 0 i)
      else if i < Array.length pool.entries then
        collect (i + 1) (acc_bits + floor_log2 (fst pool.entries.(i)))
      else if grow pool order then collect i acc_bits
      else None
    in
    collect 0 0)

(* ------------------------------------------------------------------ *)
(* Iterative radix-2 NTT                                               *)
(* ------------------------------------------------------------------ *)

let bit_reverse a =
  let n = Array.length a in
  let j = ref 0 in
  for i = 1 to n - 1 do
    let bit = ref (n lsr 1) in
    while !j land !bit <> 0 do
      j := !j lxor !bit;
      bit := !bit lsr 1
    done;
    j := !j lor !bit;
    if i < !j then begin
      let t = a.(i) in
      a.(i) <- a.(!j);
      a.(!j) <- t
    end
  done

(* In-place transform of [a] (length a power of two, <= [2^order])
   mod [p]; [root] has order exactly [2^order]. Cooley-Tukey with
   bit-reversed input ordering; [invert] runs the inverse transform
   including the [1/n] scaling. *)
let ntt p root order a ~invert =
  bit_reverse a;
  let n = Array.length a in
  let len = ref 2 in
  while !len <= n do
    let wlen = powmod p root ((1 lsl order) / !len) in
    let wlen = if invert then invmod p wlen else wlen in
    let half = !len lsr 1 in
    let i = ref 0 in
    while !i < n do
      let w = ref 1 in
      for k = !i to !i + half - 1 do
        let u = a.(k) and v = mulmod p a.(k + half) !w in
        let s = u + v in
        a.(k) <- (if s >= p then s - p else s);
        let d = u - v in
        a.(k + half) <- (if d < 0 then d + p else d);
        w := mulmod p !w wlen
      done;
      i := !i + !len
    done;
    len := !len lsl 1
  done;
  if invert then begin
    let ninv = invmod p n in
    for k = 0 to n - 1 do
      a.(k) <- mulmod p a.(k) ninv
    done
  end

(* Cyclic convolution of the zero-padded residue images mod [p]; [m]
   is a power of two at least [la + lb - 1], so the wrap-around never
   touches live coefficients and the result is the linear convolution. *)
let convolve_mod p root order ra rb m =
  let fa = Array.make m 0 and fb = Array.make m 0 in
  Array.blit ra 0 fa 0 (Array.length ra);
  Array.blit rb 0 fb 0 (Array.length rb);
  ntt p root order fa ~invert:false;
  ntt p root order fb ~invert:false;
  for i = 0 to m - 1 do
    fa.(i) <- mulmod p fa.(i) fb.(i)
  done;
  ntt p root order fa ~invert:true;
  fa

(* ------------------------------------------------------------------ *)
(* CRT reconstruction (Garner's mixed-radix algorithm)                 *)
(* ------------------------------------------------------------------ *)

(* Precomputed tables for a prime basis:
   [pmod.(i).(j)] = p_j mod p_i (j < i), and
   [inv.(i)] = (p_0 * ... * p_(i-1))^(-1) mod p_i. *)
let garner_tables primes =
  let np = Array.length primes in
  let pmod = Array.make np [||] in
  let inv = Array.make np 0 in
  for i = 0 to np - 1 do
    let p = primes.(i) in
    let row = Array.make i 0 in
    let prod = ref 1 in
    for j = 0 to i - 1 do
      let pj = primes.(j) mod p in
      row.(j) <- pj;
      prod := mulmod p !prod pj
    done;
    pmod.(i) <- row;
    inv.(i) <- (if i = 0 then 1 else invmod p !prod)
  done;
  (pmod, inv)

(* Mixed-radix digits of the unique [v] in [0, P) with
   [v = residues.(i) mod p_i]:
   [v = d_0 + d_1*p_0 + d_2*p_0*p_1 + ...]. O(np^2) per entry.
   [start] lets the fault path re-chain the upper digits from an
   already-corrupted digit 0. *)
let garner_digits ?(start = 0) primes pmod inv residues d =
  let np = Array.length primes in
  for i = start to np - 1 do
    let p = primes.(i) in
    let row = pmod.(i) in
    (* Horner fold of the digits found so far, mod p_i. *)
    let t = ref 0 in
    for j = i - 1 downto 0 do
      t := ((!t * row.(j)) + d.(j)) mod p
    done;
    let x = residues.(i) - !t in
    let x = if x < 0 then x + p else x in
    d.(i) <- mulmod p x inv.(i)
  done

(* ------------------------------------------------------------------ *)
(* Public entry point                                                  *)
(* ------------------------------------------------------------------ *)

let ceil_log2 n =
  let rec go sz e = if sz >= n then e else go (sz * 2) (e + 1) in
  go 1 0

let max_bits arr =
  Array.fold_left (fun m x -> Stdlib.max m (Bigint.bit_length x)) 0 arr

let convolve a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then None
  else
    let n = la + lb - 1 in
    if n < 2 then None
    else
      let ba = max_bits a and bb = max_bits b in
      if ba = 0 || bb = 0 then Some (Array.make n Bigint.zero)
      else begin
        let bound = ba + bb + ceil_log2 (Stdlib.min la lb) in
        (* Under [`Prime_drop] the basis must have at least two primes:
           with a single prime, zeroing digit 0 silently zeroes the
           whole table instead of corrupting it. *)
        let min_bits =
          match !fault with `Prime_drop -> Stdlib.max bound 32 | `None -> bound
        in
        let order = ceil_log2 n in
        let m = 1 lsl order in
        match primes_for ~order ~min_bits with
        | None -> None
        | Some basis ->
          let np = Array.length basis in
          let primes = Array.map fst basis in
          (* Residue images of every entry, per prime. *)
          let images =
            Array.map
              (fun (p, root) ->
                let residue x =
                  let r = Bigint.rem_int x p in
                  if r < 0 then r + p else r
                in
                let ra = Array.map residue a and rb = Array.map residue b in
                convolve_mod p root order ra rb m)
              basis
          in
          let pmod, inv = garner_tables primes in
          (* P and P/2 for the balanced lift; P is odd, so
             [half = (P-1)/2] and residues beyond it are negative. *)
          let prod =
            Array.fold_left
              (fun acc p -> Bigint.mul_int acc p)
              Bigint.one primes
          in
          let half = Bigint.div prod Bigint.two in
          let residues = Array.make np 0 in
          let d = Array.make np 0 in
          let drop = match !fault with `Prime_drop -> true | `None -> false in
          let out =
            Array.init n (fun k ->
              for i = 0 to np - 1 do
                residues.(i) <- images.(i).(k)
              done;
              if drop then begin
                (* Digit 0 is "lost" (zeroed); the remaining digits are
                   chained from the corrupted value, exactly as a real
                   dropped residue buffer would propagate. *)
                d.(0) <- 0;
                garner_digits ~start:1 primes pmod inv residues d
              end
              else garner_digits primes pmod inv residues d;
              (* Assemble [d_0 + p_0*(d_1 + p_1*(...))] by Horner; the
                 multiplier is always a 31-bit prime, so every step
                 takes the dedicated small-scalar path. *)
              let acc = ref (Bigint.of_int d.(np - 1)) in
              for i = np - 2 downto 0 do
                acc := Bigint.add_int (Bigint.mul_int !acc primes.(i)) d.(i)
              done;
              let v = !acc in
              if Bigint.compare v half > 0 then Bigint.sub v prod else v)
          in
          Some out
      end
