type t = { num : Bigint.t; den : Bigint.t }
(* Invariants: [den > 0]; [gcd num den = 1]; zero is [0/1].

   Components are tagged {!Bigint.t} values, so a rational whose
   reduced parts fit in native ints (the common case for Shapley
   weights early in a DP) costs two immediate words and its gcds run on
   the word-sized Stein path; nothing here needs to know which
   representation is live. *)

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den = if Bigint.is_negative den then (Bigint.neg num, Bigint.neg den) else (num, den) in
    if Bigint.is_one den then { num; den }
    else
      let g = Bigint.gcd num den in
      if Bigint.is_one g then { num; den }
      else { num = Bigint.div num g; den = Bigint.div den g }
  end

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)

let zero = of_int 0
let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)
let half = of_ints 1 2

let num t = t.num
let den t = t.den

let sign t = Bigint.sign t.num
let is_zero t = Bigint.is_zero t.num
let is_integer t = Bigint.is_one t.den

let neg t = { t with num = Bigint.neg t.num }
let abs t = { t with num = Bigint.abs t.num }

let inv t =
  if is_zero t then raise Division_by_zero
  else if Bigint.is_negative t.num then { num = Bigint.neg t.den; den = Bigint.neg t.num }
  else { num = t.den; den = t.num }

(* [add] and [mul] rely on the operands being reduced — every
   constructor guarantees it — which licenses the classic cross-gcd
   forms (Knuth 4.5.1, the mpq algorithms): the gcds run on the original
   components instead of on their (much larger) products, and in the
   coprime case no reduction is needed at all. *)
let add a b =
  if Bigint.is_zero a.num then b
  else if Bigint.is_zero b.num then a
  else if Bigint.is_one a.den && Bigint.is_one b.den then
    { num = Bigint.add a.num b.num; den = Bigint.one }
  else begin
    let d1 = Bigint.gcd a.den b.den in
    if Bigint.is_one d1 then
      (* Coprime denominators: the textbook sum is already reduced. *)
      { num = Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den);
        den = Bigint.mul a.den b.den }
    else begin
      let ad = Bigint.div a.den d1 and bd = Bigint.div b.den d1 in
      let t = Bigint.add (Bigint.mul a.num bd) (Bigint.mul b.num ad) in
      if Bigint.is_zero t then { num = Bigint.zero; den = Bigint.one }
      else begin
        let d2 = Bigint.gcd t d1 in
        if Bigint.is_one d2 then
          { num = t; den = Bigint.mul (Bigint.mul ad bd) d1 }
        else
          { num = Bigint.div t d2;
            den = Bigint.mul (Bigint.mul ad bd) (Bigint.div d1 d2) }
      end
    end
  end

let sub a b = add a (neg b)

let mul a b =
  if Bigint.is_zero a.num || Bigint.is_zero b.num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let g1 = Bigint.gcd a.num b.den in
    let g2 = Bigint.gcd b.num a.den in
    let num =
      Bigint.mul
        (if Bigint.is_one g1 then a.num else Bigint.div a.num g1)
        (if Bigint.is_one g2 then b.num else Bigint.div b.num g2)
    in
    let den =
      Bigint.mul
        (if Bigint.is_one g2 then a.den else Bigint.div a.den g2)
        (if Bigint.is_one g1 then b.den else Bigint.div b.den g1)
    in
    { num; den }
  end

let div a b = mul a (inv b)

let mul_int a n =
  if n = 0 || Bigint.is_zero a.num then { num = Bigint.zero; den = Bigint.one }
  else if Bigint.is_one a.den then { num = Bigint.mul_int a.num n; den = a.den }
  else begin
    let g = Bigint.gcd (Bigint.of_int n) a.den in
    if Bigint.is_one g then { num = Bigint.mul_int a.num n; den = a.den }
    else
      { num = Bigint.mul a.num (Bigint.div (Bigint.of_int n) g);
        den = Bigint.div a.den g }
  end

let div_int a n =
  if n = 0 then raise Division_by_zero
  else if Bigint.is_zero a.num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let nb = Bigint.of_int n in
    let g = Bigint.gcd a.num nb in
    let num = if Bigint.is_one g then a.num else Bigint.div a.num g in
    let nb = if Bigint.is_one g then nb else Bigint.div nb g in
    let num, nb =
      if Bigint.is_negative nb then (Bigint.neg num, Bigint.neg nb) else (num, nb)
    in
    { num; den = Bigint.mul a.den nb }
  end

let pow x e =
  if e >= 0 then { num = Bigint.pow x.num e; den = Bigint.pow x.den e }
  else inv { num = Bigint.pow x.num (-e); den = Bigint.pow x.den (-e) }

let sum = List.fold_left add zero

let compare a b =
  if Bigint.equal a.den b.den then Bigint.compare a.num b.num
  else Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)
let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let hash t = (Bigint.hash t.num * 65599 + Bigint.hash t.den) land max_int
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor t =
  let q, r = Bigint.divmod t.num t.den in
  if Bigint.is_negative r then Bigint.pred q else q

let ceil t = Bigint.neg (floor (neg t))

let to_float t = Bigint.to_float t.num /. Bigint.to_float t.den

let to_string t =
  if is_integer t then Bigint.to_string t.num
  else Bigint.to_string t.num ^ "/" ^ Bigint.to_string t.den

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (Bigint.of_string s)
  | Some i ->
    let p = String.sub s 0 i in
    let q = String.sub s (i + 1) (String.length s - i - 1) in
    make (Bigint.of_string p) (Bigint.of_string q)

let pp fmt t = Format.pp_print_string fmt (to_string t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
  let ( > ) a b = compare a b > 0
  let ( >= ) a b = compare a b >= 0
end
