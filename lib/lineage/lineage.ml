(* The knowledge-compilation tier: exact Shapley beyond the frontier.

   Pipeline (DESIGN.md §10):

   1. Extraction. Enumerate the homomorphisms of the full database once
      through the plan-compiled evaluator ({!Aggshap_cq.Eval}); each
      answer tuple collects one minterm per homomorphism — the AND of
      its endogenous witness facts (exogenous facts are always present;
      an all-exogenous witness makes the lineage [true]). The OR of the
      minterms is the answer's Boolean lineage, and τ-localization
      pins one τ-value per answer (checked, like [Agg_query]).

   2. Decomposition. Shapley is linear in the utility, so any aggregate
      expressible as a linear combination Σ c_j·1[φ_j] of Boolean-event
      indicators reduces to Boolean-game Shapley values:

        Sum            Σ_ans τ(ans)·1[lin_ans]
        Count          Σ_ans 1[lin_ans]
        Count-distinct Σ_v 1[∨_{τ(ans)=v} lin_ans]
        Max            v_1·1[E_1] + Σ_{j≥2} (v_j − v_{j−1})·1[E_j],
                         E_j = ∨_{τ(ans) ≥ v_j} lin_ans (v_1 < … < v_m)
        Min            v_m·1[F_m] + Σ_{j<m} (v_j − v_{j+1})·1[F_j],
                         F_j = ∨_{τ(ans) ≤ v_j} lin_ans
        Has-dup        1[∨_{τ(a)=τ(b), a≠b} (lin_a ∧ lin_b)]

      The telescoping Max/Min forms agree with [Aggregate.apply] on the
      empty bag (value 0) and on negative τ-values. Avg / Median /
      Quantile are not linear in any event basis — {!supports} says so
      and the solver falls through to naive enumeration for them. The
      constant shift −α(exogenous part) of the utility has Shapley
      value zero and is never encoded.

   3. Counting. Each distinct event formula (coefficients of shared
      formulas are merged first) compiles to a d-DNNF once; the value
      of fact p in event φ is the weighted-model-counting sum of
      {!Ddnnf.shapley_diff} — facts outside vars(φ) are null players of
      the event and cost nothing. *)

module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Eval = Aggshap_cq.Eval
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Value = Aggshap_relational.Value
module Aggregate = Aggshap_agg.Aggregate
module Agg_query = Aggshap_agg.Agg_query
module Value_fn = Aggshap_agg.Value_fn

let supports = function
  | Aggregate.Sum | Aggregate.Count | Aggregate.Count_distinct | Aggregate.Min
  | Aggregate.Max | Aggregate.Has_duplicates -> true
  | Aggregate.Avg | Aggregate.Median | Aggregate.Quantile _ -> false

module TupleMap = Map.Make (struct
  type t = Value.t array

  let compare a b =
    let la = Array.length a and lb = Array.length b in
    if la <> lb then Stdlib.compare la lb
    else begin
      let rec go i =
        if i >= la then 0
        else
          let c = Value.compare a.(i) b.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
    end
end)

module QMap = Map.Make (struct
  type t = Q.t

  let compare = Q.compare
end)

module FactTbl = Hashtbl.Make (Fact)

type extraction = {
  players : Fact.t array;  (* endogenous facts, Database.endogenous order *)
  answers : (Q.t * Formula.t) list;  (* per answer: τ-value, lineage *)
  store : Formula.store;
}

let extract (a : Agg_query.t) db =
  let players = Array.of_list (Database.endogenous db) in
  let index = FactTbl.create (Array.length players) in
  Array.iteri (fun i f -> FactTbl.replace index f i) players;
  let store = Formula.create_store () in
  let r_atom =
    match Cq.find_atom a.query a.tau.Value_fn.rel with
    | Some atom -> atom
    | None -> invalid_arg "Lineage.extract: localization atom missing"
  in
  let per_answer = ref TupleMap.empty in
  Eval.visit_homomorphisms a.query db (fun sigma ->
      let answer = Eval.apply_head a.query sigma in
      let r_fact = Eval.atom_image r_atom sigma in
      let v = Value_fn.apply a.tau r_fact.Fact.args in
      let witness =
        List.filter_map
          (fun atom -> FactTbl.find_opt index (Eval.atom_image atom sigma))
          a.query.Cq.body
        |> List.sort_uniq compare
      in
      let minterm = Formula.and_ store (List.map (Formula.var store) witness) in
      per_answer :=
        TupleMap.update answer
          (function
            | None -> Some (v, ref [ minterm ])
            | Some (v', minterms) ->
              if Q.equal v v' then begin
                minterms := minterm :: !minterms;
                Some (v', minterms)
              end
              else
                invalid_arg
                  "Lineage: value function is not localized on this database \
                   (one answer, two τ-values)")
          !per_answer;
      true);
  let answers =
    List.map
      (fun (_, (v, minterms)) -> (v, Formula.or_ store !minterms))
      (TupleMap.bindings !per_answer)
  in
  { players; answers; store }

(* Group the answer lineages by τ-value, ascending. *)
let by_value answers =
  QMap.bindings
    (List.fold_left
       (fun m (v, lin) ->
         QMap.update v
           (function None -> Some [ lin ] | Some l -> Some (lin :: l))
           m)
       QMap.empty answers)

let events alpha store answers =
  match alpha with
  | Aggregate.Sum -> List.map (fun (v, lin) -> (v, lin)) answers
  | Aggregate.Count -> List.map (fun (_, lin) -> (Q.one, lin)) answers
  | Aggregate.Count_distinct ->
    List.map (fun (_, lins) -> (Q.one, Formula.or_ store lins)) (by_value answers)
  | Aggregate.Max ->
    (* Suffix ORs: E_j (answers valued ≥ v_j) shrink as j grows; the
       telescoped weights v_1·[E_1] + Σ_{j≥2} (v_j − v_{j−1})·[E_j]
       reconstruct the maximum present value and vanish on the empty
       bag. E_j's coefficient needs the next lower value, so each
       event is patched when its successor arrives. *)
    let groups = List.rev (by_value answers) in  (* descending *)
    let _, _, evs =
      List.fold_left
        (fun (suffix, higher, evs) (v, lins) ->
          let e = Formula.or_ store (suffix @ lins) in
          let evs =
            match (higher, evs) with
            | Some v', (_, e') :: rest -> (Q.sub v' v, e') :: rest
            | _ -> evs
          in
          ([ e ], Some v, (v, e) :: evs))
        ([], None, []) groups
    in
    evs
  | Aggregate.Min ->
    let groups = by_value answers in  (* ascending *)
    let _, _, evs =
      List.fold_left
        (fun (prefix, lower, evs) (v, lins) ->
          let f = Formula.or_ store (prefix @ lins) in
          let evs =
            (* coefficient of F_{j−1} is v_{j−1} − v_j, known once v_j
               arrives; F_m keeps weight v_m. *)
            match (lower, evs) with
            | Some v', (_, f') :: rest -> (Q.sub v' v, f') :: rest
            | _ -> evs
          in
          ([ f ], Some v, (v, f) :: evs))
        ([], None, []) groups
    in
    List.rev evs
  | Aggregate.Has_duplicates ->
    let pairs =
      List.concat_map
        (fun (_, lins) ->
          let rec go = function
            | [] | [ _ ] -> []
            | a :: rest ->
              List.map (fun b -> Formula.and_ store [ a; b ]) rest @ go rest
          in
          go lins)
        (by_value answers)
    in
    [ (Q.one, Formula.or_ store pairs) ]
  | Aggregate.Avg | Aggregate.Median | Aggregate.Quantile _ ->
    invalid_arg
      (Printf.sprintf
         "Lineage: %s is not a linear combination of Boolean events \
          (use the naive fallback)"
         (Aggregate.to_string alpha))

(* Merge events sharing a formula (Max/Min suffix chains reuse them)
   and drop the trivial ones: constants are constant shifts (Shapley
   zero) and zero coefficients contribute nothing. *)
let merge_events evs =
  let order = ref [] in
  let coeffs = Hashtbl.create 16 in
  List.iter
    (fun (c, fml) ->
      let fid = Formula.id fml in
      match Hashtbl.find_opt coeffs fid with
      | Some (c', _) -> Hashtbl.replace coeffs fid (Q.add c c', fml)
      | None ->
        Hashtbl.add coeffs fid (c, fml);
        order := fid :: !order)
    evs;
  List.rev !order
  |> List.filter_map (fun fid ->
         let c, fml = Hashtbl.find coeffs fid in
         if Q.is_zero c || Formula.is_true fml || Formula.is_false fml then None
         else Some (c, fml))

let check_supported alpha =
  if not (supports alpha) then
    invalid_arg
      (Printf.sprintf "Lineage: %s is outside the knowledge-compilation tier"
         (Aggregate.to_string alpha))

(* Shared solve core: compile each merged event once, then fill the
   requested player columns. [budget] caps the total d-DNNF node count
   across all events; Ddnnf.Budget_exceeded escapes to the caller. *)
let solve ?(cache = true) ?budget (a : Agg_query.t) db select =
  check_supported a.Agg_query.alpha;
  let ext = extract a db in
  let n = Array.length ext.players in
  let acc = Array.make (max n 1) Q.zero in
  if n > 0 then begin
    let evs = merge_events (events a.Agg_query.alpha ext.store ext.answers) in
    let mgr = Ddnnf.create ~cache ?budget ext.store in
    List.iter
      (fun (c, fml) ->
        let circuit = Ddnnf.compile mgr fml in
        Formula.ISet.iter
          (fun p ->
            if select p then
              acc.(p) <- Q.add acc.(p) (Q.mul c (Ddnnf.shapley_diff mgr ~n circuit p)))
          (Ddnnf.node_vars circuit))
      evs
  end;
  (ext.players, acc)

let shapley_all ?cache ?budget (a : Agg_query.t) db =
  let players, acc = solve ?cache ?budget a db (fun _ -> true) in
  Array.to_list (Array.mapi (fun i f -> (f, acc.(i))) players)

let shapley ?cache ?budget (a : Agg_query.t) db f =
  match Database.provenance db f with
  | Some Database.Endogenous ->
    let target =
      let rec idx i = function
        | [] -> assert false  (* endogenous ⇒ present *)
        | g :: rest -> if Fact.equal g f then i else idx (i + 1) rest
      in
      idx 0 (Database.endogenous db)
    in
    let _, acc = solve ?cache ?budget a db (fun p -> p = target) in
    acc.(target)
  | _ -> invalid_arg ("Lineage.shapley: fact is not endogenous: " ^ Fact.to_string f)
