(** Hash-consed monotone Boolean formulas over integer variables.

    The lineage of an aggregate-query answer is a positive DNF over the
    endogenous facts — one minterm per homomorphism — and every event
    produced by the aggregate decomposition ({!Lineage}) is an OR/AND
    combination of such lineages, so negation never appears. A {!store}
    interns every formula: structurally equal terms are physically
    equal and share one {!id}, which is what makes the d-DNNF
    compiler's formula-keyed cache sound ({!Ddnnf}). *)

module ISet : Set.S with type elt = int

type t

type node =
  | True
  | False
  | Var of int
  | And of t list
  | Or of t list

type store
(** The hash-consing arena plus the conditioning memo. Not domain-safe;
    every formula must be used with the store that created it. *)

val create_store : unit -> store

val tru : store -> t
val fls : store -> t

val var : store -> int -> t
(** @raise Invalid_argument on a negative variable index. *)

val and_ : store -> t list -> t
(** Conjunction: flattens, drops [true], annihilates on [false], sorts
    and deduplicates children. [and_ s [] = tru s]. *)

val or_ : store -> t list -> t
(** Disjunction: flattens, drops [false], annihilates on [true], sorts,
    deduplicates, and drops subsumed minterms. [or_ s [] = fls s]. *)

val cond : store -> t -> int -> bool -> t
(** [cond s f v b] is the cofactor φ|v=b, memoized in the store. *)

val id : t -> int
(** Unique within the formula's store; equal terms share it. *)

val vars : t -> int list
(** Ascending. *)

val var_set : t -> ISet.t
val is_true : t -> bool
val is_false : t -> bool
val view : t -> node

val pick_var : t -> int option
(** The Shannon branch variable: most occurrences in the formula DAG
    (shared subterms counted once), ties to the smallest index — so
    compilation is deterministic. [None] iff the formula is constant. *)

val eval : t -> (int -> bool) -> bool
(** Evaluate under an assignment (memoized over the DAG). *)

val to_string : t -> string

val store_size : store -> int
(** Number of distinct formulas interned so far. *)
