(** The knowledge-compilation tier: exact Shapley values beyond the
    tractability frontier, via Boolean lineage → d-DNNF → weighted
    model counting (DESIGN.md §10; Deutch et al. 2022, Bienvenu et al.
    2024 in PAPERS.md).

    One extraction pass over the plan-compiled evaluator collects each
    answer's lineage (a positive DNF over the endogenous facts); the
    aggregate is decomposed into a linear combination of Boolean-event
    indicators (sound for Sum, Count, Count-distinct, Min, Max and
    Has-duplicates — see {!supports}); each event compiles once by
    Shannon expansion ({!Ddnnf}) and every fact's exact Shapley value
    is a weighted-model-counting sum. Exponential only in the treewidth
    of the lineage, not in the number of facts — and exact-rational
    identical to naive enumeration wherever both run. *)

type extraction = {
  players : Aggshap_relational.Fact.t array;
      (** endogenous facts, [Database.endogenous] order *)
  answers : (Aggshap_arith.Rational.t * Formula.t) list;
      (** per answer tuple: τ-value and Boolean lineage *)
  store : Formula.store;
}

val supports : Aggshap_agg.Aggregate.t -> bool
(** Whether the aggregate is a linear combination of Boolean-event
    indicators. [false] for Avg / Median / Quantile — a ratio (or an
    order statistic of a variable-size bag) is not linear in any event
    basis, so the solver falls through to naive enumeration there. *)

val extract :
  Aggshap_agg.Agg_query.t -> Aggshap_relational.Database.t -> extraction
(** Boolean provenance of every answer, through whichever evaluator
    {!Aggshap_cq.Plan.enabled} selects.
    @raise Invalid_argument if τ is not localized on the database. *)

val events :
  Aggshap_agg.Aggregate.t ->
  Formula.store ->
  (Aggshap_arith.Rational.t * Formula.t) list ->
  (Aggshap_arith.Rational.t * Formula.t) list
(** The linear decomposition α(bag of present answers) =
    Σ c_j·1\[φ_j\], as (c_j, φ_j) pairs over the extraction's answers.
    @raise Invalid_argument on an unsupported aggregate. *)

val shapley_all :
  ?cache:bool ->
  ?budget:int ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  (Aggshap_relational.Fact.t * Aggshap_arith.Rational.t) list
(** Exact Shapley values of all endogenous facts, in
    [Database.endogenous] order. [cache] (default [true]) toggles the
    compiler's formula-keyed cache — results are identical either way
    (a qcheck invariant). [budget] caps the total d-DNNF node count
    across all compiled events.
    @raise Ddnnf.Budget_exceeded when the budget would be exceeded.
    @raise Invalid_argument on an unsupported aggregate or a
    non-localized τ. *)

val shapley :
  ?cache:bool ->
  ?budget:int ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** Single-fact variant: only the requested fact's counting passes run
    (compilation is shared work regardless).
    @raise Ddnnf.Budget_exceeded when [budget] would be exceeded.
    @raise Invalid_argument if the fact is not endogenous. *)
