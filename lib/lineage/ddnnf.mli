(** d-DNNF circuits by Shannon expansion, and exact weighted model
    counting over them.

    A circuit is a DAG of decision nodes ⟨v, hi, lo⟩ ≡ (v ∧ hi) ∨ (¬v ∧
    lo): deterministic (the disjuncts disagree on v) and decomposable
    (v occurs in neither child — enforced at construction), hence a
    d-DNNF on which per-size model counts are one bottom-up pass. Nodes
    are hash-consed per {!manager}; compilation is memoized per formula
    id — the formula-keyed cache made sound by {!Formula}'s interning.
    See DESIGN.md §10. *)

type node =
  | True
  | False
  | Decision of {
      id : int;
      var : int;
      hi : node;
      lo : node;
      vars : Formula.ISet.t;
    }

type fault =
  [ `None
  | `Cache_poison
  | `Budget_leak ]

val fault : fault ref
(** [`Cache_poison] makes the formula-keyed cache store (and answer
    with) a child-swapped decision node — a semantically wrong circuit
    the differential oracle must catch. Kept in sync with
    {!Aggshap_core.Tables.set_fault} ([`Ddnnf_cache_poison]). With the
    cache disabled there is nothing to poison. [`Budget_leak] breaks
    the node-budget abort path: past a small node count the compiler
    silently truncates sub-formulas to [False] instead of raising
    {!Budget_exceeded} — under-counted models the differential oracle
    must catch ([`Kc_budget_leak] on the {!Aggshap_core.Tables} side).
    Not domain-safe. *)

exception Budget_exceeded
(** Raised (without a backtrace) by {!compile} when the manager's node
    budget would be exceeded by the next allocation. The caller is
    expected to abandon the manager and fall back to the solve
    planner's next tier — the knowledge-compilation analogue of the
    [Int_overflow] abort-and-retry in [Tables.convolve]. *)

type manager
(** Unique node table + formula-keyed compile cache + counting memo.
    Not domain-safe; formulas must come from the store it was created
    over. *)

val create : ?cache:bool -> ?budget:int -> Formula.store -> manager
(** [cache] (default [true]) enables the formula-keyed compile cache;
    disabling it re-expands shared sub-formulas (exponentially slower,
    semantically identical — a qcheck invariant). [budget] caps the
    number of decision nodes the manager may ever allocate; exceeding
    it raises {!Budget_exceeded} and bumps the [budget_aborts]
    counter. *)

val compile : manager -> Formula.t -> node

val condition : manager -> node -> int -> bool -> node
(** [condition mgr c v b]: the circuit with every decision on [v]
    replaced by its [b]-child; [v] no longer occurs. O(|circuit|). *)

val model_counts :
  manager -> n:int -> node -> Aggshap_arith.Bigint.t array
(** [model_counts mgr ~n c] is [|c_0; …; c_n|] with [c_k] = number of
    size-[k] subsets of an [n]-variable ground set satisfying [c]
    (variables outside the circuit are free — smoothing by binomial
    lift). *)

val shapley_diff :
  manager -> n:int -> node -> int -> Aggshap_arith.Rational.t
(** [shapley_diff mgr ~n c p] = Σ_k k!(n−k−1)!/n! · (C1_k − C0_k), the
    exact Shapley value of player [p] in the Boolean game 1\[c\] over
    [n] players; [0] immediately when [p] is outside the circuit (null
    player). *)

val node_id : node -> int
(** Unique within the manager; [-1]/[-2] for the constants. *)

val node_vars : node -> Formula.ISet.t
val size : node -> int
val node_count : manager -> int

(** {1 Instrumentation} *)

type stats = {
  nodes : int;  (** decision nodes created (after hash-consing) *)
  cache_hits : int;  (** formula-keyed cache hits *)
  cache_misses : int;  (** sub-formulas actually expanded *)
  compiles : int;  (** circuits compiled *)
  wmc_passes : int;  (** conditioned counting passes *)
  budget_aborts : int;  (** compilations aborted at the node budget *)
  compile_s : float;  (** time spent compiling *)
  wmc_s : float;  (** time spent counting *)
}

val stats : unit -> stats
val reset_stats : unit -> unit
