(* d-DNNF circuits by Shannon expansion, and exact weighted model
   counting over them.

   The compiler turns a monotone formula into a decision DAG: node
   ⟨v, hi, lo⟩ denotes (v ∧ hi) ∨ (¬v ∧ lo). Read as a d-DNNF, the OR
   is deterministic (the two disjuncts disagree on v) and the ANDs are
   decomposable (v occurs in neither child — asserted at construction),
   so per-size model counts follow by one bottom-up pass. Nodes are
   hash-consed in a per-manager unique table; compilation results are
   memoized per formula id (the formula-keyed cache — sound because
   {!Formula} interns structurally equal terms to one id).

   Counting works in the "size polynomial" view: a circuit over
   variable set V is mapped to Σ_k c_k x^k with c_k = number of models
   of size k over V. At a decision node the recurrence is

     P(node) = x · P(hi) · (1+x)^gap_hi + P(lo) · (1+x)^gap_lo

   where gap_child = |V| − 1 − |vars(child)| smooths the variables the
   child never mentions (each is free: a factor (1+x)). All arithmetic
   is exact over {!Aggshap_arith.Bigint}. *)

module B = Aggshap_arith.Bigint
module Combinat = Aggshap_arith.Combinat
module Q = Aggshap_arith.Rational
module ISet = Formula.ISet

type node =
  | True
  | False
  | Decision of { id : int; var : int; hi : node; lo : node; vars : ISet.t }

type fault =
  [ `None
  | `Cache_poison
  | `Budget_leak ]

let fault : fault ref = ref `None

exception Budget_exceeded

(* {1 Instrumentation} *)

let c_nodes = Atomic.make 0
let c_cache_hits = Atomic.make 0
let c_cache_misses = Atomic.make 0
let c_compiles = Atomic.make 0
let c_wmc_passes = Atomic.make 0
let c_budget_aborts = Atomic.make 0

(* Wall-time split between compilation and counting; plain refs (the
   knowledge-compilation tier runs in the calling domain). *)
let t_compile = ref 0.0
let t_wmc = ref 0.0

type stats = {
  nodes : int;  (* decision nodes created (after hash-consing) *)
  cache_hits : int;  (* formula-keyed cache hits *)
  cache_misses : int;  (* sub-formulas actually expanded *)
  compiles : int;  (* circuits compiled *)
  wmc_passes : int;  (* per-fact conditioned counting passes *)
  budget_aborts : int;  (* compilations aborted at the node budget *)
  compile_s : float;  (* time spent compiling *)
  wmc_s : float;  (* time spent counting *)
}

let stats () =
  { nodes = Atomic.get c_nodes;
    cache_hits = Atomic.get c_cache_hits;
    cache_misses = Atomic.get c_cache_misses;
    compiles = Atomic.get c_compiles;
    wmc_passes = Atomic.get c_wmc_passes;
    budget_aborts = Atomic.get c_budget_aborts;
    compile_s = !t_compile;
    wmc_s = !t_wmc }

let reset_stats () =
  Atomic.set c_nodes 0;
  Atomic.set c_cache_hits 0;
  Atomic.set c_cache_misses 0;
  Atomic.set c_compiles 0;
  Atomic.set c_wmc_passes 0;
  Atomic.set c_budget_aborts 0;
  t_compile := 0.0;
  t_wmc := 0.0

let timed cell f =
  let t0 = Sys.time () in
  Fun.protect ~finally:(fun () -> cell := !cell +. (Sys.time () -. t0)) f

type manager = {
  store : Formula.store;
  use_cache : bool;
  budget : int option;  (* max decision nodes before Budget_exceeded *)
  unique : (int * int * int, node) Hashtbl.t;  (* (var, hi, lo) -> node *)
  compile_cache : (int, node) Hashtbl.t;  (* formula id -> circuit *)
  count_memo : (int, B.t array) Hashtbl.t;  (* node id -> size polynomial *)
  mutable next_id : int;
}

let create ?(cache = true) ?budget store =
  { store; use_cache = cache; budget; unique = Hashtbl.create 256;
    compile_cache = Hashtbl.create 256; count_memo = Hashtbl.create 256;
    next_id = 0 }

let node_id = function True -> -1 | False -> -2 | Decision d -> d.id
let node_vars = function True | False -> ISet.empty | Decision d -> d.vars
let size = function True | False -> 0 | Decision d -> ISet.cardinal d.vars

(* Decision-node constructor: collapses trivial decisions and enforces
   decomposability (the branch variable below its own decision would
   make the implicit ANDs overlap). Determinism needs no check — the
   v / ¬v guards are disjoint by construction. *)
let mk mgr var hi lo =
  if node_id hi = node_id lo then hi
  else begin
    if ISet.mem var (node_vars hi) || ISet.mem var (node_vars lo) then
      invalid_arg "Ddnnf.mk: decision variable reappears below its node";
    let key = (var, node_id hi, node_id lo) in
    match Hashtbl.find_opt mgr.unique key with
    | Some n -> n
    | None ->
      (* The node budget caps the circuit before the next allocation,
         mirroring the Int_overflow abort-and-retry in Tables.convolve:
         the caller catches Budget_exceeded and falls back to the
         planner's next tier. Under [`Budget_leak] the guard is
         silently skipped (see {!expand}). *)
      (match mgr.budget with
      | Some b when mgr.next_id >= b && !fault <> `Budget_leak ->
        Atomic.incr c_budget_aborts;
        raise_notrace Budget_exceeded
      | _ -> ());
      let vars = ISet.add var (ISet.union (node_vars hi) (node_vars lo)) in
      let n = Decision { id = mgr.next_id; var; hi; lo; vars } in
      mgr.next_id <- mgr.next_id + 1;
      Atomic.incr c_nodes;
      Hashtbl.add mgr.unique key n;
      n
  end

(* Shannon expansion with the formula-keyed cache. Under the
   [`Cache_poison] fault the entry stored (and returned) for a
   non-trivial decision swaps its children — the cache now answers with
   a semantically wrong circuit, exactly the corruption the
   differential oracle must catch. With the cache disabled the fault
   has nothing to poison and compilation stays correct.

   Under [`Budget_leak] the node-budget abort path is broken the
   quietest way possible: instead of raising {!Budget_exceeded} the
   compiler hands back the partial circuit it had built, truncating
   every sub-formula reached after a small node count to [False]. The
   result under-counts models, so the values drift low — wrong answers
   the kc-vs-naive differential check must catch and shrink. *)
let rec expand mgr f =
  if Formula.is_true f then True
  else if Formula.is_false f then False
  else if !fault = `Budget_leak && mgr.next_id > 4 then False
  else begin
    let fid = Formula.id f in
    match
      if mgr.use_cache then Hashtbl.find_opt mgr.compile_cache fid else None
    with
    | Some n ->
      Atomic.incr c_cache_hits;
      n
    | None ->
      Atomic.incr c_cache_misses;
      let v =
        match Formula.pick_var f with
        | Some v -> v
        | None -> invalid_arg "Ddnnf.compile: non-constant formula without variables"
      in
      let hi = expand mgr (Formula.cond mgr.store f v true) in
      let lo = expand mgr (Formula.cond mgr.store f v false) in
      let n = mk mgr v hi lo in
      if mgr.use_cache then begin
        let stored =
          match (!fault, n) with
          | `Cache_poison, Decision d -> mk mgr d.var d.lo d.hi
          | _ -> n
        in
        Hashtbl.add mgr.compile_cache fid stored;
        stored
      end
      else n
  end

let compile mgr f =
  Atomic.incr c_compiles;
  timed t_compile (fun () -> expand mgr f)

(* {1 Weighted model counting} *)

(* Exact polynomial product (coefficients are model counts, degrees are
   subset sizes; lengths stay ≤ n+1). *)
let poly_mul a b =
  let la = Array.length a and lb = Array.length b in
  let res = Array.make (la + lb - 1) B.zero in
  for i = 0 to la - 1 do
    if not (B.is_zero a.(i)) then
      for j = 0 to lb - 1 do
        res.(i + j) <- B.add res.(i + j) (B.mul a.(i) b.(j))
      done
  done;
  res

(* Smoothing: each variable of the ground set the sub-circuit never
   mentions is free — a factor (1+x), i.e. one binomial row. *)
let lift p gap =
  if gap = 0 then p
  else if gap < 0 then invalid_arg "Ddnnf.lift: negative smoothing gap"
  else poly_mul p (Combinat.binomial_row gap)

let rec polynomial mgr node =
  match node with
  | True -> [| B.one |]
  | False -> [| B.zero |]
  | Decision d -> (
    match Hashtbl.find_opt mgr.count_memo d.id with
    | Some p -> p
    | None ->
      let sv = ISet.cardinal d.vars in
      let p_hi = lift (polynomial mgr d.hi) (sv - 1 - size d.hi) in
      let p_lo = lift (polynomial mgr d.lo) (sv - 1 - size d.lo) in
      let res = Array.make (sv + 1) B.zero in
      Array.iteri (fun i c -> res.(i + 1) <- c) p_hi;
      Array.iteri (fun i c -> res.(i) <- B.add res.(i) c) p_lo;
      Hashtbl.add mgr.count_memo d.id res;
      res)

(* [model_counts mgr ~n node] is [|c_0; ...; c_n|]: c_k = number of
   size-k subsets of the n-variable ground set satisfying the circuit
   (variables outside vars(node) free). *)
let model_counts mgr ~n node =
  let gap = n - ISet.cardinal (node_vars node) in
  match node with
  | False -> Array.make (n + 1) B.zero
  | _ -> lift (polynomial mgr node) gap

(* Conditioning on one variable: O(|circuit|) rebuild replacing every
   decision on v by the chosen child (memoized per traversal; the
   result shares the manager's unique table, so its polynomials land in
   the shared counting memo). *)
let condition mgr node v b =
  let memo = Hashtbl.create 64 in
  let rec go node =
    match node with
    | True | False -> node
    | Decision d ->
      if not (ISet.mem v d.vars) then node
      else if d.var = v then (if b then d.hi else d.lo)
      else begin
        match Hashtbl.find_opt memo d.id with
        | Some m -> m
        | None ->
          let m = mk mgr d.var (go d.hi) (go d.lo) in
          Hashtbl.add memo d.id m;
          m
      end
  in
  go node

(* The Boolean-event Shapley difference for player p over a ground set
   of n players:

     φ_p = Σ_{k=0}^{n-1} w_k (C1_k − C0_k) / n!

   with w_k = k!(n−k−1)! ({!Combinat.shapley_weights}) and C1/C0 the
   per-size model counts of the circuit conditioned on p over the
   remaining n−1 players. A player outside the circuit's variables is a
   null player of the event: both cofactors coincide and the value is
   exactly zero, no counting pass needed. *)
let shapley_diff mgr ~n node p =
  if not (ISet.mem p (node_vars node)) then Q.zero
  else
    timed t_wmc (fun () ->
        Atomic.incr c_wmc_passes;
        let c1 = model_counts mgr ~n:(n - 1) (condition mgr node p true) in
        let c0 = model_counts mgr ~n:(n - 1) (condition mgr node p false) in
        let w = Combinat.shapley_weights n in
        let acc = B.Acc.create () in
        for k = 0 to n - 1 do
          B.Acc.add_mul acc w.(k) (B.sub c1.(k) c0.(k))
        done;
        Q.make (B.Acc.value acc) (Combinat.factorial n))

let node_count mgr = mgr.next_id
