(* Hash-consed monotone Boolean formulas over integer variables.

   Lineage of an aggregate-query answer is a positive DNF over the
   endogenous facts (one minterm per homomorphism), and every event the
   aggregate decomposition produces is an OR/AND combination of such
   lineages — so negation never appears. Smart constructors keep terms
   canonical (flattened, children sorted by id, unit/absorbing elements
   folded away, subsumed minterms dropped), and a per-store table makes
   structurally equal formulas physically equal: the compiler's
   formula-keyed cache (see {!Ddnnf}) is sound exactly because equal
   sub-problems share one id. *)

module ISet = Set.Make (Int)

type t = {
  id : int;
  node : node;
  vars : ISet.t;
  minterm : bool;  (* pure conjunction of variables (includes True) *)
}

and node =
  | True
  | False
  | Var of int
  | And of t list
  | Or of t list

(* Structural keys for hash-consing; children by id only. *)
type key =
  | KTrue
  | KFalse
  | KVar of int
  | KAnd of int list
  | KOr of int list

type store = {
  tbl : (key, t) Hashtbl.t;
  cond_memo : (int * int * bool, t) Hashtbl.t;
  mutable next_id : int;
}

let create_store () =
  { tbl = Hashtbl.create 256; cond_memo = Hashtbl.create 256; next_id = 0 }

let intern store key node ~vars ~minterm =
  match Hashtbl.find_opt store.tbl key with
  | Some f -> f
  | None ->
    let f = { id = store.next_id; node; vars; minterm } in
    store.next_id <- store.next_id + 1;
    Hashtbl.add store.tbl key f;
    f

let tru store = intern store KTrue True ~vars:ISet.empty ~minterm:true
let fls store = intern store KFalse False ~vars:ISet.empty ~minterm:false

let var store v =
  if v < 0 then invalid_arg "Formula.var: negative variable";
  intern store (KVar v) (Var v) ~vars:(ISet.singleton v) ~minterm:true

let id f = f.id
let var_set f = f.vars
let vars f = ISet.elements f.vars
let is_true f = match f.node with True -> true | _ -> false
let is_false f = match f.node with False -> true | _ -> false
let view f = f.node

let by_id a b = compare a.id b.id

(* AND: flatten nested conjunctions, drop True, annihilate on False,
   sort + dedup children by id. *)
let and_ store xs =
  let rec gather acc = function
    | [] -> Some acc
    | x :: rest -> (
      match x.node with
      | True -> gather acc rest
      | False -> None
      | And ys -> (
        match gather acc ys with None -> None | Some acc -> gather acc rest)
      | Var _ | Or _ -> gather (x :: acc) rest)
  in
  match gather [] xs with
  | None -> fls store
  | Some children -> (
    let children = List.sort_uniq by_id children in
    match children with
    | [] -> tru store
    | [ x ] -> x
    | _ ->
      let vars =
        List.fold_left (fun s x -> ISet.union s x.vars) ISet.empty children
      in
      let minterm = List.for_all (fun x -> x.minterm) children in
      intern store
        (KAnd (List.map (fun x -> x.id) children))
        (And children) ~vars ~minterm)

(* OR: flatten nested disjunctions, drop False, annihilate on True,
   sort + dedup, and drop minterms subsumed by a smaller minterm (for
   pure conjunctions of variables, [vars y ⊆ vars x] implies [x ⇒ y] by
   monotonicity, so [x] is redundant under the OR). *)
let or_ store xs =
  let rec gather acc = function
    | [] -> Some acc
    | x :: rest -> (
      match x.node with
      | False -> gather acc rest
      | True -> None
      | Or ys -> (
        match gather acc ys with None -> None | Some acc -> gather acc rest)
      | Var _ | And _ -> gather (x :: acc) rest)
  in
  match gather [] xs with
  | None -> tru store
  | Some children -> (
    let children = List.sort_uniq by_id children in
    let minterms, others = List.partition (fun x -> x.minterm) children in
    let minterms =
      List.filter
        (fun x ->
          not
            (List.exists
               (fun y -> y.id <> x.id && ISet.subset y.vars x.vars)
               minterms))
        minterms
    in
    let children = List.sort by_id (minterms @ others) in
    match children with
    | [] -> fls store
    | [ x ] -> x
    | _ ->
      let vars =
        List.fold_left (fun s x -> ISet.union s x.vars) ISet.empty children
      in
      intern store
        (KOr (List.map (fun x -> x.id) children))
        (Or children) ~vars ~minterm:false)

(* Conditioning φ|v=b, memoized per (formula, variable, polarity): the
   Shannon expansion of the compiler revisits the same cofactors along
   many branches of the same store. *)
let rec cond store f v b =
  if not (ISet.mem v f.vars) then f
  else begin
    let key = (f.id, v, b) in
    match Hashtbl.find_opt store.cond_memo key with
    | Some g -> g
    | None ->
      let g =
        match f.node with
        | True | False -> f
        | Var _ -> if b then tru store else fls store
        | And xs -> and_ store (List.map (fun x -> cond store x v b) xs)
        | Or xs -> or_ store (List.map (fun x -> cond store x v b) xs)
      in
      Hashtbl.add store.cond_memo key g;
      g
  end

(* Branch-variable heuristic: the variable with the most occurrences in
   the formula DAG (shared subterms counted once); ties break to the
   smallest index, so compilation is deterministic. *)
let pick_var f =
  if ISet.is_empty f.vars then None
  else begin
    let seen = Hashtbl.create 64 in
    let occs = Hashtbl.create 16 in
    let rec go f =
      if not (Hashtbl.mem seen f.id) then begin
        Hashtbl.add seen f.id ();
        match f.node with
        | Var v ->
          Hashtbl.replace occs v
            (1 + Option.value (Hashtbl.find_opt occs v) ~default:0)
        | And xs | Or xs -> List.iter go xs
        | True | False -> ()
      end
    in
    go f;
    let best =
      ISet.fold
        (fun v best ->
          let c = Option.value (Hashtbl.find_opt occs v) ~default:0 in
          match best with
          | Some (_, bc) when bc >= c -> best
          | _ -> Some (v, c))
        f.vars None
    in
    Option.map fst best
  end

let eval f env =
  let memo = Hashtbl.create 64 in
  let rec go f =
    match Hashtbl.find_opt memo f.id with
    | Some b -> b
    | None ->
      let b =
        match f.node with
        | True -> true
        | False -> false
        | Var v -> env v
        | And xs -> List.for_all go xs
        | Or xs -> List.exists go xs
      in
      Hashtbl.add memo f.id b;
      b
  in
  go f

let rec to_string f =
  match f.node with
  | True -> "true"
  | False -> "false"
  | Var v -> "x" ^ string_of_int v
  | And xs -> "(" ^ String.concat " & " (List.map to_string xs) ^ ")"
  | Or xs -> "(" ^ String.concat " | " (List.map to_string xs) ^ ")"

let store_size store = store.next_id
