module Value = Aggshap_relational.Value
module Database = Aggshap_relational.Database

let is_ground q = Cq.vars q = []

(* Variable sharing between two atoms, without materializing var lists:
   the engine asks for components at every DP node, and almost every
   query it builds there has one or two atoms. *)
let atoms_share_var (a : Cq.atom) (b : Cq.atom) =
  Array.exists
    (function
      | Cq.Var x ->
        Array.exists
          (function Cq.Var y -> String.equal x y | Cq.Const _ -> false)
          b.Cq.terms
      | Cq.Const _ -> false)
    a.Cq.terms

let single_atom_component q (a : Cq.atom) =
  let avars = Cq.atom_vars a in
  { q with Cq.head = List.filter (fun x -> List.mem x avars) q.Cq.head; body = [ a ] }

let connected_components q =
  match q.Cq.body with
  | [] -> []
  | [ _ ] -> [ q ]
  | [ a1; a2 ] ->
    if atoms_share_var a1 a2 then [ q ]
    else [ single_atom_component q a1; single_atom_component q a2 ]
  | body ->
  let atoms = Array.of_list body in
  let n = Array.length atoms in
  let atom_vars = Array.map Cq.atom_vars atoms in
  let comp = Array.init n (fun i -> i) in
  let rec find i = if comp.(i) = i then i else find comp.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then comp.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let vi = atom_vars.(i) and vj = atom_vars.(j) in
      if List.exists (fun x -> List.mem x vj) vi then union i j
    done
  done;
  let roots = List.sort_uniq Stdlib.compare (List.init n (fun i -> find i)) in
  List.map
    (fun r ->
      let body =
        List.filteri (fun i _ -> find i = r) (Array.to_list atoms)
      in
      let body_vars = List.concat_map Cq.atom_vars body in
      { q with
        Cq.head = List.filter (fun x -> List.mem x body_vars) q.Cq.head;
        body })
    roots

let root_variables q =
  match q.Cq.body with
  | [] -> []
  | first :: rest ->
    List.filter
      (fun x -> List.for_all (fun a -> List.mem x (Cq.atom_vars a)) rest)
      (Cq.atom_vars first)

let choose_root q =
  let roots = root_variables q in
  match List.find_opt (Cq.is_free q) roots with
  | Some x -> Some x
  | None -> (match roots with [] -> None | x :: _ -> Some x)

let matches (a : Cq.atom) fixing (f : Aggshap_relational.Fact.t) =
  if not (String.equal a.rel f.rel) || Array.length a.terms <> Array.length f.args then false
  else begin
    let n = Array.length a.terms in
    let rec go i sigma =
      if i >= n then true
      else
        match a.terms.(i) with
        | Cq.Const v -> Value.equal v f.args.(i) && go (i + 1) sigma
        | Cq.Var x -> begin
          match List.assoc_opt x sigma with
          | Some v -> Value.equal v f.args.(i) && go (i + 1) sigma
          | None -> go (i + 1) ((x, f.args.(i)) :: sigma)
        end
    in
    go 0 fixing
  end

(* Relevance of a fact: matched by some body atom. [matches] rejects a
   wrong-relation fact on its first comparison, so each fact is
   effectively tested only against the atoms of its own relation
   without materializing that sublist. *)
let rec matched_by_some atoms f =
  match atoms with [] -> false | a :: rest -> matches a [] f || matched_by_some rest f

(* The engine only pads by the number of {e endogenous} irrelevant
   facts; counting them first keeps the common case — nothing
   irrelevant at the top of a solve — a single allocation-free pass
   that returns the database {e as is}, built indexes and cached digest
   alive. When something is irrelevant the relevant half is rebuilt by
   inserting the survivors into an empty database: the membership games
   of the incremental session keep only a thin slice of the database,
   and deriving that slice by deleting the majority would pay a
   log-sized path rebuild plus index maintenance per deletion. *)
let relevant_part q db =
  let irr = ref 0 and irr_endo = ref 0 in
  Database.iter
    (fun f p ->
      if not (matched_by_some q.Cq.body f) then begin
        incr irr;
        match p with Database.Endogenous -> incr irr_endo | Database.Exogenous -> ()
      end)
    db;
  if !irr = 0 then (db, 0)
  else
    ( Database.fold
        (fun f p acc ->
          if matched_by_some q.Cq.body f then Database.add ~provenance:p f acc else acc)
        db Database.empty,
      !irr_endo )

(* The two-database split, for callers that need the irrelevant facts
   themselves (none on the solve path — they pad by the count above). *)
let relevant q db =
  let rel, _ = relevant_part q db in
  let irr =
    if rel == db then Database.empty
    else
      Database.fold
        (fun f p acc ->
          if matched_by_some q.Cq.body f then acc else Database.add ~provenance:p f acc)
        db Database.empty
  in
  (rel, irr)

module ValueSet = Set.Make (Value)

(* The value the root variable takes in a fact matching an atom, if any. *)
let root_value_of (a : Cq.atom) x (f : Aggshap_relational.Fact.t) =
  if matches a [] f then begin
    let v = ref None in
    Array.iteri
      (fun i t -> match t with Cq.Var y when String.equal y x && !v = None -> v := Some f.args.(i) | _ -> ())
      a.terms;
    !v
  end
  else None

let root_values q x db =
  let per_atom (a : Cq.atom) =
    List.fold_left
      (fun acc f -> match root_value_of a x f with Some v -> ValueSet.add v acc | None -> acc)
      ValueSet.empty
      (Database.relation db a.rel)
  in
  match q.Cq.body with
  | [] -> []
  | first :: rest ->
    let init = per_atom first in
    let inter = List.fold_left (fun acc a -> ValueSet.inter acc (per_atom a)) init rest in
    ValueSet.elements inter

(* Injective serialization of a database block: facts arrive in
   [Fact.compare] order, every value is tagged and length-prefixed, so
   two blocks collide iff they are equal as provenance-tagged fact sets.
   Together with [Cq.to_string] (canonical — it backs [Cq.equal]) this
   keys the DP-table caches of the batch engine. *)
let fingerprint_uncached db =
  let buf = Buffer.create 128 in
  Database.iter
    (fun (f : Aggshap_relational.Fact.t) p ->
      Buffer.add_string buf f.rel;
      Buffer.add_char buf '(';
      Array.iter
        (fun v ->
          (match v with
           | Value.Int n ->
             Buffer.add_char buf 'i';
             Buffer.add_string buf (string_of_int n)
           | Value.Str s ->
             Buffer.add_char buf 's';
             Buffer.add_string buf (string_of_int (String.length s));
             Buffer.add_char buf ':';
             Buffer.add_string buf s);
          Buffer.add_char buf ',')
        f.args;
      Buffer.add_char buf ')';
      Buffer.add_char buf
        (match p with Database.Endogenous -> '+' | Database.Exogenous -> '@'))
    db;
  Buffer.contents buf

let fingerprint db = Database.cached_digest db fingerprint_uncached

let block_key q db = Cq.to_string q ^ "\x00" ^ fingerprint db

(* The legacy partition: recompute the root values by scanning every
   atom's relation, then filter the whole database once per value.
   O(values × |db|) — kept as the reference arm of the equivalence
   suite and for [Plan.enabled = false] runs. *)
let partition_scan q x db =
  let values = root_values q x db in
  let block a =
    Database.filter
      (fun f _ ->
        List.exists (fun at -> matches at [ (x, a) ] f) q.Cq.body)
      db
  in
  let blocks = List.map (fun a -> (a, block a)) values in
  let in_some_block f =
    List.exists (fun (_, b) -> Database.mem f b) blocks
  in
  let dropped = Database.filter (fun f _ -> not (in_some_block f)) db in
  (blocks, dropped)

module FactSet = Set.Make (Aggshap_relational.Fact)

(* The first position of an atom holding the root variable — the index
   position the partition probes. *)
let var_position (a : Cq.atom) x =
  let n = Array.length a.terms in
  let rec go i =
    if i >= n then None
    else
      match a.terms.(i) with
      | Cq.Var y when String.equal y x -> Some i
      | _ -> go (i + 1)
  in
  go 0

(* The indexed partition: one probe per atom of the (rel, root
   position) secondary index groups the matching facts by root value —
   a fact matching the atom with [x ↦ v] carries [v] at every
   x-position, so the index group for [v] is a superset of the block's
   slice of that relation and [matches] filters it exactly. The root
   values are the intersection of the per-atom group keys (a value must
   be realized by a matching fact in {e every} atom, as in
   [root_values]); blocks are per-value unions across atoms.
   O(Σ segments + Σ blocks·log) in one pass, not O(values × |db|). *)
let partition_indexed q x db =
  match q.Cq.body with
  | [] -> ([], db)
  | body ->
    let groups =
      List.map
        (fun (a : Cq.atom) ->
          match var_position a x with
          | None -> Database.ValueMap.empty
          | Some pos ->
            Database.ValueMap.filter_map
              (fun v g ->
                let g' =
                  Database.FactMap.filter (fun f _ -> matches a [ (x, v) ] f) g
                in
                if Database.FactMap.is_empty g' then None else Some g')
              (Database.indexed db ~rel:a.rel ~pos))
        body
    in
    let values =
      match groups with
      | [] -> ValueSet.empty
      | first :: rest ->
        List.fold_left
          (fun acc g -> ValueSet.filter (fun v -> Database.ValueMap.mem v g) acc)
          (Database.ValueMap.fold
             (fun v _ acc -> ValueSet.add v acc)
             first ValueSet.empty)
          rest
    in
    let placed = ref FactSet.empty in
    let blocks =
      List.map
        (fun v ->
          let block =
            List.fold_left
              (fun acc g ->
                match Database.ValueMap.find_opt v g with
                | None -> acc
                | Some fm ->
                  Database.FactMap.fold
                    (fun f p acc ->
                      placed := FactSet.add f !placed;
                      Database.add ~provenance:p f acc)
                    fm acc)
              Database.empty groups
          in
          (v, block))
        (ValueSet.elements values)
    in
    let dropped = Database.filter (fun f _ -> not (FactSet.mem f !placed)) db in
    (blocks, dropped)

let partition q x db =
  if !Plan.enabled then partition_indexed q x db else partition_scan q x db
