module Value = Aggshap_relational.Value
module Database = Aggshap_relational.Database

let is_ground q = Cq.vars q = []

(* Variable sharing between two atoms, without materializing var lists:
   the engine asks for components at every DP node, and almost every
   query it builds there has one or two atoms. *)
let atoms_share_var (a : Cq.atom) (b : Cq.atom) =
  Array.exists
    (function
      | Cq.Var x ->
        Array.exists
          (function Cq.Var y -> String.equal x y | Cq.Const _ -> false)
          b.Cq.terms
      | Cq.Const _ -> false)
    a.Cq.terms

let single_atom_component q (a : Cq.atom) =
  let avars = Cq.atom_vars a in
  { q with Cq.head = List.filter (fun x -> List.mem x avars) q.Cq.head; body = [ a ] }

let connected_components q =
  match q.Cq.body with
  | [] -> []
  | [ _ ] -> [ q ]
  | [ a1; a2 ] ->
    if atoms_share_var a1 a2 then [ q ]
    else [ single_atom_component q a1; single_atom_component q a2 ]
  | body ->
  let atoms = Array.of_list body in
  let n = Array.length atoms in
  let atom_vars = Array.map Cq.atom_vars atoms in
  let comp = Array.init n (fun i -> i) in
  let rec find i = if comp.(i) = i then i else find comp.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then comp.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let vi = atom_vars.(i) and vj = atom_vars.(j) in
      if List.exists (fun x -> List.mem x vj) vi then union i j
    done
  done;
  let roots = List.sort_uniq Stdlib.compare (List.init n (fun i -> find i)) in
  List.map
    (fun r ->
      let body =
        List.filteri (fun i _ -> find i = r) (Array.to_list atoms)
      in
      let body_vars = List.concat_map Cq.atom_vars body in
      { q with
        Cq.head = List.filter (fun x -> List.mem x body_vars) q.Cq.head;
        body })
    roots

let root_variables q =
  match q.Cq.body with
  | [] -> []
  | first :: rest ->
    List.filter
      (fun x -> List.for_all (fun a -> List.mem x (Cq.atom_vars a)) rest)
      (Cq.atom_vars first)

let choose_root q =
  let roots = root_variables q in
  match List.find_opt (Cq.is_free q) roots with
  | Some x -> Some x
  | None -> (match roots with [] -> None | x :: _ -> Some x)

let matches (a : Cq.atom) fixing (f : Aggshap_relational.Fact.t) =
  if not (String.equal a.rel f.rel) || Array.length a.terms <> Array.length f.args then false
  else begin
    let n = Array.length a.terms in
    let rec go i sigma =
      if i >= n then true
      else
        match a.terms.(i) with
        | Cq.Const v -> Value.equal v f.args.(i) && go (i + 1) sigma
        | Cq.Var x -> begin
          match List.assoc_opt x sigma with
          | Some v -> Value.equal v f.args.(i) && go (i + 1) sigma
          | None -> go (i + 1) ((x, f.args.(i)) :: sigma)
        end
    in
    go 0 fixing
  end

let relevant q db =
  Database.filter
    (fun f _ -> List.exists (fun a -> matches a [] f) q.Cq.body)
    db,
  Database.filter
    (fun f _ -> not (List.exists (fun a -> matches a [] f) q.Cq.body))
    db

module ValueSet = Set.Make (Value)

(* The value the root variable takes in a fact matching an atom, if any. *)
let root_value_of (a : Cq.atom) x (f : Aggshap_relational.Fact.t) =
  if matches a [] f then begin
    let v = ref None in
    Array.iteri
      (fun i t -> match t with Cq.Var y when String.equal y x && !v = None -> v := Some f.args.(i) | _ -> ())
      a.terms;
    !v
  end
  else None

let root_values q x db =
  let per_atom (a : Cq.atom) =
    List.fold_left
      (fun acc f -> match root_value_of a x f with Some v -> ValueSet.add v acc | None -> acc)
      ValueSet.empty
      (Database.relation db a.rel)
  in
  match q.Cq.body with
  | [] -> []
  | first :: rest ->
    let init = per_atom first in
    let inter = List.fold_left (fun acc a -> ValueSet.inter acc (per_atom a)) init rest in
    ValueSet.elements inter

(* Injective serialization of a database block: facts arrive in
   [Fact.compare] order, every value is tagged and length-prefixed, so
   two blocks collide iff they are equal as provenance-tagged fact sets.
   Together with [Cq.to_string] (canonical — it backs [Cq.equal]) this
   keys the DP-table caches of the batch engine. *)
let fingerprint db =
  let buf = Buffer.create 128 in
  Database.iter
    (fun (f : Aggshap_relational.Fact.t) p ->
      Buffer.add_string buf f.rel;
      Buffer.add_char buf '(';
      Array.iter
        (fun v ->
          (match v with
           | Value.Int n ->
             Buffer.add_char buf 'i';
             Buffer.add_string buf (string_of_int n)
           | Value.Str s ->
             Buffer.add_char buf 's';
             Buffer.add_string buf (string_of_int (String.length s));
             Buffer.add_char buf ':';
             Buffer.add_string buf s);
          Buffer.add_char buf ',')
        f.args;
      Buffer.add_char buf ')';
      Buffer.add_char buf
        (match p with Database.Endogenous -> '+' | Database.Exogenous -> '@'))
    db;
  Buffer.contents buf

let block_key q db = Cq.to_string q ^ "\x00" ^ fingerprint db

let partition q x db =
  let values = root_values q x db in
  let block a =
    Database.filter
      (fun f _ ->
        List.exists (fun at -> matches at [ (x, a) ] f) q.Cq.body)
      db
  in
  let blocks = List.map (fun a -> (a, block a)) values in
  let in_some_block f =
    List.exists (fun (_, b) -> Database.mem f b) blocks
  in
  let dropped = Database.filter (fun f _ -> not (in_some_block f)) db in
  (blocks, dropped)
