(** Compiled join plans: an atom ordering plus one index access path
    per atom, turning {!Eval}'s backtracking join into an index
    nested-loop join over {!Aggshap_relational.Database} secondary
    indexes.

    A plan depends only on the query (binding patterns), not the
    database, and both produce exactly the homomorphism {e set} of the
    legacy scan evaluator — only the enumeration order differs, and
    every consumer (answer sets, support sets, satisfaction, answer-
    value maps) is order-insensitive. *)

type access =
  | Probe_const of int * Aggshap_relational.Value.t
      (** probe the index at this position with this constant *)
  | Probe_var of int * string
      (** probe the index at this position with the variable's binding *)
  | Scan  (** no usable bound position: scan the relation *)

type step = {
  atom : Cq.atom;
  access : access;
}

type t = {
  query : Cq.t;
  steps : step list;  (** join order: earlier steps bind variables for later ones *)
}

val enabled : bool ref
(** [true] (default): {!Eval} and {!Decompose.partition} run through
    plans and indexes. [false]: the legacy scan evaluator and the
    rescanning partition — kept for differential testing ([shapctl fuzz
    --legacy-eval], the forced-legacy corpus replay, and the oracle's
    reference arm). *)

val compile : ?order:int list -> Cq.t -> t
(** Greedy bound-position ordering; [?order] pins an explicit atom
    order (body indices) instead, for adversarial-plan tests.
    @raise Invalid_argument if [order] is not a permutation of the body
    indices. *)

val to_string : t -> string
(** Render as [R:probe[0=x] ⋈ S:scan ⋈ …] for tests and debugging. *)

type stats = { plan_compiles : int }

val stats : unit -> stats
val reset_stats : unit -> unit
