(** Conjunctive queries (CQs).

    A CQ is [Q(x̄) ← R₁(z̄₁), ..., R_q(z̄_q)] where the head [x̄] lists the
    free variables and each body atom applies a relation name to a mix of
    variables and constants. The paper (and hence this library) restricts
    attention to CQs {e without self-joins}: each relation name appears in
    at most one atom; {!validate} enforces this. *)

type term =
  | Var of string
  | Const of Aggshap_relational.Value.t

type atom = { rel : string; terms : term array }

type t = {
  name : string;  (** head predicate name, cosmetic *)
  head : string list;  (** free variables, in answer-tuple order *)
  body : atom list;
}

val make : ?name:string -> head:string list -> atom list -> t
(** Builds and {!validate}s a CQ. @raise Invalid_argument when invalid. *)

val atom : string -> term list -> atom
val var : string -> term
val cst : Aggshap_relational.Value.t -> term
val cst_int : int -> term

val validate : t -> (unit, string) result
(** Checks: no self-joins, head variables occur in the body, no duplicate
    head variables. *)

(** {1 Variables and atoms} *)

val vars : t -> string list
(** All variables, each once, in first-occurrence order. *)

val free_vars : t -> string list
val exist_vars : t -> string list
val is_free : t -> string -> bool
val is_boolean : t -> bool

val atoms_of : t -> string -> string list
(** [atoms_of q x] is the set (as a sorted list of relation names) of
    atoms in which [x] occurs — well-defined because there are no
    self-joins. *)

val atom_vars : atom -> string list
val find_atom : t -> string -> atom option
val relations : t -> string list
(** Relation names of the body, in body order. *)

(** {1 Transformations} *)

val make_boolean : t -> t
(** Drops the head: every variable becomes existential. *)

val substituter : t -> string -> Aggshap_relational.Value.t -> t
(** [substituter q x] stages [substitute q x]: the per-query analysis
    (surviving head variables, term positions holding [x]) runs once,
    and each application costs one array copy per atom mentioning [x].
    The engine uses this at merge steps, once per root value. *)

val substitute : t -> string -> Aggshap_relational.Value.t -> t
(** [substitute q x a] is [Q_{x↦a}]: replaces body occurrences of [x] by
    the constant [a] and removes [x] from the head. *)

val restrict_to_relations : t -> string list -> t
(** Keeps only the body atoms over the given relations; the head keeps
    the variables that still occur. *)

val induced_schema : t -> Aggshap_relational.Schema.t
(** The schema the query's atoms declare (relation names with arities). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
