(** CQ evaluation: homomorphism enumeration over a database.

    The evaluator is a straightforward backtracking join. It is used for
    top-level answer materialization, for the support computation of the
    dynamic programs, and — crucially — inside the exact naive Shapley
    baseline, which evaluates the query on exponentially many subsets. *)

type subst
(** A homomorphism: a binding of query variables to database values.
    Opaque; consume it with {!apply_head} and {!atom_image}. *)

val visit_homomorphisms :
  Cq.t -> Aggshap_relational.Database.t -> (subst -> bool) -> unit
(** Enumerate homomorphisms without materializing them; the visitor
    returns [true] to continue and [false] to stop early. *)

val homomorphisms : Cq.t -> Aggshap_relational.Database.t -> subst list
(** All homomorphisms from the query to the database. *)

val apply_head : Cq.t -> subst -> Aggshap_relational.Value.t array
(** The answer tuple [h(x̄)] of a homomorphism. *)

val atom_image : Cq.atom -> subst -> Aggshap_relational.Fact.t
(** The fact an atom maps to under a homomorphism. *)

val answers : Cq.t -> Aggshap_relational.Database.t -> Aggshap_relational.Value.t array list
(** [Q(D)]: the {e set} of answer tuples (duplicates removed), in some
    deterministic order. *)

val is_satisfied : Cq.t -> Aggshap_relational.Database.t -> bool
(** Boolean evaluation with early exit. *)

val support : Cq.t -> Aggshap_relational.Database.t -> Aggshap_relational.Fact.t list
(** Facts that participate in at least one homomorphism. Facts outside
    the support are null players of every Shapley game over the query. *)
