(** CQ evaluation: homomorphism enumeration over a database.

    Two interchangeable evaluators produce the same homomorphism set:
    the default runs a compiled {!Plan} as an index nested-loop join
    over the database's secondary indexes; the legacy backtracking
    scan join ({!Legacy}) is kept as the differential-testing
    reference and is selected globally by clearing {!Plan.enabled}.
    Only the enumeration {e order} differs between them — every
    exported view is a set, a bag sum, or a boolean. The evaluator
    feeds top-level answer materialization, the support computation of
    the dynamic programs, and the exact naive Shapley baseline. *)

type subst
(** A homomorphism: a binding of query variables to database values.
    Opaque; consume it with {!apply_head} and {!atom_image}. *)

val visit_homomorphisms :
  Cq.t -> Aggshap_relational.Database.t -> (subst -> bool) -> unit
(** Enumerate homomorphisms without materializing them; the visitor
    returns [true] to continue and [false] to stop early. Dispatches on
    {!Plan.enabled}. *)

val homomorphisms : Cq.t -> Aggshap_relational.Database.t -> subst list
(** All homomorphisms from the query to the database. *)

val apply_head : Cq.t -> subst -> Aggshap_relational.Value.t array
(** The answer tuple [h(x̄)] of a homomorphism. *)

val atom_image : Cq.atom -> subst -> Aggshap_relational.Fact.t
(** The fact an atom maps to under a homomorphism. *)

val answers : Cq.t -> Aggshap_relational.Database.t -> Aggshap_relational.Value.t array list
(** [Q(D)]: the {e set} of answer tuples (duplicates removed), in some
    deterministic order. *)

val is_satisfied : Cq.t -> Aggshap_relational.Database.t -> bool
(** Boolean evaluation with early exit. *)

val support : Cq.t -> Aggshap_relational.Database.t -> Aggshap_relational.Fact.t list
(** Facts that participate in at least one homomorphism. Facts outside
    the support are null players of every Shapley game over the query. *)

(** The legacy scan evaluator — body-order atoms, one relation scan
    each — independent of {!Plan.enabled}. The reference arm of the
    planner equivalence suite. *)
module Legacy : sig
  val visit_homomorphisms :
    Cq.t -> Aggshap_relational.Database.t -> (subst -> bool) -> unit

  val homomorphisms : Cq.t -> Aggshap_relational.Database.t -> subst list
  val answers : Cq.t -> Aggshap_relational.Database.t -> Aggshap_relational.Value.t array list
  val is_satisfied : Cq.t -> Aggshap_relational.Database.t -> bool
  val support : Cq.t -> Aggshap_relational.Database.t -> Aggshap_relational.Fact.t list
end

(** The planned evaluator pinned to an explicit (possibly adversarial)
    plan, independent of {!Plan.enabled}. *)
module Planned : sig
  val visit_homomorphisms :
    Plan.t -> Aggshap_relational.Database.t -> (subst -> bool) -> unit

  val homomorphisms : Plan.t -> Aggshap_relational.Database.t -> subst list
  val answers : Plan.t -> Aggshap_relational.Database.t -> Aggshap_relational.Value.t array list
  val is_satisfied : Plan.t -> Aggshap_relational.Database.t -> bool
  val support : Plan.t -> Aggshap_relational.Database.t -> Aggshap_relational.Fact.t list
end
