module Value = Aggshap_relational.Value

type term =
  | Var of string
  | Const of Value.t

type atom = { rel : string; terms : term array }

type t = {
  name : string;
  head : string list;
  body : atom list;
}

let atom rel terms = { rel; terms = Array.of_list terms }
let var x = Var x
let cst v = Const v
let cst_int n = Const (Value.Int n)

let atom_vars a =
  Array.fold_left
    (fun acc t -> match t with Var x when not (List.mem x acc) -> x :: acc | _ -> acc)
    [] a.terms
  |> List.rev

let vars q =
  List.fold_left
    (fun acc a ->
      List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) acc (atom_vars a))
    [] q.body
  |> List.rev

let free_vars q = q.head
let exist_vars q = List.filter (fun x -> not (List.mem x q.head)) (vars q)
let is_free q x = List.mem x q.head
let is_boolean q = q.head = []

let relations q = List.map (fun a -> a.rel) q.body

let rec has_dup = function
  | [] -> false
  | x :: rest -> List.mem x rest || has_dup rest

let validate q =
  let rels = relations q in
  if has_dup rels then Error "self-join: a relation name appears in two atoms"
  else if has_dup q.head then Error "duplicate head variable"
  else begin
    let body_vars = vars q in
    match List.find_opt (fun x -> not (List.mem x body_vars)) q.head with
    | Some x -> Error (Printf.sprintf "head variable %s does not occur in the body" x)
    | None -> Ok ()
  end

let make ?(name = "Q") ~head body =
  let q = { name; head; body } in
  match validate q with
  | Ok () -> q
  | Error msg -> invalid_arg ("Cq.make: " ^ msg)

let atoms_of q x =
  q.body
  |> List.filter_map (fun a -> if List.mem x (atom_vars a) then Some a.rel else None)
  |> List.sort String.compare

let find_atom q rel = List.find_opt (fun a -> String.equal a.rel rel) q.body

let make_boolean q = { q with head = [] }

(* Substitution is staged: the engine substitutes the same root
   variable into the same query once per root value (every block of
   every merge step), so the per-query analysis — which head variables
   survive, which term positions hold [x] — runs once, and each value
   costs one array copy per affected atom. *)
let substituter q x =
  let head = List.filter (fun y -> not (String.equal y x)) q.head in
  let prepared =
    List.map
      (fun at ->
        let positions = ref [] in
        Array.iteri
          (fun i t ->
            match t with
            | Var y when String.equal y x -> positions := i :: !positions
            | _ -> ())
          at.terms;
        (at, !positions))
      q.body
  in
  fun a ->
    let body =
      List.map
        (fun (at, positions) ->
          match positions with
          | [] -> at
          | _ ->
            let terms = Array.copy at.terms in
            List.iter (fun i -> terms.(i) <- Const a) positions;
            { at with terms })
        prepared
    in
    { q with head; body }

let substitute q x a = substituter q x a

let restrict_to_relations q rels =
  let body = List.filter (fun a -> List.mem a.rel rels) q.body in
  let remaining_vars =
    List.concat_map atom_vars body
  in
  { q with head = List.filter (fun x -> List.mem x remaining_vars) q.head; body }

let induced_schema q =
  List.fold_left
    (fun s (a : atom) ->
      Aggshap_relational.Schema.declare a.rel (Array.length a.terms) s)
    Aggshap_relational.Schema.empty q.body

(* The canonical [Q(head) <- R(t, ...), S(...)] rendering, built in one
   pass: this string is the query half of every engine memo key
   ({!Aggshap_cq.Decompose.block_key}), computed at every DP node, so
   it is built without intermediate lists or format parsing. *)
let to_string q =
  let buf = Buffer.create 64 in
  Buffer.add_string buf q.name;
  Buffer.add_char buf '(';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf x)
    q.head;
  Buffer.add_string buf ") <- ";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf a.rel;
      Buffer.add_char buf '(';
      Array.iteri
        (fun j t ->
          if j > 0 then Buffer.add_string buf ", ";
          match t with
          | Var x -> Buffer.add_string buf x
          | Const v -> Buffer.add_string buf (Value.to_string v))
        a.terms;
      Buffer.add_char buf ')')
    q.body;
  Buffer.contents buf

let pp fmt q = Format.pp_print_string fmt (to_string q)

let equal a b = to_string a = to_string b
