module Value = Aggshap_relational.Value
module Fact = Aggshap_relational.Fact
module Database = Aggshap_relational.Database

(* An association list: the queries of this development have a handful
   of variables (two or three for every catalog query), so a linear
   scan over a few cons cells beats a balanced string map in the inner
   loop of the join — and extending a binding is one cons, not a path
   copy. Enumeration order does not depend on this representation. *)
type subst = (string * Value.t) list

let subst_find x sigma =
  let rec go = function
    | [] -> None
    | (y, v) :: rest -> if String.equal x y then Some v else go rest
  in
  go sigma

(* Try to extend [sigma] so that the atom matches the fact. *)
let match_atom (a : Cq.atom) (f : Fact.t) sigma =
  if not (String.equal a.rel f.rel) || Array.length a.terms <> Array.length f.args then None
  else begin
    let n = Array.length a.terms in
    let rec go i sigma =
      if i >= n then Some sigma
      else
        match a.terms.(i) with
        | Cq.Const v ->
          if Value.equal v f.args.(i) then go (i + 1) sigma else None
        | Cq.Var x -> begin
          match subst_find x sigma with
          | Some v -> if Value.equal v f.args.(i) then go (i + 1) sigma else None
          | None -> go (i + 1) ((x, f.args.(i)) :: sigma)
        end
    in
    go 0 sigma
  end

(* The legacy evaluator: atoms in body order, each matched against a
   full relation scan. Kept as the differential-testing reference for
   the planned evaluator below; [k] returns [true] to continue and
   [false] to stop early. *)
let visit_homomorphisms_scan q db k =
  let facts_by_rel =
    List.map (fun (a : Cq.atom) -> (a, Database.relation db a.rel)) q.Cq.body
  in
  let rec go atoms sigma =
    match atoms with
    | [] -> k sigma
    | (a, facts) :: rest ->
      let rec try_facts = function
        | [] -> true
        | f :: more -> begin
          match match_atom a f sigma with
          | Some sigma' -> if go rest sigma' then try_facts more else false
          | None -> try_facts more
        end
      in
      try_facts facts
  in
  ignore (go facts_by_rel [])

(* The planned evaluator: an index nested-loop join. Each step draws
   its candidates from the access path the plan compiled — an index
   probe keyed by a constant or an already-bound variable, or a
   relation scan when the atom has no bound position — and [match_atom]
   verifies the remaining positions. Produces the same homomorphism set
   as the scan evaluator (probes return a superset of the matching
   facts of their relation), in a different enumeration order. *)
let visit_planned (plan : Plan.t) db k =
  let rec go steps sigma =
    match steps with
    | [] -> k sigma
    | ({ Plan.atom; access } : Plan.step) :: rest ->
      let candidates =
        match access with
        | Plan.Probe_const (pos, v) -> Database.probe db ~rel:atom.Cq.rel ~pos v
        | Plan.Probe_var (pos, x) -> begin
          match subst_find x sigma with
          | Some v -> Database.probe db ~rel:atom.Cq.rel ~pos v
          | None -> Database.relation db atom.Cq.rel (* unreachable for well-formed plans *)
        end
        | Plan.Scan -> Database.relation db atom.Cq.rel
      in
      let rec try_facts = function
        | [] -> true
        | f :: more -> begin
          match match_atom atom f sigma with
          | Some sigma' -> if go rest sigma' then try_facts more else false
          | None -> try_facts more
        end
      in
      try_facts candidates
  in
  ignore (go plan.Plan.steps [])

let visit_homomorphisms q db k =
  if !Plan.enabled then visit_planned (Plan.compile q) db k
  else visit_homomorphisms_scan q db k

(* The materializing entry points below are shared by the dispatching
   evaluator and the [Legacy]/[Planned] modules: each takes the visitor
   with the query and database already applied. *)
let homomorphisms_via visit =
  let acc = ref [] in
  visit (fun sigma ->
      acc := sigma :: !acc;
      true);
  List.rev !acc

let homomorphisms q db = homomorphisms_via (visit_homomorphisms q db)

let head_value x sigma =
  match subst_find x sigma with
  | Some v -> v
  | None -> invalid_arg ("Eval.apply_head: unbound head variable " ^ x)

(* Heads of one or two variables (every catalog query) build their
   answer tuple directly, without an intermediate list. *)
let apply_head q sigma =
  match q.Cq.head with
  | [] -> [||]
  | [ x ] -> [| head_value x sigma |]
  | [ x; y ] -> [| head_value x sigma; head_value y sigma |]
  | head -> Array.of_list (List.map (fun x -> head_value x sigma) head)

let atom_image (a : Cq.atom) sigma =
  { Fact.rel = a.rel;
    args =
      Array.map
        (function
          | Cq.Const v -> v
          | Cq.Var x -> (
            match subst_find x sigma with
            | Some v -> v
            | None -> invalid_arg ("Eval.atom_image: unbound variable " ^ x)))
        a.terms }

module TupleSet = Set.Make (struct
  type t = Value.t array

  let compare a b =
    let la = Array.length a and lb = Array.length b in
    if la <> lb then Stdlib.compare la lb
    else begin
      let rec go i =
        if i >= la then 0
        else
          let c = Value.compare a.(i) b.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
    end
end)

let answers_via q visit =
  let set = ref TupleSet.empty in
  visit (fun sigma ->
      set := TupleSet.add (apply_head q sigma) !set;
      true);
  TupleSet.elements !set

let answers q db = answers_via q (visit_homomorphisms q db)

let is_satisfied_via visit =
  let found = ref false in
  visit (fun _ ->
      found := true;
      false);
  !found

let is_satisfied q db = is_satisfied_via (visit_homomorphisms q db)

module FactSet = Set.Make (Fact)

let support_via (q : Cq.t) visit =
  let set = ref FactSet.empty in
  visit (fun sigma ->
      List.iter (fun a -> set := FactSet.add (atom_image a sigma) !set) q.Cq.body;
      true);
  FactSet.elements !set

let support q db = support_via q (visit_homomorphisms q db)

(* The legacy scan evaluator, independent of [Plan.enabled]: one side
   of the planner equivalence suite. *)
module Legacy = struct
  let visit_homomorphisms = visit_homomorphisms_scan
  let homomorphisms q db = homomorphisms_via (visit_homomorphisms_scan q db)
  let answers q db = answers_via q (visit_homomorphisms_scan q db)
  let is_satisfied q db = is_satisfied_via (visit_homomorphisms_scan q db)
  let support q db = support_via q (visit_homomorphisms_scan q db)
end

(* The planned evaluator pinned to an explicit plan, independent of
   [Plan.enabled]: the other side, exercised with random atom orders. *)
module Planned = struct
  let visit_homomorphisms = visit_planned
  let homomorphisms (plan : Plan.t) db = homomorphisms_via (visit_planned plan db)
  let answers (plan : Plan.t) db = answers_via plan.Plan.query (visit_planned plan db)
  let is_satisfied (plan : Plan.t) db = is_satisfied_via (visit_planned plan db)
  let support (plan : Plan.t) db = support_via plan.Plan.query (visit_planned plan db)
end
