module Value = Aggshap_relational.Value

(* Which index (if any) an atom is matched through, decided at compile
   time from the binding pattern: a constant position can always be
   probed; a variable position can be probed once an earlier atom binds
   the variable; otherwise the atom falls back to a relation scan. *)
type access =
  | Probe_const of int * Value.t
  | Probe_var of int * string
  | Scan

type step = {
  atom : Cq.atom;
  access : access;
}

type t = {
  query : Cq.t;
  steps : step list;
}

(* Global switch between the planned/indexed evaluator and the legacy
   scan evaluator (atoms in body order, [Database.relation] per atom).
   [Eval] and [Decompose.partition] both consult it, so flipping it
   swaps the whole evaluation stack — the differential campaigns run
   the corpus on both settings and the oracle computes its references
   with the flag off. *)
let enabled = ref true

let c_plan_compiles = Atomic.make 0

type stats = { plan_compiles : int }

let stats () = { plan_compiles = Atomic.get c_plan_compiles }
let reset_stats () = Atomic.set c_plan_compiles 0

let bound_positions bound (a : Cq.atom) =
  let n = ref 0 in
  Array.iter
    (fun t ->
      match t with
      | Cq.Const _ -> incr n
      | Cq.Var x -> if List.mem x bound then incr n)
    a.Cq.terms;
  !n

(* The access path for an atom given the variables bound so far:
   prefer a constant position (selective regardless of the prefix),
   then the first position holding a bound variable, else scan. *)
let access_of bound (a : Cq.atom) =
  let n = Array.length a.Cq.terms in
  let rec const_pos i =
    if i >= n then None
    else match a.Cq.terms.(i) with Cq.Const v -> Some (Probe_const (i, v)) | Cq.Var _ -> const_pos (i + 1)
  in
  let rec var_pos i =
    if i >= n then None
    else
      match a.Cq.terms.(i) with
      | Cq.Var x when List.mem x bound -> Some (Probe_var (i, x))
      | _ -> var_pos (i + 1)
  in
  match const_pos 0 with
  | Some p -> p
  | None -> ( match var_pos 0 with Some p -> p | None -> Scan)

let bind bound (a : Cq.atom) =
  Array.fold_left
    (fun acc t ->
      match t with
      | Cq.Var x when not (List.mem x acc) -> x :: acc
      | _ -> acc)
    bound a.Cq.terms

(* Greedy ordering by bound-position count: at each step pick the
   remaining atom with the most bound positions (constants plus
   variables bound by the atoms already placed) — the index
   nested-loop join heuristic. Ties keep body order, so a query whose
   atoms are all unconstrained degrades to exactly the legacy order.
   [?order] overrides the ordering with explicit body indices (used by
   the equivalence suite to pin the evaluator on adversarial plans);
   access-path selection still runs per step. *)
let compile_uncached ?order (q : Cq.t) =
  Atomic.incr c_plan_compiles;
  let atoms = Array.of_list q.Cq.body in
  let picked =
    match order with
    | Some order ->
      if List.sort Int.compare order <> List.init (Array.length atoms) Fun.id then
        invalid_arg "Plan.compile: order is not a permutation of the body";
      order
    | None ->
      let n = Array.length atoms in
      let remaining = ref (List.init n Fun.id) in
      let bound = ref [] in
      let out = ref [] in
      while !remaining <> [] do
        let best =
          List.fold_left
            (fun best i ->
              let score = bound_positions !bound atoms.(i) in
              match best with
              | Some (_, s) when s >= score -> best
              | _ -> Some (i, score))
            None !remaining
        in
        let i = match best with Some (i, _) -> i | None -> assert false in
        out := i :: !out;
        bound := bind !bound atoms.(i);
        remaining := List.filter (fun j -> j <> i) !remaining
      done;
      List.rev !out
  in
  let steps =
    List.rev
      (fst
         (List.fold_left
            (fun (steps, bound) i ->
              let a = atoms.(i) in
              ({ atom = a; access = access_of bound a } :: steps, bind bound a))
            ([], []) picked))
  in
  { query = q; steps }

(* One-slot compile cache keyed by physical equality of the query: the
   hot callers (per-mask naive utilities, per-fact batch loops, the
   answer-value pass) evaluate one query object many times, while the
   engine's substituted sub-queries are fresh values and recompile.
   Racing domains overwrite each other's slot — a benign lost update of
   pure work. Explicit [?order] plans bypass the cache. *)
let last_compiled : (Cq.t * t) option Atomic.t = Atomic.make None

let compile ?order (q : Cq.t) =
  match order with
  | Some _ -> compile_uncached ?order q
  | None -> begin
    match Atomic.get last_compiled with
    | Some (q', plan) when q' == q -> plan
    | _ ->
      let plan = compile_uncached q in
      Atomic.set last_compiled (Some (q, plan));
      plan
  end

let access_to_string = function
  | Probe_const (i, v) -> Printf.sprintf "probe[%d=%s]" i (Value.to_string v)
  | Probe_var (i, x) -> Printf.sprintf "probe[%d=%s]" i x
  | Scan -> "scan"

let to_string plan =
  String.concat " ⋈ "
    (List.map
       (fun s -> Printf.sprintf "%s:%s" s.atom.Cq.rel (access_to_string s.access))
       plan.steps)
