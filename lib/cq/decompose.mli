(** Structural decomposition of CQs, as used by the generic dynamic
    programming template (Figure 2 of the paper).

    A connected CQ that is hierarchical w.r.t. its variables always has a
    {e root variable} (one occurring in every atom); the template
    partitions the database by the root's values and recurses on
    [Q_{x↦a}]. A disconnected CQ is a cross product of its connected
    components. *)

val is_ground : Cq.t -> bool
(** No variables at all. *)

val connected_components : Cq.t -> Cq.t list
(** Components of the atom graph (atoms adjacent when they share a
    variable). Variable-free atoms are singleton components. The head of
    each component keeps the original head variables it contains. *)

val root_variables : Cq.t -> string list
(** Variables occurring in every atom, in first-occurrence order. *)

val choose_root : Cq.t -> string option
(** A root variable, preferring a free one — the choice required by the
    q-hierarchical algorithms (Section 5.1). *)

val matches : Cq.atom -> (string * Aggshap_relational.Value.t) list -> Aggshap_relational.Fact.t -> bool
(** [matches a fixing f]: [f] can be obtained from [a] by applying
    [fixing] and replacing the remaining variables with arbitrary
    constants (one constant per variable). *)

val relevant_part : Cq.t -> Aggshap_relational.Database.t -> Aggshap_relational.Database.t * int
(** The facts matching some atom of the query, plus the number of
    {e endogenous} facts left out (all null players — exactly the pad
    the engines need). When every fact is relevant the input database
    is returned as is, keeping its built indexes and cached digest
    alive; this is the solve-path entry point. *)

val relevant : Cq.t -> Aggshap_relational.Database.t -> Aggshap_relational.Database.t * Aggshap_relational.Database.t
(** Splits the database into (facts matching some atom of the query,
    the rest). The second component contains only null players. *)

val root_values : Cq.t -> string -> Aggshap_relational.Database.t -> Aggshap_relational.Value.t list
(** Values the root variable can take: those realized in every atom. *)

val fingerprint : Aggshap_relational.Database.t -> string
(** Injective serialization of a database block (facts in [Fact.compare]
    order, values tagged and length-prefixed, provenance marked): two
    databases share a fingerprint iff they are equal. Used to key the
    shared DP-table caches of the batch engine. *)

val block_key : Cq.t -> Aggshap_relational.Database.t -> string
(** [Cq.to_string q] (canonical) paired with [fingerprint db] — the memo
    key under which a dynamic program may cache its table for the
    sub-instance [(q, db)]. *)

val partition :
  Cq.t ->
  string ->
  Aggshap_relational.Database.t ->
  (Aggshap_relational.Value.t * Aggshap_relational.Database.t) list * Aggshap_relational.Database.t
(** [partition q x db] splits [db] by the root values of [x] into
    disjoint blocks, returning also the facts that fall in no block
    (null players dropped at this step). Dispatches on {!Plan.enabled}
    between {!partition_indexed} and {!partition_scan}; both produce
    identical blocks in identical order. *)

val partition_indexed :
  Cq.t ->
  string ->
  Aggshap_relational.Database.t ->
  (Aggshap_relational.Value.t * Aggshap_relational.Database.t) list * Aggshap_relational.Database.t
(** One pass over the (relation, root-position) secondary indexes:
    groups each atom's matching facts by root value, intersects the
    realized value sets, and assembles blocks from the groups —
    O(Σ segments + Σ blocks·log |db|). *)

val partition_scan :
  Cq.t ->
  string ->
  Aggshap_relational.Database.t ->
  (Aggshap_relational.Value.t * Aggshap_relational.Database.t) list * Aggshap_relational.Database.t
(** The legacy partition — rescans the whole database once per root
    value, O(values × |db|). The reference arm of the partition
    equivalence suite. *)
