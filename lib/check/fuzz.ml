type config = {
  seed : int;
  trials : int;
  max_endo : int;
  par_jobs : int;
  max_failures : int;
  kc_always : bool;
  auto_always : bool;
}

let default =
  { seed = 0; trials = 100; max_endo = 8; par_jobs = 2; max_failures = 3;
    kc_always = false; auto_always = false }

type failure_report = {
  trial : Trial.t;
  failure : Oracle.failure;
  shrunk : Trial.t;
  shrunk_failure : Oracle.failure;
}

type report = {
  ran : int;
  failures : failure_report list;
}

(* A sparse odd multiplier keeps derived seeds distinct across both the
   trial index and nearby master seeds. *)
let trial_seed ~master i = (master * 1_000_003) + i

let parse_corpus contents =
  String.split_on_char '\n' contents
  |> List.filter_map (fun line ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         match String.trim line with
         | "" -> None
         | s -> (
           match int_of_string_opt s with
           | Some seed -> Some seed
           | None -> invalid_arg ("Fuzz.parse_corpus: malformed seed " ^ s)))

let run_one ?max_endo ?par_jobs ?kc_always ?auto_always ~seed () =
  let trial = Trial.generate ?max_endo ~seed () in
  (trial, Oracle.run ?par_jobs ?kc_always ?auto_always trial)

type ufailure_report = {
  utrial : Utrial.t;
  ufailure : Oracle.failure;
  ushrunk : Utrial.t;
  ushrunk_failure : Oracle.failure;
}

type ureport = {
  uran : int;
  usteps : int;
  ufailures : ufailure_report list;
}

let run_updates_one ?max_endo ~seed () =
  let utrial = Utrial.generate ?max_endo ~seed () in
  (utrial, Oracle.run_updates utrial)

(* The update checks run the session and the batch reference in the
   calling domain, so [par_jobs] plays no role here. *)
let run_updates ?on_trial config =
  let failures = ref [] in
  let ran = ref 0 in
  let steps = ref 0 in
  let i = ref 0 in
  while !i < config.trials && List.length !failures < config.max_failures do
    let seed = trial_seed ~master:config.seed !i in
    let utrial, outcome = run_updates_one ~max_endo:config.max_endo ~seed () in
    (match on_trial with Some f -> f !i utrial | None -> ());
    incr ran;
    steps := !steps + List.length utrial.Utrial.ops;
    (match outcome with
     | None -> ()
     | Some ufailure ->
       let ushrunk, ushrunk_failure =
         Shrink.minimize_updates Oracle.run_updates utrial ufailure
       in
       failures := { utrial; ufailure; ushrunk; ushrunk_failure } :: !failures);
    incr i
  done;
  { uran = !ran; usteps = !steps; ufailures = List.rev !failures }

let run ?on_trial config =
  let failures = ref [] in
  let ran = ref 0 in
  let i = ref 0 in
  while !i < config.trials && List.length !failures < config.max_failures do
    let seed = trial_seed ~master:config.seed !i in
    let trial, outcome =
      run_one ~max_endo:config.max_endo ~par_jobs:config.par_jobs
        ~kc_always:config.kc_always ~auto_always:config.auto_always ~seed ()
    in
    (match on_trial with Some f -> f !i trial | None -> ());
    incr ran;
    (match outcome with
     | None -> ()
     | Some failure ->
       let check t =
         Oracle.run ~par_jobs:config.par_jobs ~kc_always:config.kc_always
           ~auto_always:config.auto_always t
       in
       let shrunk, shrunk_failure = Shrink.minimize check trial failure in
       failures := { trial; failure; shrunk; shrunk_failure } :: !failures);
    incr i
  done;
  { ran = !ran; failures = List.rev !failures }
