(** The seeded fuzzing driver behind [shapctl fuzz].

    Trial [i] of a run with master seed [s] is generated from the
    derived seed [trial_seed s i], so any failing trial can be replayed
    in isolation and a fixed-seed corpus replays bit-identically. *)

type config = {
  seed : int;  (** master seed *)
  trials : int;
  max_endo : int;  (** endogenous-fact cap per trial (naive-oracle cost) *)
  par_jobs : int;  (** pool width for the parallel equivalence checks *)
  max_failures : int;  (** stop after this many (shrunk) failures *)
  kc_always : bool;
      (** also cross-check the knowledge-compilation tier on trials
          {e inside} the frontier (it is always checked outside) *)
  auto_always : bool;
      (** also cross-check the solve planner's [`Auto] route on trials
          {e inside} the frontier (it is always checked outside) *)
}

val default : config
(** [{ seed = 0; trials = 100; max_endo = 8; par_jobs = 2; max_failures = 3;
       kc_always = false; auto_always = false }] *)

type failure_report = {
  trial : Trial.t;  (** the trial as generated *)
  failure : Oracle.failure;  (** what it violated *)
  shrunk : Trial.t;  (** the 1-minimal reproducer *)
  shrunk_failure : Oracle.failure;  (** the violation the reproducer shows *)
}

type report = {
  ran : int;  (** trials executed (≤ [trials] when failures stop the run) *)
  failures : failure_report list;
}

val trial_seed : master:int -> int -> int
(** The derived seed of the [i]-th trial. *)

val parse_corpus : string -> int list
(** Parses the contents of a fixed-seed corpus file: one trial seed per
    line, [#] comments and blank lines ignored.
    @raise Invalid_argument on a malformed line. *)

val run_one :
  ?max_endo:int -> ?par_jobs:int -> ?kc_always:bool -> ?auto_always:bool ->
  seed:int -> unit ->
  Trial.t * Oracle.failure option
(** Generate and check a single trial from a derived seed. *)

val run : ?on_trial:(int -> Trial.t -> unit) -> config -> report
(** Runs [config.trials] trials. Each failure is minimized with
    {!Shrink.minimize} before being recorded; the run stops early once
    [config.max_failures] failures have been collected. *)

type ufailure_report = {
  utrial : Utrial.t;  (** the update trial as generated *)
  ufailure : Oracle.failure;  (** what it violated *)
  ushrunk : Utrial.t;  (** the 1-minimal reproducer *)
  ushrunk_failure : Oracle.failure;  (** the violation the reproducer shows *)
}

type ureport = {
  uran : int;  (** update trials executed *)
  usteps : int;  (** total ops replayed across all trials *)
  ufailures : ufailure_report list;
}

val run_updates_one : ?max_endo:int -> seed:int -> unit -> Utrial.t * Oracle.failure option
(** Generate and check a single update-sequence trial from a derived
    seed (same derivation as {!run_one}, so seeds are shared between the
    two corpora). Runs entirely in the calling domain. *)

val run_updates : ?on_trial:(int -> Utrial.t -> unit) -> config -> ureport
(** The update-sequence campaign: [config.trials] trials through
    {!Oracle.run_updates}, failures minimized with
    {!Shrink.minimize_updates}; [config.par_jobs] is unused here since
    the session replay is single-domain. *)
