(** One differential-testing trial: a random aggregate conjunctive query
    with a database small enough for the {!Aggshap_core.Naive} oracle.

    Every trial is fully determined by its seed, and every component is
    restricted to what the [shapctl] command line can express, so a
    failing trial prints as a ready-to-run reproducer. *)

(** A value function expressible as a [shapctl --tau] spec. *)
type tau_spec =
  | Const of string * Aggshap_arith.Rational.t  (** [const:REL:VALUE] *)
  | Id of string * int  (** [id:REL:POS] *)
  | Relu of string * int  (** [relu:REL:POS] *)
  | Gt of string * int * Aggshap_arith.Rational.t  (** [gt:REL:POS:BOUND] *)

val tau_rel : tau_spec -> string
val tau_to_value_fn : tau_spec -> Aggshap_agg.Value_fn.t
val tau_to_cli : tau_spec -> string

type t = {
  seed : int;  (** the seed this trial was generated from *)
  query : Aggshap_cq.Cq.t;
  db : Aggshap_relational.Database.t;
  alpha : Aggshap_agg.Aggregate.t;
  tau : tau_spec;
}

val agg_query : t -> Aggshap_agg.Agg_query.t

val generate : ?max_endo:int -> seed:int -> unit -> t
(** Draws a query (via {!Aggshap_workload.Random_cq}), a joinable
    database (via {!Aggshap_workload.Generate}), an aggregate, and a
    localized value function. [Id]/[Relu]/[Gt] specs are placed only at
    argument positions holding a {e free} variable, which guarantees τ is
    localized on every database. At most [max_endo] (default [8], capped
    at {!Aggshap_core.Game.max_players}) facts stay endogenous; the
    surplus is demoted to exogenous so the naive oracle stays cheap. *)

val to_string : t -> string
(** One-line description (query, aggregate, τ, database sizes). *)

val to_script : t -> string
(** A ready-to-run shell reproducer: writes the database with a heredoc
    and invokes [shapctl solve] with the trial's query, aggregate and τ. *)
