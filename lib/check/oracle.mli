(** The differential-testing oracle: every check a trial must pass.

    For a trial within the aggregate's tractability frontier the oracle
    cross-validates the polynomial dynamic program against the
    {!Aggshap_core.Naive} enumeration and checks the game-theoretic
    axioms; outside the frontier it checks the fallback plumbing
    (deterministic seeded Monte-Carlo, up-front [`Fail]). In both cases
    it checks that every engine configuration — cache on/off, one worker
    vs a pool, batch vs per-fact loop — returns identical exact values. *)

type failure = {
  check : string;  (** short name of the violated check *)
  detail : string;  (** human-readable disagreement *)
}

val failure_to_string : failure -> string

val run :
  ?par_jobs:int -> ?kc_always:bool -> ?auto_always:bool ->
  Trial.t -> failure option
(** First failing check of the trial, or [None] when all pass.
    [par_jobs] (default [2]) is the pool width used by the parallel
    engine-equivalence checks; pass [1] to keep the whole run in the
    calling domain (required while {!Aggshap_core.Tables.fault} is set).
    The knowledge-compilation tier is cross-checked against the naive
    reference on every trial outside the frontier whose aggregate it
    supports; [kc_always] (default [false]) extends that check to trials
    inside the frontier by driving {!Aggshap_lineage.Lineage} directly.
    The solve planner's [`Auto] route is likewise checked bit-identical
    to the naive reference on every trial outside the frontier;
    [auto_always] (default [false]) extends it to every trial.
    Exceptions escaping the system under test are reported as an
    ["exception"] failure rather than propagated. *)

val run_updates : Utrial.t -> failure option
(** Replays the trial's op script through a live
    {!Aggshap_incr.Session}, checking after the initial build and after
    every op that the session's values are bit-identical to a
    from-scratch {!Aggshap_core.Batch.shapley_all} over an independently
    tracked database and τ. Runs entirely in the calling domain (safe
    while a fault is injected); exceptions are reported as
    ["exception"] failures. *)
