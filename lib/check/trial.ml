module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query
module Game = Aggshap_core.Game
module Random_cq = Aggshap_workload.Random_cq
module Generate = Aggshap_workload.Generate

type tau_spec =
  | Const of string * Q.t
  | Id of string * int
  | Relu of string * int
  | Gt of string * int * Q.t

let tau_rel = function
  | Const (rel, _) | Id (rel, _) | Relu (rel, _) | Gt (rel, _, _) -> rel

let tau_to_value_fn = function
  | Const (rel, c) -> Value_fn.const ~rel c
  | Id (rel, pos) -> Value_fn.id ~rel ~pos
  | Relu (rel, pos) -> Value_fn.relu ~rel ~pos
  | Gt (rel, pos, b) -> Value_fn.gt ~rel ~pos b

let tau_to_cli = function
  | Const (rel, c) -> Printf.sprintf "const:%s:%s" rel (Q.to_string c)
  | Id (rel, pos) -> Printf.sprintf "id:%s:%d" rel pos
  | Relu (rel, pos) -> Printf.sprintf "relu:%s:%d" rel pos
  | Gt (rel, pos, b) -> Printf.sprintf "gt:%s:%d:%s" rel pos (Q.to_string b)

type t = {
  seed : int;
  query : Cq.t;
  db : Database.t;
  alpha : Aggregate.t;
  tau : tau_spec;
}

let agg_query t = Agg_query.make t.alpha (tau_to_value_fn t.tau) t.query

(* All (relation, position) pairs whose term is a free variable: τ placed
   there is a function of the answer tuple, hence localized on every
   database. *)
let free_positions q =
  List.concat_map
    (fun (a : Cq.atom) ->
      List.concat
        (List.mapi
           (fun i t ->
             match t with
             | Cq.Var v when Cq.is_free q v -> [ (a.Cq.rel, i) ]
             | _ -> [])
           (Array.to_list a.Cq.terms)))
    q.Cq.body

let aggregates =
  [ Aggregate.Sum; Aggregate.Count; Aggregate.Count_distinct; Aggregate.Min;
    Aggregate.Max; Aggregate.Avg; Aggregate.Median;
    Aggregate.Quantile (Q.of_ints 1 4); Aggregate.Has_duplicates ]

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let cap_endo max_endo db =
  let endo = Database.endogenous db in
  let surplus = List.length endo - max_endo in
  if surplus <= 0 then db
  else
    (* Demote the tail of the (deterministically ordered) endogenous list. *)
    List.fold_left
      (fun acc f -> Database.set_provenance Database.Exogenous f acc)
      db
      (List.filteri (fun i _ -> i >= max_endo) endo)

let generate ?(max_endo = 8) ~seed () =
  let max_endo = min max_endo Game.max_players in
  let rng = Random.State.make [| seed; 0x5eed |] in
  (* Vary the head probability across the whole range so every hierarchy
     class (and both sides of every frontier) shows up. *)
  let head_probability = pick rng [ 0.0; 0.3; 0.6; 1.0 ] in
  let q_config =
    { Random_cq.max_atoms = 3; max_arity = 2; num_vars = 3; head_probability }
  in
  let query =
    Random_cq.generate ~config:q_config ~seed:(Random.State.bits rng) ()
  in
  let db_config =
    { Generate.tuples_per_relation = 2 + Random.State.int rng 3;
      domain = 2 + Random.State.int rng 2;
      exo_fraction = 0.25 }
  in
  let db =
    cap_endo max_endo
      (Generate.random_database ~seed:(Random.State.bits rng) ~config:db_config query)
  in
  let alpha = pick rng aggregates in
  let tau =
    let const () =
      Const (List.hd (Cq.relations query), pick rng [ Q.one; Q.of_int 2; Q.minus_one ])
    in
    match free_positions query with
    | [] -> const ()
    | frees -> (
      let rel, pos = pick rng frees in
      match Random.State.int rng 5 with
      | 0 -> const ()
      | 1 -> Relu (rel, pos)
      | 2 -> Gt (rel, pos, Q.of_int (Random.State.int rng 3))
      | _ -> Id (rel, pos))
  in
  { seed; query; db; alpha; tau }

let db_lines db =
  List.map
    (fun f ->
      match Database.provenance db f with
      | Some Database.Exogenous -> Fact.to_string f ^ " @exo"
      | _ -> Fact.to_string f)
    (Database.facts db)

let to_string t =
  Printf.sprintf "seed %d: %s | %s | tau %s | %d facts (%d endogenous)" t.seed
    (Cq.to_string t.query)
    (Aggregate.to_string t.alpha)
    (tau_to_cli t.tau) (Database.size t.db) (Database.endo_size t.db)

let to_script t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "cat > repro.facts <<'EOF'\n";
  List.iter
    (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    (db_lines t.db);
  Buffer.add_string buf "EOF\n";
  Buffer.add_string buf
    (Printf.sprintf "shapctl solve -q '%s' -d repro.facts -a %s -t %s\n"
       (Cq.to_string t.query)
       (Aggregate.to_string t.alpha)
       (tau_to_cli t.tau));
  Buffer.contents buf
