(** Greedy minimizer for failing trials.

    Repeatedly removes database facts, then query atoms (never the atom
    the value function is localized on), keeping a removal whenever the
    trial still fails the oracle; iterates to a fixpoint. The result is
    1-minimal: removing any single remaining fact or atom makes the
    failure disappear. *)

val minimize :
  (Trial.t -> Oracle.failure option) ->
  Trial.t ->
  Oracle.failure ->
  Trial.t * Oracle.failure
(** [minimize check t f] assumes [check t = Some f] and returns the
    minimized trial together with the failure it still exhibits (which
    may differ from [f] as the instance shrinks). *)

val minimize_updates :
  (Utrial.t -> Oracle.failure option) ->
  Utrial.t ->
  Oracle.failure ->
  Utrial.t * Oracle.failure
(** Same contract for update-sequence trials: repeatedly removes script
    ops, then base-database facts, accepting only removals that keep the
    trial {!Utrial.wellformed} (a delete aimed at a just-removed fact
    would fail for the wrong reason) and still failing; iterates to a
    fixpoint, so the result is 1-minimal over ops and base facts. *)
