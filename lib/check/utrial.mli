(** One update-sequence trial: a within-frontier base trial plus a
    random script of insert/delete/set_tau operations, replayed through
    {!Aggshap_incr.Session} and cross-checked step by step against
    from-scratch batch runs. *)

type t = {
  trial : Trial.t;  (** the initial query/database/aggregate/τ *)
  ops : Aggshap_incr.Update.t list;  (** the update stream, in order *)
}

val generate : ?max_endo:int -> seed:int -> unit -> t
(** Fully determined by [seed]. The base trial is drawn with
    {!Trial.generate} (scanning derived seeds until the query is inside
    the aggregate's frontier); 1–6 ops follow, with deletes aimed at
    facts present at that point of the stream and inserts capped so at
    most [max_endo] (default 8) facts are endogenous at any step. *)

val wellformed : t -> bool
(** Every delete targets a present fact, every [set_tau] relation is an
    atom of the query, and the query is within the frontier — the
    invariant the shrinker must preserve. *)

val to_string : t -> string

val to_script : t -> string
(** Ready-to-run reproducer: database heredoc, update-script heredoc,
    and the [shapctl session] invocation. *)
