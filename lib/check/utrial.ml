module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Value = Aggshap_relational.Value
module Solver = Aggshap_core.Solver
module Update = Aggshap_incr.Update
module Script = Aggshap_incr.Script

type t = {
  trial : Trial.t;
  ops : Update.t list;
}

(* Update trials are cross-checked against from-scratch batch runs, so
   the base query must be inside its aggregate's frontier: scan derived
   seeds until the generated trial is. The scan is deterministic, so a
   trial is still fully determined by its seed. *)
let rec base_trial ?max_endo ~seed i =
  let t = Trial.generate ?max_endo ~seed:(seed + (i * 0x9e3779)) () in
  if Solver.within_frontier t.Trial.alpha t.Trial.query then t
  else base_trial ?max_endo ~seed (i + 1)

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

(* Mirrors the τ placement of {!Trial.generate}: constants anywhere,
   value-dependent specs only at free positions (localized on every
   database, so [set_tau] can never fail localization mid-stream). *)
let random_tau_spec rng (q : Cq.t) =
  let const () =
    Trial.Const (List.hd (Cq.relations q), pick rng [ Q.one; Q.of_int 2; Q.minus_one ])
  in
  let frees =
    List.concat_map
      (fun (a : Cq.atom) ->
        List.concat
          (List.mapi
             (fun i term ->
               match term with
               | Cq.Var v when Cq.is_free q v -> [ (a.Cq.rel, i) ]
               | _ -> [])
             (Array.to_list a.Cq.terms)))
      q.Cq.body
  in
  match frees with
  | [] -> const ()
  | frees -> (
    let rel, pos = pick rng frees in
    match Random.State.int rng 4 with
    | 0 -> const ()
    | 1 -> Trial.Relu (rel, pos)
    | 2 -> Trial.Gt (rel, pos, Q.of_int (Random.State.int rng 3))
    | _ -> Trial.Id (rel, pos))

let random_fact rng (q : Cq.t) =
  let atom = pick rng q.Cq.body in
  Fact.make atom.Cq.rel
    (List.init (Array.length atom.Cq.terms) (fun _ -> Value.Int (Random.State.int rng 4)))

let generate ?(max_endo = 8) ~seed () =
  let trial = base_trial ~max_endo ~seed 0 in
  let rng = Random.State.make [| seed; 0x0bda7e |] in
  let n_ops = 1 + Random.State.int rng 6 in
  let db = ref trial.Trial.db in
  let ops =
    List.init n_ops (fun _ ->
        let op =
          match Random.State.int rng 4 with
          | (0 | 1) when Database.size !db > 0 && Random.State.int rng 3 > 0 ->
            Update.Delete (pick rng (Database.facts !db))
          | 0 | 1 | 2 ->
            let f = random_fact rng trial.Trial.query in
            let prov =
              if Database.endo_size !db >= max_endo || Random.State.int rng 4 = 0
              then Database.Exogenous
              else Database.Endogenous
            in
            Update.Insert (f, prov)
          | _ ->
            let spec = random_tau_spec rng trial.Trial.query in
            Update.Set_tau (Trial.tau_to_value_fn spec, Trial.tau_to_cli spec)
        in
        (match op with
         | Update.Insert (f, prov) -> db := Database.add ~provenance:prov f !db
         | Update.Delete f -> db := Database.remove f !db
         | Update.Set_tau _ -> ());
        op)
  in
  { trial; ops }

(* A trial the session can replay without tripping its own argument
   checks: every delete targets a fact present at that point of the
   stream. The shrinker must preserve this — an op script failing with
   "delete of absent fact" would shadow the disagreement being hunted. *)
let wellformed t =
  Solver.within_frontier t.trial.Trial.alpha t.trial.Trial.query
  && (let db = ref t.trial.Trial.db in
      List.for_all
        (fun op ->
          match op with
          | Update.Insert (f, prov) ->
            db := Database.add ~provenance:prov f !db;
            true
          | Update.Delete f ->
            let present = Database.mem f !db in
            if present then db := Database.remove f !db;
            present
          | Update.Set_tau (vf, _) ->
            List.mem vf.Aggshap_agg.Value_fn.rel (Cq.relations t.trial.Trial.query))
        t.ops)

let to_string t =
  Printf.sprintf "%s | ops: %s" (Trial.to_string t.trial)
    (String.concat "; " (List.map Update.to_string t.ops))

let to_script t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Trial.to_script t.trial);
  Buffer.add_string buf "cat > repro.updates <<'EOF'\n";
  Buffer.add_string buf (Script.to_string t.ops);
  Buffer.add_string buf "EOF\n";
  Buffer.add_string buf
    (Printf.sprintf "shapctl session -q '%s' -d repro.facts -a %s -t %s -u repro.updates\n"
       (Cq.to_string t.trial.Trial.query)
       (Aggshap_agg.Aggregate.to_string t.trial.Trial.alpha)
       (Trial.tau_to_cli t.trial.Trial.tau))
  ;
  Buffer.contents buf
