module Q = Aggshap_arith.Rational
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Value = Aggshap_relational.Value
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query
module Game = Aggshap_core.Game
module Naive = Aggshap_core.Naive
module Solver = Aggshap_core.Solver
module Monte_carlo = Aggshap_core.Monte_carlo

module Plan = Aggshap_cq.Plan
module Lineage = Aggshap_lineage.Lineage

(* Reference computations run on the legacy scan evaluator and the
   rescanning partition: the system under test goes through the
   planned/indexed stack, so every trial doubles as a differential test
   of the two evaluation paths — and an index-maintenance fault
   ([`Stale_index]) cannot corrupt both arms the same way. *)
let with_legacy f =
  let saved = !Plan.enabled in
  Plan.enabled := false;
  Fun.protect ~finally:(fun () -> Plan.enabled := saved) f

type failure = {
  check : string;
  detail : string;
}

let failure_to_string f = Printf.sprintf "%s: %s" f.check f.detail

let fail check fmt = Printf.ksprintf (fun detail -> Some { check; detail }) fmt

(* Run checks in order, stopping at the first failure. *)
let rec first_failure = function
  | [] -> None
  | check :: rest -> (
    match check () with None -> first_failure rest | some -> some)

let exact = function
  | Solver.Exact v -> v
  | Solver.Estimate _ -> invalid_arg "Oracle: expected an exact outcome"

let exact_results results = List.map (fun (f, o) -> (f, exact o)) results

let same_exact_results name reference candidate =
  if
    List.length reference = List.length candidate
    && List.for_all2
         (fun (f1, v1) (f2, v2) -> Fact.equal f1 f2 && Q.equal v1 v2)
         reference candidate
  then None
  else
    let show rs =
      String.concat ", "
        (List.map (fun (f, v) -> Fact.to_string f ^ "=" ^ Q.to_string v) rs)
    in
    fail name "got [%s], expected [%s]" (show candidate) (show reference)

(* A relation name foreign to the trial, for the null-player check. *)
let fresh_relation t =
  let used = Aggshap_cq.Cq.relations t.Trial.query @ Database.relations t.Trial.db in
  let rec go i =
    let name = if i = 0 then "ZzNoise" else Printf.sprintf "ZzNoise%d" i in
    if List.mem name used then go (i + 1) else name
  in
  go 0

(* u(C ∪ i) = u(C ∪ j) for every coalition C avoiding both players. *)
let symmetric_players (g : Game.t) i j =
  let bi = 1 lsl i and bj = 1 lsl j in
  let ok = ref true in
  for mask = 0 to (1 lsl g.Game.n) - 1 do
    if mask land bi = 0 && mask land bj = 0 && !ok then
      if not (Q.equal (g.Game.utility (mask lor bi)) (g.Game.utility (mask lor bj)))
      then ok := false
  done;
  !ok

let run_checks ~par_jobs ~kc_always ~auto_always (t : Trial.t) =
  let a = Trial.agg_query t in
  let db = t.db in
  let endo = Database.endogenous db in
  let n = List.length endo in
  if n = 0 then begin
    (* No game to play; still make sure evaluation does not crash. *)
    ignore (Agg_query.eval a db);
    None
  end
  else begin
    let players, game = with_legacy (fun () -> Naive.game a db) in
    (* Every utility evaluation of the naive game — the reference for
       agreement, efficiency and symmetry — goes through the legacy
       evaluator, whatever check triggers it. *)
    let game =
      { game with
        Game.utility = (fun mask -> with_legacy (fun () -> game.Game.utility mask)) }
    in
    let reference = Game.shapley_all game in
    let within = Solver.within_frontier a.Agg_query.alpha a.Agg_query.query in
    let solve ?(a = a) ?(db = db) f =
      exact (fst (Solver.shapley ~fallback:`Naive a db f))
    in
    (* The per-fact system-under-test values: the DP within the frontier,
       the fallback plumbing outside it. *)
    let sut = lazy (Array.map (fun f -> solve f) players) in
    let check_oracle_sanity () =
      (* The oracle must satisfy efficiency by itself before it is
         entitled to judge anybody else. *)
      let gap = Game.efficiency_gap game in
      if Q.is_zero gap then None
      else fail "oracle-efficiency" "Game.efficiency_gap = %s on the naive game" (Q.to_string gap)
    in
    let check_agreement () =
      let rec go i =
        if i >= Array.length players then None
        else
          let v = (Lazy.force sut).(i) in
          if Q.equal v reference.(i) then go (i + 1)
          else
            fail
              (if within then "dp-vs-naive" else "fallback-vs-naive")
              "fact %s: solver=%s, naive=%s"
              (Fact.to_string players.(i))
              (Q.to_string v) (Q.to_string reference.(i))
      in
      go 0
    in
    let check_efficiency () =
      let total = Array.fold_left Q.add Q.zero (Lazy.force sut) in
      let exo = Database.filter (fun _ p -> p = Database.Exogenous) db in
      let expected =
        with_legacy (fun () -> Q.sub (Agg_query.eval a db) (Agg_query.eval a exo))
      in
      if Q.equal total expected then None
      else
        fail "efficiency" "Σφ = %s, v(N) − v(∅) = %s" (Q.to_string total)
          (Q.to_string expected)
    in
    let check_null_player () =
      (* A fact of a relation foreign to the query changes nothing: its
         own value is 0 and everybody else's value is untouched. Only
         meaningful against the DP — outside the frontier the solver and
         the reference are the same enumeration. *)
      if (not within) || n >= Game.max_players then None
      else begin
        let noise = Fact.make (fresh_relation t) [ Value.Int 0 ] in
        let db' = Database.add noise db in
        let v_noise = solve ~db:db' noise in
        if not (Q.is_zero v_noise) then
          fail "null-player" "noise fact %s got value %s" (Fact.to_string noise)
            (Q.to_string v_noise)
        else
          let rec go i =
            if i >= Array.length players then None
            else
              let v' = solve ~db:db' players.(i) in
              if Q.equal v' (Lazy.force sut).(i) then go (i + 1)
              else
                fail "null-player" "adding %s moved %s from %s to %s"
                  (Fact.to_string noise)
                  (Fact.to_string players.(i))
                  (Q.to_string (Lazy.force sut).(i))
                  (Q.to_string v')
          in
          go 0
      end
    in
    let check_symmetry () =
      if not within then None
      else begin
      let failure = ref None in
      for i = 0 to Array.length players - 1 do
        for j = i + 1 to Array.length players - 1 do
          if !failure = None && symmetric_players game i j then begin
            let vi = (Lazy.force sut).(i) and vj = (Lazy.force sut).(j) in
            if not (Q.equal vi vj) then
              failure :=
                fail "symmetry" "interchangeable facts %s (%s) and %s (%s)"
                  (Fact.to_string players.(i))
                  (Q.to_string vi)
                  (Fact.to_string players.(j))
                  (Q.to_string vj)
          end
        done
      done;
      !failure
      end
    in
    let check_sum_linearity () =
      (* Sum is linear in τ: φ computed for τ + 1 must equal the sum of
         the values computed for τ and for the constant 1 separately. *)
      if (not within) || a.Agg_query.alpha <> Aggregate.Sum then None
      else begin
        let rel = Trial.tau_rel t.tau in
        let tau1 = Trial.tau_to_value_fn t.tau in
        let tau2 = Value_fn.const ~rel Q.one in
        let tau12 =
          Value_fn.custom ~rel ~descr:"tau+1" (fun args ->
              Q.add (Value_fn.apply tau1 args) (Value_fn.apply tau2 args))
        in
        let a1 = a in
        let a2 = Agg_query.make Aggregate.Sum tau2 t.query in
        let a12 = Agg_query.make Aggregate.Sum tau12 t.query in
        let rec go i =
          if i >= Array.length players then None
          else
            let f = players.(i) in
            let v1 = solve ~a:a1 f and v2 = solve ~a:a2 f and v12 = solve ~a:a12 f in
            if Q.equal v12 (Q.add v1 v2) then go (i + 1)
            else
              fail "sum-linearity" "fact %s: φ(τ+1)=%s but φ(τ)+φ(1)=%s+%s"
                (Fact.to_string f) (Q.to_string v12) (Q.to_string v1)
                (Q.to_string v2)
        in
        go 0
      end
    in
    let per_fact_list =
      lazy
        (List.map2 (fun f v -> (f, v)) (Array.to_list players)
           (Array.to_list (Lazy.force sut)))
    in
    let batch ~jobs ~cache () =
      exact_results (fst (Solver.shapley_all ~fallback:`Naive ~jobs ~cache a db))
    in
    let check_engine_equivalence () =
      first_failure
        [ (fun () ->
            same_exact_results "batch-vs-per-fact(jobs=1,cache=on)"
              (Lazy.force per_fact_list) (batch ~jobs:1 ~cache:true ()));
          (fun () ->
            same_exact_results "batch-vs-per-fact(jobs=1,cache=off)"
              (Lazy.force per_fact_list) (batch ~jobs:1 ~cache:false ()));
          (fun () ->
            if par_jobs <= 1 then None
            else
              same_exact_results
                (Printf.sprintf "batch-vs-per-fact(jobs=%d,cache=on)" par_jobs)
                (Lazy.force per_fact_list)
                (batch ~jobs:par_jobs ~cache:true ()));
        ]
    in
    let check_knowledge_compilation () =
      (* The knowledge-compilation tier must agree with the naive
         reference to the last bit wherever it applies: on every trial
         outside the frontier with an event-decomposable aggregate
         (through the solver's dispatch, exactly as users reach it), and
         — under [kc_always] — inside the frontier too, where the
         lineage pipeline is driven directly since the solver would pick
         the polynomial DP. *)
      if not (Lineage.supports a.Agg_query.alpha) then None
      else if not within then
        same_exact_results "kc-vs-naive" (Lazy.force per_fact_list)
          (exact_results
             (fst (Solver.shapley_all ~fallback:`Knowledge_compilation ~jobs:1 a db)))
      else if kc_always then
        same_exact_results "kc-vs-naive" (Lazy.force per_fact_list)
          (Lineage.shapley_all a db)
      else None
    in
    let check_auto () =
      (* The solve planner never trades exactness for speed: whatever
         route [`Auto] picks — the frontier DP, knowledge compilation,
         or naive enumeration — must be bit-identical to the naive
         reference. Always checked outside the frontier (where the
         planner actually chooses); [auto_always] extends it to every
         trial, DP dispatch included. *)
      if within && not auto_always then None
      else
        same_exact_results "auto-vs-naive" (Lazy.force per_fact_list)
          (exact_results
             (fst (Solver.shapley_all ~fallback:`Auto ~jobs:1 a db)))
    in
    let check_fail_up_front () =
      if within then None
      else begin
        (* `Fail must raise before fanning out, and report no partial
           results. *)
        match Solver.shapley_all ~fallback:`Fail ~jobs:1 a db with
        | _ -> fail "fail-fan-out" "shapley_all ~fallback:`Fail returned instead of raising"
        | exception Invalid_argument _ -> None
      end
    in
    let mc_estimates ~jobs () =
      List.map
        (fun (f, o) ->
          match o with
          | Solver.Estimate e -> (f, e)
          | Solver.Exact _ -> invalid_arg "Oracle: expected an estimate")
        (fst
           (Solver.shapley_all ~fallback:(`Monte_carlo 16) ~mc_seed:t.seed ~jobs a db))
    in
    let same_estimates name reference candidate =
      if
        List.for_all2
          (fun (f1, (e1 : Monte_carlo.estimate)) (f2, e2) ->
            Fact.equal f1 f2 && e1.Monte_carlo.mean = e2.Monte_carlo.mean
            && e1.Monte_carlo.std_error = e2.Monte_carlo.std_error
            && e1.Monte_carlo.samples = e2.Monte_carlo.samples)
          reference candidate
      then None
      else fail name "seeded Monte-Carlo estimates differ between runs"
    in
    let check_mc_reproducible () =
      if within then None
      else begin
        let first = mc_estimates ~jobs:1 () in
        first_failure
          [ (fun () -> same_estimates "mc-seed-reproducible" first (mc_estimates ~jobs:1 ()));
            (fun () ->
              if par_jobs <= 1 then None
              else same_estimates "mc-seed-jobs-invariant" first (mc_estimates ~jobs:par_jobs ()));
          ]
      end
    in
    first_failure
      [ check_oracle_sanity; check_agreement; check_efficiency; check_null_player;
        check_symmetry; check_sum_linearity; check_engine_equivalence;
        check_knowledge_compilation; check_auto; check_fail_up_front;
        check_mc_reproducible ]
  end

let run ?(par_jobs = 2) ?(kc_always = false) ?(auto_always = false) t =
  let endo = Database.endo_size t.Trial.db in
  if endo > Game.max_players then
    fail "oracle-limit" "%d endogenous facts exceed the naive oracle's cap of %d" endo
      Game.max_players
  else
    try run_checks ~par_jobs ~kc_always ~auto_always t
    with e -> fail "exception" "%s" (Printexc.to_string e)

module Batch = Aggshap_core.Batch
module Session = Aggshap_incr.Session
module Update = Aggshap_incr.Update

(* Replay the op script through one live session, cross-checking every
   step against a from-scratch batch over an independently maintained
   copy of the database and query — so a session that mis-tracks its own
   state disagrees with the reference instead of dragging it along. *)
let run_update_checks (u : Utrial.t) =
  let t = u.Utrial.trial in
  let a = ref (Trial.agg_query t) in
  let db = ref t.Trial.db in
  let session = Session.open_ ~jobs:1 !a !db in
  let check_step step =
    (* The from-scratch reference solve runs on the legacy evaluation
       stack: the independently rebuilt [!db] never shares index state
       (or index bugs) with the session's incrementally maintained
       database. *)
    let reference = with_legacy (fun () -> fst (Batch.shapley_all ~jobs:1 !a !db)) in
    let got = Session.shapley_all session in
    same_exact_results (Printf.sprintf "session-vs-batch(step %d)" step) reference got
  in
  let rec go step = function
    | [] -> None
    | op :: rest -> (
      (match op with
       | Update.Insert (f, prov) -> db := Database.add ~provenance:prov f !db
       | Update.Delete f -> db := Database.remove f !db
       | Update.Set_tau (vf, _) ->
         a := Agg_query.make !a.Agg_query.alpha vf !a.Agg_query.query);
      Session.apply session op;
      match check_step step with
      | Some failure -> Some failure
      | None -> go (step + 1) rest)
  in
  (match check_step 0 with Some failure -> Some failure | None -> go 1 u.Utrial.ops)

let run_updates (u : Utrial.t) =
  try run_update_checks u
  with e -> fail "exception" "%s" (Printexc.to_string e)
