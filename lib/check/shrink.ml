module Cq = Aggshap_cq.Cq
module Database = Aggshap_relational.Database

(* Dropping an atom narrows the head to the variables that still occur
   and discards the facts of the removed relation. The τ-atom must stay:
   the value function would otherwise dangle. *)
let drop_atom (t : Trial.t) rel =
  if String.equal rel (Trial.tau_rel t.tau) then None
  else begin
    let body = List.filter (fun (a : Cq.atom) -> not (String.equal a.Cq.rel rel)) t.query.Cq.body in
    if body = [] then None
    else begin
      let remaining_vars = List.concat_map Cq.atom_vars body in
      let head = List.filter (fun v -> List.mem v remaining_vars) t.query.Cq.head in
      match Cq.make ~name:t.query.Cq.name ~head body with
      | q ->
        let db, _ = Database.restrict_relations (Cq.relations q) t.db in
        Some { t with query = q; db }
      | exception Invalid_argument _ -> None
    end
  end

(* Greedy descent: accept the first candidate that still fails, restart
   from it; stop when no single removal keeps the trial failing. *)
let rec descend check candidates_of t f =
  let rec scan = function
    | [] -> (t, f)
    | candidate :: rest -> (
      match candidate t with
      | None -> scan rest
      | Some t' -> (
        match check t' with
        | Some f' -> descend check candidates_of t' f'
        | None -> scan rest))
  in
  scan (candidates_of t)

let fact_candidates (t : Trial.t) =
  List.map
    (fun fact (t : Trial.t) -> Some { t with db = Database.remove fact t.db })
    (Database.facts t.db)

let atom_candidates (t : Trial.t) =
  List.map
    (fun (a : Cq.atom) (t : Trial.t) -> drop_atom t a.Cq.rel)
    t.query.Cq.body

(* Update-trial candidates: drop one op, or one base-database fact —
   whenever the result is still wellformed (a delete aimed at a fact the
   shrink just removed would fail for the wrong reason). *)
let op_candidates (u : Utrial.t) =
  List.mapi
    (fun i _ (u : Utrial.t) ->
      let ops = List.filteri (fun j _ -> j <> i) u.Utrial.ops in
      let u' = { u with Utrial.ops } in
      if Utrial.wellformed u' then Some u' else None)
    u.Utrial.ops

let base_fact_candidates (u : Utrial.t) =
  List.map
    (fun fact (u : Utrial.t) ->
      let trial =
        { u.Utrial.trial with Trial.db = Database.remove fact u.Utrial.trial.Trial.db }
      in
      let u' = { u with Utrial.trial } in
      if Utrial.wellformed u' then Some u' else None)
    (Database.facts u.Utrial.trial.Trial.db)

let minimize_updates check u f =
  (* Ops first — a shorter script usually un-blocks base facts that only
     existed to be deleted — then base facts; iterate to fixpoint. *)
  let step (u, f) =
    let u, f = descend check op_candidates u f in
    descend check base_fact_candidates u f
  in
  let rec fixpoint (u, f) =
    let u', f' = step (u, f) in
    if List.length u'.Utrial.ops = List.length u.Utrial.ops
       && Database.size u'.Utrial.trial.Trial.db = Database.size u.Utrial.trial.Trial.db
    then (u', f')
    else fixpoint (u', f')
  in
  fixpoint (u, f)

let minimize check t f =
  (* Facts first (cheap, large search space), then atoms, then facts
     again in case an atom removal unlocked more: iterate to fixpoint. *)
  let step (t, f) =
    let t, f = descend check fact_candidates t f in
    descend check atom_candidates t f
  in
  let rec fixpoint (t, f) =
    let t', f' = step (t, f) in
    if Database.size t'.Trial.db = Database.size t.Trial.db
       && List.length t'.Trial.query.Cq.body = List.length t.Trial.query.Cq.body
    then (t', f')
    else fixpoint (t', f')
  in
  fixpoint (t, f)
