module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Decompose = Aggshap_cq.Decompose
module Fact = Aggshap_relational.Fact
module Database = Aggshap_relational.Database
module Aggregate = Aggshap_agg.Aggregate
module Agg_query = Aggshap_agg.Agg_query
module Batch = Aggshap_core.Batch
module Boolean_dp = Aggshap_core.Boolean_dp
module Sum_count = Aggshap_core.Sum_count
module Frontier = Aggshap_core.Frontier
module Memo = Aggshap_core.Memo
module Tables = Aggshap_core.Tables

type stats = {
  steps : int;
  games_computed : int;
  games_reused : int;
  full_recomputes : int;
  tables : Memo.stats;
}

let reuse_ratio s =
  let total = s.games_computed + s.games_reused in
  if total = 0 then None else Some (float_of_int s.games_reused /. float_of_int total)

let stats_to_string s =
  let ratio =
    match reuse_ratio s with
    | None -> "n/a"
    | Some r -> Printf.sprintf "%.1f%%" (100.0 *. r)
  in
  Printf.sprintf
    "steps=%d games=%d computed/%d reused (reuse %s) flushes=%d tables=%s" s.steps
    s.games_computed s.games_reused ratio s.full_recomputes
    (Memo.stats_to_string s.tables)

(* One membership game — one answer tuple of the Sum/Count query —
   restricted to the facts matching its atoms. Everything outside that
   set is a null player of the game, so the per-fact contributions
   depend on nothing else and stay valid until an update touches a
   matching fact. Keyed by the canonical grounded-query string. *)
type game_entry = {
  mq : Cq.t;
  mutable dirty : bool;
  mutable contribs : (Fact.t * Q.t) list;
}

type lin = {
  games : (string, game_entry) Hashtbl.t;
  bool_memo : Boolean_dp.memo;
      (* shared across games and steps; its (sub-query, block
         fingerprint) keys never go stale under updates *)
}

type gen = {
  mutable memo : Batch.memo;
  mutable memo_fp : string;
}

type engine =
  | Linear of lin  (* Sum/Count: per-answer games, dirty-set invalidation *)
  | Generic of gen  (* the other families: persistent cross-run batch memo *)

type t = {
  mutable a : Agg_query.t;
  mutable db : Database.t;
  jobs : int;
  engine : engine;
  mutable steps : int;
  mutable games_computed : int;
  mutable games_reused : int;
  mutable full_recomputes : int;
}

let open_ ?(jobs = 1) (a : Agg_query.t) db =
  if not (Frontier.within a.alpha a.query) then
    invalid_arg "Incr.Session: query is outside the tractability frontier";
  let engine =
    match a.alpha with
    | Aggregate.Sum | Aggregate.Count ->
      Linear
        { games = Hashtbl.create 256; bool_memo = Boolean_dp.create_memo () }
    | _ ->
      Generic { memo = Batch.create_memo a; memo_fp = Batch.fingerprint_of a }
  in
  { a; db; jobs = max 1 jobs; engine; steps = 0; games_computed = 0;
    games_reused = 0; full_recomputes = 0 }

let query t = t.a
let database t = t.db

let matches_game mq f =
  List.exists (fun atom -> Decompose.matches atom [] f) mq.Cq.body

(* Mark every game whose atoms can see [f] dirty. Under the
   [`Stale_block] fault, the first matching game (in key order, for
   deterministic replay) keeps its cached contributions — exactly the
   skipped-invalidation bug class the differential oracle must catch. *)
let invalidate lin f =
  let matched = ref [] in
  Hashtbl.iter
    (fun key e -> if (not e.dirty) && matches_game e.mq f then matched := (key, e) :: !matched)
    lin.games;
  let matched = List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2) !matched in
  let matched =
    match (Tables.current_fault (), matched) with
    | `Stale_block, _ :: rest -> rest
    | _, all -> all
  in
  List.iter (fun (_, e) -> e.dirty <- true) matched

let apply t u =
  t.steps <- t.steps + 1;
  match u with
  | Update.Insert (f, prov) ->
    t.db <- Database.add ~provenance:prov f t.db;
    (match t.engine with Linear lin -> invalidate lin f | Generic _ -> ())
  | Update.Delete f ->
    if not (Database.mem f t.db) then
      invalid_arg ("Incr.Session: delete of absent fact " ^ Fact.to_string f);
    t.db <- Database.remove f t.db;
    (match t.engine with Linear lin -> invalidate lin f | Generic _ -> ())
  | Update.Set_tau (vf, _) ->
    let a = Agg_query.make t.a.Agg_query.alpha vf t.a.Agg_query.query in
    t.a <- a;
    (match t.engine with
     | Linear _ ->
       (* Membership games do not depend on τ: only the per-answer
          weights change, and those are re-derived on every read. *)
       ()
     | Generic g ->
       (* τ is outside the DP-table cache key, so a τ change must flush
          the memo — except under the [`Stale_block] fault, which skips
          the flush (the fingerprint guard in Batch then refuses the
          stale memo). *)
       let fp = Batch.fingerprint_of a in
       if fp <> g.memo_fp && Tables.current_fault () <> `Stale_block then begin
         g.memo <- Batch.create_memo a;
         g.memo_fp <- fp;
         t.full_recomputes <- t.full_recomputes + 1
       end)

(* The game restricted to its matching facts: identical Shapley values
   (a fact outside every atom is a null player, and null players change
   nobody's value), at the cost of the block it lives in instead of the
   whole database. *)
let compute_game t lin mq =
  let relevant, _pad = Decompose.relevant_part mq t.db in
  List.map
    (fun f -> (f, Boolean_dp.shapley ~memo:lin.bool_memo mq relevant f))
    (Database.endogenous relevant)

let shapley_all t =
  match t.engine with
  | Generic g -> fst (Batch.shapley_all ~jobs:t.jobs ~memo:g.memo t.a t.db)
  | Linear lin ->
    let games = Sum_count.membership_games t.a t.db in
    let acc : (Fact.t, Q.t) Hashtbl.t = Hashtbl.create 256 in
    List.iter
      (fun (mq, weight) ->
        let key = Cq.to_string mq in
        let entry =
          match Hashtbl.find_opt lin.games key with
          | Some e -> e
          | None ->
            let e = { mq; dirty = true; contribs = [] } in
            Hashtbl.add lin.games key e;
            e
        in
        if entry.dirty then begin
          entry.contribs <- compute_game t lin entry.mq;
          entry.dirty <- false;
          t.games_computed <- t.games_computed + 1
        end
        else t.games_reused <- t.games_reused + 1;
        List.iter
          (fun (f, v) ->
            let prev = Option.value (Hashtbl.find_opt acc f) ~default:Q.zero in
            Hashtbl.replace acc f (Q.add prev (Q.mul weight v)))
          entry.contribs)
      games;
    List.map
      (fun f -> (f, Option.value (Hashtbl.find_opt acc f) ~default:Q.zero))
      (Database.endogenous t.db)

let stats t =
  let tables =
    match t.engine with
    | Linear lin -> Boolean_dp.memo_stats lin.bool_memo
    | Generic g -> Batch.memo_stats g.memo
  in
  { steps = t.steps; games_computed = t.games_computed;
    games_reused = t.games_reused; full_recomputes = t.full_recomputes; tables }
