module Q = Aggshap_arith.Rational
module Parser = Aggshap_cq.Parser
module Value_fn = Aggshap_agg.Value_fn

let parse_pos s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> Ok n
  | Some _ | None ->
    Error (Printf.sprintf "malformed position %S (expected a non-negative integer)" s)

let parse_rational what s =
  match Q.of_string s with
  | q -> Ok q
  | exception (Invalid_argument _ | Division_by_zero) ->
    Error (Printf.sprintf "malformed %s %S (expected an integer or P/Q rational)" what s)

(* Same grammar as shapctl --tau; localization of the relation on the
   query is checked when the session applies the op, not here. *)
let parse_tau spec =
  let ( let* ) = Result.bind in
  match String.split_on_char ':' spec with
  | [ "id"; rel; pos ] ->
    let* pos = parse_pos pos in
    Ok (Value_fn.id ~rel ~pos)
  | [ "relu"; rel; pos ] ->
    let* pos = parse_pos pos in
    Ok (Value_fn.relu ~rel ~pos)
  | [ "gt"; rel; pos; bound ] ->
    let* pos = parse_pos pos in
    let* bound = parse_rational "bound" bound in
    Ok (Value_fn.gt ~rel ~pos bound)
  | [ "const"; rel; value ] ->
    let* value = parse_rational "value" value in
    Ok (Value_fn.const ~rel value)
  | _ -> Error (Printf.sprintf "cannot parse value function spec %S" spec)

let split_op line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    ( String.sub line 0 i,
      String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let parse_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match String.trim line with
  | "" -> Ok None
  | line -> (
    let op, arg = split_op line in
    match op with
    | "insert" when arg <> "" -> (
      match Parser.parse_fact arg with
      | Ok (f, prov) -> Ok (Some (Update.Insert (f, prov)))
      | Error msg -> Error msg)
    | "delete" when arg <> "" -> (
      match Parser.parse_fact arg with
      | Ok (f, Aggshap_relational.Database.Endogenous) -> Ok (Some (Update.Delete f))
      | Ok (_, Aggshap_relational.Database.Exogenous) ->
        Error "delete takes a bare fact (no @exo/@endo marker)"
      | Error msg -> Error msg)
    | "set_tau" when arg <> "" -> (
      match parse_tau arg with
      | Ok vf -> Ok (Some (Update.Set_tau (vf, arg)))
      | Error msg -> Error msg)
    | "insert" | "delete" | "set_tau" ->
      Error (Printf.sprintf "%s needs an argument" op)
    | _ ->
      Error
        (Printf.sprintf "unknown update %S (expected insert, delete, or set_tau)" op))

let parse contents =
  let lines = String.split_on_char '\n' contents in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line line with
      | Ok None -> go (lineno + 1) acc rest
      | Ok (Some u) -> go (lineno + 1) ((lineno, u) :: acc) rest
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 [] lines

let to_string ops =
  String.concat "" (List.map (fun u -> Update.to_string u ^ "\n") ops)
