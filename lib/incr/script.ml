module Q = Aggshap_arith.Rational
module Parser = Aggshap_cq.Parser
module Value_fn = Aggshap_agg.Value_fn

let parse_pos s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> Ok n
  | Some _ | None ->
    Error (Printf.sprintf "malformed position %S (expected a non-negative integer)" s)

let parse_rational what s =
  match Q.of_string s with
  | q -> Ok q
  | exception (Invalid_argument _ | Division_by_zero) ->
    Error (Printf.sprintf "malformed %s %S (expected an integer or P/Q rational)" what s)

(* Same grammar as shapctl --tau; localization of the relation on the
   query is checked when the session applies the op, not here. *)
let parse_tau spec =
  let ( let* ) = Result.bind in
  match String.split_on_char ':' spec with
  | [ "id"; rel; pos ] ->
    let* pos = parse_pos pos in
    Ok (Value_fn.id ~rel ~pos)
  | [ "relu"; rel; pos ] ->
    let* pos = parse_pos pos in
    Ok (Value_fn.relu ~rel ~pos)
  | [ "gt"; rel; pos; bound ] ->
    let* pos = parse_pos pos in
    let* bound = parse_rational "bound" bound in
    Ok (Value_fn.gt ~rel ~pos bound)
  | [ "const"; rel; value ] ->
    let* value = parse_rational "value" value in
    Ok (Value_fn.const ~rel value)
  | _ -> Error (Printf.sprintf "cannot parse value function spec %S" spec)

let split_op line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    ( String.sub line 0 i,
      String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let parse_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match String.trim line with
  | "" -> Ok None
  | line -> (
    let op, arg = split_op line in
    match op with
    | "insert" when arg <> "" -> (
      match Parser.parse_fact arg with
      | Ok (f, prov) -> Ok (Some (Update.Insert (f, prov)))
      | Error msg -> Error msg)
    | "delete" when arg <> "" -> (
      match Parser.parse_fact arg with
      | Ok (f, Aggshap_relational.Database.Endogenous) -> Ok (Some (Update.Delete f))
      | Ok (_, Aggshap_relational.Database.Exogenous) ->
        Error "delete takes a bare fact (no @exo/@endo marker)"
      | Error msg -> Error msg)
    | "set_tau" when arg <> "" -> (
      match parse_tau arg with
      | Ok vf -> Ok (Some (Update.Set_tau (vf, arg)))
      | Error msg -> Error msg)
    | "insert" | "delete" | "set_tau" ->
      Error (Printf.sprintf "%s needs an argument" op)
    | _ ->
      Error
        (Printf.sprintf "unknown update %S (expected insert, delete, or set_tau)" op))

(* Incremental line reader. Scripts and wire streams arrive in chunks
   (a file read, a socket [recv]); the reader buffers partial lines
   across chunks, strips [\r\n] endings, and — crucially — surfaces the
   final line even when the stream ends without a trailing newline.
   Dropping that line silently is exactly the bug class a line-oriented
   protocol must not have: the request (or update) is acknowledged by
   exit code 0 but never applied. Both [parse] below and the server's
   request loop read through this one reader. *)
module Reader = struct
  type t = { buf : Buffer.t; mutable closed : bool }

  let create () = { buf = Buffer.create 256; closed = false }

  let strip_cr line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

  let feed t ?(off = 0) ?len chunk =
    if t.closed then invalid_arg "Script.Reader.feed: reader is closed";
    let len = match len with Some l -> l | None -> String.length chunk - off in
    if off < 0 || len < 0 || off + len > String.length chunk then
      invalid_arg "Script.Reader.feed: offset/length out of bounds";
    let lines = ref [] in
    for i = off to off + len - 1 do
      match chunk.[i] with
      | '\n' ->
        lines := strip_cr (Buffer.contents t.buf) :: !lines;
        Buffer.clear t.buf
      | c -> Buffer.add_char t.buf c
    done;
    List.rev !lines

  let close t =
    if t.closed then None
    else begin
      t.closed <- true;
      if Buffer.length t.buf = 0 then None
      else begin
        let line = strip_cr (Buffer.contents t.buf) in
        Buffer.clear t.buf;
        Some line
      end
    end

  let pending t = Buffer.length t.buf > 0
end

let lines contents =
  let r = Reader.create () in
  let complete = Reader.feed r contents in
  match Reader.close r with None -> complete | Some last -> complete @ [ last ]

let parse contents =
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line line with
      | Ok None -> go (lineno + 1) acc rest
      | Ok (Some u) -> go (lineno + 1) ((lineno, u) :: acc) rest
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 [] (lines contents)

let to_string ops =
  String.concat "" (List.map (fun u -> Update.to_string u ^ "\n") ops)
