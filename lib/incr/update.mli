(** One update of a live solver session.

    The three operations a stream of changes is made of: adding a fact
    (with its provenance), removing a fact, and re-weighting the answers
    by a new value function τ. The query itself never changes — a query
    change is a new {!Session}. *)

type t =
  | Insert of Aggshap_relational.Fact.t * Aggshap_relational.Database.provenance
  | Delete of Aggshap_relational.Fact.t
  | Set_tau of Aggshap_agg.Value_fn.t * string
      (** The value function together with the [shapctl --tau]-style spec
          it was parsed from (used for printing and reproducers). *)

val to_string : t -> string
(** The update-script line for the operation; {!Script.parse} inverts it. *)
