module Fact = Aggshap_relational.Fact
module Database = Aggshap_relational.Database
module Value_fn = Aggshap_agg.Value_fn

type t =
  | Insert of Fact.t * Database.provenance
  | Delete of Fact.t
  | Set_tau of Value_fn.t * string

let to_string = function
  | Insert (f, Database.Endogenous) -> "insert " ^ Fact.to_string f
  | Insert (f, Database.Exogenous) -> "insert " ^ Fact.to_string f ^ " @exo"
  | Delete f -> "delete " ^ Fact.to_string f
  | Set_tau (_, spec) -> "set_tau " ^ spec
