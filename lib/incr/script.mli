(** Update scripts: the textual format behind [shapctl session].

    One operation per line, [#] comments and blank lines ignored:
    {v
    insert R(4, 10)
    insert S(30) @exo
    delete R(1, 10)
    set_tau id:R:0
    v}
    Facts use the database-file syntax of {!Aggshap_cq.Parser}; [set_tau]
    takes a [shapctl --tau]-style spec ([id:REL:POS], [relu:REL:POS],
    [gt:REL:POS:BOUND], [const:REL:VALUE]). *)

val parse : string -> ((int * Update.t) list, string) result
(** Parses a whole script, pairing each operation with its 1-based line
    number. Errors read ["line %d: %s"]. *)

val parse_line : string -> (Update.t option, string) result
(** [Ok None] for blank/comment lines. *)

val parse_tau : string -> (Aggshap_agg.Value_fn.t, string) result

val to_string : Update.t list -> string
(** One line per op; [parse] inverts it. *)
