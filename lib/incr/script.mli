(** Update scripts: the textual format behind [shapctl session].

    One operation per line, [#] comments and blank lines ignored:
    {v
    insert R(4, 10)
    insert S(30) @exo
    delete R(1, 10)
    set_tau id:R:0
    v}
    Facts use the database-file syntax of {!Aggshap_cq.Parser}; [set_tau]
    takes a [shapctl --tau]-style spec ([id:REL:POS], [relu:REL:POS],
    [gt:REL:POS:BOUND], [const:REL:VALUE]). *)

(** Incremental, chunk-fed line splitting shared by {!parse} and the
    server's socket request loop. [\r\n] endings are stripped, and a
    final line without a trailing newline is {e not} dropped: it is
    returned by {!Reader.close} when the stream ends. *)
module Reader : sig
  type t

  val create : unit -> t

  val feed : t -> ?off:int -> ?len:int -> string -> string list
  (** Appends [chunk.[off .. off+len-1]] (default: all of [chunk]) to
      the buffered partial line and returns the newly completed lines,
      in order, without their line terminators.
      @raise Invalid_argument after {!close}, or on a bad substring. *)

  val close : t -> string option
  (** Ends the stream: the final unterminated line if the last chunk
      did not end in a newline, [None] otherwise (idempotent). *)

  val pending : t -> bool
  (** Is a partial line currently buffered? *)
end

val lines : string -> string list
(** All lines of [contents] through a {!Reader}: [\r\n]-aware, final
    unterminated line included. *)

val parse : string -> ((int * Update.t) list, string) result
(** Parses a whole script, pairing each operation with its 1-based line
    number. Errors read ["line %d: %s"]. A final operation on an
    unterminated last line is parsed like any other (see {!Reader}). *)

val parse_line : string -> (Update.t option, string) result
(** [Ok None] for blank/comment lines. *)

val parse_tau : string -> (Aggshap_agg.Value_fn.t, string) result

val to_string : Update.t list -> string
(** One line per op; [parse] inverts it. *)
