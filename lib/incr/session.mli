(** A live solver session: exact all-facts Shapley values maintained
    incrementally under database updates.

    The batch engine's premise — a fact only perturbs the hierarchy
    block it lives in — applies across time as well: an update only
    dirties the DP state it touches. A session keeps that state alive
    between updates and recomputes only the dirty part:

    - {b Sum/Count} (the [Linear] engine): by linearity the Shapley
      value is a weighted sum over per-answer membership games, and each
      game restricted to the facts matching its atoms has the same exact
      values (everything else is a null player). The session caches the
      per-fact contributions of every game; [insert]/[delete] dirty only
      the games whose atoms match the touched fact, [set_tau] dirties
      nothing (the games are τ-independent — only the answer weights,
      re-derived on every read, change). The Boolean sub-tables are
      shared across games {e and} steps through the content-addressed
      {!Aggshap_core.Memo}.
    - {b Min/Max, Count-distinct, Avg/Median/Quantile, Has-duplicates}
      (the [Generic] engine): a persistent {!Aggshap_core.Batch.memo}
      threaded through the family's DP via its [?memo] seam. Updated
      blocks change their content fingerprint, so invalidation is
      automatic; [set_tau] replaces the memo (a full recompute — τ is
      outside the cache key, enforced by the memo's fingerprint stamp).

    Results are bit-identical to a from-scratch
    {!Aggshap_core.Batch.shapley_all} at every step: exact rationals in
    canonical form, in [Database.endogenous] order. *)

type t

val open_ :
  ?jobs:int -> Aggshap_agg.Agg_query.t -> Aggshap_relational.Database.t -> t
(** Compiles the initial session state. [jobs] (default 1) is the pool
    width used by the generic engine's batch runs.
    @raise Invalid_argument if the query is outside the aggregate's
    tractability frontier. *)

val apply : t -> Update.t -> unit
(** Applies one update, invalidating exactly the dirty state.
    @raise Invalid_argument on deleting an absent fact, or on a
    [set_tau] whose relation is not an atom of the query. *)

val shapley_all :
  t -> (Aggshap_relational.Fact.t * Aggshap_arith.Rational.t) list
(** Exact Shapley values of all currently endogenous facts, reusing
    every clean cached table; dirty games are recomputed on demand. *)

val query : t -> Aggshap_agg.Agg_query.t
val database : t -> Aggshap_relational.Database.t

(** {1 Reuse statistics} *)

type stats = {
  steps : int;  (** updates applied *)
  games_computed : int;  (** membership games (re)computed, Linear engine *)
  games_reused : int;  (** games served from cache across all reads *)
  full_recomputes : int;  (** [set_tau] memo flushes, Generic engine *)
  tables : Aggshap_core.Memo.stats;  (** the shared DP-table cache *)
}

val stats : t -> stats

val reuse_ratio : stats -> float option
(** [games_reused / (games_computed + games_reused)], [None] before any
    game has been read (e.g. the Generic engine, which reuses through
    [tables] instead). *)

val stats_to_string : stats -> string
