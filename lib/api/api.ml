(* The solve/session orchestration layer: everything shapctl used to do
   between argument parsing and printing, as result-typed functions the
   CLI, the server, and the load generator all call. No printing, no
   [exit] — callers decide how to surface errors. *)

module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Parser = Aggshap_cq.Parser
module Hierarchy = Aggshap_cq.Hierarchy
module Fact = Aggshap_relational.Fact
module Schema = Aggshap_relational.Schema
module Database = Aggshap_relational.Database
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query
module Solver = Aggshap_core.Solver
module Strategy = Aggshap_core.Strategy
module Engine = Aggshap_core.Engine
module Json = Aggshap_json.Json
module Session = Aggshap_incr.Session
module Script = Aggshap_incr.Script
module Update = Aggshap_incr.Update

let ( let* ) = Result.bind

(* Invalid_argument is the library's contract-violation channel; at the
   API boundary it becomes an [Error] like any other user mistake. *)
let trap f = try Ok (f ()) with Invalid_argument msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse_query s =
  match Parser.parse_query s with
  | Ok q -> Ok q
  | Error msg -> Error (Printf.sprintf "cannot parse query %S: %s" s msg)

let parse_database_text contents = Parser.parse_database contents

let load_database path =
  let* contents =
    try
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok s
    with Sys_error msg -> Error msg
  in
  match Parser.parse_database contents with
  | Ok db -> Ok db
  | Error msg -> Error (Printf.sprintf "cannot parse database %s: %s" path msg)

let parse_fact s =
  match Parser.parse_fact s with
  | Ok (f, prov) -> Ok (f, prov)
  | Error msg -> Error (Printf.sprintf "cannot parse fact %S: %s" s msg)

let parse_pos spec s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> Ok n
  | Some _ | None ->
    Error
      (Printf.sprintf
         "malformed position %S in value function spec %S (expected a non-negative integer)"
         s spec)

let parse_rational what spec s =
  match Q.of_string s with
  | q -> Ok q
  | exception (Invalid_argument _ | Division_by_zero) ->
    Error
      (Printf.sprintf "malformed %s %S in %S (expected an integer or P/Q rational)" what s
         spec)

let parse_tau q spec =
  let check_rel rel =
    if List.mem rel (Cq.relations q) then Ok rel
    else Error (Printf.sprintf "value function relation %s is not an atom of the query" rel)
  in
  match String.split_on_char ':' spec with
  | [ "id"; rel; pos ] ->
    let* rel = check_rel rel in
    let* pos = parse_pos spec pos in
    Ok (Value_fn.id ~rel ~pos)
  | [ "relu"; rel; pos ] ->
    let* rel = check_rel rel in
    let* pos = parse_pos spec pos in
    Ok (Value_fn.relu ~rel ~pos)
  | [ "gt"; rel; pos; bound ] ->
    let* rel = check_rel rel in
    let* pos = parse_pos spec pos in
    let* bound = parse_rational "bound" spec bound in
    Ok (Value_fn.gt ~rel ~pos bound)
  | [ "const"; rel; value ] ->
    let* rel = check_rel rel in
    let* value = parse_rational "value" spec value in
    Ok (Value_fn.const ~rel value)
  | _ -> Error (Printf.sprintf "cannot parse value function spec %S" spec)

let default_tau q =
  match Cq.relations q with
  | rel :: _ -> Ok (Value_fn.const ~rel Q.one)
  | [] -> Error "query has no atoms"

let parse_aggregate s = Aggregate.of_string s

let make_agg_query ~agg ~tau query =
  let* alpha = parse_aggregate agg in
  let* tau =
    match tau with Some s -> parse_tau query s | None -> default_tau query
  in
  trap (fun () -> Agg_query.make alpha tau query)

(* mc:SAMPLES or mc:SAMPLES:SEED. Returns the fallback and the optional
   Monte-Carlo seed. The fallback type itself lives in
   {!Aggshap_core.Strategy} — the planner is its only definition. *)
let parse_fallback s =
  let mc_usage =
    "use auto, naive, knowledge-compilation, fail, or mc:SAMPLES[:SEED]"
  in
  let positive_int what p =
    match int_of_string_opt p with
    | Some n when n > 0 -> Ok n
    | Some _ | None ->
      Error
        (Printf.sprintf "malformed %s %S in fallback %S (expected a positive integer; %s)"
           what p s mc_usage)
  in
  match s with
  | "auto" -> Ok ((`Auto : Strategy.fallback), None)
  | "naive" -> Ok (`Naive, None)
  | "knowledge-compilation" | "kc" -> Ok (`Knowledge_compilation, None)
  | "fail" -> Ok (`Fail, None)
  | _ when String.length s > 3 && String.sub s 0 3 = "mc:" -> begin
    match String.split_on_char ':' (String.sub s 3 (String.length s - 3)) with
    | [ samples ] ->
      let* n = positive_int "sample count" samples in
      Ok (`Monte_carlo n, None)
    | [ samples; seed ] ->
      let* n = positive_int "sample count" samples in
      let* seed =
        match int_of_string_opt seed with
        | Some v -> Ok v
        | None ->
          Error
            (Printf.sprintf "malformed seed %S in fallback %S (expected an integer; %s)"
               seed s mc_usage)
      in
      Ok (`Monte_carlo n, Some seed)
    | _ -> Error (Printf.sprintf "cannot parse fallback %S (%s)" s mc_usage)
  end
  | _ -> Error (Printf.sprintf "unknown fallback %S (%s)" s mc_usage)

(* The wire variant: the SHAPWIRE protocol carries exact rationals
   only, so a Monte-Carlo fallback is rejected here — uniformly for
   [shapctl client] and raw-mode requests. *)
let parse_wire_fallback s =
  let* fb, _seed = parse_fallback s in
  match fb with
  | `Monte_carlo _ ->
    Error
      "solve_query does not take a Monte-Carlo fallback (the wire carries \
       exact rationals only)"
  | (`Auto | `Naive | `Knowledge_compilation | `Fail) as fb ->
    Ok (fb :> Strategy.fallback)

type score = Shapley | Banzhaf

let parse_score = function
  | "shapley" -> Ok Shapley
  | "banzhaf" -> Ok Banzhaf
  | s -> Error (Printf.sprintf "unknown score %S (use shapley or banzhaf)" s)

let schema_warnings q db =
  match Schema.check_database (Cq.induced_schema q) db with
  | Ok () -> []
  | Error msgs -> List.map (fun m -> m ^ " (treated as a null player)") msgs

(* ------------------------------------------------------------------ *)
(* Classify / explain                                                  *)
(* ------------------------------------------------------------------ *)

type classify_row = {
  alpha : Aggregate.t;
  frontier : Hierarchy.cls;
  tractable : bool;
}

let classify q =
  ( Hierarchy.classify q,
    List.map
      (fun alpha ->
        { alpha; frontier = Solver.frontier alpha;
          tractable = Solver.within_frontier alpha q })
      Aggregate.all )

type explanation = {
  chain : (string * bool) list;
  cls : Hierarchy.cls;
  frontier : Hierarchy.cls;
  within_frontier : bool;
  algorithm : string;
  plan : Strategy.plan;
}

let explain ?fallback ?db ?kc_node_budget (a : Agg_query.t) =
  let stats = Option.map Strategy.db_stats db in
  let plan = Strategy.plan ?stats ?kc_node_budget ?fallback a in
  let report = Solver.report ?fallback ?stats ?kc_node_budget a in
  let q = a.Agg_query.query in
  { chain =
      [ ("exists-hierarchical", Hierarchy.is_exists_hierarchical q);
        ("all-hierarchical", Hierarchy.is_all_hierarchical q);
        ("q-hierarchical", Hierarchy.is_q_hierarchical q);
        ("sq-hierarchical", Hierarchy.is_sq_hierarchical q) ];
    cls = report.Solver.cls;
    frontier = report.Solver.frontier;
    within_frontier = report.Solver.within_frontier;
    algorithm = report.Solver.algorithm;
    plan }

(* One line per planner candidate, shared by [shapctl explain] and the
   server's explain op. *)
let plan_lines (ex : explanation) = Strategy.render_candidates ex.plan

let plan_to_json (p : Strategy.plan) =
  let opt name to_json = function
    | None -> []
    | Some v -> [ (name, to_json v) ]
  in
  let candidate (c : Strategy.candidate) =
    Json.Obj
      ([ ("strategy", Json.String (Strategy.route_label c.route));
         ("algorithm", Json.String c.algorithm);
         ("applicable", Json.Bool c.applicable) ]
      @ opt "cost" (fun x -> Json.Float x) c.cost
      @ [ ("reason", Json.String c.reason) ])
  in
  let stats (s : Strategy.db_stats) =
    Json.Obj
      [ ("endogenous", Json.Int s.endo);
        ("facts", Json.Int s.facts);
        ("relations", Json.Int s.relations) ]
  in
  Json.Obj
    ([ ("fallback", Json.String (Strategy.fallback_label p.requested));
       ("chosen", Json.String (Strategy.route_label p.chosen));
       ("algorithm", Json.String p.algorithm);
       ( "ladder",
         Json.List
           (List.map (fun r -> Json.String (Strategy.route_label r)) p.ladder)
       );
       ("candidates", Json.List (List.map candidate p.candidates)) ]
    @ opt "kc_node_budget" (fun b -> Json.Int b) p.kc_node_budget
    @ opt "stats" stats p.stats)

let explanation_to_json (a : Agg_query.t) (ex : explanation) =
  Json.Obj
    [ ("query", Json.String (Cq.to_string a.Agg_query.query));
      ("aggregate", Json.String (Aggregate.to_string a.Agg_query.alpha));
      ( "chain",
        Json.List
          (List.map
             (fun (name, holds) ->
               Json.Obj
                 [ ("class", Json.String name); ("holds", Json.Bool holds) ])
             ex.chain) );
      ("class", Json.String (Hierarchy.cls_to_string ex.cls));
      ("frontier", Json.String (Hierarchy.cls_to_string ex.frontier));
      ("within_frontier", Json.Bool ex.within_frontier);
      ("algorithm", Json.String ex.algorithm);
      ("plan", plan_to_json ex.plan) ]

(* ------------------------------------------------------------------ *)
(* Solving                                                             *)
(* ------------------------------------------------------------------ *)

let eval a db = trap (fun () -> Agg_query.eval a db)

let set_block_jobs = function
  | None -> Ok ()
  | Some b when b >= 1 ->
    Engine.set_block_jobs b;
    Ok ()
  | Some b -> Error (Printf.sprintf "block-jobs must be at least 1 (got %d)" b)

type solve_result = {
  values : (Fact.t * Solver.outcome) list;
  report : Solver.report option;  (** [None] for Banzhaf (no report attached) *)
}

let shapley_all ?fallback ?mc_seed ?jobs ?cache ?kc_node_budget a db =
  trap (fun () ->
      let values, report =
        Solver.shapley_all ?fallback ?mc_seed ?jobs ?cache ?kc_node_budget a db
      in
      { values; report = Some report })

let shapley_fact ?fallback ?mc_seed ?kc_node_budget a db fact_s =
  let* f, _prov = parse_fact fact_s in
  trap (fun () ->
      let outcome, report =
        Solver.shapley ?fallback ?mc_seed ?kc_node_budget a db f
      in
      { values = [ (f, outcome) ]; report = Some report })

let banzhaf_all ?fact a db =
  let* facts =
    match fact with
    | None -> Ok (Database.endogenous db)
    | Some s ->
      let* f, _prov = parse_fact s in
      Ok [ f ]
  in
  trap (fun () ->
      { values = List.map (fun f -> (f, Solver.Exact (Solver.banzhaf a db f))) facts;
        report = None })

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

(* Everything needed to (re)build a session from strings: the form in
   which the server receives an [open] request and in which snapshots
   are written to disk. [tau = None] is the default constant-1 value
   function. *)
type session_spec = {
  query : string;
  db : string;  (** database text, {!Aggshap_cq.Parser.parse_database} syntax *)
  agg : string;
  tau : string option;
  jobs : int option;
}

let check_jobs = function
  | None -> Ok ()
  | Some j when j >= 1 -> Ok ()
  | Some j -> Error (Printf.sprintf "jobs must be at least 1 (got %d)" j)

let open_session (spec : session_spec) =
  let* q = parse_query spec.query in
  let* db = parse_database_text spec.db in
  let* a = make_agg_query ~agg:spec.agg ~tau:spec.tau q in
  let* () = check_jobs spec.jobs in
  trap (fun () -> Session.open_ ?jobs:spec.jobs a db)

(* The current database of [session], rendered back to database text;
   [parse_database_text] inverts it. The snapshot half of the session
   snapshot/restore cycle. *)
let render_database db =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf (Fact.to_string f);
      (match Database.provenance db f with
       | Some Database.Exogenous -> Buffer.add_string buf " @exo"
       | Some Database.Endogenous | None -> ());
      Buffer.add_char buf '\n')
    (Database.facts db);
  Buffer.contents buf

let parse_script text =
  match Script.parse text with
  | Ok ops -> Ok ops
  | Error msg -> Error ("script " ^ msg)

(* Applies a whole update script; on failure reports the 1-based script
   line of the offending operation. Operations before the failure stay
   applied (the session is a live object). *)
let apply_script session text =
  let* ops = parse_script text in
  let rec go applied = function
    | [] -> Ok applied
    | (line, op) :: rest -> (
      match trap (fun () -> Session.apply session op) with
      | Ok () -> go (applied + 1) rest
      | Error msg -> Error (Printf.sprintf "script line %d: %s" line msg))
  in
  go 0 ops
