(** The solve/session orchestration layer.

    Everything [shapctl] used to do between argument parsing and
    printing now lives here as result-typed functions, so the CLI, the
    {!Aggshap_server} session server, and the load generator drive one
    implementation. Nothing here prints or exits; [Invalid_argument]
    raised by the library is converted to [Error] at this boundary. *)

module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Hierarchy = Aggshap_cq.Hierarchy
module Fact = Aggshap_relational.Fact
module Database = Aggshap_relational.Database
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query
module Solver = Aggshap_core.Solver
module Strategy = Aggshap_core.Strategy
module Json = Aggshap_json.Json
module Session = Aggshap_incr.Session
module Script = Aggshap_incr.Script
module Update = Aggshap_incr.Update

val trap : (unit -> 'a) -> ('a, string) result
(** Runs [f], converting [Invalid_argument msg] to [Error msg]. *)

(** {1 Parsing} *)

val parse_query : string -> (Cq.t, string) result
(** With a ["cannot parse query %S: ..."] context prefix. *)

val parse_database_text : string -> (Database.t, string) result
val load_database : string -> (Database.t, string) result
(** Reads and parses a database file; errors name the path. *)

val parse_fact :
  string -> (Fact.t * Database.provenance, string) result

val parse_tau : Cq.t -> string -> (Value_fn.t, string) result
(** [id:REL:POS | relu:REL:POS | gt:REL:POS:BOUND | const:REL:VALUE];
    checks that [REL] is an atom of the query. *)

val default_tau : Cq.t -> (Value_fn.t, string) result
(** The constant-1 value function on the first atom. *)

val parse_aggregate : string -> (Aggregate.t, string) result

val make_agg_query :
  agg:string -> tau:string option -> Cq.t -> (Agg_query.t, string) result
(** Parses the aggregate and τ spec ([None] = {!default_tau}) and
    builds the aggregate query. *)

val parse_fallback :
  string -> (Strategy.fallback * int option, string) result
(** [auto | naive | knowledge-compilation (or kc) | fail |
    mc:SAMPLES[:SEED]]; the second component is the Monte-Carlo seed,
    if one was given. The fallback type is
    {!Aggshap_core.Strategy.fallback} — the solve planner owns its only
    definition. *)

val parse_wire_fallback : string -> (Strategy.fallback, string) result
(** {!parse_fallback} restricted to what the SHAPWIRE protocol carries:
    exact rationals only, so [mc:...] is rejected with the same message
    in [shapctl client] and raw-mode requests. *)

type score = Shapley | Banzhaf

val parse_score : string -> (score, string) result

val schema_warnings : Cq.t -> Database.t -> string list
(** Arity mismatches between the query's induced schema and the
    database, phrased as warnings. *)

(** {1 Classify / explain} *)

type classify_row = {
  alpha : Aggregate.t;
  frontier : Hierarchy.cls;
  tractable : bool;
}

val classify : Cq.t -> Hierarchy.cls * classify_row list
(** The query's class and, per aggregate, its frontier and whether this
    query falls inside it. *)

type explanation = {
  chain : (string * bool) list;  (** hierarchy classes, outermost first *)
  cls : Hierarchy.cls;
  frontier : Hierarchy.cls;
  within_frontier : bool;
  algorithm : string;
  plan : Strategy.plan;  (** the full planner decision *)
}

val explain :
  ?fallback:Strategy.fallback ->
  ?db:Database.t ->
  ?kc_node_budget:int ->
  Agg_query.t ->
  explanation
(** Classification plus the solve plan. [db] feeds the planner's cost
    model (without it the cost column is empty and [`Auto] picks by
    applicability alone). *)

val plan_lines : explanation -> string list
(** One rendered line per planner candidate — what [shapctl explain]
    and the server's explain op print. *)

val explanation_to_json : Agg_query.t -> explanation -> Json.t
(** The machine-readable form behind [shapctl explain --json]: query,
    aggregate, hierarchy chain, frontier verdict, and the plan with
    per-candidate cost estimates and rejection reasons. *)

(** {1 Solving} *)

val eval : Agg_query.t -> Database.t -> (Q.t, string) result

val set_block_jobs : int option -> (unit, string) result
(** Validates and installs the engine-level root-block fan-out width
    ([None]: leave unchanged). *)

val check_jobs : int option -> (unit, string) result

type solve_result = {
  values : (Fact.t * Solver.outcome) list;
  report : Solver.report option;  (** [None] for Banzhaf (no report attached) *)
}

val shapley_all :
  ?fallback:Strategy.fallback -> ?mc_seed:int -> ?jobs:int -> ?cache:bool ->
  ?kc_node_budget:int ->
  Agg_query.t -> Database.t -> (solve_result, string) result
(** All endogenous facts, through {!Solver.shapley_all}. *)

val shapley_fact :
  ?fallback:Strategy.fallback -> ?mc_seed:int -> ?kc_node_budget:int ->
  Agg_query.t -> Database.t -> string -> (solve_result, string) result
(** One fact, given in fact syntax. *)

val banzhaf_all :
  ?fact:string -> Agg_query.t -> Database.t -> (solve_result, string) result

(** {1 Sessions} *)

(** Everything needed to (re)build a live session from strings: the
    payload of the server's [open] request and of on-disk snapshots.
    [tau = None] is the default constant-1 value function. *)
type session_spec = {
  query : string;
  db : string;  (** database text, {!Aggshap_cq.Parser.parse_database} syntax *)
  agg : string;
  tau : string option;
  jobs : int option;
}

val open_session : session_spec -> (Session.t, string) result

val render_database : Database.t -> string
(** Database text for the current facts (with [@exo] markers);
    {!parse_database_text} inverts it. The snapshot half of the
    session snapshot/restore cycle. *)

val parse_script : string -> ((int * Update.t) list, string) result
(** {!Script.parse} with a ["script "] context prefix on errors. *)

val apply_script : Session.t -> string -> (int, string) result
(** Parses and applies a whole update script, returning how many
    operations were applied. On failure the error names the 1-based
    script line; operations before it stay applied. *)
