module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Eval = Aggshap_cq.Eval
module Fact = Aggshap_relational.Fact

type t = {
  alpha : Aggregate.t;
  tau : Value_fn.t;
  query : Cq.t;
}

let make alpha tau query =
  (match Cq.validate query with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Agg_query.make: " ^ msg));
  if not (List.mem tau.Value_fn.rel (Cq.relations query)) then
    invalid_arg
      (Printf.sprintf "Agg_query.make: τ is localized on %s, not an atom of %s"
         tau.Value_fn.rel (Cq.to_string query));
  { alpha; tau; query }

module TupleMap = Map.Make (struct
  type t = Aggshap_relational.Value.t array

  let compare a b =
    let la = Array.length a and lb = Array.length b in
    if la <> lb then Stdlib.compare la lb
    else begin
      let rec go i =
        if i >= la then 0
        else
          let c = Aggshap_relational.Value.compare a.(i) b.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
    end
end)

let answer_values t db =
  let r_atom =
    match Cq.find_atom t.query t.tau.Value_fn.rel with
    | Some a -> a
    | None -> invalid_arg "Agg_query.answer_bag: localization atom missing"
  in
  (* Map each answer tuple to its τ-value; check localization consistency. *)
  let values = ref TupleMap.empty in
  Eval.visit_homomorphisms t.query db (fun sigma ->
      let answer = Eval.apply_head t.query sigma in
      let r_fact = Eval.atom_image r_atom sigma in
      let v = Value_fn.apply t.tau r_fact.Fact.args in
      values :=
        TupleMap.update answer
          (function
            | None -> Some v
            | Some v' ->
              if Q.equal v v' then Some v'
              else
                invalid_arg
                  "Agg_query: value function is not localized on this database \
                   (one answer, two τ-values)")
          !values;
      true);
  TupleMap.bindings !values

let answer_bag t db =
  List.fold_left (fun bag (_, v) -> Bag.add v bag) Bag.empty (answer_values t db)

let eval t db = Aggregate.apply t.alpha (answer_bag t db)

let tau_of_fact t (f : Fact.t) =
  if not (String.equal f.rel t.tau.Value_fn.rel) then
    invalid_arg
      (Printf.sprintf "Agg_query.tau_of_fact: fact of %s, τ localized on %s" f.rel
         t.tau.Value_fn.rel);
  Value_fn.apply t.tau f.args

let pp fmt t =
  Format.fprintf fmt "%a ∘ %a ∘ %s" Aggregate.pp t.alpha Value_fn.pp t.tau
    (Cq.to_string t.query)
