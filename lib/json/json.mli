(** Minimal JSON values, shared by the BENCH_v1 bench reports, the
    server's newline-delimited wire protocol, and the session snapshot
    files. Hand-rolled: the environment has no JSON package. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty multi-line emission (2-space indent), newline-terminated —
    the format of the bench reports and snapshot files on disk. *)

val to_line : t -> string
(** Compact single-line emission with {e no} newline characters
    anywhere (strings escape them), suitable as one line of a
    newline-delimited JSON stream. Not newline-terminated. *)

val escape_string : string -> string
(** The quoted, escaped JSON string literal for [s]. *)

val parse : string -> (t, string) result
(** Parses one JSON value; the whole input must be consumed. Integral
    numbers parse as [Int], everything else as [Float]. [\u] escapes
    below 128 decode to the ASCII character, others to ['?']. *)

(** {1 Accessors}

    Field lookup on [Obj] values with uniform error messages; [what]
    names the context (e.g. the request op) in diagnostics. Optional
    variants treat an absent field and an explicit [null] alike. *)

val member : string -> t -> t option
val string_field : what:string -> string -> t -> (string, string) result
val opt_string_field : what:string -> string -> t -> (string option, string) result
val int_field : what:string -> string -> t -> (int, string) result
val opt_int_field : what:string -> string -> t -> (int option, string) result
val bool_field : what:string -> string -> t -> (bool, string) result
val list_field : what:string -> string -> t -> (t list, string) result
