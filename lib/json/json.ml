(* Minimal JSON support shared by the bench baseline, the server wire
   protocol, and the session snapshot format.

   The environment has no JSON package, so this is a small hand-rolled
   value type with two emitters (pretty, for files humans read; compact
   single-line, for the newline-delimited wire protocol) and a
   recursive-descent parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_literal f =
  (* NaN and infinities are not valid JSON literals. *)
  if Float.is_nan f || not (Float.is_finite f) then "0.0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let rec emit buf indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s -> Buffer.add_string buf (escape_string s)
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        emit buf (indent + 2) item)
      items;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf ": ";
        emit buf (indent + 2) item)
      fields;
    Buffer.add_char buf '\n';
    Buffer.add_string buf (pad indent);
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  emit buf 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Compact single-line emission: no newlines anywhere (strings escape
   them), so the output is a valid line of a newline-delimited JSON
   stream. *)
let rec emit_compact buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s -> Buffer.add_string buf (escape_string s)
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ", ";
        emit_compact buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (escape_string k);
        Buffer.add_string buf ": ";
        emit_compact buf item)
      fields;
    Buffer.add_char buf '}'

let to_line v =
  let buf = Buffer.create 256 in
  emit_compact buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let parse_literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
            | Some _ -> Buffer.add_char buf '?' (* non-ASCII: placeholder *)
            | None -> fail "malformed \\u escape");
           pos := !pos + 4
         | _ -> fail "malformed escape");
        go ()
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "malformed number %S" lit))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> parse_literal "null" Null
    | Some 't' -> parse_literal "true" (Bool true)
    | Some 'f' -> parse_literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after JSON value";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors (for decoding protocol requests and snapshots)            *)
(* ------------------------------------------------------------------ *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let string_field ~what name v =
  match member name v with
  | Some (String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "%s: field %S is not a string" what name)
  | None -> Error (Printf.sprintf "%s: missing field %S" what name)

let opt_string_field ~what name v =
  match member name v with
  | Some (String s) -> Ok (Some s)
  | Some Null | None -> Ok None
  | Some _ -> Error (Printf.sprintf "%s: field %S is not a string" what name)

let int_field ~what name v =
  match member name v with
  | Some (Int n) -> Ok n
  | Some _ -> Error (Printf.sprintf "%s: field %S is not an integer" what name)
  | None -> Error (Printf.sprintf "%s: missing field %S" what name)

let opt_int_field ~what name v =
  match member name v with
  | Some (Int n) -> Ok (Some n)
  | Some Null | None -> Ok None
  | Some _ -> Error (Printf.sprintf "%s: field %S is not an integer" what name)

let bool_field ~what name v =
  match member name v with
  | Some (Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "%s: field %S is not a boolean" what name)
  | None -> Error (Printf.sprintf "%s: missing field %S" what name)

let list_field ~what name v =
  match member name v with
  | Some (List items) -> Ok items
  | Some _ -> Error (Printf.sprintf "%s: field %S is not an array" what name)
  | None -> Error (Printf.sprintf "%s: missing field %S" what name)
