(** Databases with endogenous/exogenous provenance.

    Following the paper (Section 2), a database is a finite set of facts,
    each tagged endogenous (a player in the Shapley game) or exogenous
    (taken for granted). The structure is persistent; all updates return
    new databases.

    Facts are stored in per-relation segments, so {!relation},
    {!relations}, {!restrict_relations}, {!size} and {!endo_size} cost
    O(matches) (or O(1)), not O(|db|). On top of the segments the
    database memoizes {e secondary indexes} on (relation, position):
    built lazily on first probe, maintained incrementally by
    {!add}/{!remove}/{!set_provenance}, and never shared between a
    database and its derivatives' future builds. The join planner
    ({!Aggshap_cq.Plan}) and the decomposition engine probe them through
    {!probe} and {!indexed}. *)

type provenance =
  | Endogenous
  | Exogenous

type t

val empty : t
val is_empty : t -> bool

val add : ?provenance:provenance -> Fact.t -> t -> t
(** Default provenance is [Endogenous]. Re-adding an existing fact
    overwrites its provenance. *)

val of_list : (Fact.t * provenance) list -> t

val of_facts : ?provenance:provenance -> Fact.t list -> t
(** All facts get the same provenance (default [Endogenous]). *)

val remove : Fact.t -> t -> t

val set_provenance : provenance -> Fact.t -> t -> t
(** @raise Not_found if the fact is absent. *)

val mem : Fact.t -> t -> bool

val provenance : t -> Fact.t -> provenance option

val union : t -> t -> t
(** Right-biased on provenance for facts present in both. *)

val filter : (Fact.t -> provenance -> bool) -> t -> t

(** {1 Views} *)

val facts : t -> Fact.t list
(** All facts, in [Fact.compare] order. *)

val endogenous : t -> Fact.t list
val exogenous : t -> Fact.t list

val size : t -> int
(** O(1): maintained by every update. *)

val endo_size : t -> int
(** O(1): maintained by every update. *)

val relation : t -> string -> Fact.t list
(** Facts of one relation, both provenances — one segment lookup plus
    O(matches) materialization. Counted as a relation scan in {!stats}. *)

val relations : t -> string list
(** Names of relations with at least one fact, ascending; O(relations). *)

val restrict_relations : string list -> t -> t * t
(** [restrict_relations names db] splits [db] into (facts of the named
    relations, the rest). Whole segments move; O(relations), not
    O(|db| log |db|). *)

val fold : (Fact.t -> provenance -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Fact.t -> provenance -> unit) -> t -> unit
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Secondary indexes}

    An index on [(rel, pos)] groups the facts of relation [rel] by the
    value they hold at argument position [pos] (facts of arity ≤ [pos]
    are absent — no atom probing that position can match them). Indexes
    are built lazily on first use, memoized on the database value, and
    maintained incrementally across {!add}/{!remove}/{!set_provenance};
    derived databases inherit the already-built entries. Memoization is
    domain-safe: racing builds are benign lost updates of pure,
    deterministic work. *)

module FactMap : Map.S with type key = Fact.t
module ValueMap : Map.S with type key = Value.t

val indexed : t -> rel:string -> pos:int -> provenance FactMap.t ValueMap.t
(** The full index for [(rel, pos)]: every group, with provenance —
    the one-pass grouping used by the engine's partition step. *)

val probe : t -> rel:string -> pos:int -> Value.t -> Fact.t list
(** The facts of [rel] holding the value at position [pos], in
    [Fact.compare] order; O(log) lookup + O(matches) materialization
    once the index is built. *)

val cached_digest : t -> (t -> string) -> string
(** [cached_digest db compute] memoizes [compute db] on the database
    value: databases are immutable, so the digest is computed at most
    once per value no matter how many memo keys mention it. The caller
    must always pass the same (pure) [compute] — the engine's
    fingerprint serialization does. *)

(** {1 Instrumentation and fault injection} *)

type stats = {
  index_builds : int;  (** secondary indexes constructed from a segment *)
  index_probes : int;  (** {!probe}/{!indexed} lookups answered *)
  rel_scans : int;  (** {!relation} materializations (the unindexed path) *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

val fault : [ `None | `Stale_index ] ref
(** [`Stale_index] makes updates keep the parent's built indexes
    verbatim instead of adjusting them — a forgotten invalidation.
    Segments stay correct; only index probes go wrong. Set through
    [Tables.set_fault], which keeps the layers in sync. *)
