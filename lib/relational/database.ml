type provenance =
  | Endogenous
  | Exogenous

module FactMap = Map.Make (Fact)
module ValueMap = Map.Make (Value)
module StringMap = Map.Make (String)
module StringSet = Set.Make (String)

(* One relation's facts, with its cardinality and endogenous count
   maintained eagerly so [restrict_relations] can move whole segments
   without recounting them. *)
type segment = {
  sfacts : provenance FactMap.t;
  ssize : int;
  sendo : int;
}

(* A secondary index: the facts of one relation keyed by the value they
   hold at one argument position, each group carrying provenance so a
   probe can stand in for the segment itself. *)
type index = provenance FactMap.t ValueMap.t

module IdxKey = struct
  type t = string * int

  let compare (r1, p1) (r2, p2) =
    let c = String.compare r1 r2 in
    if c <> 0 then c else Int.compare p1 p2
end

module IdxMap = Map.Make (IdxKey)

(* Facts are split into per-relation segments; [Fact.compare] orders by
   relation name first, so iterating segments in [StringMap] order and
   facts in [FactMap] order inside each visits the global [Fact.compare]
   order — every list view, [fold]/[iter], and crucially the engine's
   block fingerprints are unchanged from the flat-map representation.

   [idx] memoizes the secondary indexes built so far. The cell holds an
   immutable map, updated by compare-and-set: concurrent domains may
   race to build the same index, in which case one build is discarded —
   a benign lost update, since builds are pure and deterministic. Every
   derived database gets a {e fresh} cell (sharing one would let builds
   against the new value pollute the old), seeded with the parent's
   entries incrementally adjusted by the update. *)
type t = {
  segs : segment StringMap.t;
  size : int;
  endo : int;
  idx : index IdxMap.t Atomic.t;
  dig : string option Atomic.t;
}

type stats = {
  index_builds : int;
  index_probes : int;
  rel_scans : int;
}

(* Atomic counters, same contract as [Bigint.stats]: exact under
   concurrent domains. *)
let c_index_builds = Atomic.make 0
let c_index_probes = Atomic.make 0
let c_rel_scans = Atomic.make 0

let stats () =
  { index_builds = Atomic.get c_index_builds;
    index_probes = Atomic.get c_index_probes;
    rel_scans = Atomic.get c_rel_scans }

let reset_stats () =
  Atomic.set c_index_builds 0;
  Atomic.set c_index_probes 0;
  Atomic.set c_rel_scans 0

(* [`Stale_index]: updates keep the already-built indexes of the parent
   database instead of adjusting them, simulating a forgotten
   invalidation. Segments are always maintained correctly — only probes
   against an index built before the update go wrong. Set via
   [Tables.set_fault] like the arithmetic-layer faults. *)
let fault : [ `None | `Stale_index ] ref = ref `None

let no_idx () = Atomic.make IdxMap.empty

(* [dig] memoizes an injective serialization of the database (the
   engine's fingerprint): databases are immutable, so the digest is a
   pure function of the value and is computed at most once per database
   no matter how many memo keys mention it. Like [idx], every derived
   database gets a fresh cell; racing writers store identical strings. *)
let no_dig () = Atomic.make None

let cached_digest db compute =
  match Atomic.get db.dig with
  | Some s -> s
  | None ->
    let s = compute db in
    Atomic.set db.dig (Some s);
    s

let empty = { segs = StringMap.empty; size = 0; endo = 0; idx = no_idx (); dig = no_dig () }
let is_empty db = db.size = 0

let find_opt (f : Fact.t) db =
  match StringMap.find_opt f.rel db.segs with
  | None -> None
  | Some seg -> FactMap.find_opt f seg.sfacts

(* Incremental maintenance of one built index entry. Facts too short
   for the position are absent from the index; any atom probing that
   position has a different arity and rejects them anyway. *)
let index_add (f : Fact.t) p pos vmap =
  if pos >= Array.length f.args then vmap
  else
    ValueMap.update f.args.(pos)
      (fun g -> Some (FactMap.add f p (Option.value g ~default:FactMap.empty)))
      vmap

let index_remove (f : Fact.t) pos vmap =
  if pos >= Array.length f.args then vmap
  else
    ValueMap.update f.args.(pos)
      (function
        | None -> None
        | Some g ->
          let g = FactMap.remove f g in
          if FactMap.is_empty g then None else Some g)
      vmap

(* The fresh cell of a database derived by one fact update: the
   parent's built indexes on the fact's relation, adjusted by
   [update_entry] — or carried over stale under the fault. *)
let derive_idx idx (f : Fact.t) update_entry =
  let snapshot = Atomic.get idx in
  (* Fast path: nothing built yet (the common case for the throwaway
     databases the DP layers derive), so there is nothing to adjust —
     and no adjustment closures for the caller to allocate either. *)
  if IdxMap.is_empty snapshot then no_idx ()
  else
    let updated =
      match !fault with
      | `Stale_index -> snapshot
      | `None ->
        IdxMap.mapi
          (fun (rel, pos) vmap ->
            if String.equal rel f.rel then update_entry pos vmap else vmap)
          snapshot
    in
    Atomic.make updated

let empty_seg = { sfacts = FactMap.empty; ssize = 0; sendo = 0 }

(* The update primitives traverse each map once: [Map.update] both
   reports the old binding (snatched into a ref by the closure) and
   produces the new map, where a find-then-add pair would walk twice.
   The seed's flat representation paid one [FactMap] traversal per
   update; the segment split pays one (shorter) [FactMap] traversal
   plus one [StringMap] traversal over the handful of relation names. *)
let add ?(provenance = Endogenous) (f : Fact.t) db =
  let old = ref None in
  let segs =
    StringMap.update f.rel
      (fun seg ->
        let seg = match seg with Some s -> s | None -> empty_seg in
        let sfacts =
          FactMap.update f
            (fun o ->
              old := o;
              Some provenance)
            seg.sfacts
        in
        let fresh = match !old with None -> 1 | Some _ -> 0 in
        let dendo =
          (match provenance with Endogenous -> 1 | Exogenous -> 0)
          - (match !old with Some Endogenous -> 1 | _ -> 0)
        in
        Some { sfacts; ssize = seg.ssize + fresh; sendo = seg.sendo + dendo })
      db.segs
  in
  let old = !old in
  let size = db.size + (match old with None -> 1 | Some _ -> 0) in
  let endo =
    db.endo
    - (match old with Some Endogenous -> 1 | _ -> 0)
    + (match provenance with Endogenous -> 1 | Exogenous -> 0)
  in
  let idx =
    derive_idx db.idx f (fun pos vmap ->
        let vmap =
          match old with None -> vmap | Some _ -> index_remove f pos vmap
        in
        index_add f provenance pos vmap)
  in
  { segs; size; endo; idx; dig = no_dig () }

let of_list entries = List.fold_left (fun db (f, p) -> add ~provenance:p f db) empty entries

let of_facts ?(provenance = Endogenous) facts =
  List.fold_left (fun db f -> add ~provenance f db) empty facts

let remove (f : Fact.t) db =
  let old = ref None in
  let segs =
    StringMap.update f.rel
      (function
        | None -> None
        | Some seg ->
          let sfacts =
            FactMap.update f
              (fun o ->
                old := o;
                None)
              seg.sfacts
          in
          (match !old with
          | None -> Some seg
          | Some p ->
            if FactMap.is_empty sfacts then None
            else
              Some
                { sfacts;
                  ssize = seg.ssize - 1;
                  sendo = (seg.sendo - match p with Endogenous -> 1 | Exogenous -> 0) }))
      db.segs
  in
  match !old with
  | None -> db
  | Some p ->
    { segs;
      size = db.size - 1;
      endo = (db.endo - match p with Endogenous -> 1 | Exogenous -> 0);
      idx = derive_idx db.idx f (index_remove f);
      dig = no_dig () }

let set_provenance p (f : Fact.t) db =
  let old = ref None in
  let segs =
    StringMap.update f.rel
      (function
        | None -> None
        | Some seg ->
          let sfacts =
            FactMap.update f
              (function
                | None -> None
                | Some o ->
                  old := Some o;
                  Some p)
              seg.sfacts
          in
          (match !old with
          | None | Some _ when sfacts == seg.sfacts -> Some seg
          | _ ->
            Some
              { seg with
                sfacts;
                sendo = (seg.sendo + match p with Endogenous -> 1 | Exogenous -> -1) }))
      db.segs
  in
  match !old with
  | None -> raise Not_found
  | Some o ->
    if o = p then db
    else
      { segs;
        size = db.size;
        endo = (db.endo + match p with Endogenous -> 1 | Exogenous -> -1);
        idx = derive_idx db.idx f (fun pos vmap -> index_add f p pos vmap);
        dig = no_dig () }

let mem f db = find_opt f db <> None
let provenance db f = find_opt f db

(* Right-biased on provenance: folding [b]'s facts over [a] lets [add]
   overwrite, and maintains counters and carried indexes for free. *)
let union a b =
  StringMap.fold
    (fun _ seg acc -> FactMap.fold (fun f p acc -> add ~provenance:p f acc) seg.sfacts acc)
    b.segs a

let filter pred db =
  StringMap.fold
    (fun rel seg acc ->
      let sfacts = FactMap.filter pred seg.sfacts in
      if sfacts == seg.sfacts then
        (* [FactMap.filter] preserves physical equality when every
           binding survives, so the segment — counters included — can
           move wholesale without a recount. *)
        { acc with
          segs = StringMap.add rel seg acc.segs;
          size = acc.size + seg.ssize;
          endo = acc.endo + seg.sendo }
      else if FactMap.is_empty sfacts then acc
      else begin
        let ssize = ref 0 and sendo = ref 0 in
        FactMap.iter
          (fun _ p ->
            incr ssize;
            match p with Endogenous -> incr sendo | Exogenous -> ())
          sfacts;
        let ssize = !ssize and sendo = !sendo in
        { acc with
          segs = StringMap.add rel { sfacts; ssize; sendo } acc.segs;
          size = acc.size + ssize;
          endo = acc.endo + sendo }
      end)
    db.segs
    { segs = StringMap.empty; size = 0; endo = 0; idx = no_idx (); dig = no_dig () }

(* The list views below are built by a single fold each; [fold] ascends
   [Fact.compare] order (relation-major, see the type comment), so the
   accumulated list is reversed once at the end. *)
let fold f db init =
  StringMap.fold (fun _ seg acc -> FactMap.fold f seg.sfacts acc) db.segs init

let iter f db = StringMap.iter (fun _ seg -> FactMap.iter f seg.sfacts) db.segs

let facts db = List.rev (fold (fun f _ acc -> f :: acc) db [])

let endogenous db =
  List.rev (fold (fun f p acc -> if p = Endogenous then f :: acc else acc) db [])

let exogenous db =
  List.rev (fold (fun f p acc -> if p = Exogenous then f :: acc else acc) db [])

let size db = db.size
let endo_size db = db.endo

let relation db name =
  Atomic.incr c_rel_scans;
  match StringMap.find_opt name db.segs with
  | None -> []
  | Some seg -> List.rev (FactMap.fold (fun f _ acc -> f :: acc) seg.sfacts [])

(* Segments are dropped when they empty out, so the key set is exactly
   the inhabited relations — no per-fact scan, no [List.mem]
   accumulator. [StringMap] iterates in ascending name order. *)
let relations db = List.rev (StringMap.fold (fun rel _ acc -> rel :: acc) db.segs [])

(* Whole segments move between the halves — O(relations) map insertions
   plus counter sums, no per-fact test against the name list. *)
let restrict_relations names db =
  let nameset = StringSet.of_list names in
  let move rel seg acc =
    { acc with
      segs = StringMap.add rel seg acc.segs;
      size = acc.size + seg.ssize;
      endo = acc.endo + seg.sendo }
  in
  StringMap.fold
    (fun rel seg (inside, outside) ->
      if StringSet.mem rel nameset then (move rel seg inside, outside)
      else (inside, move rel seg outside))
    db.segs
    ( { segs = StringMap.empty; size = 0; endo = 0; idx = no_idx (); dig = no_dig () },
      { segs = StringMap.empty; size = 0; endo = 0; idx = no_idx (); dig = no_dig () } )

let equal a b =
  a.size = b.size && a.endo = b.endo
  && StringMap.equal (fun sa sb -> FactMap.equal ( = ) sa.sfacts sb.sfacts) a.segs b.segs

let pp fmt db =
  Format.fprintf fmt "@[<v>";
  iter
    (fun f p ->
      Format.fprintf fmt "%a%s@," Fact.pp f
        (match p with Endogenous -> " [endo]" | Exogenous -> " [exo]"))
    db;
  Format.fprintf fmt "@]"

(* {1 Secondary indexes} *)

let build_index db rel pos =
  Atomic.incr c_index_builds;
  match StringMap.find_opt rel db.segs with
  | None -> ValueMap.empty
  | Some seg ->
    FactMap.fold (fun f p vmap -> index_add f p pos vmap) seg.sfacts ValueMap.empty

(* Lookup-or-build, publishing by compare-and-set. On a lost race the
   loop re-reads: either the winner published this very index (reuse
   it) or a different one (merge ours and retry). *)
let get_index db rel pos =
  let key = (rel, pos) in
  match IdxMap.find_opt key (Atomic.get db.idx) with
  | Some vmap -> vmap
  | None ->
    let vmap = build_index db rel pos in
    let rec publish () =
      let snapshot = Atomic.get db.idx in
      match IdxMap.find_opt key snapshot with
      | Some existing -> existing
      | None ->
        if Atomic.compare_and_set db.idx snapshot (IdxMap.add key vmap snapshot) then
          vmap
        else publish ()
    in
    publish ()

let indexed db ~rel ~pos =
  Atomic.incr c_index_probes;
  get_index db rel pos

let probe db ~rel ~pos v =
  Atomic.incr c_index_probes;
  match ValueMap.find_opt v (get_index db rel pos) with
  | None -> []
  | Some g -> List.rev (FactMap.fold (fun f _ acc -> f :: acc) g [])
