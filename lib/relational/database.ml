type provenance =
  | Endogenous
  | Exogenous

module FactMap = Map.Make (Fact)

type t = provenance FactMap.t

let empty = FactMap.empty
let is_empty = FactMap.is_empty
let add ?(provenance = Endogenous) fact db = FactMap.add fact provenance db
let of_list entries = List.fold_left (fun db (f, p) -> add ~provenance:p f db) empty entries

let of_facts ?(provenance = Endogenous) facts =
  List.fold_left (fun db f -> add ~provenance f db) empty facts

let remove = FactMap.remove

let set_provenance p fact db =
  if FactMap.mem fact db then FactMap.add fact p db else raise Not_found

let mem = FactMap.mem
let provenance db fact = FactMap.find_opt fact db
let union a b = FactMap.union (fun _ _ pb -> Some pb) a b
let filter = FactMap.filter

(* The three list views below are built by a single fold each — no
   intermediate bindings list; [fold] ascends [Fact.compare] order, so
   the accumulated list is reversed once at the end. *)
let facts db = List.rev (FactMap.fold (fun f _ acc -> f :: acc) db [])

let endogenous db =
  List.rev (FactMap.fold (fun f p acc -> if p = Endogenous then f :: acc else acc) db [])

let exogenous db =
  List.rev (FactMap.fold (fun f p acc -> if p = Exogenous then f :: acc else acc) db [])

let size = FactMap.cardinal
let endo_size db = FactMap.fold (fun _ p n -> if p = Endogenous then n + 1 else n) db 0

let relation db name =
  List.rev
    (FactMap.fold
       (fun (f : Fact.t) _ acc -> if String.equal f.rel name then f :: acc else acc)
       db [])

let relations db =
  FactMap.fold (fun (f : Fact.t) _ acc ->
      if List.mem f.rel acc then acc else f.rel :: acc)
    db []
  |> List.sort String.compare

let restrict_relations names db =
  FactMap.partition (fun (f : Fact.t) _ -> List.mem f.rel names) db

let fold f db init = FactMap.fold f db init
let iter f db = FactMap.iter f db
let equal a b = FactMap.equal ( = ) a b

let pp fmt db =
  Format.fprintf fmt "@[<v>";
  FactMap.iter
    (fun f p ->
      Format.fprintf fmt "%a%s@," Fact.pp f
        (match p with Endogenous -> " [endo]" | Exogenous -> " [exo]"))
    db;
  Format.fprintf fmt "@]"
