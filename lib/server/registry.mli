(** The server's session table: many named sessions (one per
    tenant/database), at most [max_live] resident in memory, the rest
    evicted to durable {!Aggshap_api.Api.session_spec} form — written
    to [state_dir] as SHAPSESS_v1 JSON snapshots when one is given, so
    sessions survive server restarts.

    Eviction is LRU: every access stamps the entry with a logical
    clock; crossing [max_live] evicts the least-recently-used resident
    (never the entry being accessed). Restoring replays
    {!Aggshap_api.Api.open_session} on the spec; values are
    bit-identical because the solver is deterministic. *)

module Api = Aggshap_api.Api
module Session = Aggshap_incr.Session

type t

type entry = {
  name : string;
  mutable spec : Api.session_spec;
      (** The durable state; [db]/[tau] are refreshed at eviction and
          snapshot time. Callers handling [set_tau] must update
          [spec.tau] themselves (the live session does not retain the
          spec string). *)
  mutable session : Session.t option;  (** [None] = evicted *)
  mutable last_used : int;
}

val create :
  ?state_dir:string -> ?log:(string -> unit) -> max_live:int -> unit ->
  (t, string) result
(** Creates the table, creating [state_dir] if needed and registering
    every snapshot found there as an evicted session (restored lazily
    on first touch; malformed snapshot files are logged and skipped).
    [max_live] must be at least 1. *)

val open_session : t -> string -> Api.session_spec -> (int, string) result
(** Creates (or replaces) the named session from its spec, eagerly —
    errors surface here, not on first use. Returns the database size.
    Writes the initial snapshot and applies the LRU limit. *)

val with_session :
  t -> string -> (entry -> Session.t -> ('a, string) result) -> ('a, string) result
(** Runs [f] on the named live session, restoring it first if it was
    evicted. Touches the LRU stamp and applies the limit. *)

val close : t -> string -> (unit, string) result
(** Drops the session and deletes its snapshot. *)

val snapshot_all : t -> unit
(** Refreshes and writes the snapshot of every resident session (used
    at shutdown). *)

val sessions : t -> (string * bool) list
(** All sessions by name (sorted), with resident-in-memory flag. *)

val evictions : t -> int
val restores : t -> int
