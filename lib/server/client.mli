(** Client side of the wire protocol: a blocking connection speaking
    one request line / one response line at a time. Used by
    [shapctl client] and [bench/loadgen.exe]. *)

type t

val connect : ?retry_ms:int -> string -> (t, string) result
(** Connects to the server's Unix-domain socket, retrying
    connection-refused/socket-absent for up to [retry_ms] (default
    5000) milliseconds — the server may still be binding when CI boots
    client and server back to back. *)

val close : t -> unit

val send_line : t -> string -> (unit, string) result
(** Sends one raw protocol line (newline appended). *)

val recv_line : t -> (string, string) result
(** Receives the next response line (blocking). A final unterminated
    line before EOF is returned, not dropped. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** [send_line] of the encoded request, then one decoded response. *)

val with_connection :
  ?retry_ms:int -> string -> (t -> ('a, string) result) -> ('a, string) result
(** Connects, runs, and always closes the connection. *)
