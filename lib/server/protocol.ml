(* SHAPWIRE_v1: the newline-delimited JSON wire protocol of the session
   server. One request per line, one response line per request, in
   order. Requests name an op and (usually) a session:

     {"op": "open", "session": "t1", "query": "Q(x) <- R(x,y), S(y)",
      "db": "R(1, 10)\nS(10)\n", "agg": "sum", "tau": "id:R:0", "jobs": 2}
     {"op": "solve",   "session": "t1"}
     {"op": "update",  "session": "t1", "script": "insert R(4, 7)\ndelete R(1, 10)"}
     {"op": "set_tau", "session": "t1", "tau": "id:R:0"}
     {"op": "explain", "session": "t1"}
     {"op": "solve_query", "query": "Q() <- R(x), T(x,y), S(y)",
      "db": "R(1)\nT(1, 2)\nS(2)\n", "agg": "count",
      "fallback": "knowledge-compilation"}
     {"op": "stats"}  or  {"op": "stats", "session": "t1"}
     {"op": "close",   "session": "t1"}
     {"op": "ping"}
     {"op": "shutdown"}

   Responses carry {"ok": true, "op": ...} plus an op-specific payload,
   or {"ok": false, "line": N, "error": "..."} where N is the 1-based
   request line number on the connection. Shapley values travel as
   exact rational strings, never floats — the server's answers are
   bit-identical to the CLI's. *)

module Json = Aggshap_json.Json
module Api = Aggshap_api.Api

let ( let* ) = Result.bind

type request =
  | Open of { session : string; spec : Api.session_spec }
  | Solve of { session : string }
  | Update of { session : string; script : string }
  | Set_tau of { session : string; tau : string }
  | Explain of { session : string }
  | Stats of { session : string option }
  | Solve_query of {
      query : string;
      db : string;
      agg : string;
      tau : string option;
      fallback : string option;
      kc_node_budget : int option;
    }
  | Close of { session : string }
  | Ping
  | Shutdown

type session_stats = {
  steps : int;
  games_computed : int;
  games_reused : int;
  full_recomputes : int;
  facts : int;
  endogenous : int;
}

type response =
  | Opened of { session : string; facts : int }
  | Solved of { session : string; values : (string * string) list }
  | Updated of { session : string; applied : int }
  | Tau_set of { session : string }
  | Explained of {
      session : string;
      cls : string;
      frontier : string;
      within_frontier : bool;
      algorithm : string;
      plan : string list;  (* rendered planner candidates, chosen marked *)
    }
  | Session_stats of { session : string; stats : session_stats }
  | Server_stats of {
      sessions : (string * bool) list;  (** name, live (not evicted to disk) *)
      requests : int;
      evictions : int;
      restores : int;
    }
  | Query_solved of {
      algorithm : string;
      values : (string * string) list;
    }
  | Closed of { session : string }
  | Pong
  | Shutting_down
  | Error of { line : int option; message : string }

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let opt_field name f = function None -> [] | Some v -> [ (name, f v) ]

let request_to_json = function
  | Open { session; spec } ->
    Json.Obj
      ([ ("op", Json.String "open");
         ("session", Json.String session);
         ("query", Json.String spec.Api.query);
         ("db", Json.String spec.Api.db);
         ("agg", Json.String spec.Api.agg) ]
      @ opt_field "tau" (fun s -> Json.String s) spec.Api.tau
      @ opt_field "jobs" (fun j -> Json.Int j) spec.Api.jobs)
  | Solve { session } ->
    Json.Obj [ ("op", Json.String "solve"); ("session", Json.String session) ]
  | Update { session; script } ->
    Json.Obj
      [ ("op", Json.String "update"); ("session", Json.String session);
        ("script", Json.String script) ]
  | Set_tau { session; tau } ->
    Json.Obj
      [ ("op", Json.String "set_tau"); ("session", Json.String session);
        ("tau", Json.String tau) ]
  | Explain { session } ->
    Json.Obj [ ("op", Json.String "explain"); ("session", Json.String session) ]
  | Stats { session } ->
    Json.Obj
      (("op", Json.String "stats")
      :: opt_field "session" (fun s -> Json.String s) session)
  | Solve_query { query; db; agg; tau; fallback; kc_node_budget } ->
    Json.Obj
      ([ ("op", Json.String "solve_query");
         ("query", Json.String query);
         ("db", Json.String db);
         ("agg", Json.String agg) ]
      @ opt_field "tau" (fun s -> Json.String s) tau
      @ opt_field "fallback" (fun s -> Json.String s) fallback
      @ opt_field "kc_node_budget" (fun n -> Json.Int n) kc_node_budget)
  | Close { session } ->
    Json.Obj [ ("op", Json.String "close"); ("session", Json.String session) ]
  | Ping -> Json.Obj [ ("op", Json.String "ping") ]
  | Shutdown -> Json.Obj [ ("op", Json.String "shutdown") ]

let encode_request r = Json.to_line (request_to_json r)

let response_to_json = function
  | Opened { session; facts } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "open");
        ("session", Json.String session); ("facts", Json.Int facts) ]
  | Solved { session; values } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "solve");
        ("session", Json.String session);
        ( "values",
          Json.List
            (List.map
               (fun (fact, value) ->
                 Json.Obj
                   [ ("fact", Json.String fact); ("shapley", Json.String value) ])
               values) ) ]
  | Updated { session; applied } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "update");
        ("session", Json.String session); ("applied", Json.Int applied) ]
  | Tau_set { session } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "set_tau");
        ("session", Json.String session) ]
  | Explained { session; cls; frontier; within_frontier; algorithm; plan } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "explain");
        ("session", Json.String session); ("class", Json.String cls);
        ("frontier", Json.String frontier);
        ("within_frontier", Json.Bool within_frontier);
        ("algorithm", Json.String algorithm);
        ("plan", Json.List (List.map (fun l -> Json.String l) plan)) ]
  | Session_stats { session; stats } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "stats");
        ("session", Json.String session); ("steps", Json.Int stats.steps);
        ("games_computed", Json.Int stats.games_computed);
        ("games_reused", Json.Int stats.games_reused);
        ("full_recomputes", Json.Int stats.full_recomputes);
        ("facts", Json.Int stats.facts);
        ("endogenous", Json.Int stats.endogenous) ]
  | Server_stats { sessions; requests; evictions; restores } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "stats");
        ( "sessions",
          Json.List
            (List.map
               (fun (name, live) ->
                 Json.Obj
                   [ ("name", Json.String name); ("live", Json.Bool live) ])
               sessions) );
        ("requests", Json.Int requests); ("evictions", Json.Int evictions);
        ("restores", Json.Int restores) ]
  | Query_solved { algorithm; values } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "solve_query");
        ("algorithm", Json.String algorithm);
        ( "values",
          Json.List
            (List.map
               (fun (fact, value) ->
                 Json.Obj
                   [ ("fact", Json.String fact); ("shapley", Json.String value) ])
               values) ) ]
  | Closed { session } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "close");
        ("session", Json.String session) ]
  | Pong -> Json.Obj [ ("ok", Json.Bool true); ("op", Json.String "ping") ]
  | Shutting_down -> Json.Obj [ ("ok", Json.Bool true); ("op", Json.String "shutdown") ]
  | Error { line; message } ->
    Json.Obj
      (("ok", Json.Bool false)
      :: (opt_field "line" (fun n -> Json.Int n) line
         @ [ ("error", Json.String message) ]))

let encode_response r = Json.to_line (response_to_json r)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let session_of ~what j = Json.string_field ~what "session" j

let decode_request line =
  let* j =
    match Json.parse line with
    | Ok j -> Ok j
    | Error msg -> Error ("malformed request: not a JSON line (" ^ msg ^ ")")
  in
  let* op = Json.string_field ~what:"request" "op" j in
  let what = op in
  match op with
  | "open" ->
    let* session = session_of ~what j in
    let* query = Json.string_field ~what "query" j in
    let* db = Json.string_field ~what "db" j in
    let* agg = Json.string_field ~what "agg" j in
    let* tau = Json.opt_string_field ~what "tau" j in
    let* jobs = Json.opt_int_field ~what "jobs" j in
    Ok (Open { session; spec = { Api.query; db; agg; tau; jobs } })
  | "solve" ->
    let* session = session_of ~what j in
    Ok (Solve { session })
  | "update" ->
    let* session = session_of ~what j in
    let* script = Json.string_field ~what "script" j in
    Ok (Update { session; script })
  | "set_tau" ->
    let* session = session_of ~what j in
    let* tau = Json.string_field ~what "tau" j in
    Ok (Set_tau { session; tau })
  | "explain" ->
    let* session = session_of ~what j in
    Ok (Explain { session })
  | "stats" ->
    let* session = Json.opt_string_field ~what "session" j in
    Ok (Stats { session })
  | "solve_query" ->
    let* query = Json.string_field ~what "query" j in
    let* db = Json.string_field ~what "db" j in
    let* agg = Json.string_field ~what "agg" j in
    let* tau = Json.opt_string_field ~what "tau" j in
    let* fallback = Json.opt_string_field ~what "fallback" j in
    let* kc_node_budget = Json.opt_int_field ~what "kc_node_budget" j in
    Ok (Solve_query { query; db; agg; tau; fallback; kc_node_budget })
  | "close" ->
    let* session = session_of ~what j in
    Ok (Close { session })
  | "ping" -> Ok Ping
  | "shutdown" -> Ok Shutdown
  | op -> Error (Printf.sprintf "unknown op %S" op)

let decode_response line =
  let* j =
    match Json.parse line with
    | Ok j -> Ok j
    | Error msg -> Error ("malformed response: not a JSON line (" ^ msg ^ ")")
  in
  let* ok = Json.bool_field ~what:"response" "ok" j in
  if not ok then
    let* message = Json.string_field ~what:"error response" "error" j in
    let* line = Json.opt_int_field ~what:"error response" "line" j in
    Ok (Error { line; message })
  else
    let* op = Json.string_field ~what:"response" "op" j in
    let what = op ^ " response" in
    match op with
    | "open" ->
      let* session = session_of ~what j in
      let* facts = Json.int_field ~what "facts" j in
      Ok (Opened { session; facts })
    | "solve" ->
      let* session = session_of ~what j in
      let* items = Json.list_field ~what "values" j in
      let* values =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* fact = Json.string_field ~what "fact" item in
            let* value = Json.string_field ~what "shapley" item in
            Ok ((fact, value) :: acc))
          (Ok []) items
      in
      Ok (Solved { session; values = List.rev values })
    | "update" ->
      let* session = session_of ~what j in
      let* applied = Json.int_field ~what "applied" j in
      Ok (Updated { session; applied })
    | "set_tau" ->
      let* session = session_of ~what j in
      Ok (Tau_set { session })
    | "explain" ->
      let* session = session_of ~what j in
      let* cls = Json.string_field ~what "class" j in
      let* frontier = Json.string_field ~what "frontier" j in
      let* within_frontier = Json.bool_field ~what "within_frontier" j in
      let* algorithm = Json.string_field ~what "algorithm" j in
      let* plan_json = Json.list_field ~what "plan" j in
      let* plan =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match item with
            | Json.String s -> Ok (s :: acc)
            | _ -> Error (what ^ ": plan entries must be strings"))
          (Ok []) plan_json
      in
      let plan = List.rev plan in
      Ok (Explained { session; cls; frontier; within_frontier; algorithm; plan })
    | "stats" -> (
      match Json.member "session" j with
      | Some _ ->
        let* session = session_of ~what j in
        let* steps = Json.int_field ~what "steps" j in
        let* games_computed = Json.int_field ~what "games_computed" j in
        let* games_reused = Json.int_field ~what "games_reused" j in
        let* full_recomputes = Json.int_field ~what "full_recomputes" j in
        let* facts = Json.int_field ~what "facts" j in
        let* endogenous = Json.int_field ~what "endogenous" j in
        Ok
          (Session_stats
             { session;
               stats =
                 { steps; games_computed; games_reused; full_recomputes; facts;
                   endogenous } })
      | None ->
        let* items = Json.list_field ~what "sessions" j in
        let* sessions =
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              let* name = Json.string_field ~what "name" item in
              let* live = Json.bool_field ~what "live" item in
              Ok ((name, live) :: acc))
            (Ok []) items
        in
        let* requests = Json.int_field ~what "requests" j in
        let* evictions = Json.int_field ~what "evictions" j in
        let* restores = Json.int_field ~what "restores" j in
        Ok
          (Server_stats
             { sessions = List.rev sessions; requests; evictions; restores }))
    | "solve_query" ->
      let* algorithm = Json.string_field ~what "algorithm" j in
      let* items = Json.list_field ~what "values" j in
      let* values =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* fact = Json.string_field ~what "fact" item in
            let* value = Json.string_field ~what "shapley" item in
            Ok ((fact, value) :: acc))
          (Ok []) items
      in
      Ok (Query_solved { algorithm; values = List.rev values })
    | "close" ->
      let* session = session_of ~what j in
      Ok (Closed { session })
    | "ping" -> Ok Pong
    | "shutdown" -> Ok Shutting_down
    | op -> Error (Printf.sprintf "unknown response op %S" op)
