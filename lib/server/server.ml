(* shapctl serve: the multi-tenant session server.

   A single-process event loop over a Unix-domain socket. Connections
   are multiplexed with [select]; each carries a chunk-fed
   [Script.Reader] (the same reader the update-script parser uses, so a
   request on a final unterminated line is processed, not dropped) and
   a per-connection request line counter for line-numbered error
   replies. Requests execute to completion in arrival order — the
   protocol is strictly one response line per request line — while the
   heavy lifting inside a solve fans out over the existing Domain pool
   ([jobs] in the session spec, [Batch.shapley_all]'s worker domains),
   so parallelism lives where the work is.

   Durability: sessions are snapshotted at open, at LRU eviction, and
   at clean shutdown (the [shutdown] op, SIGINT, or SIGTERM); see
   {!Registry}. *)

module Script = Aggshap_incr.Script
module Session = Aggshap_incr.Session
module Update = Aggshap_incr.Update
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Hierarchy = Aggshap_cq.Hierarchy
module Agg_query = Aggshap_agg.Agg_query
module Q = Aggshap_arith.Rational
module Api = Aggshap_api.Api

let ( let* ) = Result.bind

type config = {
  socket : string;
  max_sessions : int;
  state_dir : string option;
  default_jobs : int option;  (* for open requests that give no jobs *)
  log : string -> unit;
}

type conn = {
  fd : Unix.file_descr;
  reader : Script.Reader.t;
  mutable lines : int;  (* request lines received on this connection *)
}

type state = {
  config : config;
  registry : Registry.t;
  mutable requests : int;
  mutable stop : bool;
}

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let solve_values session =
  List.map
    (fun (f, v) -> (Fact.to_string f, Q.to_string v))
    (Session.shapley_all session)

let dispatch (st : state) (req : Protocol.request) : Protocol.response =
  let reg = st.registry in
  let respond = function Ok r -> r | Error message -> Protocol.Error { line = None; message } in
  match req with
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Shutdown ->
    Registry.snapshot_all reg;
    st.stop <- true;
    Protocol.Shutting_down
  | Protocol.Open { session; spec } ->
    let spec =
      match (spec.Api.jobs, st.config.default_jobs) with
      | None, (Some _ as d) -> { spec with Api.jobs = d }
      | _ -> spec
    in
    respond
      (let* facts = Registry.open_session reg session spec in
       Ok (Protocol.Opened { session; facts }))
  | Protocol.Solve { session } ->
    respond
      (Registry.with_session reg session (fun _e s ->
           Ok (Protocol.Solved { session; values = solve_values s })))
  | Protocol.Update { session; script } ->
    respond
      (Registry.with_session reg session (fun _e s ->
           let* applied = Api.apply_script s script in
           Ok (Protocol.Updated { session; applied })))
  | Protocol.Set_tau { session; tau } ->
    respond
      (Registry.with_session reg session (fun e s ->
           let* vf = Api.parse_tau (Session.query s).Agg_query.query tau in
           let* () = Api.trap (fun () -> Session.apply s (Update.Set_tau (vf, tau))) in
           e.Registry.spec <- { e.Registry.spec with Api.tau = Some tau };
           Ok (Protocol.Tau_set { session })))
  | Protocol.Explain { session } ->
    respond
      (Registry.with_session reg session (fun _e s ->
           (* The session's live database feeds the planner's cost
              model, so the explain op shows the same candidate costs
              a solve would plan with. *)
           let ex = Api.explain ~db:(Session.database s) (Session.query s) in
           Ok
             (Protocol.Explained
                { session;
                  cls = Hierarchy.cls_to_string ex.Api.cls;
                  frontier = Hierarchy.cls_to_string ex.Api.frontier;
                  within_frontier = ex.Api.within_frontier;
                  algorithm = ex.Api.algorithm;
                  plan = Api.plan_lines ex })))
  | Protocol.Stats { session = Some session } ->
    respond
      (Registry.with_session reg session (fun _e s ->
           let stats = Session.stats s in
           let db = Session.database s in
           Ok
             (Protocol.Session_stats
                { session;
                  stats =
                    { Protocol.steps = stats.Session.steps;
                      games_computed = stats.Session.games_computed;
                      games_reused = stats.Session.games_reused;
                      full_recomputes = stats.Session.full_recomputes;
                      facts = Database.size db;
                      endogenous = Database.endo_size db } })))
  | Protocol.Stats { session = None } ->
    Protocol.Server_stats
      { sessions = Registry.sessions reg; requests = st.requests;
        evictions = Registry.evictions reg; restores = Registry.restores reg }
  | Protocol.Solve_query { query; db; agg; tau; fallback; kc_node_budget } ->
    (* Stateless one-shot solve: nothing opened, nothing retained. This
       is how the exact fallback tiers (and the planner's auto mode)
       are reached over the wire — sessions only exist within the
       tractability frontier. The wire carries exact rationals only, so
       the Monte-Carlo fallback is rejected rather than silently
       degrading the protocol's bit-identical-to-the-CLI promise. *)
    respond
      (let* q = Api.parse_query query in
       let* db = Api.parse_database_text db in
       let* a = Api.make_agg_query ~agg ~tau q in
       let* fallback =
         Api.parse_wire_fallback (Option.value fallback ~default:"naive")
       in
       let* result =
         Api.shapley_all ~fallback ?jobs:st.config.default_jobs ?kc_node_budget
           a db
       in
       let values =
         List.map
           (fun (f, outcome) ->
             match outcome with
             | Aggshap_core.Solver.Exact v -> (Fact.to_string f, Q.to_string v)
             | Aggshap_core.Solver.Estimate _ -> assert false)
           result.Api.values
       in
       let algorithm =
         match result.Api.report with
         | Some r -> r.Aggshap_core.Solver.algorithm
         | None -> ""
       in
       Ok (Protocol.Query_solved { algorithm; values }))
  | Protocol.Close { session } ->
    respond
      (let* () = Registry.close reg session in
       Ok (Protocol.Closed { session }))

(* ------------------------------------------------------------------ *)
(* Connection plumbing                                                 *)
(* ------------------------------------------------------------------ *)

(* SIGINT/SIGTERM install real handlers (the stop flag), so every
   blocking syscall in the loop can return [EINTR] mid-serve. The
   select call already retries; reads and writes must too, or a signal
   that merely requests shutdown kills the connection it lands on. *)
let rec retry_intr f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

let read_retry fd buf off len = retry_intr (fun () -> Unix.read fd buf off len)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then begin
      let w = retry_intr (fun () -> Unix.write fd b off (n - off)) in
      go (off + w)
    end
  in
  go 0

(* One request line: decode, dispatch, reply. Returns false when the
   connection is gone (reply write failed). Blank lines advance the
   line counter but get no reply. *)
let handle_line st conn line =
  conn.lines <- conn.lines + 1;
  if String.trim line = "" then true
  else begin
    st.requests <- st.requests + 1;
    let response =
      match Protocol.decode_request line with
      | Error message -> Protocol.Error { line = Some conn.lines; message }
      | Ok req -> (
        match dispatch st req with
        | Protocol.Error { line = None; message } ->
          Protocol.Error { line = Some conn.lines; message }
        | r -> r)
    in
    match write_all conn.fd (Protocol.encode_response response ^ "\n") with
    | () -> true
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> false
  end

let drop conns conn =
  Hashtbl.remove conns conn.fd;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let handle_readable st conns conn =
  let buf = Bytes.create 65536 in
  match read_retry conn.fd buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    (* Abrupt disconnect. Flush the reader exactly like the EOF path
       below, so a request on a final unterminated line is still
       processed and counted — the connection line numbering (and the
       server request counter) must not depend on how the peer went
       away. The reply write fails harmlessly: the peer is gone. *)
    (match Script.Reader.close conn.reader with
     | Some line -> ignore (handle_line st conn line)
     | None -> ());
    drop conns conn
  | 0 ->
    (* EOF. A final line without a trailing newline is still a request:
       flush the reader before closing. *)
    (match Script.Reader.close conn.reader with
     | Some line -> ignore (handle_line st conn line)
     | None -> ());
    drop conns conn
  | n ->
    let chunk = Bytes.sub_string buf 0 n in
    let rec go = function
      | [] -> ()
      | line :: rest ->
        if handle_line st conn line && not st.stop then go rest
        else if st.stop then ()
        else drop conns conn
    in
    go (Script.Reader.feed conn.reader chunk)

(* ------------------------------------------------------------------ *)
(* The accept/select loop                                              *)
(* ------------------------------------------------------------------ *)

let run (config : config) =
  let* registry =
    Registry.create ?state_dir:config.state_dir ~log:config.log
      ~max_live:config.max_sessions ()
  in
  let st = { config; registry; requests = 0; stop = false } in
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let stop_signal _ = st.stop <- true in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal)
   with Invalid_argument _ | Sys_error _ -> ());
  let* lfd =
    try
      if Sys.file_exists config.socket then Sys.remove config.socket;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX config.socket);
      Unix.listen fd 64;
      Ok fd
    with
    | Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "cannot listen on %s: %s" config.socket
           (Unix.error_message err))
    | Sys_error msg -> Error msg
  in
  config.log
    (Printf.sprintf "listening on %s (max %d resident sessions%s)" config.socket
       config.max_sessions
       (match config.state_dir with
        | Some d -> ", state in " ^ d
        | None -> ", no state dir"));
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 16 in
  while not st.stop do
    let fds = lfd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
    match Unix.select fds [] [] 0.5 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
      List.iter
        (fun fd ->
          if st.stop then ()
          else if fd = lfd then begin
            match Unix.accept lfd with
            | cfd, _ ->
              Hashtbl.replace conns cfd
                { fd = cfd; reader = Script.Reader.create (); lines = 0 }
            | exception Unix.Unix_error _ -> ()
          end
          else
            match Hashtbl.find_opt conns fd with
            | Some conn -> handle_readable st conns conn
            | None -> ())
        ready
  done;
  Registry.snapshot_all registry;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) conns;
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (try Sys.remove config.socket with Sys_error _ -> ());
  config.log "server stopped";
  Ok ()
