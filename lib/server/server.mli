(** The [shapctl serve] event loop: a single-process, [select]-based
    multiplexer serving the {!Protocol} over a Unix-domain socket.

    Requests on one connection execute in arrival order, one response
    line per request line; solve parallelism comes from the session's
    Domain pool ([jobs] in the spec — {!Aggshap_core.Batch} workers),
    so answers stay bit-identical to the CLI's. Each connection reads
    through {!Aggshap_incr.Script.Reader}, so a request on a final
    unterminated line is processed, not dropped, and malformed requests
    get error replies carrying the 1-based connection line number.

    Sessions are snapshotted at open, at LRU eviction, and at clean
    shutdown (the [shutdown] op, SIGINT, or SIGTERM); with a
    [state_dir] they survive restarts (see {!Registry}). *)

type config = {
  socket : string;  (** path of the Unix-domain socket (replaced if stale) *)
  max_sessions : int;  (** LRU capacity: resident sessions, at least 1 *)
  state_dir : string option;  (** snapshot directory; [None] = in-memory only *)
  default_jobs : int option;
      (** worker domains for sessions whose [open] gave no [jobs] *)
  log : string -> unit;  (** one line per lifecycle event *)
}

val run : config -> (unit, string) result
(** Binds, listens, and serves until shutdown; removes the socket file
    on exit. Errors are pre-loop failures (bad state dir, bind). *)

(**/**)

(* Exposed for the test suite: the loop installs SIGINT/SIGTERM
   handlers, so its blocking syscalls must survive [EINTR]. *)

val retry_intr : (unit -> 'a) -> 'a
(** Re-runs [f] until it completes without raising
    [Unix.Unix_error (EINTR, _, _)]. *)

val read_retry : Unix.file_descr -> bytes -> int -> int -> int
(** [Unix.read], retried across [EINTR]. *)

(**/**)
