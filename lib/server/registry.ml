(* The server's session table: many named sessions (one per
   tenant/database), at most [max_live] of them resident in memory.

   A session's resident state is the live [Incr.Session.t] — DP tables,
   membership-game caches, the lot. Its durable state is tiny: the
   [Api.session_spec] strings (query, database text, aggregate, τ spec,
   jobs), refreshed from the live session at eviction time. Restoring
   replays [Api.open_session] on the spec, which recompiles the caches;
   values are bit-identical because the solver is deterministic.

   LRU: every access stamps the entry with a logical clock; when the
   resident count exceeds [max_live], the least-recently-used resident
   entry (other than the one being accessed) is evicted. With a
   [state_dir], eviction and shutdown also write the spec to disk as a
   SHAPSESS_v1 JSON snapshot, so sessions survive server restarts. *)

module Json = Aggshap_json.Json
module Api = Aggshap_api.Api
module Session = Aggshap_incr.Session
module Database = Aggshap_relational.Database

let ( let* ) = Result.bind

type entry = {
  name : string;
  mutable spec : Api.session_spec;  (* db/tau refreshed at eviction *)
  mutable session : Session.t option;  (* None = evicted *)
  mutable last_used : int;
}

type t = {
  state_dir : string option;
  max_live : int;
  tbl : (string, entry) Hashtbl.t;
  log : string -> unit;
  mutable clock : int;
  mutable evictions : int;
  mutable restores : int;
}

let snapshot_schema = "SHAPSESS_v1"

(* ------------------------------------------------------------------ *)
(* Snapshot files                                                      *)
(* ------------------------------------------------------------------ *)

let snapshot_suffix = ".session.json"

(* Session names are tenant-controlled; percent-encode anything that is
   not filename-safe so names map 1:1 onto snapshot files. *)
let encode_name name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c)))
    name;
  Buffer.contents buf

let snapshot_path dir name = Filename.concat dir (encode_name name ^ snapshot_suffix)

let snapshot_json (e : entry) =
  Json.Obj
    [ ("schema", Json.String snapshot_schema);
      ("name", Json.String e.name);
      ("query", Json.String e.spec.Api.query);
      ("agg", Json.String e.spec.Api.agg);
      ( "tau",
        match e.spec.Api.tau with Some s -> Json.String s | None -> Json.Null );
      ("jobs", match e.spec.Api.jobs with Some j -> Json.Int j | None -> Json.Null);
      ("db", Json.String e.spec.Api.db) ]

let parse_snapshot contents =
  let what = "snapshot" in
  let* j = Json.parse contents in
  let* schema = Json.string_field ~what "schema" j in
  let* () =
    if String.equal schema snapshot_schema then Ok ()
    else Error (Printf.sprintf "schema is %S, expected %S" schema snapshot_schema)
  in
  let* name = Json.string_field ~what "name" j in
  let* query = Json.string_field ~what "query" j in
  let* agg = Json.string_field ~what "agg" j in
  let* tau = Json.opt_string_field ~what "tau" j in
  let* jobs = Json.opt_int_field ~what "jobs" j in
  let* db = Json.string_field ~what "db" j in
  Ok (name, { Api.query; db; agg; tau; jobs })

let write_file path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Pull the durable state out of a live session: the current database
   rendered back to text. τ and jobs are already tracked in the spec
   (set_tau updates it); query and aggregate never change. *)
let refresh_spec (e : entry) =
  match e.session with
  | None -> ()
  | Some s ->
    e.spec <- { e.spec with Api.db = Api.render_database (Session.database s) }

let write_snapshot t (e : entry) =
  match t.state_dir with
  | None -> ()
  | Some dir -> (
    try write_file (snapshot_path dir e.name) (Json.to_string (snapshot_json e))
    with Sys_error msg ->
      t.log (Printf.sprintf "snapshot of %S failed: %s" e.name msg))

let remove_snapshot t name =
  match t.state_dir with
  | None -> ()
  | Some dir ->
    let path = snapshot_path dir name in
    if Sys.file_exists path then try Sys.remove path with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Creation / restart restore                                          *)
(* ------------------------------------------------------------------ *)

let create ?state_dir ?(log = fun _ -> ()) ~max_live () =
  if max_live < 1 then Error "max-sessions must be at least 1"
  else
    let* () =
      match state_dir with
      | None -> Ok ()
      | Some dir -> (
        match (try Ok (Sys.is_directory dir) with Sys_error _ -> Error false) with
        | Ok true -> Ok ()
        | Ok false -> Error (dir ^ " exists and is not a directory")
        | Error _ -> (
          try
            Unix.mkdir dir 0o755;
            Ok ()
          with Unix.Unix_error (err, _, _) ->
            Error
              (Printf.sprintf "cannot create state dir %s: %s" dir
                 (Unix.error_message err))))
    in
    let t =
      { state_dir; max_live; tbl = Hashtbl.create 16; log; clock = 0;
        evictions = 0; restores = 0 }
    in
    (* Register every snapshot on disk as an evicted session; it is
       restored (and validated) lazily, on first touch. *)
    (match state_dir with
     | None -> ()
     | Some dir ->
       Array.iter
         (fun file ->
           if Filename.check_suffix file snapshot_suffix then
             let path = Filename.concat dir file in
             match parse_snapshot (read_file path) with
             | Ok (name, spec) ->
               Hashtbl.replace t.tbl name
                 { name; spec; session = None; last_used = 0 }
             | Error msg -> t.log (Printf.sprintf "ignoring %s: %s" path msg)
             | exception Sys_error msg -> t.log (Printf.sprintf "ignoring %s: %s" path msg))
         (try Sys.readdir dir with Sys_error _ -> [||]));
    Ok t

(* ------------------------------------------------------------------ *)
(* LRU                                                                 *)
(* ------------------------------------------------------------------ *)

let touch t (e : entry) =
  t.clock <- t.clock + 1;
  e.last_used <- t.clock

let live_entries t =
  Hashtbl.fold (fun _ e acc -> if e.session <> None then e :: acc else acc) t.tbl []

let evict t (e : entry) =
  refresh_spec e;
  write_snapshot t e;
  e.session <- None;
  t.evictions <- t.evictions + 1;
  t.log (Printf.sprintf "evicted session %S" e.name)

(* Evict least-recently-used residents until at most [max_live] remain;
   [keep] (the entry being accessed) is never evicted. *)
let enforce_limit t ~(keep : entry) =
  let rec go () =
    let live = live_entries t in
    if List.length live > t.max_live then begin
      match
        List.sort (fun a b -> compare a.last_used b.last_used) live
        |> List.find_opt (fun e -> e.name <> keep.name)
      with
      | Some victim ->
        evict t victim;
        go ()
      | None -> ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Operations                                                          *)
(* ------------------------------------------------------------------ *)

let open_session t name spec =
  let* session = Api.open_session spec in
  let e =
    match Hashtbl.find_opt t.tbl name with
    | Some e ->
      e.spec <- spec;
      e.session <- Some session;
      e
    | None ->
      let e = { name; spec; session = Some session; last_used = 0 } in
      Hashtbl.replace t.tbl name e;
      e
  in
  touch t e;
  write_snapshot t e;
  enforce_limit t ~keep:e;
  Ok (Database.size (Session.database session))

let with_session t name f =
  match Hashtbl.find_opt t.tbl name with
  | None -> Error (Printf.sprintf "no such session %S (open it first)" name)
  | Some e ->
    let* session =
      match e.session with
      | Some s -> Ok s
      | None -> (
        match Api.open_session e.spec with
        | Ok s ->
          e.session <- Some s;
          t.restores <- t.restores + 1;
          t.log (Printf.sprintf "restored session %S" e.name);
          Ok s
        | Error msg ->
          Error (Printf.sprintf "cannot restore session %S: %s" name msg))
    in
    touch t e;
    enforce_limit t ~keep:e;
    f e session

let close t name =
  match Hashtbl.find_opt t.tbl name with
  | None -> Error (Printf.sprintf "no such session %S (open it first)" name)
  | Some _ ->
    Hashtbl.remove t.tbl name;
    remove_snapshot t name;
    Ok ()

let snapshot_all t =
  Hashtbl.iter
    (fun _ e ->
      if e.session <> None then begin
        refresh_spec e;
        write_snapshot t e
      end)
    t.tbl

let sessions t =
  Hashtbl.fold (fun name e acc -> (name, e.session <> None) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let evictions t = t.evictions
let restores t = t.restores
