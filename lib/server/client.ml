(* Client side of the wire protocol: a blocking connection speaking one
   request line / one response line at a time. Used by [shapctl client]
   and the load generator. *)

module Script = Aggshap_incr.Script

let ( let* ) = Result.bind

type t = {
  fd : Unix.file_descr;
  reader : Script.Reader.t;
  mutable pending : string list;  (* complete lines read ahead of need *)
}

(* The server may still be binding its socket when the first client
   arrives (CI boots them back to back), so connection errors that look
   like "not up yet" retry until the deadline. *)
let connect ?(retry_ms = 5000) path =
  let deadline = Unix.gettimeofday () +. (float_of_int retry_ms /. 1000.0) in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd; reader = Script.Reader.create (); pending = [] }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED) as err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () < deadline then begin
        Unix.sleepf 0.05;
        go ()
      end
      else
        Error
          (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message err))
    | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message err))
  in
  go ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_line t line =
  let b = Bytes.of_string (line ^ "\n") in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.write t.fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (err, _, _) ->
        Error (Printf.sprintf "cannot send request: %s" (Unix.error_message err))
  in
  go 0

let recv_line t =
  let buf = Bytes.create 65536 in
  let rec go () =
    match t.pending with
    | line :: rest ->
      t.pending <- rest;
      Ok line
    | [] -> (
      match Unix.read t.fd buf 0 (Bytes.length buf) with
      | exception Unix.Unix_error (err, _, _) ->
        Error (Printf.sprintf "cannot read response: %s" (Unix.error_message err))
      | 0 -> (
        match Script.Reader.close t.reader with
        | Some line -> Ok line
        | None -> Error "connection closed by server")
      | n ->
        t.pending <- Script.Reader.feed t.reader (Bytes.sub_string buf 0 n);
        go ())
  in
  go ()

let request t req =
  let* () = send_line t (Protocol.encode_request req) in
  let* line = recv_line t in
  match Protocol.decode_response line with
  | Ok r -> Ok r
  | Error msg -> Error (Printf.sprintf "bad response from server: %s" msg)

let with_connection ?retry_ms path f =
  let* t = connect ?retry_ms path in
  let result = f t in
  close t;
  result
