(** SHAPWIRE_v1: the server's newline-delimited JSON wire protocol.

    One request per line, one response line per request, in order.
    Shapley values travel as exact rational strings, never floats —
    server answers are bit-identical to the CLI's. The encoders emit
    compact single-line JSON (safe for the stream: newlines inside
    payloads are escaped); the decoders accept any single-line JSON
    spelling of the same object. *)

module Api = Aggshap_api.Api

type request =
  | Open of { session : string; spec : Api.session_spec }
      (** Create (or replace) a named session — one per tenant/database. *)
  | Solve of { session : string }
  | Update of { session : string; script : string }
      (** Apply a whole update script (insert/delete/set_tau lines). *)
  | Set_tau of { session : string; tau : string }
  | Explain of { session : string }
  | Stats of { session : string option }
      (** With a session: its reuse statistics. Without: server-wide
          session table, request count, eviction/restore counts. *)
  | Solve_query of {
      query : string;
      db : string;  (** database text, {!Aggshap_cq.Parser.parse_database} syntax *)
      agg : string;
      tau : string option;
      fallback : string option;  (** {!Api.parse_fallback} spelling; default naive.
          Monte-Carlo is rejected: the wire carries exact rationals only. *)
      kc_node_budget : int option;
          (** d-DNNF node budget; an aborted compilation falls down the
              planner's degradation ladder. *)
    }
      (** Stateless one-shot solve — no session, nothing retained. The
          way to reach the exact fallback tiers (naive,
          knowledge-compilation) over the wire, since sessions only
          exist within the tractability frontier. *)
  | Close of { session : string }  (** Drop the session and its snapshot. *)
  | Ping
  | Shutdown  (** Snapshot every live session, reply, and exit. *)

type session_stats = {
  steps : int;
  games_computed : int;
  games_reused : int;
  full_recomputes : int;
  facts : int;
  endogenous : int;
}

type response =
  | Opened of { session : string; facts : int }
  | Solved of { session : string; values : (string * string) list }
      (** Fact and exact Shapley value, both as strings, in
          [Database.endogenous] order. *)
  | Updated of { session : string; applied : int }
  | Tau_set of { session : string }
  | Explained of {
      session : string;
      cls : string;
      frontier : string;
      within_frontier : bool;
      algorithm : string;
      plan : string list;
          (** rendered solve-planner candidates, one line each, the
              chosen route marked with "*" *)
    }
  | Session_stats of { session : string; stats : session_stats }
  | Server_stats of {
      sessions : (string * bool) list;  (** name, live (not evicted to disk) *)
      requests : int;
      evictions : int;
      restores : int;
    }
  | Query_solved of {
      algorithm : string;  (** the report's algorithm string, as [explain] *)
      values : (string * string) list;
    }
      (** Answer to {!Solve_query}: fact and exact Shapley value, both
          as strings, in [Database.endogenous] order — bit-identical to
          [shapctl solve] on the same inputs. *)
  | Closed of { session : string }
  | Pong
  | Shutting_down
  | Error of { line : int option; message : string }
      (** [line] is the 1-based request line number on the connection. *)

val encode_request : request -> string
(** One line, no newline characters, not newline-terminated. *)

val decode_request : string -> (request, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result
