let default_jobs () = Domain.recommended_domain_count ()

let map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs = 1 -> List.map f xs
  | _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let jobs = min jobs n in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (try results.(i) <- Some (f arr.(i))
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get failure with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
