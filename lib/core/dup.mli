(** Shapley values for has-duplicates (Dup) over sq-hierarchical CQs
    (Theorem 6.1 and Appendix E.2).

    The computation works with NoDup = 1 − Dup. For a {e connected}
    sq-hierarchical CQ every free variable occurs in every atom, so each
    fact determines the (unique) answer it can contribute to, and hence a
    τ-value class; the answer bag is duplicate-free iff every class
    produces at most one answer, counted with the [P⁰]/[P¹] tables of
    {!Count_dp} and combined by the dynamic program of Figure 5. A
    disconnected CQ [Q₁ × Q₂] (τ in [Q₁]) has duplicates iff [Q₁] is
    nonempty and [Q₂] has ≥ 2 answers, or [Q₁] has duplicates and [Q₂]
    exactly one (Appendix E.2.3). *)

type memo
(** Shared cache of Dup tables and answer-count sub-tables; see {!Memo}.
    Create one per batch run over a fixed [(query, τ)]. *)

val create_memo : unit -> memo
val memo_stats : memo -> Memo.stats

val sum_k :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_arith.Rational.t array
(** @raise Invalid_argument if the aggregate is not [Has_duplicates] or
    the CQ is not sq-hierarchical. *)

val sum_k_memo :
  ?memo:memo ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_arith.Rational.t array
(** {!sum_k} with sub-table sharing across calls. *)

val shapley :
  ?memo:memo ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t

val batch_worker :
  ?memo:memo ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** Per-fact worker for the batch engine; safe to call from several
    domains when sharing a [memo]. *)

val shapley_all :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  (Aggshap_relational.Fact.t * Aggshap_arith.Rational.t) list
