(** Exact Shapley values by explicit coalition enumeration.

    This is the exponential baseline: it evaluates the aggregate query on
    every coalition of endogenous facts. It is (i) the correctness oracle
    for all dynamic programs, (ii) the only exact option beyond each
    aggregate's tractability frontier, and (iii) the "Shapley oracle"
    consumed by the executable hardness reductions. *)

val game :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t array * Game.t
(** The cooperative game of the paper: players are the endogenous facts
    (returned array fixes the player indexing) and
    [v(C) = A(C ∪ Dˣ) − A(Dˣ)].
    @raise Invalid_argument if there are more than {!Game.max_players}
    endogenous facts. *)

val index_of : Aggshap_relational.Fact.t array -> Aggshap_relational.Fact.t -> int
(** Player index of a fact in the array returned by {!game} — the one
    fact-to-index resolution shared by every naive score ({!shapley},
    [Solver.banzhaf]).
    @raise Invalid_argument if the fact is not among the players. *)

val shapley :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** @raise Invalid_argument if the fact is not endogenous. *)

val shapley_all :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  (Aggshap_relational.Fact.t * Aggshap_arith.Rational.t) list

val sum_k :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_arith.Rational.t array
(** The vector [sum_k(A, D)] of Equation (6), by enumeration — the test
    oracle for the dynamic programs' [sum_k] implementations. *)
