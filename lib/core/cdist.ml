module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Hierarchy = Aggshap_cq.Hierarchy
module Agg_query = Aggshap_agg.Agg_query
module Aggregate = Aggshap_agg.Aggregate
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact

let check (a : Agg_query.t) =
  (match a.alpha with
   | Aggregate.Count_distinct -> ()
   | other ->
     invalid_arg ("Cdist: aggregate " ^ Aggregate.to_string other ^ " is not count-distinct"));
  if not (Hierarchy.is_all_hierarchical a.query) then
    invalid_arg ("Cdist: query is not all-hierarchical: " ^ Cq.to_string a.query)

(* [D_a]: drop the τ-relation facts whose τ-value differs from [a]. *)
let restrict_to_value (a : Agg_query.t) db v =
  let rel = a.tau.Aggshap_agg.Value_fn.rel in
  Database.filter
    (fun (f : Fact.t) _ ->
      (not (String.equal f.rel rel)) || Q.equal (Agg_query.tau_of_fact a f) v)
    db

let distinct_values (a : Agg_query.t) db =
  List.sort_uniq Q.compare (List.map snd (Agg_query.answer_values a db))

type memo = Boolean_dp.memo

let create_memo = Boolean_dp.create_memo
let memo_stats = Boolean_dp.memo_stats

(* Null players may be dropped for both the Shapley and the Banzhaf
   coefficients, so the per-value decomposition supports both. *)
let score_restricted ?coefficients ?memo (a : Agg_query.t) restricted db f =
  (match Database.provenance db f with
   | Some Database.Endogenous -> ()
   | _ -> invalid_arg "Cdist.shapley: fact must be endogenous");
  List.fold_left
    (fun acc db_v ->
      if Database.mem f db_v then
        Q.add acc (Boolean_dp.score ?coefficients ?memo a.query db_v f)
      else acc)
    Q.zero restricted

let restricted_dbs (a : Agg_query.t) db =
  List.map (restrict_to_value a db) (distinct_values a db)

let score ?coefficients ?memo a db f =
  check a;
  score_restricted ?coefficients ?memo a (restricted_dbs a db) db f

let shapley ?memo a db f = score ?memo a db f

let batch_worker ?memo a db =
  check a;
  let restricted = restricted_dbs a db in
  fun f -> score_restricted ?memo a restricted db f

let shapley_all a db =
  let worker = batch_worker a db in
  List.map (fun f -> (f, worker f)) (Database.endogenous db)
