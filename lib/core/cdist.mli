(** Shapley values for count-distinct over all-hierarchical CQs
    (Theorem 4.1 via Lemma 4.3).

    CDist is the sum of the per-value indicator games: writing [D_a] for
    the database where the τ-relation keeps only its facts of τ-value
    [a],

    {v Shapley(f, CDist∘τ∘Q)[D] = Σ_{a ∈ (τ∘Q)(D)} Shapley(f, Q_bool)[D_a] v}

    with the convention that the summand is 0 when [f ∉ D_a]. Each
    summand is a Boolean hierarchical membership game. *)

type memo
(** Shared cache of Boolean sub-tables across the per-value games; see
    {!Memo}. Create one per batch run over a fixed [(query, τ)]. *)

val create_memo : unit -> memo
val memo_stats : memo -> Memo.stats

val shapley :
  ?memo:memo ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** @raise Invalid_argument if the aggregate is not [Count_distinct], the
    CQ is not all-hierarchical, or the fact is not endogenous. *)

val batch_worker :
  ?memo:memo ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** [batch_worker ?memo a db] hoists the per-value restricted databases
    out of the per-fact loop; the returned closure is safe to call from
    several domains. *)

val score :
  ?coefficients:Sumk.coefficients ->
  ?memo:memo ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** Shapley-like scores; sound for coefficient families invariant under
    null-player removal (Shapley and Banzhaf are). *)

val shapley_all :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  (Aggshap_relational.Fact.t * Aggshap_arith.Rational.t) list
