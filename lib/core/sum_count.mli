(** Shapley values for Sum and Count over ∃-hierarchical CQs
    (Livshits et al.; positive side of Theorem 3.1).

    By linearity of the Shapley value, for [A = Sum ∘ τ ∘ Q]:

    {v Shapley(f, A) = Σ_{t ∈ Q(D)} τ(t) · Shapley(f, "t ∈ Q(·)") v}

    and each membership game ["t ∈ Q(·)"] is the Boolean game of the
    hierarchical CQ obtained by grounding the head variables of [Q] to
    [t], which {!Boolean_dp} solves. [Count] is [Sum] with τ ≡ 1 per
    answer. *)

type memo
(** Shared cache of Boolean sub-tables across the membership games; see
    {!Memo}. Create one per batch run over a fixed [(query, τ)]. *)

val create_memo : unit -> memo
val memo_stats : memo -> Memo.stats

val membership_games :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  (Aggshap_cq.Cq.t * Aggshap_arith.Rational.t) list
(** The per-answer membership games with their τ-weights: one Boolean
    query (the head grounded to the answer tuple) per answer of non-zero
    weight, in deterministic answer order. The decomposition the
    incremental engine maintains game-by-game.
    @raise Invalid_argument if τ is not localized on the database. *)

val shapley :
  ?memo:memo ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** @raise Invalid_argument if the aggregate is not [Sum] or [Count], if
    the CQ is not ∃-hierarchical, or the fact is not endogenous. *)

val batch_worker :
  ?memo:memo ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** [batch_worker ?memo a db] hoists the per-query work (answer
    enumeration, grounding) out of the per-fact loop; the returned
    closure is safe to call from several domains. *)

val shapley_all :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  (Aggshap_relational.Fact.t * Aggshap_arith.Rational.t) list

val score :
  ?coefficients:Sumk.coefficients ->
  ?memo:memo ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** Shapley-like scores through the same linearity argument (any such
    score is linear in the utility). *)
