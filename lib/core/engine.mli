(** The generic Figure-2 decomposition engine.

    Every polynomial-time algorithm of the paper is an instance of one
    dynamic-programming template over the hierarchical decomposition of
    the query (Figure 2):

    - an {e empty} query (no atoms) is a base case;
    - a {e ground} connected component (a single variable-free atom) is
      a leaf whose table reads the matching fact's provenance;
    - a {e disconnected} query is the conjunction of its connected
      components, evaluated on disjoint fact sets ([combine]);
    - a {e connected} query picks a root variable [x] (one occurring in
      every atom), partitions the database into per-value blocks, and
      merges the recursive tables of the blocks ([merge]).

    What varies between the aggregates is only the {e table} carried up
    the recursion and the semantics of [merge]/[combine]: satisfaction
    counts for the Boolean membership game (Section 3), answer-count
    tables for Count (Section 5.1), [(a,k)]-tables for Min/Max
    (Section 4.2), [(a,k,ℓ)]-tables for Avg/Quantile (Section 5), and
    duplicate-freeness counts for Has-duplicates (Section 6). This
    module factors the shared recursion out: each aggregate supplies a
    {!TABLE_ALGEBRA} and inherits memoization, fault injection,
    per-node statistics and optional root-block parallelism for free.

    The engine is the {e only} module that calls
    {!Aggshap_cq.Decompose.choose_root} and
    {!Aggshap_cq.Decompose.partition}; algorithms that need the raw
    top-level split (the Min/Max batch worker's sibling precombination)
    go through {!connected_root} and {!root_partition}. *)

(** {1 Per-node statistics}

    Global counters over every {!Make} instance, surfaced by
    [shapctl --stats] and the bench JSON reports. Like
    {!Tables.stats}, they are plain counters: approximate under
    concurrent domains. *)

type stats = {
  nodes : int;  (** recursion nodes entered (memo hits excluded) *)
  leaves : int;  (** base cases: ground atoms and algebra-specific leaves *)
  merges : int;  (** root-variable partitions merged *)
  combines : int;  (** disconnected-component conjunctions *)
  parallel_merges : int;  (** merges whose blocks were evaluated on the pool *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

(** {1 Root-block parallelism}

    Opt-in evaluation of the independent blocks of the {e top-level}
    root partition on the {!Pool} domains. Off by default ([1]); the
    recursion below the top partition always runs sequentially, so the
    setting composes with (but multiplies the domain count of) the
    per-fact parallelism of {!Batch}. Results are bit-identical for
    every setting: the pool preserves block order and the arithmetic is
    exact. *)

val set_block_jobs : int -> unit
(** Values [<= 1] disable block parallelism. *)

val block_jobs : unit -> int

(** {1 The table algebra} *)

(** What an aggregate must provide to instantiate the engine. The table
    type is the DP state attached to a sub-instance [(q, db)]; the
    context is the per-run environment threaded through the recursion
    unchanged (the value function τ, reference values, sub-algorithm
    memo handles). *)
module type TABLE_ALGEBRA = sig
  type table
  (** The DP table of one sub-instance. Must be immutable: tables are
      shared through the memo across facts and domains. *)

  type ctx
  (** Per-run environment, constant across the recursion. *)

  val memo_prefix : ctx -> string
  (** Prepended to {!Aggshap_cq.Decompose.block_key} to form the memo
      key. [""] when the block key alone identifies the table; the
      Avg/Quantile algebra prepends its reference value (the same
      sub-instance is revisited once per realizable τ-value). Context
      components outside the key (τ itself) make a memo sound only
      within one run — see {!Memo}. *)

  val leaf : ctx -> Aggshap_cq.Cq.t -> Aggshap_relational.Database.t -> table option
  (** Pre-decomposition base case, checked before connected components
      are computed. The Count and Avg/Quantile algebras cut off Boolean
      sub-queries here (delegating to the Boolean engine); [None]
      continues with the generic decomposition. *)

  val connected_leaf :
    ctx -> Aggshap_cq.Cq.t -> Aggshap_relational.Database.t -> table option
  (** Base case for a single connected component, checked before a root
      variable is chosen. Ground atoms land here; the Has-duplicates
      algebra resolves {e every} connected sub-query here (Figure 5
      treats the connected case whole, so its recursion only ever
      decomposes cross products). *)

  val empty : ctx -> Aggshap_relational.Database.t -> table
  (** Table of the query with no atoms (vacuously true). Algebras whose
      queries always retain the τ-relation may raise. *)

  val root_mode : [ `Any_root | `Free_root ]
  (** [`Free_root] restricts root selection to free variables — the
      q-hierarchical requirement of the Count and Avg/Quantile
      algorithms (Section 5.1), under which sibling blocks have
      disjoint answer sets. *)

  val root_error : string
  (** Message prefix raised (with the query appended) when no admissible
      root variable exists. *)

  val merge :
    ctx ->
    root:string ->
    (Aggshap_relational.Value.t * Aggshap_relational.Database.t * table) list ->
    table
  (** Disjunction over the blocks of the root-variable partition, given
      as [(root value, block, table)] in block order. The Boolean
      algebra convolves complements (the query holds iff {e some} block
      holds); the keyed algebras fold their union combinators. *)

  val combine :
    ctx ->
    Aggshap_cq.Cq.t ->
    Aggshap_relational.Database.t ->
    (Aggshap_cq.Cq.t * Aggshap_relational.Database.t * (unit -> table)) list ->
    table
  (** Conjunction over connected components, given as
      [(component, restricted db, recursion thunk)] in component order.
      Forcing a thunk evaluates that component through the engine
      (memoized); algebras that treat some components specially (the
      τ-free sides of Min/Max and Avg/Quantile, the cross-product step
      of Has-duplicates) may ignore the thunks of those components and
      run a sub-algorithm on the restricted database instead. The whole
      query and database are provided for algebras that need them
      (Has-duplicates re-groups the non-τ components). *)

  val pad : ctx -> int -> table -> table
  (** Account for [p] endogenous null players dropped by the partition
      (facts matching no block) or by the relevance filter. *)
end

(** {1 The engine} *)

module Make (A : TABLE_ALGEBRA) : sig
  val eval :
    ?memo:A.table Memo.t ->
    A.ctx ->
    Aggshap_cq.Cq.t ->
    Aggshap_relational.Database.t ->
    A.table
  (** The Figure-2 recursion, assuming every fact of [db] matches some
      atom of [q] (sub-instances produced by the engine itself satisfy
      this). Every node is memoized under
      [A.memo_prefix ctx ^ Decompose.block_key q db] when [?memo] is
      given.
      @raise Invalid_argument via [A.root_error] when a connected
      sub-query has no admissible root. *)

  val eval_top :
    ?memo:A.table Memo.t ->
    A.ctx ->
    Aggshap_cq.Cq.t ->
    Aggshap_relational.Database.t ->
    A.table
  (** {!eval} on the relevant part of [db]
      ({!Aggshap_cq.Decompose.relevant}), padding the result with the
      irrelevant endogenous facts — the standard top-level entry of
      every aggregate. *)
end

(** {1 Controlled access to the decomposition}

    For the one algorithm that needs the top-level split outside the
    recursion: the Min/Max batch worker precombines sibling blocks with
    prefix/suffix sweeps and re-partitions per-fact variant databases.
    Keeping these here preserves the invariant that only the engine
    touches [Decompose.choose_root]/[partition] (and that the
    [`Block_drop] fault covers every partition). *)

val connected_root : Aggshap_cq.Cq.t -> string option
(** [Some x] iff the query is a single non-ground connected component
    with root variable [x] (the preferred root, as chosen by the
    engine). *)

val root_partition :
  Aggshap_cq.Cq.t ->
  root:string ->
  Aggshap_relational.Database.t ->
  (Aggshap_relational.Value.t * Aggshap_relational.Database.t) list
  * Aggshap_relational.Database.t
(** The engine's partition step: the per-value blocks of [root] and the
    facts falling in no block, with the [`Block_drop] fault applied. *)

(** {1 Static decomposition trees}

    The recursion tree of the engine on a query, independent of any
    database: what [shapctl explain] prints. Root-variable nodes record
    whether the chosen root is free (the [`Free_root] algebras require
    this); a [Stuck] node marks a sub-query with no root variable —
    the query is not hierarchical and every engine instance would
    reject it there. *)

type shape =
  | Empty  (** no atoms: vacuously true *)
  | Ground of string  (** ground-atom leaf (relation name) *)
  | Partition of { root : string; free : bool; sub : shape }
      (** connected: partition on the root, recurse on one generic block *)
  | Cross of (string * shape) list
      (** disconnected: conjunction of components (rendered sub-queries) *)
  | Stuck of string  (** connected but no root variable: not hierarchical *)

val shape : Aggshap_cq.Cq.t -> shape
(** The decomposition tree the engine follows on [q]. Root bindings are
    simulated with a placeholder constant, so the tree mirrors the
    runtime recursion on any database. *)

val pp_shape : Format.formatter -> shape -> unit
(** Indented rendering, one node per line. *)
