(** Shapley values for Average and Quantile (incl. Median) over
    q-hierarchical CQs (Theorem 5.1, Section 5.1 and Appendix D.1).

    For each τ-value [a] realized on the full database, a dynamic program
    computes [N_a(k, ℓ<, ℓ=, ℓ>)] — the number of [k]-subsets whose answer
    bag contains [ℓ=] copies of [a], [ℓ<] elements below and [ℓ>] above.
    Then

    {v sum_k(Avg)   = Σ_a Σ_ℓ  a·ℓ= / (ℓ<+ℓ=+ℓ>) · N_a(k, ℓ)
       sum_k(Qnt_q) = Σ_a Σ_ℓ  a·f_q(ℓ<, ℓ=, ℓ>)  · N_a(k, ℓ) v}

    where [f_q] is the rank-indicator weight of Section 5.1. The
    q-hierarchical property makes sibling answer sets disjoint (ℓ adds
    under union) and cross products multiply ℓ by the τ-free side's
    answer count, provided by {!Count_dp}. *)

(** {2 Table algebra}

    The (a,k,ℓ)-table combinators the engine instance is built from,
    exposed for the algebraic-law tests: [combine_vtables vec_add] is
    associative and commutative with unit [neutral_union]. *)

type vtable
(** [N_a(k, ℓ<, ℓ=, ℓ>)] for one sub-query and reference value. *)

val neutral_union : vtable
(** The empty sub-database: one 0-subset with the empty answer bag. *)

val vtable_of : n:int -> ((int * int * int) * Tables.counts) list -> vtable
(** Build a table from per-ℓ-vector counts (duplicates are added). *)

val vec_add : int * int * int -> int * int * int -> int * int * int

val combine_vtables :
  (int * int * int -> int * int * int -> int * int * int) -> vtable -> vtable -> vtable
(** Convolve per-k counts and combine ℓ-vectors with the given
    operation; all-zero rows are dropped. *)

val pad_vtable : int -> vtable -> vtable
(** Account for extra null players. *)

val vtable_equal : vtable -> vtable -> bool
(** Structural equality, treating absent rows as rows of zeros. *)

type memo
(** Shared cache of (a,k,ℓ)-tables plus the Boolean and answer-count
    sub-tables; see {!Memo}. Create one per batch run over a fixed
    [(query, τ, aggregate)]. *)

val create_memo : unit -> memo
val memo_stats : memo -> Memo.stats

val sum_k :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_arith.Rational.t array
(** @raise Invalid_argument if the aggregate is not Avg/Median/Quantile
    or the CQ is not q-hierarchical. *)

val sum_k_memo :
  ?memo:memo ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_arith.Rational.t array
(** {!sum_k} with sub-table sharing across calls. *)

val shapley :
  ?memo:memo ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t

val batch_worker :
  ?memo:memo ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** Per-fact worker for the batch engine; safe to call from several
    domains when sharing a [memo]. *)

val shapley_all :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  (Aggshap_relational.Fact.t * Aggshap_arith.Rational.t) list
