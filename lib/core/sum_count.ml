module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Hierarchy = Aggshap_cq.Hierarchy
module Agg_query = Aggshap_agg.Agg_query
module Aggregate = Aggshap_agg.Aggregate
module Database = Aggshap_relational.Database

let check (a : Agg_query.t) =
  (match a.alpha with
   | Aggregate.Sum | Aggregate.Count -> ()
   | other ->
     invalid_arg
       ("Sum_count: aggregate " ^ Aggregate.to_string other ^ " is not sum/count"));
  if not (Hierarchy.is_exists_hierarchical a.query) then
    invalid_arg
      ("Sum_count: query is not exists-hierarchical: " ^ Cq.to_string a.query)

(* Ground the head variables of [q] to the answer tuple [t]. *)
let membership_query q t =
  List.fold_left2
    (fun acc x v -> Cq.substitute acc x v)
    q q.Cq.head (Array.to_list t)

let weighted_answers (a : Agg_query.t) db =
  let answers = Agg_query.answer_values a db in
  match a.alpha with
  | Aggregate.Count -> List.map (fun (t, _) -> (t, Q.one)) answers
  | _ -> answers

type memo = Boolean_dp.memo

let create_memo = Boolean_dp.create_memo
let memo_stats = Boolean_dp.memo_stats

(* The membership games, one per answer, with their weights — the part
   of the computation shared by every fact. *)
let membership_games (a : Agg_query.t) db =
  List.filter_map
    (fun (t, weight) ->
      if Q.is_zero weight then None
      else Some (membership_query a.query t, weight))
    (weighted_answers a db)

let score ?coefficients ?memo a db f =
  check a;
  List.fold_left
    (fun acc (mq, weight) ->
      Q.add acc (Q.mul weight (Boolean_dp.score ?coefficients ?memo mq db f)))
    Q.zero (membership_games a db)

let shapley ?memo a db f = score ?memo a db f

let batch_worker ?memo a db =
  check a;
  let games = membership_games a db in
  fun f ->
    List.fold_left
      (fun acc (mq, weight) -> Q.add acc (Q.mul weight (Boolean_dp.shapley ?memo mq db f)))
      Q.zero games

let shapley_all a db =
  let worker = batch_worker a db in
  List.map (fun f -> (f, worker f)) (Database.endogenous db)
