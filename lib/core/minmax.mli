(** Shapley values for Min and Max over all-hierarchical CQs
    (Theorem 4.1, Section 4.2 and Appendix C).

    The dynamic program instantiates the generic template with the table
    [P[Q', D'](a, k)] = number of [k]-subsets whose answer bag has maximal
    τ-value [a] (plus an explicit entry for the empty answer set). The
    [combine] steps are exactly those of Appendix C; components that do
    not contain the τ-relation only need nonempty/empty counts, which the
    Boolean DP provides. Min reduces to Max by negating τ. *)

(** {2 Table algebra}

    The (a,k)-table combinators the engine instance is built from,
    exposed for the algebraic-law tests: [combine_union] is associative
    and commutative with unit [neutral]. *)

type table
(** [P[Q', D'](a, k)] plus the explicit empty-answer-set entry. *)

val neutral : table
(** The empty sub-database: one 0-subset, always with no answers. *)

val table_of_values :
  n:int -> empty:Tables.counts -> (Aggshap_arith.Rational.t * Tables.counts) list -> table
(** Build a table from its empty-answer counts and per-value counts
    (duplicated values are added together). *)

val combine_union : table -> table -> table
(** Bag-union of two independent sub-databases: the maximum of the union
    distributes over the per-value rows. *)

val pad_table : int -> table -> table
(** Account for extra null players. *)

val table_equal : table -> table -> bool
(** Structural equality, treating absent value rows as rows of zeros. *)

type memo
(** Shared cache of (a,k)-tables and Boolean sub-tables; see {!Memo}.
    Create one per batch run over a fixed [(query, τ, aggregate)]. *)

val create_memo : unit -> memo
val memo_stats : memo -> Memo.stats

val sum_k :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_arith.Rational.t array
(** [sum_k a db] for [a.alpha ∈ {Min, Max}] over an all-hierarchical CQ.
    @raise Invalid_argument otherwise. *)

val sum_k_memo :
  ?memo:memo ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_arith.Rational.t array
(** {!sum_k} with sub-table sharing across calls. *)

val shapley :
  ?memo:memo ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t

val batch_worker :
  ?memo:memo ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** Per-fact worker for the batch engine; safe to call from several
    domains when sharing a [memo]. Beyond the [memo], the worker
    precombines the tables of all top-level hierarchy blocks with
    prefix/suffix sweeps, so each fact only recombines the one block it
    perturbs — results stay bit-identical to {!shapley}. *)

val shapley_all :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  (Aggshap_relational.Fact.t * Aggshap_arith.Rational.t) list
