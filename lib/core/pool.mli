(** A small OCaml 5 [Domain]-based worker pool for per-fact fan-out.

    Work items are claimed from a shared atomic counter, so the pool load
    balances across items of uneven cost (the per-fact DP cost varies
    with the block the fact lives in), while results keep the input
    order — parallel runs are observationally identical to sequential
    ones for pure workers. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] computed by [jobs] domains
    (default {!default_jobs}; values [<= 1] run sequentially in the
    calling domain, without spawning). The result order is the input
    order regardless of scheduling. [f] must be safe to call from
    several domains at once. If any call raises, one such exception is
    re-raised after all domains have drained. *)
