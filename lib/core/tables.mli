(** Shared helpers for the dynamic-programming tables.

    Every algorithm instantiated from the paper's generic template
    (Figure 2) manipulates tables of bignum counts indexed by the size [k]
    of the endogenous subset, i.e. arrays [c] with [c.(k)] = number of
    [k]-subsets having some property. This module provides the common
    array plumbing: convolution (for [combine] steps), binomial padding
    (for null players dropped during decomposition), and totals. *)

type counts = Aggshap_arith.Bigint.t array
(** [c.(k)] for [k = 0 .. n]; length is the number of endogenous facts
    plus one. *)

val zeros : int -> counts
(** [zeros n] is the all-zero table for [n] endogenous facts. *)

val delta : int -> int -> counts
(** [delta n k0] has a single 1 at index [k0]. *)

val full : int -> counts
(** [full n] has [C(n,k)] at index [k]: the table of the always-true
    property. *)

val add : counts -> counts -> counts
(** Pointwise sum; lengths must agree. *)

val sub : counts -> counts -> counts

val complement : int -> counts -> counts
(** [complement n c] is [full n - c]. *)

val convolve : counts -> counts -> counts
(** [convolve a b] has length [(|a|-1) + (|b|-1) + 1]; entry [k] is
    [Σ_{k1+k2=k} a.(k1) * b.(k2)] — the table of a conjunction over two
    disjoint fact sets. *)

val fault : [ `None | `Convolve_off_by_one ] ref
(** Test-only fault injection for the differential-testing oracle
    ({!Aggshap_check}): [`Convolve_off_by_one] makes {!convolve} corrupt
    its top entry whenever both operands are non-trivial, simulating an
    off-by-one in a DP [combine] step. Every frontier DP funnels through
    {!convolve}, so the oracle must flag the corruption. Not
    domain-safe; only toggle it around sequential ([jobs = 1]) runs. *)

val pad : int -> counts -> counts
(** [pad p c] extends the underlying fact set by [p] endogenous null
    players: [result.(k) = Σ_j c.(k-j) * C(p, j)]. *)

val total : counts -> Aggshap_arith.Bigint.t
(** Sum of all entries. *)

val to_rationals : counts -> Aggshap_arith.Rational.t array

val scale_to : Aggshap_arith.Rational.t -> counts -> Aggshap_arith.Rational.t array
(** [scale_to r c] is the rational array [r * c.(k)]. *)

val add_rat : Aggshap_arith.Rational.t array -> Aggshap_arith.Rational.t array -> Aggshap_arith.Rational.t array
val zeros_rat : int -> Aggshap_arith.Rational.t array

val pad_rat : int -> Aggshap_arith.Rational.t array -> Aggshap_arith.Rational.t array
(** Binomial padding of a rational-valued table (e.g. a [sum_k] vector). *)

val convolve_rat :
  Aggshap_arith.Rational.t array ->
  Aggshap_arith.Rational.t array ->
  Aggshap_arith.Rational.t array
