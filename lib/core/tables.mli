(** Shared helpers for the dynamic-programming tables.

    Every algorithm instantiated from the paper's generic template
    (Figure 2) manipulates tables of bignum counts indexed by the size [k]
    of the endogenous subset, i.e. arrays [c] with [c.(k)] = number of
    [k]-subsets having some property. This module provides the common
    array plumbing: convolution (for [combine] steps), binomial padding
    (for null players dropped during decomposition), and totals. *)

type counts = Aggshap_arith.Bigint.t array
(** [c.(k)] for [k = 0 .. n]; length is the number of endogenous facts
    plus one. *)

(** {1 Instrumentation}

    Call counters for the convolution layer, surfaced by
    [shapctl solve --stats] and the bench JSON reports. Backed by
    [Atomic.t], so the counts are exact under concurrent domains (see
    {!Aggshap_arith.Bigint.stats}). *)

type stats = {
  convolve : int;  (** pairwise convolutions (including inside folds) *)
  convolve_small : int;  (** convolutions taken by the all-native int tier *)
  convolve_ntt : int;  (** convolutions taken by the RNS/NTT tier *)
  convolve_rat : int;  (** rational convolutions (common-denominator) *)
  tree_folds : int;  (** balanced {!convolve_many} reductions *)
  weighted_sums : int;  (** {!weighted_sum} accumulations *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

val zeros : int -> counts
(** [zeros n] is the all-zero table for [n] endogenous facts. *)

val delta : int -> int -> counts
(** [delta n k0] has a single 1 at index [k0]. *)

val full : int -> counts
(** [full n] has [C(n,k)] at index [k]: the table of the always-true
    property. *)

val add : counts -> counts -> counts
(** Pointwise sum; lengths must agree. *)

val sub : counts -> counts -> counts

val complement : int -> counts -> counts
(** [complement n c] is [full n - c]. *)

val convolve : counts -> counts -> counts
(** [convolve a b] has length [(|a|-1) + (|b|-1) + 1]; entry [k] is
    [Σ_{k1+k2=k} a.(k1) * b.(k2)] — the table of a conjunction over two
    disjoint fact sets. Tiered dispatch (see DESIGN.md §8): shapes
    past {!ntt_threshold} where the cost model says the transforms win
    go through the exact RNS/NTT tier ({!Aggshap_arith.Ntt}); tables
    whose entries all fit the small-int representation run wholly in
    the native int domain (overflow-checked, aborting to the tier
    below); everything else takes the classic paths — a zero-skipping
    scatter loop for sparse/thin operands, a multiply-accumulate
    buffer ({!Aggshap_arith.Bigint.Acc}) for dense ones. All tiers
    produce bit-identical results. *)

val ntt_threshold : int ref
(** Minimum length of the shorter operand before the RNS/NTT tier is
    considered (the cost model still decides per shape). The bench
    harness sets it to [max_int] to measure the classic paths; [0]
    forces the tier on every eligible call, cost model bypassed — the
    differential fuzz campaigns ([shapctl fuzz --ntt-threshold 0]) use
    this to drive fuzz-sized tables through the transform. *)

val convolve_many : counts list -> counts
(** Balanced pairwise reduction of [convolve] over the list (neutral
    element [[| 1 |]], the table of the empty fact set). Replaces the
    left-folds the DP modules used across hierarchy blocks and connected
    components: bit-identical results (exact arithmetic, associativity),
    but each input is re-traversed O(log n) times instead of O(n). *)

type fault =
  [ `None
  | `Convolve_off_by_one
  | `Tree_fold_skew
  | `Karatsuba_split
  | `Stale_block
  | `Block_drop
  | `Ntt_prime_drop
  | `Stale_index
  | `Ddnnf_cache_poison
  | `Kc_budget_leak ]
(** Test-only fault injection for the differential-testing oracle
    ({!Aggshap_check}):
    - [`Convolve_off_by_one] makes {!convolve} corrupt its top entry
      whenever both operands are non-trivial, simulating an off-by-one
      in a DP [combine] step.
    - [`Tree_fold_skew] makes {!convolve_many} swap the top two entries
      of the reduced table whenever the reduction tree has at least
      three leaves, simulating mis-paired siblings.
    - [`Karatsuba_split] injects a wrong-split-point multiplication bug
      into the arithmetic layer itself (see
      {!Aggshap_arith.Bigint.fault}).
    - [`Stale_block] makes the incremental engine
      ({!Aggshap_incr.Session}) skip one cache invalidation per update:
      the first dirty membership game keeps its stale per-fact
      contributions, and the τ-flush of the generic-path batch memo is
      suppressed. The kernels themselves ignore this variant.
    - [`Block_drop] makes the decomposition engine ({!Engine}) demote
      the last root-variable block of every partition with at least two
      blocks to null-player padding, simulating a lost hierarchy block.
      The kernels themselves ignore this variant; it corrupts every
      aggregate's DP at the decomposition layer instead.
    - [`Ntt_prime_drop] forces {!convolve} through the RNS/NTT tier
      (whatever the shape, so fuzz-sized tables reach it) and zeroes
      the first CRT digit inside the reconstruction, simulating a lost
      residue channel (see {!Aggshap_arith.Ntt.fault}).
    - [`Stale_index] makes database updates keep the parent's built
      secondary indexes instead of adjusting them (see
      {!Aggshap_relational.Database.fault}): an index built before an
      insert/delete/provenance flip keeps answering with the old
      contents, so the planned evaluator and the indexed partition go
      wrong wherever a stale index is probed. The kernels themselves
      ignore this variant.
    - [`Ddnnf_cache_poison] makes the knowledge-compilation tier's
      Shannon-expansion compiler poison its formula-keyed cache: the
      entry stored for a non-trivial decision node swaps the node's
      children (see {!Aggshap_lineage.Ddnnf.fault}), so every compiled
      circuit that hits the poisoned cache is semantically wrong. Only
      the lineage tier is affected; the frontier DPs ignore it.
    - [`Kc_budget_leak] breaks the d-DNNF node-budget abort path (see
      {!Aggshap_lineage.Ddnnf.fault}): past a small node count the
      compiler silently truncates sub-formulas to [False] instead of
      raising [Budget_exceeded], so the compiled circuits under-count
      models and the values drift low. Only the lineage tier is
      affected; the frontier DPs ignore it.

    Every frontier DP funnels through these kernels, so the oracle must
    flag each corruption. Not domain-safe; only toggle around
    sequential ([jobs = 1]) runs. *)

val set_fault : fault -> unit
(** Also keeps [Bigint.fault] in sync for [`Karatsuba_split],
    [Ntt.fault] for [`Ntt_prime_drop], [Database.fault] for
    [`Stale_index], and [Aggshap_lineage.Ddnnf.fault] for
    [`Ddnnf_cache_poison] and [`Kc_budget_leak]. *)

val current_fault : unit -> fault

val pad : int -> counts -> counts
(** [pad p c] extends the underlying fact set by [p] endogenous null
    players: [result.(k) = Σ_j c.(k-j) * C(p, j)]. *)

val total : counts -> Aggshap_arith.Bigint.t
(** Sum of all entries. *)

val to_rationals : counts -> Aggshap_arith.Rational.t array

val scale_to : Aggshap_arith.Rational.t -> counts -> Aggshap_arith.Rational.t array
(** [scale_to r c] is the rational array [r * c.(k)]. *)

val add_rat : Aggshap_arith.Rational.t array -> Aggshap_arith.Rational.t array -> Aggshap_arith.Rational.t array
val zeros_rat : int -> Aggshap_arith.Rational.t array

val pad_rat : int -> Aggshap_arith.Rational.t array -> Aggshap_arith.Rational.t array
(** Binomial padding of a rational-valued table (e.g. a [sum_k] vector). *)

val convolve_rat :
  Aggshap_arith.Rational.t array ->
  Aggshap_arith.Rational.t array ->
  Aggshap_arith.Rational.t array
(** Common-denominator convolution: both operands are lifted to integer
    arrays over the lcm of their denominators, convolved exactly, and
    normalized once per entry — instead of one gcd per term. *)

val weighted_sum :
  int ->
  (Aggshap_arith.Rational.t * counts) list ->
  Aggshap_arith.Rational.t array
(** [weighted_sum n pairs] is [Σ_i w_i * c_i] as a rational array of
    length [n + 1] (every [c_i] must have length [n + 1]). Accumulates
    in integers over the lcm of the weights' denominators, normalizing
    once per subset size — the [Σ_a τ(a) * counts_a] pattern of the
    Min/Max and Avg sum-k evaluations without the per-entry gcd storm. *)
