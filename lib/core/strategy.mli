(** The solve planner: one module that owns every route to an answer.

    The paper's dichotomy says which algorithm is polynomial; the repo
    has grown four ways to answer any query regardless — the six
    frontier DPs, the knowledge-compilation tier, Monte-Carlo sampling
    and naive enumeration. This module is the single place where those
    routes are enumerated, paired with an applicability predicate and a
    cost estimate (fed by the database's O(1) segment statistics, in
    the style of the calibrated NTT dispatch model), and ranked into an
    explainable {!plan}: which route runs, why, and what the solver
    degrades to when a tier aborts mid-solve (the d-DNNF node budget).

    Every call site — {!Solver.shapley}{,_all}, [Aggshap_api],
    [shapctl], the SHAPWIRE [solve_query]/[explain] ops, the check
    oracle, fuzz and bench — dispatches through {!plan}. The
    {!fallback} variant below is therefore the {e only} definition of
    the fallback request type in the repo. See DESIGN.md §11. *)

type fallback =
  [ `Auto  (** let the planner pick the cheapest applicable exact tier *)
  | `Naive
  | `Monte_carlo of int  (** samples *)
  | `Knowledge_compilation
  | `Fail ]
(** What the caller asked for outside the frontier. Inside the frontier
    the polynomial DP always runs and the request is moot. *)

type route =
  | Frontier_dp  (** the aggregate's polynomial DP (within frontier only) *)
  | Knowledge_compilation  (** lineage → d-DNNF → WMC; exact *)
  | Naive  (** exact enumeration over all 2ⁿ subsets *)
  | Monte_carlo of int  (** permutation sampling; approximate *)
  | Fail  (** diagnostic: raise instead of solving *)
      (** A concrete way to solve the instance — the planner's unit of
          choice. *)

type db_stats = {
  endo : int;  (** endogenous facts = players = the n of 2ⁿ *)
  facts : int;  (** total database size *)
  relations : int;  (** relations with at least one fact *)
}
(** The segment statistics the cost model reads; all O(1) or
    O(relations) on the indexed store. *)

val db_stats : Aggshap_relational.Database.t -> db_stats

type candidate = {
  route : route;
  algorithm : string;  (** human-readable name, same vocabulary as reports *)
  applicable : bool;
  cost : float option;  (** abstract units; [None] without {!db_stats} *)
  reason : string;  (** why it applies / why it was rejected *)
}

type plan = {
  requested : fallback;
  chosen : route;
  algorithm : string;
      (** the name {!Solver.report} carries for the chosen route,
          including the legacy forced-KC-on-unsupported-aggregate
          wording and the "(selected by the solve planner)" marker on
          auto picks *)
  ladder : route list;
      (** degradation ladder, chosen route first: when a tier aborts
          mid-solve (d-DNNF node budget), the solver falls to the next
          rung *)
  candidates : candidate list;
      (** every route the planner considered, in fixed display order *)
  stats : db_stats option;
  kc_node_budget : int option;
}

val plan :
  ?stats:db_stats ->
  ?kc_node_budget:int ->
  ?fallback:fallback ->
  Aggshap_agg.Agg_query.t ->
  plan
(** The full planning decision, without solving anything. Within the
    frontier the polynomial DP is chosen unconditionally. Outside it,
    forced modes ([`Naive], [`Knowledge_compilation], [`Monte_carlo],
    [`Fail], the default being [`Naive]) reproduce the historical
    dispatch exactly — including forced knowledge compilation on an
    unsupported aggregate degrading to naive enumeration — while
    [`Auto] picks the cheapest applicable {e exact} tier under the cost
    model (Monte-Carlo is never auto-selected: the wire and the oracle
    demand exact rationals). Without [stats] the cost column is empty
    and [`Auto] prefers knowledge compilation whenever the aggregate
    supports it (the asymptotically safer pick). *)

(** {1 Cost model}

    Abstract cost units (not seconds), comparable only to each other;
    [n] is the endogenous fact count. The constants are calibrated so
    the naive/KC crossover sits at n = 6, matching the E20 measurement
    that naive wins only on toy instances. *)

val dp_cost : int -> float
(** [n² + 1] — the frontier DPs are low-polynomial in the database. *)

val kc_cost : int -> float
(** [n³ + 64] — compilation is polynomial on hierarchical-ish lineage
    but pays a fixed extraction + compilation overhead; the node budget
    guards the genuinely exponential cases at run time. *)

val naive_cost : int -> float
(** [n · 2ⁿ] — exact enumeration evaluates 2ⁿ subsets per fact. *)

val mc_cost : int -> int -> float
(** [mc_cost samples n = samples · n] — linear, but approximate. *)

(** {1 Naming and rendering} *)

val route_label : route -> string
(** Short machine-readable slug ("frontier-dp", "knowledge-compilation",
    "naive", "mc", "fail") — the vocabulary of [explain --json] and the
    E21 bench rows. *)

val fallback_label : fallback -> string
(** The CLI spelling: "auto", "naive", "knowledge-compilation",
    "mc:SAMPLES", "fail". *)

val route_name : Aggshap_agg.Agg_query.t -> route -> string
(** The human-readable algorithm name {!Solver.report} has always
    carried (the DP names depend on the aggregate). *)

val degraded_name : Aggshap_agg.Agg_query.t -> route -> string
(** [route_name] with the " (after a knowledge-compilation node-budget
    abort)" marker — the report wording when a later rung of the ladder
    answered. *)

val render_candidates : plan -> string list
(** One line per candidate ("*" marks the chosen route) with cost and
    reason — what [shapctl explain] and the server's explain op
    print. *)
