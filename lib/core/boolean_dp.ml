module B = Aggshap_arith.Bigint
module Cq = Aggshap_cq.Cq
module Decompose = Aggshap_cq.Decompose
module Database = Aggshap_relational.Database

type memo = Tables.counts Memo.t

let create_memo () = Memo.create ()
let memo_stats = Memo.stats

(* A ground connected component is a single variable-free atom. *)
let ground_case q db =
  match q.Cq.body with
  | [ atom ] ->
    let fact =
      { Aggshap_relational.Fact.rel = atom.Cq.rel;
        args =
          Array.map
            (function
              | Cq.Const v -> v
              | Cq.Var x -> invalid_arg ("Boolean_dp: ground case with variable " ^ x))
            atom.Cq.terms }
    in
    (match Database.provenance db fact with
     | Some Database.Exogenous -> Tables.pad (Database.endo_size db) [| B.one |]
     | Some Database.Endogenous ->
       (* The fact itself must be chosen; the other endogenous facts of
          [db] (equal-looking ones cannot exist) are free choices. *)
       Tables.pad (Database.endo_size db - 1) [| B.zero; B.one |]
     | None -> Tables.zeros (Database.endo_size db))
  | _ -> invalid_arg "Boolean_dp: ground component with several atoms"

(* The Figure-2 template instantiated with satisfaction counts: ground
   atoms are base cases, disconnected queries multiply (conjunction over
   disjoint fact sets), and a connected query partitions by a root
   variable — for Boolean satisfaction, the query holds iff {e some}
   block holds, so the blocks' complements convolve. *)
module Alg = struct
  type table = Tables.counts
  type ctx = unit

  let memo_prefix () = ""
  let leaf () _q _db = None

  let connected_leaf () q db =
    if Decompose.is_ground q then Some (ground_case q db) else None

  let empty () db = Tables.full (Database.endo_size db)
  let root_mode = `Any_root
  let root_error = "Boolean_dp: query is not hierarchical (no root variable): "

  let merge () ~root:_ blocks =
    let false_counts =
      Tables.convolve_many
        (List.map
           (fun (_, block, t) -> Tables.complement (Database.endo_size block) t)
           blocks)
    in
    let n_blocks = Array.length false_counts - 1 in
    Tables.complement n_blocks false_counts

  let combine () _q _db comps =
    Tables.convolve_many (List.map (fun (_, _, table) -> table ()) comps)

  let pad () p t = Tables.pad p t
end

module E = Engine.Make (Alg)

let counts ?memo q db = E.eval_top ?memo () q db

let score ?coefficients ?memo q db f =
  Sumk.score_of_db_fn ?coefficients
    (fun db -> Tables.to_rationals (counts ?memo q db))
    db f

let shapley ?memo q db f = score ?memo q db f
