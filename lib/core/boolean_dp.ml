module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Decompose = Aggshap_cq.Decompose
module Database = Aggshap_relational.Database

type memo = Tables.counts Memo.t

let create_memo () = Memo.create ()
let memo_stats = Memo.stats

(* [go q db]: satisfaction counts, assuming every fact of [db] matches
   some atom of [q]. The recursion mirrors Figure 2: ground atoms are
   base cases, disconnected queries multiply (conjunction over disjoint
   fact sets), and a connected query partitions by a root variable —
   for Boolean satisfaction, the query holds iff {e some} block holds,
   so the blocks' complements convolve.

   With [?memo] every sub-instance table is cached under its block key:
   across a per-fact batch loop only the blocks touched by the current
   fact miss, the sibling blocks hit. *)
let rec go ?memo q db =
  Memo.find_or_compute memo
    ~key:(fun () -> Decompose.block_key q db)
    (fun () -> go_uncached ?memo q db)

and go_uncached ?memo q db =
  match Decompose.connected_components q with
  | [] -> Tables.full (Database.endo_size db)
  | [ _single ] ->
    if Decompose.is_ground q then ground_case q db
    else begin
      match Decompose.choose_root q with
      | None ->
        invalid_arg
          ("Boolean_dp: query is not hierarchical (no root variable): " ^ Cq.to_string q)
      | Some x ->
        let blocks, dropped = Decompose.partition q x db in
        let false_counts =
          Tables.convolve_many
            (List.map
               (fun (a, block) ->
                 let t = go ?memo (Cq.substitute q x a) block in
                 Tables.complement (Database.endo_size block) t)
               blocks)
        in
        let n_blocks = Array.length false_counts - 1 in
        let t = Tables.complement n_blocks false_counts in
        Tables.pad (Database.endo_size dropped) t
    end
  | comps ->
    Tables.convolve_many
      (List.map
         (fun comp ->
           let db_c, _ = Database.restrict_relations (Cq.relations comp) db in
           go ?memo comp db_c)
         comps)

(* A ground connected component is a single variable-free atom. *)
and ground_case q db =
  match q.Cq.body with
  | [ atom ] ->
    let fact =
      { Aggshap_relational.Fact.rel = atom.Cq.rel;
        args =
          Array.map
            (function
              | Cq.Const v -> v
              | Cq.Var x -> invalid_arg ("Boolean_dp: ground case with variable " ^ x))
            atom.Cq.terms }
    in
    (match Database.provenance db fact with
     | Some Database.Exogenous -> Tables.pad (Database.endo_size db) [| B.one |]
     | Some Database.Endogenous ->
       (* The fact itself must be chosen; the other endogenous facts of
          [db] (equal-looking ones cannot exist) are free choices. *)
       Tables.pad (Database.endo_size db - 1) [| B.zero; B.one |]
     | None -> Tables.zeros (Database.endo_size db))
  | _ -> invalid_arg "Boolean_dp: ground component with several atoms"

let counts ?memo q db =
  let db_rel, db_pad = Decompose.relevant q db in
  Tables.pad (Database.endo_size db_pad) (go ?memo q db_rel)

let score ?coefficients ?memo q db f =
  Sumk.score_of_db_fn ?coefficients
    (fun db -> Tables.to_rationals (counts ?memo q db))
    db f

let shapley ?memo q db f = score ?memo q db f
