(** Batch Shapley evaluation: all endogenous facts of one aggregate
    query, with shared-DP caching and domain-parallel fan-out.

    The per-fact algorithms rerun the full Figure-2 dynamic program for
    every fact, yet a fact only perturbs the hierarchy block it lives in:
    sibling sub-trees produce identical tables across the whole loop
    (Livshits et al. make the same observation for Boolean CQs, and the
    experimental follow-up work shows all-facts batches are the workload
    that matters). This module exploits both directions at once:

    - a {!Memo}-backed cache of DP tables keyed by
      [(sub-query, block fingerprint)], shared by every fact — and by
      every domain — of one batch run;
    - a {!Pool} of OCaml 5 domains fanning the per-fact outer loop across
      cores, with deterministic, input-ordered results.

    Results are bit-identical to the sequential, uncached per-fact path:
    every value is an exact rational and caching only reuses tables that
    would have been recomputed equal. *)

type stats = {
  jobs : int;  (** worker domains actually used *)
  cache : Memo.stats option;  (** [None] when caching was off *)
}

val stats_to_string : stats -> string

type memo
(** A DP-table cache that outlives a single batch run — the seam the
    incremental engine ({!Aggshap_incr.Session}) threads through every
    frontier DP family. The underlying per-algorithm memos key tables on
    [(sub-query, block fingerprint)] only, so the memo is stamped with a
    fingerprint of the inputs {e outside} that key — the aggregate, the
    value function τ ([rel] and [descr]), and the query — and
    {!shapley_all} refuses a memo stamped for a different combination.
    Database updates need no flush: changed blocks change their
    fingerprint, so stale tables are simply never looked up. *)

val create_memo : Aggshap_agg.Agg_query.t -> memo
(** A fresh, empty memo for the query's aggregate family, stamped with
    the query's fingerprint. *)

val memo_stats : memo -> Memo.stats

val fingerprint_of : Aggshap_agg.Agg_query.t -> string
(** The stamp {!create_memo} records: aggregate, τ relation and
    description, and the canonical query string. Injective for the
    built-in value functions; custom value functions must pick
    distinguishing [descr]s for memo reuse to be sound. *)

val shapley_all :
  ?jobs:int ->
  ?cache:bool ->
  ?memo:memo ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  (Aggshap_relational.Fact.t * Aggshap_arith.Rational.t) list * stats
(** [shapley_all ?jobs ?cache ?memo a db] computes the exact Shapley
    value of every endogenous fact, in [Database.endogenous] order.
    [jobs] defaults to {!Pool.default_jobs}[ ()] ([1] runs sequentially
    in the calling domain); [cache] (default [true]) shares DP tables
    across facts and domains for the duration of the run. Passing
    [?memo] instead shares tables across {e runs} (and overrides
    [cache]).
    @raise Invalid_argument if the query is outside the aggregate's
    tractability frontier (use {!Solver.shapley_all} for fallbacks), or
    if [memo] was created for a different (aggregate, τ, query). *)

val map :
  ?jobs:int ->
  ('a -> 'b) ->
  'a list ->
  ('a * 'b) list
(** Domain-parallel tagged map with deterministic ordering — the
    building block {!Solver} uses to fan fallback solvers across cores. *)
