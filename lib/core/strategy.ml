(* The solve planner (DESIGN.md §11).

   One module enumerates every route to an answer, attaches an
   applicability predicate and a cost estimate, and ranks them into an
   explainable plan. The cost model reads only the database's O(1)
   segment statistics; like the NTT dispatch model it is calibrated to
   pick the empirically faster tier at the measured crossover, not to
   predict wall-clock. All dispatch — Solver, API, CLI, server, check,
   bench — goes through [plan], so the fallback variant type below is
   the only definition in the repo. *)

module Hierarchy = Aggshap_cq.Hierarchy
module Agg_query = Aggshap_agg.Agg_query
module Aggregate = Aggshap_agg.Aggregate
module Database = Aggshap_relational.Database
module Lineage = Aggshap_lineage.Lineage

type fallback =
  [ `Auto
  | `Naive
  | `Monte_carlo of int
  | `Knowledge_compilation
  | `Fail ]

type route =
  | Frontier_dp
  | Knowledge_compilation
  | Naive
  | Monte_carlo of int
  | Fail

type db_stats = {
  endo : int;
  facts : int;
  relations : int;
}

let db_stats db =
  { endo = Database.endo_size db;
    facts = Database.size db;
    relations = List.length (Database.relations db) }

type candidate = {
  route : route;
  algorithm : string;
  applicable : bool;
  cost : float option;
  reason : string;
}

type plan = {
  requested : fallback;
  chosen : route;
  algorithm : string;
  ladder : route list;
  candidates : candidate list;
  stats : db_stats option;
  kc_node_budget : int option;
}

(* {1 Cost model}

   Abstract units. The constants put the naive/KC crossover at n = 6:
   n³+64 < n·2ⁿ first holds there (280 < 384), matching E20's
   observation that enumeration only wins on toy instances while
   compilation amortizes one extraction across every fact. *)

let dp_cost n = (float_of_int n *. float_of_int n) +. 1.
let kc_cost n = (float_of_int n ** 3.) +. 64.
let naive_cost n = float_of_int n *. (2. ** float_of_int n)
let mc_cost samples n = float_of_int samples *. float_of_int n

(* {1 Naming} *)

let dp_name = function
  | Aggregate.Sum | Aggregate.Count -> "sum/count via linearity + Boolean DP"
  | Aggregate.Count_distinct -> "count-distinct via per-value Boolean DP"
  | Aggregate.Min | Aggregate.Max -> "min/max (a,k)-table DP"
  | Aggregate.Avg | Aggregate.Median | Aggregate.Quantile _ ->
    "avg/quantile (a,k,l)-table DP"
  | Aggregate.Has_duplicates -> "has-duplicates P0/P1 DP"

let route_name (a : Agg_query.t) = function
  | Frontier_dp -> dp_name a.alpha
  | Knowledge_compilation ->
    "knowledge compilation (d-DNNF lineage, Shapley by weighted model counting)"
  | Naive -> "naive enumeration (exponential)"
  | Monte_carlo _ -> "Monte-Carlo permutation sampling"
  | Fail -> "none (outside the frontier, fallback disabled)"

let degraded_name a route =
  route_name a route ^ " (after a knowledge-compilation node-budget abort)"

let route_label = function
  | Frontier_dp -> "frontier-dp"
  | Knowledge_compilation -> "knowledge-compilation"
  | Naive -> "naive"
  | Monte_carlo _ -> "mc"
  | Fail -> "fail"

let fallback_label = function
  | `Auto -> "auto"
  | `Naive -> "naive"
  | `Knowledge_compilation -> "knowledge-compilation"
  | `Monte_carlo s -> Printf.sprintf "mc:%d" s
  | `Fail -> "fail"

(* {1 The planner} *)

let plan ?stats ?kc_node_budget ?(fallback = `Naive) (a : Agg_query.t) =
  let cls = Hierarchy.classify a.query in
  let front = Frontier.frontier a.alpha in
  let within = Hierarchy.cls_leq cls front in
  let supported = Lineage.supports a.alpha in
  let agg = Aggregate.to_string a.alpha in
  let cost_of f = Option.map (fun s -> f s.endo) stats in
  let candidates =
    [ { route = Frontier_dp;
        algorithm = route_name a Frontier_dp;
        applicable = within;
        cost = (if within then cost_of dp_cost else None);
        reason =
          (if within then "inside the frontier; polynomial in the database"
           else
             Printf.sprintf "the query is %s but the %s frontier is %s"
               (Hierarchy.cls_to_string cls) agg
               (Hierarchy.cls_to_string front)) };
      { route = Knowledge_compilation;
        algorithm = route_name a Knowledge_compilation;
        applicable = supported;
        cost = (if supported then cost_of kc_cost else None);
        reason =
          (if supported then
             "exact; exponential only in the lineage's branching structure"
           else
             Printf.sprintf "%s is not a linear combination of Boolean events"
               agg) };
      { route = Naive;
        algorithm = route_name a Naive;
        applicable = true;
        cost = cost_of naive_cost;
        reason = "exact enumeration over all 2^n subsets; always applicable" };
      (match fallback with
      | `Monte_carlo samples ->
        { route = Monte_carlo samples;
          algorithm = route_name a (Monte_carlo samples);
          applicable = true;
          cost = cost_of (mc_cost samples);
          reason = "approximate permutation sampling; runs only when forced" }
      | _ ->
        { route = Monte_carlo 0;
          algorithm = route_name a (Monte_carlo 0);
          applicable = false;
          cost = None;
          reason =
            "approximate; never auto-selected (force with mc:SAMPLES[:SEED])" });
      { route = Fail;
        algorithm = route_name a Fail;
        applicable = (fallback = `Fail);
        cost = None;
        reason = "diagnostic: raise instead of solving outside the frontier" } ]
  in
  let chosen, ladder =
    if within then (Frontier_dp, [ Frontier_dp ])
    else
      match fallback with
      | `Naive -> (Naive, [ Naive ])
      | `Knowledge_compilation ->
        if supported then (Knowledge_compilation, [ Knowledge_compilation; Naive ])
        else (Naive, [ Naive ])
      | `Monte_carlo samples -> (Monte_carlo samples, [ Monte_carlo samples ])
      | `Fail -> (Fail, [ Fail ])
      | `Auto ->
        (* Cheapest applicable exact tier. Monte-Carlo is approximate
           and never auto-selected. Without statistics, prefer the
           asymptotically safer compilation tier when it applies. *)
        let kc_wins =
          supported
          &&
          match stats with
          | None -> true
          | Some s -> kc_cost s.endo <= naive_cost s.endo
        in
        if kc_wins then (Knowledge_compilation, [ Knowledge_compilation; Naive ])
        else (Naive, [ Naive ])
  in
  let algorithm =
    if within then route_name a Frontier_dp
    else
      match (fallback, chosen) with
      | `Knowledge_compilation, Naive ->
        (* Legacy wording: forced compilation on an aggregate the
           lineage tier does not cover keeps the naive behaviour and
           says so. *)
        Printf.sprintf
          "naive enumeration (exponential; knowledge compilation does not \
           cover %s)"
          agg
      | `Auto, r -> route_name a r ^ " (selected by the solve planner)"
      | _, r -> route_name a r
  in
  { requested = fallback; chosen; algorithm; ladder; candidates; stats;
    kc_node_budget }

(* {1 Rendering} *)

let candidate_line chosen c =
  Printf.sprintf "%s %s (%s, %s): %s"
    (if c.route = chosen then "*" else "-")
    (route_label c.route)
    (if c.applicable then "applicable" else "not applicable")
    (match c.cost with
    | Some x -> Printf.sprintf "cost ~%.0f" x
    | None -> "cost n/a")
    c.reason

let render_candidates p = List.map (candidate_line p.chosen) p.candidates
