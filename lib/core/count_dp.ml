module B = Aggshap_arith.Bigint
module Cq = Aggshap_cq.Cq
module Database = Aggshap_relational.Database
module IntMap = Map.Make (Int)

type t = {
  n : int;
  entries : Tables.counts IntMap.t;
}

let get t l =
  match IntMap.find_opt l t.entries with
  | Some c -> c
  | None -> Tables.zeros t.n

let at_least t l =
  IntMap.fold
    (fun l' c acc -> if l' >= l then Tables.add acc c else acc)
    t.entries (Tables.zeros t.n)

let neutral_union = { n = 0; entries = IntMap.singleton 0 [| B.one |] }
let neutral_cross = { n = 0; entries = IntMap.singleton 1 [| B.one |] }

let add_entry l c entries =
  IntMap.update l
    (function None -> Some c | Some c' -> Some (Tables.add c' c))
    entries

let combine op t1 t2 =
  let entries =
    IntMap.fold
      (fun l1 c1 acc ->
        IntMap.fold
          (fun l2 c2 acc ->
            let c = Tables.convolve c1 c2 in
            if B.is_zero (Tables.total c) then acc else add_entry (op l1 l2) c acc)
          t2.entries acc)
      t1.entries IntMap.empty
  in
  { n = t1.n + t2.n; entries }

(* [saturating cap op] lumps every answer count ≥ cap into the row
   [cap]. Rows below the cap stay exact: a merged row ℓ < cap only
   collects pairs whose true combination is ℓ, and saturation never
   moves mass below the cap — for [+] a saturated operand forces the
   sum ≥ cap, and for [*] either the other operand is 0 (row 0 either
   way) or the product stays ≥ cap. Consumers reading only rows
   [< cap] (Dup reads 0 and 1 with cap 2) see bit-identical counts,
   while the accumulator keeps at most [cap + 1] rows instead of one
   per answer. *)
let saturating cap op =
  match cap with
  | None -> op
  | Some c -> fun l1 l2 -> Stdlib.min c (op l1 l2)

let pad_table p t =
  if p = 0 then t else { n = t.n + p; entries = IntMap.map (Tables.pad p) t.entries }

(* [combine] drops all-zero rows as it goes, so equality must not
   distinguish an absent row from an explicit row of zeros. *)
let equal t1 t2 =
  let nonzero m = IntMap.filter (fun _ c -> not (B.is_zero (Tables.total c))) m in
  let counts_equal a b = Array.length a = Array.length b && Array.for_all2 B.equal a b in
  t1.n = t2.n && IntMap.equal counts_equal (nonzero t1.entries) (nonzero t2.entries)

type memo = {
  self : t Memo.t;
  bool : Boolean_dp.memo;
}

let create_memo () = { self = Memo.create (); bool = Boolean_dp.create_memo () }

let memo_stats m =
  Memo.merge_stats (Memo.stats m.self) (Boolean_dp.memo_stats m.bool)

(* The Figure-2 template instantiated with answer-count tables. Boolean
   sub-queries are the leaves (their count is their satisfaction); the
   free-root requirement makes sibling blocks' answer sets disjoint, so
   [ℓ] adds under union and multiplies under cross product. *)
module Alg = struct
  type table = t
  type ctx = { bool : Boolean_dp.memo option; cap : int option }

  (* A capped table is a different value than the exact one, so capped
     and uncapped calls sharing a memo must not collide. *)
  let memo_prefix ctx =
    match ctx.cap with None -> "" | Some c -> string_of_int c ^ "\x02"

  let leaf ctx q db =
    if Cq.is_boolean q then begin
      let n = Database.endo_size db in
      let sat = Boolean_dp.counts ?memo:ctx.bool q db in
      let unsat = Tables.complement n sat in
      let entries = IntMap.empty |> add_entry 1 sat |> add_entry 0 unsat in
      Some { n; entries }
    end
    else None

  let connected_leaf _ _ _ = None
  let empty _ _ = assert false (* non-Boolean queries have atoms *)
  let root_mode = `Free_root
  let root_error = "Count_dp: query is not q-hierarchical: "

  let merge ctx ~root:_ blocks =
    let op = saturating ctx.cap ( + ) in
    List.fold_left (fun acc (_, _, t) -> combine op acc t) neutral_union blocks

  let combine ctx _ _ comps =
    let op = saturating ctx.cap ( * ) in
    List.fold_left (fun acc (_, _, table) -> combine op acc (table ())) neutral_cross
      comps

  let pad _ p t = pad_table p t
end

module E = Engine.Make (Alg)

let ctx_of memo cap = { Alg.bool = Option.map (fun m -> m.bool) memo; cap }

let answer_counts ?memo ?cap q db =
  E.eval_top ?memo:(Option.map (fun m -> m.self) memo) (ctx_of memo cap) q db
