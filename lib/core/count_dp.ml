module B = Aggshap_arith.Bigint
module Cq = Aggshap_cq.Cq
module Decompose = Aggshap_cq.Decompose
module Database = Aggshap_relational.Database
module IntMap = Map.Make (Int)

type t = {
  n : int;
  entries : Tables.counts IntMap.t;
}

let get t l =
  match IntMap.find_opt l t.entries with
  | Some c -> c
  | None -> Tables.zeros t.n

let at_least t l =
  IntMap.fold
    (fun l' c acc -> if l' >= l then Tables.add acc c else acc)
    t.entries (Tables.zeros t.n)

let neutral_union = { n = 0; entries = IntMap.singleton 0 [| B.one |] }
let neutral_cross = { n = 0; entries = IntMap.singleton 1 [| B.one |] }

let add_entry l c entries =
  IntMap.update l
    (function None -> Some c | Some c' -> Some (Tables.add c' c))
    entries

let combine op t1 t2 =
  let entries =
    IntMap.fold
      (fun l1 c1 acc ->
        IntMap.fold
          (fun l2 c2 acc ->
            let c = Tables.convolve c1 c2 in
            if B.is_zero (Tables.total c) then acc else add_entry (op l1 l2) c acc)
          t2.entries acc)
      t1.entries IntMap.empty
  in
  { n = t1.n + t2.n; entries }

let pad_table p t =
  if p = 0 then t else { n = t.n + p; entries = IntMap.map (Tables.pad p) t.entries }

type memo = {
  self : t Memo.t;
  bool : Boolean_dp.memo;
}

let create_memo () = { self = Memo.create (); bool = Boolean_dp.create_memo () }

let memo_stats m =
  Memo.merge_stats (Memo.stats m.self) (Boolean_dp.memo_stats m.bool)

let rec table ?memo q db =
  Memo.find_or_compute
    (Option.map (fun m -> m.self) memo)
    ~key:(fun () -> Decompose.block_key q db)
    (fun () -> table_uncached ?memo q db)

and table_uncached ?memo q db =
  if Cq.is_boolean q then begin
    let n = Database.endo_size db in
    let sat = Boolean_dp.counts ?memo:(Option.map (fun m -> m.bool) memo) q db in
    let unsat = Tables.complement n sat in
    let entries = IntMap.empty |> add_entry 1 sat |> add_entry 0 unsat in
    { n; entries }
  end
  else begin
    match Decompose.connected_components q with
    | [] -> assert false (* non-Boolean queries have atoms *)
    | [ _ ] -> begin
      match Decompose.choose_root q with
      | Some x when Cq.is_free q x ->
        let blocks, dropped = Decompose.partition q x db in
        let t =
          List.fold_left
            (fun acc (a, block) ->
              combine ( + ) acc (table ?memo (Cq.substitute q x a) block))
            neutral_union blocks
        in
        pad_table (Database.endo_size dropped) t
      | Some _ | None ->
        invalid_arg ("Count_dp: query is not q-hierarchical: " ^ Cq.to_string q)
    end
    | comps ->
      List.fold_left
        (fun acc comp ->
          let db_c, _ = Database.restrict_relations (Cq.relations comp) db in
          combine ( * ) acc (table ?memo comp db_c))
        neutral_cross comps
  end

let answer_counts ?memo q db =
  let db_rel, db_pad = Decompose.relevant q db in
  pad_table (Database.endo_size db_pad) (table ?memo q db_rel)
