module B = Aggshap_arith.Bigint
module Cq = Aggshap_cq.Cq
module Database = Aggshap_relational.Database
module IntMap = Map.Make (Int)

type t = {
  n : int;
  entries : Tables.counts IntMap.t;
}

let get t l =
  match IntMap.find_opt l t.entries with
  | Some c -> c
  | None -> Tables.zeros t.n

let at_least t l =
  IntMap.fold
    (fun l' c acc -> if l' >= l then Tables.add acc c else acc)
    t.entries (Tables.zeros t.n)

let neutral_union = { n = 0; entries = IntMap.singleton 0 [| B.one |] }
let neutral_cross = { n = 0; entries = IntMap.singleton 1 [| B.one |] }

let add_entry l c entries =
  IntMap.update l
    (function None -> Some c | Some c' -> Some (Tables.add c' c))
    entries

let combine op t1 t2 =
  let entries =
    IntMap.fold
      (fun l1 c1 acc ->
        IntMap.fold
          (fun l2 c2 acc ->
            let c = Tables.convolve c1 c2 in
            if B.is_zero (Tables.total c) then acc else add_entry (op l1 l2) c acc)
          t2.entries acc)
      t1.entries IntMap.empty
  in
  { n = t1.n + t2.n; entries }

let pad_table p t =
  if p = 0 then t else { n = t.n + p; entries = IntMap.map (Tables.pad p) t.entries }

(* [combine] drops all-zero rows as it goes, so equality must not
   distinguish an absent row from an explicit row of zeros. *)
let equal t1 t2 =
  let nonzero m = IntMap.filter (fun _ c -> not (B.is_zero (Tables.total c))) m in
  let counts_equal a b = Array.length a = Array.length b && Array.for_all2 B.equal a b in
  t1.n = t2.n && IntMap.equal counts_equal (nonzero t1.entries) (nonzero t2.entries)

type memo = {
  self : t Memo.t;
  bool : Boolean_dp.memo;
}

let create_memo () = { self = Memo.create (); bool = Boolean_dp.create_memo () }

let memo_stats m =
  Memo.merge_stats (Memo.stats m.self) (Boolean_dp.memo_stats m.bool)

(* The Figure-2 template instantiated with answer-count tables. Boolean
   sub-queries are the leaves (their count is their satisfaction); the
   free-root requirement makes sibling blocks' answer sets disjoint, so
   [ℓ] adds under union and multiplies under cross product. *)
module Alg = struct
  type table = t
  type ctx = { bool : Boolean_dp.memo option }

  let memo_prefix _ = ""

  let leaf ctx q db =
    if Cq.is_boolean q then begin
      let n = Database.endo_size db in
      let sat = Boolean_dp.counts ?memo:ctx.bool q db in
      let unsat = Tables.complement n sat in
      let entries = IntMap.empty |> add_entry 1 sat |> add_entry 0 unsat in
      Some { n; entries }
    end
    else None

  let connected_leaf _ _ _ = None
  let empty _ _ = assert false (* non-Boolean queries have atoms *)
  let root_mode = `Free_root
  let root_error = "Count_dp: query is not q-hierarchical: "

  let merge _ ~root:_ blocks =
    List.fold_left (fun acc (_, _, t) -> combine ( + ) acc t) neutral_union blocks

  let combine _ _ _ comps =
    List.fold_left (fun acc (_, _, table) -> combine ( * ) acc (table ())) neutral_cross
      comps

  let pad _ p t = pad_table p t
end

module E = Engine.Make (Alg)

let ctx_of memo = { Alg.bool = Option.map (fun m -> m.bool) memo }

let answer_counts ?memo q db =
  E.eval_top ?memo:(Option.map (fun m -> m.self) memo) (ctx_of memo) q db
