(** Answer-count tables for q-hierarchical CQs.

    [P[Q', D']] maps each pair [(k, ℓ)] to the number of [k]-subsets [E]
    of the endogenous facts with [|Q'(E ∪ D'ˣ)| = ℓ] — the "τ-free side"
    data structure of Section 5.1, also the [P⁰]/[P¹] tables of the Dup
    algorithm (Appendix E.2). The q-hierarchical property guarantees that
    a free root variable exists for every connected non-Boolean
    sub-query, making answer sets of sibling blocks disjoint, so that
    [ℓ] adds under union and multiplies under cross product. *)

module IntMap : Map.S with type key = int

type t = {
  n : int;  (** endogenous facts covered *)
  entries : Tables.counts IntMap.t;
      (** answer count ℓ ↦ per-k counts; the entries sum to [full n] *)
}

type memo
(** Shared cache of sub-instance tables (including the Boolean
    sub-tables); see {!Memo}. *)

val create_memo : unit -> memo
val memo_stats : memo -> Memo.stats

val answer_counts :
  ?memo:memo -> ?cap:int -> Aggshap_cq.Cq.t -> Aggshap_relational.Database.t -> t
(** With [?cap], every answer count ℓ ≥ cap is lumped into the single
    row [cap]; rows below the cap are bit-identical to the uncapped
    table, and the per-node merge keeps O(cap) rows instead of one per
    answer — the difference between cubic and quadratic work for
    consumers that only read small rows (Dup reads ℓ ∈ {0, 1} with
    [~cap:2]). Capped and uncapped tables are memoized under distinct
    keys, so one memo may serve both.
    @raise Invalid_argument if the CQ is not q-hierarchical. *)

val get : t -> int -> Tables.counts
(** [get t ℓ] (zeros when absent). *)

val at_least : t -> int -> Tables.counts
(** [at_least t ℓ]: counts of subsets with at least [ℓ] answers. *)

(** {2 Table algebra}

    The combinators the engine instance is built from, exposed for the
    algebraic-law tests: [combine (+)] (block union) and
    [combine ( * )] (component cross product) are associative and
    commutative with units [neutral_union] and [neutral_cross]. *)

val neutral_union : t
(** Unit of [combine (+)]: the empty sub-database with zero answers. *)

val neutral_cross : t
(** Unit of [combine ( * )]: the empty sub-query with one answer. *)

val combine : (int -> int -> int) -> t -> t -> t
(** Convolve per-k counts and combine answer counts with the given
    operation; all-zero rows are dropped. *)

val pad_table : int -> t -> t
(** Account for extra null players. *)

val equal : t -> t -> bool
(** Structural equality, treating absent rows as rows of zeros. *)
