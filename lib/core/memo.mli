(** Thread-safe memoization of dynamic-programming tables.

    The Figure-2 dynamic programs recompute, for every endogenous fact,
    the tables of every sub-instance [(sub-query, block)] — but a fact
    only perturbs the block it lives in, so sibling blocks under the same
    hierarchy root produce identical tables across the whole per-fact
    loop (observed for Boolean CQs by Livshits et al.). A ['v t] caches
    those tables under the {!Aggshap_cq.Decompose.block_key} of the
    sub-instance and is safe to share across domains.

    A memo table is only sound while the inputs outside its key (the
    value function τ, the reference value for quantile tables) stay
    fixed. Callers that keep a memo alive across runs must therefore pin
    those inputs: {!Batch.create_memo} stamps the memo with a fingerprint
    of [(aggregate, τ, query)] and {!Batch.shapley_all} refuses a memo
    whose fingerprint does not match the run's query — so a τ change can
    never serve stale tables. The incremental engine
    ({!Aggshap_incr.Session}) relies on exactly this contract to reuse
    one memo across a whole update stream, replacing it whenever
    [set_tau] changes the fingerprint. *)

type stats = {
  hits : int;
  misses : int;
}

val no_stats : stats
val merge_stats : stats -> stats -> stats
val stats_to_string : stats -> string

type 'v t

val create : unit -> 'v t

val stats : 'v t -> stats

val find_or_compute : 'v t option -> key:(unit -> string) -> (unit -> 'v) -> 'v
(** [find_or_compute memo ~key compute] returns the cached value for
    [key ()], computing and caching it on a miss. With [None] it just
    runs [compute] (and never evaluates the key). The cached value must
    be an immutable, pure function of the key. *)
