module Cq = Aggshap_cq.Cq
module Decompose = Aggshap_cq.Decompose
module Plan = Aggshap_cq.Plan
module Database = Aggshap_relational.Database
module Value = Aggshap_relational.Value

type stats = {
  nodes : int;
  leaves : int;
  merges : int;
  combines : int;
  parallel_merges : int;
}

(* Plain mutable counters, same caveat as [Tables.stats]: approximate
   under concurrent domains. *)
let c_nodes = ref 0
let c_leaves = ref 0
let c_merges = ref 0
let c_combines = ref 0
let c_parallel = ref 0

let stats () =
  { nodes = !c_nodes;
    leaves = !c_leaves;
    merges = !c_merges;
    combines = !c_combines;
    parallel_merges = !c_parallel }

let reset_stats () =
  c_nodes := 0;
  c_leaves := 0;
  c_merges := 0;
  c_combines := 0;
  c_parallel := 0

let block_jobs_ref = ref 1
let set_block_jobs j = block_jobs_ref := Stdlib.max 1 j
let block_jobs () = !block_jobs_ref

(* The partition step shared by every engine instance. [`Block_drop]
   demotes the last block (when there are at least two) to null-player
   padding: the table stays length-consistent — the block's facts are
   still accounted for — but its contribution to the merge is lost, so
   every aggregate's values go wrong whenever that block matters. *)
let faulty_partition q x db =
  let blocks, dropped = Decompose.partition q x db in
  match Tables.current_fault () with
  | `Block_drop when List.length blocks >= 2 -> begin
    match List.rev blocks with
    | (_, last) :: kept_rev ->
      ( List.rev kept_rev,
        Database.fold
          (fun f p acc -> Database.add ~provenance:p f acc)
          last dropped )
    | [] -> assert false
  end
  | _ -> (blocks, dropped)

(* Partition results are pure functions of (query, database) — the root
   is chosen deterministically from the query — so they are shared
   process-wide under the same injective key the DP memos use. The big
   winners are solves that revisit the same sub-database with different
   table contexts: Avg/Quantile re-runs the engine once per reference
   value, and the per-fact batch loops revisit every block the fact is
   not in. The cache is bypassed (neither read nor written) whenever a
   fault is armed or the legacy evaluation stack is selected, so the
   differential campaigns' reference arm shares none of the new
   machinery. Bounded: wholesale reset at [partition_cache_cap]
   entries — stale entries are never wrong (the key is injective),
   only unused. *)
let partition_cache :
    (string, (Value.t * Database.t) list * Database.t) Hashtbl.t =
  Hashtbl.create 1024

let partition_lock = Mutex.create ()
let partition_cache_cap = 8192

let cached_partition q root db =
  if (not !Plan.enabled) || Tables.current_fault () <> `None then
    faulty_partition q root db
  else begin
    let key = Decompose.block_key q db in
    Mutex.lock partition_lock;
    match Hashtbl.find_opt partition_cache key with
    | Some r ->
      Mutex.unlock partition_lock;
      r
    | None ->
      Mutex.unlock partition_lock;
      let r = Decompose.partition q root db in
      Mutex.lock partition_lock;
      if Hashtbl.length partition_cache >= partition_cache_cap then
        Hashtbl.reset partition_cache;
      if not (Hashtbl.mem partition_cache key) then Hashtbl.add partition_cache key r;
      Mutex.unlock partition_lock;
      r
  end

let connected_root q =
  match Decompose.connected_components q with
  | [ _ ] when not (Decompose.is_ground q) -> Decompose.choose_root q
  | _ -> None

let root_partition q ~root db = faulty_partition q root db

module type TABLE_ALGEBRA = sig
  type table
  type ctx

  val memo_prefix : ctx -> string
  val leaf : ctx -> Cq.t -> Database.t -> table option
  val connected_leaf : ctx -> Cq.t -> Database.t -> table option
  val empty : ctx -> Database.t -> table
  val root_mode : [ `Any_root | `Free_root ]
  val root_error : string
  val merge : ctx -> root:string -> (Value.t * Database.t * table) list -> table

  val combine :
    ctx -> Cq.t -> Database.t -> (Cq.t * Database.t * (unit -> table)) list -> table

  val pad : ctx -> int -> table -> table
end

module Make (A : TABLE_ALGEBRA) = struct
  (* [par] is true only for the top-level call: blocks of the top
     partition may fan out on the pool, everything below them runs
     sequentially in its domain (no nested spawning). *)
  let rec go ?memo ~par ctx q db =
    Memo.find_or_compute memo
      ~key:(fun () -> A.memo_prefix ctx ^ Decompose.block_key q db)
      (fun () -> go_uncached ?memo ~par ctx q db)

  and go_uncached ?memo ~par ctx q db =
    incr c_nodes;
    match A.leaf ctx q db with
    | Some t ->
      incr c_leaves;
      t
    | None -> begin
      match Decompose.connected_components q with
      | [] -> A.empty ctx db
      | [ _ ] -> connected ?memo ~par ctx q db
      | comps ->
        incr c_combines;
        A.combine ctx q db
          (List.map
             (fun comp ->
               let db_c, _ = Database.restrict_relations (Cq.relations comp) db in
               (comp, db_c, fun () -> go ?memo ~par:false ctx comp db_c))
             comps)
    end

  and connected ?memo ~par ctx q db =
    match A.connected_leaf ctx q db with
    | Some t ->
      incr c_leaves;
      t
    | None ->
      let root =
        match Decompose.choose_root q with
        | Some x
          when (match A.root_mode with
                | `Any_root -> true
                | `Free_root -> Cq.is_free q x) ->
          x
        | Some _ | None -> invalid_arg (A.root_error ^ Cq.to_string q)
      in
      incr c_merges;
      let blocks, dropped = cached_partition q root db in
      let subst = Cq.substituter q root in
      let eval_block (v, block) =
        (v, block, go ?memo ~par:false ctx (subst v) block)
      in
      let jobs = !block_jobs_ref in
      let tables =
        if par && jobs > 1 && List.compare_length_with blocks 2 >= 0 then begin
          incr c_parallel;
          Pool.map ~jobs eval_block blocks
        end
        else List.map eval_block blocks
      in
      A.pad ctx (Database.endo_size dropped) (A.merge ctx ~root tables)

  let eval ?memo ctx q db = go ?memo ~par:true ctx q db

  let eval_top ?memo ctx q db =
    let db_rel, pad = Decompose.relevant_part q db in
    A.pad ctx pad (eval ?memo ctx q db_rel)
end

type shape =
  | Empty
  | Ground of string
  | Partition of { root : string; free : bool; sub : shape }
  | Cross of (string * shape) list
  | Stuck of string

(* A fresh constant never produced by the parser's value lexer, so the
   substitution below cannot collide with constants of the query. *)
let placeholder = Value.Str "\xe2\x80\xa2"

let rec shape q =
  match Decompose.connected_components q with
  | [] -> Empty
  | [ _ ] ->
    if Decompose.is_ground q then
      Ground (match q.Cq.body with a :: _ -> a.Cq.rel | [] -> assert false)
    else begin
      match Decompose.choose_root q with
      | None -> Stuck (Cq.to_string q)
      | Some x ->
        Partition
          { root = x; free = Cq.is_free q x; sub = shape (Cq.substitute q x placeholder) }
    end
  | comps -> Cross (List.map (fun c -> (Cq.to_string c, shape c)) comps)

let pp_shape fmt s =
  let pad fmt indent =
    for _ = 1 to indent do
      Format.pp_print_string fmt "  "
    done
  in
  let rec pp indent s =
    pad fmt indent;
    match s with
    | Empty -> Format.fprintf fmt "empty query: vacuously true@,"
    | Ground rel -> Format.fprintf fmt "ground atom of %s: read provenance@," rel
    | Partition { root; free; sub } ->
      Format.fprintf fmt "partition on root %s (%s): merge per-value blocks@," root
        (if free then "free" else "existential");
      pp (indent + 1) sub
    | Cross comps ->
      Format.fprintf fmt "conjunction of %d independent components@,"
        (List.length comps);
      List.iter
        (fun (name, sub) ->
          pad fmt (indent + 1);
          Format.fprintf fmt "component %s@," name;
          pp (indent + 2) sub)
        comps
    | Stuck q ->
      Format.fprintf fmt "stuck: no root variable (not hierarchical): %s@," q
  in
  Format.pp_open_vbox fmt 0;
  pp 0 s;
  Format.pp_close_box fmt ()
