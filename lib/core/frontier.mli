(** The tractability frontier of each aggregate function — the largest
    class of self-join-free CQs for which the Shapley value is
    polynomial-time for every localized value function (Figure 1):

    - Sum, Count → ∃-hierarchical (Theorem 3.1),
    - Min, Max, CDist → all-hierarchical (Theorem 4.1),
    - Avg, Median, Quantile → q-hierarchical (Theorem 5.1),
    - Has-duplicates → sq-hierarchical (Theorem 6.1).

    Shared by {!Batch} (which sits below {!Solver} in the dependency
    order) and re-exported by {!Solver}. *)

val frontier : Aggshap_agg.Aggregate.t -> Aggshap_cq.Hierarchy.cls

val within : Aggshap_agg.Aggregate.t -> Aggshap_cq.Cq.t -> bool
(** Is the Shapley value polynomial-time for this aggregate and CQ? *)
