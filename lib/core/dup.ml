module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Hierarchy = Aggshap_cq.Hierarchy
module Decompose = Aggshap_cq.Decompose
module Agg_query = Aggshap_agg.Agg_query
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact

module TupleMap = Map.Make (struct
  type t = Aggshap_relational.Value.t array

  let compare a b =
    let la = Array.length a and lb = Array.length b in
    if la <> lb then Stdlib.compare la lb
    else begin
      let rec go i =
        if i >= la then 0
        else
          let c = Aggshap_relational.Value.compare a.(i) b.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
    end
end)

module QMap = Map.Make (Q)

(* In a connected sq-hierarchical CQ every free variable occurs in every
   atom, so a fact determines the answer tuple it can contribute to. *)
let head_tuple_of_fact q (f : Fact.t) =
  match Cq.find_atom q f.rel with
  | None -> None
  | Some atom ->
    if not (Decompose.matches atom [] f) then None
    else begin
      let position x =
        let found = ref (-1) in
        Array.iteri
          (fun i t -> match t with
             | Cq.Var y when String.equal y x && !found < 0 -> found := i
             | _ -> ())
          atom.Cq.terms;
        if !found < 0 then
          invalid_arg
            (Printf.sprintf
               "Dup: free variable %s missing from atom %s (query not connected \
                sq-hierarchical)"
               x f.rel)
        else !found
      in
      Some (Array.of_list (List.map (fun x -> f.args.(position x)) q.Cq.head))
    end

type memo = {
  self : Tables.counts Memo.t;
  count : Count_dp.memo;
}

let create_memo () = { self = Memo.create (); count = Count_dp.create_memo () }

let memo_stats m =
  Memo.merge_stats (Memo.stats m.self) (Count_dp.memo_stats m.count)

(* Counts of k-subsets with at most one answer. Only rows 0 and 1 are
   read, so the answer-count DP may lump every ℓ ≥ 2 together — the
   saturated rows it reads are exact (see {!Count_dp.answer_counts}).
   The cap rides the evaluation-stack switch: with [Plan.enabled]
   cleared the DP runs the uncapped pre-indexed-stack merge, which is
   the reference arm of the differential campaigns and the "before"
   arm of the E19 bench, so every comparison also cross-checks the
   saturated merge against the exact one. *)
let cap () = if !Aggshap_cq.Plan.enabled then Some 2 else None

let at_most_one ?memo q db =
  let t = Count_dp.answer_counts ?memo ?cap:(cap ()) q db in
  Tables.add (Count_dp.get t 0) (Count_dp.get t 1)

(* Figure 5: NoDup counts for a connected sq-hierarchical CQ containing
   the τ-relation. The bag is duplicate-free iff every τ-value class of
   facts yields at most one answer. The memo key omits τ, so a memo is
   only sound across calls sharing one value function. *)
let connected_dup_counts ?count_memo tau q db =
  let n = Database.endo_size db in
  let aq = Agg_query.make Aggregate.Has_duplicates tau q in
  let answer_values =
    List.fold_left
      (fun acc (t, v) -> TupleMap.add t v acc)
      TupleMap.empty
      (Agg_query.answer_values aq db)
  in
  (* Group facts by the τ-value of the answer they can contribute to. *)
  let classes, padding =
    Database.fold
      (fun f p (classes, padding) ->
        match head_tuple_of_fact q f with
        | Some t when TupleMap.mem t answer_values ->
          let v = TupleMap.find t answer_values in
          let cls = Option.value (QMap.find_opt v classes) ~default:Database.empty in
          (QMap.add v (Database.add ~provenance:p f cls) classes, padding)
        | Some _ | None ->
          (classes, if p = Database.Endogenous then padding + 1 else padding))
      db
      (QMap.empty, 0)
  in
  let nodup =
    Tables.convolve_many
      (QMap.fold
         (fun _ class_db acc -> at_most_one ?memo:count_memo q class_db :: acc)
         classes [])
  in
  let nodup = Tables.pad padding nodup in
  Tables.sub (Tables.full n) nodup

(* The Figure-2 template instantiated with Dup counts. The connected
   case is resolved whole (Figure 5, via [connected_leaf]); only the
   cross-product step of Appendix E.2.3 decomposes, with the τ-relation
   in the connected component [q1]. *)
module Alg = struct
  type table = Tables.counts
  type ctx = { tau : Value_fn.t; count : Count_dp.memo option }

  let memo_prefix _ = ""
  let leaf _ _ _ = None

  let connected_leaf ctx q db =
    Some (connected_dup_counts ?count_memo:ctx.count ctx.tau q db)

  let empty _ _ = invalid_arg "Dup: τ-relation vanished from the query"

  (* Every connected sub-query resolves in [connected_leaf], so the
     engine never reaches the root-partition step for this algebra. *)
  let root_mode = `Any_root
  let root_error = "Dup: query is not sq-hierarchical: "
  let merge _ ~root:_ _ = assert false

  let combine ctx q db comps =
    let rel = ctx.tau.Value_fn.rel in
    match List.find_opt (fun (c, _, _) -> List.mem rel (Cq.relations c)) comps with
    | None -> invalid_arg "Dup: τ-relation must occur in the query"
    | Some ((q1, _, dup1_table) as entry1) ->
      let other_rels =
        List.concat_map
          (fun (c, _, _) -> Cq.relations c)
          (List.filter (fun e -> e != entry1) comps)
      in
      let q2 = Cq.restrict_to_relations q other_rels in
      let db1, _ = Database.restrict_relations (Cq.relations q1) db in
      let db2, _ = Database.restrict_relations other_rels db in
      let n1 = Database.endo_size db1 and n2 = Database.endo_size db2 in
      let t1 = Count_dp.answer_counts ?memo:ctx.count ?cap:(cap ()) q1 db1 in
      let t2 = Count_dp.answer_counts ?memo:ctx.count ?cap:(cap ()) q2 db2 in
      let nonempty1 = Tables.sub (Tables.full n1) (Count_dp.get t1 0) in
      let many2 =
        Tables.sub (Tables.full n2) (Tables.add (Count_dp.get t2 0) (Count_dp.get t2 1))
      in
      let dup1 = dup1_table () in
      Tables.add
        (Tables.convolve nonempty1 many2)
        (Tables.convolve dup1 (Count_dp.get t2 1))

  let pad _ p t = Tables.pad p t
end

module E = Engine.Make (Alg)

let ctx_of ?memo tau = { Alg.tau; count = Option.map (fun m -> m.count) memo }

let check (a : Agg_query.t) =
  if a.alpha <> Aggregate.Has_duplicates then
    invalid_arg
      ("Dup: aggregate " ^ Aggregate.to_string a.alpha ^ " is not has-duplicates");
  if not (Hierarchy.is_sq_hierarchical a.query) then
    invalid_arg ("Dup: query is not sq-hierarchical: " ^ Cq.to_string a.query)

let sum_k_memo ?memo (a : Agg_query.t) db =
  check a;
  let counts =
    E.eval_top ?memo:(Option.map (fun m -> m.self) memo) (ctx_of ?memo a.tau) a.query db
  in
  Tables.to_rationals counts

let sum_k a db = sum_k_memo a db

let shapley ?memo a db f = Sumk.shapley_of (fun a db -> sum_k_memo ?memo a db) a db f

let batch_worker ?memo a db =
  check a;
  fun f -> shapley ?memo a db f

let shapley_all a db = Sumk.shapley_all_of sum_k a db
