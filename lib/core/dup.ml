module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Hierarchy = Aggshap_cq.Hierarchy
module Decompose = Aggshap_cq.Decompose
module Agg_query = Aggshap_agg.Agg_query
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact

module TupleMap = Map.Make (struct
  type t = Aggshap_relational.Value.t array

  let compare a b =
    let la = Array.length a and lb = Array.length b in
    if la <> lb then Stdlib.compare la lb
    else begin
      let rec go i =
        if i >= la then 0
        else
          let c = Aggshap_relational.Value.compare a.(i) b.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0
    end
end)

module QMap = Map.Make (Q)

(* In a connected sq-hierarchical CQ every free variable occurs in every
   atom, so a fact determines the answer tuple it can contribute to. *)
let head_tuple_of_fact q (f : Fact.t) =
  match Cq.find_atom q f.rel with
  | None -> None
  | Some atom ->
    if not (Decompose.matches atom [] f) then None
    else begin
      let position x =
        let found = ref (-1) in
        Array.iteri
          (fun i t -> match t with
             | Cq.Var y when String.equal y x && !found < 0 -> found := i
             | _ -> ())
          atom.Cq.terms;
        if !found < 0 then
          invalid_arg
            (Printf.sprintf
               "Dup: free variable %s missing from atom %s (query not connected \
                sq-hierarchical)"
               x f.rel)
        else !found
      in
      Some (Array.of_list (List.map (fun x -> f.args.(position x)) q.Cq.head))
    end

type memo = {
  self : Tables.counts Memo.t;
  count : Count_dp.memo;
}

let create_memo () = { self = Memo.create (); count = Count_dp.create_memo () }

let memo_stats m =
  Memo.merge_stats (Memo.stats m.self) (Count_dp.memo_stats m.count)

(* Counts of k-subsets with at most one answer. *)
let at_most_one ?memo q db =
  let t = Count_dp.answer_counts ?memo q db in
  Tables.add (Count_dp.get t 0) (Count_dp.get t 1)

(* Figure 5: NoDup counts for a connected sq-hierarchical CQ containing
   the τ-relation. The bag is duplicate-free iff every τ-value class of
   facts yields at most one answer. The memo key omits τ, so a memo is
   only sound across calls sharing one value function. *)
let connected_dup_counts ?memo tau q db =
  let n = Database.endo_size db in
  let aq = Agg_query.make Aggregate.Has_duplicates tau q in
  let answer_values =
    List.fold_left
      (fun acc (t, v) -> TupleMap.add t v acc)
      TupleMap.empty
      (Agg_query.answer_values aq db)
  in
  (* Group facts by the τ-value of the answer they can contribute to. *)
  let classes, padding =
    Database.fold
      (fun f p (classes, padding) ->
        match head_tuple_of_fact q f with
        | Some t when TupleMap.mem t answer_values ->
          let v = TupleMap.find t answer_values in
          let cls = Option.value (QMap.find_opt v classes) ~default:Database.empty in
          (QMap.add v (Database.add ~provenance:p f cls) classes, padding)
        | Some _ | None ->
          (classes, if p = Database.Endogenous then padding + 1 else padding))
      db
      (QMap.empty, 0)
  in
  let count_memo = Option.map (fun m -> m.count) memo in
  let nodup =
    Tables.convolve_many
      (QMap.fold
         (fun _ class_db acc -> at_most_one ?memo:count_memo q class_db :: acc)
         classes [])
  in
  let nodup = Tables.pad padding nodup in
  Tables.sub (Tables.full n) nodup

(* Appendix E.2.3: cross product with the τ-relation in the connected
   component [q1]. *)
let rec dup_counts ?memo tau q db =
  Memo.find_or_compute
    (Option.map (fun m -> m.self) memo)
    ~key:(fun () -> Decompose.block_key q db)
    (fun () -> dup_counts_uncached ?memo tau q db)

and dup_counts_uncached ?memo tau q db =
  match Decompose.connected_components q with
  | [] -> invalid_arg "Dup: τ-relation vanished from the query"
  | [ _ ] -> connected_dup_counts ?memo tau q db
  | comps ->
    let rel = tau.Value_fn.rel in
    let q1 =
      match List.find_opt (fun c -> List.mem rel (Cq.relations c)) comps with
      | Some c -> c
      | None -> invalid_arg "Dup: τ-relation must occur in the query"
    in
    let other_rels =
      List.concat_map Cq.relations (List.filter (fun c -> c != q1) comps)
    in
    let q2 = Cq.restrict_to_relations q other_rels in
    let db1, _ = Database.restrict_relations (Cq.relations q1) db in
    let db2, _ = Database.restrict_relations other_rels db in
    let n1 = Database.endo_size db1 and n2 = Database.endo_size db2 in
    let count_memo = Option.map (fun m -> m.count) memo in
    let t1 = Count_dp.answer_counts ?memo:count_memo q1 db1 in
    let t2 = Count_dp.answer_counts ?memo:count_memo q2 db2 in
    let nonempty1 = Tables.sub (Tables.full n1) (Count_dp.get t1 0) in
    let many2 =
      Tables.sub (Tables.full n2) (Tables.add (Count_dp.get t2 0) (Count_dp.get t2 1))
    in
    let dup1 = dup_counts ?memo tau q1 db1 in
    Tables.add
      (Tables.convolve nonempty1 many2)
      (Tables.convolve dup1 (Count_dp.get t2 1))

let check (a : Agg_query.t) =
  if a.alpha <> Aggregate.Has_duplicates then
    invalid_arg
      ("Dup: aggregate " ^ Aggregate.to_string a.alpha ^ " is not has-duplicates");
  if not (Hierarchy.is_sq_hierarchical a.query) then
    invalid_arg ("Dup: query is not sq-hierarchical: " ^ Cq.to_string a.query)

let sum_k_memo ?memo (a : Agg_query.t) db =
  check a;
  let db_rel, db_pad = Decompose.relevant a.query db in
  let counts =
    Tables.pad (Database.endo_size db_pad) (dup_counts ?memo a.tau a.query db_rel)
  in
  Tables.to_rationals counts

let sum_k a db = sum_k_memo a db

let shapley ?memo a db f = Sumk.shapley_of (fun a db -> sum_k_memo ?memo a db) a db f

let batch_worker ?memo a db =
  check a;
  fun f -> shapley ?memo a db f

let shapley_all a db = Sumk.shapley_all_of sum_k a db
