module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module C = Aggshap_arith.Combinat
module Cq = Aggshap_cq.Cq
module Parser = Aggshap_cq.Parser
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Value = Aggshap_relational.Value
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query

let q_xyyz = Parser.parse_query_exn "Q(x, z) <- R(x, y), S(y), T(z)"
let q_full = Parser.parse_query_exn "Q(x, y) <- R(x, y), S(y)"
let q_t = Parser.parse_query_exn "Q(z) <- T(z)"
let q_rs_bool = Parser.parse_query_exn "Q() <- R(x, y), S(y)"

(* A(E) = α(τ over T-part) · 1[the (R,S)-part is nonempty], because the
   (R,S) answer count only scales multiplicities uniformly — harmless for
   Avg and Med. Hence sum_k is the convolution of the two parts. *)
let on_t_sum_k alpha tau db =
  if not (String.equal tau.Value_fn.rel "T") then
    invalid_arg "Localization: τ must be localized on T";
  let db_t, rest = Database.restrict_relations [ "T" ] db in
  let db_rs, pad = Database.restrict_relations [ "R"; "S" ] rest in
  let a1 = Agg_query.make alpha tau q_t in
  let avg_part = Avg_quantile.sum_k a1 db_t in
  let bool_part = Tables.to_rationals (Boolean_dp.counts q_rs_bool db_rs) in
  Tables.pad_rat (Database.endo_size pad) (Tables.convolve_rat avg_part bool_part)

let avg_on_t_sum_k tau db = on_t_sum_k Aggregate.Avg tau db
let median_on_t_sum_k tau db = on_t_sum_k Aggregate.Median tau db

(* Dup ∘ τ_id² ∘ Q_full: group facts by the y-value; within the class of
   [b], a subset has a duplicate iff S(b) is available and at least two
   facts R(·,b) are. The per-class count is closed-form (Prop 7.3's
   proof), and classes convolve. *)
type y_class = {
  r_endo : int;
  r_exo : int;
  s_present : bool;
  s_endo : bool;
}

let empty_class = { r_endo = 0; r_exo = 0; s_present = false; s_endo = false }

module VMap = Map.Make (Value)

let classify_facts db =
  Database.fold
    (fun (f : Fact.t) p (classes, pad) ->
      let endo = p = Database.Endogenous in
      match f.rel, Array.length f.args with
      | "R", 2 ->
        let key = f.args.(1) in
        let c = Option.value (VMap.find_opt key classes) ~default:empty_class in
        let c =
          if endo then { c with r_endo = c.r_endo + 1 } else { c with r_exo = c.r_exo + 1 }
        in
        (VMap.add key c classes, pad)
      | "S", 1 ->
        let key = f.args.(0) in
        let c = Option.value (VMap.find_opt key classes) ~default:empty_class in
        (VMap.add key { c with s_present = true; s_endo = endo } classes, pad)
      | _ -> (classes, pad + if endo then 1 else 0))
    db
    (VMap.empty, 0)

let class_dup_counts c =
  let delta = if c.s_endo then 1 else 0 in
  let n_i = c.r_endo + delta in
  Array.init (n_i + 1) (fun k ->
      if c.s_present && k >= delta && k - delta + c.r_exo >= 2 then
        C.binomial c.r_endo (k - delta)
      else B.zero)

let dup_on_y_sum_k db =
  let classes, pad = classify_facts db in
  let nodup =
    Tables.convolve_many
      (VMap.fold
         (fun _ c acc ->
           let n_i = c.r_endo + if c.s_endo then 1 else 0 in
           Tables.sub (Tables.full n_i) (class_dup_counts c) :: acc)
         classes [])
  in
  let nodup = Tables.pad pad nodup in
  let n = Database.endo_size db in
  Tables.to_rationals (Tables.sub (Tables.full n) nodup)

let avg_on_t_shapley tau db f = Sumk.shapley_of_db_fn (avg_on_t_sum_k tau) db f
let median_on_t_shapley tau db f = Sumk.shapley_of_db_fn (median_on_t_sum_k tau) db f
let dup_on_y_shapley db f = Sumk.shapley_of_db_fn dup_on_y_sum_k db f
