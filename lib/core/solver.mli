(** Front door of the library: classify the query, let the solve
    planner ({!Strategy}) pick the route, and report which side of the
    tractability frontier the instance fell on — Figure 1 of the paper,
    operationally.

    For each aggregate function the {e frontier} is the class of CQs
    (without self-joins) for which the Shapley value is computable in
    polynomial time for every localized value function:

    - Sum, Count → ∃-hierarchical (Livshits et al.; Theorem 3.1),
    - Min, Max, CDist → all-hierarchical (Theorem 4.1),
    - Avg, Median, Quantile → q-hierarchical (Theorem 5.1),
    - Has-duplicates → sq-hierarchical (Theorem 6.1).

    Outside the frontier the {!Strategy.fallback} request decides:
    knowledge compilation (exact, via {!Aggshap_lineage}: lineage →
    d-DNNF → weighted model counting), exact enumeration (always
    exponential), Monte-Carlo estimation, [`Fail], or [`Auto] — the
    planner picks the cheapest applicable exact tier under its cost
    model. Execution walks the plan's degradation ladder: a
    knowledge-compilation run aborting on its d-DNNF node budget falls
    to the next rung instead of failing. *)

type outcome =
  | Exact of Aggshap_arith.Rational.t
  | Estimate of Monte_carlo.estimate

type report = {
  cls : Aggshap_cq.Hierarchy.cls;  (** classification of the CQ *)
  frontier : Aggshap_cq.Hierarchy.cls;  (** frontier class of the aggregate *)
  within_frontier : bool;
  algorithm : string;  (** human-readable name of the algorithm used *)
}

val frontier : Aggshap_agg.Aggregate.t -> Aggshap_cq.Hierarchy.cls

val within_frontier : Aggshap_agg.Aggregate.t -> Aggshap_cq.Cq.t -> bool
(** Is the Shapley value polynomial-time for this aggregate and CQ (for
    every localized τ)? *)

val report :
  ?fallback:Strategy.fallback ->
  ?stats:Strategy.db_stats ->
  ?kc_node_budget:int ->
  Aggshap_agg.Agg_query.t ->
  report
(** The report {!shapley} and {!shapley_all} would attach, without
    solving anything: classification of the query, frontier of the
    aggregate, and the name of the algorithm the planner would choose
    (the frontier algorithm inside, the [fallback]'s route outside;
    default [`Naive]). [stats] feeds the planner's cost model — without
    it [`Auto] picks by applicability alone. The algorithm vocabulary
    lives in {!Strategy.route_name}; [shapctl explain] prints exactly
    this. *)

val shapley :
  ?fallback:Strategy.fallback ->
  ?mc_seed:int ->
  ?kc_node_budget:int ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  outcome * report
(** Computes the Shapley value of an endogenous fact. Within the frontier
    the matching polynomial algorithm runs; outside, the planner's
    choice for [fallback] (default [`Naive]) does. [`Knowledge_compilation]
    runs the exact lineage tier ({!Aggshap_lineage.Lineage}) for the
    event-decomposable aggregates (Sum, Count, CDist, Min, Max,
    Has-dup) and keeps the naive behaviour for the others; [`Auto] lets
    the planner pick the cheapest applicable exact tier — the report's
    [algorithm] string says which. [kc_node_budget] caps the d-DNNF
    node count: an aborted compilation falls down the plan's ladder
    (to naive enumeration) and the report says so. [mc_seed] makes a
    [`Monte_carlo] fallback reproducible (it is ignored by the exact
    paths).
    @raise Invalid_argument outside the frontier with [`Fail], or if the
    fact is not endogenous. *)

val banzhaf :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** The Banzhaf value of an endogenous fact (Section 3.2's observation
    that [sum_k]-based algorithms compute every Shapley-like score):
    inside the frontier via the polynomial algorithms, outside via exact
    enumeration. *)

val shapley_exact :
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** [shapley] with [`Naive] fallback, unwrapped. *)

val shapley_all :
  ?fallback:Strategy.fallback ->
  ?mc_seed:int ->
  ?jobs:int ->
  ?cache:bool ->
  ?kc_node_budget:int ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  (Aggshap_relational.Fact.t * outcome) list * report
(** Shapley values of {e all} endogenous facts, in [Database.endogenous]
    order. Within the frontier this runs the {!Batch} engine: the
    per-fact loop fans out over [jobs] domains (default
    {!Pool.default_jobs}[ ()]; [1] is fully sequential) and DP tables are
    shared across facts when [cache] is [true] (the default). Outside the
    frontier the planner's route runs — the fallback solvers fan across
    the same pool; with [`Fail] the frontier error is raised up-front,
    before any worker domain is spawned. [mc_seed] seeds a
    [`Monte_carlo] fallback: each fact gets a distinct seed derived
    deterministically from [mc_seed] and its position, so estimates are
    reproducible for every [jobs] value. A supported
    [`Knowledge_compilation] (or auto-picked) batch runs in the calling
    domain instead: one extraction and one compilation serve every
    fact; if it aborts on [kc_node_budget] the batch re-runs on the
    ladder's next rung. Exact results are bit-identical for every
    [jobs]/[cache] combination and every exact route. *)
