type stats = {
  hits : int;
  misses : int;
}

let no_stats = { hits = 0; misses = 0 }

let merge_stats a b = { hits = a.hits + b.hits; misses = a.misses + b.misses }

let stats_to_string s = Printf.sprintf "%d hits / %d misses" s.hits s.misses

type 'v t = {
  tbl : (string, 'v) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  { tbl = Hashtbl.create 256; lock = Mutex.create (); hits = 0; misses = 0 }

let stats t =
  Mutex.lock t.lock;
  let s = { hits = t.hits; misses = t.misses } in
  Mutex.unlock t.lock;
  s

(* The lock is never held while [compute] runs, so two domains missing
   the same key may both compute it; the table keeps one copy and both
   results are equal (the cached values are pure functions of the key).
   Cached values must be immutable after construction — every DP table
   in this library is. *)
let find_or_compute memo ~key compute =
  match memo with
  | None -> compute ()
  | Some t ->
    let key = key () in
    Mutex.lock t.lock;
    (match Hashtbl.find_opt t.tbl key with
     | Some v ->
       t.hits <- t.hits + 1;
       Mutex.unlock t.lock;
       v
     | None ->
       t.misses <- t.misses + 1;
       Mutex.unlock t.lock;
       let v = compute () in
       Mutex.lock t.lock;
       if not (Hashtbl.mem t.tbl key) then Hashtbl.add t.tbl key v;
       Mutex.unlock t.lock;
       v)
