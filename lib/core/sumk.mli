(** From [sum_k] vectors to Shapley values (Section 3.2).

    Every exact algorithm in this library produces, for a database [D],
    the vector [sum_k(A, D) = Σ_{E ∈ (Dⁿ choose k)} A(Dˣ ∪ E)]. The
    folklore identity then gives the Shapley value of a fact [f]:

    {v Shapley(f, A) = Σ_{k=0}^{n-1} q_k · (sum_k(A, F) − sum_k(A, G)) v}

    where [n = |Dⁿ|], [F] is [D] with [f] made exogenous and [G] is [D]
    without [f]. Because the formula only uses differences, any constant
    offset (such as the [−A(Dˣ)] in the game definition) cancels. *)

type sum_k_fn =
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_arith.Rational.t array
(** Must return an array of length [endo_size db + 1]. *)

type coefficients = players:int -> before:int -> Aggshap_arith.Rational.t
(** A {e Shapley-like score} (Karmakar et al. 2024) is given by the
    weight of a marginal contribution over a coalition of size [before]
    out of [players] players. Every [sum_k]-based algorithm in this
    library computes any such score (Section 3.2 of the paper). *)

val shapley_coefficients : coefficients
val banzhaf_coefficients : coefficients
(** [1 / 2^(players-1)], independent of the coalition size. *)

val score_of :
  ?coefficients:coefficients ->
  sum_k_fn ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** Defaults to the Shapley coefficients. *)

val banzhaf_of :
  sum_k_fn ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t

val score_of_vectors :
  ?coefficients:coefficients ->
  players:int ->
  Aggshap_arith.Rational.t array ->
  Aggshap_arith.Rational.t array ->
  Aggshap_arith.Rational.t
(** [score_of_vectors ~players with_f without_f] applies the coefficient
    formula to precomputed [sum_k] vectors of [D] with [f] exogenous and
    [D] without [f] ([players] is the endogenous count {e including}
    [f]; both vectors have that length). The building block for batch
    workers that share table prefixes across facts.
    @raise Invalid_argument on a length mismatch. *)

val score_of_db_fn :
  ?coefficients:coefficients ->
  (Aggshap_relational.Database.t -> Aggshap_arith.Rational.t array) ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t

val shapley_of_db_fn :
  (Aggshap_relational.Database.t -> Aggshap_arith.Rational.t array) ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** Like {!shapley_of} for a [sum_k] function closed over its query. *)

val shapley_of :
  sum_k_fn ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** @raise Invalid_argument if the fact is not endogenous. *)

val shapley_all_of :
  sum_k_fn ->
  Aggshap_agg.Agg_query.t ->
  Aggshap_relational.Database.t ->
  (Aggshap_relational.Fact.t * Aggshap_arith.Rational.t) list
