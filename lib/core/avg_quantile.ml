module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Eval = Aggshap_cq.Eval
module Hierarchy = Aggshap_cq.Hierarchy
module Decompose = Aggshap_cq.Decompose
module Agg_query = Aggshap_agg.Agg_query
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact

module LMap = Map.Make (struct
  type t = int * int * int

  let compare = Stdlib.compare
end)

(* N_a for one sub-query: (ℓ<, ℓ=, ℓ>) ↦ per-k counts. Every subset is
   counted under exactly one key, so the entries sum to [full n]. *)
type vtable = {
  n : int;
  entries : Tables.counts LMap.t;
}

let add_entry l c entries =
  LMap.update l (function None -> Some c | Some c' -> Some (Tables.add c' c)) entries

let pad_vtable p t =
  if p = 0 then t else { n = t.n + p; entries = LMap.map (Tables.pad p) t.entries }

let vec_add (a1, b1, c1) (a2, b2, c2) = (a1 + a2, b1 + b2, c1 + c2)
let vec_scale s (a, b, c) = (s * a, s * b, s * c)

let combine_vtables op t1 t2 =
  let entries =
    LMap.fold
      (fun l1 c1 acc ->
        LMap.fold
          (fun l2 c2 acc ->
            let c = Tables.convolve c1 c2 in
            if B.is_zero (Tables.total c) then acc else add_entry (op l1 l2) c acc)
          t2.entries acc)
      t1.entries LMap.empty
  in
  { n = t1.n + t2.n; entries }

let neutral_union = { n = 0; entries = LMap.singleton (0, 0, 0) [| B.one |] }

let vtable_of ~n entries =
  { n; entries = List.fold_left (fun acc (l, c) -> add_entry l c acc) LMap.empty entries }

(* [combine_vtables] drops all-zero rows, so equality must not
   distinguish an absent ℓ-vector from one whose counts are all zero. *)
let vtable_equal t1 t2 =
  let nonzero m = LMap.filter (fun _ c -> not (B.is_zero (Tables.total c))) m in
  let counts_equal a b = Array.length a = Array.length b && Array.for_all2 B.equal a b in
  t1.n = t2.n && LMap.equal counts_equal (nonzero t1.entries) (nonzero t2.entries)

(* Cross product of a τ-side table with a τ-free side's answer counts:
   each answer of the τ-free side replicates the whole bag. *)
let combine_cross_counted t (c : Count_dp.t) =
  let entries =
    LMap.fold
      (fun lvec c1 acc ->
        Count_dp.IntMap.fold
          (fun l2 c2 acc ->
            let c = Tables.convolve c1 c2 in
            if B.is_zero (Tables.total c) then acc
            else add_entry (vec_scale l2 lvec) c acc)
          c.Count_dp.entries acc)
      t.entries LMap.empty
  in
  { n = t.n + c.Count_dp.n; entries }

type memo = {
  self : vtable Memo.t;
  bool : Boolean_dp.memo;
  count : Count_dp.memo;
}

let create_memo () =
  { self = Memo.create ();
    bool = Boolean_dp.create_memo ();
    count = Count_dp.create_memo () }

let memo_stats m =
  Memo.merge_stats (Memo.stats m.self)
    (Memo.merge_stats (Boolean_dp.memo_stats m.bool) (Count_dp.memo_stats m.count))

(* Boolean sub-query containing the τ-relation: at most one answer, whose
   τ-value is read off the homomorphism support (all supporting R-facts
   must agree — otherwise τ is not localized on this database). *)
let boolean_valued ?bool_memo tau a q db =
  let n = Database.endo_size db in
  let sat = Boolean_dp.counts ?memo:bool_memo q db in
  let unsat = Tables.complement n sat in
  let r_facts =
    List.filter
      (fun (f : Fact.t) -> String.equal f.rel tau.Value_fn.rel)
      (Eval.support q db)
  in
  match r_facts with
  | [] -> { n; entries = LMap.singleton (0, 0, 0) (Tables.full n) }
  | f :: rest ->
    let v = Value_fn.apply tau f.Fact.args in
    List.iter
      (fun (g : Fact.t) ->
        if not (Q.equal v (Value_fn.apply tau g.Fact.args)) then
          invalid_arg "Avg_quantile: τ is not localized on this database")
      rest;
    let lvec =
      match Q.compare v a with c when c < 0 -> (1, 0, 0) | 0 -> (0, 1, 0) | _ -> (0, 0, 1)
    in
    { n; entries = LMap.empty |> add_entry lvec sat |> add_entry (0, 0, 0) unsat }

(* The Figure-2 template instantiated with (a,k,ℓ)-tables for the
   sub-query containing the τ-relation, for a fixed reference value
   [a]. The memo key carries the reference value on top of the block
   key (the same sub-instance is revisited once per realizable
   τ-value); τ itself stays outside the key, so a memo is only sound
   for one value function — {!Batch} creates one per run. *)
module Alg = struct
  type table = vtable

  type ctx = {
    tau : Value_fn.t;
    a : Q.t;
    bool : Boolean_dp.memo option;
    count : Count_dp.memo option;
  }

  let memo_prefix ctx = Q.to_string ctx.a ^ "\x01"

  let leaf ctx q db =
    if Cq.is_boolean q then Some (boolean_valued ?bool_memo:ctx.bool ctx.tau ctx.a q db)
    else None

  let connected_leaf _ _ _ = None
  let empty _ _ = assert false (* non-Boolean queries have atoms *)
  let root_mode = `Free_root
  let root_error = "Avg_quantile: query is not q-hierarchical: "

  let merge _ ~root:_ blocks =
    List.fold_left (fun acc (_, _, t) -> combine_vtables vec_add acc t) neutral_union
      blocks

  let combine ctx _q _db comps =
    let rel = ctx.tau.Value_fn.rel in
    let with_r, without_r =
      List.partition (fun (c, _, _) -> List.mem rel (Cq.relations c)) comps
    in
    match with_r with
    | [ (_, _, table0) ] ->
      let t0 = table0 () in
      List.fold_left
        (fun acc (c, db_c, _) ->
          combine_cross_counted acc (Count_dp.answer_counts ?memo:ctx.count c db_c))
        t0 without_r
    | _ -> invalid_arg "Avg_quantile: τ-relation must occur in exactly one component"

  let pad _ p t = pad_vtable p t
end

module E = Engine.Make (Alg)

let ctx_of ?memo tau a =
  { Alg.tau;
    a;
    bool = Option.map (fun m -> m.bool) memo;
    count = Option.map (fun m -> m.count) memo }

let valued_table ?memo tau a q db =
  E.eval ?memo:(Option.map (fun m -> m.self) memo) (ctx_of ?memo tau a) q db

let check (a : Agg_query.t) =
  (match Aggregate.quantile_of a.alpha with
   | Some _ -> ()
   | None ->
     if a.alpha <> Aggregate.Avg then
       invalid_arg
         ("Avg_quantile: aggregate " ^ Aggregate.to_string a.alpha ^ " is not avg/quantile"));
  if not (Hierarchy.is_q_hierarchical a.query) then
    invalid_arg ("Avg_quantile: query is not q-hierarchical: " ^ Cq.to_string a.query)

(* Weight of the reference value [a] in the aggregate of a bag described
   by (ℓ<, ℓ=, ℓ>): its multiplicity share for Avg, its rank-indicator
   weight f_q for quantiles. *)
let avg_weight (l_lt, l_eq, l_gt) =
  if l_eq = 0 then Q.zero else Q.of_ints l_eq (l_lt + l_eq + l_gt)

let quantile_weight q (l_lt, l_eq, l_gt) =
  let tot = l_lt + l_eq + l_gt in
  if tot = 0 || l_eq = 0 then Q.zero
  else begin
    let qn = Q.mul_int q tot in
    let i1 = B.to_int_exn (Q.ceil qn) in
    let i2 = B.to_int_exn (Q.floor (Q.add qn Q.one)) in
    let hit i = if l_lt < i && i <= l_lt + l_eq then 1 else 0 in
    Q.div_int (Q.of_int (hit i1 + hit i2)) 2
  end

let sum_k_memo ?memo (a : Agg_query.t) db =
  check a;
  let weight =
    match Aggregate.quantile_of a.alpha with
    | Some q -> quantile_weight q
    | None -> avg_weight
  in
  let db_rel, pad = Decompose.relevant_part a.query db in
  let values = List.sort_uniq Q.compare (List.map snd (Agg_query.answer_values a db)) in
  let n = Database.endo_size db in
  (* Collect every (weight, counts) term across all reference values and
     accumulate them in one integer pass over a common denominator
     instead of one scale_to/add_rat (a gcd per entry) per term. *)
  let pairs =
    List.concat_map
      (fun v ->
        let t = pad_vtable pad (valued_table ?memo a.tau v a.query db_rel) in
        LMap.fold
          (fun lvec counts acc ->
            let w = weight lvec in
            if Q.is_zero w then acc else (Q.mul v w, counts) :: acc)
          t.entries [])
      values
  in
  Tables.weighted_sum n pairs

let sum_k a db = sum_k_memo a db

let shapley ?memo a db f = Sumk.shapley_of (fun a db -> sum_k_memo ?memo a db) a db f

let batch_worker ?memo a db =
  check a;
  fun f -> shapley ?memo a db f

let shapley_all a db = Sumk.shapley_all_of sum_k a db
