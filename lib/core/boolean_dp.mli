(** Exact counting and Shapley computation for Boolean hierarchical CQs.

    This is the algorithm of Livshits, Bertossi, Kimelfeld and Sebag for
    the {e membership} problem, phrased in the [sum_k] style of
    Section 3.2: [counts q db] returns, for every [k], the number of
    [k]-subsets [E] of the endogenous facts such that [Q(E ∪ Dˣ)] is
    satisfied. It is the foundation of the Sum/Count algorithm (linearity
    of expectation), of the CDist reduction (Lemma 4.3), and of the
    Boolean sub-trees of all other dynamic programs. *)

type memo
(** A shared cache of sub-instance tables, keyed by
    {!Aggshap_cq.Decompose.block_key}. Safe to share across domains;
    create one per batch run. *)

val create_memo : unit -> memo
val memo_stats : memo -> Memo.stats

val counts : ?memo:memo -> Aggshap_cq.Cq.t -> Aggshap_relational.Database.t -> Tables.counts
(** The head of [q] is ignored (the query is evaluated as Boolean). The
    result has length [endo_size db + 1]. With [?memo], sub-instance
    tables are reused across calls.
    @raise Invalid_argument if the Boolean query is not hierarchical. *)

val shapley :
  ?memo:memo ->
  Aggshap_cq.Cq.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** Shapley value of an endogenous fact for Boolean query satisfaction
    (the membership game).
    @raise Invalid_argument if the fact is not endogenous in [db]. *)

val score :
  ?coefficients:Sumk.coefficients ->
  ?memo:memo ->
  Aggshap_cq.Cq.t ->
  Aggshap_relational.Database.t ->
  Aggshap_relational.Fact.t ->
  Aggshap_arith.Rational.t
(** Any Shapley-like score of the membership game (defaults to Shapley;
    pass {!Sumk.banzhaf_coefficients} for the Banzhaf value). *)
