module Q = Aggshap_arith.Rational
module Agg_query = Aggshap_agg.Agg_query
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Database = Aggshap_relational.Database

type stats = {
  jobs : int;
  cache : Memo.stats option;
}

let stats_to_string s =
  Printf.sprintf "jobs=%d, cache=%s" s.jobs
    (match s.cache with None -> "off" | Some m -> Memo.stats_to_string m)

(* The per-algorithm memos are keyed on (sub-query, block fingerprint)
   only: the value function τ (and the aggregate choosing how its tables
   are read) is outside the key. A memo reused across runs is therefore
   stamped with a fingerprint of everything outside the key, and
   [shapley_all] refuses a memo stamped for a different run. [descr] is
   injective for every built-in value function; custom value functions
   must choose distinguishing descriptions to be safely reusable. *)
type memo_impl =
  | M_sum_count of Sum_count.memo
  | M_cdist of Cdist.memo
  | M_minmax of Minmax.memo
  | M_avg of Avg_quantile.memo
  | M_dup of Dup.memo

type memo = {
  impl : memo_impl;
  fingerprint : string;
}

let fingerprint_of (a : Agg_query.t) =
  String.concat "\x00"
    [ Aggregate.to_string a.alpha; a.tau.Value_fn.rel; a.tau.Value_fn.descr;
      Aggshap_cq.Cq.to_string a.query ]

let create_memo (a : Agg_query.t) =
  let impl =
    match a.alpha with
    | Aggregate.Sum | Aggregate.Count -> M_sum_count (Sum_count.create_memo ())
    | Aggregate.Count_distinct -> M_cdist (Cdist.create_memo ())
    | Aggregate.Min | Aggregate.Max -> M_minmax (Minmax.create_memo ())
    | Aggregate.Avg | Aggregate.Median | Aggregate.Quantile _ ->
      M_avg (Avg_quantile.create_memo ())
    | Aggregate.Has_duplicates -> M_dup (Dup.create_memo ())
  in
  { impl; fingerprint = fingerprint_of a }

let memo_stats m =
  match m.impl with
  | M_sum_count m -> Sum_count.memo_stats m
  | M_cdist m -> Cdist.memo_stats m
  | M_minmax m -> Minmax.memo_stats m
  | M_avg m -> Avg_quantile.memo_stats m
  | M_dup m -> Dup.memo_stats m

let check_memo (a : Agg_query.t) m =
  if m.fingerprint <> fingerprint_of a then
    invalid_arg
      "Batch: memo was created for a different (aggregate, tau, query); \
       create a fresh one (tau is outside the DP-table cache key)"

(* One worker per tractable aggregate family. Without an explicit memo
   the cache (when on) lives exactly as long as this batch run, so the
   τ-outside-the-key caveat of the per-algorithm memos is satisfied by
   construction; with [?memo] the fingerprint check above enforces it. *)
let make_worker ~memo (a : Agg_query.t) db =
  match a.alpha with
  | Aggregate.Sum | Aggregate.Count ->
    let memo = match memo with Some (M_sum_count m) -> Some m | _ -> None in
    (Sum_count.batch_worker ?memo a db,
     fun () -> Option.map Sum_count.memo_stats memo)
  | Aggregate.Count_distinct ->
    let memo = match memo with Some (M_cdist m) -> Some m | _ -> None in
    (Cdist.batch_worker ?memo a db, fun () -> Option.map Cdist.memo_stats memo)
  | Aggregate.Min | Aggregate.Max ->
    let memo = match memo with Some (M_minmax m) -> Some m | _ -> None in
    (Minmax.batch_worker ?memo a db, fun () -> Option.map Minmax.memo_stats memo)
  | Aggregate.Avg | Aggregate.Median | Aggregate.Quantile _ ->
    let memo = match memo with Some (M_avg m) -> Some m | _ -> None in
    (Avg_quantile.batch_worker ?memo a db,
     fun () -> Option.map Avg_quantile.memo_stats memo)
  | Aggregate.Has_duplicates ->
    let memo = match memo with Some (M_dup m) -> Some m | _ -> None in
    (Dup.batch_worker ?memo a db, fun () -> Option.map Dup.memo_stats memo)

let shapley_all ?jobs ?(cache = true) ?memo (a : Agg_query.t) db =
  if not (Frontier.within a.alpha a.query) then
    invalid_arg "Batch.shapley_all: query is outside the tractability frontier";
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  let memo =
    match memo with
    | Some m ->
      check_memo a m;
      Some m.impl
    | None -> if cache then Some (create_memo a).impl else None
  in
  let worker, stats_of = make_worker ~memo a db in
  let results = Pool.map ~jobs (fun f -> (f, worker f)) (Database.endogenous db) in
  (results, { jobs; cache = stats_of () })

let map ?jobs f facts = Pool.map ?jobs (fun x -> (x, f x)) facts
