module Q = Aggshap_arith.Rational
module Agg_query = Aggshap_agg.Agg_query
module Aggregate = Aggshap_agg.Aggregate
module Database = Aggshap_relational.Database

type stats = {
  jobs : int;
  cache : Memo.stats option;
}

let stats_to_string s =
  Printf.sprintf "jobs=%d, cache=%s" s.jobs
    (match s.cache with None -> "off" | Some m -> Memo.stats_to_string m)

(* One worker per tractable aggregate family. The memo (when caching is
   on) lives exactly as long as this batch run, so the τ-outside-the-key
   caveat of the per-algorithm memos is satisfied by construction. *)
let make_worker ~cache (a : Agg_query.t) db =
  match a.alpha with
  | Aggregate.Sum | Aggregate.Count ->
    let memo = if cache then Some (Sum_count.create_memo ()) else None in
    (Sum_count.batch_worker ?memo a db,
     fun () -> Option.map Sum_count.memo_stats memo)
  | Aggregate.Count_distinct ->
    let memo = if cache then Some (Cdist.create_memo ()) else None in
    (Cdist.batch_worker ?memo a db, fun () -> Option.map Cdist.memo_stats memo)
  | Aggregate.Min | Aggregate.Max ->
    let memo = if cache then Some (Minmax.create_memo ()) else None in
    (Minmax.batch_worker ?memo a db, fun () -> Option.map Minmax.memo_stats memo)
  | Aggregate.Avg | Aggregate.Median | Aggregate.Quantile _ ->
    let memo = if cache then Some (Avg_quantile.create_memo ()) else None in
    (Avg_quantile.batch_worker ?memo a db,
     fun () -> Option.map Avg_quantile.memo_stats memo)
  | Aggregate.Has_duplicates ->
    let memo = if cache then Some (Dup.create_memo ()) else None in
    (Dup.batch_worker ?memo a db, fun () -> Option.map Dup.memo_stats memo)

let shapley_all ?jobs ?(cache = true) (a : Agg_query.t) db =
  if not (Frontier.within a.alpha a.query) then
    invalid_arg "Batch.shapley_all: query is outside the tractability frontier";
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  let worker, stats_of = make_worker ~cache a db in
  let results = Pool.map ~jobs (fun f -> (f, worker f)) (Database.endogenous db) in
  (results, { jobs; cache = stats_of () })

let map ?jobs f facts = Pool.map ?jobs (fun x -> (x, f x)) facts
