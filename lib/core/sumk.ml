module Q = Aggshap_arith.Rational
module C = Aggshap_arith.Combinat
module Database = Aggshap_relational.Database

type sum_k_fn =
  Aggshap_agg.Agg_query.t -> Database.t -> Q.t array

(* A Shapley-like score is determined by coefficients p(n, k) weighting
   the marginal contribution over coalitions of size k out of n players
   (Karmakar et al. 2024). All sum_k-based algorithms support any such
   score, as observed in Section 3.2 of the paper. *)
type coefficients = players:int -> before:int -> Q.t

let shapley_coefficients : coefficients = C.shapley_coefficient

let banzhaf_coefficients : coefficients =
 fun ~players ~before:_ ->
  Q.inv (Q.of_bigint (Aggshap_arith.Bigint.pow Aggshap_arith.Bigint.two (players - 1)))

module B = Aggshap_arith.Bigint

let den_lcm acc q =
  let d = Q.den q in
  if B.is_one d || B.equal d acc then acc else B.lcm acc d

(* The Shapley dot product in common-denominator form: the weight of
   size [k] is the integer [k! (n-k-1)!] over the shared denominator
   [n!], and the sum_k entries are lifted over the lcm of their
   denominators, so the whole sum is one integer multiply-accumulate
   pass with a single normalization at the end — instead of reducing a
   factorial-scale rational per coalition size. *)
let shapley_of_vectors_int ~players with_f without_f =
  let l = Array.fold_left den_lcm B.one with_f in
  let l = Array.fold_left den_lcm l without_f in
  let lift q =
    if Q.is_zero q then B.zero
    else if B.is_one l then Q.num q
    else B.mul (Q.num q) (B.div l (Q.den q))
  in
  let weights = C.shapley_weights players in
  let acc = B.Acc.create () in
  for k = 0 to players - 1 do
    let diff = B.sub (lift with_f.(k)) (lift without_f.(k)) in
    if not (B.is_zero diff) then B.Acc.add_mul acc weights.(k) diff
  done;
  Q.make (B.Acc.value acc) (B.mul (C.factorial players) l)

let score_of_vectors ?coefficients ~players with_f without_f =
  if Array.length with_f <> players || Array.length without_f <> players then
    invalid_arg "Sumk: sum_k vector has the wrong length";
  match coefficients with
  | None -> shapley_of_vectors_int ~players with_f without_f
  | Some coefficients ->
    let acc = ref Q.zero in
    for k = 0 to players - 1 do
      let diff = Q.sub with_f.(k) without_f.(k) in
      if not (Q.is_zero diff) then
        acc := Q.add !acc (Q.mul (coefficients ~players ~before:k) diff)
    done;
    !acc

let score_of_db_fn ?coefficients sum_k db f =
  (match Database.provenance db f with
   | Some Database.Endogenous -> ()
   | _ -> invalid_arg "Sumk: fact must be endogenous");
  let n = Database.endo_size db in
  let with_f = sum_k (Database.set_provenance Database.Exogenous f db) in
  let without_f = sum_k (Database.remove f db) in
  score_of_vectors ?coefficients ~players:n with_f without_f

let shapley_of_db_fn sum_k db f = score_of_db_fn sum_k db f

let score_of ?coefficients sum_k a db f =
  score_of_db_fn ?coefficients (fun db -> sum_k a db) db f

let shapley_of sum_k a db f = score_of sum_k a db f

let banzhaf_of sum_k a db f =
  score_of ~coefficients:banzhaf_coefficients sum_k a db f

let shapley_all_of sum_k a db =
  List.map (fun f -> (f, shapley_of sum_k a db f)) (Database.endogenous db)
