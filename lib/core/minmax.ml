module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Hierarchy = Aggshap_cq.Hierarchy
module Decompose = Aggshap_cq.Decompose
module Agg_query = Aggshap_agg.Agg_query
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Database = Aggshap_relational.Database
module QMap = Map.Make (Q)

(* P[Q', D'] for sub-queries containing the τ-relation:
   [by_value] maps each realizable maximal τ-value [a] to its per-k
   counts; [empty] counts the subsets with no answer at all. Invariant:
   [empty + Σ_a by_value(a) = full n]. *)
type table = {
  n : int;
  empty : Tables.counts;
  by_value : Tables.counts QMap.t;
}

let neutral = { n = 0; empty = [| B.one |]; by_value = QMap.empty }

let pad_table p t =
  if p = 0 then t
  else
    { n = t.n + p;
      empty = Tables.pad p t.empty;
      by_value = QMap.map (Tables.pad p) t.by_value }

(* Bag-union of two independent sub-databases: the maximum of the union
   is [a] iff one side attains [a] and the other stays at most [a]
   (counting the empty side as "at most anything"). Sweeping values in
   ascending order maintains the ≤a / <a cumulative tables. *)
let combine_union t1 t2 =
  let values =
    QMap.fold (fun a _ acc -> QMap.add a () acc) t1.by_value QMap.empty
    |> QMap.fold (fun a _ acc -> QMap.add a () acc) t2.by_value
    |> QMap.bindings |> List.map fst
  in
  let lt1 = ref t1.empty and lt2 = ref t2.empty in
  let by_value =
    List.fold_left
      (fun acc a ->
        let p1 = Option.value (QMap.find_opt a t1.by_value) ~default:(Tables.zeros t1.n) in
        let p2 = Option.value (QMap.find_opt a t2.by_value) ~default:(Tables.zeros t2.n) in
        let le2 = Tables.add !lt2 p2 in
        let counts = Tables.add (Tables.convolve p1 le2) (Tables.convolve !lt1 p2) in
        lt1 := Tables.add !lt1 p1;
        lt2 := le2;
        if B.is_zero (Tables.total counts) then acc else QMap.add a counts acc)
      QMap.empty values
  in
  { n = t1.n + t2.n; empty = Tables.convolve t1.empty t2.empty; by_value }

(* Cross product with a τ-free side given by its nonempty counts. *)
let combine_cross t (n2, nonempty2) =
  let empty2 = Tables.sub (Tables.full n2) nonempty2 in
  let empty =
    Tables.sub
      (Tables.add (Tables.convolve t.empty (Tables.full n2))
         (Tables.convolve (Tables.full t.n) empty2))
      (Tables.convolve t.empty empty2)
  in
  { n = t.n + n2;
    empty;
    by_value = QMap.map (fun c -> Tables.convolve c nonempty2) t.by_value }

let table_of_values ~n ~empty values =
  { n;
    empty;
    by_value =
      List.fold_left
        (fun acc (a, c) ->
          QMap.update a (function None -> Some c | Some c' -> Some (Tables.add c' c)) acc)
        QMap.empty values }

(* [combine_union] drops all-zero rows, so equality must not distinguish
   an absent value from a value whose counts are all zero. *)
let table_equal t1 t2 =
  let nonzero m = QMap.filter (fun _ c -> not (B.is_zero (Tables.total c))) m in
  let counts_equal a b = Array.length a = Array.length b && Array.for_all2 B.equal a b in
  t1.n = t2.n
  && counts_equal t1.empty t2.empty
  && QMap.equal counts_equal (nonzero t1.by_value) (nonzero t2.by_value)

let ground_base tau (atom : Cq.atom) db =
  let fact =
    { Aggshap_relational.Fact.rel = atom.Cq.rel;
      args =
        Array.map
          (function
            | Cq.Const v -> v
            | Cq.Var x -> invalid_arg ("Minmax: ground base with variable " ^ x))
          atom.Cq.terms }
  in
  match Database.provenance db fact with
  | None -> { n = Database.endo_size db; empty = Tables.full (Database.endo_size db); by_value = QMap.empty }
  | Some p ->
    let v = Value_fn.apply tau fact.args in
    (match p with
     | Database.Exogenous -> { n = 0; empty = [| B.zero |]; by_value = QMap.singleton v [| B.one |] }
     | Database.Endogenous ->
       { n = 1; empty = [| B.one; B.zero |]; by_value = QMap.singleton v [| B.zero; B.one |] })

type memo = {
  self : table Memo.t;
  bool : Boolean_dp.memo;
}

let create_memo () = { self = Memo.create (); bool = Boolean_dp.create_memo () }

let memo_stats m =
  Memo.merge_stats (Memo.stats m.self) (Boolean_dp.memo_stats m.bool)

(* The Figure-2 template instantiated with (a,k)-tables, for sub-queries
   containing the τ-relation (Appendix C): root blocks combine by
   bag-union, τ-free components contribute only nonempty/empty counts
   (the Boolean engine provides them), and the τ-component recurses.
   The memo key does not mention τ, so a memo is only sound across
   calls sharing one value function — {!Batch} creates a fresh one per
   run. *)
module Alg = struct
  type nonrec table = table
  type ctx = { tau : Value_fn.t; bool : Boolean_dp.memo option }

  let memo_prefix _ = ""
  let leaf _ _ _ = None

  let connected_leaf ctx q db =
    if Decompose.is_ground q then begin
      match q.Cq.body with
      | [ atom ] -> Some (ground_base ctx.tau atom db)
      | _ -> invalid_arg "Minmax: ground component with several atoms"
    end
    else None

  let empty _ _ = invalid_arg "Minmax: τ-relation vanished from the query"
  let root_mode = `Any_root
  let root_error = "Minmax: query is not all-hierarchical: "

  let merge _ ~root:_ blocks =
    List.fold_left (fun acc (_, _, t) -> combine_union acc t) neutral blocks

  let combine ctx _q db comps =
    let rel = ctx.tau.Value_fn.rel in
    let with_r, without_r =
      List.partition (fun (c, _, _) -> List.mem rel (Cq.relations c)) comps
    in
    match with_r with
    | [ (_, _, table0) ] ->
      let t0 = table0 () in
      (match without_r with
       | [] -> t0
       | _ ->
         (* Folding [combine_cross] once per τ-free component re-maps
            the whole [by_value] table each time; convolving the
            components' satisfaction tables first (balanced) and
            crossing once is bit-identical — the cross product of
            independent fact sets is associative and the arithmetic is
            exact. *)
         let sats =
           List.map
             (fun (c, _, _) ->
               let db_c, _ = Database.restrict_relations (Cq.relations c) db in
               (Database.endo_size db_c, Boolean_dp.counts ?memo:ctx.bool c db_c))
             without_r
         in
         let n2 = List.fold_left (fun acc (n, _) -> acc + n) 0 sats in
         combine_cross t0 (n2, Tables.convolve_many (List.map snd sats)))
    | _ -> invalid_arg "Minmax: τ-relation must occur in exactly one component"

  let pad _ p t = pad_table p t
end

module E = Engine.Make (Alg)

let ctx_of ?memo tau = { Alg.tau; bool = Option.map (fun m -> m.bool) memo }

let valued_table ?memo tau q db =
  E.eval ?memo:(Option.map (fun m -> m.self) memo) (ctx_of ?memo tau) q db

let check (a : Agg_query.t) =
  if not (Hierarchy.is_all_hierarchical a.query) then
    invalid_arg ("Minmax: query is not all-hierarchical: " ^ Cq.to_string a.query)

let max_table ?memo (a : Agg_query.t) db =
  E.eval_top ?memo:(Option.map (fun m -> m.self) memo) (ctx_of ?memo a.tau) a.query db

let sum_of_table t = Tables.weighted_sum t.n (QMap.bindings t.by_value)

let max_sum_k ?memo a db = sum_of_table (max_table ?memo a db)

let negate_tau (a : Agg_query.t) =
  { a with
    alpha = Aggregate.Max;
    tau =
      Value_fn.custom ~rel:a.tau.Value_fn.rel
        ~descr:("neg(" ^ a.tau.Value_fn.descr ^ ")")
        (fun args -> Q.neg (Value_fn.apply a.tau args)) }

let sum_k_memo ?memo (a : Agg_query.t) db =
  check a;
  match a.alpha with
  | Aggregate.Max -> max_sum_k ?memo a db
  | Aggregate.Min -> Array.map Q.neg (max_sum_k ?memo (negate_tau a) db)
  | other ->
    invalid_arg ("Minmax: aggregate " ^ Aggregate.to_string other ^ " is not min/max")

let sum_k a db = sum_k_memo a db

let shapley ?memo a db f = Sumk.shapley_of (fun a db -> sum_k_memo ?memo a db) a db f

(* Batch path for Max. A fact only perturbs its own top-level hierarchy
   block, so the combined table of all the OTHER blocks is shared across
   the whole per-fact loop: two prefix/suffix sweeps precompute it for
   every block, and each fact then pays one [combine_union] instead of a
   full fold over the root partition. Exactness of the arithmetic (and
   commutativity/associativity of [combine_union]) makes the recombined
   table identical to the one the sequential path folds up. Facts outside
   every block (irrelevant or dropped by the partition) take the plain
   memoized path. The top-level split comes from {!Engine} — the engine
   owns the decomposition. *)
let max_batch_worker ?memo (a : Agg_query.t) db =
  let q = a.query and tau = a.tau in
  let plain f = Sumk.shapley_of (fun a db -> sum_k_memo ?memo a db) a db f in
  match Engine.connected_root q with
  | Some x ->
    let db_rel, pad0 = Decompose.relevant_part q db in
    let blocks, _dropped = Engine.root_partition q ~root:x db_rel in
    let blocks = Array.of_list blocks in
    let g = Array.length blocks in
    let table_of v block = valued_table ?memo tau (Cq.substitute q x v) block in
    let tables = Array.map (fun (v, block) -> table_of v block) blocks in
    let pre = Array.make (g + 1) neutral in
    for i = 0 to g - 1 do
      pre.(i + 1) <- combine_union pre.(i) tables.(i)
    done;
    let suf = Array.make (g + 1) neutral in
    for i = g - 1 downto 0 do
      suf.(i) <- combine_union tables.(i) suf.(i + 1)
    done;
    let siblings = Array.init g (fun i -> combine_union pre.(i) suf.(i + 1)) in
    let n = Database.endo_size db in
    (* The sum_k vector of a variant of [db] in which only block [i] (or
       its membership in the root partition) may have changed. *)
    let variant_vector db_rel' i =
      let v, _ = blocks.(i) in
      let blocks', dropped' = Engine.root_partition q ~root:x db_rel' in
      let t =
        match
          List.find_opt
            (fun (v', _) -> Aggshap_relational.Value.equal v v')
            blocks'
        with
        | Some (_, block') -> combine_union siblings.(i) (table_of v block')
        | None -> siblings.(i)
      in
      sum_of_table (pad_table (Database.endo_size dropped' + pad0) t)
    in
    fun f ->
      (match Database.provenance db f with
       | Some Database.Endogenous -> ()
       | _ -> invalid_arg "Sumk: fact must be endogenous");
      let idx = ref (-1) in
      Array.iteri
        (fun i (_, block) -> if !idx < 0 && Database.mem f block then idx := i)
        blocks;
      if !idx < 0 then plain f
      else begin
        let i = !idx in
        let with_f =
          variant_vector (Database.set_provenance Database.Exogenous f db_rel) i
        in
        let without_f = variant_vector (Database.remove f db_rel) i in
        Sumk.score_of_vectors ~players:n with_f without_f
      end
  | None -> plain

let batch_worker ?memo (a : Agg_query.t) db =
  check a;
  match a.alpha with
  | Aggregate.Max -> max_batch_worker ?memo a db
  | Aggregate.Min ->
    let worker = max_batch_worker ?memo (negate_tau a) db in
    fun f -> Q.neg (worker f)
  | other ->
    invalid_arg ("Minmax: aggregate " ^ Aggregate.to_string other ^ " is not min/max")

let shapley_all a db = Sumk.shapley_all_of sum_k a db
