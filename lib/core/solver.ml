module Q = Aggshap_arith.Rational
module Hierarchy = Aggshap_cq.Hierarchy
module Agg_query = Aggshap_agg.Agg_query
module Aggregate = Aggshap_agg.Aggregate
module Database = Aggshap_relational.Database
module Lineage = Aggshap_lineage.Lineage
module Ddnnf = Aggshap_lineage.Ddnnf

type outcome =
  | Exact of Q.t
  | Estimate of Monte_carlo.estimate

type report = {
  cls : Hierarchy.cls;
  frontier : Hierarchy.cls;
  within_frontier : bool;
  algorithm : string;
}

let frontier = Frontier.frontier
let within_frontier = Frontier.within

let frontier_algorithm (a : Agg_query.t) =
  match a.alpha with
  | Aggregate.Sum | Aggregate.Count -> fun a db f -> Sum_count.shapley a db f
  | Aggregate.Count_distinct -> fun a db f -> Cdist.shapley a db f
  | Aggregate.Min | Aggregate.Max -> fun a db f -> Minmax.shapley a db f
  | Aggregate.Avg | Aggregate.Median | Aggregate.Quantile _ ->
    fun a db f -> Avg_quantile.shapley a db f
  | Aggregate.Has_duplicates -> fun a db f -> Dup.shapley a db f

let make_report (a : Agg_query.t) algorithm =
  let cls = Hierarchy.classify a.query in
  let front = frontier a.alpha in
  { cls; frontier = front; within_frontier = Hierarchy.cls_leq cls front; algorithm }

(* All dispatch goes through the solve planner ({!Strategy}): it owns
   the route enumeration, the cost model, the algorithm names and the
   degradation ladder; this module only executes the routes. *)
let report ?fallback ?stats ?kc_node_budget (a : Agg_query.t) =
  let p = Strategy.plan ?stats ?kc_node_budget ?fallback a in
  make_report a p.Strategy.algorithm

let frontier_error (a : Agg_query.t) =
  invalid_arg
    (Printf.sprintf
       "Solver.shapley: %s is outside the tractability frontier (%s) of %s"
       (Aggshap_cq.Cq.to_string a.query)
       (Hierarchy.cls_to_string (frontier a.alpha))
       (Aggregate.to_string a.alpha))

(* Execute one rung for a single fact. *)
let run_route ?mc_seed ?kc_node_budget (a : Agg_query.t) db f = function
  | Strategy.Frontier_dp -> Exact ((frontier_algorithm a) a db f)
  | Strategy.Knowledge_compilation ->
    Exact (Lineage.shapley ?budget:kc_node_budget a db f)
  | Strategy.Naive -> Exact (Naive.shapley a db f)
  | Strategy.Monte_carlo samples ->
    Estimate (Monte_carlo.shapley ?seed:mc_seed ~samples a db f)
  | Strategy.Fail -> frontier_error a

(* Walk the plan's degradation ladder: a rung aborting on the d-DNNF
   node budget falls to the next one (the knowledge-compilation
   analogue of the Int_overflow abort-and-retry in Tables.convolve).
   The report names the rung that actually answered. *)
let run_ladder (p : Strategy.plan) a exec =
  let rec go aborted = function
    | [] -> frontier_error a
    | route :: rest -> (
      match exec route with
      | result ->
        let algorithm =
          if aborted then Strategy.degraded_name a route else p.Strategy.algorithm
        in
        (result, make_report a algorithm)
      | exception Ddnnf.Budget_exceeded -> go true rest)
  in
  go false p.Strategy.ladder

let shapley ?fallback ?mc_seed ?kc_node_budget (a : Agg_query.t) db f =
  let p =
    Strategy.plan ~stats:(Strategy.db_stats db) ?kc_node_budget ?fallback a
  in
  run_ladder p a (fun route -> run_route ?mc_seed ?kc_node_budget a db f route)

let banzhaf (a : Agg_query.t) db f =
  if within_frontier a.alpha a.query then begin
    match a.alpha with
    | Aggregate.Sum | Aggregate.Count ->
      Sum_count.score ~coefficients:Sumk.banzhaf_coefficients a db f
    | Aggregate.Count_distinct ->
      Cdist.score ~coefficients:Sumk.banzhaf_coefficients a db f
    | Aggregate.Min | Aggregate.Max -> Sumk.banzhaf_of Minmax.sum_k a db f
    | Aggregate.Avg | Aggregate.Median | Aggregate.Quantile _ ->
      Sumk.banzhaf_of Avg_quantile.sum_k a db f
    | Aggregate.Has_duplicates -> Sumk.banzhaf_of Dup.sum_k a db f
  end
  else begin
    let players, game = Naive.game a db in
    Game.banzhaf game (Naive.index_of players f)
  end

let shapley_exact a db f =
  match shapley ~fallback:`Naive a db f with
  | Exact v, _ -> v
  | Estimate _, _ -> assert false

(* Derive a distinct, deterministic Monte-Carlo seed for the [i]-th fact
   of a batch, so that seeded [mc:] runs are reproducible for every
   [jobs] setting (the pool preserves input order). *)
let per_fact_seed mc_seed i =
  Option.map (fun s -> s + ((i + 1) * 0x9e3779b9)) mc_seed

let shapley_all ?fallback ?mc_seed ?jobs ?(cache = true) ?kc_node_budget
    (a : Agg_query.t) db =
  let p =
    Strategy.plan ~stats:(Strategy.db_stats db) ?kc_node_budget ?fallback a
  in
  (* [`Fail] must raise before any worker domain is spawned: letting
     the pool fan out and every worker raise mid-batch reported the
     algorithm as "none" while workers died one by one. *)
  if p.Strategy.chosen = Strategy.Fail then frontier_error a;
  let run_batch = function
    | Strategy.Frontier_dp ->
      let results, _stats = Batch.shapley_all ?jobs ~cache a db in
      List.map (fun (f, v) -> (f, Exact v)) results
    | Strategy.Knowledge_compilation ->
      (* One extraction + one compilation serve every fact, so the
         batch runs in the calling domain instead of fanning out. *)
      List.map
        (fun (f, v) -> (f, Exact v))
        (Lineage.shapley_all ?budget:kc_node_budget a db)
    | Strategy.Fail -> frontier_error a
    | (Strategy.Naive | Strategy.Monte_carlo _) as route ->
      let indexed = List.mapi (fun i f -> (i, f)) (Database.endogenous db) in
      Batch.map ?jobs
        (fun (i, f) ->
          run_route ?mc_seed:(per_fact_seed mc_seed i) ?kc_node_budget a db f
            route)
        indexed
      |> List.map (fun ((_, f), o) -> (f, o))
  in
  run_ladder p a run_batch
