module Q = Aggshap_arith.Rational
module Hierarchy = Aggshap_cq.Hierarchy
module Agg_query = Aggshap_agg.Agg_query
module Aggregate = Aggshap_agg.Aggregate
module Database = Aggshap_relational.Database

type outcome =
  | Exact of Q.t
  | Estimate of Monte_carlo.estimate

type report = {
  cls : Hierarchy.cls;
  frontier : Hierarchy.cls;
  within_frontier : bool;
  algorithm : string;
}

let frontier = Frontier.frontier
let within_frontier = Frontier.within

let frontier_algorithm (a : Agg_query.t) =
  match a.alpha with
  | Aggregate.Sum | Aggregate.Count ->
    ("sum/count via linearity + Boolean DP", fun a db f -> Sum_count.shapley a db f)
  | Aggregate.Count_distinct ->
    ("count-distinct via per-value Boolean DP", fun a db f -> Cdist.shapley a db f)
  | Aggregate.Min | Aggregate.Max ->
    ("min/max (a,k)-table DP", fun a db f -> Minmax.shapley a db f)
  | Aggregate.Avg | Aggregate.Median | Aggregate.Quantile _ ->
    ("avg/quantile (a,k,l)-table DP", fun a db f -> Avg_quantile.shapley a db f)
  | Aggregate.Has_duplicates ->
    ("has-duplicates P0/P1 DP", fun a db f -> Dup.shapley a db f)

let make_report (a : Agg_query.t) algorithm =
  let cls = Hierarchy.classify a.query in
  let front = frontier a.alpha in
  { cls; frontier = front; within_frontier = Hierarchy.cls_leq cls front; algorithm }

module Lineage = Aggshap_lineage.Lineage

let fallback_name (a : Agg_query.t) = function
  | `Naive -> "naive enumeration (exponential)"
  | `Monte_carlo _ -> "Monte-Carlo permutation sampling"
  | `Knowledge_compilation ->
    if Lineage.supports a.alpha then
      "knowledge compilation (d-DNNF lineage, Shapley by weighted model counting)"
    else
      Printf.sprintf
        "naive enumeration (exponential; knowledge compilation does not cover %s)"
        (Aggregate.to_string a.alpha)
  | `Fail -> "none (outside the frontier, fallback disabled)"

(* The single source of algorithm names: [shapley], [shapley_all] and
   [shapctl explain] all describe the algorithm that would run through
   this report. *)
let report ?(fallback = `Naive) (a : Agg_query.t) =
  make_report a
    (if within_frontier a.alpha a.query then fst (frontier_algorithm a)
     else fallback_name a fallback)

let frontier_error (a : Agg_query.t) =
  invalid_arg
    (Printf.sprintf
       "Solver.shapley: %s is outside the tractability frontier (%s) of %s"
       (Aggshap_cq.Cq.to_string a.query)
       (Hierarchy.cls_to_string (frontier a.alpha))
       (Aggregate.to_string a.alpha))

let shapley ?(fallback = `Naive) ?mc_seed (a : Agg_query.t) db f =
  let rep = report ~fallback a in
  if rep.within_frontier then begin
    let _, solve = frontier_algorithm a in
    (Exact (solve a db f), rep)
  end
  else begin
    match fallback with
    | `Naive -> (Exact (Naive.shapley a db f), rep)
    | `Knowledge_compilation ->
      (* The lineage tier covers the event-decomposable aggregates;
         the rest keep the naive behaviour so the tier is total. *)
      if Lineage.supports a.alpha then (Exact (Lineage.shapley a db f), rep)
      else (Exact (Naive.shapley a db f), rep)
    | `Monte_carlo samples ->
      (Estimate (Monte_carlo.shapley ?seed:mc_seed ~samples a db f), rep)
    | `Fail -> frontier_error a
  end

let banzhaf (a : Agg_query.t) db f =
  if within_frontier a.alpha a.query then begin
    match a.alpha with
    | Aggregate.Sum | Aggregate.Count ->
      Sum_count.score ~coefficients:Sumk.banzhaf_coefficients a db f
    | Aggregate.Count_distinct ->
      Cdist.score ~coefficients:Sumk.banzhaf_coefficients a db f
    | Aggregate.Min | Aggregate.Max -> Sumk.banzhaf_of Minmax.sum_k a db f
    | Aggregate.Avg | Aggregate.Median | Aggregate.Quantile _ ->
      Sumk.banzhaf_of Avg_quantile.sum_k a db f
    | Aggregate.Has_duplicates -> Sumk.banzhaf_of Dup.sum_k a db f
  end
  else begin
    let players, game = Naive.game a db in
    Game.banzhaf game (Naive.index_of players f)
  end

let shapley_exact a db f =
  match shapley ~fallback:`Naive a db f with
  | Exact v, _ -> v
  | Estimate _, _ -> assert false

(* Derive a distinct, deterministic Monte-Carlo seed for the [i]-th fact
   of a batch, so that seeded [mc:] runs are reproducible for every
   [jobs] setting (the pool preserves input order). *)
let per_fact_seed mc_seed i =
  Option.map (fun s -> s + ((i + 1) * 0x9e3779b9)) mc_seed

let shapley_all ?(fallback = `Naive) ?mc_seed ?jobs ?(cache = true) (a : Agg_query.t) db =
  let rep = report ~fallback a in
  if rep.within_frontier then begin
    let results, _stats = Batch.shapley_all ?jobs ~cache a db in
    (List.map (fun (f, v) -> (f, Exact v)) results, rep)
  end
  else begin
    (* [`Fail] must raise before any worker domain is spawned: letting
       the pool fan out and every worker raise mid-batch reported the
       algorithm as "none" while workers died one by one. *)
    (match fallback with
     | `Fail -> frontier_error a
     | `Naive | `Monte_carlo _ | `Knowledge_compilation -> ());
    match fallback with
    | `Knowledge_compilation when Lineage.supports a.alpha ->
      (* One extraction + one compilation serve every fact, so the
         batch runs in the calling domain instead of fanning out. *)
      (List.map (fun (f, v) -> (f, Exact v)) (Lineage.shapley_all a db), rep)
    | _ ->
      let indexed = List.mapi (fun i f -> (i, f)) (Database.endogenous db) in
      let results =
        Batch.map ?jobs
          (fun (i, f) ->
            fst (shapley ~fallback ?mc_seed:(per_fact_seed mc_seed i) a db f))
          indexed
        |> List.map (fun ((_, f), o) -> (f, o))
      in
      (results, rep)
  end
