module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Decompose = Aggshap_cq.Decompose
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact

type t =
  | True
  | False
  | Lit of Fact.t
  | And of t list
  | Or of t list

(* Smart constructors keep the tree small. *)
let mk_and children =
  if List.mem False children then False
  else
    match List.filter (fun c -> c <> True) children with
    | [] -> True
    | [ c ] -> c
    | cs -> And cs

let mk_or children =
  if List.mem True children then True
  else
    match List.filter (fun c -> c <> False) children with
    | [] -> False
    | [ c ] -> c
    | cs -> Or cs

let ground q db =
  match q.Cq.body with
  | [ atom ] ->
    let fact =
      { Fact.rel = atom.Cq.rel;
        args =
          Array.map
            (function
              | Cq.Const v -> v
              | Cq.Var x -> invalid_arg ("Dtree.compile: ground atom with variable " ^ x))
            atom.Cq.terms }
    in
    (match Database.provenance db fact with
     | Some Database.Exogenous -> True
     | Some Database.Endogenous -> Lit fact
     | None -> False)
  | _ -> invalid_arg "Dtree.compile: ground component with several atoms"

(* The Figure-2 template instantiated with d-trees: components conjoin,
   root-variable blocks disjoin, ground atoms are leaves. No padding —
   facts outside the tree's scope are simply absent from it. *)
module Alg = struct
  type table = t
  type ctx = unit

  let memo_prefix () = ""
  let leaf () _ _ = None
  let connected_leaf () q db = if Decompose.is_ground q then Some (ground q db) else None
  let empty () _ = True
  let root_mode = `Any_root
  let root_error = "Dtree.compile: query is not hierarchical: "
  let merge () ~root:_ blocks = mk_or (List.map (fun (_, _, t) -> t) blocks)
  let combine () _ _ comps = mk_and (List.map (fun (_, _, table) -> table ()) comps)
  let pad () _ t = t
end

module E = Engine.Make (Alg)

let compile q db = E.eval_top () q db

module FactSet = Set.Make (Fact)

let rec fact_set = function
  | True | False -> FactSet.empty
  | Lit f -> FactSet.singleton f
  | And cs | Or cs ->
    List.fold_left (fun acc c -> FactSet.union acc (fact_set c)) FactSet.empty cs

let facts t = FactSet.elements (fact_set t)

let is_read_once t =
  let rec count = function
    | True | False -> 0
    | Lit _ -> 1
    | And cs | Or cs -> List.fold_left (fun acc c -> acc + count c) 0 cs
  in
  count t = FactSet.cardinal (fact_set t)

let rec eval t assignment =
  match t with
  | True -> true
  | False -> false
  | Lit f -> assignment f
  | And cs -> List.for_all (fun c -> eval c assignment) cs
  | Or cs -> List.exists (fun c -> eval c assignment) cs

let rec size = function
  | True | False | Lit _ -> 1
  | And cs | Or cs -> List.fold_left (fun acc c -> acc + size c) 1 cs

(* (scope size, satisfying counts) for each node; read-once-ness makes
   scopes disjoint, so conjunction convolves the true-tables and
   disjunction convolves the false-tables. *)
let rec counts_node = function
  | True -> (0, [| B.one |])
  | False -> (0, [| B.zero |])
  | Lit _ -> (1, [| B.zero; B.one |])
  | And cs ->
    let parts = List.map counts_node cs in
    let n = List.fold_left (fun acc (n_c, _) -> acc + n_c) 0 parts in
    (n, Tables.convolve_many (List.map snd parts))
  | Or cs ->
    let parts = List.map counts_node cs in
    let n = List.fold_left (fun acc (n_c, _) -> acc + n_c) 0 parts in
    let false_counts =
      Tables.convolve_many
        (List.map (fun (n_c, t_c) -> Tables.complement n_c t_c) parts)
    in
    (n, Tables.complement n false_counts)

let satisfying_counts t db =
  let n_scope, counts = counts_node t in
  let scope = fact_set t in
  let padding =
    Database.fold
      (fun f p acc ->
        if p = Database.Endogenous && not (FactSet.mem f scope) then acc + 1 else acc)
      db 0
  in
  ignore n_scope;
  Tables.pad padding counts

let shapley t db f =
  (match Database.provenance db f with
   | Some Database.Endogenous -> ()
   | _ -> invalid_arg "Dtree.shapley: fact must be endogenous");
  let n = Database.endo_size db in
  (* Making f exogenous turns its literal constant-true; removing it
     turns the literal constant-false. *)
  let rec replace value = function
    | Lit g when Fact.equal g f -> value
    | And cs -> And (List.map (replace value) cs)
    | Or cs -> Or (List.map (replace value) cs)
    | node -> node
  in
  let with_f = satisfying_counts (replace True t) (Database.set_provenance Database.Exogenous f db) in
  let without_f = satisfying_counts (replace False t) (Database.remove f db) in
  let acc = ref Q.zero in
  for k = 0 to n - 1 do
    let diff = Q.of_bigint (B.sub with_f.(k) without_f.(k)) in
    if not (Q.is_zero diff) then
      acc :=
        Q.add !acc
          (Q.mul (Aggshap_arith.Combinat.shapley_coefficient ~players:n ~before:k) diff)
  done;
  !acc

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "⊤"
  | False -> Format.pp_print_string fmt "⊥"
  | Lit f -> Fact.pp fmt f
  | And cs ->
    Format.fprintf fmt "(@[<hov>%a@])"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ⊗@ ") pp)
      cs
  | Or cs ->
    Format.fprintf fmt "(@[<hov>%a@])"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ⊕@ ") pp)
      cs
