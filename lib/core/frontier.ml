module Hierarchy = Aggshap_cq.Hierarchy
module Aggregate = Aggshap_agg.Aggregate

let frontier = function
  | Aggregate.Sum | Aggregate.Count -> Hierarchy.Exists_hierarchical
  | Aggregate.Min | Aggregate.Max | Aggregate.Count_distinct -> Hierarchy.All_hierarchical
  | Aggregate.Avg | Aggregate.Median | Aggregate.Quantile _ -> Hierarchy.Q_hierarchical
  | Aggregate.Has_duplicates -> Hierarchy.Sq_hierarchical

let within alpha q = Hierarchy.cls_leq (Hierarchy.classify q) (frontier alpha)
