module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Hierarchy = Aggshap_cq.Hierarchy
module Decompose = Aggshap_cq.Decompose
module Database = Aggshap_relational.Database
module Value = Aggshap_relational.Value
module QMap = Map.Make (Q)

type monoid = {
  op : Q.t -> Q.t -> Q.t;
  unit_ : Q.t;
  descr : string;
}

let plus = { op = Q.add; unit_ = Q.zero; descr = "sum" }

let max_monoid =
  (* The unit must be below every value that occurs; integer constants
     are far smaller than this sentinel. *)
  { op = Q.max; unit_ = Q.of_bigint (B.neg (B.pow (B.of_int 10) 30)); descr = "max" }

let tau m ~vars answer head =
  List.fold_left
    (fun acc v ->
      let idx =
        match List.find_index (String.equal v) head with
        | Some i -> i
        | None -> invalid_arg ("Minmax_monoid.tau: variable " ^ v ^ " not in the head")
      in
      match Value.as_int answer.(idx) with
      | Some n -> m.op acc (Q.of_int n)
      | None -> invalid_arg "Minmax_monoid.tau: non-numeric value")
    m.unit_ vars

(* Table: per subset-size counts keyed by the attainable maximum of the
   monoid over the tracked variables in scope; [empty] counts subsets
   with no answer at all. *)
type table = {
  n : int;
  empty : Tables.counts;
  by_value : Tables.counts QMap.t;
}

let neutral_union = { n = 0; empty = [| B.one |]; by_value = QMap.empty }
let neutral_cross m = { n = 0; empty = [| B.zero |]; by_value = QMap.singleton m.unit_ [| B.one |] }

let pad_table p t =
  if p = 0 then t
  else
    { n = t.n + p;
      empty = Tables.pad p t.empty;
      by_value = QMap.map (Tables.pad p) t.by_value }

let add_key v c map =
  QMap.update v (function None -> Some c | Some c' -> Some (Tables.add c' c)) map

(* Bag-union across root blocks: the maximum of the union is the larger
   of the two sides' maxima (empty counting as bottom). *)
let combine_union t1 t2 =
  let values =
    QMap.fold (fun a _ acc -> QMap.add a () acc) t1.by_value QMap.empty
    |> QMap.fold (fun a _ acc -> QMap.add a () acc) t2.by_value
    |> QMap.bindings |> List.map fst
  in
  let lt1 = ref t1.empty and lt2 = ref t2.empty in
  let by_value =
    List.fold_left
      (fun acc a ->
        let p1 = Option.value (QMap.find_opt a t1.by_value) ~default:(Tables.zeros t1.n) in
        let p2 = Option.value (QMap.find_opt a t2.by_value) ~default:(Tables.zeros t2.n) in
        let le2 = Tables.add !lt2 p2 in
        let counts = Tables.add (Tables.convolve p1 le2) (Tables.convolve !lt1 p2) in
        lt1 := Tables.add !lt1 p1;
        lt2 := le2;
        if B.is_zero (Tables.total counts) then acc else add_key a counts acc)
      QMap.empty values
  in
  { n = t1.n + t2.n; empty = Tables.convolve t1.empty t2.empty; by_value }

(* Cross product: a subset of the product has answers iff both sides do,
   and by monotonicity the maximal composed value is the composition of
   the sides' maxima. *)
let combine_cross m t1 t2 =
  let by_value =
    QMap.fold
      (fun v1 c1 acc ->
        QMap.fold
          (fun v2 c2 acc ->
            let c = Tables.convolve c1 c2 in
            if B.is_zero (Tables.total c) then acc else add_key (m.op v1 v2) c acc)
          t2.by_value acc)
      t1.by_value QMap.empty
  in
  let nonempty1 = Tables.sub (Tables.full t1.n) t1.empty in
  let nonempty2 = Tables.sub (Tables.full t2.n) t2.empty in
  let empty =
    Tables.sub (Tables.full (t1.n + t2.n)) (Tables.convolve nonempty1 nonempty2)
  in
  { n = t1.n + t2.n; empty; by_value }

(* Lift a sub-table after substituting a tracked root variable by [a]:
   every attainable maximum composes with a's value. *)
let lift m a t =
  { t with
    by_value =
      QMap.fold (fun v c acc -> add_key (m.op a v) c acc) t.by_value QMap.empty }

let ground m q db =
  match q.Cq.body with
  | [ atom ] ->
    let fact =
      { Aggshap_relational.Fact.rel = atom.Cq.rel;
        args =
          Array.map
            (function
              | Cq.Const v -> v
              | Cq.Var x -> invalid_arg ("Minmax_monoid: ground atom with variable " ^ x))
            atom.Cq.terms }
    in
    (* The key contribution of a fully-substituted component is the
       monoid unit; tracked values were composed in by [lift]. *)
    (match Database.provenance db fact with
     | Some Database.Exogenous ->
       { n = 0; empty = [| B.zero |]; by_value = QMap.singleton m.unit_ [| B.one |] }
     | Some Database.Endogenous ->
       { n = 1; empty = [| B.one; B.zero |]; by_value = QMap.singleton m.unit_ [| B.zero; B.one |] }
     | None -> { n = 0; empty = [| B.one |]; by_value = QMap.empty })
  | _ -> invalid_arg "Minmax_monoid: ground component with several atoms"

(* The Figure-2 template instantiated with monoid-valued tables. Root
   blocks combine by bag-union, with the root value composed in by
   [lift] when the root is tracked; components combine by monotone
   cross product. *)
module Alg = struct
  type nonrec table = table
  type ctx = { m : monoid; tracked : string list }

  let memo_prefix _ = ""
  let leaf _ _ _ = None

  let connected_leaf ctx q db =
    if Decompose.is_ground q then Some (ground ctx.m q db) else None

  let empty ctx _ = neutral_cross ctx.m
  let root_mode = `Any_root
  let root_error = "Minmax_monoid: query is not all-hierarchical: "

  let merge ctx ~root blocks =
    let is_tracked = List.mem root ctx.tracked in
    List.fold_left
      (fun acc (a, _, sub) ->
        let sub =
          if is_tracked then begin
            match Value.as_int a with
            | Some n -> lift ctx.m (Q.of_int n) sub
            | None -> invalid_arg "Minmax_monoid: tracked variable over non-numeric value"
          end
          else sub
        in
        combine_union acc sub)
      neutral_union blocks

  let combine ctx _ _ comps =
    List.fold_left
      (fun acc (_, _, table) -> combine_cross ctx.m acc (table ()))
      (neutral_cross ctx.m) comps

  let pad _ p t = pad_table p t
end

module E = Engine.Make (Alg)

let table m tracked q db = E.eval { Alg.m; tracked } q db

let check m ~vars q =
  if not (Hierarchy.is_all_hierarchical q) then
    invalid_arg ("Minmax_monoid: query is not all-hierarchical: " ^ Cq.to_string q);
  List.iter
    (fun v ->
      if not (Cq.is_free q v) then
        invalid_arg ("Minmax_monoid: tracked variable " ^ v ^ " is not free"))
    vars;
  ignore m

let sum_k m ~vars q db =
  check m ~vars q;
  let db_rel, pad = Decompose.relevant_part q db in
  let t = pad_table pad (table m vars q db_rel) in
  Tables.weighted_sum t.n (QMap.bindings t.by_value)

let shapley m ~vars q db f = Sumk.shapley_of_db_fn (sum_k m ~vars q) db f
