module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module C = Aggshap_arith.Combinat
module N = Aggshap_arith.Ntt

type counts = B.t array

type stats = {
  convolve : int;
  convolve_small : int;
  convolve_ntt : int;
  convolve_rat : int;
  tree_folds : int;
  weighted_sums : int;
}

(* Atomic counters, same contract as [Bigint.stats]: exact under
   concurrent domains. *)
let c_convolve = Atomic.make 0
let c_convolve_small = Atomic.make 0
let c_convolve_ntt = Atomic.make 0
let c_convolve_rat = Atomic.make 0
let c_tree_folds = Atomic.make 0
let c_weighted_sums = Atomic.make 0

let stats () =
  { convolve = Atomic.get c_convolve;
    convolve_small = Atomic.get c_convolve_small;
    convolve_ntt = Atomic.get c_convolve_ntt;
    convolve_rat = Atomic.get c_convolve_rat;
    tree_folds = Atomic.get c_tree_folds;
    weighted_sums = Atomic.get c_weighted_sums }

let reset_stats () =
  Atomic.set c_convolve 0;
  Atomic.set c_convolve_small 0;
  Atomic.set c_convolve_ntt 0;
  Atomic.set c_convolve_rat 0;
  Atomic.set c_tree_folds 0;
  Atomic.set c_weighted_sums 0

let zeros n = Array.make (n + 1) B.zero

let delta n k0 =
  let c = zeros n in
  c.(k0) <- B.one;
  c

(* Copied, not aliased: counts arrays are treated as immutable
   everywhere, but the Pascal row is the combinatorics memo's own
   storage and must not be reachable from a caller. *)
let full n = Array.copy (C.binomial_row n)

let check_same_length a b =
  if Array.length a <> Array.length b then
    invalid_arg "Tables: length mismatch"

let add a b =
  check_same_length a b;
  Array.map2 B.add a b

let sub a b =
  check_same_length a b;
  Array.map2 B.sub a b

let complement n c = sub (full n) c

type fault =
  [ `None
  | `Convolve_off_by_one
  | `Tree_fold_skew
  | `Karatsuba_split
  | `Stale_block
  | `Block_drop
  | `Ntt_prime_drop
  | `Stale_index
  | `Ddnnf_cache_poison
  | `Kc_budget_leak ]

let fault : fault ref = ref `None

(* [`Karatsuba_split] and [`Ntt_prime_drop] live in the arithmetic
   layer (the first must corrupt the multiplications of every caller,
   the second the CRT reconstruction inside [Ntt]), [`Stale_index]
   in the relational storage layer (index maintenance skipped on
   updates), and [`Ddnnf_cache_poison] / [`Kc_budget_leak] in the
   knowledge-compilation tier's circuit compiler, so the setter keeps
   [Bigint.fault], [Ntt.fault], [Database.fault] and [Ddnnf.fault] in
   sync. *)
let set_fault f =
  fault := f;
  B.fault := (match f with `Karatsuba_split -> `Karatsuba_split | _ -> `None);
  N.fault := (match f with `Ntt_prime_drop -> `Prime_drop | _ -> `None);
  Aggshap_relational.Database.fault :=
    (match f with `Stale_index -> `Stale_index | _ -> `None);
  Aggshap_lineage.Ddnnf.fault :=
    (match f with
    | `Ddnnf_cache_poison -> `Cache_poison
    | `Kc_budget_leak -> `Budget_leak
    | _ -> `None)

let current_fault () = !fault

(* Below this length (of the shorter operand) a convolution entry only
   accumulates a handful of terms: the zero-skipping scatter loop beats
   the multiply-accumulate form, whose per-entry clear/extract overhead
   then dominates. The DPs produce both shapes in bulk — long-by-tiny
   sparse products (hierarchy blocks folded one value at a time) and
   dense square ones (combining whole sub-instance tables). *)
let acc_threshold = 8

(* Minimum length (of the shorter operand) before the RNS/NTT tier is
   even considered; below it the transform's fixed costs (prime basis,
   residue images, CRT tables) cannot win. Exposed for tests and for
   the bench harness to disable the tier ([:= max_int]) when measuring
   the classic paths; [0] forces the tier on every eligible call (cost
   model bypassed — the differential fuzz campaigns use this to drive
   fuzz-sized tables through the transform). *)
let ntt_threshold = ref 24

let count_nonzero a =
  let c = ref 0 in
  Array.iter (fun x -> if not (B.is_zero x) then incr c) a;
  !c

(* Cost model for the third tier, in rough limb-multiplication units:
   the classic paths pay one limb-level schoolbook product per live
   term pair, the NTT pays 3 transforms + pointwise products per
   prime, a Horner residue fold per input entry, and an O(np^2) Garner
   reconstruction per output entry. Modular word operations carry a
   fudge factor (a 62-bit [mod] costs several limb multiply-adds);
   calibrated against the E18 crossover sweep, where the earlier 6/2
   weights proved optimistic on the mid-sized dense tables (the NTT arm
   dipped below the classic one around 130 players). The model's
   [classic] estimate prices the schoolbook bigint path — when every
   product fits the small-int tier the real fallback is an order of
   magnitude cheaper than that estimate, so such calls never take the
   transform. *)
let ntt_profitable ~la ~lb ~nza ~nzb ~ba ~bb =
  let n = la + lb - 1 in
  let lmin = Stdlib.min la lb in
  let out_bits = ba + bb + N.ceil_log2 lmin in
  if out_bits <= 62 then false (* the small-int tier wins outright *)
  else begin
    let np = (out_bits / 30) + 1 in
    let logm = N.ceil_log2 n in
    let m = 1 lsl logm in
    let lim_a = (ba + 29) / 30 and lim_b = (bb + 29) / 30 in
    let classic = nza * nzb * lim_a * lim_b in
    let ntt_cost =
      (np * m * logm * 7) + (n * np * np * 3) + ((la + lb) * np * (lim_a + lim_b))
    in
    ntt_cost < classic
  end

(* Second tier: when every entry of both tables is in the small-int
   representation, the whole convolution runs in the int domain — two
   flat [int array]s, native products and sums, no constructor
   dispatch, no per-term [Bigint] calls. Every product and partial sum
   is overflow-checked with the same tests [Bigint.mul]/[add] use; any
   overflow aborts to the generic paths, which recompute from scratch
   (rare: one table entry past 62 bits sends the whole convolution to
   the classic tier, and the aborted int work is at most one pass).
   Inputs hold no [min_int] (excluded from the small representation),
   so [abs] and the division check below are exact. *)
exception Int_overflow

let small_values a =
  Array.map
    (fun x -> if B.is_small x then B.small_value x else raise_notrace Int_overflow)
    a

let small_convolve ai bi n =
  let la = Array.length ai and lb = Array.length bi in
  let out = Array.make n 0 in
  for i = 0 to la - 1 do
    let x = ai.(i) in
    if x <> 0 then
      for j = 0 to lb - 1 do
        let y = bi.(j) in
        if y <> 0 then begin
          let p =
            if abs x < 0x40000000 && abs y < 0x40000000 then x * y
            else
              let p = x * y in
              if p = min_int || p / y <> x then raise_notrace Int_overflow else p
          in
          let k = i + j in
          let o = out.(k) in
          let s = o + p in
          if (o >= 0) = (p >= 0) && (s >= 0) <> (p >= 0) then
            raise_notrace Int_overflow;
          out.(k) <- s
        end
      done
  done;
  out

let convolve a b =
  Atomic.incr c_convolve;
  let la = Array.length a and lb = Array.length b in
  let n = la + lb - 1 in
  let lmin = Stdlib.min la lb in
  (* Tier dispatch. The RNS/NTT tier is tried first when the shapes
     can pay for the transforms (or unconditionally under the
     [`Ntt_prime_drop] fault, so the differential oracle exercises the
     faulty reconstruction on fuzz-sized tables); [Ntt.convolve]
     returning [None] (tiny output, exhausted prime supply) falls back
     to the classic paths. *)
  let forced =
    ((match !fault with `Ntt_prime_drop -> true | _ -> false) || !ntt_threshold = 0)
    && lmin >= 1 && n >= 2
  in
  let via_ntt =
    if forced then N.convolve a b
    else if lmin >= !ntt_threshold then begin
      let nza = count_nonzero a and nzb = count_nonzero b in
      let ba = N.max_bits a and bb = N.max_bits b in
      if ba = 0 || bb = 0 then N.convolve a b (* all-zero: O(n) short-circuit *)
      else if ntt_profitable ~la ~lb ~nza ~nzb ~ba ~bb then N.convolve a b
      else None
    end
    else None
  in
  let via_small =
    match via_ntt with
    | Some _ -> None
    | None -> (
      match small_convolve (small_values a) (small_values b) n with
      | ints ->
        Atomic.incr c_convolve_small;
        Some (Array.map B.of_int ints)
      | exception Int_overflow -> None)
  in
  let out =
    match via_ntt with
    | Some out ->
      Atomic.incr c_convolve_ntt;
      out
    | None ->
    match via_small with
    | Some out -> out
    | None ->
      let out = Array.make n B.zero in
      (* Shape dispatch: the multiply-accumulate path amortizes only when
         most term products are live. Thin operands and sparse tables (the
         per-key tables of the keyed DPs are mostly zeros) go through the
         zero-skipping scatter loop instead; the density scan is O(la+lb)
         against the O(la*lb) convolution itself. *)
      let dense =
        lmin >= acc_threshold
        && 2 * count_nonzero a * count_nonzero b >= la * lb
      in
      if not dense then
        (* Scatter with zero skipping: sparse or thin operands. *)
        for i = 0 to la - 1 do
          if not (B.is_zero a.(i)) then
            for j = 0 to lb - 1 do
              if not (B.is_zero b.(j)) then
                out.(i + j) <- B.add out.(i + j) (B.mul a.(i) b.(j))
            done
        done
      else begin
        (* Dense path: one multiply-accumulate buffer reused across output
           entries — no intermediate product or partial-sum bignum is
           allocated per term. *)
        let acc = B.Acc.create () in
        for k = 0 to la + lb - 2 do
          B.Acc.clear acc;
          let i0 = Stdlib.max 0 (k - lb + 1) and i1 = Stdlib.min (la - 1) k in
          for i = i0 to i1 do
            B.Acc.add_mul acc a.(i) b.(k - i)
          done;
          out.(k) <- B.Acc.value acc
        done
      end;
      out
  in
  (match !fault with
   | `Convolve_off_by_one ->
     if la > 1 && lb > 1 then
       out.(Array.length out - 1) <- B.add out.(Array.length out - 1) B.one
   | `None | `Tree_fold_skew | `Karatsuba_split | `Stale_block | `Block_drop
   | `Ntt_prime_drop | `Stale_index | `Ddnnf_cache_poison
   | `Kc_budget_leak -> ());
  out

let convolve_many ts =
  match ts with
  | [] -> [| B.one |]
  | [ t ] -> t
  | ts ->
    Atomic.incr c_tree_folds;
    (* Balanced pairwise reduction: adjacent tables are convolved level
       by level, so each input table participates in O(log n) products
       of comparable size instead of being re-traversed by an
       ever-growing left-fold accumulator. Order-preserving, and
       bit-identical to the fold because bignum arithmetic is exact. *)
    let arr = ref (Array.of_list ts) in
    let input_count = Array.length !arr in
    while Array.length !arr > 1 do
      let n = Array.length !arr in
      let half = n / 2 in
      let next = Array.make ((n + 1) / 2) [||] in
      for i = 0 to half - 1 do
        next.(i) <- convolve !arr.(2 * i) !arr.((2 * i) + 1)
      done;
      if n land 1 = 1 then next.(half) <- !arr.(n - 1);
      arr := next
    done;
    let out = !arr.(0) in
    (match !fault with
     | `Tree_fold_skew ->
       (* Simulated mis-pairing of siblings in the reduction tree: the
          top two subset sizes of the merged table trade places. Only
          fires when the tree actually has internal structure. *)
       let len = Array.length out in
       if input_count >= 3 && len >= 2 then begin
         let t = out.(len - 1) in
         out.(len - 1) <- out.(len - 2);
         out.(len - 2) <- t
       end
     | `None | `Convolve_off_by_one | `Karatsuba_split | `Stale_block | `Block_drop
     | `Ntt_prime_drop | `Stale_index | `Ddnnf_cache_poison
     | `Kc_budget_leak -> ());
    out

let pad p c = if p = 0 then c else convolve c (full p)

let total c = Array.fold_left B.add B.zero c

let to_rationals c = Array.map Q.of_bigint c

let scale_to r c = Array.map (fun x -> Q.mul r (Q.of_bigint x)) c

let add_rat a b =
  if Array.length a <> Array.length b then invalid_arg "Tables.add_rat: length mismatch";
  Array.map2 Q.add a b

let zeros_rat n = Array.make (n + 1) Q.zero

(* Least common multiple of the denominators, with a fast path for the
   (dominant) case where a denominator already divides the running
   lcm. *)
let den_lcm acc q =
  let d = Q.den q in
  if B.is_one d || B.equal d acc then acc else B.lcm acc d

let convolve_rat a b =
  Atomic.incr c_convolve_rat;
  (* Common-denominator form: lift both operands to integer arrays over
     one denominator each, convolve exactly as integers, and normalize
     once per entry at the end — instead of one gcd per term inside
     [Q.add]/[Q.mul]. *)
  let da = Array.fold_left den_lcm B.one a in
  let db = Array.fold_left den_lcm B.one b in
  let lift d q =
    if Q.is_zero q then B.zero
    else B.mul (Q.num q) (B.div d (Q.den q))
  in
  let na = Array.map (lift da) a and nb = Array.map (lift db) b in
  let out = convolve na nb in
  let d = B.mul da db in
  Array.map (fun x -> Q.make x d) out

let pad_rat p c =
  if p = 0 then c
  else convolve_rat c (Array.map Q.of_bigint (full p))

let weighted_sum n pairs =
  Atomic.incr c_weighted_sums;
  (* Σ_i w_i * c_i over the lcm of the weights' denominators: all-integer
     accumulation, one gcd per subset size at the very end. *)
  let d = List.fold_left (fun acc (w, _) -> den_lcm acc w) B.one pairs in
  let accs = Array.init (n + 1) (fun _ -> B.Acc.create ()) in
  List.iter
    (fun (w, c) ->
      if Array.length c <> n + 1 then invalid_arg "Tables.weighted_sum: length mismatch";
      if not (Q.is_zero w) then begin
        let scaled = B.mul (Q.num w) (B.div d (Q.den w)) in
        Array.iteri (fun k x -> B.Acc.add_mul accs.(k) scaled x) c
      end)
    pairs;
  Array.map (fun acc -> Q.make (B.Acc.value acc) d) accs
