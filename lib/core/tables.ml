module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module C = Aggshap_arith.Combinat

type counts = B.t array

type stats = {
  convolve : int;
  convolve_rat : int;
  tree_folds : int;
  weighted_sums : int;
}

(* Plain mutable counters, same caveat as [Bigint.stats]: approximate
   under concurrent domains. *)
let c_convolve = ref 0
let c_convolve_rat = ref 0
let c_tree_folds = ref 0
let c_weighted_sums = ref 0

let stats () =
  { convolve = !c_convolve;
    convolve_rat = !c_convolve_rat;
    tree_folds = !c_tree_folds;
    weighted_sums = !c_weighted_sums }

let reset_stats () =
  c_convolve := 0;
  c_convolve_rat := 0;
  c_tree_folds := 0;
  c_weighted_sums := 0

let zeros n = Array.make (n + 1) B.zero

let delta n k0 =
  let c = zeros n in
  c.(k0) <- B.one;
  c

let full n = Array.init (n + 1) (fun k -> C.binomial n k)

let check_same_length a b =
  if Array.length a <> Array.length b then
    invalid_arg "Tables: length mismatch"

let add a b =
  check_same_length a b;
  Array.map2 B.add a b

let sub a b =
  check_same_length a b;
  Array.map2 B.sub a b

let complement n c = sub (full n) c

type fault =
  [ `None
  | `Convolve_off_by_one
  | `Tree_fold_skew
  | `Karatsuba_split
  | `Stale_block
  | `Block_drop ]

let fault : fault ref = ref `None

(* [`Karatsuba_split] lives in the arithmetic layer (it must corrupt
   the multiplications of every caller, not just convolutions), so the
   setter keeps [Bigint.fault] in sync. *)
let set_fault f =
  fault := f;
  B.fault := (match f with `Karatsuba_split -> `Karatsuba_split | _ -> `None)

let current_fault () = !fault

(* Below this length (of the shorter operand) a convolution entry only
   accumulates a handful of terms: the zero-skipping scatter loop beats
   the multiply-accumulate form, whose per-entry clear/extract overhead
   then dominates. The DPs produce both shapes in bulk — long-by-tiny
   sparse products (hierarchy blocks folded one value at a time) and
   dense square ones (combining whole sub-instance tables). *)
let acc_threshold = 8

let count_nonzero a =
  let c = ref 0 in
  Array.iter (fun x -> if not (B.is_zero x) then incr c) a;
  !c

let convolve a b =
  incr c_convolve;
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb - 1) B.zero in
  (* Shape dispatch: the multiply-accumulate path amortizes only when
     most term products are live. Thin operands and sparse tables (the
     per-key tables of the keyed DPs are mostly zeros) go through the
     zero-skipping scatter loop instead; the density scan is O(la+lb)
     against the O(la*lb) convolution itself. *)
  let dense =
    Stdlib.min la lb >= acc_threshold
    && 2 * count_nonzero a * count_nonzero b >= la * lb
  in
  if not dense then
    (* Scatter with zero skipping: sparse or thin operands. *)
    for i = 0 to la - 1 do
      if not (B.is_zero a.(i)) then
        for j = 0 to lb - 1 do
          if not (B.is_zero b.(j)) then
            out.(i + j) <- B.add out.(i + j) (B.mul a.(i) b.(j))
        done
    done
  else begin
    (* Dense path: one multiply-accumulate buffer reused across output
       entries — no intermediate product or partial-sum bignum is
       allocated per term. *)
    let acc = B.Acc.create () in
    for k = 0 to la + lb - 2 do
      B.Acc.clear acc;
      let i0 = Stdlib.max 0 (k - lb + 1) and i1 = Stdlib.min (la - 1) k in
      for i = i0 to i1 do
        B.Acc.add_mul acc a.(i) b.(k - i)
      done;
      out.(k) <- B.Acc.value acc
    done
  end;
  (match !fault with
   | `Convolve_off_by_one ->
     if la > 1 && lb > 1 then
       out.(Array.length out - 1) <- B.add out.(Array.length out - 1) B.one
   | `None | `Tree_fold_skew | `Karatsuba_split | `Stale_block | `Block_drop -> ());
  out

let convolve_many ts =
  match ts with
  | [] -> [| B.one |]
  | [ t ] -> t
  | ts ->
    incr c_tree_folds;
    (* Balanced pairwise reduction: adjacent tables are convolved level
       by level, so each input table participates in O(log n) products
       of comparable size instead of being re-traversed by an
       ever-growing left-fold accumulator. Order-preserving, and
       bit-identical to the fold because bignum arithmetic is exact. *)
    let arr = ref (Array.of_list ts) in
    let input_count = Array.length !arr in
    while Array.length !arr > 1 do
      let n = Array.length !arr in
      let half = n / 2 in
      let next = Array.make ((n + 1) / 2) [||] in
      for i = 0 to half - 1 do
        next.(i) <- convolve !arr.(2 * i) !arr.((2 * i) + 1)
      done;
      if n land 1 = 1 then next.(half) <- !arr.(n - 1);
      arr := next
    done;
    let out = !arr.(0) in
    (match !fault with
     | `Tree_fold_skew ->
       (* Simulated mis-pairing of siblings in the reduction tree: the
          top two subset sizes of the merged table trade places. Only
          fires when the tree actually has internal structure. *)
       let len = Array.length out in
       if input_count >= 3 && len >= 2 then begin
         let t = out.(len - 1) in
         out.(len - 1) <- out.(len - 2);
         out.(len - 2) <- t
       end
     | `None | `Convolve_off_by_one | `Karatsuba_split | `Stale_block | `Block_drop -> ());
    out

let pad p c = if p = 0 then c else convolve c (full p)

let total c = Array.fold_left B.add B.zero c

let to_rationals c = Array.map Q.of_bigint c

let scale_to r c = Array.map (fun x -> Q.mul r (Q.of_bigint x)) c

let add_rat a b =
  if Array.length a <> Array.length b then invalid_arg "Tables.add_rat: length mismatch";
  Array.map2 Q.add a b

let zeros_rat n = Array.make (n + 1) Q.zero

(* Least common multiple of the denominators, with a fast path for the
   (dominant) case where a denominator already divides the running
   lcm. *)
let den_lcm acc q =
  let d = Q.den q in
  if B.is_one d || B.equal d acc then acc else B.lcm acc d

let convolve_rat a b =
  incr c_convolve_rat;
  (* Common-denominator form: lift both operands to integer arrays over
     one denominator each, convolve exactly as integers, and normalize
     once per entry at the end — instead of one gcd per term inside
     [Q.add]/[Q.mul]. *)
  let da = Array.fold_left den_lcm B.one a in
  let db = Array.fold_left den_lcm B.one b in
  let lift d q =
    if Q.is_zero q then B.zero
    else B.mul (Q.num q) (B.div d (Q.den q))
  in
  let na = Array.map (lift da) a and nb = Array.map (lift db) b in
  let out = convolve na nb in
  let d = B.mul da db in
  Array.map (fun x -> Q.make x d) out

let pad_rat p c =
  if p = 0 then c
  else convolve_rat c (Array.map Q.of_bigint (full p))

let weighted_sum n pairs =
  incr c_weighted_sums;
  (* Σ_i w_i * c_i over the lcm of the weights' denominators: all-integer
     accumulation, one gcd per subset size at the very end. *)
  let d = List.fold_left (fun acc (w, _) -> den_lcm acc w) B.one pairs in
  let accs = Array.init (n + 1) (fun _ -> B.Acc.create ()) in
  List.iter
    (fun (w, c) ->
      if Array.length c <> n + 1 then invalid_arg "Tables.weighted_sum: length mismatch";
      if not (Q.is_zero w) then begin
        let scaled = B.mul (Q.num w) (B.div d (Q.den w)) in
        Array.iteri (fun k x -> B.Acc.add_mul accs.(k) scaled x) c
      end)
    pairs;
  Array.map (fun acc -> Q.make (B.Acc.value acc) d) accs
