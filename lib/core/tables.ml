module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module C = Aggshap_arith.Combinat

type counts = B.t array

let zeros n = Array.make (n + 1) B.zero

let delta n k0 =
  let c = zeros n in
  c.(k0) <- B.one;
  c

let full n = Array.init (n + 1) (fun k -> C.binomial n k)

let check_same_length a b =
  if Array.length a <> Array.length b then
    invalid_arg "Tables: length mismatch"

let add a b =
  check_same_length a b;
  Array.map2 B.add a b

let sub a b =
  check_same_length a b;
  Array.map2 B.sub a b

let complement n c = sub (full n) c

let fault : [ `None | `Convolve_off_by_one ] ref = ref `None

let convolve a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb - 1) B.zero in
  for i = 0 to la - 1 do
    if not (B.is_zero a.(i)) then
      for j = 0 to lb - 1 do
        if not (B.is_zero b.(j)) then
          out.(i + j) <- B.add out.(i + j) (B.mul a.(i) b.(j))
      done
  done;
  (match !fault with
   | `None -> ()
   | `Convolve_off_by_one ->
     if la > 1 && lb > 1 then
       out.(Array.length out - 1) <- B.add out.(Array.length out - 1) B.one);
  out

let pad p c = if p = 0 then c else convolve c (full p)

let total c = Array.fold_left B.add B.zero c

let to_rationals c = Array.map Q.of_bigint c

let scale_to r c = Array.map (fun x -> Q.mul r (Q.of_bigint x)) c

let add_rat a b =
  if Array.length a <> Array.length b then invalid_arg "Tables.add_rat: length mismatch";
  Array.map2 Q.add a b

let zeros_rat n = Array.make (n + 1) Q.zero

let convolve_rat a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb - 1) Q.zero in
  for i = 0 to la - 1 do
    if not (Q.is_zero a.(i)) then
      for j = 0 to lb - 1 do
        if not (Q.is_zero b.(j)) then
          out.(i + j) <- Q.add out.(i + j) (Q.mul a.(i) b.(j))
      done
  done;
  out

let pad_rat p c =
  if p = 0 then c
  else convolve_rat c (Array.map Q.of_bigint (full p))
