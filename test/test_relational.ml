(* Tests for values, facts and databases with provenance. *)

module Value = Aggshap_relational.Value
module Fact = Aggshap_relational.Fact
module Database = Aggshap_relational.Database

let f_r12 = Fact.of_ints "R" [ 1; 2 ]
let f_r13 = Fact.of_ints "R" [ 1; 3 ]
let f_s1 = Fact.of_ints "S" [ 1 ]
let f_mixed = Fact.make "T" [ Value.Int 1; Value.Str "alice" ]

let test_values () =
  Alcotest.(check bool) "int equal" true (Value.equal (Value.Int 3) (Value.Int 3));
  Alcotest.(check bool) "int/str differ" false (Value.equal (Value.Int 3) (Value.Str "3"));
  Alcotest.(check string) "to_string int" "-7" (Value.to_string (Value.Int (-7)));
  Alcotest.(check string) "to_string str" "bob" (Value.to_string (Value.Str "bob"));
  Alcotest.(check bool) "of_string int" true (Value.of_string "42" = Value.Int 42);
  Alcotest.(check bool) "of_string str" true (Value.of_string "x42" = Value.Str "x42");
  Alcotest.(check (option int)) "as_int" (Some 5) (Value.as_int (Value.Int 5));
  Alcotest.(check (option int)) "as_int str" None (Value.as_int (Value.Str "5"))

let test_facts () =
  Alcotest.(check string) "to_string" "R(1, 2)" (Fact.to_string f_r12);
  Alcotest.(check string) "mixed" "T(1, alice)" (Fact.to_string f_mixed);
  Alcotest.(check int) "arity" 2 (Fact.arity f_r12);
  Alcotest.(check bool) "equal" true (Fact.equal f_r12 (Fact.of_ints "R" [ 1; 2 ]));
  Alcotest.(check bool) "differ by args" false (Fact.equal f_r12 f_r13);
  Alcotest.(check bool) "compare orders by relation first" true
    (Fact.compare f_r12 f_s1 < 0)

let sample_db () =
  Database.empty
  |> Database.add f_r12
  |> Database.add ~provenance:Database.Exogenous f_r13
  |> Database.add f_s1

let test_database_basic () =
  let db = sample_db () in
  Alcotest.(check int) "size" 3 (Database.size db);
  Alcotest.(check int) "endo size" 2 (Database.endo_size db);
  Alcotest.(check int) "endogenous" 2 (List.length (Database.endogenous db));
  Alcotest.(check int) "exogenous" 1 (List.length (Database.exogenous db));
  Alcotest.(check bool) "mem" true (Database.mem f_r13 db);
  Alcotest.(check bool) "provenance" true
    (Database.provenance db f_r13 = Some Database.Exogenous);
  Alcotest.(check (list string)) "relations" [ "R"; "S" ] (Database.relations db);
  Alcotest.(check int) "relation R" 2 (List.length (Database.relation db "R"))

let test_database_updates () =
  let db = sample_db () in
  let db2 = Database.set_provenance Database.Exogenous f_r12 db in
  Alcotest.(check int) "endo after set_provenance" 1 (Database.endo_size db2);
  Alcotest.(check int) "original untouched (persistence)" 2 (Database.endo_size db);
  let db3 = Database.remove f_s1 db in
  Alcotest.(check int) "remove" 2 (Database.size db3);
  Alcotest.check_raises "set_provenance on absent fact" Not_found (fun () ->
      ignore (Database.set_provenance Database.Endogenous (Fact.of_ints "Z" [ 0 ]) db));
  (* Re-adding overwrites provenance. *)
  let db4 = Database.add ~provenance:Database.Exogenous f_s1 db in
  Alcotest.(check int) "overwrite provenance" 1 (Database.endo_size db4);
  Alcotest.(check int) "overwrite keeps size" 3 (Database.size db4)

let test_database_split () =
  let db = sample_db () in
  let rs, rest = Database.restrict_relations [ "R" ] db in
  Alcotest.(check int) "restrict R" 2 (Database.size rs);
  Alcotest.(check int) "rest" 1 (Database.size rest);
  let endo_only = Database.filter (fun _ p -> p = Database.Endogenous) db in
  Alcotest.(check int) "filter endo" 2 (Database.size endo_only);
  let u = Database.union rs rest in
  Alcotest.(check bool) "union restores" true (Database.equal u db)

(* Both accumulator views are segment reads, not whole-database
   rebuilds; they must stay sorted, duplicate-free, and cheap on a
   database with many relations. *)
let test_relations_accumulators () =
  let names = List.init 26 (fun i -> String.make 1 (Char.chr (Char.code 'A' + i))) in
  let db =
    List.fold_left
      (fun acc name ->
        List.fold_left
          (fun acc k -> Database.add (Fact.of_ints name [ k ]) acc)
          acc [ 1; 2; 3 ])
      Database.empty names
  in
  let rels = Database.relations db in
  Alcotest.(check (list string)) "relations sorted, no duplicates" names rels;
  Alcotest.(check int) "size" 78 (Database.size db);
  let picked, rest = Database.restrict_relations [ "C"; "A"; "Z" ] db in
  Alcotest.(check (list string)) "restricted segments" [ "A"; "C"; "Z" ]
    (Database.relations picked);
  Alcotest.(check int) "restricted size" 9 (Database.size picked);
  Alcotest.(check int) "rest size" 69 (Database.size rest);
  Alcotest.(check bool) "union restores" true
    (Database.equal (Database.union picked rest) db)

(* ------------------------------------------------------------------ *)
(* Secondary indexes                                                   *)
(* ------------------------------------------------------------------ *)

let indexed_db () =
  Database.empty
  |> Database.add f_r12
  |> Database.add f_r13
  |> Database.add ~provenance:Database.Exogenous (Fact.of_ints "R" [ 2; 2 ])
  |> Database.add f_s1
  |> Database.add (Fact.of_ints "R" [ 7 ]) (* arity 1: invisible at pos 1 *)

let probe_strings db ~rel ~pos v =
  List.map Fact.to_string (Database.probe db ~rel ~pos (Value.Int v))

let test_index_probe () =
  let db = indexed_db () in
  Alcotest.(check (list string)) "R by pos 0 = 1" [ "R(1, 2)"; "R(1, 3)" ]
    (probe_strings db ~rel:"R" ~pos:0 1);
  Alcotest.(check (list string)) "R by pos 1 = 2" [ "R(1, 2)"; "R(2, 2)" ]
    (probe_strings db ~rel:"R" ~pos:1 2);
  Alcotest.(check (list string)) "miss" [] (probe_strings db ~rel:"R" ~pos:0 9);
  Alcotest.(check (list string)) "unknown relation" []
    (probe_strings db ~rel:"Z" ~pos:0 1);
  (* The full index groups every value, keeps provenance, and skips
     facts too short for the position. *)
  let idx = Database.indexed db ~rel:"R" ~pos:1 in
  Alcotest.(check int) "groups at pos 1" 2 (Database.ValueMap.cardinal idx);
  let group = Database.ValueMap.find (Value.Int 2) idx in
  Alcotest.(check (option bool)) "provenance survives" (Some true)
    (Option.map
       (fun p -> p = Database.Exogenous)
       (Database.FactMap.find_opt (Fact.of_ints "R" [ 2; 2 ]) group))

let test_index_maintenance () =
  let db = indexed_db () in
  (* Build the index, then update: the derivative must see the change,
     the parent must not. *)
  ignore (Database.probe db ~rel:"R" ~pos:0 (Value.Int 1));
  let db2 = Database.remove f_r13 db in
  Alcotest.(check (list string)) "removed from derived index" [ "R(1, 2)" ]
    (probe_strings db2 ~rel:"R" ~pos:0 1);
  Alcotest.(check (list string)) "parent index untouched" [ "R(1, 2)"; "R(1, 3)" ]
    (probe_strings db ~rel:"R" ~pos:0 1);
  let db3 = Database.add (Fact.of_ints "R" [ 1; 9 ]) db2 in
  Alcotest.(check (list string)) "added to derived index" [ "R(1, 2)"; "R(1, 9)" ]
    (probe_strings db3 ~rel:"R" ~pos:0 1);
  let db4 = Database.set_provenance Database.Exogenous f_r12 db3 in
  let group =
    Database.ValueMap.find (Value.Int 1) (Database.indexed db4 ~rel:"R" ~pos:0)
  in
  Alcotest.(check (option bool)) "set_provenance updates the index" (Some true)
    (Option.map
       (fun p -> p = Database.Exogenous)
       (Database.FactMap.find_opt f_r12 group))

let test_index_counters () =
  Database.reset_stats ();
  let db = indexed_db () in
  ignore (Database.probe db ~rel:"R" ~pos:0 (Value.Int 1));
  ignore (Database.probe db ~rel:"R" ~pos:0 (Value.Int 2));
  ignore (Database.relation db "S");
  let s = Database.stats () in
  Alcotest.(check int) "one build serves both probes" 1 s.Database.index_builds;
  Alcotest.(check int) "probes counted" 2 s.Database.index_probes;
  Alcotest.(check int) "scans counted" 1 s.Database.rel_scans;
  Database.reset_stats ()

(* The `Stale_index fault: updates keep the parent's built indexes
   verbatim. The directed reproducer pins the observable symptom — the
   segments are correct while a probe still returns the removed fact. *)
let test_stale_index_fault () =
  assert (!Database.fault = `None);
  let db = indexed_db () in
  ignore (Database.probe db ~rel:"R" ~pos:0 (Value.Int 1));
  Database.fault := `Stale_index;
  Fun.protect
    ~finally:(fun () -> Database.fault := `None)
    (fun () ->
      let db2 = Database.remove f_r13 db in
      Alcotest.(check bool) "segments are correct" false (Database.mem f_r13 db2);
      Alcotest.(check (list string)) "probe serves the stale group"
        [ "R(1, 2)"; "R(1, 3)" ]
        (probe_strings db2 ~rel:"R" ~pos:0 1));
  (* With the fault cleared the same update maintains the index. *)
  let db3 = Database.remove f_r13 db in
  Alcotest.(check (list string)) "clean update is correct" [ "R(1, 2)" ]
    (probe_strings db3 ~rel:"R" ~pos:0 1)

let test_cached_digest () =
  let db = indexed_db () in
  let computations = ref 0 in
  let compute db =
    incr computations;
    String.concat ";" (List.map Fact.to_string (Database.facts db))
  in
  let d1 = Database.cached_digest db compute in
  let d2 = Database.cached_digest db compute in
  Alcotest.(check string) "stable" d1 d2;
  Alcotest.(check int) "computed once" 1 !computations;
  Alcotest.(check bool) "derived database digests fresh" true
    (Database.cached_digest (Database.remove f_r13 db) compute <> d1)

module Schema = Aggshap_relational.Schema

let test_schema () =
  let s = Schema.of_list [ ("R", 2); ("S", 1) ] in
  Alcotest.(check (option int)) "arity R" (Some 2) (Schema.arity s "R");
  Alcotest.(check (option int)) "arity missing" None (Schema.arity s "T");
  Alcotest.(check bool) "mem" true (Schema.mem s "S");
  Alcotest.(check int) "relations" 2 (List.length (Schema.relations s));
  Alcotest.(check bool) "conflicting declare raises" true
    (try ignore (Schema.declare "R" 3 s); false with Invalid_argument _ -> true);
  (* Idempotent re-declaration. *)
  Alcotest.(check int) "re-declare" 2 (List.length (Schema.relations (Schema.declare "R" 2 s)));
  let merged = Schema.merge s (Schema.of_list [ ("T", 3) ]) in
  Alcotest.(check int) "merge" 3 (List.length (Schema.relations merged))

let test_schema_validation () =
  let s = Schema.of_list [ ("R", 2); ("S", 1) ] in
  Alcotest.(check bool) "good fact" true (Schema.check_fact s f_r12 = Ok ());
  (match Schema.check_fact s (Fact.of_ints "R" [ 1 ]) with
   | Ok () -> Alcotest.fail "wrong arity accepted"
   | Error _ -> ());
  (match Schema.check_fact s (Fact.of_ints "Z" [ 1 ]) with
   | Ok () -> Alcotest.fail "unknown relation accepted"
   | Error _ -> ());
  let bad_db = Database.of_facts [ f_r12; Fact.of_ints "R" [ 9 ]; Fact.of_ints "Z" [ 0 ] ] in
  (match Schema.check_database s bad_db with
   | Ok () -> Alcotest.fail "violations not reported"
   | Error msgs -> Alcotest.(check int) "two violations" 2 (List.length msgs));
  Alcotest.(check bool) "clean database" true
    (Schema.check_database s (sample_db ()) = Ok ())

let test_induced_schema () =
  let q = Aggshap_cq.Parser.parse_query_exn "Q(x) <- R(x, y), S(y)" in
  let s = Aggshap_cq.Cq.induced_schema q in
  Alcotest.(check (option int)) "R/2" (Some 2) (Schema.arity s "R");
  Alcotest.(check (option int)) "S/1" (Some 1) (Schema.arity s "S")

let () =
  Alcotest.run "relational"
    [ ( "relational",
        [ Alcotest.test_case "values" `Quick test_values;
          Alcotest.test_case "facts" `Quick test_facts;
          Alcotest.test_case "database basics" `Quick test_database_basic;
          Alcotest.test_case "database updates" `Quick test_database_updates;
          Alcotest.test_case "database split" `Quick test_database_split;
          Alcotest.test_case "accumulator views" `Quick test_relations_accumulators;
        ] );
      ( "secondary indexes",
        [ Alcotest.test_case "probe and grouping" `Quick test_index_probe;
          Alcotest.test_case "incremental maintenance" `Quick test_index_maintenance;
          Alcotest.test_case "kernel counters" `Quick test_index_counters;
          Alcotest.test_case "stale-index fault reproducer" `Quick test_stale_index_fault;
          Alcotest.test_case "cached digest" `Quick test_cached_digest;
        ] );
      ( "schema",
        [ Alcotest.test_case "declarations" `Quick test_schema;
          Alcotest.test_case "validation" `Quick test_schema_validation;
          Alcotest.test_case "induced by a query" `Quick test_induced_schema;
        ] );
    ]
