(* Unit tests for the load generator's percentile computation.

   The nearest-rank formula [ceil (p * n) - 1, clamped] is easy to get
   wrong at the small sample counts loadgen actually sees (a client
   that issues one open/close pair produces 1-sample series): a naive
   rounding raises or reads out of bounds. These pins keep the
   function total and monotone. *)

let feq = Alcotest.(check (float 1e-12))

let test_single_sample () =
  (* A 1-sample run must report that sample as every percentile. *)
  let one = [| 0.25 |] in
  List.iter
    (fun p -> feq (Printf.sprintf "p=%g of singleton" p) 0.25 (Percentile.percentile one p))
    [ 0.0; 0.01; 0.5; 0.9; 0.99; 1.0 ]

let test_empty () =
  List.iter
    (fun p -> feq (Printf.sprintf "p=%g of empty" p) 0.0 (Percentile.percentile [||] p))
    [ 0.0; 0.5; 0.99; 1.0 ]

let test_two_samples () =
  let two = [| 1.0; 2.0 |] in
  feq "p50 of two is the lower" 1.0 (Percentile.percentile two 0.50);
  feq "p99 of two is the upper" 2.0 (Percentile.percentile two 0.99);
  feq "p0 clamps to the first" 1.0 (Percentile.percentile two 0.0);
  feq "p100 is the last" 2.0 (Percentile.percentile two 1.0)

let test_hundred_samples () =
  (* 1.0 .. 100.0: nearest-rank percentiles are exactly the index. *)
  let samples = Array.init 100 (fun i -> float_of_int (i + 1)) in
  feq "p50 of 1..100" 50.0 (Percentile.percentile samples 0.50);
  feq "p99 of 1..100" 99.0 (Percentile.percentile samples 0.99);
  feq "p1 of 1..100" 1.0 (Percentile.percentile samples 0.01);
  feq "p100 of 1..100" 100.0 (Percentile.percentile samples 1.0)

let test_monotone_in_p () =
  let samples = Array.init 17 (fun i -> float_of_int (i * i)) in
  let ps = List.init 101 (fun i -> float_of_int i /. 100.0) in
  let rec go last = function
    | [] -> ()
    | p :: rest ->
      let v = Percentile.percentile samples p in
      Alcotest.(check bool)
        (Printf.sprintf "non-decreasing at p=%g" p)
        true (v >= last);
      go v rest
  in
  go neg_infinity ps

let () =
  Alcotest.run "bench_stats"
    [ ( "percentile",
        [ Alcotest.test_case "single sample" `Quick test_single_sample;
          Alcotest.test_case "empty series" `Quick test_empty;
          Alcotest.test_case "two samples" `Quick test_two_samples;
          Alcotest.test_case "hundred samples" `Quick test_hundred_samples;
          Alcotest.test_case "monotone in p" `Quick test_monotone_in_p;
        ] );
    ]
