(* Tests for the arbitrary-precision arithmetic substrate.

   Strategy: unit tests for edge cases, plus qcheck properties that
   cross-validate every operation against native-int arithmetic on small
   operands and against algebraic laws on large (string-built) operands. *)

module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module C = Aggshap_arith.Combinat
module N = Aggshap_arith.Ntt

let check_b msg expected actual =
  Alcotest.(check string) msg expected (B.to_string actual)

let check_q msg expected actual =
  Alcotest.(check string) msg expected (Q.to_string actual)

(* ------------------------------------------------------------------ *)
(* Bigint unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let test_bigint_basic () =
  check_b "zero" "0" B.zero;
  check_b "one" "1" B.one;
  check_b "minus one" "-1" B.minus_one;
  check_b "of_int 42" "42" (B.of_int 42);
  check_b "of_int -42" "-42" (B.of_int (-42));
  check_b "of_int max_int" (string_of_int max_int) (B.of_int max_int);
  check_b "of_int min_int" (string_of_int min_int) (B.of_int min_int);
  Alcotest.(check (option int)) "roundtrip max_int" (Some max_int)
    (B.to_int_opt (B.of_int max_int));
  Alcotest.(check (option int)) "roundtrip min_int" (Some min_int)
    (B.to_int_opt (B.of_int min_int));
  Alcotest.(check (option int)) "too big for int" None
    (B.to_int_opt (B.mul (B.of_int max_int) (B.of_int 4)))

let test_bigint_string_roundtrip () =
  let cases =
    [ "0"; "1"; "-1"; "999999999999999999999999999999";
      "-123456789012345678901234567890123456789";
      "1000000000000000000000000000000000000000000001" ]
  in
  List.iter (fun s -> check_b s s (B.of_string s)) cases;
  check_b "leading plus" "17" (B.of_string "+17");
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty string")
    (fun () -> ignore (B.of_string ""));
  Alcotest.check_raises "garbage" (Invalid_argument "Bigint.of_string: invalid character")
    (fun () -> ignore (B.of_string "12x4"))

(* Regression tests for the of_string audit: the parser must accept
   strictly [sign? digit+] and nothing else. Delegating chunks to
   [int_of_string] would quietly admit OCaml integer-literal syntax —
   radix prefixes, '_' separators, interior signs — on the short-string
   path. *)
let test_bigint_of_string_strict () =
  let rejects s =
    Alcotest.check_raises
      (Printf.sprintf "rejects %S" s)
      (Invalid_argument "Bigint.of_string: invalid character")
      (fun () -> ignore (B.of_string s))
  in
  List.iter rejects
    [ "0x10"; "0o7"; "0b101"; "1_000"; "1e5"; " 12"; "12 "; "+-5"; "--5";
      "12-3"; "1.5" ];
  (* Sign-only inputs have no digits at all (the "empty chunk"). *)
  Alcotest.check_raises "plus only" (Invalid_argument "Bigint.of_string: no digits")
    (fun () -> ignore (B.of_string "+"));
  Alcotest.check_raises "minus only" (Invalid_argument "Bigint.of_string: no digits")
    (fun () -> ignore (B.of_string "-"));
  (* The divide-and-conquer path must reject malformed input too, even
     with the bad character buried past the split point. *)
  rejects (String.make 400 '7' ^ "_" ^ String.make 399 '7');
  rejects (String.make 799 '7' ^ "x");
  (* Leading zeros are legal decimal on both paths. *)
  check_b "leading zeros short" "77" (B.of_string "0077");
  check_b "leading zeros long" (String.make 300 '7')
    (B.of_string (String.make 300 '0' ^ String.make 300 '7'))

let test_bigint_arith_large () =
  let a = B.of_string "123456789012345678901234567890" in
  let b = B.of_string "987654321098765432109876543210" in
  check_b "add" "1111111110111111111011111111100" (B.add a b);
  check_b "sub" "-864197532086419753208641975320" (B.sub a b);
  check_b "mul" "121932631137021795226185032733622923332237463801111263526900"
    (B.mul a b);
  let q, r = B.divmod b a in
  check_b "div" "8" q;
  check_b "rem" "9000000000900000000090" r;
  (* divmod identity: b = q*a + r *)
  check_b "divmod identity" (B.to_string b) (B.add (B.mul q a) r)

let test_bigint_divmod_signs () =
  (* Truncated division: remainder carries the sign of the dividend. *)
  let dm a b =
    let q, r = B.divmod (B.of_int a) (B.of_int b) in
    (B.to_int_exn q, B.to_int_exn r)
  in
  Alcotest.(check (pair int int)) "7 / 2" (3, 1) (dm 7 2);
  Alcotest.(check (pair int int)) "-7 / 2" (-3, -1) (dm (-7) 2);
  Alcotest.(check (pair int int)) "7 / -2" (-3, 1) (dm 7 (-2));
  Alcotest.(check (pair int int)) "-7 / -2" (3, -1) (dm (-7) (-2));
  Alcotest.check_raises "division by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_bigint_pow_gcd () =
  check_b "2^100" "1267650600228229401496703205376" (B.pow B.two 100);
  check_b "x^0" "1" (B.pow (B.of_int 17) 0);
  check_b "0^0" "1" (B.pow B.zero 0);
  check_b "gcd" "6" (B.gcd (B.of_int 54) (B.of_int (-24)));
  check_b "gcd with zero" "7" (B.gcd B.zero (B.of_int 7));
  check_b "gcd big"
    "9999999999"
    (B.gcd
       (B.mul (B.of_string "9999999999") (B.of_string "1000000007"))
       (B.mul (B.of_string "9999999999") (B.of_string "998244353")))

let test_bigint_compare () =
  let sorted =
    List.map B.of_string
      [ "-100000000000000000000"; "-5"; "0"; "3"; "100000000000000000000" ]
  in
  let shuffled = List.rev sorted in
  Alcotest.(check (list string)) "sort"
    (List.map B.to_string sorted)
    (List.map B.to_string (List.sort B.compare shuffled));
  Alcotest.(check bool) "is_even 0" true (B.is_even B.zero);
  Alcotest.(check bool) "is_even 7" false (B.is_even (B.of_int 7));
  Alcotest.(check bool) "is_even -4" true (B.is_even (B.of_int (-4)))

let test_bigint_to_float () =
  Alcotest.(check (float 1e-9)) "to_float small" 42.0 (B.to_float (B.of_int 42));
  let big = B.pow (B.of_int 10) 30 in
  Alcotest.(check (float 1e20)) "to_float big" 1e30 (B.to_float big)

(* ------------------------------------------------------------------ *)
(* Bigint properties                                                   *)
(* ------------------------------------------------------------------ *)

let arb_small_int = QCheck.int_range (-1_000_000) 1_000_000

(* Big operands built from random digit strings, sign included. *)
let arb_big =
  let gen =
    QCheck.Gen.(
      let* neg = bool in
      let* ndigits = int_range 1 60 in
      let* digits = list_size (return ndigits) (int_range 0 9) in
      let s = String.concat "" (List.map string_of_int digits) in
      let s = if neg then "-" ^ s else s in
      return (B.of_string s))
  in
  QCheck.make gen ~print:B.to_string

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let bigint_props =
  [ prop "of_int/add agrees with native" 1000
      QCheck.(pair arb_small_int arb_small_int)
      (fun (a, b) -> B.equal (B.add (B.of_int a) (B.of_int b)) (B.of_int (a + b)));
    prop "of_int/mul agrees with native" 1000
      QCheck.(pair arb_small_int arb_small_int)
      (fun (a, b) -> B.equal (B.mul (B.of_int a) (B.of_int b)) (B.of_int (a * b)));
    prop "of_int/divmod agrees with native" 1000
      QCheck.(pair arb_small_int arb_small_int)
      (fun (a, b) ->
        QCheck.assume (b <> 0);
        let q, r = B.divmod (B.of_int a) (B.of_int b) in
        B.to_int_exn q = a / b && B.to_int_exn r = a mod b);
    prop "string roundtrip" 500 arb_big (fun a -> B.equal a (B.of_string (B.to_string a)));
    prop "add commutative" 500 QCheck.(pair arb_big arb_big)
      (fun (a, b) -> B.equal (B.add a b) (B.add b a));
    prop "mul commutative" 300 QCheck.(pair arb_big arb_big)
      (fun (a, b) -> B.equal (B.mul a b) (B.mul b a));
    prop "mul distributes over add" 300 QCheck.(triple arb_big arb_big arb_big)
      (fun (a, b, c) ->
        B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)));
    prop "sub inverse of add" 500 QCheck.(pair arb_big arb_big)
      (fun (a, b) -> B.equal (B.sub (B.add a b) b) a);
    prop "divmod reconstruction" 500 QCheck.(pair arb_big arb_big)
      (fun (a, b) ->
        QCheck.assume (not (B.is_zero b));
        let q, r = B.divmod a b in
        B.equal a (B.add (B.mul q b) r)
        && B.compare (B.abs r) (B.abs b) < 0
        && (B.is_zero r || B.sign r = B.sign a));
    prop "gcd divides both" 300 QCheck.(pair arb_big arb_big)
      (fun (a, b) ->
        QCheck.assume (not (B.is_zero a) || not (B.is_zero b));
        let g = B.gcd a b in
        B.is_zero (B.rem a g) && B.is_zero (B.rem b g));
    prop "compare consistent with sub" 500 QCheck.(pair arb_big arb_big)
      (fun (a, b) -> B.compare a b = B.sign (B.sub a b));
    prop "neg involutive" 500 arb_big (fun a -> B.equal a (B.neg (B.neg a)));
  ]

(* ------------------------------------------------------------------ *)
(* Kernel differentials                                                *)
(*                                                                     *)
(* The fast kernels (Karatsuba, hybrid gcd, divide-and-conquer string  *)
(* conversion, the Acc multiply-accumulator) each keep a slow reference*)
(* implementation in reach; these properties cross-validate the two on *)
(* operands big enough to exercise the fast paths.                     *)
(* ------------------------------------------------------------------ *)

(* Operands of up to ~700 digits: far past the Karatsuba limb threshold
   and both divide-and-conquer string thresholds. *)
let arb_huge =
  let gen =
    QCheck.Gen.(
      let* neg = bool in
      let* ndigits = int_range 1 700 in
      let* digits = list_size (return ndigits) (int_range 0 9) in
      let s = String.concat "" (List.map string_of_int digits) in
      let s = if neg then "-" ^ s else s in
      return (B.of_string s))
  in
  QCheck.make gen ~print:B.to_string

let with_karatsuba_threshold t f =
  let saved = !B.karatsuba_threshold in
  B.karatsuba_threshold := t;
  Fun.protect ~finally:(fun () -> B.karatsuba_threshold := saved) f

let kernel_props =
  [ prop "karatsuba agrees with schoolbook" 200 QCheck.(pair arb_huge arb_huge)
      (fun (a, b) ->
        (* Force the split even on small operands so every trial
           exercises at least one recursion level. *)
        let fast = with_karatsuba_threshold 4 (fun () -> B.mul a b) in
        B.equal fast (B.mul_schoolbook a b));
    prop "sqr agrees with mul" 200 arb_huge
      (fun a -> B.equal (B.sqr a) (B.mul_schoolbook a a));
    prop "hybrid gcd agrees with Euclid reference" 200 QCheck.(pair arb_huge arb_huge)
      (fun (a, b) -> B.equal (B.gcd a b) (B.gcd_euclid a b));
    prop "huge string roundtrip" 200 arb_huge
      (fun a -> B.equal a (B.of_string (B.to_string a)));
    prop "to_string agrees with small-chunk reference" 100 arb_huge
      (fun a ->
        (* Decimal digits recovered one-by-one by repeated division:
           the simplest possible reference for the D&C printer. *)
        let rec digits x acc =
          if B.is_zero x then acc
          else
            let q, r = B.divmod x (B.of_int 10) in
            digits q (string_of_int (B.to_int_exn r) ^ acc)
        in
        let expect =
          if B.is_zero a then "0"
          else (if B.is_negative a then "-" else "") ^ digits (B.abs a) ""
        in
        String.equal expect (B.to_string a));
    prop "mul_int agrees with mul of_int" 500
      QCheck.(pair arb_big (int_range (-2_000_000_000) 2_000_000_000))
      (fun (a, n) -> B.equal (B.mul_int a n) (B.mul a (B.of_int n)));
    prop "Acc matches fold of mul/add" 200
      QCheck.(list_of_size (Gen.int_range 0 12) (pair arb_big arb_big))
      (fun pairs ->
        let acc = B.Acc.create () in
        List.iter (fun (a, b) -> B.Acc.add_mul acc a b) pairs;
        let reference =
          List.fold_left (fun s (a, b) -> B.add s (B.mul a b)) B.zero pairs
        in
        B.equal (B.Acc.value acc) reference);
    prop "Acc clear resets" 100 QCheck.(pair arb_big arb_big)
      (fun (a, b) ->
        let acc = B.Acc.create () in
        B.Acc.add_mul acc a b;
        B.Acc.clear acc;
        B.Acc.add acc a;
        B.equal (B.Acc.value acc) a);
  ]

(* ------------------------------------------------------------------ *)
(* Small-integer representation                                        *)
(*                                                                     *)
(* The tagged fast path keeps every value in [-max_int, max_int] as an *)
(* unboxed native int and promotes to limb arrays only past the int63  *)
(* boundary; these tests pin the canonical-form invariant (min_int is  *)
(* the one native int that must stay on the big side) and check the    *)
(* overflow-guarded operations right at the edge.                      *)
(* ------------------------------------------------------------------ *)

let test_small_representation () =
  Alcotest.(check bool) "0 is small" true (B.is_small B.zero);
  Alcotest.(check bool) "max_int is small" true (B.is_small (B.of_int max_int));
  Alcotest.(check bool) "min_int+1 is small" true (B.is_small (B.of_int (min_int + 1)));
  Alcotest.(check bool) "min_int is big" false (B.is_small (B.of_int min_int));
  Alcotest.(check bool) "max_int+1 is big" false (B.is_small (B.succ (B.of_int max_int)));
  (* Demotion: a big-path computation whose result fits comes back
     small, so structural equality keeps coinciding with numeric. *)
  let back =
    B.sub (B.mul (B.of_int max_int) (B.of_int 3)) (B.mul (B.of_int max_int) (B.of_int 2))
  in
  Alcotest.(check bool) "big-path result demotes" true (B.is_small back);
  check_b "demoted value" (string_of_int max_int) back;
  (* min_int asymmetry: |min_int| = max_int + 1 does not fit. *)
  check_b "neg min_int" "4611686018427387904" (B.neg (B.of_int min_int));
  Alcotest.(check bool) "neg min_int is big" false (B.is_small (B.neg (B.of_int min_int)));
  Alcotest.(check (option int)) "to_int_opt min_int" (Some min_int)
    (B.to_int_opt (B.of_int min_int));
  Alcotest.(check (option int)) "to_int_opt -min_int" None
    (B.to_int_opt (B.neg (B.of_int min_int)));
  (* Additive boundary, both directions. *)
  check_b "max_int + 1" "4611686018427387904" (B.add (B.of_int max_int) B.one);
  check_b "min_int - 1" "-4611686018427387905" (B.pred (B.of_int min_int));
  (* -max_int + -1 wraps to exactly min_int in native arithmetic — a
     sum that is representable but must still land on the big side. *)
  let min_via_add = B.add (B.of_int (-max_int)) B.minus_one in
  check_b "-max_int - 1 = min_int" (string_of_int min_int) min_via_add;
  Alcotest.(check bool) "that sum is canonical big" false (B.is_small min_via_add);
  Alcotest.(check bool) "equal across representations" true
    (B.equal min_via_add (B.of_int min_int));
  (* Multiplicative boundary: products whose wrap lands on min_int or
     just past the quick-accept window. *)
  Alcotest.(check bool) "max*max matches schoolbook" true
    (B.equal
       (B.mul (B.of_int max_int) (B.of_int max_int))
       (B.mul_schoolbook (B.of_int max_int) (B.of_int max_int)));
  check_b "2 * 2^61 = 2^62" "4611686018427387904"
    (B.mul B.two (B.of_int (1 lsl 61)));
  check_b "-2 * 2^61 = min_int" (string_of_int min_int)
    (B.mul (B.of_int (-2)) (B.of_int (1 lsl 61)));
  (* min_int / -1 must not hit the native trap. *)
  let q, r = B.divmod (B.of_int min_int) B.minus_one in
  check_b "min_int / -1" "4611686018427387904" q;
  check_b "min_int mod -1" "0" r

(* Integers clustered at the int63 overflow boundary, plus uniform
   noise across the full native range. *)
let arb_int63 =
  let gen =
    QCheck.Gen.(
      frequency
        [ (2, map (fun d -> max_int - d) (int_range 0 2));
          (2, map (fun d -> min_int + d) (int_range 0 2));
          (1, map (fun d -> (1 lsl 31) - 2 + d) (int_range 0 3));
          (2, int_range (-1_000_000) 1_000_000);
          (3, int) ])
  in
  QCheck.make gen ~print:string_of_int

(* Decimal negation of a numeral string: exact reference for [neg]
   across the whole native range, min_int included. *)
let string_neg s =
  if s = "0" then s
  else if s.[0] = '-' then String.sub s 1 (String.length s - 1)
  else "-" ^ s

let small_props =
  [ prop "of_int round-trips, min_int stays big" 2000 arb_int63 (fun n ->
        B.to_int_opt (B.of_int n) = Some n
        && B.is_small (B.of_int n) = (n <> min_int)
        && String.equal (B.to_string (B.of_int n)) (string_of_int n));
    prop "add at the boundary agrees with the big path" 2000
      QCheck.(pair arb_int63 arb_int63)
      (fun (a, b) ->
        (* Reference: the same sum routed through limb arithmetic via a
           large anchor, so the overflow-checked native path is
           cross-validated, not compared with itself. *)
        let anchor = B.pow B.two 100 in
        let reference =
          B.sub (B.add (B.add (B.of_int a) anchor) (B.of_int b)) anchor
        in
        B.equal (B.add (B.of_int a) (B.of_int b)) reference);
    prop "mul at the boundary agrees with schoolbook" 2000
      QCheck.(pair arb_int63 arb_int63)
      (fun (a, b) ->
        B.equal
          (B.mul (B.of_int a) (B.of_int b))
          (B.mul_schoolbook (B.of_int a) (B.of_int b)));
    prop "sqr at the boundary agrees with schoolbook" 1000 arb_int63 (fun a ->
        B.equal (B.sqr (B.of_int a)) (B.mul_schoolbook (B.of_int a) (B.of_int a)));
    prop "neg agrees with decimal negation" 2000 arb_int63 (fun n ->
        B.equal (B.neg (B.of_int n)) (B.of_string (string_neg (string_of_int n))));
    prop "promotion/demotion round-trip through string" 1000 arb_int63 (fun n ->
        (* of_string builds through the limb path for long numerals and
           the accumulator path for short ones; either way the value
           must come back to the canonical small form. *)
        let v = B.of_string (string_of_int n) in
        B.equal v (B.of_int n) && B.is_small v = (n <> min_int));
    prop "divmod at the boundary reconstructs" 1000
      QCheck.(pair arb_int63 arb_int63)
      (fun (a, b) ->
        QCheck.assume (b <> 0);
        let q, r = B.divmod (B.of_int a) (B.of_int b) in
        B.equal (B.of_int a) (B.add (B.mul q (B.of_int b)) r)
        && B.compare (B.abs r) (B.abs (B.of_int b)) < 0);
    prop "rem_int agrees with rem" 1000
      QCheck.(pair arb_big (int_range 1 0x7FFFFFFF))
      (fun (a, m) ->
        B.equal (B.of_int (B.rem_int a m)) (B.rem a (B.of_int m)));
    prop "bit_length bounds the value" 1000 arb_big (fun a ->
        let bl = B.bit_length a in
        if B.is_zero a then bl = 0
        else
          B.compare (B.abs a) (B.pow B.two bl) < 0
          && B.compare (B.pow B.two (bl - 1)) (B.abs a) <= 0);
  ]

(* ------------------------------------------------------------------ *)
(* RNS/NTT convolution                                                 *)
(* ------------------------------------------------------------------ *)

(* Reference convolution: quadratic scatter over schoolbook products,
   touching none of the code under test. *)
let conv_reference a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb - 1) B.zero in
  for i = 0 to la - 1 do
    for j = 0 to lb - 1 do
      out.(i + j) <- B.add out.(i + j) (B.mul_schoolbook a.(i) b.(j))
    done
  done;
  out

let table_equal x y =
  Array.length x = Array.length y && Array.for_all2 B.equal x y

let table_print t =
  "[" ^ String.concat "; " (Array.to_list (Array.map B.to_string t)) ^ "]"

(* Tables mixing zeros, native-range entries, and multi-limb entries of
   either sign — the value profile of the lifted rational tables the
   DPs feed through [Tables.convolve]. *)
let arb_table =
  let gen_entry =
    QCheck.Gen.(
      frequency
        [ (2, return B.zero);
          (3, map B.of_int (int_range (-1_000_000) 1_000_000));
          (2, map B.of_int int);
          (2,
           let* neg = bool in
           let* ndigits = int_range 1 60 in
           let* digits = list_size (return ndigits) (int_range 0 9) in
           let s = String.concat "" (List.map string_of_int digits) in
           return (B.of_string (if neg then "-" ^ s else s))) ])
  in
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 40 in
      array_size (return n) gen_entry)
  in
  QCheck.make gen ~print:table_print

let ntt_convolves_exactly (a, b) =
  QCheck.assume (Array.length a + Array.length b >= 3);
  match N.convolve a b with
  | None -> QCheck.Test.fail_report "NTT tier declined a feasible shape"
  | Some out -> table_equal out (conv_reference a b)

let test_ntt_adversarial_all_max () =
  (* Every entry at the same maximal magnitude: the magnitude bound is
     tight on every coefficient at once, so an off-by-one in the prime
     budget or the balanced lift corrupts essentially every entry. *)
  let huge = B.pred (B.pow B.two 900) in
  List.iter
    (fun (la, lb) ->
      let a = Array.make la huge and b = Array.make lb (B.neg huge) in
      match N.convolve a b with
      | None -> Alcotest.fail "NTT tier declined the all-max table"
      | Some out ->
        Alcotest.(check bool)
          (Printf.sprintf "all-max %dx%d matches reference" la lb)
          true
          (table_equal out (conv_reference a b)))
    [ (33, 33); (32, 17); (2, 64); (64, 64) ]

let test_ntt_zero_and_edges () =
  (* All-zero operand short-circuits. *)
  (match N.convolve (Array.make 5 B.zero) (Array.make 7 B.one) with
   | Some out ->
     Alcotest.(check bool) "zero table convolves to zeros" true
       (Array.for_all B.is_zero out && Array.length out = 11)
   | None -> Alcotest.fail "NTT declined the zero table");
  (* 1x1 output is below the tier. *)
  Alcotest.(check bool) "1x1 declined" true
    (N.convolve [| B.one |] [| B.two |] = None);
  Alcotest.(check bool) "empty declined" true (N.convolve [||] [| B.one |] = None);
  (* The prime generator really produces NTT-friendly primes. *)
  Alcotest.(check bool) "2^21-friendly primes exist" true
    (match N.primes_for ~order:21 ~min_bits:120 with
     | Some basis ->
       Array.for_all
         (fun (p, _) -> N.is_prime p && (p - 1) mod (1 lsl 21) = 0)
         basis
       && Array.length basis >= 4
     | None -> false)

let ntt_props =
  [ prop "NTT agrees with schoolbook reference" 150
      QCheck.(pair arb_table arb_table)
      ntt_convolves_exactly;
    prop "NTT exact on squared tables" 100 arb_table (fun a ->
        QCheck.assume (Array.length a >= 2);
        match N.convolve a a with
        | None -> false
        | Some out -> table_equal out (conv_reference a a));
  ]

(* ------------------------------------------------------------------ *)
(* Rational unit tests                                                 *)
(* ------------------------------------------------------------------ *)

let test_rational_basic () =
  check_q "normalization" "2/3" (Q.of_ints 4 6);
  check_q "negative den" "-2/3" (Q.of_ints 4 (-6));
  check_q "zero" "0" (Q.of_ints 0 5);
  check_q "integer display" "7" (Q.of_ints 14 2);
  check_q "add" "5/6" (Q.add (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "sub" "1/6" (Q.sub (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "mul" "1/6" (Q.mul (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "div" "3/2" (Q.div (Q.of_ints 1 2) (Q.of_ints 1 3));
  check_q "pow neg" "9/4" (Q.pow (Q.of_ints 2 3) (-2));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Q.inv Q.zero))

let test_rational_floor_ceil () =
  let fl a b = B.to_int_exn (Q.floor (Q.of_ints a b)) in
  let ce a b = B.to_int_exn (Q.ceil (Q.of_ints a b)) in
  Alcotest.(check int) "floor 7/2" 3 (fl 7 2);
  Alcotest.(check int) "floor -7/2" (-4) (fl (-7) 2);
  Alcotest.(check int) "floor 6/2" 3 (fl 6 2);
  Alcotest.(check int) "ceil 7/2" 4 (ce 7 2);
  Alcotest.(check int) "ceil -7/2" (-3) (ce (-7) 2);
  Alcotest.(check int) "ceil -6/2" (-3) (ce (-6) 2)

let test_rational_string () =
  check_q "of_string int" "5" (Q.of_string "5");
  check_q "of_string frac" "-5/7" (Q.of_string "-5/7");
  check_q "of_string unnormalized" "1/2" (Q.of_string "2/4")

let arb_rat =
  let gen =
    QCheck.Gen.(
      let* n = int_range (-10000) 10000 in
      let* d = int_range 1 10000 in
      return (Q.of_ints n d))
  in
  QCheck.make gen ~print:Q.to_string

let rational_props =
  [ prop "add assoc" 500 QCheck.(triple arb_rat arb_rat arb_rat)
      (fun (a, b, c) -> Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c)));
    prop "mul inverse" 500 arb_rat
      (fun a ->
        QCheck.assume (not (Q.is_zero a));
        Q.equal Q.one (Q.mul a (Q.inv a)));
    prop "distributivity" 500 QCheck.(triple arb_rat arb_rat arb_rat)
      (fun (a, b, c) -> Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)));
    prop "compare antisymmetric" 500 QCheck.(pair arb_rat arb_rat)
      (fun (a, b) -> Q.compare a b = -Q.compare b a);
    prop "floor <= x < floor+1" 500 arb_rat
      (fun a ->
        let f = Q.of_bigint (Q.floor a) in
        Q.compare f a <= 0 && Q.compare a (Q.add f Q.one) < 0);
    prop "to_float close" 500 arb_rat
      (fun a ->
        let f = Q.to_float a in
        abs_float (f -. (B.to_float (Q.num a) /. B.to_float (Q.den a))) < 1e-9);
    (* The cross-gcd add/mul forms must keep results reduced with a
       positive denominator — the invariant they themselves rely on. *)
    prop "add/mul keep fractions reduced" 300
      QCheck.(pair (pair arb_big arb_big) (pair arb_big arb_big))
      (fun ((an, ad), (bn, bd)) ->
        QCheck.assume (not (B.is_zero ad) && not (B.is_zero bd));
        let a = Q.make an ad and b = Q.make bn bd in
        let reduced q =
          B.sign (Q.den q) > 0 && B.is_one (B.gcd (Q.num q) (Q.den q))
        in
        reduced (Q.add a b) && reduced (Q.mul a b) && reduced (Q.sub a b)
        && reduced (Q.mul_int a 84) && reduced (Q.div_int b 84));
  ]

(* ------------------------------------------------------------------ *)
(* Combinat                                                            *)
(* ------------------------------------------------------------------ *)

let test_factorial () =
  check_b "0!" "1" (C.factorial 0);
  check_b "1!" "1" (C.factorial 1);
  check_b "10!" "3628800" (C.factorial 10);
  check_b "25!" "15511210043330985984000000" (C.factorial 25);
  (* Memoization across descending calls. *)
  check_b "5! after 25!" "120" (C.factorial 5)

let test_binomial () =
  check_b "C(0,0)" "1" (C.binomial 0 0);
  check_b "C(5,2)" "10" (C.binomial 5 2);
  check_b "C(5,7)" "0" (C.binomial 5 7);
  check_b "C(5,-1)" "0" (C.binomial 5 (-1));
  check_b "C(100,50)" "100891344545564193334812497256" (C.binomial 100 50)

let test_shapley_coefficient () =
  (* For n players the coefficients over all positions of one player and
     all coalition sizes sum to 1: sum_k C(n-1,k) q_k = 1. *)
  let n = 12 in
  let total =
    List.init n (fun k ->
        Q.mul
          (Q.of_bigint (C.binomial (n - 1) k))
          (C.shapley_coefficient ~players:n ~before:k))
    |> Q.sum
  in
  check_q "sum_k C(n-1,k) q_k = 1" "1" total;
  check_q "q_0 = 1/n" "1/12" (C.shapley_coefficient ~players:12 ~before:0)

let test_harmonic () =
  check_q "H(0)" "0" (C.harmonic 0);
  check_q "H(1)" "1" (C.harmonic 1);
  check_q "H(4)" "25/12" (C.harmonic 4);
  check_q "H(3) after H(4)" "11/6" (C.harmonic 3)

let test_misc_combinat () =
  Alcotest.(check (list int)) "divisors 12" [ 1; 2; 3; 4; 6; 12 ] (C.divisors 12);
  Alcotest.(check (list int)) "divisors 1" [ 1 ] (C.divisors 1);
  Alcotest.(check (list int)) "divisors 13" [ 1; 13 ] (C.divisors 13);
  Alcotest.(check int) "compositions2 count" 6 (List.length (C.compositions2 5));
  check_b "falling factorial" "60" (C.falling_factorial 5 3);
  check_b "falling factorial k=0" "1" (C.falling_factorial 5 0)

let combinat_props =
  [ prop "pascal identity" 200
      QCheck.(pair (int_range 1 60) (int_range 0 60))
      (fun (n, k) ->
        B.equal (C.binomial n k)
          (B.add (C.binomial (n - 1) k) (C.binomial (n - 1) (k - 1))));
    prop "binomial symmetry" 200
      QCheck.(pair (int_range 0 60) (int_range 0 60))
      (fun (n, k) ->
        QCheck.assume (k <= n);
        B.equal (C.binomial n k) (C.binomial n (n - k)));
    prop "coefficients sum to one" 50 (QCheck.int_range 1 30)
      (fun n ->
        let total =
          List.init n (fun k ->
              Q.mul
                (Q.of_bigint (C.binomial (n - 1) k))
                (C.shapley_coefficient ~players:n ~before:k))
          |> Q.sum
        in
        Q.equal total Q.one);
  ]

let () =
  Alcotest.run "arith"
    [ ( "bigint",
        [ Alcotest.test_case "basic" `Quick test_bigint_basic;
          Alcotest.test_case "string roundtrip" `Quick test_bigint_string_roundtrip;
          Alcotest.test_case "of_string strict decimal" `Quick
            test_bigint_of_string_strict;
          Alcotest.test_case "large arithmetic" `Quick test_bigint_arith_large;
          Alcotest.test_case "divmod signs" `Quick test_bigint_divmod_signs;
          Alcotest.test_case "pow and gcd" `Quick test_bigint_pow_gcd;
          Alcotest.test_case "compare" `Quick test_bigint_compare;
          Alcotest.test_case "to_float" `Quick test_bigint_to_float;
          Alcotest.test_case "small representation boundary" `Quick
            test_small_representation;
        ] );
      ("bigint properties", bigint_props);
      ("small-int properties", small_props);
      ("kernel differentials", kernel_props);
      ( "ntt",
        Alcotest.test_case "adversarial all-max tables" `Quick
          test_ntt_adversarial_all_max
        :: Alcotest.test_case "zeros and edge shapes" `Quick test_ntt_zero_and_edges
        :: ntt_props );
      ( "rational",
        [ Alcotest.test_case "basic" `Quick test_rational_basic;
          Alcotest.test_case "floor/ceil" `Quick test_rational_floor_ceil;
          Alcotest.test_case "strings" `Quick test_rational_string;
        ] );
      ("rational properties", rational_props);
      ( "combinat",
        [ Alcotest.test_case "factorial" `Quick test_factorial;
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "shapley coefficient" `Quick test_shapley_coefficient;
          Alcotest.test_case "harmonic" `Quick test_harmonic;
          Alcotest.test_case "misc" `Quick test_misc_combinat;
        ] );
      ("combinat properties", combinat_props);
    ]
