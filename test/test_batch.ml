(* Batch-engine tests.

   The batch layer (Pool + Memo + Batch + Solver.shapley_all) must be an
   observationally pure optimisation: for every jobs/cache combination
   the all-facts results are bit-identical — as exact rationals — to the
   sequential per-fact path, across every algorithm family of the
   frontier and the out-of-frontier fallbacks. *)

module Q = Aggshap_arith.Rational
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Value = Aggshap_relational.Value
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query
module Core = Aggshap_core
module Catalog = Aggshap_workload.Catalog
module Generate = Aggshap_workload.Generate

let vid rel pos = Value_fn.id ~rel ~pos

let vmod rel pos =
  Value_fn.custom ~rel ~descr:(Printf.sprintf "mod2[%d]" pos) (fun args ->
      match Value.as_int args.(pos) with
      | Some n -> Q.of_int (((n mod 2) + 2) mod 2)
      | None -> invalid_arg "vmod: non-integer")

let small_config = { Generate.tuples_per_relation = 3; domain = 3; exo_fraction = 0.3 }

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_ordering () =
  let xs = List.init 100 Fun.id in
  let expected = List.map (fun x -> x * x) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d preserves input order" jobs)
        expected
        (Core.Pool.map ~jobs (fun x -> x * x) xs))
    [ 1; 2; 4; 7 ]

let test_pool_default_jobs () =
  Alcotest.(check bool) "default_jobs >= 1" true (Core.Pool.default_jobs () >= 1);
  let xs = [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check (list int))
    "default jobs agrees with sequential" (List.map succ xs)
    (Core.Pool.map succ xs)

let test_pool_edge_cases () =
  Alcotest.(check (list int)) "empty list" [] (Core.Pool.map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 8 ] (Core.Pool.map ~jobs:4 succ [ 7 ]);
  Alcotest.(check (list int)) "jobs clamped to 1" [ 2; 3 ] (Core.Pool.map ~jobs:0 succ [ 1; 2 ])

exception Boom of int

let test_pool_exception () =
  List.iter
    (fun jobs ->
      match Core.Pool.map ~jobs (fun x -> if x = 13 then raise (Boom x) else x) (List.init 20 Fun.id) with
      | _ -> Alcotest.failf "jobs=%d: expected Boom to propagate" jobs
      | exception Boom 13 -> ())
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Memo                                                                *)
(* ------------------------------------------------------------------ *)

let test_memo_stats () =
  let m = Core.Memo.create () in
  let calls = ref 0 in
  let get k =
    Core.Memo.find_or_compute (Some m) ~key:(fun () -> k) (fun () -> incr calls; String.length k)
  in
  Alcotest.(check int) "first compute" 3 (get "abc");
  Alcotest.(check int) "cached" 3 (get "abc");
  Alcotest.(check int) "second key" 2 (get "xy");
  Alcotest.(check int) "computed twice total" 2 !calls;
  let s = Core.Memo.stats m in
  Alcotest.(check int) "hits" 1 s.Core.Memo.hits;
  Alcotest.(check int) "misses" 2 s.Core.Memo.misses

let test_memo_disabled () =
  (* With no memo the key must not even be evaluated. *)
  let v =
    Core.Memo.find_or_compute None ~key:(fun () -> Alcotest.fail "key evaluated") (fun () -> 42)
  in
  Alcotest.(check int) "computes directly" 42 v

(* ------------------------------------------------------------------ *)
(* Batch vs sequential per-fact, across every algorithm family         *)
(* ------------------------------------------------------------------ *)

(* Every in-frontier (aggregate, tau, query) family the solver dispatches
   on: Sum/Count (linearity + Boolean DP), CDist (per-value Boolean DP),
   Min/Max ((a,k)-table DP), Avg/Median ((a,k,l)-table DP),
   Has-duplicates (P0/P1 DP). *)
let families =
  [
    ("sum q_exists", Aggregate.Sum, vid "R" 0, Catalog.q_exists);
    ("count q_xyy", Aggregate.Count, vid "R" 0, Catalog.q_xyy);
    ("cdist q_xyy", Aggregate.Count_distinct, vmod "R" 0, Catalog.q_xyy);
    ("max q_xyy", Aggregate.Max, vid "R" 0, Catalog.q_xyy);
    ("min q1", Aggregate.Min, vid "R" 1, Catalog.q1_sq);
    ("avg q4", Aggregate.Avg, vid "R" 1, Catalog.q4_q);
    ("median q4", Aggregate.Median, vid "R" 1, Catalog.q4_q);
    ("dup q1", Aggregate.Has_duplicates, vmod "R" 0, Catalog.q1_sq);
  ]

let check_same_results name expected actual =
  if List.length expected <> List.length actual then
    Alcotest.failf "%s: result count mismatch" name;
  List.iter2
    (fun (f1, v1) (f2, v2) ->
      if not (Fact.equal f1 f2) then Alcotest.failf "%s: fact order mismatch" name;
      if not (Q.equal v1 v2) then
        Alcotest.failf "%s: Shapley(%s) expected %s got %s" name (Fact.to_string f1)
          (Q.to_string v1) (Q.to_string v2))
    expected actual

let batch_agrees (name, alpha, tau, query) () =
  let a = Agg_query.make alpha tau query in
  for seed = 0 to 4 do
    let db = Generate.random_database ~seed ~config:small_config query in
    if Database.endo_size db > 0 then begin
      (* Reference: the sequential per-fact solver, one fact at a time. *)
      let expected =
        List.map (fun f -> (f, Core.Solver.shapley_exact a db f)) (Database.endogenous db)
      in
      List.iter
        (fun (jobs, cache) ->
          let actual, stats = Core.Batch.shapley_all ~jobs ~cache a db in
          check_same_results
            (Printf.sprintf "%s (seed %d, jobs=%d, cache=%b)" name seed jobs cache)
            expected actual;
          Alcotest.(check int) "stats report the requested jobs" jobs stats.Core.Batch.jobs;
          match stats.Core.Batch.cache with
          | Some _ when not cache -> Alcotest.failf "%s: stats for disabled cache" name
          | None when cache -> Alcotest.failf "%s: no stats for enabled cache" name
          | _ -> ())
        [ (1, false); (1, true); (4, false); (4, true) ]
    end
  done

(* The Minmax batch worker precombines sibling-block tables; exercise it
   on a structured chain database where some blocks hold a single fact
   (so removing it makes the root value vanish from the partition) and
   against Min's negation path. The reference is the seed sequential
   shapley_all of the module itself. *)
let test_minmax_batch_structured () =
  let db = ref Database.empty in
  for i = 0 to 23 do
    db := Database.add (Fact.of_ints "R" [ i; i mod 5 ]) !db
  done;
  for j = 0 to 4 do
    db := Database.add (Fact.of_ints "S" [ j ]) !db
  done;
  (* a singleton block: root value 7 realized by exactly one R and one S *)
  db := Database.add (Fact.of_ints "R" [ 99; 7 ]) !db;
  db := Database.add (Fact.of_ints "S" [ 7 ]) !db;
  (* an exogenous fact and an irrelevant relation *)
  db := Database.add ~provenance:Database.Exogenous (Fact.of_ints "R" [ 50; 0 ]) !db;
  db := Database.add (Fact.of_ints "T" [ 1 ]) !db;
  let db = !db in
  List.iter
    (fun alpha ->
      let a = Agg_query.make alpha (vid "R" 0) Catalog.q_xyy in
      let expected = Core.Minmax.shapley_all a db in
      List.iter
        (fun (jobs, cache) ->
          let actual, _ = Core.Batch.shapley_all ~jobs ~cache a db in
          check_same_results
            (Printf.sprintf "minmax structured (%s, jobs=%d, cache=%b)"
               (Aggregate.to_string alpha) jobs cache)
            expected actual)
        [ (1, true); (1, false); (4, true) ])
    [ Aggregate.Max; Aggregate.Min ]

let test_batch_cache_hits () =
  (* On a db with several hierarchy blocks the cached batch must actually
     hit: sibling blocks repeat across the per-fact loop. *)
  let a = Agg_query.make Aggregate.Max (vid "R" 0) Catalog.q_xyy in
  let db =
    List.fold_left
      (fun db f -> Database.add f db)
      Database.empty
      [
        Fact.of_ints "R" [ 1; 1 ]; Fact.of_ints "R" [ 2; 1 ]; Fact.of_ints "R" [ 3; 2 ];
        Fact.of_ints "S" [ 1 ]; Fact.of_ints "S" [ 2 ];
      ]
  in
  let _, stats = Core.Batch.shapley_all ~jobs:1 ~cache:true a db in
  match stats.Core.Batch.cache with
  | None -> Alcotest.fail "expected cache stats"
  | Some m ->
    Alcotest.(check bool)
      (Printf.sprintf "cache hits > 0 (%s)" (Core.Memo.stats_to_string m))
      true (m.Core.Memo.hits > 0)

let test_batch_outside_frontier () =
  let a = Agg_query.make Aggregate.Max (vid "R" 0) Catalog.q_exists in
  let db = Generate.random_database ~seed:0 ~config:small_config Catalog.q_exists in
  Alcotest.check_raises "Batch refuses out-of-frontier queries"
    (Invalid_argument "Batch.shapley_all: query is outside the tractability frontier")
    (fun () -> ignore (Core.Batch.shapley_all ~jobs:1 a db))

(* ------------------------------------------------------------------ *)
(* Solver.shapley_all: frontier dispatch and fallbacks                 *)
(* ------------------------------------------------------------------ *)

let exact_of name = function
  | Core.Solver.Exact v -> v
  | Core.Solver.Estimate _ -> Alcotest.failf "%s: expected exact outcome" name

let test_solver_all_parallel () =
  let a = Agg_query.make Aggregate.Max (vid "R" 0) Catalog.q_xyy in
  let db = Generate.random_database ~seed:3 ~config:small_config Catalog.q_xyy in
  let seq, rep_seq = Core.Solver.shapley_all ~jobs:1 ~cache:false a db in
  let par, rep_par = Core.Solver.shapley_all ~jobs:4 a db in
  Alcotest.(check bool) "within frontier" true rep_seq.Core.Solver.within_frontier;
  Alcotest.(check string) "same algorithm reported" rep_seq.Core.Solver.algorithm
    rep_par.Core.Solver.algorithm;
  check_same_results "solver parallel vs sequential"
    (List.map (fun (f, o) -> (f, exact_of "seq" o)) seq)
    (List.map (fun (f, o) -> (f, exact_of "par" o)) par)

(* Avg on q_xyy is all-hierarchical but not q-hierarchical: outside the
   Avg frontier, so shapley_all must fan the naive solver across the
   pool — and still match the per-fact fallback exactly. *)
let test_solver_all_naive_fallback () =
  let a = Agg_query.make Aggregate.Avg (vid "R" 0) Catalog.q_xyy in
  let found = ref false in
  let seed = ref 0 in
  while (not !found) && !seed < 20 do
    let db = Generate.random_database ~seed:!seed ~config:small_config Catalog.q_xyy in
    let n = Database.endo_size db in
    if n >= 2 && n <= 9 then begin
      found := true;
      let results, report = Core.Solver.shapley_all ~fallback:`Naive ~jobs:4 a db in
      Alcotest.(check bool) "outside frontier" false report.Core.Solver.within_frontier;
      let expected =
        List.map (fun f -> (f, Core.Solver.shapley_exact a db f)) (Database.endogenous db)
      in
      check_same_results "naive fallback batch"
        expected
        (List.map (fun (f, o) -> (f, exact_of "naive" o)) results)
    end;
    incr seed
  done;
  if not !found then Alcotest.fail "no usable instance for the naive fallback test"

let test_solver_all_monte_carlo_fallback () =
  let a = Agg_query.make Aggregate.Avg (vid "R" 0) Catalog.q_xyy in
  let db = Generate.random_database ~seed:1 ~config:small_config Catalog.q_xyy in
  let results, report = Core.Solver.shapley_all ~fallback:(`Monte_carlo 50) ~jobs:4 a db in
  Alcotest.(check bool) "outside frontier" false report.Core.Solver.within_frontier;
  Alcotest.(check int) "one outcome per endogenous fact" (Database.endo_size db)
    (List.length results);
  List.iter
    (fun (f, o) ->
      match o with
      | Core.Solver.Estimate e ->
        Alcotest.(check int)
          (Printf.sprintf "samples for %s" (Fact.to_string f))
          50 e.Core.Monte_carlo.samples
      | Core.Solver.Exact _ -> Alcotest.failf "expected an estimate for %s" (Fact.to_string f))
    results

(* ------------------------------------------------------------------ *)
(* Kernel counters under parallel solves                               *)
(* ------------------------------------------------------------------ *)

module B = Aggshap_arith.Bigint
module Tables = Core.Tables

(* With the memo cache off, the multiset of kernel invocations is a
   function of the workload alone, so the Atomic counters in Bigint and
   Tables must report exactly the same totals whatever the domain
   count. This is what makes --stats trustworthy for cost-model work
   under --jobs N: a racy int counter would drop increments. *)
let test_kernel_counts_jobs_stable () =
  let bstr (s : B.stats) =
    Printf.sprintf
      "school=%d karat=%d small=%d sqr=%d divmod=%d gcd=%d acc=%d promo=%d demo=%d"
      s.B.mul_schoolbook s.B.mul_karatsuba s.B.mul_small s.B.sqr s.B.divmod s.B.gcd
      s.B.acc_mul s.B.promotions s.B.demotions
  in
  let tstr (s : Tables.stats) =
    Printf.sprintf "conv=%d small=%d ntt=%d rat=%d folds=%d wsum=%d" s.Tables.convolve
      s.Tables.convolve_small s.Tables.convolve_ntt s.Tables.convolve_rat
      s.Tables.tree_folds s.Tables.weighted_sums
  in
  let total_work = ref 0 in
  List.iter
    (fun (name, alpha, tau, query) ->
      let a = Agg_query.make alpha tau query in
      let db = Generate.random_database ~seed:7 ~config:small_config query in
      if Database.endo_size db > 0 then begin
        let solve jobs = ignore (Core.Batch.shapley_all ~jobs ~cache:false a db) in
        (* Warm-up run: lazily built global tables (factorials, NTT
           prime pools) must not be charged to the first measured run. *)
        solve 1;
        let measure jobs =
          B.reset_stats ();
          Tables.reset_stats ();
          solve jobs;
          (B.stats (), Tables.stats ())
        in
        let b1, t1 = measure 1 in
        let bn, tn = measure 4 in
        Alcotest.(check string)
          (Printf.sprintf "%s: bigint counters jobs=1 vs jobs=4" name)
          (bstr b1) (bstr bn);
        Alcotest.(check string)
          (Printf.sprintf "%s: table counters jobs=1 vs jobs=4" name)
          (tstr t1) (tstr tn);
        total_work :=
          !total_work + b1.B.mul_small + b1.B.mul_schoolbook + b1.B.acc_mul
          + t1.Tables.convolve
      end)
    [ ("max q_xyy", Aggregate.Max, vid "R" 0, Catalog.q_xyy);
      ("dup q1", Aggregate.Has_duplicates, vmod "R" 0, Catalog.q1_sq);
      ("median q4", Aggregate.Median, vid "R" 1, Catalog.q4_q) ];
  (* Equality above must not be vacuous: the measured solves did real
     kernel work. *)
  Alcotest.(check bool) "measured runs exercised the kernels" true (!total_work > 0)

(* ------------------------------------------------------------------ *)
(* Solver.banzhaf: fact lookup on the out-of-frontier path             *)
(* ------------------------------------------------------------------ *)

let test_banzhaf_not_endogenous () =
  let a = Agg_query.make Aggregate.Avg (vid "R" 0) Catalog.q_xyy in
  let db =
    List.fold_left
      (fun db f -> Database.add f db)
      Database.empty
      [ Fact.of_ints "R" [ 1; 1 ]; Fact.of_ints "S" [ 1 ] ]
  in
  Alcotest.check_raises "missing fact raises"
    (Invalid_argument "Naive: fact is not endogenous in the database")
    (fun () -> ignore (Core.Solver.banzhaf a db (Fact.of_ints "R" [ 9; 9 ])))

let test_banzhaf_naive_lookup () =
  (* Outside the frontier, banzhaf of every endogenous fact must match a
     direct Game.banzhaf at that fact's own index — the old lookup kept
     scanning past the match. *)
  let a = Agg_query.make Aggregate.Avg (vid "R" 0) Catalog.q_xyy in
  let db = Generate.random_database ~seed:2 ~config:small_config Catalog.q_xyy in
  if Database.endo_size db = 0 then Alcotest.fail "empty instance"
  else begin
    let players, game = Core.Naive.game a db in
    Array.iteri
      (fun i f ->
        let expected = Core.Game.banzhaf game i in
        let actual = Core.Solver.banzhaf a db f in
        if not (Q.equal expected actual) then
          Alcotest.failf "banzhaf(%s): expected %s got %s" (Fact.to_string f)
            (Q.to_string expected) (Q.to_string actual))
      players
  end

let () =
  Alcotest.run "batch"
    [
      ( "pool",
        [
          Alcotest.test_case "ordering" `Quick test_pool_ordering;
          Alcotest.test_case "default jobs" `Quick test_pool_default_jobs;
          Alcotest.test_case "edge cases" `Quick test_pool_edge_cases;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
        ] );
      ( "memo",
        [
          Alcotest.test_case "hit/miss stats" `Quick test_memo_stats;
          Alcotest.test_case "disabled memo" `Quick test_memo_disabled;
        ] );
      ( "batch vs sequential",
        List.map
          (fun ((name, _, _, _) as fam) ->
            Alcotest.test_case name `Quick (batch_agrees fam))
          families
        @ [
            Alcotest.test_case "minmax structured blocks" `Quick test_minmax_batch_structured;
            Alcotest.test_case "cache actually hits" `Quick test_batch_cache_hits;
            Alcotest.test_case "outside frontier rejected" `Quick test_batch_outside_frontier;
          ] );
      ( "solver batch",
        [
          Alcotest.test_case "parallel = sequential" `Quick test_solver_all_parallel;
          Alcotest.test_case "naive fallback" `Quick test_solver_all_naive_fallback;
          Alcotest.test_case "monte-carlo fallback" `Quick test_solver_all_monte_carlo_fallback;
        ] );
      ( "kernel counters",
        [
          Alcotest.test_case "jobs=1 vs jobs=4 counts identical" `Quick
            test_kernel_counts_jobs_stable;
        ] );
      ( "banzhaf lookup",
        [
          Alcotest.test_case "not endogenous" `Quick test_banzhaf_not_endogenous;
          Alcotest.test_case "naive-path lookup" `Quick test_banzhaf_naive_lookup;
        ] );
    ]
