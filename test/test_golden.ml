(* Golden-corpus regression tests for the closed formulas of
   Propositions 4.2, 4.4 and 5.2, the Localization algorithms of
   Proposition 7.3, and the knowledge-compilation tier on
   non-hierarchical instances: fixed-seed instances whose exact outputs
   are pinned in golden.expected AND re-verified against the naive
   enumeration oracle on every run. A mismatch against the file flags an unintended
   change of semantics even when the change is self-consistent (a bug in
   both the closed form and the DP would slip past differential checks).

   Regenerate the file after an intended change with:
     GOLDEN_PRINT=1 dune exec test/test_golden.exe > test/golden.expected *)

module Q = Aggshap_arith.Rational
module Fact = Aggshap_relational.Fact
module Database = Aggshap_relational.Database
module Parser = Aggshap_cq.Parser
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query
module Core = Aggshap_core
module Lineage = Aggshap_lineage.Lineage

let q_single = Parser.parse_query_exn "Q(x, y) <- R(x, y)"

(* The canonical non-hierarchical pattern: x and y each shared by two
   atoms with T in both intersections. Outside every aggregate's
   frontier, so these cases pin the knowledge-compilation tier. *)
let q_rst = Parser.parse_query_exn "Q(x) <- R(x), T(x, y), S(y)"

let rst_db ~seed =
  let rng = Random.State.make [| seed; 0xddf |] in
  let facts = ref [] in
  for x = 0 to 2 do
    if Random.State.int rng 3 > 0 then facts := Fact.of_ints "R" [ x ] :: !facts
  done;
  for x = 0 to 2 do
    for y = 0 to 1 do
      if Random.State.int rng 2 = 0 then facts := Fact.of_ints "T" [ x; y ] :: !facts
    done
  done;
  for y = 0 to 1 do
    if Random.State.int rng 3 > 0 then facts := Fact.of_ints "S" [ y ] :: !facts
  done;
  Database.of_facts (List.rev !facts)

(* Single-atom instances: all facts endogenous, τ-values drawn from a
   small range so count-distinct sees collisions. *)
let single_atom_db ~seed n =
  let rng = Random.State.make [| seed; 0x901d |] in
  Database.of_facts
    (List.init n (fun i -> Fact.of_ints "R" [ i; Random.State.int rng 5 - 1 ]))

(* Localization instances: R(x,y), S(y), T(z) with every fact endogenous
   and few enough facts for the naive oracle. *)
let localization_db ~seed =
  let rng = Random.State.make [| seed; 0x10c |] in
  let facts = ref [] in
  for x = 0 to 2 do
    for y = 0 to 1 do
      if Random.State.int rng 2 = 0 then facts := Fact.of_ints "R" [ x; y ] :: !facts
    done
  done;
  for y = 0 to 1 do
    if Random.State.int rng 3 > 0 then facts := Fact.of_ints "S" [ y ] :: !facts
  done;
  List.iter
    (fun v -> facts := Fact.of_ints "T" [ v ] :: !facts)
    (List.sort_uniq Int.compare (List.init 3 (fun _ -> Random.State.int rng 7 - 2)));
  Database.of_facts (List.rev !facts)

let seeds = [ 11; 23; 47 ]

(* Each case: a label, the instance, the closed-form/localization
   implementation under test, and the naive reference it must agree
   with. *)
let cases =
  List.concat_map
    (fun seed ->
      let db6 = single_atom_db ~seed 6 in
      let tau = Value_fn.id ~rel:"R" ~pos:1 in
      let single name alpha closed =
        let a = Agg_query.make alpha tau q_single in
        (Printf.sprintf "%s seed=%d" name seed, a, db6, fun f -> closed a db6 f)
      in
      let loc_db = localization_db ~seed in
      let tau_t = Value_fn.id ~rel:"T" ~pos:0 in
      [ single "prop4.2-cdist" Aggregate.Count_distinct Core.Closed_form.cdist_single_atom;
        single "prop4.4-max" Aggregate.Max Core.Closed_form.max_single_atom;
        single "prop4.4-min" Aggregate.Min Core.Closed_form.min_single_atom;
        single "prop5.2-avg" Aggregate.Avg Core.Closed_form.avg_single_atom;
        ( Printf.sprintf "prop7.3-avg-on-T seed=%d" seed,
          Agg_query.make Aggregate.Avg tau_t Core.Localization.q_xyyz,
          loc_db,
          fun f -> Core.Localization.avg_on_t_shapley tau_t loc_db f );
        ( Printf.sprintf "prop7.3-med-on-T seed=%d" seed,
          Agg_query.make Aggregate.Median tau_t Core.Localization.q_xyyz,
          loc_db,
          fun f -> Core.Localization.median_on_t_shapley tau_t loc_db f );
        ( Printf.sprintf "prop7.3-dup-on-y seed=%d" seed,
          Agg_query.make Aggregate.Has_duplicates (Value_fn.id ~rel:"R" ~pos:1)
            Core.Localization.q_full,
          (let rs, _ = Database.restrict_relations [ "R"; "S" ] loc_db in
           rs),
          fun f ->
            let rs, _ = Database.restrict_relations [ "R"; "S" ] loc_db in
            Core.Localization.dup_on_y_shapley rs f ) ]
      @
      let kc_db = rst_db ~seed in
      let kc name alpha tau =
        let a = Agg_query.make alpha tau q_rst in
        (Printf.sprintf "%s seed=%d" name seed, a, kc_db,
         fun f -> Lineage.shapley a kc_db f)
      in
      [ kc "kc-count" Aggregate.Count (Value_fn.const ~rel:"R" Q.one);
        kc "kc-sum" Aggregate.Sum (Value_fn.id ~rel:"R" ~pos:0);
        kc "kc-max" Aggregate.Max (Value_fn.id ~rel:"R" ~pos:0);
        kc "kc-dup" Aggregate.Has_duplicates (Value_fn.const ~rel:"R" Q.one) ])
    seeds

let render () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "# Pinned exact outputs of the closed formulas (Props 4.2/4.4/5.2), the\n\
     # Localization algorithms (Prop 7.3), and the knowledge-compilation\n\
     # tier on non-hierarchical instances, all on fixed seeds.\n\
     # Regenerate after an intended semantic change:\n\
     #   GOLDEN_PRINT=1 dune exec test/test_golden.exe > test/golden.expected\n";
  List.iter
    (fun (label, _, db, f_of) ->
      List.iter
        (fun f ->
          Buffer.add_string buf
            (Printf.sprintf "%s %s -> %s\n" label (Fact.to_string f)
               (Q.to_string (f_of f))))
        (Database.endogenous db))
    cases;
  Buffer.contents buf

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_matches_golden_file () =
  let actual = render () in
  let expected = read_file "golden.expected" in
  if not (String.equal actual expected) then
    Alcotest.failf
      "golden outputs changed; if intended, regenerate golden.expected.\n\
       --- current outputs ---\n%s" actual

(* The file pins *verified* values: every line is also checked against
   the exponential enumeration oracle. *)
let test_matches_naive () =
  List.iter
    (fun (label, a, db, f_of) ->
      assert (Database.endo_size db <= 12);
      List.iter
        (fun f ->
          let expected = Core.Naive.shapley a db f in
          let actual = f_of f in
          if not (Q.equal expected actual) then
            Alcotest.failf "%s %s: closed form %s, naive %s" label (Fact.to_string f)
              (Q.to_string actual) (Q.to_string expected))
        (Database.endogenous db))
    cases

let () =
  if Sys.getenv_opt "GOLDEN_PRINT" <> None then print_string (render ())
  else
    Alcotest.run "golden"
      [ ( "golden corpus",
          [ Alcotest.test_case "matches pinned file" `Quick test_matches_golden_file;
            Alcotest.test_case "pinned values match naive oracle" `Slow
              test_matches_naive;
          ] );
      ]
