(* Property tests (qcheck) for the knowledge-compilation tier: the
   Shannon d-DNNF compiler against brute-force model counting (≤16
   variables), circuit-level Shapley against the permutation definition,
   structural d-DNNF invariants (decomposability, determinism, support),
   the formula-keyed cache as a pure optimization, and the whole
   lineage pipeline against naive enumeration on random trials. *)

module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module F = Aggshap_lineage.Formula
module D = Aggshap_lineage.Ddnnf
module L = Aggshap_lineage.Lineage
module Database = Aggshap_relational.Database
module Agg_query = Aggshap_agg.Agg_query
module Solver = Aggshap_core.Solver
module Naive = Aggshap_core.Naive
module Trial = Aggshap_check.Trial
module Fuzz = Aggshap_check.Fuzz

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* ------------------------------------------------------------------ *)
(* Random monotone formulas                                            *)
(* ------------------------------------------------------------------ *)

(* A pure description of a monotone formula, so the reference semantics
   ([eval_fd]) is independent of every simplification [Formula] does
   when the description is interned ([build]). *)
type fd =
  | FTrue
  | FFalse
  | FVar of int
  | FAnd of fd list
  | FOr of fd list

let rec fd_to_string = function
  | FTrue -> "T"
  | FFalse -> "F"
  | FVar v -> Printf.sprintf "x%d" v
  | FAnd fs -> "(" ^ String.concat " & " (List.map fd_to_string fs) ^ ")"
  | FOr fs -> "(" ^ String.concat " | " (List.map fd_to_string fs) ^ ")"

let rec eval_fd a = function
  | FTrue -> true
  | FFalse -> false
  | FVar v -> a v
  | FAnd fs -> List.for_all (eval_fd a) fs
  | FOr fs -> List.exists (eval_fd a) fs

let rec build store = function
  | FTrue -> F.tru store
  | FFalse -> F.fls store
  | FVar v -> F.var store v
  | FAnd fs -> F.and_ store (List.map (build store) fs)
  | FOr fs -> F.or_ store (List.map (build store) fs)

let gen_fd nvars =
  let open QCheck.Gen in
  let leaf =
    frequency
      [ (8, map (fun v -> FVar v) (int_range 0 (nvars - 1)));
        (1, return FTrue); (1, return FFalse) ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [ (2, leaf);
            (3, map (fun l -> FAnd l) (list_size (int_range 2 3) (self (depth - 1))));
            (3, map (fun l -> FOr l) (list_size (int_range 2 3) (self (depth - 1)))) ])
    3

(* (number of players, formula over them) *)
let arb_inst lo hi =
  QCheck.make
    ~print:(fun (n, f) -> Printf.sprintf "n=%d %s" n (fd_to_string f))
    QCheck.Gen.(int_range lo hi >>= fun n -> map (fun f -> (n, f)) (gen_fd n))

let popcount mask =
  let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
  go 0 mask

let mem mask v = mask land (1 lsl v) <> 0

(* Per-size satisfying-subset counts of [fd] over n variables, by
   enumerating all 2^n assignments. *)
let brute_counts n fd =
  let counts = Array.make (n + 1) 0 in
  for mask = 0 to (1 lsl n) - 1 do
    if eval_fd (mem mask) fd then
      counts.(popcount mask) <- counts.(popcount mask) + 1
  done;
  counts

(* The permutation definition of the Shapley value of player [p] in the
   Boolean game u(S) = 1[fd(S)], as a subset sum. *)
let brute_shapley n fd p =
  let fact k =
    let r = ref 1 in
    for i = 2 to k do r := !r * i done;
    !r
  in
  let total = ref Q.zero in
  for mask = 0 to (1 lsl n) - 1 do
    if not (mem mask p) then begin
      let u0 = eval_fd (mem mask) fd in
      let u1 = eval_fd (mem (mask lor (1 lsl p))) fd in
      if u1 <> u0 then begin
        let s = popcount mask in
        let w = Q.of_ints (fact s * fact (n - 1 - s)) (fact n) in
        total := (if u1 then Q.add !total w else Q.sub !total w)
      end
    end
  done;
  !total

(* ------------------------------------------------------------------ *)
(* Formula layer                                                       *)
(* ------------------------------------------------------------------ *)

let formula_props =
  [ prop "interning: equal descriptions share one id" 300 (arb_inst 1 8)
      (fun (_, fd) ->
        let store = F.create_store () in
        F.id (build store fd) = F.id (build store fd));
    prop "eval agrees with the pure description" 300 (arb_inst 1 10)
      (fun (n, fd) ->
        let store = F.create_store () in
        let f = build store fd in
        let ok = ref true in
        for mask = 0 to (1 lsl n) - 1 do
          if F.eval f (mem mask) <> eval_fd (mem mask) fd then ok := false
        done;
        !ok);
    prop "cofactor is the semantic cofactor" 300 (arb_inst 1 8)
      (fun (n, fd) ->
        let store = F.create_store () in
        let f = build store fd in
        let ok = ref true in
        for v = 0 to n - 1 do
          List.iter
            (fun b ->
              let g = F.cond store f v b in
              if List.mem v (F.vars g) then ok := false;
              for mask = 0 to (1 lsl n) - 1 do
                let a u = if u = v then b else mem mask u in
                if F.eval g (mem mask) <> F.eval f a then ok := false
              done)
            [ true; false ]
        done;
        !ok);
    prop "vars covers the semantic support" 300 (arb_inst 1 8)
      (fun (n, fd) ->
        let store = F.create_store () in
        let f = build store fd in
        let depends v =
          let flips = ref false in
          for mask = 0 to (1 lsl n) - 1 do
            let a0 u = if u = v then false else mem mask u in
            let a1 u = if u = v then true else mem mask u in
            if F.eval f a0 <> F.eval f a1 then flips := true
          done;
          !flips
        in
        (* Simplification may keep a var the semantics ignores (e.g. a
           subsumed minterm's partner), but never drop one it needs. *)
        List.for_all (fun v -> List.mem v (F.vars f)) (List.filter depends (List.init n Fun.id)));
  ]

(* ------------------------------------------------------------------ *)
(* d-DNNF compiler                                                     *)
(* ------------------------------------------------------------------ *)

(* Structural d-DNNF invariants, checked over the whole DAG: a decision
   variable occurs in neither child (decomposability — determinism is
   by the ⟨v,hi,lo⟩ shape), and the recorded support is exactly the
   children's supports plus the decision variable. *)
let rec circuit_wellformed seen node =
  match node with
  | D.True | D.False -> true
  | D.Decision { id; var; hi; lo; _ } ->
    if Hashtbl.mem seen id then true
    else begin
      Hashtbl.add seen id ();
      (not (F.ISet.mem var (D.node_vars hi)))
      && (not (F.ISet.mem var (D.node_vars lo)))
      && F.ISet.equal (D.node_vars node)
           (F.ISet.add var (F.ISet.union (D.node_vars hi) (D.node_vars lo)))
      && circuit_wellformed seen hi
      && circuit_wellformed seen lo
    end

let ddnnf_props =
  [ prop "model counts match brute force (≤10 vars)" 300 (arb_inst 1 10)
      (fun (n, fd) ->
        let store = F.create_store () in
        let mgr = D.create store in
        let c = D.compile mgr (build store fd) in
        let counts = D.model_counts mgr ~n c in
        let expected = brute_counts n fd in
        Array.length counts = n + 1
        && Array.for_all2 (fun b e -> B.equal b (B.of_int e)) counts expected);
    prop "model counts match brute force (≤16 vars)" 40 (arb_inst 11 16)
      (fun (n, fd) ->
        let store = F.create_store () in
        let mgr = D.create store in
        let c = D.compile mgr (build store fd) in
        let counts = D.model_counts mgr ~n c in
        let expected = brute_counts n fd in
        Array.for_all2 (fun b e -> B.equal b (B.of_int e)) counts expected);
    prop "circuits are decomposable with exact supports" 300 (arb_inst 1 10)
      (fun (_, fd) ->
        let store = F.create_store () in
        let mgr = D.create store in
        circuit_wellformed (Hashtbl.create 16) (D.compile mgr (build store fd)));
    prop "conditioning removes the variable and fixes it" 200 (arb_inst 1 8)
      (fun (n, fd) ->
        let store = F.create_store () in
        let mgr = D.create store in
        let c = D.compile mgr (build store fd) in
        let ok = ref true in
        for v = 0 to n - 1 do
          List.iter
            (fun b ->
              let c' = D.condition mgr c v b in
              if F.ISet.mem v (D.node_vars c') then ok := false;
              (* Counting c' over the other n-1 players must match the
                 brute force of the description with v fixed to b.
                 Reduced player u < v keeps its index; u ≥ v was u+1. *)
              let counts = D.model_counts mgr ~n:(n - 1) c' in
              let expected = Array.make n 0 in
              for mask = 0 to (1 lsl (n - 1)) - 1 do
                let a u = if u = v then b else mem mask (if u < v then u else u - 1) in
                if eval_fd a fd then
                  expected.(popcount mask) <- expected.(popcount mask) + 1
              done;
              if
                not
                  (Array.for_all2 (fun bb e -> B.equal bb (B.of_int e)) counts expected)
              then ok := false)
            [ true; false ]
        done;
        !ok);
    prop "shapley_diff matches the permutation definition" 200 (arb_inst 1 7)
      (fun (n, fd) ->
        let store = F.create_store () in
        let mgr = D.create store in
        let c = D.compile mgr (build store fd) in
        let ok = ref true in
        for p = 0 to n - 1 do
          if not (Q.equal (D.shapley_diff mgr ~n c p) (brute_shapley n fd p)) then
            ok := false
        done;
        !ok);
    prop "circuit Shapley satisfies efficiency" 200 (arb_inst 1 8)
      (fun (n, fd) ->
        let store = F.create_store () in
        let mgr = D.create store in
        let c = D.compile mgr (build store fd) in
        let total = ref Q.zero in
        for p = 0 to n - 1 do
          total := Q.add !total (D.shapley_diff mgr ~n c p)
        done;
        let grand = eval_fd (fun _ -> true) fd and empty = eval_fd (fun _ -> false) fd in
        let expected =
          Q.sub (if grand then Q.one else Q.zero) (if empty then Q.one else Q.zero)
        in
        Q.equal !total expected);
    prop "cache off is semantically identical" 200 (arb_inst 1 9)
      (fun (n, fd) ->
        let store = F.create_store () in
        let cached = D.create ~cache:true store in
        let uncached = D.create ~cache:false store in
        let c1 = D.compile cached (build store fd) in
        let c2 = D.compile uncached (build store fd) in
        let m1 = D.model_counts cached ~n c1 in
        let m2 = D.model_counts uncached ~n c2 in
        Array.for_all2 B.equal m1 m2
        && List.for_all
             (fun p -> Q.equal (D.shapley_diff cached ~n c1 p) (D.shapley_diff uncached ~n c2 p))
             (List.init n Fun.id));
  ]

(* ------------------------------------------------------------------ *)
(* End-to-end: lineage pipeline vs naive enumeration                   *)
(* ------------------------------------------------------------------ *)

(* Random oracle trials (the same generator the fuzzer uses): wherever
   the tier applies, Lineage.shapley_all must be exact-rational
   identical to per-fact naive enumeration — inside the frontier
   included. *)
let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000)

let lineage_pipeline_props =
  [ prop "kc equals naive enumeration on random trials" 60 arb_seed (fun seed ->
        let t = Trial.generate ~max_endo:6 ~seed () in
        let a = Trial.agg_query t in
        QCheck.assume (L.supports a.Agg_query.alpha);
        QCheck.assume (Database.endo_size t.Trial.db > 0);
        let kc = L.shapley_all a t.Trial.db in
        let naive =
          List.map (fun f -> (f, Naive.shapley a t.Trial.db f))
            (Database.endogenous t.Trial.db)
        in
        List.length kc = List.length naive
        && List.for_all2
             (fun (f1, v1) (f2, v2) ->
               Aggshap_relational.Fact.equal f1 f2 && Q.equal v1 v2)
             kc naive);
    prop "kc cache on/off bit-identical end to end" 40 arb_seed (fun seed ->
        let t = Trial.generate ~max_endo:6 ~seed () in
        let a = Trial.agg_query t in
        QCheck.assume (L.supports a.Agg_query.alpha);
        let on = L.shapley_all ~cache:true a t.Trial.db in
        let off = L.shapley_all ~cache:false a t.Trial.db in
        List.for_all2
          (fun (f1, v1) (f2, v2) -> Aggshap_relational.Fact.equal f1 f2 && Q.equal v1 v2)
          on off);
    prop "solver dispatch agrees with direct pipeline" 40 arb_seed (fun seed ->
        let t = Trial.generate ~max_endo:6 ~seed () in
        let a = Trial.agg_query t in
        QCheck.assume (not (Solver.within_frontier a.Agg_query.alpha a.Agg_query.query));
        QCheck.assume (L.supports a.Agg_query.alpha);
        QCheck.assume (Database.endo_size t.Trial.db > 0);
        let direct = L.shapley_all a t.Trial.db in
        let dispatched =
          fst (Solver.shapley_all ~fallback:`Knowledge_compilation ~jobs:1 a t.Trial.db)
          |> List.map (fun (f, o) ->
                 match o with
                 | Solver.Exact v -> (f, v)
                 | Solver.Estimate _ -> Alcotest.fail "unexpected estimate")
        in
        List.for_all2
          (fun (f1, v1) (f2, v2) -> Aggshap_relational.Fact.equal f1 f2 && Q.equal v1 v2)
          direct dispatched);
  ]

let () =
  Alcotest.run "lineage"
    [ ("formula", formula_props);
      ("ddnnf", ddnnf_props);
      ("pipeline", lineage_pipeline_props);
    ]
