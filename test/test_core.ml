(* Core correctness tests.

   The central strategy: every polynomial algorithm must agree — as exact
   rationals — with the naive exponential solver on random databases of
   its query class, across value functions localized on different atoms.
   On top of that: Shapley axioms on random games, the closed formulas,
   and the solver's dispatch logic. *)

module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module Cq = Aggshap_cq.Cq
module Parser = Aggshap_cq.Parser
module Hierarchy = Aggshap_cq.Hierarchy
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Value = Aggshap_relational.Value
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query
module Core = Aggshap_core
module Catalog = Aggshap_workload.Catalog
module Generate = Aggshap_workload.Generate

let vid rel pos = Value_fn.id ~rel ~pos

let vmod rel pos =
  Value_fn.custom ~rel ~descr:(Printf.sprintf "mod2[%d]" pos) (fun args ->
      match Value.as_int args.(pos) with
      | Some n -> Q.of_int (((n mod 2) + 2) mod 2)
      | None -> invalid_arg "vmod: non-integer")

let vconst rel n = Value_fn.const ~rel (Q.of_int n)

let small_config = { Generate.tuples_per_relation = 3; domain = 3; exo_fraction = 0.3 }

(* Compare a polynomial shapley_all against the naive oracle over random
   databases. *)
let agree_with_naive ?(seeds = 8) ?(config = small_config) name alpha tau query dp_shapley_all
    () =
  let a = Agg_query.make alpha tau query in
  let tested = ref 0 in
  let seed = ref 0 in
  while !tested < seeds && !seed < seeds * 5 do
    let db = Generate.random_database ~seed:!seed ~config query in
    incr seed;
    let n = Database.endo_size db in
    if n >= 1 && n <= 11 then begin
      incr tested;
      let expected = Core.Naive.shapley_all a db in
      let actual = dp_shapley_all a db in
      List.iter2
        (fun (f1, v1) (f2, v2) ->
          if not (Fact.equal f1 f2) then Alcotest.failf "%s: fact order mismatch" name;
          if not (Q.equal v1 v2) then
            Alcotest.failf "%s (seed %d): Shapley(%s) naive=%s dp=%s" name (!seed - 1)
              (Fact.to_string f1) (Q.to_string v1) (Q.to_string v2))
        expected actual
    end
  done;
  if !tested < seeds then Alcotest.failf "%s: not enough usable instances" name

(* Compare a DP sum_k vector against naive enumeration. *)
let sumk_agrees ?(seeds = 6) ?(config = small_config) name alpha tau query dp_sum_k () =
  let a = Agg_query.make alpha tau query in
  let tested = ref 0 in
  let seed = ref 100 in
  while !tested < seeds && !seed < 100 + (seeds * 5) do
    let db = Generate.random_database ~seed:!seed ~config query in
    incr seed;
    let n = Database.endo_size db in
    if n >= 1 && n <= 10 then begin
      incr tested;
      let expected = Core.Naive.sum_k a db in
      let actual = dp_sum_k a db in
      Array.iteri
        (fun k v ->
          if not (Q.equal v actual.(k)) then
            Alcotest.failf "%s (seed %d): sum_%d naive=%s dp=%s" name (!seed - 1) k
              (Q.to_string v) (Q.to_string actual.(k)))
        expected
    end
  done;
  if !tested < seeds then Alcotest.failf "%s: not enough usable instances" name

(* ------------------------------------------------------------------ *)
(* Game axioms                                                         *)
(* ------------------------------------------------------------------ *)

let random_game rng n =
  (* A random utility with v(∅) = 0. *)
  let values = Hashtbl.create 64 in
  Core.Game.make ~n (fun mask ->
      if mask = 0 then Q.zero
      else begin
        match Hashtbl.find_opt values mask with
        | Some v -> v
        | None ->
          let v = Q.of_int (Random.State.int rng 21 - 10) in
          Hashtbl.add values mask v;
          v
      end)

let test_game_efficiency () =
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 20 do
    let g = random_game rng (2 + Random.State.int rng 6) in
    if not (Q.is_zero (Core.Game.efficiency_gap g)) then
      Alcotest.fail "efficiency axiom violated"
  done

let test_game_symmetry_null () =
  (* A game where players 0 and 1 are interchangeable and player 2 is
     null: v(C) = 1 if C contains player 0 or 1, else 0. *)
  let g =
    Core.Game.make ~n:3 (fun mask -> if mask land 0b011 <> 0 then Q.one else Q.zero)
  in
  let s = Core.Game.shapley_all g in
  Alcotest.(check string) "symmetry" (Q.to_string s.(0)) (Q.to_string s.(1));
  Alcotest.(check string) "null player" "0" (Q.to_string s.(2));
  Alcotest.(check string) "value" "1/2" (Q.to_string s.(0))

let test_game_linearity () =
  let rng = Random.State.make [| 11 |] in
  for _ = 1 to 10 do
    let n = 2 + Random.State.int rng 4 in
    let g1 = random_game rng n and g2 = random_game rng n in
    let g_sum = Core.Game.make ~n (fun m -> Q.add (g1.Core.Game.utility m) (g2.Core.Game.utility m)) in
    for p = 0 to n - 1 do
      let lhs = Core.Game.shapley g_sum p in
      let rhs = Q.add (Core.Game.shapley g1 p) (Core.Game.shapley g2 p) in
      if not (Q.equal lhs rhs) then Alcotest.fail "linearity violated"
    done
  done

let test_game_banzhaf () =
  (* For the unanimity game both indices give 1/n to... Banzhaf of a
     2-player unanimity game: each pivotal in 1 of 2 coalitions. *)
  let g = Core.Game.make ~n:2 (fun mask -> if mask = 3 then Q.one else Q.zero) in
  Alcotest.(check string) "banzhaf" "1/2" (Q.to_string (Core.Game.banzhaf g 0));
  Alcotest.(check string) "shapley" "1/2" (Q.to_string (Core.Game.shapley g 0))

let test_game_guard () =
  Alcotest.(check bool) "max_players guard" true
    (try ignore (Core.Game.make ~n:60 (fun _ -> Q.zero)); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Boolean membership DP                                               *)
(* ------------------------------------------------------------------ *)

(* The indicator AggCQ: Max ∘ (τ≡1) ∘ Q equals "Q_bool is satisfied". *)
let boolean_agrees name query first_rel () =
  let q = Cq.make_boolean query in
  let a = Agg_query.make Aggregate.Max (vconst first_rel 1) q in
  let tested = ref 0 in
  let seed = ref 0 in
  while !tested < 8 && !seed < 40 do
    let db = Generate.random_database ~seed:!seed ~config:small_config query in
    incr seed;
    let n = Database.endo_size db in
    if n >= 1 && n <= 11 then begin
      incr tested;
      List.iter
        (fun (f, expected) ->
          let actual = Core.Boolean_dp.shapley q db f in
          if not (Q.equal expected actual) then
            Alcotest.failf "%s (seed %d): %s naive=%s dp=%s" name (!seed - 1)
              (Fact.to_string f) (Q.to_string expected) (Q.to_string actual))
        (Core.Naive.shapley_all a db)
    end
  done

let test_boolean_rejects_nonhierarchical () =
  let db = Generate.random_database ~seed:1 Catalog.q_nonhier in
  Alcotest.(check bool) "raises" true
    (try ignore (Core.Boolean_dp.counts Catalog.q_nonhier db); false
     with Invalid_argument _ -> true)

let test_boolean_counts_small () =
  (* Q() <- R(x): counts of k-subsets with nonempty R. *)
  let q = Cq.make_boolean Catalog.q_single in
  let db = Database.of_facts [ Fact.of_ints "R" [ 1 ]; Fact.of_ints "R" [ 2 ] ] in
  let c = Core.Boolean_dp.counts q db in
  Alcotest.(check (list string)) "counts" [ "0"; "2"; "1" ]
    (Array.to_list (Array.map B.to_string c));
  (* With one exogenous R-fact the query is always true. *)
  let db2 = Database.add ~provenance:Database.Exogenous (Fact.of_ints "R" [ 3 ]) db in
  let c2 = Core.Boolean_dp.counts q db2 in
  Alcotest.(check (list string)) "exo makes it certain" [ "1"; "2"; "1" ]
    (Array.to_list (Array.map B.to_string c2))

(* ------------------------------------------------------------------ *)
(* Monte Carlo                                                         *)
(* ------------------------------------------------------------------ *)

let test_monte_carlo_converges () =
  let a = Agg_query.make Aggregate.Max (vid "R" 0) Catalog.q_xyy in
  let db = Generate.random_database ~seed:3 ~config:small_config Catalog.q_xyy in
  match Database.endogenous db with
  | [] -> Alcotest.fail "empty instance"
  | f :: _ ->
    let exact = Q.to_float (Core.Naive.shapley a db f) in
    let est = Core.Monte_carlo.shapley ~seed:42 ~samples:4000 a db f in
    let err = abs_float (est.Core.Monte_carlo.mean -. exact) in
    let bound = (5.0 *. est.Core.Monte_carlo.std_error) +. 1e-9 in
    if err > bound then
      Alcotest.failf "monte carlo off: exact=%f est=%f ± %f" exact
        est.Core.Monte_carlo.mean est.Core.Monte_carlo.std_error

(* ------------------------------------------------------------------ *)
(* Closed forms                                                        *)
(* ------------------------------------------------------------------ *)

let single_atom_db seed =
  (* All endogenous, single unary relation with repeating τ-values. *)
  let rng = Random.State.make [| seed |] in
  let n = 2 + Random.State.int rng 6 in
  let facts = List.init n (fun i -> Fact.of_ints "R" [ i; Random.State.int rng 4 ]) in
  Database.of_facts facts

let q_pair = Parser.parse_query_exn "Q(u, v) <- R(u, v)"

let closed_form_agrees name alpha closed () =
  let tau = vid "R" 1 in
  let a = Agg_query.make alpha tau q_pair in
  for seed = 0 to 7 do
    let db = single_atom_db seed in
    List.iter
      (fun (f, expected) ->
        let actual = closed a db f in
        if not (Q.equal expected actual) then
          Alcotest.failf "%s (seed %d): %s naive=%s closed=%s" name seed (Fact.to_string f)
            (Q.to_string expected) (Q.to_string actual))
      (Core.Naive.shapley_all a db)
  done

let test_closed_form_guards () =
  let a = Agg_query.make Aggregate.Avg (vid "R" 0) Catalog.q_xyy in
  let db = Database.of_facts [ Fact.of_ints "R" [ 1; 2 ]; Fact.of_ints "S" [ 2 ] ] in
  Alcotest.(check bool) "rejects multi-atom query" true
    (try ignore (Core.Closed_form.avg_single_atom a db (Fact.of_ints "R" [ 1; 2 ])); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Solver dispatch                                                     *)
(* ------------------------------------------------------------------ *)

let test_solver_frontiers () =
  let check_frontier alpha cls =
    Alcotest.(check string)
      (Aggregate.to_string alpha)
      (Hierarchy.cls_to_string cls)
      (Hierarchy.cls_to_string (Core.Solver.frontier alpha))
  in
  check_frontier Aggregate.Sum Hierarchy.Exists_hierarchical;
  check_frontier Aggregate.Count Hierarchy.Exists_hierarchical;
  check_frontier Aggregate.Min Hierarchy.All_hierarchical;
  check_frontier Aggregate.Max Hierarchy.All_hierarchical;
  check_frontier Aggregate.Count_distinct Hierarchy.All_hierarchical;
  check_frontier Aggregate.Avg Hierarchy.Q_hierarchical;
  check_frontier Aggregate.Median Hierarchy.Q_hierarchical;
  check_frontier (Aggregate.Quantile (Q.of_ints 1 3)) Hierarchy.Q_hierarchical;
  check_frontier Aggregate.Has_duplicates Hierarchy.Sq_hierarchical

let test_solver_within_frontier () =
  (* Figure 1, operationally: Avg is tractable on q-hierarchical queries
     but not on q_xyy; Max is tractable on q_xyy; Dup is not tractable on
     q_xyy_full. *)
  Alcotest.(check bool) "avg on q4" true (Core.Solver.within_frontier Aggregate.Avg Catalog.q4_q);
  Alcotest.(check bool) "avg on q_xyy" false
    (Core.Solver.within_frontier Aggregate.Avg Catalog.q_xyy);
  Alcotest.(check bool) "max on q_xyy" true
    (Core.Solver.within_frontier Aggregate.Max Catalog.q_xyy);
  Alcotest.(check bool) "dup on q_xyy_full" false
    (Core.Solver.within_frontier Aggregate.Has_duplicates Catalog.q_xyy_full);
  Alcotest.(check bool) "dup on q1" true
    (Core.Solver.within_frontier Aggregate.Has_duplicates Catalog.q1_sq);
  Alcotest.(check bool) "sum on q_exists" true
    (Core.Solver.within_frontier Aggregate.Sum Catalog.q_exists);
  Alcotest.(check bool) "max on q_exists" false
    (Core.Solver.within_frontier Aggregate.Max Catalog.q_exists)

let test_solver_dispatch_and_fallback () =
  let a = Agg_query.make Aggregate.Avg (vid "R" 0) Catalog.q_xyy in
  let db = Generate.random_database ~seed:5 ~config:small_config Catalog.q_xyy in
  match Database.endogenous db with
  | [] -> Alcotest.fail "empty instance"
  | f :: _ ->
    (* Outside the frontier: naive fallback must match Naive. *)
    let outcome, report = Core.Solver.shapley a db f in
    Alcotest.(check bool) "outside frontier" false report.Core.Solver.within_frontier;
    (match outcome with
     | Core.Solver.Exact v ->
       Alcotest.(check string) "naive fallback" (Q.to_string (Core.Naive.shapley a db f))
         (Q.to_string v)
     | Core.Solver.Estimate _ -> Alcotest.fail "expected exact");
    Alcotest.(check bool) "fail mode raises" true
      (try ignore (Core.Solver.shapley ~fallback:`Fail a db f); false
       with Invalid_argument _ -> true);
    (* Inside the frontier. *)
    let a2 = Agg_query.make Aggregate.Max (vid "R" 0) Catalog.q_xyy in
    let _, report2 = Core.Solver.shapley a2 db f in
    Alcotest.(check bool) "inside frontier" true report2.Core.Solver.within_frontier

let test_solver_efficiency_axiom () =
  (* End-to-end: the DP Shapley values of all facts sum to A(D) − A(Dˣ). *)
  let combos =
    [ (Aggregate.Max, vid "R" 0, Catalog.q_xyy);
      (Aggregate.Avg, vid "R" 1, Catalog.q_xyy_full);
      (Aggregate.Has_duplicates, vmod "R" 0, Catalog.q1_sq);
      (Aggregate.Sum, vid "R" 0, Catalog.q_exists);
    ]
  in
  List.iter
    (fun (alpha, tau, query) ->
      let a = Agg_query.make alpha tau query in
      for seed = 0 to 3 do
        let db = Generate.random_database ~seed ~config:small_config query in
        if Database.endo_size db >= 1 then begin
          let results, _ = Core.Solver.shapley_all ~fallback:`Fail a db in
          let total =
            List.fold_left
              (fun acc (_, o) ->
                match o with
                | Core.Solver.Exact v -> Q.add acc v
                | Core.Solver.Estimate _ -> Alcotest.fail "expected exact")
              Q.zero results
          in
          let exo = Database.filter (fun _ p -> p = Database.Exogenous) db in
          let expected = Q.sub (Agg_query.eval a db) (Agg_query.eval a exo) in
          if not (Q.equal total expected) then
            Alcotest.failf "efficiency: total=%s expected=%s (%s seed %d)"
              (Q.to_string total) (Q.to_string expected) (Aggregate.to_string alpha) seed
        end
      done)
    combos

(* ------------------------------------------------------------------ *)
(* Query corner cases shared by several DPs                            *)
(* ------------------------------------------------------------------ *)
(* convolution shape dispatch                                          *)
(* ------------------------------------------------------------------ *)

(* Tables.convolve picks between a zero-skipping scatter loop and a
   multiply-accumulate path by operand shape: the dense path needs both
   operands at least acc_threshold (8) long AND mostly nonzero. The DP
   unit tests work on small tables that never reach the dense path, so
   each branch gets a named case here, checked against a schoolbook
   reference. *)
let reference_convolve a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb - 1) B.zero in
  for i = 0 to la - 1 do
    for j = 0 to lb - 1 do
      out.(i + j) <- B.add out.(i + j) (B.mul a.(i) b.(j))
    done
  done;
  out

let counts_testable =
  Alcotest.testable
    (fun ppf t ->
      Format.fprintf ppf "[|%s|]"
        (String.concat "; " (Array.to_list (Array.map B.to_string t))))
    (fun a b -> Array.length a = Array.length b && Array.for_all2 B.equal a b)

let test_convolve_shape name a b () =
  Alcotest.check counts_testable name (reference_convolve a b) (Core.Tables.convolve a b);
  Alcotest.check counts_testable (name ^ " (flipped)") (reference_convolve b a)
    (Core.Tables.convolve b a)

let dense_ramp n = Array.init n (fun i -> B.of_int (i + 1))
let sparse_spikes n = Array.init n (fun i -> if i mod 7 = 0 then B.of_int (i + 2) else B.zero)

let convolve_shape_cases =
  [ (* min length below the threshold: scatter, however dense. *)
    ("thin x long", dense_ramp 3, dense_ramp 20);
    ("thin x thin", dense_ramp 2, dense_ramp 2);
    (* long operands, mostly zeros: density check keeps the scatter. *)
    ("sparse x sparse", sparse_spikes 16, sparse_spikes 16);
    ("sparse x dense", sparse_spikes 16, dense_ramp 16);
    (* both long and mostly nonzero: the multiply-accumulate path. *)
    ("dense x dense", dense_ramp 12, dense_ramp 12);
    ("dense at threshold", dense_ramp 8, dense_ramp 8);
    ("dense asymmetric", dense_ramp 9, dense_ramp 30);
    (* degenerate shapes. *)
    ("singleton", [| B.of_int 5 |], dense_ramp 10);
    ("all zeros", Array.make 10 B.zero, dense_ramp 10) ]

let test_convolve_many_mixed_shapes () =
  let ts = [ dense_ramp 12; sparse_spikes 16; dense_ramp 3; dense_ramp 9 ] in
  let expected = List.fold_left reference_convolve [| B.one |] ts in
  Alcotest.check counts_testable "balanced fold matches reference" expected
    (Core.Tables.convolve_many ts)

(* ------------------------------------------------------------------ *)

let q_diag = Parser.parse_query_exn "Q(x) <- R(x, x), S(x)"
let q_const_atom = Parser.parse_query_exn "Q(x) <- R(x, 5), S(x)"
let q_three = Parser.parse_query_exn "Q(x) <- R(x, y), S(x), T(x)"

let () =
  let minmax = Core.Minmax.shapley_all in
  let avgq = Core.Avg_quantile.shapley_all in
  let dup = Core.Dup.shapley_all in
  let cdist = Core.Cdist.shapley_all in
  let sumcount = Core.Sum_count.shapley_all in
  Alcotest.run "core"
    [ ( "convolution dispatch",
        List.map
          (fun (name, a, b) ->
            Alcotest.test_case name `Quick (test_convolve_shape name a b))
          convolve_shape_cases
        @ [ Alcotest.test_case "convolve_many mixed shapes" `Quick
              test_convolve_many_mixed_shapes ] );
      ( "game",
        [ Alcotest.test_case "efficiency" `Quick test_game_efficiency;
          Alcotest.test_case "symmetry and null player" `Quick test_game_symmetry_null;
          Alcotest.test_case "linearity" `Quick test_game_linearity;
          Alcotest.test_case "banzhaf" `Quick test_game_banzhaf;
          Alcotest.test_case "player guard" `Quick test_game_guard;
        ] );
      ( "boolean dp",
        [ Alcotest.test_case "counts small" `Quick test_boolean_counts_small;
          Alcotest.test_case "vs naive: q_xyy" `Quick (boolean_agrees "bool q_xyy" Catalog.q_xyy "R");
          Alcotest.test_case "vs naive: q1" `Quick (boolean_agrees "bool q1" Catalog.q1_sq "R");
          Alcotest.test_case "vs naive: q3 (disconnected)" `Quick
            (boolean_agrees "bool q3" Catalog.q3_sq "R");
          Alcotest.test_case "vs naive: q_xyy_full" `Quick
            (boolean_agrees "bool full" Catalog.q_xyy_full "R");
          Alcotest.test_case "vs naive: diagonal atom" `Quick
            (boolean_agrees "bool diag" q_diag "R");
          Alcotest.test_case "rejects non-hierarchical" `Quick
            test_boolean_rejects_nonhierarchical;
        ] );
      ( "sum/count",
        [ Alcotest.test_case "sum vs naive: q_exists" `Quick
            (agree_with_naive "sum q_exists" Aggregate.Sum (vid "R" 0) Catalog.q_exists
               sumcount);
          Alcotest.test_case "sum vs naive: q_xyy" `Quick
            (agree_with_naive "sum q_xyy" Aggregate.Sum (vid "R" 0) Catalog.q_xyy sumcount);
          Alcotest.test_case "count vs naive: q_course" `Quick
            (agree_with_naive "count course" Aggregate.Count (vconst "Earns" 1)
               Catalog.q_course sumcount);
          Alcotest.test_case "sum vs naive: q3 (disconnected)" `Quick
            (agree_with_naive "sum q3" Aggregate.Sum (vid "T" 0) Catalog.q3_sq sumcount);
        ] );
      ( "count-distinct",
        [ Alcotest.test_case "vs naive: q_xyy" `Quick
            (agree_with_naive "cdist q_xyy" Aggregate.Count_distinct (vmod "R" 0)
               Catalog.q_xyy cdist);
          Alcotest.test_case "vs naive: q4" `Quick
            (agree_with_naive "cdist q4" Aggregate.Count_distinct (vmod "R" 1) Catalog.q4_q
               cdist);
          Alcotest.test_case "vs naive: q3" `Quick
            (agree_with_naive "cdist q3" Aggregate.Count_distinct (vmod "T" 0) Catalog.q3_sq
               cdist);
        ] );
      ( "min/max",
        [ Alcotest.test_case "max vs naive: q_xyy" `Quick
            (agree_with_naive "max q_xyy" Aggregate.Max (vid "R" 0) Catalog.q_xyy minmax);
          Alcotest.test_case "min vs naive: q_xyy" `Quick
            (agree_with_naive "min q_xyy" Aggregate.Min (vid "R" 0) Catalog.q_xyy minmax);
          Alcotest.test_case "max vs naive: q1" `Quick
            (agree_with_naive "max q1" Aggregate.Max (vid "S" 0) Catalog.q1_sq minmax);
          Alcotest.test_case "max vs naive: q3 (disconnected)" `Quick
            (agree_with_naive "max q3" Aggregate.Max (vid "T" 0) Catalog.q3_sq minmax);
          Alcotest.test_case "max vs naive: q2" `Quick
            (agree_with_naive "max q2" Aggregate.Max (vid "S" 1) Catalog.q2_sq minmax);
          Alcotest.test_case "max vs naive: diagonal" `Quick
            (agree_with_naive "max diag" Aggregate.Max (vid "R" 0) q_diag minmax);
          Alcotest.test_case "max vs naive: constant atom" `Quick
            (agree_with_naive "max const" Aggregate.Max (vid "R" 0) q_const_atom minmax);
          Alcotest.test_case "max sum_k vs naive" `Quick
            (sumk_agrees "max sum_k" Aggregate.Max (vid "R" 0) Catalog.q_xyy
               Core.Minmax.sum_k);
          Alcotest.test_case "rejects non-all-hierarchical" `Quick (fun () ->
              let a = Agg_query.make Aggregate.Max (vid "R" 0) Catalog.q_exists in
              let db = Generate.random_database ~seed:0 Catalog.q_exists in
              Alcotest.(check bool) "raises" true
                (try ignore (Core.Minmax.sum_k a db); false
                 with Invalid_argument _ -> true));
        ] );
      ( "avg/quantile",
        [ Alcotest.test_case "avg vs naive: q4" `Quick
            (agree_with_naive "avg q4" Aggregate.Avg (vid "R" 1) Catalog.q4_q avgq);
          Alcotest.test_case "avg vs naive: q_xyy_full" `Quick
            (agree_with_naive "avg qfull" Aggregate.Avg (vid "S" 0) Catalog.q_xyy_full avgq);
          Alcotest.test_case "avg vs naive: q1" `Quick
            (agree_with_naive "avg q1" Aggregate.Avg (vid "R" 0) Catalog.q1_sq avgq);
          Alcotest.test_case "avg vs naive: q3 (disconnected)" `Quick
            (agree_with_naive "avg q3" Aggregate.Avg (vid "T" 0) Catalog.q3_sq avgq);
          Alcotest.test_case "avg vs naive: q3 tau on R" `Quick
            (agree_with_naive "avg q3R" Aggregate.Avg (vid "R" 0) Catalog.q3_sq avgq);
          Alcotest.test_case "median vs naive: q4" `Quick
            (agree_with_naive "med q4" Aggregate.Median (vid "R" 1) Catalog.q4_q avgq);
          Alcotest.test_case "median vs naive: q2" `Quick
            (agree_with_naive "med q2" Aggregate.Median (vid "R" 1) Catalog.q2_sq avgq);
          Alcotest.test_case "quantile 1/3 vs naive: q1" `Quick
            (agree_with_naive "qnt q1" (Aggregate.Quantile (Q.of_ints 1 3)) (vmod "R" 0)
               Catalog.q1_sq avgq);
          Alcotest.test_case "avg vs naive: three atoms" `Quick
            (agree_with_naive "avg three" Aggregate.Avg (vid "S" 0) q_three avgq);
          Alcotest.test_case "avg sum_k vs naive" `Quick
            (sumk_agrees "avg sum_k" Aggregate.Avg (vid "R" 1) Catalog.q4_q
               Core.Avg_quantile.sum_k);
          Alcotest.test_case "rejects non-q-hierarchical" `Quick (fun () ->
              let a = Agg_query.make Aggregate.Avg (vid "R" 0) Catalog.q_xyy in
              let db = Generate.random_database ~seed:0 Catalog.q_xyy in
              Alcotest.(check bool) "raises" true
                (try ignore (Core.Avg_quantile.sum_k a db); false
                 with Invalid_argument _ -> true));
        ] );
      ( "has-duplicates",
        [ Alcotest.test_case "dup vs naive: q1" `Quick
            (agree_with_naive "dup q1" Aggregate.Has_duplicates (vmod "R" 0) Catalog.q1_sq
               dup);
          Alcotest.test_case "dup vs naive: q2" `Quick
            (agree_with_naive "dup q2" Aggregate.Has_duplicates (vmod "S" 0) Catalog.q2_sq
               dup);
          Alcotest.test_case "dup vs naive: q3 tau on R" `Quick
            (agree_with_naive "dup q3R" Aggregate.Has_duplicates (vmod "R" 0) Catalog.q3_sq
               dup);
          Alcotest.test_case "dup vs naive: q3 tau on T" `Quick
            (agree_with_naive "dup q3T" Aggregate.Has_duplicates (vmod "T" 0) Catalog.q3_sq
               dup);
          Alcotest.test_case "dup vs naive: single atom" `Quick
            (agree_with_naive "dup single" Aggregate.Has_duplicates (vmod "R" 1)
               Catalog.q_single_pair dup);
          Alcotest.test_case "dup sum_k vs naive" `Quick
            (sumk_agrees "dup sum_k" Aggregate.Has_duplicates (vmod "R" 0) Catalog.q1_sq
               Core.Dup.sum_k);
          Alcotest.test_case "rejects non-sq-hierarchical" `Quick (fun () ->
              let a =
                Agg_query.make Aggregate.Has_duplicates (vid "R" 0) Catalog.q_xyy_full
              in
              let db = Generate.random_database ~seed:0 Catalog.q_xyy_full in
              Alcotest.(check bool) "raises" true
                (try ignore (Core.Dup.sum_k a db); false
                 with Invalid_argument _ -> true));
        ] );
      ( "stress (dense joins)",
        (let dense = { Generate.tuples_per_relation = 7; domain = 3; exo_fraction = 0.4 } in
         let sparse = { Generate.tuples_per_relation = 4; domain = 5; exo_fraction = 0.1 } in
         [ Alcotest.test_case "max q_xyy dense" `Slow
             (agree_with_naive ~seeds:5 ~config:dense "max dense" Aggregate.Max (vid "R" 0)
                Catalog.q_xyy minmax);
           Alcotest.test_case "max q3 sparse" `Slow
             (agree_with_naive ~seeds:5 ~config:sparse "max sparse" Aggregate.Max (vid "T" 0)
                Catalog.q3_sq minmax);
           Alcotest.test_case "avg q4 dense" `Slow
             (agree_with_naive ~seeds:5 ~config:dense "avg dense" Aggregate.Avg (vid "R" 1)
                Catalog.q4_q avgq);
           Alcotest.test_case "avg q_xyy_full sparse" `Slow
             (agree_with_naive ~seeds:5 ~config:sparse "avg sparse" Aggregate.Avg (vid "S" 0)
                Catalog.q_xyy_full avgq);
           Alcotest.test_case "median q1 dense" `Slow
             (agree_with_naive ~seeds:5 ~config:dense "med dense" Aggregate.Median
                (vmod "R" 0) Catalog.q1_sq avgq);
           Alcotest.test_case "dup q1 dense" `Slow
             (agree_with_naive ~seeds:5 ~config:dense "dup dense" Aggregate.Has_duplicates
                (vmod "R" 0) Catalog.q1_sq dup);
           Alcotest.test_case "dup q3 dense" `Slow
             (agree_with_naive ~seeds:5 ~config:dense "dup3 dense" Aggregate.Has_duplicates
                (vmod "R" 0) Catalog.q3_sq dup);
           Alcotest.test_case "cdist q_xyy dense" `Slow
             (agree_with_naive ~seeds:5 ~config:dense "cdist dense" Aggregate.Count_distinct
                (vmod "R" 0) Catalog.q_xyy cdist);
           Alcotest.test_case "sum q_exists dense" `Slow
             (agree_with_naive ~seeds:5 ~config:dense "sum dense" Aggregate.Sum (vid "R" 0)
                Catalog.q_exists sumcount);
         ]) );
      ( "d-trees (Remark 4.5)",
        [ Alcotest.test_case "compiled counts match the Boolean DP" `Quick (fun () ->
              List.iter
                (fun (name, query, _) ->
                  let q = Cq.make_boolean query in
                  if Hierarchy.is_all_hierarchical q then
                    for seed = 0 to 4 do
                      let db = Generate.random_database ~seed ~config:small_config query in
                      let tree = Core.Dtree.compile q db in
                      if not (Core.Dtree.is_read_once tree) then
                        Alcotest.failf "%s: compiled tree is not read-once" name;
                      let from_tree = Core.Dtree.satisfying_counts tree db in
                      let from_dp = Core.Boolean_dp.counts q db in
                      Array.iteri
                        (fun k c ->
                          if not (B.equal c from_tree.(k)) then
                            Alcotest.failf "%s seed %d: counts differ at k=%d" name seed k)
                        from_dp
                    done)
                Catalog.figure1);
          Alcotest.test_case "evaluation matches direct CQ evaluation" `Quick (fun () ->
              let q = Cq.make_boolean Catalog.q_xyy in
              for seed = 0 to 4 do
                let db = Generate.random_database ~seed ~config:small_config Catalog.q_xyy in
                let tree = Core.Dtree.compile q db in
                let endo = Array.of_list (Database.endogenous db) in
                let n = Array.length endo in
                if n <= 10 then
                  for mask = 0 to (1 lsl n) - 1 do
                    let chosen f =
                      let i = ref (-1) in
                      Array.iteri (fun j g -> if Fact.equal f g then i := j) endo;
                      !i >= 0 && mask land (1 lsl !i) <> 0
                    in
                    let sub =
                      Database.filter
                        (fun f p -> p = Database.Exogenous || chosen f)
                        db
                    in
                    let direct = Aggshap_cq.Eval.is_satisfied q sub in
                    let via_tree = Core.Dtree.eval tree chosen in
                    if direct <> via_tree then
                      Alcotest.failf "seed %d mask %d: tree=%b direct=%b" seed mask
                        via_tree direct
                  done
              done);
          Alcotest.test_case "shapley via the tree matches Boolean DP" `Quick (fun () ->
              for seed = 0 to 4 do
                let db = Generate.random_database ~seed ~config:small_config Catalog.q1_sq in
                let q = Cq.make_boolean Catalog.q1_sq in
                let tree = Core.Dtree.compile q db in
                List.iter
                  (fun f ->
                    let a = Core.Dtree.shapley tree db f in
                    let b = Core.Boolean_dp.shapley q db f in
                    if not (Q.equal a b) then
                      Alcotest.failf "seed %d: %s" seed (Fact.to_string f))
                  (Database.endogenous db)
              done);
          Alcotest.test_case "rejects non-hierarchical queries" `Quick (fun () ->
              let db = Generate.random_database ~seed:0 Catalog.q_nonhier in
              Alcotest.(check bool) "raises" true
                (try ignore (Core.Dtree.compile Catalog.q_nonhier db); false
                 with Invalid_argument _ -> true));
        ] );
      ( "monotone monoid max (Sec 7.3)",
        (* Non-localized τ = monoid over head variables; ground truth is
           a hand-built game evaluating Max ∘ ⊗ directly. *)
        (let monoid_game m vars q db =
           let players = Array.of_list (Database.endogenous db) in
           let exo = Database.filter (fun _ p -> p = Database.Exogenous) db in
           let utility mask =
             let sub = ref exo in
             Array.iteri
               (fun i f -> if mask land (1 lsl i) <> 0 then sub := Database.add f !sub)
               players;
             let answers = Aggshap_cq.Eval.answers q !sub in
             List.fold_left
               (fun acc t ->
                 let v = Core.Minmax_monoid.tau m ~vars t q.Cq.head in
                 match acc with None -> Some v | Some w -> Some (Q.max v w))
               None answers
             |> Option.value ~default:Q.zero
           in
           (players, Core.Game.make ~n:(Array.length players) utility)
         in
         let check_monoid name m vars query () =
           for seed = 0 to 5 do
             let db = Generate.random_database ~seed ~config:small_config query in
             let n = Database.endo_size db in
             if n >= 1 && n <= 10 then begin
               let players, game = monoid_game m vars query db in
               Array.iteri
                 (fun i f ->
                   let expected = Core.Game.shapley game i in
                   let actual = Core.Minmax_monoid.shapley m ~vars query db f in
                   if not (Q.equal expected actual) then
                     Alcotest.failf "%s seed %d: %s game=%s dp=%s" name seed
                       (Fact.to_string f) (Q.to_string expected) (Q.to_string actual))
                 players
             end
           done
         in
         [ Alcotest.test_case "Max(x+y) on Qfull" `Quick
             (check_monoid "plus qfull" Core.Minmax_monoid.plus [ "x"; "y" ]
                Catalog.q_xyy_full);
           Alcotest.test_case "Max(x+z) on disconnected Q3" `Quick
             (check_monoid "plus q3" Core.Minmax_monoid.plus [ "x"; "z" ] Catalog.q3_sq);
           Alcotest.test_case "Max(max(x,z)) on disconnected Q3" `Quick
             (check_monoid "maxmax q3" Core.Minmax_monoid.max_monoid [ "x"; "z" ]
                Catalog.q3_sq);
           Alcotest.test_case "single tracked variable degenerates to Max" `Quick
             (fun () ->
               let a = Agg_query.make Aggregate.Max (vid "R" 0) Catalog.q_xyy in
               for seed = 0 to 4 do
                 let db = Generate.random_database ~seed ~config:small_config Catalog.q_xyy in
                 if Database.endo_size db >= 1 then
                   List.iter
                     (fun f ->
                       let via_monoid =
                         Core.Minmax_monoid.shapley Core.Minmax_monoid.plus ~vars:[ "x" ]
                           Catalog.q_xyy db f
                       in
                       let via_minmax = Core.Minmax.shapley a db f in
                       if not (Q.equal via_monoid via_minmax) then
                         Alcotest.failf "seed %d: %s" seed (Fact.to_string f))
                     (Database.endogenous db)
               done);
           Alcotest.test_case "rejects existential tracked variables" `Quick (fun () ->
               let db = Generate.random_database ~seed:0 Catalog.q_xyy in
               Alcotest.(check bool) "raises" true
                 (try
                    ignore
                      (Core.Minmax_monoid.sum_k Core.Minmax_monoid.plus ~vars:[ "y" ]
                         Catalog.q_xyy db);
                    false
                  with Invalid_argument _ -> true));
         ]) );
      ( "localization (Prop 7.3)",
        [ Alcotest.test_case "avg with τ on T vs naive" `Quick (fun () ->
              let tau = Value_fn.relu ~rel:"T" ~pos:0 in
              let a = Agg_query.make Aggregate.Avg tau Core.Localization.q_xyyz in
              for seed = 0 to 5 do
                let db =
                  Generate.random_database ~seed ~config:small_config
                    Core.Localization.q_xyyz
                in
                let n = Database.endo_size db in
                if n >= 1 && n <= 10 then
                  List.iter
                    (fun (f, expected) ->
                      let actual = Core.Localization.avg_on_t_shapley tau db f in
                      if not (Q.equal expected actual) then
                        Alcotest.failf "avg_on_t seed %d: %s naive=%s got=%s" seed
                          (Fact.to_string f) (Q.to_string expected) (Q.to_string actual))
                    (Core.Naive.shapley_all a db)
              done);
          Alcotest.test_case "median with τ on T vs naive" `Quick (fun () ->
              let tau = vid "T" 0 in
              let a = Agg_query.make Aggregate.Median tau Core.Localization.q_xyyz in
              for seed = 0 to 5 do
                let db =
                  Generate.random_database ~seed ~config:small_config
                    Core.Localization.q_xyyz
                in
                let n = Database.endo_size db in
                if n >= 1 && n <= 10 then
                  List.iter
                    (fun (f, expected) ->
                      let actual = Core.Localization.median_on_t_shapley tau db f in
                      if not (Q.equal expected actual) then
                        Alcotest.failf "median_on_t seed %d: %s naive=%s got=%s" seed
                          (Fact.to_string f) (Q.to_string expected) (Q.to_string actual))
                    (Core.Naive.shapley_all a db)
              done);
          Alcotest.test_case "dup with τ = y-value vs naive" `Quick (fun () ->
              let tau = vid "S" 0 in
              let a =
                Agg_query.make Aggregate.Has_duplicates tau Core.Localization.q_full
              in
              for seed = 0 to 7 do
                let db =
                  Generate.random_database ~seed ~config:small_config
                    Core.Localization.q_full
                in
                let n = Database.endo_size db in
                if n >= 1 && n <= 10 then
                  List.iter
                    (fun (f, expected) ->
                      let actual = Core.Localization.dup_on_y_shapley db f in
                      if not (Q.equal expected actual) then
                        Alcotest.failf "dup_on_y seed %d: %s naive=%s got=%s" seed
                          (Fact.to_string f) (Q.to_string expected) (Q.to_string actual))
                    (Core.Naive.shapley_all a db)
              done);
          Alcotest.test_case "τ on the first atom is outside the frontier" `Quick
            (fun () ->
              (* The same CQ is not q-hierarchical, so the generic DP
                 refuses it — Prop 7.3 is what makes τ-on-T solvable. *)
              Alcotest.(check bool) "q_xyyz not q-hierarchical" false
                (Hierarchy.is_q_hierarchical Core.Localization.q_xyyz));
        ] );
      ( "shapley-like scores (Sec 3.2)",
        [ Alcotest.test_case "banzhaf via sum_k: max" `Quick (fun () ->
              let a = Agg_query.make Aggregate.Max (vid "R" 0) Catalog.q_xyy in
              for seed = 0 to 5 do
                let db =
                  Generate.random_database ~seed ~config:small_config Catalog.q_xyy
                in
                let n = Database.endo_size db in
                if n >= 1 && n <= 10 then begin
                  let players, game = Core.Naive.game a db in
                  Array.iteri
                    (fun i f ->
                      let expected = Core.Game.banzhaf game i in
                      let actual = Core.Sumk.banzhaf_of Core.Minmax.sum_k a db f in
                      if not (Q.equal expected actual) then
                        Alcotest.failf "banzhaf max seed %d: %s" seed (Fact.to_string f))
                    players
                end
              done);
          Alcotest.test_case "banzhaf via linearity: sum and cdist" `Quick (fun () ->
              let combos =
                [ (Aggregate.Sum, vid "R" 0, Catalog.q_exists);
                  (Aggregate.Count_distinct, vmod "R" 0, Catalog.q_xyy);
                ]
              in
              List.iter
                (fun (alpha, tau, query) ->
                  let a = Agg_query.make alpha tau query in
                  for seed = 0 to 4 do
                    let db = Generate.random_database ~seed ~config:small_config query in
                    let n = Database.endo_size db in
                    if n >= 1 && n <= 10 then begin
                      let players, game = Core.Naive.game a db in
                      Array.iteri
                        (fun i f ->
                          let expected = Core.Game.banzhaf game i in
                          let actual = Core.Solver.banzhaf a db f in
                          if not (Q.equal expected actual) then
                            Alcotest.failf "banzhaf %s seed %d: %s"
                              (Aggregate.to_string alpha) seed (Fact.to_string f))
                        players
                    end
                  done)
                combos);
          Alcotest.test_case "banzhaf via sum_k: dup" `Quick (fun () ->
              let a = Agg_query.make Aggregate.Has_duplicates (vmod "R" 0) Catalog.q1_sq in
              for seed = 0 to 5 do
                let db =
                  Generate.random_database ~seed ~config:small_config Catalog.q1_sq
                in
                let n = Database.endo_size db in
                if n >= 1 && n <= 10 then begin
                  let players, game = Core.Naive.game a db in
                  Array.iteri
                    (fun i f ->
                      let expected = Core.Game.banzhaf game i in
                      let actual = Core.Sumk.banzhaf_of Core.Dup.sum_k a db f in
                      if not (Q.equal expected actual) then
                        Alcotest.failf "banzhaf dup seed %d: %s" seed (Fact.to_string f))
                    players
                end
              done);
        ] );
      ( "constant per singleton (Prop 3.2)",
        [ Alcotest.test_case "Shapley(f, α∘c∘Q) = α({c}) · Shapley(f, Q_bool)" `Quick
            (fun () ->
              (* For τ ≡ 5 and α = Avg (constant per singleton with
                 α({5}) = 5), the AggCQ game is 5 times the membership
                 game. *)
              let a = Agg_query.make Aggregate.Avg (vconst "R" 5) Catalog.q_xyy in
              let qbool = Cq.make_boolean Catalog.q_xyy in
              for seed = 0 to 5 do
                let db =
                  Generate.random_database ~seed ~config:small_config Catalog.q_xyy
                in
                if Database.endo_size db >= 1 && Database.endo_size db <= 10 then
                  List.iter
                    (fun (f, direct) ->
                      let via_membership =
                        Q.mul_int (Core.Boolean_dp.shapley qbool db f) 5
                      in
                      if not (Q.equal direct via_membership) then
                        Alcotest.failf "prop 3.2 seed %d: %s" seed (Fact.to_string f))
                    (Core.Naive.shapley_all a db)
              done);
        ] );
      ( "monte carlo",
        [ Alcotest.test_case "converges to exact" `Slow test_monte_carlo_converges ] );
      ( "closed forms",
        [ Alcotest.test_case "cdist (Prop 4.2)" `Quick
            (closed_form_agrees "cdist closed" Aggregate.Count_distinct
               Core.Closed_form.cdist_single_atom);
          Alcotest.test_case "max (Prop 4.4)" `Quick
            (closed_form_agrees "max closed" Aggregate.Max Core.Closed_form.max_single_atom);
          Alcotest.test_case "min (Prop 4.4 negated)" `Quick
            (closed_form_agrees "min closed" Aggregate.Min Core.Closed_form.min_single_atom);
          Alcotest.test_case "avg (Prop 5.2)" `Quick
            (closed_form_agrees "avg closed" Aggregate.Avg Core.Closed_form.avg_single_atom);
          Alcotest.test_case "premise guards" `Quick test_closed_form_guards;
        ] );
      ( "random queries vs naive",
        (* Beyond the fixed catalog: random CQs, random databases, the
           solver's frontier dispatch checked against enumeration. *)
        (let module Rcq = Aggshap_workload.Random_cq in
         let tau_for q =
           match Rcq.free_position q with
           | Some (rel, pos) -> vid rel pos
           | None -> vconst (List.hd (Cq.relations q)) 1
         in
         let run_alpha alpha () =
           let checked = ref 0 in
           let seed = ref 0 in
           while !checked < 12 && !seed < 400 do
             let q = Rcq.generate ~seed:!seed () in
             incr seed;
             if Core.Solver.within_frontier alpha q then begin
               let a = Agg_query.make alpha (tau_for q) q in
               let db =
                 Generate.random_database ~seed:(1000 + !seed)
                   ~config:{ Generate.tuples_per_relation = 2; domain = 2; exo_fraction = 0.25 }
                   q
               in
               let n = Database.endo_size db in
               if n >= 1 && n <= 9 then begin
                 incr checked;
                 List.iter
                   (fun (f, expected) ->
                     match Core.Solver.shapley ~fallback:`Fail a db f with
                     | Core.Solver.Exact actual, _ ->
                       if not (Q.equal expected actual) then
                         Alcotest.failf "%s on %s (seed %d): %s naive=%s dp=%s"
                           (Aggregate.to_string alpha) (Cq.to_string q) (!seed - 1)
                           (Fact.to_string f) (Q.to_string expected) (Q.to_string actual)
                     | Core.Solver.Estimate _, _ -> Alcotest.fail "expected exact")
                   (Core.Naive.shapley_all a db)
               end
             end
           done;
           if !checked < 12 then
             Alcotest.failf "%s: only %d random instances found" (Aggregate.to_string alpha)
               !checked
         in
         [ Alcotest.test_case "classification entailments" `Quick (fun () ->
               for seed = 0 to 200 do
                 let q = Rcq.generate ~seed () in
                 let sq = Hierarchy.is_sq_hierarchical q in
                 let qh = Hierarchy.is_q_hierarchical q in
                 let ah = Hierarchy.is_all_hierarchical q in
                 let eh = Hierarchy.is_exists_hierarchical q in
                 if sq && not qh then Alcotest.failf "sq but not q: %s" (Cq.to_string q);
                 if qh && not ah then Alcotest.failf "q but not all: %s" (Cq.to_string q);
                 if ah && not eh then Alcotest.failf "all but not exists: %s" (Cq.to_string q)
               done);
           Alcotest.test_case "parser roundtrip on generated queries" `Quick (fun () ->
               for seed = 0 to 100 do
                 let q = Rcq.generate ~seed () in
                 let q' = Parser.parse_query_exn (Cq.to_string q) in
                 if not (Cq.equal q q') then Alcotest.failf "roundtrip: %s" (Cq.to_string q)
               done);
           Alcotest.test_case "connected hierarchical queries have roots" `Quick (fun () ->
               for seed = 0 to 200 do
                 let q = Rcq.generate ~seed () in
                 if Hierarchy.is_all_hierarchical q then
                   List.iter
                     (fun comp ->
                       if not (Aggshap_cq.Decompose.is_ground comp)
                          && Aggshap_cq.Decompose.choose_root comp = None
                       then Alcotest.failf "no root in component of %s" (Cq.to_string q))
                     (Aggshap_cq.Decompose.connected_components q)
               done);
           Alcotest.test_case "sum on random queries" `Slow (run_alpha Aggregate.Sum);
           Alcotest.test_case "max on random queries" `Slow (run_alpha Aggregate.Max);
           Alcotest.test_case "count-distinct on random queries" `Slow
             (run_alpha Aggregate.Count_distinct);
           Alcotest.test_case "avg on random queries" `Slow (run_alpha Aggregate.Avg);
           Alcotest.test_case "median on random queries" `Slow (run_alpha Aggregate.Median);
           Alcotest.test_case "has-duplicates on random queries" `Slow
             (run_alpha Aggregate.Has_duplicates);
         ]) );
      ( "solver",
        [ Alcotest.test_case "frontier table" `Quick test_solver_frontiers;
          Alcotest.test_case "within_frontier (Figure 1)" `Quick test_solver_within_frontier;
          Alcotest.test_case "dispatch and fallback" `Quick test_solver_dispatch_and_fallback;
          Alcotest.test_case "efficiency axiom end-to-end" `Quick
            test_solver_efficiency_axiom;
        ] );
    ]
