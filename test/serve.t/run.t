The session server: many named incremental solver sessions behind a
newline-delimited JSON protocol on a Unix-domain socket. Sockets need
short paths, so the server state lives under a fresh temp directory.

  $ D=$(mktemp -d)
  $ S=$D/srv.sock
  $ shapctl serve --socket $S --max-sessions 2 --state-dir $D/state --quiet &
  $ shapctl client ping --socket $S
  ok

Two tenants, each with its own session over the same database:

  $ shapctl client open alice --socket $S -q "Q(x) <- R(x,y), S(y)" -d db.facts -a sum -t id:R:0
  opened alice (5 facts)
  $ shapctl client open bob --socket $S -q "Q(x) <- R(x,y), S(y)" -d db.facts -a count
  opened bob (5 facts)

Server answers are the exact rationals of the batch solver — compare
with `shapctl solve` on the same inputs below:

  $ shapctl client solve alice --socket $S
  R(1, 10)                     1/2
  R(2, 10)                     1
  R(3, 20)                     3
  S(10)                        3/2
  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a sum -t id:R:0
  class: all-hierarchical; algorithm: sum/count via linearity + Boolean DP
  R(1, 10)                       1/2 (~ 0.5)
  R(2, 10)                       1 (~ 1)
  R(3, 20)                       3 (~ 3)
  S(10)                          3/2 (~ 1.5)
  $ shapctl client solve bob --socket $S
  R(1, 10)                     1/2
  R(2, 10)                     1/2
  R(3, 20)                     1
  S(10)                        1
  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a count
  class: all-hierarchical; algorithm: sum/count via linearity + Boolean DP
  R(1, 10)                       1/2 (~ 0.5)
  R(2, 10)                       1/2 (~ 0.5)
  R(3, 20)                       1 (~ 1)
  S(10)                          1 (~ 1)

Concurrent updates hit only their own tenant: alice absorbs an insert
and a delete while bob's values stay put.

  $ shapctl client update alice --socket $S --op "insert R(4, 20)"
  applied 1 update
  $ printf 'delete R(1, 10)\ninsert S(30)' > updates.txt
  $ shapctl client update alice --socket $S --updates updates.txt
  applied 2 updates
  $ shapctl client solve alice --socket $S
  R(2, 10)                     1
  R(3, 20)                     3
  R(4, 20)                     4
  S(10)                        1
  S(30)                        0
  $ shapctl client solve bob --socket $S
  R(1, 10)                     1/2
  R(2, 10)                     1/2
  R(3, 20)                     1
  S(10)                        1

set_tau re-points the value function without reopening:

  $ shapctl client set-tau alice --socket $S -t const:R:5
  tau set
  $ shapctl client solve alice --socket $S
  R(2, 10)                     5/2
  R(3, 20)                     5
  R(4, 20)                     5
  S(10)                        5/2
  S(30)                        0

Explain and per-session statistics:

  $ shapctl client explain alice --socket $S
  class: all-hierarchical
  frontier: exists-hierarchical
  within frontier: yes (polynomial)
  algorithm: sum/count via linearity + Boolean DP
  plan (* = chosen):
    * frontier-dp (applicable, cost ~26): inside the frontier; polynomial in the database
    - knowledge-compilation (applicable, cost ~189): exact; exponential only in the lineage's branching structure
    - naive (applicable, cost ~160): exact enumeration over all 2^n subsets; always applicable
    - mc (not applicable, cost n/a): approximate; never auto-selected (force with mc:SAMPLES[:SEED])
    - fail (not applicable, cost n/a): diagnostic: raise instead of solving outside the frontier
  $ shapctl client stats alice --socket $S
  session alice: steps=4 games=6 computed/3 reused flushes=0 facts=6 endogenous=5
  $ shapctl client stats --socket $S
  session alice (live)
  session bob (live)
  requests=14 evictions=0 restores=0

solve-query is a stateless one-shot: no session is opened, so the exact
fallback tiers work outside the tractability frontier too. The answer
is bit-identical to `shapctl solve` on the same inputs:

  $ cat > rst.facts <<'DB'
  > R(1)
  > R(2)
  > T(1, 1)
  > T(1, 2)
  > T(2, 2)
  > S(1)
  > S(2)
  > DB

  $ shapctl client solve-query --socket $S -q "Q() <- R(x), T(x, y), S(y)" -d rst.facts -a count --fallback knowledge-compilation
  algorithm: knowledge compilation (d-DNNF lineage, Shapley by weighted model counting)
  R(1)                         17/70
  R(2)                         23/210
  S(1)                         23/210
  S(2)                         17/70
  T(1, 1)                      23/210
  T(1, 2)                      8/105
  T(2, 2)                      23/210
  $ shapctl solve -q "Q() <- R(x), T(x, y), S(y)" -d rst.facts -a count --fallback knowledge-compilation
  class: general; algorithm: knowledge compilation (d-DNNF lineage, Shapley by weighted model counting)
  R(1)                           17/70 (~ 0.242857)
  R(2)                           23/210 (~ 0.109524)
  S(1)                           23/210 (~ 0.109524)
  S(2)                           17/70 (~ 0.242857)
  T(1, 1)                        23/210 (~ 0.109524)
  T(1, 2)                        8/105 (~ 0.0761905)
  T(2, 2)                        23/210 (~ 0.109524)

--fallback auto reaches the same solve planner over the wire, and a
knowledge-compilation node budget rides along with the request — an
aborted compilation degrades to the planner's next rung server-side,
still bit-identical to the CLI:

  $ shapctl client solve-query --socket $S -q "Q() <- R(x), T(x, y), S(y)" -d rst.facts -a count --fallback auto
  algorithm: knowledge compilation (d-DNNF lineage, Shapley by weighted model counting) (selected by the solve planner)
  R(1)                         17/70
  R(2)                         23/210
  S(1)                         23/210
  S(2)                         17/70
  T(1, 1)                      23/210
  T(1, 2)                      8/105
  T(2, 2)                      23/210

  $ shapctl client solve-query --socket $S -q "Q() <- R(x), T(x, y), S(y)" -d rst.facts -a count --fallback knowledge-compilation --kc-node-budget 5
  algorithm: naive enumeration (exponential) (after a knowledge-compilation node-budget abort)
  R(1)                         17/70
  R(2)                         23/210
  S(1)                         23/210
  S(2)                         17/70
  T(1, 1)                      23/210
  T(1, 2)                      8/105
  T(2, 2)                      23/210

The wire carries exact rationals only, so the Monte-Carlo fallback is
rejected rather than silently degrading that promise — with the same
message, and the connection's request line number, whether it arrives
through the client or as a raw request:

  $ shapctl client solve-query --socket $S -q "Q() <- R(x), T(x, y), S(y)" -d rst.facts -a count --fallback mc:100
  shapctl: server error (line 1): solve_query does not take a Monte-Carlo fallback (the wire carries exact rationals only)
  [1]

  $ printf '{"op":"ping"}\n{"op":"solve_query","query":"Q(x) <- R(x)","db":"R(1)","agg":"count","fallback":"mc:50"}\n{"op":"ping"}' | shapctl client raw --socket $S
  {"ok": true, "op": "ping"}
  {"ok": false, "line": 2, "error": "solve_query does not take a Monte-Carlo fallback (the wire carries exact rationals only)"}
  {"ok": true, "op": "ping"}

Malformed requests get error replies carrying the connection's request
line number; the final line has no trailing newline and is still
answered:

  $ printf 'garbage\n{"op":"nope"}\n{"op":"ping"}' | shapctl client raw --socket $S
  {"ok": false, "line": 1, "error": "malformed request: not a JSON line (at offset 0: malformed number \"\")"}
  {"ok": false, "line": 2, "error": "unknown op \"nope\""}
  {"ok": true, "op": "ping"}

A clean shutdown snapshots every session:

  $ shapctl client shutdown --socket $S
  server shutting down
  $ wait
  $ ls $D/state
  alice.session.json
  bob.session.json

Restart over the same state directory: both sessions come back, and
with --max-sessions 1 touching one evicts the other (LRU). Values
survive the round-trip through the SHAPSESS_v1 snapshot bit-for-bit —
alice still shows the updated database and the const:R:5 τ.

  $ shapctl serve --socket $S --max-sessions 1 --state-dir $D/state --quiet &
  $ shapctl client solve alice --socket $S
  R(2, 10)                     5/2
  R(3, 20)                     5
  R(4, 20)                     5
  S(10)                        5/2
  S(30)                        0
  $ shapctl client stats --socket $S
  session alice (live)
  session bob (evicted)
  requests=2 evictions=0 restores=1
  $ shapctl client solve bob --socket $S
  R(1, 10)                     1/2
  R(2, 10)                     1/2
  R(3, 20)                     1
  S(10)                        1
  $ shapctl client stats --socket $S
  session alice (evicted)
  session bob (live)
  requests=4 evictions=1 restores=2

Closing a session removes its snapshot; unknown sessions are errors:

  $ shapctl client close bob --socket $S
  closed bob
  $ shapctl client solve bob --socket $S
  shapctl: server error (line 1): no such session "bob" (open it first)
  [1]
  $ ls $D/state
  alice.session.json
  $ shapctl client shutdown --socket $S
  server shutting down
  $ wait
  $ rm -rf $D
