(* Tests for the CQ front-end: parser, classification (the Figure 1
   catalog), evaluation, and decomposition. *)

module Cq = Aggshap_cq.Cq
module Parser = Aggshap_cq.Parser
module Hierarchy = Aggshap_cq.Hierarchy
module Eval = Aggshap_cq.Eval
module Decompose = Aggshap_cq.Decompose
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Value = Aggshap_relational.Value
module Catalog = Aggshap_workload.Catalog

let parse = Parser.parse_query_exn

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parser_roundtrip () =
  let cases =
    [ "Q(x) <- R(x)";
      "Q(x, z) <- R(x, y), S(y), T(z)";
      "Q() <- R(x), S(x, y)";
      "Q(p, s) <- Earns(p, s), Took(p, c), Course(n, c)";
    ]
  in
  List.iter (fun s -> Alcotest.(check string) s s (Cq.to_string (parse s))) cases

let test_parser_features () =
  let q = parse "Q(x) <- R(x, 3), S(x, 'alice')" in
  Alcotest.(check (list string)) "vars" [ "x" ] (Cq.vars q);
  let q2 = parse "Q(x) <- R(x, _), S(_)" in
  Alcotest.(check int) "anonymous vars are fresh" 3 (List.length (Cq.vars q2));
  let q3 = parse "Q(x) :- R(x)." in
  Alcotest.(check string) "alternative syntax" "Q(x) <- R(x)" (Cq.to_string q3)

let test_parser_errors () =
  let fails s =
    match Parser.parse_query s with
    | Ok _ -> Alcotest.failf "expected parse failure for %s" s
    | Error _ -> ()
  in
  fails "Q(x <- R(x)";
  fails "Q(x) <- R(x,y), R(y,z)" (* self-join *);
  fails "Q(z) <- R(x)" (* head variable not in body *);
  fails "Q(x, x) <- R(x)" (* duplicate head variable *);
  fails "Q(3) <- R(x)" (* constant in head *);
  fails ""

let test_parse_database () =
  let text = "# comment\nR(1, 2)\nR(1, 3) @exo\n\nS('a') @endo\n" in
  match Parser.parse_database text with
  | Error msg -> Alcotest.failf "parse_database: %s" msg
  | Ok db ->
    Alcotest.(check int) "size" 3 (Database.size db);
    Alcotest.(check int) "endo" 2 (Database.endo_size db);
    Alcotest.(check bool) "string constant" true
      (Database.mem (Fact.make "S" [ Value.Str "a" ]) db)

(* ------------------------------------------------------------------ *)
(* Structure and classification                                        *)
(* ------------------------------------------------------------------ *)

let test_vars_and_atoms () =
  let q = Catalog.q_xyy in
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] (Cq.vars q);
  Alcotest.(check (list string)) "free" [ "x" ] (Cq.free_vars q);
  Alcotest.(check (list string)) "existential" [ "y" ] (Cq.exist_vars q);
  Alcotest.(check (list string)) "atoms of x" [ "R" ] (Cq.atoms_of q "x");
  Alcotest.(check (list string)) "atoms of y" [ "R"; "S" ] (Cq.atoms_of q "y");
  Alcotest.(check bool) "boolean" false (Cq.is_boolean q);
  Alcotest.(check bool) "boolean after make_boolean" true
    (Cq.is_boolean (Cq.make_boolean q))

let test_classification_catalog () =
  List.iter
    (fun (name, q, expected) ->
      Alcotest.(check string) name
        (Hierarchy.cls_to_string expected)
        (Hierarchy.cls_to_string (Hierarchy.classify q)))
    Catalog.figure1

let test_classification_entailments () =
  (* sq ⇒ q ⇒ all ⇒ ∃, on every catalog query. *)
  List.iter
    (fun (name, q, _) ->
      let sq = Hierarchy.is_sq_hierarchical q in
      let qh = Hierarchy.is_q_hierarchical q in
      let ah = Hierarchy.is_all_hierarchical q in
      let eh = Hierarchy.is_exists_hierarchical q in
      Alcotest.(check bool) (name ^ ": sq => q") true ((not sq) || qh);
      Alcotest.(check bool) (name ^ ": q => all") true ((not qh) || ah);
      Alcotest.(check bool) (name ^ ": all => exists") true ((not ah) || eh))
    Catalog.figure1

let test_classification_boolean_coincide () =
  (* Remark 2.1: for Boolean CQs the classes coincide. *)
  List.iter
    (fun (name, q, _) ->
      let b = Cq.make_boolean q in
      let ah = Hierarchy.is_all_hierarchical b in
      Alcotest.(check bool) (name ^ " bool: all=q") ah (Hierarchy.is_q_hierarchical b);
      Alcotest.(check bool) (name ^ " bool: all=sq") ah (Hierarchy.is_sq_hierarchical b);
      Alcotest.(check bool) (name ^ " bool: all=exists") ah
        (Hierarchy.is_exists_hierarchical b))
    Catalog.figure1

let test_course_query_class () =
  (* Example 2.2's query: Q(p,s) <- Earns(p,s), Took(p,c), Course(n,c).
     The atom sets of p ({Earns,Took}) and c ({Took,Course}) overlap
     without nesting, so the query is only ∃-hierarchical — the paper's
     own running example sits beyond the Avg frontier. *)
  Alcotest.(check string) "course query is exists-hierarchical" "exists-hierarchical"
    (Hierarchy.cls_to_string (Hierarchy.classify Catalog.q_course))

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let db_xyy =
  Database.of_facts
    [ Fact.of_ints "R" [ 1; 10 ];
      Fact.of_ints "R" [ 1; 11 ];
      Fact.of_ints "R" [ 2; 10 ];
      Fact.of_ints "S" [ 10 ];
      Fact.of_ints "S" [ 12 ];
    ]

let test_eval_answers () =
  let answers = Eval.answers Catalog.q_xyy db_xyy in
  let strings =
    List.map (fun t -> String.concat "," (Array.to_list (Array.map Value.to_string t))) answers
  in
  Alcotest.(check (list string)) "answers" [ "1"; "2" ] strings;
  Alcotest.(check int) "homomorphisms" 2 (List.length (Eval.homomorphisms Catalog.q_xyy db_xyy));
  Alcotest.(check bool) "satisfied" true (Eval.is_satisfied Catalog.q_xyy db_xyy);
  Alcotest.(check bool) "unsatisfied on empty" false
    (Eval.is_satisfied Catalog.q_xyy Database.empty)

let test_eval_constants () =
  let q = parse "Q(y) <- R(1, y), S(y)" in
  let answers = Eval.answers q db_xyy in
  Alcotest.(check int) "constant filter" 1 (List.length answers)

let test_eval_support () =
  let support = Eval.support Catalog.q_xyy db_xyy in
  (* R(1,11) and S(12) join with nothing. *)
  Alcotest.(check int) "support size" 3 (List.length support);
  Alcotest.(check bool) "R(1,11) not in support" false
    (List.exists (Fact.equal (Fact.of_ints "R" [ 1; 11 ])) support)

(* ------------------------------------------------------------------ *)
(* Decomposition                                                       *)
(* ------------------------------------------------------------------ *)

let test_components () =
  let comps = Decompose.connected_components Catalog.q3_sq in
  Alcotest.(check int) "two components" 2 (List.length comps);
  let comps1 = Decompose.connected_components Catalog.q_xyy in
  Alcotest.(check int) "connected query" 1 (List.length comps1);
  (* Heads split with the components. *)
  let heads = List.map (fun c -> String.concat "," c.Cq.head) comps in
  Alcotest.(check (list string)) "heads" [ "x"; "z" ] heads

let test_roots () =
  Alcotest.(check (list string)) "root of q_xyy" [ "y" ]
    (Decompose.root_variables Catalog.q_xyy);
  Alcotest.(check (option string)) "choose_root prefers free" (Some "x")
    (Decompose.choose_root Catalog.q1_sq);
  Alcotest.(check (option string)) "existential root chosen if only one" (Some "y")
    (Decompose.choose_root Catalog.q_xyy);
  Alcotest.(check (option string)) "non-hierarchical: no root" None
    (Decompose.choose_root (parse "Q() <- R(x), S(x, y), T(y)"))

let test_substitute () =
  let q = Cq.substitute Catalog.q_xyy "x" (Value.Int 1) in
  Alcotest.(check string) "substitute head var" "Qxyy() <- R(1, y), S(y)" (Cq.to_string q);
  let q2 = Cq.substitute Catalog.q_xyy "y" (Value.Int 10) in
  Alcotest.(check string) "substitute body var" "Qxyy(x) <- R(x, 10), S(10)"
    (Cq.to_string q2)

let test_partition () =
  let blocks, dropped = Decompose.partition Catalog.q_xyy "y" db_xyy in
  (* Root values of y: values in both R's 2nd column and S's column = {10}. *)
  Alcotest.(check int) "one block" 1 (List.length blocks);
  let _, block = List.hd blocks in
  Alcotest.(check int) "block size" 3 (Database.size block);
  Alcotest.(check int) "dropped" 2 (Database.size dropped)

let test_relevant () =
  let db =
    Database.add (Fact.of_ints "Z" [ 9 ]) db_xyy
    |> Database.add (Fact.of_ints "R" [ 7 ]) (* wrong arity: cannot match *)
  in
  let rel, rest = Decompose.relevant Catalog.q_xyy db in
  Alcotest.(check int) "relevant" 5 (Database.size rel);
  Alcotest.(check int) "irrelevant" 2 (Database.size rest)

(* ------------------------------------------------------------------ *)
(* Join planner: compilation, and equivalence with the legacy scan     *)
(* ------------------------------------------------------------------ *)

module Plan = Aggshap_cq.Plan
module Generate = Aggshap_workload.Generate

let gen_config =
  { Generate.tuples_per_relation = 14; domain = 5; exo_fraction = 0.3 }

(* The query shapes the planner sees in practice: every Figure-1
   catalog entry plus constant-carrying and cartesian-product bodies. *)
let planner_queries =
  List.map (fun (_, q, _) -> q) Catalog.figure1
  @ [ parse "Q(y) <- R(1, y), S(y)";
      parse "Q(x) <- R(x, 3)";
      parse "Q(x, z) <- R(x, y), S(y), T(z)";
      parse "Q() <- R(x), S(y)";
    ]

let planner_dbs q =
  List.map (fun seed -> Generate.random_database ~seed ~config:gen_config q) [ 1; 2; 3 ]

let sorted_tuples ts =
  List.sort Stdlib.compare
    (List.map (fun t -> Array.to_list (Array.map Value.to_string t)) ts)

let sorted_facts fs = List.sort_uniq Fact.compare fs

(* A homomorphism is determined by the facts it sends the atoms to, so
   the multiset of atom-image lists is an order-insensitive view of the
   full homomorphism set. *)
let hom_multiset q homs =
  List.sort Stdlib.compare
    (List.map
       (fun h -> List.map (fun a -> Fact.to_string (Eval.atom_image a h)) q.Cq.body)
       homs)

let check_evaluators_agree name q db =
  Alcotest.(check (list (list string))) (name ^ ": answers")
    (sorted_tuples (Eval.Legacy.answers q db))
    (sorted_tuples (Eval.answers q db));
  Alcotest.(check bool) (name ^ ": satisfied")
    (Eval.Legacy.is_satisfied q db) (Eval.is_satisfied q db);
  Alcotest.(check (list string)) (name ^ ": support")
    (List.map Fact.to_string (sorted_facts (Eval.Legacy.support q db)))
    (List.map Fact.to_string (sorted_facts (Eval.support q db)));
  Alcotest.(check (list (list string))) (name ^ ": homomorphism multiset")
    (hom_multiset q (Eval.Legacy.homomorphisms q db))
    (hom_multiset q (Eval.homomorphisms q db))

let test_planned_vs_legacy () =
  List.iter
    (fun q ->
      let name = Cq.to_string q in
      List.iter (check_evaluators_agree name q) (planner_dbs q))
    planner_queries

(* Every atom order — including adversarial ones the greedy compiler
   would never pick — enumerates the same homomorphism set. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
      l

let test_adversarial_orders () =
  List.iter
    (fun q ->
      let n = List.length q.Cq.body in
      if n >= 2 && n <= 3 then
        let orders = permutations (List.init n Fun.id) in
        List.iter
          (fun db ->
            let reference = hom_multiset q (Eval.Legacy.homomorphisms q db) in
            List.iter
              (fun order ->
                let plan = Plan.compile ~order q in
                Alcotest.(check (list (list string)))
                  (Cq.to_string q ^ ": order " ^ Plan.to_string plan)
                  reference
                  (hom_multiset q (Eval.Planned.homomorphisms plan db)))
              orders)
          (planner_dbs q))
    planner_queries

let test_plan_shapes () =
  (* Constants are bound before any variable is: the first step of
     Q(y) <- R(1, y), S(y) probes R on its constant. *)
  let p = Plan.compile (parse "Q(y) <- R(1, y), S(y)") in
  (match (List.hd p.Plan.steps).Plan.access with
   | Plan.Probe_const (0, v) ->
     Alcotest.(check string) "probes position 0 with 1" "1" (Value.to_string v)
   | _ -> Alcotest.fail "expected a constant probe on R");
  (* Later steps probe on variables bound by earlier ones. *)
  (match List.map (fun s -> s.Plan.access) p.Plan.steps with
   | [ _; Plan.Probe_var (0, "y") ] -> ()
   | _ -> Alcotest.failf "unexpected plan %s" (Plan.to_string p));
  (* A cartesian product degenerates to scans. *)
  let p2 = Plan.compile (parse "Q() <- R(x), S(y)") in
  Alcotest.(check bool) "cartesian product scans" true
    (List.for_all (fun s -> s.Plan.access = Plan.Scan) p2.Plan.steps);
  Alcotest.check_raises "order must be a permutation"
    (Invalid_argument "Plan.compile: order is not a permutation of the body")
    (fun () -> ignore (Plan.compile ~order:[ 0; 0 ] (parse "Q() <- R(x), S(y)")))

(* The indexed partition and the rescanning partition produce identical
   blocks in identical order, on every (catalog query, root, random
   database) combination that has a root at all. *)
let test_partition_equivalence () =
  let check_blocks name (b1, d1) (b2, d2) =
    Alcotest.(check int) (name ^ ": block count") (List.length b1) (List.length b2);
    List.iter2
      (fun (v1, db1) (v2, db2) ->
        Alcotest.(check string) (name ^ ": block value") (Value.to_string v1)
          (Value.to_string v2);
        Alcotest.(check bool) (name ^ ": block equal") true (Database.equal db1 db2))
      b1 b2;
    Alcotest.(check bool) (name ^ ": dropped equal") true (Database.equal d1 d2)
  in
  List.iter
    (fun q ->
      match Decompose.choose_root q with
      | None -> ()
      | Some x ->
        List.iter
          (fun db ->
            let name = Cq.to_string q ^ " by " ^ x in
            check_blocks name
              (Decompose.partition_scan q x db)
              (Decompose.partition_indexed q x db))
          (planner_dbs q))
    planner_queries

let () =
  Alcotest.run "cq"
    [ ( "parser",
        [ Alcotest.test_case "roundtrip" `Quick test_parser_roundtrip;
          Alcotest.test_case "features" `Quick test_parser_features;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "database" `Quick test_parse_database;
        ] );
      ( "classification",
        [ Alcotest.test_case "vars and atoms" `Quick test_vars_and_atoms;
          Alcotest.test_case "figure 1 catalog" `Quick test_classification_catalog;
          Alcotest.test_case "entailment chain" `Quick test_classification_entailments;
          Alcotest.test_case "boolean classes coincide" `Quick
            test_classification_boolean_coincide;
          Alcotest.test_case "course query" `Quick test_course_query_class;
        ] );
      ( "evaluation",
        [ Alcotest.test_case "answers" `Quick test_eval_answers;
          Alcotest.test_case "constants" `Quick test_eval_constants;
          Alcotest.test_case "support" `Quick test_eval_support;
        ] );
      ( "decomposition",
        [ Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "roots" `Quick test_roots;
          Alcotest.test_case "substitute" `Quick test_substitute;
          Alcotest.test_case "partition" `Quick test_partition;
          Alcotest.test_case "relevant" `Quick test_relevant;
        ] );
      ( "join planner",
        [ Alcotest.test_case "planned vs legacy evaluator" `Quick test_planned_vs_legacy;
          Alcotest.test_case "adversarial atom orders" `Quick test_adversarial_orders;
          Alcotest.test_case "plan shapes" `Quick test_plan_shapes;
          Alcotest.test_case "partition equivalence" `Quick test_partition_equivalence;
        ] );
    ]
