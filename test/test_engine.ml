(* The generic Fig. 2 decomposition engine: algebraic laws (qcheck) for
   the table algebra behind each engine instance, the static
   decomposition planner, bit-identity of parallel root-block
   evaluation, per-node statistics, and the engine-level `Block_drop
   fault caught by the differential oracle in all six aggregate
   families. *)

module B = Aggshap_arith.Bigint
module Q = Aggshap_arith.Rational
module Tables = Aggshap_core.Tables
module Engine = Aggshap_core.Engine
module Count_dp = Aggshap_core.Count_dp
module Minmax = Aggshap_core.Minmax
module Avg_quantile = Aggshap_core.Avg_quantile
module Cq = Aggshap_cq.Cq
module Database = Aggshap_relational.Database
module Fact = Aggshap_relational.Fact
module Aggregate = Aggshap_agg.Aggregate
module Value_fn = Aggshap_agg.Value_fn
module Agg_query = Aggshap_agg.Agg_query
module Catalog = Aggshap_workload.Catalog
module Trial = Aggshap_check.Trial
module Oracle = Aggshap_check.Oracle
module Shrink = Aggshap_check.Shrink

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let gen_counts n = QCheck.Gen.(list_size (return (n + 1)) (int_range 0 9))
let counts_of cs = Array.of_list (List.map B.of_int cs)

let counts_equal a b = Array.length a = Array.length b && Array.for_all2 B.equal a b

(* Boolean/CDist algebra: plain per-k counts, combined by [convolve]. *)
let arb_counts =
  let gen =
    QCheck.Gen.(
      let* n = int_range 0 4 in
      let* cs = gen_counts n in
      return (counts_of cs))
  in
  QCheck.make gen ~print:(fun c ->
      String.concat ";" (Array.to_list (Array.map B.to_string c)))

(* Count/Dup algebra: answer-count tables. All rows share length n+1 so
   that [combine] convolves consistently. *)
let arb_count_table =
  let gen =
    QCheck.Gen.(
      let* n = int_range 0 3 in
      let* entries = list_size (int_range 1 3) (pair (int_range 0 4) (gen_counts n)) in
      return
        { Count_dp.n;
          entries =
            List.fold_left
              (fun acc (l, cs) ->
                let c = counts_of cs in
                Count_dp.IntMap.update l
                  (function None -> Some c | Some c' -> Some (Tables.add c' c))
                  acc)
              Count_dp.IntMap.empty entries })
  in
  QCheck.make gen ~print:(fun t ->
      Printf.sprintf "{n=%d; %s}" t.Count_dp.n
        (String.concat ","
           (List.map
              (fun (l, c) ->
                Printf.sprintf "%d->%s" l
                  (String.concat ";" (Array.to_list (Array.map B.to_string c))))
              (Count_dp.IntMap.bindings t.Count_dp.entries))))

(* Min/Max algebra: (a,k)-tables. *)
let arb_minmax_table =
  let gen =
    QCheck.Gen.(
      let* n = int_range 0 3 in
      let* empty = gen_counts n in
      let* values =
        list_size (int_range 0 3) (pair (int_range (-3) 3) (gen_counts n))
      in
      return
        (Minmax.table_of_values ~n ~empty:(counts_of empty)
           (List.map (fun (v, cs) -> (Q.of_int v, counts_of cs)) values)))
  in
  QCheck.make gen

(* Avg/Quantile algebra: (a,k,ℓ)-tables. *)
let arb_vtable =
  let gen =
    QCheck.Gen.(
      let* n = int_range 0 3 in
      let* entries =
        list_size (int_range 1 3)
          (pair (triple (int_range 0 2) (int_range 0 2) (int_range 0 2)) (gen_counts n))
      in
      return
        (Avg_quantile.vtable_of ~n
           (List.map (fun (l, cs) -> (l, counts_of cs)) entries)))
  in
  QCheck.make gen

(* ------------------------------------------------------------------ *)
(* Algebraic laws, per TABLE_ALGEBRA instance                          *)
(* ------------------------------------------------------------------ *)

let boolean_laws =
  [ prop "convolve is associative" 300 QCheck.(triple arb_counts arb_counts arb_counts)
      (fun (a, b, c) ->
        counts_equal
          (Tables.convolve (Tables.convolve a b) c)
          (Tables.convolve a (Tables.convolve b c)));
    prop "convolve is commutative" 300 QCheck.(pair arb_counts arb_counts) (fun (a, b) ->
        counts_equal (Tables.convolve a b) (Tables.convolve b a));
    prop "full 0 is the unit" 300 arb_counts (fun a ->
        counts_equal (Tables.convolve a (Tables.full 0)) a);
    prop "complement is involutive" 300 arb_counts (fun a ->
        let n = Array.length a - 1 in
        counts_equal a (Tables.complement n (Tables.complement n a)));
  ]

let count_laws =
  let module C = Count_dp in
  [ prop "union combine is associative" 200
      QCheck.(triple arb_count_table arb_count_table arb_count_table)
      (fun (a, b, c) ->
        C.equal (C.combine ( + ) (C.combine ( + ) a b) c)
          (C.combine ( + ) a (C.combine ( + ) b c)));
    prop "union combine is commutative" 200 QCheck.(pair arb_count_table arb_count_table)
      (fun (a, b) -> C.equal (C.combine ( + ) a b) (C.combine ( + ) b a));
    prop "neutral_union is the unit of union" 200 arb_count_table (fun a ->
        C.equal (C.combine ( + ) a C.neutral_union) a);
    prop "cross combine is associative" 200
      QCheck.(triple arb_count_table arb_count_table arb_count_table)
      (fun (a, b, c) ->
        C.equal (C.combine ( * ) (C.combine ( * ) a b) c)
          (C.combine ( * ) a (C.combine ( * ) b c)));
    prop "cross combine is commutative" 200 QCheck.(pair arb_count_table arb_count_table)
      (fun (a, b) -> C.equal (C.combine ( * ) a b) (C.combine ( * ) b a));
    prop "neutral_cross is the unit of cross" 200 arb_count_table (fun a ->
        C.equal (C.combine ( * ) a C.neutral_cross) a);
    prop "pad 0 is the identity" 200 arb_count_table (fun a ->
        C.equal (C.pad_table 0 a) a);
  ]

let minmax_laws =
  [ prop "combine_union is associative" 200
      QCheck.(triple arb_minmax_table arb_minmax_table arb_minmax_table)
      (fun (a, b, c) ->
        Minmax.table_equal
          (Minmax.combine_union (Minmax.combine_union a b) c)
          (Minmax.combine_union a (Minmax.combine_union b c)));
    prop "combine_union is commutative" 200
      QCheck.(pair arb_minmax_table arb_minmax_table)
      (fun (a, b) ->
        Minmax.table_equal (Minmax.combine_union a b) (Minmax.combine_union b a));
    prop "neutral is the unit" 200 arb_minmax_table (fun a ->
        Minmax.table_equal (Minmax.combine_union a Minmax.neutral) a);
    prop "pad 0 is the identity" 200 arb_minmax_table (fun a ->
        Minmax.table_equal (Minmax.pad_table 0 a) a);
  ]

let avg_laws =
  let module A = Avg_quantile in
  [ prop "combine_vtables vec_add is associative" 200
      QCheck.(triple arb_vtable arb_vtable arb_vtable)
      (fun (a, b, c) ->
        A.vtable_equal
          (A.combine_vtables A.vec_add (A.combine_vtables A.vec_add a b) c)
          (A.combine_vtables A.vec_add a (A.combine_vtables A.vec_add b c)));
    prop "combine_vtables vec_add is commutative" 200 QCheck.(pair arb_vtable arb_vtable)
      (fun (a, b) ->
        A.vtable_equal (A.combine_vtables A.vec_add a b)
          (A.combine_vtables A.vec_add b a));
    prop "neutral_union is the unit" 200 arb_vtable (fun a ->
        A.vtable_equal (A.combine_vtables A.vec_add a A.neutral_union) a);
    prop "pad 0 is the identity" 200 arb_vtable (fun a ->
        A.vtable_equal (A.pad_vtable 0 a) a);
  ]

(* ------------------------------------------------------------------ *)
(* The static decomposition planner                                    *)
(* ------------------------------------------------------------------ *)

let test_shape_of_catalog () =
  (match Engine.shape Catalog.q_xyy with
   | Engine.Partition { root = "y"; free = false; sub = Engine.Cross comps } ->
     Alcotest.(check int) "two components under the root" 2 (List.length comps)
   | _ -> Alcotest.fail "q_xyy: expected an existential root partition over a conjunction");
  (match Engine.shape Catalog.q_xyy_full with
   | Engine.Partition { root = "y"; free = true; _ } -> ()
   | _ -> Alcotest.fail "q_xyy_full: expected a free root partition on y");
  (match Engine.shape Catalog.q3_sq with
   | Engine.Cross _ -> ()
   | _ -> Alcotest.fail "q3_sq: expected a top-level conjunction (disconnected)");
  (match Engine.shape Catalog.q_nonhier with
   | Engine.Stuck _ -> ()
   | _ -> Alcotest.fail "q_nonhier: expected a stuck decomposition (no root variable)");
  (* The renderer never raises and mentions the root it found. *)
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    go 0
  in
  let rendered = Format.asprintf "%a" Engine.pp_shape (Engine.shape Catalog.q_xyy) in
  Alcotest.(check bool) "rendering mentions the root" true
    (String.length rendered > 0 && contains rendered "partition on root y")

let test_connected_root () =
  Alcotest.(check (option string)) "q_xyy roots at y" (Some "y")
    (Engine.connected_root Catalog.q_xyy);
  Alcotest.(check (option string)) "disconnected query has no single root" None
    (Engine.connected_root Catalog.q3_sq);
  Alcotest.(check (option string)) "non-hierarchical query has no root" None
    (Engine.connected_root Catalog.q_nonhier)

let test_root_partition_conserves_facts () =
  let db =
    Database.of_facts
      [ Fact.of_ints "R" [ 1; 2 ]; Fact.of_ints "R" [ 3; 4 ]; Fact.of_ints "S" [ 2 ];
        Fact.of_ints "S" [ 4 ]; Fact.of_ints "S" [ 99 ] ]
  in
  let blocks, dropped = Engine.root_partition Catalog.q_xyy ~root:"y" db in
  let in_blocks = List.fold_left (fun acc (_, b) -> acc + Database.endo_size b) 0 blocks in
  (* S(99) has no matching R fact, so its root value forms no block: the
     fact is dropped into null-player padding instead. *)
  Alcotest.(check int) "two supported root values" 2 (List.length blocks);
  Alcotest.(check int) "every endogenous fact lands in a block or is dropped"
    (Database.endo_size db)
    (in_blocks + Database.endo_size dropped)

(* ------------------------------------------------------------------ *)
(* Parallel root blocks: bit-identical, and counted                    *)
(* ------------------------------------------------------------------ *)

let wide_db =
  Database.of_facts
    [ Fact.of_ints "R" [ 1; 2 ]; Fact.of_ints "R" [ 3; 4 ]; Fact.of_ints "R" [ 5; 6 ];
      Fact.of_ints "S" [ 2 ]; Fact.of_ints "S" [ 4 ]; Fact.of_ints "S" [ 6 ] ]

let test_parallel_blocks_bit_identical () =
  Alcotest.(check int) "engine defaults to sequential blocks" 1 (Engine.block_jobs ());
  let a = Agg_query.make Aggregate.Max (Value_fn.id ~rel:"R" ~pos:0) Catalog.q_xyy in
  let seq = Aggshap_core.Minmax.sum_k a wide_db in
  Engine.reset_stats ();
  Engine.set_block_jobs 3;
  let par =
    Fun.protect
      ~finally:(fun () -> Engine.set_block_jobs 1)
      (fun () -> Aggshap_core.Minmax.sum_k a wide_db)
  in
  Alcotest.(check int) "same length" (Array.length seq) (Array.length par);
  Array.iteri
    (fun k v ->
      Alcotest.(check string)
        (Printf.sprintf "sum_%d identical" k)
        (Q.to_string v) (Q.to_string par.(k)))
    seq;
  Alcotest.(check bool) "the top-level merge fanned out" true
    ((Engine.stats ()).Engine.parallel_merges > 0)

let test_stats_counters () =
  Engine.reset_stats ();
  ignore (Count_dp.answer_counts Catalog.q_xyy_full wide_db);
  let s = Engine.stats () in
  Alcotest.(check bool) "nodes counted" true (s.Engine.nodes > 0);
  Alcotest.(check bool) "leaves counted" true (s.Engine.leaves > 0);
  Alcotest.(check bool) "merges counted" true (s.Engine.merges > 0);
  Alcotest.(check bool) "no parallel merges by default" true
    (s.Engine.parallel_merges = 0);
  Engine.reset_stats ();
  Alcotest.(check int) "reset clears nodes" 0 (Engine.stats ()).Engine.nodes

(* Saturated answer-count tables: every row below the cap is
   bit-identical to the uncapped table, and the cap row absorbs exactly
   the tail mass ([at_least]). This is the contract Dup's fast path
   rests on — it reads rows 0 and 1 of [~cap:2] tables. *)
let test_capped_answer_counts () =
  let module C = Count_dp in
  let module Generate = Aggshap_workload.Generate in
  let config = { Generate.tuples_per_relation = 10; domain = 4; exo_fraction = 0.25 } in
  List.iter
    (fun q ->
      List.iter
        (fun seed ->
          let db = Generate.random_database ~seed ~config q in
          let exact = C.answer_counts q db in
          List.iter
            (fun cap ->
              let capped = C.answer_counts ~cap q db in
              let name = Printf.sprintf "%s seed %d cap %d" (Cq.to_string q) seed cap in
              for l = 0 to cap - 1 do
                Alcotest.(check bool)
                  (Printf.sprintf "%s: row %d exact" name l)
                  true
                  (counts_equal (C.get capped l) (C.get exact l))
              done;
              Alcotest.(check bool) (name ^ ": cap row is the tail") true
                (counts_equal (C.get capped cap) (C.at_least exact cap)))
            [ 1; 2; 3 ])
        [ 11; 12; 13 ])
    [ Catalog.q1_sq; Catalog.q3_sq; Catalog.q_xyy_full ]

(* ------------------------------------------------------------------ *)
(* `Block_drop caught in every aggregate family                        *)
(* ------------------------------------------------------------------ *)

(* One directed trial per frontier family, each with at least two blocks
   in some root partition the family's engine instance evaluates, so the
   engine-level fault has a block to drop. The trial must be clean
   without the fault, fail the oracle with it, and shrink to a
   still-failing reproducer. *)
let directed_block_drop (name, alpha, query, tau, facts) =
  Alcotest.test_case name `Quick (fun () ->
      let db = Database.of_facts facts in
      let trial = { Trial.seed = 0; query; db; alpha; tau } in
      Alcotest.(check bool) "clean without the fault" true
        (Oracle.run ~par_jobs:1 trial = None);
      assert (Tables.current_fault () = `None);
      Tables.set_fault `Block_drop;
      Fun.protect
        ~finally:(fun () -> Tables.set_fault `None)
        (fun () ->
          match Oracle.run ~par_jobs:1 trial with
          | None -> Alcotest.failf "%s: `Block_drop was not caught" name
          | Some failure ->
            let shrunk, _ = Shrink.minimize (Oracle.run ~par_jobs:1) trial failure in
            Alcotest.(check bool) "shrunk still fails" true
              (Oracle.run ~par_jobs:1 shrunk <> None);
            Alcotest.(check bool) "shrunk is no bigger" true
              (Database.size shrunk.Trial.db <= Database.size db)))

let r1 = Fact.of_ints "R" [ 1 ]
let block_drop_families =
  [ ( "sum (Boolean DP)", Aggregate.Sum, Catalog.q_exists, Trial.Id ("R", 0),
      [ r1; Fact.of_ints "S" [ 1; 3 ]; Fact.of_ints "S" [ 1; 4 ]; Fact.of_ints "T" [ 3 ];
        Fact.of_ints "T" [ 4 ] ] );
    ( "count (Boolean DP)", Aggregate.Count, Catalog.q_exists, Trial.Const ("R", Q.one),
      [ r1; Fact.of_ints "S" [ 1; 3 ]; Fact.of_ints "S" [ 1; 4 ]; Fact.of_ints "T" [ 3 ];
        Fact.of_ints "T" [ 4 ] ] );
    (* Both root blocks must survive the per-value restriction, so the
       two R facts share one τ-value but differ on the root y. *)
    ( "count-distinct (per-value Boolean DP)", Aggregate.Count_distinct, Catalog.q_xyy,
      Trial.Id ("R", 0),
      [ Fact.of_ints "R" [ 1; 2 ]; Fact.of_ints "R" [ 1; 4 ]; Fact.of_ints "S" [ 2 ];
        Fact.of_ints "S" [ 4 ] ] );
    ( "min ((a,k)-table DP)", Aggregate.Min, Catalog.q_xyy, Trial.Id ("R", 0),
      [ Fact.of_ints "R" [ 1; 2 ]; Fact.of_ints "R" [ 3; 4 ]; Fact.of_ints "S" [ 2 ];
        Fact.of_ints "S" [ 4 ] ] );
    ( "avg ((a,k,l)-table DP)", Aggregate.Avg, Catalog.q_xyy_full, Trial.Id ("R", 0),
      [ Fact.of_ints "R" [ 1; 2 ]; Fact.of_ints "R" [ 3; 4 ]; Fact.of_ints "S" [ 2 ];
        Fact.of_ints "S" [ 4 ] ] );
    ( "has-duplicates (P0/P1 DP)", Aggregate.Has_duplicates, Catalog.q1_sq,
      Trial.Const ("R", Q.one),
      [ Fact.of_ints "R" [ 1; 2 ]; Fact.of_ints "S" [ 1 ]; Fact.of_ints "R" [ 4; 5 ];
        Fact.of_ints "S" [ 4 ] ] );
  ]

let () =
  Alcotest.run "engine"
    [ ("Boolean/CDist table algebra (counts)", boolean_laws);
      ("Count/Dup table algebra (answer counts)", count_laws);
      ("Min/Max table algebra ((a,k)-tables)", minmax_laws);
      ("Avg/Quantile table algebra ((a,k,l)-tables)", avg_laws);
      ( "decomposition planner",
        [ Alcotest.test_case "shapes of the catalog queries" `Quick test_shape_of_catalog;
          Alcotest.test_case "connected_root" `Quick test_connected_root;
          Alcotest.test_case "root_partition conserves facts" `Quick
            test_root_partition_conserves_facts;
        ] );
      ( "parallel blocks and stats",
        [ Alcotest.test_case "parallel blocks bit-identical" `Quick
            test_parallel_blocks_bit_identical;
          Alcotest.test_case "per-node counters" `Quick test_stats_counters;
          Alcotest.test_case "capped answer counts" `Quick test_capped_answer_counts;
        ] );
      ("block-drop fault per family", List.map directed_block_drop block_drop_families);
    ]
