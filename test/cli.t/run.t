Classification of the minimal hard query (Figure 1, operationally):

  $ shapctl classify -q "Q(x) <- R(x,y), S(y)"
  query: Q(x) <- R(x, y), S(y)
  class: all-hierarchical
  
  aggregate          frontier               tractable here?
  sum                exists-hierarchical    yes (polynomial)
  count              exists-hierarchical    yes (polynomial)
  count-distinct     all-hierarchical       yes (polynomial)
  min                all-hierarchical       yes (polynomial)
  max                all-hierarchical       yes (polynomial)
  avg                q-hierarchical         no (#P-hard)
  median             q-hierarchical         no (#P-hard)
  has-duplicates     sq-hierarchical        no (#P-hard)

Evaluate an aggregate query over the sample database:

  $ shapctl eval -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t id:R:0
  max = 3 (~ 3)

Shapley values inside the frontier (polynomial algorithm):

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t id:R:0
  class: all-hierarchical; algorithm: min/max (a,k)-table DP
  R(1, 10)                       1/12 (~ 0.0833333)
  R(2, 10)                       1/4 (~ 0.25)
  R(3, 20)                       9/4 (~ 2.25)
  S(10)                          5/12 (~ 0.416667)

Outside the frontier the solver reports the fallback:

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a avg -t id:R:0 -f "R(3, 20)"
  class: all-hierarchical; algorithm: naive enumeration (exponential)
  R(3, 20)                       2 (~ 2)

Errors are reported cleanly:

  $ shapctl solve -q "Q(x) <- R(x,y), R(y,x)" -d db.facts -a max
  shapctl: cannot parse query "Q(x) <- R(x,y), R(y,x)": self-join: a relation name appears in two atoms
  [1]

  $ shapctl classify -q "Q(x) <-"
  shapctl: cannot parse query "Q(x) <-": unexpected end of input
  [1]

Banzhaf values through the same polynomial algorithms:

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t id:R:0 --score banzhaf
  R(1, 10)                       1/8
  R(2, 10)                       3/8
  R(3, 20)                       19/8
  S(10)                          5/8

Schema violations are warned about (the fact becomes a null player):

  $ cat > bad.facts <<'DB'
  > R(1, 10)
  > R(7)
  > S(10)
  > DB
  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d bad.facts -a max -t id:R:0 -f "R(1, 10)"
  class: all-hierarchical; algorithm: min/max (a,k)-table DP
  R(1, 10)                       1/2 (~ 0.5)
  shapctl: warning: R(7): arity 1 does not match R/2 (treated as a null player)

The batch engine returns identical values for every jobs/cache setting:

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t id:R:0 --jobs 4
  class: all-hierarchical; algorithm: min/max (a,k)-table DP
  R(1, 10)                       1/12 (~ 0.0833333)
  R(2, 10)                       1/4 (~ 0.25)
  R(3, 20)                       9/4 (~ 2.25)
  S(10)                          5/12 (~ 0.416667)

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t id:R:0 --jobs 1 --cache false
  class: all-hierarchical; algorithm: min/max (a,k)-table DP
  R(1, 10)                       1/12 (~ 0.0833333)
  R(2, 10)                       1/4 (~ 0.25)
  R(3, 20)                       9/4 (~ 2.25)
  S(10)                          5/12 (~ 0.416667)

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t id:R:0 --jobs 0
  shapctl: --jobs must be at least 1 (got 0)
  [1]

Malformed value-function specs die with a clean message instead of an
uncaught int_of_string/of_string exception:

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t id:R:abc
  shapctl: malformed position "abc" in value function spec "id:R:abc" (expected a non-negative integer)
  [1]

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t gt:R:0:xyz
  shapctl: malformed bound "xyz" in "gt:R:0:xyz" (expected an integer or P/Q rational)
  [1]

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t const:R:1/0
  shapctl: malformed value "1/0" in "const:R:1/0" (expected an integer or P/Q rational)
  [1]

So do malformed fallback specs:

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a avg -t id:R:0 --fallback mc:abc
  shapctl: malformed sample count "abc" in fallback "mc:abc" (expected a positive integer; use auto, naive, knowledge-compilation, fail, or mc:SAMPLES[:SEED])
  [1]

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a avg -t id:R:0 --fallback mc:0
  shapctl: malformed sample count "0" in fallback "mc:0" (expected a positive integer; use auto, naive, knowledge-compilation, fail, or mc:SAMPLES[:SEED])
  [1]

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a avg -t id:R:0 --fallback mc:100:x
  shapctl: malformed seed "x" in fallback "mc:100:x" (expected an integer; use auto, naive, knowledge-compilation, fail, or mc:SAMPLES[:SEED])
  [1]

A seeded Monte-Carlo fallback is reproducible, run to run and for every
jobs setting:

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a avg -t id:R:0 --fallback mc:100:7 --jobs 1 > mc_a.out
  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a avg -t id:R:0 --fallback mc:100:7 --jobs 3 > mc_b.out
  $ diff mc_a.out mc_b.out

The fail fallback on an all-facts batch raises up-front (one clean
error, not a pool of dying workers reporting algorithm "none"):

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a avg -t id:R:0 --fallback fail
  shapctl: Solver.shapley: Q(x) <- R(x, y), S(y) is outside the tractability frontier (q-hierarchical) of avg
  [1]

The knowledge-compilation tier gives exact Shapley values beyond the
frontier: a non-hierarchical query where naive enumeration is the only
other exact option. The values are bit-identical to naive enumeration
on the same instance:

  $ cat > rst.facts <<'DB'
  > R(1)
  > R(2)
  > T(1, 1)
  > T(1, 2)
  > T(2, 2)
  > S(1)
  > S(2)
  > DB

  $ shapctl solve -q "Q() <- R(x), T(x, y), S(y)" -d rst.facts -a count --fallback knowledge-compilation
  class: general; algorithm: knowledge compilation (d-DNNF lineage, Shapley by weighted model counting)
  R(1)                           17/70 (~ 0.242857)
  R(2)                           23/210 (~ 0.109524)
  S(1)                           23/210 (~ 0.109524)
  S(2)                           17/70 (~ 0.242857)
  T(1, 1)                        23/210 (~ 0.109524)
  T(1, 2)                        8/105 (~ 0.0761905)
  T(2, 2)                        23/210 (~ 0.109524)

  $ shapctl solve -q "Q() <- R(x), T(x, y), S(y)" -d rst.facts -a count
  class: general; algorithm: naive enumeration (exponential)
  R(1)                           17/70 (~ 0.242857)
  R(2)                           23/210 (~ 0.109524)
  S(1)                           23/210 (~ 0.109524)
  S(2)                           17/70 (~ 0.242857)
  T(1, 1)                        23/210 (~ 0.109524)
  T(1, 2)                        8/105 (~ 0.0761905)
  T(2, 2)                        23/210 (~ 0.109524)

  $ shapctl solve -q "Q() <- R(x), T(x, y), S(y)" -d rst.facts -a max -t const:R:2 --fallback knowledge-compilation
  class: general; algorithm: knowledge compilation (d-DNNF lineage, Shapley by weighted model counting)
  R(1)                           17/35 (~ 0.485714)
  R(2)                           23/105 (~ 0.219048)
  S(1)                           23/105 (~ 0.219048)
  S(2)                           17/35 (~ 0.485714)
  T(1, 1)                        23/105 (~ 0.219048)
  T(1, 2)                        16/105 (~ 0.152381)
  T(2, 2)                        23/105 (~ 0.219048)

Aggregates the lineage tier does not cover fall through to naive — the
algorithm line says so, and the answer is still exact:

  $ shapctl solve -q "Q() <- R(x), T(x, y), S(y)" -d rst.facts -a avg -t const:R:3 --fallback knowledge-compilation
  class: general; algorithm: naive enumeration (exponential; knowledge compilation does not cover avg)
  R(1)                           51/70 (~ 0.728571)
  R(2)                           23/70 (~ 0.328571)
  S(1)                           23/70 (~ 0.328571)
  S(2)                           51/70 (~ 0.728571)
  T(1, 1)                        23/70 (~ 0.328571)
  T(1, 2)                        8/35 (~ 0.228571)
  T(2, 2)                        23/70 (~ 0.328571)

With --fallback auto the solve planner picks the cheapest applicable
exact tier from the database's statistics — knowledge compilation when
the lineage tier covers the aggregate, naive enumeration otherwise —
and the algorithm line names the pick. The values are bit-identical to
forcing the chosen tier by hand:

  $ shapctl solve -q "Q() <- R(x), T(x, y), S(y)" -d rst.facts -a count --fallback auto
  class: general; algorithm: knowledge compilation (d-DNNF lineage, Shapley by weighted model counting) (selected by the solve planner)
  R(1)                           17/70 (~ 0.242857)
  R(2)                           23/210 (~ 0.109524)
  S(1)                           23/210 (~ 0.109524)
  S(2)                           17/70 (~ 0.242857)
  T(1, 1)                        23/210 (~ 0.109524)
  T(1, 2)                        8/105 (~ 0.0761905)
  T(2, 2)                        23/210 (~ 0.109524)

  $ shapctl solve -q "Q() <- R(x), T(x, y), S(y)" -d rst.facts -a avg -t const:R:3 --fallback auto
  class: general; algorithm: naive enumeration (exponential) (selected by the solve planner)
  R(1)                           51/70 (~ 0.728571)
  R(2)                           23/70 (~ 0.328571)
  S(1)                           23/70 (~ 0.328571)
  S(2)                           51/70 (~ 0.728571)
  T(1, 1)                        23/70 (~ 0.328571)
  T(1, 2)                        8/35 (~ 0.228571)
  T(2, 2)                        23/70 (~ 0.328571)

explain shows the whole plan: every candidate route, its cost estimate
(fed by the database's segment statistics when a database is given),
and why the planner took or rejected it:

  $ shapctl explain -q "Q() <- R(x), T(x, y), S(y)" -d rst.facts -a count --fallback auto
  query: Q() <- R(x), T(x, y), S(y)
  aggregate: count
  
  hierarchy chain (each class contains the next):
    exists-hierarchical  no
    all-hierarchical     no
    q-hierarchical       no
    sq-hierarchical      no
  class: general
  
  frontier of count: exists-hierarchical
  within frontier: no (#P-hard)
  algorithm: knowledge compilation (d-DNNF lineage, Shapley by weighted model counting) (selected by the solve planner)
  
  solve plan (* = chosen):
    - frontier-dp (not applicable, cost n/a): the query is general but the count frontier is exists-hierarchical
    * knowledge-compilation (applicable, cost ~407): exact; exponential only in the lineage's branching structure
    - naive (applicable, cost ~896): exact enumeration over all 2^n subsets; always applicable
    - mc (not applicable, cost n/a): approximate; never auto-selected (force with mc:SAMPLES[:SEED])
    - fail (not applicable, cost n/a): diagnostic: raise instead of solving outside the frontier
  
  engine decomposition:
  stuck: no root variable (not hierarchical): Q() <- R(x), T(x, y), S(y)

--json emits the same explanation as one machine-readable object:

  $ shapctl explain -q "Q() <- R(x), T(x, y), S(y)" -d rst.facts -a count --fallback auto --json
  {
    "query": "Q() <- R(x), T(x, y), S(y)",
    "aggregate": "count",
    "chain": [
      {
        "class": "exists-hierarchical",
        "holds": false
      },
      {
        "class": "all-hierarchical",
        "holds": false
      },
      {
        "class": "q-hierarchical",
        "holds": false
      },
      {
        "class": "sq-hierarchical",
        "holds": false
      }
    ],
    "class": "general",
    "frontier": "exists-hierarchical",
    "within_frontier": false,
    "algorithm": "knowledge compilation (d-DNNF lineage, Shapley by weighted model counting) (selected by the solve planner)",
    "plan": {
      "fallback": "auto",
      "chosen": "knowledge-compilation",
      "algorithm": "knowledge compilation (d-DNNF lineage, Shapley by weighted model counting) (selected by the solve planner)",
      "ladder": [
        "knowledge-compilation",
        "naive"
      ],
      "candidates": [
        {
          "strategy": "frontier-dp",
          "algorithm": "sum/count via linearity + Boolean DP",
          "applicable": false,
          "reason": "the query is general but the count frontier is exists-hierarchical"
        },
        {
          "strategy": "knowledge-compilation",
          "algorithm": "knowledge compilation (d-DNNF lineage, Shapley by weighted model counting)",
          "applicable": true,
          "cost": 407.0,
          "reason": "exact; exponential only in the lineage's branching structure"
        },
        {
          "strategy": "naive",
          "algorithm": "naive enumeration (exponential)",
          "applicable": true,
          "cost": 896.0,
          "reason": "exact enumeration over all 2^n subsets; always applicable"
        },
        {
          "strategy": "mc",
          "algorithm": "Monte-Carlo permutation sampling",
          "applicable": false,
          "reason": "approximate; never auto-selected (force with mc:SAMPLES[:SEED])"
        },
        {
          "strategy": "fail",
          "algorithm": "none (outside the frontier, fallback disabled)",
          "applicable": false,
          "reason": "diagnostic: raise instead of solving outside the frontier"
        }
      ],
      "stats": {
        "endogenous": 7,
        "facts": 7,
        "relations": 3
      }
    }
  }
  

A node budget caps the knowledge-compilation tier. A compilation that
would exceed it aborts mid-solve, the solve degrades to the next rung
of the planner's ladder — still exact, the algorithm line says what
happened — and the abort shows up in the kernel counters:

  $ shapctl solve -q "Q() <- R(x), T(x, y), S(y)" -d rst.facts -a count --fallback knowledge-compilation --kc-node-budget 5
  class: general; algorithm: naive enumeration (exponential) (after a knowledge-compilation node-budget abort)
  R(1)                           17/70 (~ 0.242857)
  R(2)                           23/210 (~ 0.109524)
  S(1)                           23/210 (~ 0.109524)
  S(2)                           17/70 (~ 0.242857)
  T(1, 1)                        23/210 (~ 0.109524)
  T(1, 2)                        8/105 (~ 0.0761905)
  T(2, 2)                        23/210 (~ 0.109524)

  $ shapctl solve -q "Q() <- R(x), T(x, y), S(y)" -d rst.facts -a count --fallback kc --kc-node-budget 5 --stats 2>&1 | grep kc_budget_aborts
    kc_budget_aborts   1

  $ shapctl solve -q "Q() <- R(x), T(x, y), S(y)" -d rst.facts -a count --kc-node-budget 0
  shapctl: --kc-node-budget must be at least 1 (got 0)
  [1]

The differential-testing oracle replays a fixed seed deterministically:

  $ shapctl fuzz --seed 42 --trials 25
  fuzz: seed=42 trials=25 max-endo=8
  fuzz: 25 trials, 0 failures

  $ shapctl fuzz --trials 0
  shapctl: --trials must be at least 1 (got 0)
  [1]

With --fallback knowledge-compilation the fuzzer additionally
cross-checks the compiled tier against naive enumeration on every
supported trial (inside the frontier too):

  $ shapctl fuzz --seed 42 --trials 25 --fallback knowledge-compilation
  fuzz: knowledge-compilation tier cross-checked on every supported trial
  fuzz: seed=42 trials=25 max-endo=8
  fuzz: 25 trials, 0 failures

With --fallback auto the fuzzer cross-checks the solve planner's pick
against naive enumeration on every trial, inside the frontier too:

  $ shapctl fuzz --seed 42 --trials 25 --fallback auto
  fuzz: planner auto mode cross-checked against naive on every trial
  fuzz: seed=42 trials=25 max-endo=8
  fuzz: 25 trials, 0 failures

  $ shapctl fuzz --seed 42 --trials 5 --fallback mc:100
  shapctl: fuzz --fallback takes naive, knowledge-compilation, or auto (got "mc:100")
  [1]

The incremental session replays an update script through a live solver,
printing exact values after every step. Only the state dirtied by each
update is recomputed; the values are bit-identical to re-solving from
scratch:

  $ cat > ops.updates <<'EOF'
  > # warm-up script
  > insert R(4, 10)
  > delete R(3, 20)
  > set_tau id:R:1
  > insert S(30) @exo
  > EOF

  $ shapctl session -q "Q(x) <- R(x,y), S(y)" -d db.facts -a sum -t id:R:0 -u ops.updates --jobs 1 --stats
  step 0 (initial)
    R(1, 10)                     1/2
    R(2, 10)                     1
    R(3, 20)                     3
    S(10)                        3/2
  step 1 (insert R(4, 10))
    R(1, 10)                     1/2
    R(2, 10)                     1
    R(3, 20)                     3
    R(4, 10)                     2
    S(10)                        7/2
  step 2 (delete R(3, 20))
    R(1, 10)                     1/2
    R(2, 10)                     1
    R(4, 10)                     2
    S(10)                        7/2
  step 3 (set_tau id:R:1)
    R(1, 10)                     5
    R(2, 10)                     5
    R(4, 10)                     5
    S(10)                        15
  step 4 (insert S(30) @exo)
    R(1, 10)                     5
    R(2, 10)                     5
    R(4, 10)                     5
    S(10)                        15
  steps=4 games=7 computed/9 reused (reuse 56.2%) flushes=0 tables=12 hits / 47 misses

The generic engine (min/max, count-distinct, avg/quantiles, dup) keeps a
persistent DP-table memo; a set_tau is the one update that flushes it
(tau is outside the table cache key):

  $ cat > ops2.updates <<'EOF'
  > insert R(4, 40)
  > set_tau relu:R:1
  > delete R(4, 40)
  > EOF

  $ shapctl session -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t id:R:1 -u ops2.updates --jobs 1 --stats
  step 0 (initial)
    R(1, 10)                     5/6
    R(2, 10)                     5/6
    R(3, 20)                     95/6
    S(10)                        5/2
  step 1 (insert R(4, 40))
    R(1, 10)                     5/6
    R(2, 10)                     5/6
    R(3, 20)                     95/6
    R(4, 40)                     0
    S(10)                        5/2
  step 2 (set_tau relu:R:1)
    R(1, 10)                     5/6
    R(2, 10)                     5/6
    R(3, 20)                     95/6
    R(4, 40)                     0
    S(10)                        5/2
  step 3 (delete R(4, 40))
    R(1, 10)                     5/6
    R(2, 10)                     5/6
    R(3, 20)                     95/6
    S(10)                        5/2
  steps=3 games=0 computed/0 reused (reuse n/a) flushes=1 tables=22 hits / 26 misses

Malformed script lines die with their line number, before any state is
touched; apply-time errors carry the line number too:

  $ cat > bad.updates <<'EOF'
  > insert R(4, 10)
  > frobnicate R(1)
  > EOF

  $ shapctl session -q "Q(x) <- R(x,y), S(y)" -d db.facts -a sum -u bad.updates
  shapctl: bad.updates: line 2: unknown update "frobnicate" (expected insert, delete, or set_tau)
  [1]

  $ cat > bad2.updates <<'EOF'
  > 
  > delete R(9, 9)
  > EOF

  $ shapctl session -q "Q(x) <- R(x,y), S(y)" -d db.facts -a sum -u bad2.updates
  shapctl: bad2.updates: line 2: Incr.Session: delete of absent fact R(9, 9)
  step 0 (initial)
    R(1, 10)                     1/2
    R(2, 10)                     1/2
    R(3, 20)                     1
    S(10)                        1
  [1]

  $ shapctl session -q "Q(x) <- R(x,y), S(y)" -d db.facts -a sum -u missing.updates
  shapctl: cannot read update script: missing.updates: No such file or directory
  [1]

The update-sequence fuzzer replays random scripts through a session,
cross-checking every step against a from-scratch batch solve:

  $ shapctl fuzz --updates --seed 42 --trials 25
  fuzz: update sequences, seed=42 trials=25 max-endo=8
  fuzz: 25 trials, 93 update steps, 0 failures
