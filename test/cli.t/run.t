Classification of the minimal hard query (Figure 1, operationally):

  $ shapctl classify -q "Q(x) <- R(x,y), S(y)"
  query: Q(x) <- R(x, y), S(y)
  class: all-hierarchical
  
  aggregate          frontier               tractable here?
  sum                exists-hierarchical    yes (polynomial)
  count              exists-hierarchical    yes (polynomial)
  count-distinct     all-hierarchical       yes (polynomial)
  min                all-hierarchical       yes (polynomial)
  max                all-hierarchical       yes (polynomial)
  avg                q-hierarchical         no (#P-hard)
  median             q-hierarchical         no (#P-hard)
  has-duplicates     sq-hierarchical        no (#P-hard)

Evaluate an aggregate query over the sample database:

  $ shapctl eval -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t id:R:0
  max = 3 (~ 3)

Shapley values inside the frontier (polynomial algorithm):

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t id:R:0
  class: all-hierarchical; algorithm: min/max (a,k)-table DP
  R(1, 10)                       1/12 (~ 0.0833333)
  R(2, 10)                       1/4 (~ 0.25)
  R(3, 20)                       9/4 (~ 2.25)
  S(10)                          5/12 (~ 0.416667)

Outside the frontier the solver reports the fallback:

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a avg -t id:R:0 -f "R(3, 20)"
  class: all-hierarchical; algorithm: naive enumeration (exponential)
  R(3, 20)                       2 (~ 2)

Errors are reported cleanly:

  $ shapctl solve -q "Q(x) <- R(x,y), R(y,x)" -d db.facts -a max
  shapctl: cannot parse query "Q(x) <- R(x,y), R(y,x)": self-join: a relation name appears in two atoms
  [1]

  $ shapctl classify -q "Q(x) <-"
  shapctl: cannot parse query "Q(x) <-": unexpected end of input
  [1]

Banzhaf values through the same polynomial algorithms:

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t id:R:0 --score banzhaf
  R(1, 10)                       1/8
  R(2, 10)                       3/8
  R(3, 20)                       19/8
  S(10)                          5/8

Schema violations are warned about (the fact becomes a null player):

  $ cat > bad.facts <<'DB'
  > R(1, 10)
  > R(7)
  > S(10)
  > DB
  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d bad.facts -a max -t id:R:0 -f "R(1, 10)"
  class: all-hierarchical; algorithm: min/max (a,k)-table DP
  R(1, 10)                       1/2 (~ 0.5)
  shapctl: warning: R(7): arity 1 does not match R/2 (treated as a null player)

The batch engine returns identical values for every jobs/cache setting:

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t id:R:0 --jobs 4
  class: all-hierarchical; algorithm: min/max (a,k)-table DP
  R(1, 10)                       1/12 (~ 0.0833333)
  R(2, 10)                       1/4 (~ 0.25)
  R(3, 20)                       9/4 (~ 2.25)
  S(10)                          5/12 (~ 0.416667)

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t id:R:0 --jobs 1 --cache false
  class: all-hierarchical; algorithm: min/max (a,k)-table DP
  R(1, 10)                       1/12 (~ 0.0833333)
  R(2, 10)                       1/4 (~ 0.25)
  R(3, 20)                       9/4 (~ 2.25)
  S(10)                          5/12 (~ 0.416667)

  $ shapctl solve -q "Q(x) <- R(x,y), S(y)" -d db.facts -a max -t id:R:0 --jobs 0
  shapctl: --jobs must be at least 1 (got 0)
  [1]
