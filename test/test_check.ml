(* The differential-testing oracle itself: the fixed-seed corpus must
   replay clean, the shrinker must produce runnable minimal reproducers,
   and a deliberately injected DP fault must be caught. *)

module Q = Aggshap_arith.Rational
module Database = Aggshap_relational.Database
module Tables = Aggshap_core.Tables
module Cq = Aggshap_cq.Cq
module Check = Aggshap_check
module Trial = Aggshap_check.Trial
module Oracle = Aggshap_check.Oracle
module Shrink = Aggshap_check.Shrink
module Fuzz = Aggshap_check.Fuzz
module Utrial = Aggshap_check.Utrial

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let corpus = lazy (Fuzz.parse_corpus (read_file "fuzz.corpus"))

let test_corpus_parses () =
  let seeds = Lazy.force corpus in
  Alcotest.(check bool) "corpus is non-trivial" true (List.length seeds >= 100);
  Alcotest.(check bool) "seeds are distinct" true
    (List.length (List.sort_uniq Int.compare seeds) = List.length seeds)

(* Every corpus seed replays with zero oracle disagreements — the
   regression net for the six DP families and the batch engine. *)
let test_corpus_replays_clean () =
  List.iter
    (fun seed ->
      let trial, outcome = Fuzz.run_one ~seed () in
      match outcome with
      | None -> ()
      | Some failure ->
        Alcotest.failf "corpus trial failed: %s\n  %s" (Trial.to_string trial)
          (Oracle.failure_to_string failure))
    (Lazy.force corpus)

let test_trial_generation_deterministic () =
  let t1 = Trial.generate ~seed:4242 () and t2 = Trial.generate ~seed:4242 () in
  Alcotest.(check string) "same query" (Cq.to_string t1.Trial.query)
    (Cq.to_string t2.Trial.query);
  Alcotest.(check bool) "same database" true (Database.equal t1.Trial.db t2.Trial.db);
  Alcotest.(check string) "same script" (Trial.to_script t1) (Trial.to_script t2)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_reproducer_script_shape () =
  let t = Trial.generate ~seed:7 () in
  let script = Trial.to_script t in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "script mentions %S" needle)
        true (contains script needle))
    [ "shapctl solve"; "repro.facts"; "-a "; "-t " ]

(* A deliberately injected off-by-one in the DP combine step must be
   caught by the oracle and shrunk to a still-failing 1-minimal
   reproducer. par_jobs:1 keeps everything in this domain while the
   fault flag is set. *)
let test_injected_fault_is_caught () =
  assert (Tables.current_fault () = `None);
  Tables.set_fault `Convolve_off_by_one;
  Fun.protect
    ~finally:(fun () -> Tables.set_fault `None)
    (fun () ->
      let config =
        { Fuzz.seed = 42; trials = 100; max_endo = 6; par_jobs = 1; max_failures = 1; kc_always = false;
          auto_always = false }
      in
      let report = Fuzz.run config in
      match report.Fuzz.failures with
      | [] -> Alcotest.fail "injected off-by-one survived 100 trials undetected"
      | { Fuzz.trial; shrunk; shrunk_failure; _ } :: _ ->
        (* The shrunk reproducer still fails, is no bigger than the
           original, and prints as a runnable script. *)
        Alcotest.(check bool) "shrunk still fails" true
          (Oracle.run ~par_jobs:1 shrunk <> None);
        Alcotest.(check bool) "shrunk is no bigger" true
          (Database.size shrunk.Trial.db <= Database.size trial.Trial.db
          && List.length shrunk.Trial.query.Cq.body
             <= List.length trial.Trial.query.Cq.body);
        Alcotest.(check bool) "reproducer script is printable" true
          (String.length (Trial.to_script shrunk) > 0);
        (* 1-minimality: removing any remaining fact makes the failure
           disappear or the shrinker would have removed it. *)
        List.iter
          (fun fact ->
            let smaller =
              { shrunk with Trial.db = Database.remove fact shrunk.Trial.db }
            in
            Alcotest.(check bool)
              ("removing " ^ Aggshap_relational.Fact.to_string fact ^ " un-fails")
              true
              (Oracle.run ~par_jobs:1 smaller = None))
          (Database.facts shrunk.Trial.db);
        ignore shrunk_failure)

(* ------------------------------------------------------------------ *)
(* knowledge-compilation tier                                          *)
(* ------------------------------------------------------------------ *)

let lineage_corpus = lazy (Fuzz.parse_corpus (read_file "lineage.corpus"))

let test_lineage_corpus_parses () =
  let seeds = Lazy.force lineage_corpus in
  Alcotest.(check bool) "corpus is non-trivial" true (List.length seeds >= 100);
  Alcotest.(check bool) "seeds are distinct" true
    (List.length (List.sort_uniq Int.compare seeds) = List.length seeds)

(* Every corpus trial is non-hierarchical with an aggregate the lineage
   tier supports, so each replay cross-validates lineage extraction,
   the Shannon d-DNNF compiler, and the WMC-to-Shapley pipeline against
   naive enumeration to the last bit. *)
let test_lineage_corpus_replays_clean () =
  let module Solver = Aggshap_core.Solver in
  let module Lineage = Aggshap_lineage.Lineage in
  let module Agg_query = Aggshap_agg.Agg_query in
  List.iter
    (fun seed ->
      let trial, outcome = Fuzz.run_one ~kc_always:true ~seed () in
      let a = Trial.agg_query trial in
      Alcotest.(check bool) "trial is outside the frontier" false
        (Solver.within_frontier a.Agg_query.alpha a.Agg_query.query);
      Alcotest.(check bool) "aggregate is supported" true
        (Lineage.supports a.Agg_query.alpha);
      match outcome with
      | None -> ()
      | Some failure ->
        Alcotest.failf "lineage corpus trial failed: %s\n  %s" (Trial.to_string trial)
          (Oracle.failure_to_string failure))
    (Lazy.force lineage_corpus)

(* `Ddnnf_cache_poison makes the Shannon compiler's formula-keyed cache
   store (and serve) a decision node with its children swapped. The
   kc-vs-naive differential check must catch it and shrink to a
   1-minimal reproducer; kc_always drives the lineage pipeline on every
   supported trial, inside the frontier included. *)
let test_ddnnf_cache_poison_is_caught () =
  assert (Tables.current_fault () = `None);
  Tables.set_fault `Ddnnf_cache_poison;
  Fun.protect
    ~finally:(fun () -> Tables.set_fault `None)
    (fun () ->
      let config =
        { Fuzz.seed = 42; trials = 300; max_endo = 6; par_jobs = 1; max_failures = 1;
          kc_always = true; auto_always = false }
      in
      let report = Fuzz.run config in
      match report.Fuzz.failures with
      | [] -> Alcotest.fail "injected cache poison survived 300 trials undetected"
      | { Fuzz.trial; shrunk; shrunk_failure; _ } :: _ ->
        Alcotest.(check string) "caught by the kc differential check" "kc-vs-naive"
          shrunk_failure.Oracle.check;
        Alcotest.(check bool) "shrunk still fails" true
          (Oracle.run ~par_jobs:1 ~kc_always:true shrunk <> None);
        Alcotest.(check bool) "shrunk is no bigger" true
          (Database.size shrunk.Trial.db <= Database.size trial.Trial.db);
        Alcotest.(check bool) "reproducer script is printable" true
          (String.length (Trial.to_script shrunk) > 0);
        (* 1-minimality: removing any remaining fact makes the failure
           disappear, or the shrinker would have removed it. *)
        List.iter
          (fun fact ->
            let smaller =
              { shrunk with Trial.db = Database.remove fact shrunk.Trial.db }
            in
            Alcotest.(check bool)
              ("removing " ^ Aggshap_relational.Fact.to_string fact ^ " un-fails")
              true
              (Oracle.run ~par_jobs:1 ~kc_always:true smaller = None))
          (Database.facts shrunk.Trial.db))

(* `Kc_budget_leak breaks the node-budget abort path: instead of
   raising Budget_exceeded past the cap, the compiler silently truncates
   further expansion to False — under-counted models, wrong Shapley
   values. The kc-vs-naive differential check must catch it and shrink
   to a 1-minimal reproducer. *)
let test_kc_budget_leak_is_caught () =
  assert (Tables.current_fault () = `None);
  Tables.set_fault `Kc_budget_leak;
  Fun.protect
    ~finally:(fun () -> Tables.set_fault `None)
    (fun () ->
      let config =
        { Fuzz.seed = 42; trials = 300; max_endo = 6; par_jobs = 1; max_failures = 1;
          kc_always = true; auto_always = false }
      in
      let report = Fuzz.run config in
      match report.Fuzz.failures with
      | [] -> Alcotest.fail "injected budget leak survived 300 trials undetected"
      | { Fuzz.trial; shrunk; shrunk_failure; _ } :: _ ->
        Alcotest.(check string) "caught by the kc differential check" "kc-vs-naive"
          shrunk_failure.Oracle.check;
        Alcotest.(check bool) "shrunk still fails" true
          (Oracle.run ~par_jobs:1 ~kc_always:true shrunk <> None);
        Alcotest.(check bool) "shrunk is no bigger" true
          (Database.size shrunk.Trial.db <= Database.size trial.Trial.db);
        List.iter
          (fun fact ->
            let smaller =
              { shrunk with Trial.db = Database.remove fact shrunk.Trial.db }
            in
            Alcotest.(check bool)
              ("removing " ^ Aggshap_relational.Fact.to_string fact ^ " un-fails")
              true
              (Oracle.run ~par_jobs:1 ~kc_always:true smaller = None))
          (Database.facts shrunk.Trial.db))

(* With the fault cleared, the same campaign is clean: the flag was the
   only source of the kc-vs-naive disagreements. *)
let test_ddnnf_fault_flag_is_isolated () =
  let config =
    { Fuzz.seed = 42; trials = 20; max_endo = 6; par_jobs = 1; max_failures = 1;
      kc_always = true; auto_always = false }
  in
  let report = Fuzz.run config in
  Alcotest.(check int) "clean without the fault" 0 (List.length report.Fuzz.failures)

(* ------------------------------------------------------------------ *)
(* update sequences                                                    *)
(* ------------------------------------------------------------------ *)

let ucorpus = lazy (Fuzz.parse_corpus (read_file "updates.corpus"))

let test_ucorpus_parses () =
  let seeds = Lazy.force ucorpus in
  Alcotest.(check bool) "corpus is non-trivial" true (List.length seeds >= 100);
  Alcotest.(check bool) "seeds are distinct" true
    (List.length (List.sort_uniq Int.compare seeds) = List.length seeds)

(* Every corpus seed replays its update script through a live session
   with the values bit-identical to a from-scratch batch at every step —
   the regression net for the incremental engine. *)
let test_ucorpus_replays_clean () =
  List.iter
    (fun seed ->
      let utrial, outcome = Fuzz.run_updates_one ~seed () in
      match outcome with
      | None -> ()
      | Some failure ->
        Alcotest.failf "update corpus trial failed: %s\n  %s" (Utrial.to_string utrial)
          (Oracle.failure_to_string failure))
    (Lazy.force ucorpus)

let test_utrial_generation_deterministic () =
  let t1 = Utrial.generate ~seed:4242 () and t2 = Utrial.generate ~seed:4242 () in
  Alcotest.(check string) "same trial and ops" (Utrial.to_string t1) (Utrial.to_string t2);
  Alcotest.(check bool) "generated trials are wellformed" true (Utrial.wellformed t1);
  Alcotest.(check string) "same script" (Utrial.to_script t1) (Utrial.to_script t2)

(* `Stale_block makes the session skip one cache invalidation per
   update. Both engines must be caught by the step-wise oracle:

   - the Generic engine skips the set_tau memo flush, which trips the
     memo's τ-fingerprint guard (an "exception" failure);
   - the Linear engine skips dirtying one membership game, so the
     session serves stale values (a "session-vs-batch" disagreement).

   The campaign over seed 42 finds the first within a couple of trials;
   the directed hunt asserts a genuine value-level disagreement is also
   found and shrinks to a 1-minimal op script. *)
let test_stale_block_is_caught () =
  assert (Tables.current_fault () = `None);
  Tables.set_fault `Stale_block;
  Fun.protect
    ~finally:(fun () -> Tables.set_fault `None)
    (fun () ->
      let config =
        { Fuzz.seed = 42; trials = 100; max_endo = 6; par_jobs = 1; max_failures = 1; kc_always = false;
          auto_always = false }
      in
      let report = Fuzz.run_updates config in
      match report.Fuzz.ufailures with
      | [] -> Alcotest.fail "injected stale-block survived 100 update trials undetected"
      | { Fuzz.utrial; ushrunk; _ } :: _ ->
        Alcotest.(check bool) "shrunk still fails" true
          (Oracle.run_updates ushrunk <> None);
        Alcotest.(check bool) "shrunk is no bigger" true
          (List.length ushrunk.Utrial.ops <= List.length utrial.Utrial.ops
          && Database.size ushrunk.Utrial.trial.Trial.db
             <= Database.size utrial.Utrial.trial.Trial.db);
        Alcotest.(check bool) "reproducer script is printable" true
          (String.length (Utrial.to_script ushrunk) > 0))

let test_stale_block_value_level () =
  assert (Tables.current_fault () = `None);
  Tables.set_fault `Stale_block;
  Fun.protect
    ~finally:(fun () -> Tables.set_fault `None)
    (fun () ->
      let found = ref None in
      let i = ref 0 in
      while !found = None && !i < 200 do
        let seed = Fuzz.trial_seed ~master:42 !i in
        let ut, outcome = Fuzz.run_updates_one ~seed () in
        (match outcome with
         | Some f when f.Oracle.check <> "exception" -> found := Some (ut, f)
         | _ -> ());
        incr i
      done;
      match !found with
      | None -> Alcotest.fail "no value-level stale disagreement in 200 update trials"
      | Some (ut, f) ->
        let shrunk, shrunk_failure = Shrink.minimize_updates Oracle.run_updates ut f in
        Alcotest.(check bool) "shrunk failure is a value disagreement" true
          (shrunk_failure.Oracle.check <> "exception");
        (* 1-minimality over the op script: dropping any remaining op
           (that keeps the trial wellformed) makes the failure vanish. *)
        List.iteri
          (fun j _ ->
            let ops = List.filteri (fun k _ -> k <> j) shrunk.Utrial.ops in
            let smaller = { shrunk with Utrial.ops } in
            if Utrial.wellformed smaller then
              Alcotest.(check bool)
                (Printf.sprintf "dropping op %d un-fails" j)
                true
                (Oracle.run_updates smaller = None))
          shrunk.Utrial.ops)

(* `Stale_index makes every database update keep its parent's built
   secondary indexes verbatim — a forgotten invalidation in the storage
   layer. The segments stay correct, so the fault is only observable
   through index probes against a database that was updated after a
   probe built an index; the update campaign's sessions do exactly
   that on every step. *)
let test_stale_index_is_caught () =
  assert (Tables.current_fault () = `None);
  Tables.set_fault `Stale_index;
  Fun.protect
    ~finally:(fun () -> Tables.set_fault `None)
    (fun () ->
      let config =
        { Fuzz.seed = 42; trials = 300; max_endo = 6; par_jobs = 1; max_failures = 1; kc_always = false;
          auto_always = false }
      in
      let report = Fuzz.run_updates config in
      match report.Fuzz.ufailures with
      | [] -> Alcotest.fail "injected stale-index survived 300 update trials undetected"
      | { Fuzz.utrial; ushrunk; _ } :: _ ->
        Alcotest.(check bool) "shrunk still fails" true
          (Oracle.run_updates ushrunk <> None);
        Alcotest.(check bool) "shrunk is no bigger" true
          (List.length ushrunk.Utrial.ops <= List.length utrial.Utrial.ops
          && Database.size ushrunk.Utrial.trial.Trial.db
             <= Database.size utrial.Utrial.trial.Trial.db);
        Alcotest.(check bool) "reproducer script is printable" true
          (String.length (Utrial.to_script ushrunk) > 0))

let test_stale_block_flag_is_isolated () =
  let config =
    { Fuzz.seed = 42; trials = 20; max_endo = 6; par_jobs = 1; max_failures = 1; kc_always = false;
          auto_always = false }
  in
  let report = Fuzz.run_updates config in
  Alcotest.(check int) "clean without the fault" 0 (List.length report.Fuzz.ufailures)

(* The kernel-level fault variants added with the fast arithmetic
   paths: a mis-paired sibling in the balanced convolution tree, a
   Karatsuba split that loses a cross term once both operands are large
   enough, and a dropped CRT digit in the RNS/NTT convolution tier.
   Each must be caught by the same oracle and shrink to a
   still-failing reproducer. *)
let test_kernel_fault_is_caught fault trials () =
  assert (Tables.current_fault () = `None);
  Tables.set_fault fault;
  Fun.protect
    ~finally:(fun () -> Tables.set_fault `None)
    (fun () ->
      let config =
        { Fuzz.seed = 42; trials; max_endo = 6; par_jobs = 1; max_failures = 1; kc_always = false;
          auto_always = false }
      in
      let report = Fuzz.run config in
      match report.Fuzz.failures with
      | [] -> Alcotest.fail "injected kernel fault survived all trials undetected"
      | { Fuzz.trial; shrunk; _ } :: _ ->
        Alcotest.(check bool) "shrunk still fails" true
          (Oracle.run ~par_jobs:1 shrunk <> None);
        Alcotest.(check bool) "shrunk is no bigger" true
          (Database.size shrunk.Trial.db <= Database.size trial.Trial.db);
        Alcotest.(check bool) "reproducer script is printable" true
          (String.length (Trial.to_script shrunk) > 0))

(* With the fault cleared again, the very trials that exposed it pass:
   the flag really was the only source of the disagreements. *)
let test_fault_flag_is_isolated () =
  let config =
    { Fuzz.seed = 42; trials = 20; max_endo = 6; par_jobs = 1; max_failures = 1; kc_always = false;
          auto_always = false }
  in
  let report = Fuzz.run config in
  Alcotest.(check int) "clean without the fault" 0 (List.length report.Fuzz.failures)

let () =
  Alcotest.run "check"
    [ ( "corpus",
        [ Alcotest.test_case "parses" `Quick test_corpus_parses;
          Alcotest.test_case "replays clean" `Slow test_corpus_replays_clean;
        ] );
      ( "trials",
        [ Alcotest.test_case "generation deterministic" `Quick
            test_trial_generation_deterministic;
          Alcotest.test_case "reproducer script shape" `Quick
            test_reproducer_script_shape;
        ] );
      ( "knowledge compilation",
        [ Alcotest.test_case "lineage corpus parses" `Quick test_lineage_corpus_parses;
          Alcotest.test_case "lineage corpus replays clean" `Slow
            test_lineage_corpus_replays_clean;
          Alcotest.test_case "ddnnf cache-poison caught and shrunk" `Slow
            test_ddnnf_cache_poison_is_caught;
          Alcotest.test_case "kc budget-leak caught and shrunk" `Slow
            test_kc_budget_leak_is_caught;
          Alcotest.test_case "ddnnf fault flag isolated" `Quick
            test_ddnnf_fault_flag_is_isolated;
        ] );
      ( "update sequences",
        [ Alcotest.test_case "corpus parses" `Quick test_ucorpus_parses;
          Alcotest.test_case "corpus replays clean" `Slow test_ucorpus_replays_clean;
          Alcotest.test_case "generation deterministic" `Quick
            test_utrial_generation_deterministic;
          Alcotest.test_case "stale-block caught and shrunk" `Slow
            test_stale_block_is_caught;
          Alcotest.test_case "stale-block value-level disagreement" `Slow
            test_stale_block_value_level;
          Alcotest.test_case "stale-block flag isolated" `Quick
            test_stale_block_flag_is_isolated;
          Alcotest.test_case "stale-index caught and shrunk" `Slow
            test_stale_index_is_caught;
        ] );
      ( "fault injection",
        [ Alcotest.test_case "off-by-one caught and shrunk" `Slow
            test_injected_fault_is_caught;
          Alcotest.test_case "tree-fold skew caught and shrunk" `Slow
            (test_kernel_fault_is_caught `Tree_fold_skew 300);
          Alcotest.test_case "karatsuba split caught and shrunk" `Slow
            (test_kernel_fault_is_caught `Karatsuba_split 300);
          Alcotest.test_case "ntt prime-drop caught and shrunk" `Slow
            (test_kernel_fault_is_caught `Ntt_prime_drop 300);
          Alcotest.test_case "engine block-drop caught and shrunk" `Slow
            (test_kernel_fault_is_caught `Block_drop 300);
          Alcotest.test_case "storage stale-index caught and shrunk" `Slow
            (test_kernel_fault_is_caught `Stale_index 300);
          Alcotest.test_case "fault flag isolated" `Quick test_fault_flag_is_isolated;
        ] );
    ]
