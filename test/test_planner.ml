(* The solve planner (Strategy): pinned route choices, the auto mode's
   bit-identity with the exact tiers it picks from, the node-budget
   degradation ladder, and the explain --json encoding. *)

module Q = Aggshap_arith.Rational
module Fact = Aggshap_relational.Fact
module Database = Aggshap_relational.Database
module Agg_query = Aggshap_agg.Agg_query
module Strategy = Aggshap_core.Strategy
module Solver = Aggshap_core.Solver
module Ddnnf = Aggshap_lineage.Ddnnf
module Api = Aggshap_api.Api
module Json = Aggshap_json.Json
module Trial = Aggshap_check.Trial
module Fuzz = Aggshap_check.Fuzz

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let agg_query ?tau:(tau_s = None) ~agg q_s =
  let q = Result.get_ok (Api.parse_query q_s) in
  Result.get_ok (Api.make_agg_query ~agg ~tau:tau_s q)

(* Q() <- R(x), T(x, y), S(y) is the minimal non-hierarchical triangle:
   outside every frontier, so the planner actually chooses. *)
let rst agg = agg_query ~agg "Q() <- R(x), T(x, y), S(y)"

(* Q(x) <- R(x, y), S(y) is all-hierarchical: inside the frontier for
   sum/count/min/max/cdist. *)
let rs agg = agg_query ~agg "Q(x) <- R(x,y), S(y)"

let stats ~endo = { Strategy.endo; facts = endo; relations = 3 }

let rst_db =
  List.fold_left
    (fun db f -> Database.add f db)
    Database.empty
    [ Fact.make "R" [ Aggshap_relational.Value.Int 1 ];
      Fact.make "R" [ Aggshap_relational.Value.Int 2 ];
      Fact.make "T" Aggshap_relational.Value.[ Int 1; Int 1 ];
      Fact.make "T" Aggshap_relational.Value.[ Int 1; Int 2 ];
      Fact.make "T" Aggshap_relational.Value.[ Int 2; Int 2 ];
      Fact.make "S" [ Aggshap_relational.Value.Int 1 ];
      Fact.make "S" [ Aggshap_relational.Value.Int 2 ] ]

(* ------------------------------------------------------------------ *)
(* Pinned planner choices                                              *)
(* ------------------------------------------------------------------ *)

(* The regression table: (description, query, fallback, stats, expected
   route, expected ladder). Pinning the table means a cost-model change
   has to come here and justify itself. *)
let choice_table =
  [ ("within frontier: DP regardless of stats", rs "sum", `Auto,
     Some (stats ~endo:50), Strategy.Frontier_dp, [ Strategy.Frontier_dp ]);
    ("auto, tiny instance: naive beats kc below the crossover", rst "count",
     `Auto, Some (stats ~endo:4), Strategy.Naive, [ Strategy.Naive ]);
    ("auto, crossover at n=6: kc from here on", rst "count", `Auto,
     Some (stats ~endo:6), Strategy.Knowledge_compilation,
     [ Strategy.Knowledge_compilation; Strategy.Naive ]);
    ("auto, larger instance: kc wins clearly", rst "count", `Auto,
     Some (stats ~endo:14), Strategy.Knowledge_compilation,
     [ Strategy.Knowledge_compilation; Strategy.Naive ]);
    ("auto without stats: kc when supported", rst "count", `Auto, None,
     Strategy.Knowledge_compilation,
     [ Strategy.Knowledge_compilation; Strategy.Naive ]);
    ("auto on an unsupported aggregate: naive", rst "avg", `Auto,
     Some (stats ~endo:14), Strategy.Naive, [ Strategy.Naive ]);
    ("forced naive", rst "count", `Naive, Some (stats ~endo:14),
     Strategy.Naive, [ Strategy.Naive ]);
    ("forced kc: ladder ends in naive", rst "count", `Knowledge_compilation,
     Some (stats ~endo:4), Strategy.Knowledge_compilation,
     [ Strategy.Knowledge_compilation; Strategy.Naive ]);
    ("forced kc on an unsupported aggregate: naive", rst "avg",
     `Knowledge_compilation, Some (stats ~endo:14), Strategy.Naive,
     [ Strategy.Naive ]);
    ("forced mc", rst "count", `Monte_carlo 50, Some (stats ~endo:14),
     Strategy.Monte_carlo 50, [ Strategy.Monte_carlo 50 ]);
    ("forced fail", rst "count", `Fail, Some (stats ~endo:14), Strategy.Fail,
     [ Strategy.Fail ]) ]

let test_pinned_choices () =
  List.iter
    (fun (descr, a, fallback, stats, chosen, ladder) ->
      let p = Strategy.plan ?stats ~fallback a in
      Alcotest.(check string) (descr ^ ": chosen route")
        (Strategy.route_label chosen)
        (Strategy.route_label p.Strategy.chosen);
      Alcotest.(check (list string)) (descr ^ ": ladder")
        (List.map Strategy.route_label ladder)
        (List.map Strategy.route_label p.Strategy.ladder);
      Alcotest.(check bool) (descr ^ ": chosen heads the ladder") true
        (List.hd p.Strategy.ladder = p.Strategy.chosen))
    choice_table

let test_algorithm_strings () =
  let check descr expected plan =
    Alcotest.(check string) descr expected plan.Strategy.algorithm
  in
  check "auto pick carries the planner marker"
    "knowledge compilation (d-DNNF lineage, Shapley by weighted model \
     counting) (selected by the solve planner)"
    (Strategy.plan ~fallback:`Auto (rst "count"));
  check "forced kc keeps the historical name"
    "knowledge compilation (d-DNNF lineage, Shapley by weighted model \
     counting)"
    (Strategy.plan ~fallback:`Knowledge_compilation (rst "count"));
  check "forced kc on avg keeps the legacy degradation wording"
    "naive enumeration (exponential; knowledge compilation does not cover avg)"
    (Strategy.plan ~fallback:`Knowledge_compilation (rst "avg"));
  check "within the frontier the DP name is unchanged"
    "sum/count via linearity + Boolean DP"
    (Strategy.plan ~fallback:`Auto (rs "sum"))

let test_candidates_shape () =
  let p = Strategy.plan ~stats:(stats ~endo:7) ~fallback:`Auto (rst "count") in
  Alcotest.(check (list string)) "fixed candidate order"
    [ "frontier-dp"; "knowledge-compilation"; "naive"; "mc"; "fail" ]
    (List.map
       (fun c -> Strategy.route_label c.Strategy.route)
       p.Strategy.candidates);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Strategy.route_label c.Strategy.route ^ " has a reason")
        true
        (String.length c.Strategy.reason > 0))
    p.Strategy.candidates;
  let lines = Strategy.render_candidates p in
  Alcotest.(check int) "one line per candidate"
    (List.length p.Strategy.candidates)
    (List.length lines);
  Alcotest.(check int) "exactly one line is starred" 1
    (List.length
       (List.filter (fun l -> String.length l > 0 && l.[0] = '*') lines))

(* Exact applicable costs are monotone in what they model: the DP stays
   below KC, and naive overtakes KC from the crossover on. *)
let test_cost_model () =
  Alcotest.(check bool) "crossover sits at n = 6" true
    (Strategy.kc_cost 6 <= Strategy.naive_cost 6
    && Strategy.kc_cost 5 > Strategy.naive_cost 5);
  for n = 1 to 20 do
    Alcotest.(check bool) "dp is the cheapest exact tier" true
      (Strategy.dp_cost n <= Strategy.kc_cost n)
  done

(* ------------------------------------------------------------------ *)
(* Auto is bit-identical to the exact tiers on the pinned corpora      *)
(* ------------------------------------------------------------------ *)

let exact = function
  | Solver.Exact v -> v
  | Solver.Estimate _ -> Alcotest.fail "expected an exact outcome"

let solve_all ~fallback a db =
  List.map (fun (f, o) -> (f, exact o)) (fst (Solver.shapley_all ~fallback ~jobs:1 a db))

let check_bit_identical descr reference candidate =
  Alcotest.(check bool) descr true
    (List.length reference = List.length candidate
    && List.for_all2
         (fun (f1, v1) (f2, v2) -> Fact.equal f1 f2 && Q.equal v1 v2)
         reference candidate)

(* Every corpus trial: auto must equal naive (and thereby every exact
   tier the oracle already cross-checks) to the last bit. *)
let test_auto_identical_on_corpora () =
  let seeds =
    Fuzz.parse_corpus (read_file "fuzz.corpus")
    @ Fuzz.parse_corpus (read_file "lineage.corpus")
  in
  List.iter
    (fun seed ->
      let trial = Trial.generate ~seed () in
      let a = Trial.agg_query trial in
      let db = trial.Trial.db in
      if Database.endo_size db > 0 then
        check_bit_identical
          (Printf.sprintf "seed %d: auto = naive" seed)
          (solve_all ~fallback:`Naive a db)
          (solve_all ~fallback:`Auto a db))
    seeds

(* ------------------------------------------------------------------ *)
(* Node-budget degradation                                             *)
(* ------------------------------------------------------------------ *)

let test_budget_abort_degrades_exactly () =
  let a = rst "count" in
  let reference = solve_all ~fallback:`Naive a rst_db in
  let before = (Ddnnf.stats ()).Ddnnf.budget_aborts in
  let results, report =
    Solver.shapley_all ~fallback:`Knowledge_compilation ~jobs:1
      ~kc_node_budget:5 a rst_db
  in
  check_bit_identical "degraded solve equals naive" reference
    (List.map (fun (f, o) -> (f, exact o)) results);
  Alcotest.(check string) "report names the abort"
    "naive enumeration (exponential) (after a knowledge-compilation \
     node-budget abort)"
    report.Solver.algorithm;
  Alcotest.(check bool) "the abort was counted" true
    ((Ddnnf.stats ()).Ddnnf.budget_aborts > before)

let test_budget_large_enough_is_silent () =
  let a = rst "count" in
  let no_budget = solve_all ~fallback:`Knowledge_compilation a rst_db in
  let results, report =
    Solver.shapley_all ~fallback:`Knowledge_compilation ~jobs:1
      ~kc_node_budget:100_000 a rst_db
  in
  check_bit_identical "same values under a roomy budget" no_budget
    (List.map (fun (f, o) -> (f, exact o)) results);
  Alcotest.(check string) "no abort in the report"
    "knowledge compilation (d-DNNF lineage, Shapley by weighted model \
     counting)"
    report.Solver.algorithm

(* The per-fact path degrades identically to the batch. *)
let test_budget_abort_per_fact () =
  let a = rst "count" in
  let f = Fact.make "R" [ Aggshap_relational.Value.Int 1 ] in
  let outcome, report = Solver.shapley ~fallback:`Auto ~kc_node_budget:5 a rst_db f in
  let reference = List.assoc f (solve_all ~fallback:`Naive a rst_db) in
  Alcotest.(check bool) "value equals naive" true (Q.equal reference (exact outcome));
  Alcotest.(check string) "report names the abort"
    "naive enumeration (exponential) (after a knowledge-compilation \
     node-budget abort)"
    report.Solver.algorithm

(* ------------------------------------------------------------------ *)
(* explain --json round-trips                                          *)
(* ------------------------------------------------------------------ *)

let explanation_json ?db ?kc_node_budget ~fallback a =
  Api.explanation_to_json a (Api.explain ~fallback ?db ?kc_node_budget a)

let json_round_trips descr j =
  match Json.parse (Json.to_line j) with
  | Ok j' -> Alcotest.(check bool) (descr ^ ": round-trips") true (j = j')
  | Error msg -> Alcotest.failf "%s: parse error: %s" descr msg

let test_explain_json_pinned () =
  json_round_trips "auto with stats"
    (explanation_json ~db:rst_db ~fallback:`Auto (rst "count"));
  json_round_trips "auto without stats" (explanation_json ~fallback:`Auto (rst "count"));
  json_round_trips "budgeted kc"
    (explanation_json ~db:rst_db ~kc_node_budget:5 ~fallback:`Knowledge_compilation
       (rst "count"));
  json_round_trips "within frontier" (explanation_json ~fallback:`Auto (rs "sum"));
  json_round_trips "mc request" (explanation_json ~fallback:(`Monte_carlo 50) (rst "avg"))

(* Any generated trial's explanation encodes to a single JSON line that
   parses back to the same value — the costs go through the float
   emitter, so this pins its integer-exactness too. *)
let test_explain_json_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"explain --json round-trips on random trials"
       ~count:200
       QCheck.(make Gen.(int_range 0 1_000_000))
       (fun seed ->
         let trial = Trial.generate ~seed () in
         let a = Trial.agg_query trial in
         let j =
           Api.explanation_to_json a
             (Api.explain ~fallback:`Auto ~db:trial.Trial.db a)
         in
         let line = Json.to_line j in
         (not (String.contains line '\n'))
         &&
         match Json.parse line with
         | Ok j' -> j = j'
         | Error msg -> QCheck.Test.fail_reportf "parse error: %s" msg))

let () =
  Alcotest.run "planner"
    [ ("choices",
       [ Alcotest.test_case "pinned route table" `Quick test_pinned_choices;
         Alcotest.test_case "algorithm strings" `Quick test_algorithm_strings;
         Alcotest.test_case "candidate rendering" `Quick test_candidates_shape;
         Alcotest.test_case "cost model" `Quick test_cost_model ]);
      ("auto equivalence",
       [ Alcotest.test_case "bit-identical on the corpora" `Slow
           test_auto_identical_on_corpora ]);
      ("node budget",
       [ Alcotest.test_case "abort degrades exactly" `Quick
           test_budget_abort_degrades_exactly;
         Alcotest.test_case "roomy budget is silent" `Quick
           test_budget_large_enough_is_silent;
         Alcotest.test_case "per-fact path degrades too" `Quick
           test_budget_abort_per_fact ]);
      ("explain json",
       [ Alcotest.test_case "pinned shapes round-trip" `Quick
           test_explain_json_pinned;
         test_explain_json_qcheck ]) ]
